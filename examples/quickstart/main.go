// The quickstart example walks the paper's Figure 2 end to end on a
// TPC-H-lite instance: build the running-example query (Q5), execute it to
// annotate true cardinalities, train a small T3 model on generated queries,
// and predict Q5's execution time with a per-pipeline breakdown — including
// the feature vectors of the paper's Listings 3 and 4.
package main

import (
	"fmt"
	"log"

	"t3"
	"t3/internal/benchdata"
	"t3/internal/engine/exec"
	"t3/internal/engine/stats"
	"t3/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. A database instance: TPC-H-lite at a small scale.
	fmt.Println("generating TPC-H-lite instance...")
	inst := workload.MustGenerate(workload.TPCHSpec("tpch", 0.05, 42))

	// 2. Training data: random queries in 16 structure groups, each
	//    executed and timed per pipeline.
	fmt.Println("benchmarking generated queries (this is the training data)...")
	set, err := benchdata.BenchmarkInstance(inst, benchdata.Config{PerGroup: 6, Runs: 3, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmarked %d queries\n", len(set.Queries))

	// 3. Train T3: every pipeline becomes one example with a tuple-centric
	//    -log10 target.
	params := t3.DefaultParams()
	params.NumRounds = 100
	model, err := t3.Train(set.Queries, t3.TrainOptions{Params: params})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d trees\n", len(model.Boosted().Trees))

	// 4. The paper's running example: TPC-H Q5.
	var q5 *workload.Query
	for _, q := range workload.TPCHBenchmarkQueries(inst) {
		if q.Name == inst.Name+"/q5" {
			q5 = q
		}
	}
	if err := exec.AnnotateTrueCards(q5.Root); err != nil {
		log.Fatal(err)
	}
	est := &stats.Estimator{DB: inst.Stats}
	est.Estimate(q5.Root)

	// 5. Predict, then execute to compare.
	pred, per := model.PredictPlan(q5.Root, t3.TrueCards)
	fmt.Printf("\nQ5 predicted: %v across %d pipelines\n", pred, len(per))
	for _, p := range per {
		fmt.Printf("  P%d: %.3g s/tuple x %.0f tuples = %v\n",
			p.Index, p.PerTupleSeconds, p.Cardinality, p.Total)
	}

	res, err := exec.Run(q5.Root, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q5 measured:  %v (%d result rows)\n", res.Total, res.Rows)

	// 6. The feature vectors of the paper's Listings 3 and 4.
	vecs, ps := t3.Featurize(q5.Root, t3.TrueCards)
	reg := model.Registry()
	for i, p := range ps {
		fmt.Printf("\nPipeline %d (scan: %.0f tuples)\n%s",
			p.Index, p.SourceCard(t3.TrueCards), reg.Describe(vecs[i]))
	}
}
