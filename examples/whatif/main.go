// The whatif example studies T3's reliance on cardinality estimates (§5.6,
// Figure 12): it trains a model with perfect cardinalities, then predicts
// the same workload under increasingly distorted estimates and reports the
// accuracy degradation — the "garbage in, garbage out" limitation every
// cost model shares.
package main

import (
	"fmt"
	"log"

	"t3"
	"t3/internal/benchdata"
	"t3/internal/engine/stats"
	"t3/internal/qerror"
	"t3/internal/workload"
)

func main() {
	log.SetFlags(0)

	fmt.Println("benchmarking a TPC-H-lite workload...")
	inst := workload.MustGenerate(workload.TPCHSpec("tpch", 0.05, 21))
	set, err := benchdata.BenchmarkInstance(inst, benchdata.Config{PerGroup: 6, Runs: 2, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	train := set.Queries[:2*len(set.Queries)/3]
	eval := set.Queries[2*len(set.Queries)/3:]

	params := t3.DefaultParams()
	params.NumRounds = 100
	model, err := t3.Train(train, t3.TrainOptions{Params: params})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\naccuracy on %d held-out queries under distorted cardinalities:\n", len(eval))
	fmt.Printf("%10s %8s %8s %8s\n", "distortion", "p50", "p90", "avg")
	for _, factor := range []float64{1, 2, 5, 10, 50, 100, 500, 1000} {
		var es []float64
		for qi, b := range eval {
			stats.Distort(b.Query.Root, factor, int64(qi)*17+3)
			pred, _ := model.PredictPlan(b.Query.Root, t3.EstCards)
			es = append(es, qerror.QError(pred.Seconds(), b.MedianTotal().Seconds()))
		}
		s := qerror.Summarize(es)
		fmt.Printf("%9.0fx %8.2f %8.2f %8.2f\n", factor, s.P50, s.P90, s.Avg)
	}
	fmt.Println("\nPredictions track estimate quality: with exact cardinalities the model")
	fmt.Println("is accurate; at 1000x distortion the errors are dominated by the inputs.")
	fmt.Println("The paper concludes better cardinality estimation is the most promising")
	fmt.Println("direction for improving performance prediction.")
}
