// The scheduling example demonstrates the paper's motivating use-case (§1):
// a cloud scheduler assigning a spike of concurrent queries to compute
// clusters based on predicted run times.
//
// It benchmarks a TPC-DS-lite workload, trains T3 and a neural-network
// predictor on half of it, and schedules the other half with the simulator
// in internal/sched under four predictors. Two effects compound: more
// accurate predictions place work better (lower makespan), and lower
// prediction latency keeps the dispatcher off the critical path ("each query
// must wait for its prediction before being scheduled").
package main

import (
	"fmt"
	"log"
	"time"

	"t3"
	"t3/internal/benchdata"
	"t3/internal/engine/plan"
	"t3/internal/sched"
	"t3/internal/workload"
	"t3/internal/zeroshot"
)

const clusters = 4

func main() {
	log.SetFlags(0)

	fmt.Println("building workload (one TPC-DS-lite instance)...")
	inst := workload.MustGenerate(workload.TPCDSSpec("tpcds", 2, 11))
	set, err := benchdata.BenchmarkInstance(inst, benchdata.Config{PerGroup: 5, Runs: 2, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	train := set.Queries[:len(set.Queries)/2]
	incoming := set.Queries[len(set.Queries)/2:]
	fmt.Printf("%d training queries, %d incoming queries to schedule\n", len(train), len(incoming))

	params := t3.DefaultParams()
	params.NumRounds = 100
	model, err := t3.Train(train, t3.TrainOptions{Params: params})
	if err != nil {
		log.Fatal(err)
	}
	nnCfg := zeroshot.DefaultTrainConfig()
	nnCfg.Epochs = 10
	nn := zeroshot.Train(train, plan.TrueCards, nnCfg)

	jobs := func(predict func(b *benchdata.BenchedQuery) (time.Duration, time.Duration)) []sched.Job {
		out := make([]sched.Job, len(incoming))
		for i, b := range incoming {
			p, lat := predict(b)
			out[i] = sched.Job{ID: b.Query.Name, Actual: b.MedianTotal(), Predicted: p, PredLatency: lat}
		}
		return out
	}

	t3Jobs := jobs(func(b *benchdata.BenchedQuery) (time.Duration, time.Duration) {
		start := time.Now()
		p, _ := model.PredictPlan(b.Query.Root, t3.TrueCards)
		return p, time.Since(start)
	})
	nnJobs := jobs(func(b *benchdata.BenchedQuery) (time.Duration, time.Duration) {
		start := time.Now()
		p := nn.PredictSeconds(b.Query.Root, plan.TrueCards)
		return time.Duration(p * float64(time.Second)), time.Since(start)
	})
	oracleJobs := jobs(func(b *benchdata.BenchedQuery) (time.Duration, time.Duration) {
		return b.MedianTotal(), 0
	})
	blindJobs := jobs(func(*benchdata.BenchedQuery) (time.Duration, time.Duration) { return 0, 0 })

	fmt.Printf("\nscheduling %d queries onto %d clusters (LPT policy):\n", len(incoming), clusters)
	fmt.Println("  " + sched.Simulate(oracleJobs, clusters, sched.LongestFirst).Format() + "   [oracle]")
	fmt.Println("  " + sched.Simulate(t3Jobs, clusters, sched.LongestFirst).Format() + "   [T3]")
	fmt.Println("  " + sched.Simulate(nnJobs, clusters, sched.LongestFirst).Format() + "   [NN]")
	fmt.Println("  " + sched.Simulate(blindJobs, clusters, sched.RoundRobin).Format() + "   [no predictions]")
	fmt.Println("\nT3's microsecond predictions keep the dispatcher off the critical path")
	fmt.Println("while placing work nearly as well as a perfect oracle.")
}
