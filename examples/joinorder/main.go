// The joinorder example reproduces the paper's join-ordering microbenchmark
// (§5.5) interactively: it optimizes JOB-like queries with DPsize under both
// the Cout cost function and a freshly trained T3 model, then executes the
// chosen plans to compare optimization cost against plan quality.
package main

import (
	"fmt"
	"log"
	"time"

	"t3"
	"t3/internal/benchdata"
	"t3/internal/engine/exec"
	"t3/internal/joinorder"
	"t3/internal/workload"
)

func main() {
	log.SetFlags(0)

	fmt.Println("generating imdb-lite and training T3 on TPC-H-lite...")
	imdb := workload.MustGenerate(workload.IMDBSpec("imdb", 0.02, 5))
	trainInst := workload.MustGenerate(workload.TPCHSpec("tpch", 0.05, 6))
	set, err := benchdata.BenchmarkInstance(trainInst, benchdata.Config{PerGroup: 5, Runs: 2, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	params := t3.DefaultParams()
	params.NumRounds = 100
	model, err := t3.Train(set.Queries, t3.TrainOptions{Params: params})
	if err != nil {
		log.Fatal(err)
	}

	specs := workload.JOBJoinSpecs(imdb)[:20]
	fmt.Printf("optimizing %d JOB-like queries with DPsize\n\n", len(specs))

	var coutOpt, t3Opt time.Duration
	var coutCalls, t3Calls int
	var coutExec, t3Exec time.Duration
	for _, sp := range specs {
		oracle := joinorder.NewExactOracle(imdb, sp)
		// Warm the cardinality oracle so optimization time measures the
		// cost model, not query execution.
		if _, err := joinorder.DPSize(sp, joinorder.NewCout(oracle)); err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		cm := joinorder.NewCout(oracle)
		coutRes, err := joinorder.DPSize(sp, cm)
		if err != nil {
			log.Fatal(err)
		}
		coutOpt += time.Since(start)
		coutCalls += cm.Calls()

		start = time.Now()
		t3cm := joinorder.NewT3Cost(model.Compiled(), model.Registry(), imdb, sp, oracle)
		t3Res, err := joinorder.DPSize(sp, t3cm)
		if err != nil {
			log.Fatal(err)
		}
		t3Opt += time.Since(start)
		t3Calls += t3cm.Calls()

		for _, pair := range []struct {
			tree *joinorder.Tree
			acc  *time.Duration
		}{{coutRes.Tree, &coutExec}, {t3Res.Tree, &t3Exec}} {
			res, err := exec.Run(joinorder.TreeToPlan(imdb, sp, pair.tree), false)
			if err != nil {
				log.Fatal(err)
			}
			*pair.acc += res.Total
		}
		fmt.Printf("%-6s Cout tree %-28s T3 tree %s\n", sp.Name, coutRes.Tree, t3Res.Tree)
	}

	fmt.Printf("\n%-12s %12s %12s %12s %14s\n", "Cost Model", "Opt. Time", "Model Calls", "Time/Call", "Exec. Time")
	fmt.Printf("%-12s %12v %12d %12v %14v\n", "Cout", coutOpt, coutCalls, coutOpt/time.Duration(max(coutCalls, 1)), coutExec)
	fmt.Printf("%-12s %12v %12d %12v %14v\n", "T3", t3Opt, t3Calls, t3Opt/time.Duration(max(t3Calls, 1)), t3Exec)
	fmt.Println("\nAs in the paper: T3 is fast enough to be called hundreds of thousands")
	fmt.Println("of times, but a trivial cost function yields comparable join orders —")
	fmt.Println("performance prediction is not the compelling use-case for join ordering.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
