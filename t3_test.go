package t3

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"t3/internal/benchdata"
	"t3/internal/engine/exec"
	"t3/internal/obs"
	"t3/internal/qerror"
	"t3/internal/workload"
)

// testCorpus builds a small shared corpus once per test binary: a handful of
// training instances and the TPC-DS-lite test instances, all at tiny scale.
var (
	corpusOnce sync.Once
	corpus     *benchdata.Corpus
	corpusErr  error
)

func smallCorpus(t *testing.T) *benchdata.Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		cfg := benchdata.Config{Scale: 0.05, PerGroup: 3, Runs: 3, Seed: 2, ReleaseTables: true}
		corpus, corpusErr = benchdata.BuildCorpus(cfg)
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpus
}

func trainSmall(t *testing.T, c *benchdata.Corpus) *Model {
	t.Helper()
	p := DefaultParams()
	p.NumRounds = 80
	m, err := Train(c.AllTrain(), TrainOptions{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEndToEndTrainAndPredict(t *testing.T) {
	c := smallCorpus(t)
	if len(c.Train) < 20 {
		t.Fatalf("only %d training instances", len(c.Train))
	}
	if len(c.Test) != 3 {
		t.Fatalf("want 3 TPC-DS test instances, got %d", len(c.Test))
	}
	m := trainSmall(t, c)

	// Accuracy on the held-out TPC-DS queries: the model has never seen
	// this schema or data. With a tiny corpus we only require the median
	// q-error to be sane (the paper reaches ~1.2 with 14k queries).
	var es []float64
	for _, b := range c.AllTest() {
		pred, _ := m.PredictPlan(b.Query.Root, TrueCards)
		es = append(es, qerror.QError(pred.Seconds(), b.MedianTotal().Seconds()))
	}
	s := qerror.Summarize(es)
	t.Logf("TPC-DS zero-shot q-error: p50=%.2f p90=%.2f avg=%.2f n=%d", s.P50, s.P90, s.Avg, s.N)
	if s.P50 > 3.0 {
		t.Errorf("median q-error %.2f too high — model failed to generalize", s.P50)
	}

	// Training-set accuracy should be clearly better than test.
	var esTr []float64
	for _, b := range c.AllTrain()[:200] {
		pred, _ := m.PredictPlan(b.Query.Root, TrueCards)
		esTr = append(esTr, qerror.QError(pred.Seconds(), b.MedianTotal().Seconds()))
	}
	st := qerror.Summarize(esTr)
	t.Logf("train q-error: p50=%.2f p90=%.2f avg=%.2f", st.P50, st.P90, st.Avg)
	if st.P50 > 2.0 {
		t.Errorf("train median q-error %.2f too high — model failed to fit", st.P50)
	}
}

func TestCompiledMatchesInterpreted(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	for _, b := range c.AllTest()[:50] {
		compiled, _ := m.PredictPlan(b.Query.Root, TrueCards)
		interp := m.PredictInterpreted(b.Query.Root, TrueCards)
		// The compiled form folds constant trees into the base score
		// (summation order differs) and PredictPlan rounds each pipeline to
		// integer nanoseconds. Allow up to 1ns per pipeline plus relative
		// reassociation noise. Beyond that, the packed tier's float32
		// round-up thresholds may legitimately flip a comparison — but only
		// when a feature value lands inside a documented rounding gap, which
		// InRoundingGap pins exactly.
		floor := float64(len(b.Pipelines)+1) * 1e-9
		if d := math.Abs(compiled.Seconds() - interp.Seconds()); d > floor+1e-6*compiled.Seconds() {
			vecs, _ := m.Registry().PlanVectors(b.Query.Root, TrueCards)
			gap := false
			for _, v := range vecs {
				if m.Compiled().InRoundingGap(v) {
					gap = true
					break
				}
			}
			if !gap {
				t.Fatalf("%s: compiled %v != interpreted %v with no feature value in a float32 rounding gap",
					b.Query.Name, compiled, interp)
			}
		}
	}
}

func TestPredictionsSumOverPipelines(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	b := c.AllTest()[0]
	total, per := m.PredictPlan(b.Query.Root, TrueCards)
	if len(per) != len(b.Pipelines) {
		t.Fatalf("%d pipeline predictions for %d pipelines", len(per), len(b.Pipelines))
	}
	var sum float64
	for _, p := range per {
		sum += p.Total.Seconds()
		if p.Total < 0 || p.PerTupleSeconds < 0 {
			t.Fatalf("negative prediction: %+v", p)
		}
		want := p.PerTupleSeconds * p.Cardinality
		if math.Abs(want-p.Total.Seconds()) > 1e-6*math.Max(want, 1e-9)+1e-9 {
			t.Errorf("pipeline %d: total %v != perTuple*card %v", p.Index, p.Total.Seconds(), want)
		}
	}
	if math.Abs(sum-total.Seconds()) > 1e-6 {
		t.Errorf("sum of pipelines %v != total %v", sum, total.Seconds())
	}
}

func TestSaveLoadModel(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	path := filepath.Join(t.TempDir(), "t3.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range c.AllTest()[:20] {
		a, _ := m.PredictPlan(b.Query.Root, TrueCards)
		z, _ := m2.PredictPlan(b.Query.Root, TrueCards)
		if a != z {
			t.Fatalf("%s: predictions diverged after save/load", b.Query.Name)
		}
	}
}

func TestFeaturize(t *testing.T) {
	c := smallCorpus(t)
	b := c.AllTest()[0]
	vecs, ps := Featurize(b.Query.Root, TrueCards)
	if len(vecs) != len(ps) {
		t.Fatalf("%d vectors for %d pipelines", len(vecs), len(ps))
	}
	for _, v := range vecs {
		nonzero := 0
		for _, x := range v {
			if x != 0 {
				nonzero++
			}
		}
		if nonzero == 0 {
			t.Error("feature vector is all zeros")
		}
	}
}

func TestTrainErrorsOnEmptyInput(t *testing.T) {
	if _, err := Train(nil, TrainOptions{}); err == nil {
		t.Fatal("expected error for empty training set")
	}
}

func TestPredictPipeline(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	b := c.AllTest()[0]
	total, per := m.PredictPlan(b.Query.Root, TrueCards)
	var sum float64
	for i, p := range b.Pipelines {
		single := m.PredictPipeline(p, TrueCards)
		if single.Total != per[i].Total {
			t.Fatalf("pipeline %d: PredictPipeline %v != PredictPlan %v", i, single.Total, per[i].Total)
		}
		sum += single.Total.Seconds()
	}
	if math.Abs(sum-total.Seconds()) > 1e-6 {
		t.Errorf("pipeline sum %v != plan total %v", sum, total.Seconds())
	}
}

func TestModelAccessors(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	if m.Registry() == nil || m.Boosted() == nil || m.Compiled() == nil {
		t.Fatal("accessors returned nil")
	}
	if m.Registry().NumFeatures() != m.Boosted().NumFeatures {
		t.Error("registry/model feature mismatch")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent/model.json"); err == nil {
		t.Error("missing model should fail")
	}
	// A structurally valid gbdt model with the wrong feature count must be
	// rejected by NewModel.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"num_features":3,"trees":[],"base_score":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("feature-count mismatch should fail")
	}
}

func TestEstCardPredictionUsesEstimates(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	// Find a query whose estimates diverge from truth; predictions under
	// the two modes should then differ.
	for _, b := range c.AllTest() {
		root := b.Query.Root
		diverges := false
		root.Walk(func(n *Plan) {
			if n.OutCard.Est > 2*n.OutCard.True+10 || n.OutCard.True > 2*n.OutCard.Est+10 {
				diverges = true
			}
		})
		if !diverges {
			continue
		}
		pTrue, _ := m.PredictPlan(root, TrueCards)
		pEst, _ := m.PredictPlan(root, EstCards)
		if pTrue == pEst {
			t.Fatalf("%s: predictions identical despite diverging cards", b.Query.Name)
		}
		return
	}
	t.Skip("no query with diverging estimates found")
}

func TestPredictPlanScratchMatchesPredictPlan(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	var s PredictScratch
	for _, b := range c.AllTest()[:50] {
		want, wantPer := m.PredictPlan(b.Query.Root, TrueCards)
		got, gotPer := m.PredictPlanScratch(b.Query.Root, TrueCards, &s)
		if got != want {
			t.Fatalf("%s: scratch total %v != %v", b.Query.Name, got, want)
		}
		if len(gotPer) != len(wantPer) {
			t.Fatalf("%s: %d pipeline predictions, want %d", b.Query.Name, len(gotPer), len(wantPer))
		}
		for i := range gotPer {
			if gotPer[i] != wantPer[i] {
				t.Fatalf("%s pipeline %d: %+v != %+v", b.Query.Name, i, gotPer[i], wantPer[i])
			}
		}
	}
}

// TestPredictScratchZeroAlloc pins the headline property of this hot path:
// once a scratch has warmed up, a full featurize -> packed predict ->
// per-pipeline sum cycle performs zero heap allocations.
func TestPredictScratchZeroAlloc(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	root := c.AllTest()[0].Query.Root
	var s PredictScratch
	m.PredictPlanScratch(root, TrueCards, &s) // warm the scratch
	if allocs := testing.AllocsPerRun(200, func() {
		m.PredictPlanScratch(root, TrueCards, &s)
	}); allocs != 0 {
		t.Fatalf("PredictPlanScratch allocates %.1f objects per run, want 0", allocs)
	}
}

// TestPredictBatchIntoZeroAlloc: the single-worker batch loop reuses pooled
// scratches and a caller-owned output slice, so it allocates nothing either.
func TestPredictBatchIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	c := smallCorpus(t)
	m := trainSmall(t, c)
	m.SetWorkers(1)
	defer m.SetWorkers(0)
	roots := make([]*Plan, 0, 16)
	for _, b := range c.AllTest()[:16] {
		roots = append(roots, b.Query.Root)
	}
	out := make([]time.Duration, len(roots))
	m.PredictBatchInto(roots, TrueCards, out) // warm the pooled scratch
	if allocs := testing.AllocsPerRun(100, func() {
		m.PredictBatchInto(roots, TrueCards, out)
	}); allocs != 0 {
		t.Fatalf("PredictBatchInto allocates %.1f objects per run, want 0", allocs)
	}
}

func TestPredictBatchIntoMatchesPredictPlan(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	var roots []*Plan
	for _, b := range c.AllTest() {
		roots = append(roots, b.Query.Root)
	}
	var want []time.Duration
	for _, r := range roots {
		d, _ := m.PredictPlan(r, TrueCards)
		want = append(want, d)
	}
	for _, workers := range []int{0, 1, 2, 7} {
		m.SetWorkers(workers)
		got := m.PredictBatch(roots, TrueCards)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d plan %d: batch %v != single %v", workers, i, got[i], want[i])
			}
		}
	}
	m.SetWorkers(0)
}

// TestPackedTierServesPredictions pins that the public prediction path runs
// on the packed tier and that it agrees with the flat tier on real plans
// (any disagreement must be a documented float32 rounding gap).
func TestPackedTierServesPredictions(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	if m.Packed() == nil {
		t.Fatal("model has no packed evaluator")
	}
	if m.Tier() == "" {
		t.Fatal("model reports no tier")
	}
	flat, packed := m.Compiled(), m.Packed()
	gaps := 0
	for _, b := range c.AllTest() {
		vecs, _ := m.Registry().PlanVectors(b.Query.Root, TrueCards)
		for _, v := range vecs {
			pf, pp := flat.Predict(v), packed.Predict(v)
			if pf != pp {
				gaps++
				if !flat.InRoundingGap(v) {
					t.Fatalf("%s: packed %v != flat %v with no rounding gap", b.Query.Name, pp, pf)
				}
			}
		}
	}
	t.Logf("%d pipeline vectors hit rounding gaps", gaps)
}

// TestObservabilityIntegration pins that the prediction, batch, and drift
// paths feed the obs registry: counters advance, the latency histogram
// fills, and PredictAndRun scores q-errors against real engine executions.
func TestObservabilityIntegration(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	test := c.AllTest()

	before := obs.Predictions.Value()
	latBefore := obs.PredictLatency.Snapshot().Count
	for _, b := range test[:10] {
		m.PredictPlan(b.Query.Root, TrueCards)
	}
	if got := obs.Predictions.Value() - before; got < 10 {
		t.Fatalf("predictions counter advanced by %d, want >= 10", got)
	}
	if got := obs.PredictLatency.Snapshot().Count - latBefore; got < 10 {
		t.Fatalf("latency histogram recorded %d, want >= 10", got)
	}

	batchBefore := obs.PredictBatches.Value()
	roots := make([]*Plan, 5)
	for i, b := range test[:5] {
		roots[i] = b.Query.Root
	}
	m.PredictBatch(roots, TrueCards)
	if obs.PredictBatches.Value() != batchBefore+1 {
		t.Fatal("batch counter did not advance")
	}

	// PredictAndRun needs a plan whose tables are still bound (the shared
	// corpus releases them), so build a tiny live instance.
	in := workload.MustGenerate(workload.TPCHSpec("obs_tpch", 0.01, 7))
	root := workload.TPCHBenchmarkQueries(in)[0].Root
	if err := exec.AnnotateTrueCards(root); err != nil {
		t.Fatal(err)
	}
	driftBefore := obs.QErrorDrift.Snapshot().Count
	pred, actual, q, err := m.PredictAndRun(root, TrueCards)
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 || actual <= 0 || q < 1 {
		t.Fatalf("implausible PredictAndRun result: pred=%v actual=%v q=%v", pred, actual, q)
	}
	if wantQ := qerror.QError(pred.Seconds(), actual.Seconds()); q != wantQ {
		t.Fatalf("q-error %v, want %v", q, wantQ)
	}
	if got := obs.QErrorDrift.Snapshot().Count - driftBefore; got < 1 {
		t.Fatal("drift histogram did not record the observation")
	}

	// The sampled stage spans must stay consistent: decompose + featurize +
	// tree-eval all record the same number of admitted predictions.
	d := obs.PredictDecompose.Snapshot().Count
	f := obs.PredictFeaturize.Snapshot().Count
	e := obs.PredictTreeEval.Snapshot().Count
	if d != f || f != e {
		t.Fatalf("stage span counts diverge: decompose=%d featurize=%d treeeval=%d", d, f, e)
	}
}
