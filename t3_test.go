package t3

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"t3/internal/benchdata"
	"t3/internal/qerror"
)

// testCorpus builds a small shared corpus once per test binary: a handful of
// training instances and the TPC-DS-lite test instances, all at tiny scale.
var (
	corpusOnce sync.Once
	corpus     *benchdata.Corpus
	corpusErr  error
)

func smallCorpus(t *testing.T) *benchdata.Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		cfg := benchdata.Config{Scale: 0.05, PerGroup: 3, Runs: 3, Seed: 2, ReleaseTables: true}
		corpus, corpusErr = benchdata.BuildCorpus(cfg)
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpus
}

func trainSmall(t *testing.T, c *benchdata.Corpus) *Model {
	t.Helper()
	p := DefaultParams()
	p.NumRounds = 80
	m, err := Train(c.AllTrain(), TrainOptions{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEndToEndTrainAndPredict(t *testing.T) {
	c := smallCorpus(t)
	if len(c.Train) < 20 {
		t.Fatalf("only %d training instances", len(c.Train))
	}
	if len(c.Test) != 3 {
		t.Fatalf("want 3 TPC-DS test instances, got %d", len(c.Test))
	}
	m := trainSmall(t, c)

	// Accuracy on the held-out TPC-DS queries: the model has never seen
	// this schema or data. With a tiny corpus we only require the median
	// q-error to be sane (the paper reaches ~1.2 with 14k queries).
	var es []float64
	for _, b := range c.AllTest() {
		pred, _ := m.PredictPlan(b.Query.Root, TrueCards)
		es = append(es, qerror.QError(pred.Seconds(), b.MedianTotal().Seconds()))
	}
	s := qerror.Summarize(es)
	t.Logf("TPC-DS zero-shot q-error: p50=%.2f p90=%.2f avg=%.2f n=%d", s.P50, s.P90, s.Avg, s.N)
	if s.P50 > 3.0 {
		t.Errorf("median q-error %.2f too high — model failed to generalize", s.P50)
	}

	// Training-set accuracy should be clearly better than test.
	var esTr []float64
	for _, b := range c.AllTrain()[:200] {
		pred, _ := m.PredictPlan(b.Query.Root, TrueCards)
		esTr = append(esTr, qerror.QError(pred.Seconds(), b.MedianTotal().Seconds()))
	}
	st := qerror.Summarize(esTr)
	t.Logf("train q-error: p50=%.2f p90=%.2f avg=%.2f", st.P50, st.P90, st.Avg)
	if st.P50 > 2.0 {
		t.Errorf("train median q-error %.2f too high — model failed to fit", st.P50)
	}
}

func TestCompiledMatchesInterpreted(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	for _, b := range c.AllTest()[:50] {
		compiled, _ := m.PredictPlan(b.Query.Root, TrueCards)
		interp := m.PredictInterpreted(b.Query.Root, TrueCards)
		// The compiled form folds constant trees into the base score
		// (summation order differs) and PredictPlan rounds each pipeline to
		// integer nanoseconds. Allow up to 1ns per pipeline plus relative
		// reassociation noise.
		floor := float64(len(b.Pipelines)+1) * 1e-9
		if d := math.Abs(compiled.Seconds() - interp.Seconds()); d > floor+1e-6*compiled.Seconds() {
			t.Fatalf("%s: compiled %v != interpreted %v", b.Query.Name, compiled, interp)
		}
	}
}

func TestPredictionsSumOverPipelines(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	b := c.AllTest()[0]
	total, per := m.PredictPlan(b.Query.Root, TrueCards)
	if len(per) != len(b.Pipelines) {
		t.Fatalf("%d pipeline predictions for %d pipelines", len(per), len(b.Pipelines))
	}
	var sum float64
	for _, p := range per {
		sum += p.Total.Seconds()
		if p.Total < 0 || p.PerTupleSeconds < 0 {
			t.Fatalf("negative prediction: %+v", p)
		}
		want := p.PerTupleSeconds * p.Cardinality
		if math.Abs(want-p.Total.Seconds()) > 1e-6*math.Max(want, 1e-9)+1e-9 {
			t.Errorf("pipeline %d: total %v != perTuple*card %v", p.Index, p.Total.Seconds(), want)
		}
	}
	if math.Abs(sum-total.Seconds()) > 1e-6 {
		t.Errorf("sum of pipelines %v != total %v", sum, total.Seconds())
	}
}

func TestSaveLoadModel(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	path := filepath.Join(t.TempDir(), "t3.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range c.AllTest()[:20] {
		a, _ := m.PredictPlan(b.Query.Root, TrueCards)
		z, _ := m2.PredictPlan(b.Query.Root, TrueCards)
		if a != z {
			t.Fatalf("%s: predictions diverged after save/load", b.Query.Name)
		}
	}
}

func TestFeaturize(t *testing.T) {
	c := smallCorpus(t)
	b := c.AllTest()[0]
	vecs, ps := Featurize(b.Query.Root, TrueCards)
	if len(vecs) != len(ps) {
		t.Fatalf("%d vectors for %d pipelines", len(vecs), len(ps))
	}
	for _, v := range vecs {
		nonzero := 0
		for _, x := range v {
			if x != 0 {
				nonzero++
			}
		}
		if nonzero == 0 {
			t.Error("feature vector is all zeros")
		}
	}
}

func TestTrainErrorsOnEmptyInput(t *testing.T) {
	if _, err := Train(nil, TrainOptions{}); err == nil {
		t.Fatal("expected error for empty training set")
	}
}

func TestPredictPipeline(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	b := c.AllTest()[0]
	total, per := m.PredictPlan(b.Query.Root, TrueCards)
	var sum float64
	for i, p := range b.Pipelines {
		single := m.PredictPipeline(p, TrueCards)
		if single.Total != per[i].Total {
			t.Fatalf("pipeline %d: PredictPipeline %v != PredictPlan %v", i, single.Total, per[i].Total)
		}
		sum += single.Total.Seconds()
	}
	if math.Abs(sum-total.Seconds()) > 1e-6 {
		t.Errorf("pipeline sum %v != plan total %v", sum, total.Seconds())
	}
}

func TestModelAccessors(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	if m.Registry() == nil || m.Boosted() == nil || m.Compiled() == nil {
		t.Fatal("accessors returned nil")
	}
	if m.Registry().NumFeatures() != m.Boosted().NumFeatures {
		t.Error("registry/model feature mismatch")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent/model.json"); err == nil {
		t.Error("missing model should fail")
	}
	// A structurally valid gbdt model with the wrong feature count must be
	// rejected by NewModel.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"num_features":3,"trees":[],"base_score":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("feature-count mismatch should fail")
	}
}

func TestEstCardPredictionUsesEstimates(t *testing.T) {
	c := smallCorpus(t)
	m := trainSmall(t, c)
	// Find a query whose estimates diverge from truth; predictions under
	// the two modes should then differ.
	for _, b := range c.AllTest() {
		root := b.Query.Root
		diverges := false
		root.Walk(func(n *Plan) {
			if n.OutCard.Est > 2*n.OutCard.True+10 || n.OutCard.True > 2*n.OutCard.Est+10 {
				diverges = true
			}
		})
		if !diverges {
			continue
		}
		pTrue, _ := m.PredictPlan(root, TrueCards)
		pEst, _ := m.PredictPlan(root, EstCards)
		if pTrue == pEst {
			t.Fatalf("%s: predictions identical despite diverging cards", b.Query.Name)
		}
		return
	}
	t.Skip("no query with diverging estimates found")
}
