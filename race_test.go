//go:build race

package t3

// raceEnabled reports whether the race detector is active; allocation-count
// guards are skipped under it (its instrumentation allocates, e.g. inside
// sync.Pool).
const raceEnabled = true
