// Package feature turns pipelines into the flat feature vectors T3's
// decision-tree model consumes (§3 of the paper).
//
// Every (operator type, stage) pair declares a small list of named basic
// features — percentages, tuple sizes, and cardinalities over the stage's
// tuple streams (IN, OUT, RIGHT) — plus an occurrence count. A Registry
// assigns each (operator, stage, feature) a fixed index in the vector, so
// adding operators or features requires only extending the spec table
// ("little manual work"). Duplicate stages within one pipeline (e.g. chains
// of join probes) are folded by feature addition: the basic features are
// designed to stay meaningful when summed (§3, "Duplicate Operators").
//
// All features are tuple-centric: they describe the expected work caused by
// one tuple entering the pipeline, matching T3's per-tuple prediction
// targets.
package feature

import (
	"fmt"
	"sort"
	"strings"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
)

// Basic feature names. The set mirrors the paper's percentage / size /
// cardinality trio plus the table-scan predicate-class percentages.
const (
	// FCount counts occurrences of the stage in the pipeline.
	FCount = "count"
	// FInCard is the cardinality of the stream entering the stage (for
	// pipeline sources: the scanned cardinality).
	FInCard = "in_card"
	// FInSize is the width in bytes of tuples materialized or consumed by
	// the stage.
	FInSize = "in_size"
	// FInPct is the fraction of pipeline-source tuples reaching the stage.
	FInPct = "in_percentage"
	// FOutPct is the fraction of pipeline-source tuples leaving the stage.
	FOutPct = "out_percentage"
	// FRightPct is the fraction of pipeline-source tuples arriving on the
	// RIGHT stream of a probe stage.
	FRightPct = "right_percentage"
	// FOutCard is the cardinality of the stage's OUT stream (e.g. group
	// count for aggregations).
	FOutCard = "out_card"
	// FOutSize is the width in bytes of tuples on the OUT stream.
	FOutSize = "out_size"
	// FHTCard is the cardinality of the hash table probed by a probe stage
	// (the build side's materialized cardinality).
	FHTCard = "ht_card"
	// FExprPrefix prefixes the per-predicate-class evaluation percentages of
	// table scans, e.g. "expr_between_percentage".
	FExprPrefix = "expr_"
)

// exprPctName returns the feature name for a predicate class.
func exprPctName(c expr.Class) string {
	return FExprPrefix + c.String() + "_percentage"
}

// StageKey identifies an operator stage.
type StageKey struct {
	Op    plan.OpType
	Stage plan.Stage
}

// String renders the key as "HashJoin_Build".
func (k StageKey) String() string { return fmt.Sprintf("%s_%s", k.Op, k.Stage) }

// Spec maps each operator stage to its ordered list of basic features.
type Spec map[StageKey][]string

// DefaultSpec returns the hand-selected feature lists for all operator
// stages the engine produces (§3, "Basic Features").
func DefaultSpec() Spec {
	scanExprs := []string{
		exprPctName(expr.ClassComparison),
		exprPctName(expr.ClassBetween),
		exprPctName(expr.ClassIn),
		exprPctName(expr.ClassLike),
		exprPctName(expr.ClassOther),
	}
	s := Spec{
		{plan.TableScanOp, plan.StageScan}: append([]string{FCount, FInCard, FOutPct, FOutSize}, scanExprs...),

		{plan.FilterOp, plan.StagePassThrough}: {FCount, FInPct, FOutPct},
		{plan.MapOp, plan.StagePassThrough}:    {FCount, FInPct, FOutSize},
		{plan.LimitOp, plan.StagePassThrough}:  {FCount, FInPct, FOutPct},

		{plan.HashJoinOp, plan.StageBuild}: {FCount, FInCard, FInSize, FInPct},
		{plan.HashJoinOp, plan.StageProbe}: {FCount, FHTCard, FRightPct, FOutPct, FOutSize},

		{plan.GroupByOp, plan.StageBuild}: {FCount, FInPct, FOutCard, FOutSize},
		{plan.GroupByOp, plan.StageScan}:  {FCount, FInCard, FOutSize},

		{plan.SortOp, plan.StageBuild}: {FCount, FInCard, FInSize, FInPct},
		{plan.SortOp, plan.StageScan}:  {FCount, FInCard, FOutSize},

		{plan.WindowOp, plan.StageBuild}: {FCount, FInCard, FInSize, FInPct},
		{plan.WindowOp, plan.StageScan}:  {FCount, FInCard, FOutSize},

		{plan.MaterializeOp, plan.StageBuild}: {FCount, FInCard, FInSize, FInPct},
		{plan.MaterializeOp, plan.StageScan}:  {FCount, FInCard, FOutSize},
	}
	return s
}

// Registry assigns every (operator stage, feature) a fixed vector index.
type Registry struct {
	spec    Spec
	index   map[StageKey]map[string]int
	names   []string
	numFeat int
	// entries caches (feature name, index) pairs per stage indexed by
	// [op][stage] for allocation-free featurization on the prediction path.
	entries [plan.NumOpTypes][plan.NumStages][]regEntry
}

// regEntry pairs a feature name with its vector index.
type regEntry struct {
	name string
	idx  int
}

// NewRegistry builds a registry from a spec with deterministic index
// assignment (stages sorted by operator then stage, features in spec order).
func NewRegistry(spec Spec) *Registry {
	keys := make([]StageKey, 0, len(spec))
	for k := range spec {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Op != keys[j].Op {
			return keys[i].Op < keys[j].Op
		}
		return keys[i].Stage < keys[j].Stage
	})
	r := &Registry{spec: spec, index: make(map[StageKey]map[string]int)}
	for _, k := range keys {
		m := make(map[string]int, len(spec[k]))
		for _, f := range spec[k] {
			m[f] = r.numFeat
			r.names = append(r.names, k.String()+"_"+f)
			r.entries[k.Op][k.Stage] = append(r.entries[k.Op][k.Stage], regEntry{name: f, idx: r.numFeat})
			r.numFeat++
		}
		r.index[k] = m
	}
	return r
}

// NewDefaultRegistry builds the registry for the default spec.
func NewDefaultRegistry() *Registry { return NewRegistry(DefaultSpec()) }

// NumFeatures returns the length of the feature vectors (the paper's
// n_features, 110 in their implementation).
func (r *Registry) NumFeatures() int { return r.numFeat }

// Names returns the feature names by index.
func (r *Registry) Names() []string { return r.names }

// Location returns the vector index of a feature of an operator stage, or
// -1 when the stage does not use that feature (the paper's getLocation).
func (r *Registry) Location(k StageKey, feature string) int {
	m, ok := r.index[k]
	if !ok {
		return -1
	}
	i, ok := m[feature]
	if !ok {
		return -1
	}
	return i
}

// effectiveSourceCard clamps the pipeline input cardinality to at least one
// tuple so that per-tuple targets stay defined for empty pipelines.
func effectiveSourceCard(p *plan.Pipeline, mode plan.CardMode) float64 {
	c := p.SourceCard(mode)
	if c < 1 {
		return 1
	}
	return c
}

// SourceCard returns the (clamped) input cardinality of the pipeline that
// T3 multiplies per-tuple predictions by.
func SourceCard(p *plan.Pipeline, mode plan.CardMode) float64 {
	return effectiveSourceCard(p, mode)
}

// PipelineVector encodes one pipeline as a flat feature vector, following
// the paper's Listing 1.
func (r *Registry) PipelineVector(p *plan.Pipeline, mode plan.CardMode) []float64 {
	vec := make([]float64, r.numFeat)
	r.PipelineVectorInto(p, mode, vec)
	return vec
}

// PipelineVectorInto encodes the pipeline into a caller-provided vector of
// length NumFeatures (zeroing it first), avoiding allocation on the
// prediction hot path.
func (r *Registry) PipelineVectorInto(p *plan.Pipeline, mode plan.CardMode, vec []float64) {
	for i := range vec {
		vec[i] = 0
	}
	src := effectiveSourceCard(p, mode)
	for si := range p.Stages {
		s := &p.Stages[si]
		for _, ent := range r.entries[s.Node.Op][s.Stage] {
			if ent.name == FCount {
				vec[ent.idx]++
				continue
			}
			vec[ent.idx] += stageFeature(ent.name, p, si, src, mode)
		}
	}
}

// AppendVec appends the pipeline's feature vector (NumFeatures values) to
// dst and returns the extended slice. Callers that reuse dst's backing array
// across calls featurize whole plans into one contiguous buffer without
// allocating — the packed evaluator's preferred input layout.
func (r *Registry) AppendVec(dst []float64, p *plan.Pipeline, mode plan.CardMode) []float64 {
	n := len(dst)
	if cap(dst)-n < r.numFeat {
		grown := make([]float64, n, 2*n+r.numFeat)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:n+r.numFeat]
	r.PipelineVectorInto(p, mode, dst[n:])
	return dst
}

// Scratch holds reusable storage for allocation-free plan featurization:
// pipeline decomposition state, one flat buffer backing all pipeline
// vectors, and the vector views into it. The zero value is ready to use.
type Scratch struct {
	Pipes plan.PipelineScratch
	buf   []float64
	vecs  [][]float64
}

// FeaturizeInto decomposes a plan and encodes every pipeline into the
// scratch, returning the vectors and pipelines. Both alias the scratch and
// are valid only until its next FeaturizeInto call; after a few calls the
// scratch capacities stabilize and featurization stops allocating.
func (r *Registry) FeaturizeInto(s *Scratch, root *plan.Node, mode plan.CardMode) ([][]float64, []*plan.Pipeline) {
	ps := plan.DecomposeInto(root, &s.Pipes)
	return r.EncodeDecomposed(s, ps, mode), ps
}

// EncodeDecomposed encodes already-decomposed pipelines into the scratch —
// the second half of FeaturizeInto, split out so instrumented callers can
// time decomposition and featurization as separate stages. The returned
// vectors alias the scratch.
func (r *Registry) EncodeDecomposed(s *Scratch, ps []*plan.Pipeline, mode plan.CardMode) [][]float64 {
	s.buf = s.buf[:0]
	for _, p := range ps {
		s.buf = r.AppendVec(s.buf, p, mode)
	}
	// Views are cut only after the buffer stops growing, so they can never
	// dangle into a reallocated backing array.
	s.vecs = s.vecs[:0]
	for i := range ps {
		s.vecs = append(s.vecs, s.buf[i*r.numFeat:(i+1)*r.numFeat])
	}
	return s.vecs
}

// PlanVectors decomposes a plan and encodes all pipelines. It returns the
// vectors together with the pipelines so callers can pair predictions with
// source cardinalities.
func (r *Registry) PlanVectors(root *plan.Node, mode plan.CardMode) ([][]float64, []*plan.Pipeline) {
	ps := plan.Decompose(root)
	vecs := make([][]float64, len(ps))
	for i, p := range ps {
		vecs[i] = r.PipelineVector(p, mode)
	}
	return vecs, ps
}

// stageFeature computes the value of one named basic feature for stage si of
// pipeline p. src is the clamped pipeline source cardinality.
func stageFeature(name string, p *plan.Pipeline, si int, src float64, mode plan.CardMode) float64 {
	s := p.Stages[si]
	n := s.Node
	switch name {
	case FInCard:
		if si == 0 {
			return p.SourceCard(mode)
		}
		return p.ReachCard(si, mode)
	case FInPct:
		return p.ReachCard(si, mode) / src
	case FRightPct:
		// Probe stages consume the pipeline's running stream as their RIGHT
		// input.
		return p.ReachCard(si, mode) / src
	case FOutPct:
		return n.OutCard.Get(mode) / src
	case FOutCard:
		return n.OutCard.Get(mode)
	case FOutSize:
		return float64(n.OutWidth())
	case FHTCard:
		// Cardinality of the probed hash table: the build side's output.
		if n.Left != nil {
			return n.Left.OutCard.Get(mode)
		}
		return 0
	case FInSize:
		return float64(materializedWidth(n))
	default:
		if strings.HasPrefix(name, FExprPrefix) {
			return exprClassPct(n, name, mode)
		}
		return 0
	}
}

// materializedWidth returns the byte width a build stage materializes per
// tuple. Joins store only key and payload columns (cf. the paper's Q5
// example where the hash table stores a single 8-byte key).
func materializedWidth(n *plan.Node) int {
	switch n.Op {
	case plan.HashJoinOp:
		if n.BuildWidth > 0 {
			return n.BuildWidth
		}
		w := 0
		for _, ci := range n.BuildKeys {
			w += n.Left.Schema[ci].Kind.Width()
		}
		for _, ci := range n.BuildPayload {
			w += n.Left.Schema[ci].Kind.Width()
		}
		return w
	default:
		return n.InWidth()
	}
}

// exprClassPct computes, for a table scan, the fraction of scanned tuples on
// which predicates of the class encoded in name are evaluated. Predicates
// short-circuit in order, so predicate i is evaluated on the tuples passing
// predicates 0..i-1 (§3, "Table Scan Operators").
func exprClassPct(n *plan.Node, name string, mode plan.CardMode) float64 {
	if n.Op != plan.TableScanOp {
		return 0
	}
	class := strings.TrimSuffix(strings.TrimPrefix(name, FExprPrefix), "_percentage")
	total := 0.0
	reach := 1.0
	for i, pred := range n.Predicates {
		if pred.Class().String() == class {
			total += reach
		}
		reach *= n.PredSel[i].Get(mode)
	}
	return total
}

// Describe renders a vector with feature names, omitting zeros — the format
// of the paper's Listings 3 and 4. Useful for debugging and the quickstart
// example.
func (r *Registry) Describe(vec []float64) string {
	var sb strings.Builder
	for i, v := range vec {
		if v == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%s: %g\n", r.names[i], v)
	}
	return sb.String()
}
