package feature

import (
	"strings"
	"testing"

	"t3/internal/engine/exec"
	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

func TestRegistryAssignsStableDistinctIndices(t *testing.T) {
	r1 := NewDefaultRegistry()
	r2 := NewDefaultRegistry()
	if r1.NumFeatures() != r2.NumFeatures() {
		t.Fatal("registry size not deterministic")
	}
	names := r1.Names()
	if len(names) != r1.NumFeatures() {
		t.Fatalf("%d names for %d features", len(names), r1.NumFeatures())
	}
	seen := map[string]bool{}
	for i, n := range names {
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
		if r2.Names()[i] != n {
			t.Errorf("index %d: %q vs %q across registries", i, n, r2.Names()[i])
		}
	}
}

func TestRegistryLocation(t *testing.T) {
	r := NewDefaultRegistry()
	scan := StageKey{Op: plan.TableScanOp, Stage: plan.StageScan}
	if i := r.Location(scan, FCount); i < 0 {
		t.Error("TableScan_Scan_count missing")
	}
	if i := r.Location(scan, FHTCard); i >= 0 {
		t.Error("table scans should not have an ht_card feature")
	}
	if i := r.Location(StageKey{Op: plan.TableScanOp, Stage: plan.StageBuild}, FCount); i >= 0 {
		t.Error("TableScan has no build stage")
	}
	// getLocation returning -1 for unused features is the paper's Listing 1
	// contract.
	if i := r.Location(scan, "nonexistent"); i != -1 {
		t.Errorf("unknown feature returned %d", i)
	}
}

// q5LikeTable builds a small table shaped like the paper's customer example.
func q5LikeTable() *storage.Table {
	n := 10000
	ids := make([]int64, n)
	nk := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
		nk[i] = int64(i % 25)
	}
	return storage.MustNewTable("customer",
		storage.Column{Name: "id", Kind: storage.Int64, Ints: ids},
		storage.Column{Name: "c_nationkey", Kind: storage.Int64, Ints: nk},
	)
}

// TestListing3Shape reproduces the feature vector of the paper's Listing 3:
// a scan with BETWEEN + IN predicates feeding a hash-join build.
func TestListing3Shape(t *testing.T) {
	cust := q5LikeTable()
	scan := plan.NewTableScan(cust, []int{0, 1},
		expr.NewBetween(expr.Col(1, "c_nationkey", storage.Int64), expr.ConstInt(8), expr.ConstInt(21)),
		expr.NewInListInts(expr.Col(1, "c_nationkey", storage.Int64), []int64{8, 9, 12, 18, 21}),
	)
	// Build side of a hash join keyed on id only: materialized width 8.
	probe := plan.NewTableScan(q5LikeTable(), []int{0})
	join := plan.NewHashJoin(scan, probe, []int{0}, []int{0}, nil)
	if err := exec.AnnotateTrueCards(join); err != nil {
		t.Fatal(err)
	}

	r := NewDefaultRegistry()
	ps := plan.Decompose(join)
	// Pipeline 0: customer scan -> join build.
	vec := r.PipelineVector(ps[0], plan.TrueCards)

	get := func(key StageKey, name string) float64 {
		i := r.Location(key, name)
		if i < 0 {
			t.Fatalf("no feature %v %s", key, name)
		}
		return vec[i]
	}
	scanKey := StageKey{Op: plan.TableScanOp, Stage: plan.StageScan}
	buildKey := StageKey{Op: plan.HashJoinOp, Stage: plan.StageBuild}

	if got := get(scanKey, FCount); got != 1 {
		t.Errorf("scan count = %v", got)
	}
	if got := get(scanKey, FInCard); got != 10000 {
		t.Errorf("scan in_card = %v", got)
	}
	// BETWEEN 8..21 selects 14/25, IN selects 5 of those 14.
	wantBetween := 1.0 // evaluated on all tuples
	if got := get(scanKey, "expr_between_percentage"); got != wantBetween {
		t.Errorf("between pct = %v, want %v", got, wantBetween)
	}
	inPct := get(scanKey, "expr_in_percentage")
	if inPct <= 0.5 || inPct >= 0.6 {
		t.Errorf("in pct = %v, want ~0.56 (14/25)", inPct)
	}
	outPct := get(scanKey, FOutPct)
	if outPct <= 0.19 || outPct >= 0.21 {
		t.Errorf("out pct = %v, want ~0.2 (5/25)", outPct)
	}
	if got := get(buildKey, FCount); got != 1 {
		t.Errorf("build count = %v", got)
	}
	// Hash table stores only the 8-byte key (no payload).
	if got := get(buildKey, FInSize); got != 8 {
		t.Errorf("build in_size = %v, want 8", got)
	}
	if got := get(buildKey, FInPct); outPct != got {
		t.Errorf("build in_percentage = %v, want %v", got, outPct)
	}
}

// TestListing4DuplicateProbes reproduces the paper's Listing 4: two probe
// stages in one pipeline fold by feature addition, count = 2 and summed
// percentages.
func TestListing4DuplicateProbes(t *testing.T) {
	build1 := plan.NewTableScan(q5LikeTable(), []int{0})
	build2 := plan.NewTableScan(q5LikeTable(), []int{0},
		expr.NewCmp(expr.Lt, expr.Col(0, "id", storage.Int64), expr.ConstInt(300)))
	probeSrc := plan.NewTableScan(q5LikeTable(), []int{0})
	j1 := plan.NewHashJoin(build1, probeSrc, []int{0}, []int{0}, nil)
	j2 := plan.NewHashJoin(build2, j1, []int{0}, []int{0}, nil)
	if err := exec.AnnotateTrueCards(j2); err != nil {
		t.Fatal(err)
	}

	r := NewDefaultRegistry()
	ps := plan.Decompose(j2)
	// Final pipeline: probe source scan -> probe j1 -> probe j2.
	last := ps[len(ps)-1]
	if len(last.Stages) != 3 {
		t.Fatalf("probe pipeline has %d stages", len(last.Stages))
	}
	vec := r.PipelineVector(last, plan.TrueCards)
	probeKey := StageKey{Op: plan.HashJoinOp, Stage: plan.StageProbe}
	if got := vec[r.Location(probeKey, FCount)]; got != 2 {
		t.Errorf("probe count = %v, want 2 (duplicate stages fold by addition)", got)
	}
	// First probe sees 100% of tuples, second sees 100% (1:1 join), so the
	// expected probes per tuple sum to ~2.
	rightPct := vec[r.Location(probeKey, FRightPct)]
	if rightPct < 1.9 || rightPct > 2.1 {
		t.Errorf("summed right pct = %v, want ~2", rightPct)
	}
	// ht_card sums both hash-table sizes: 10000 + 300.
	htCard := vec[r.Location(probeKey, FHTCard)]
	if htCard != 10300 {
		t.Errorf("summed ht card = %v, want 10300", htCard)
	}
}

func TestVectorInvariantsOnGeneratedPlans(t *testing.T) {
	cust := q5LikeTable()
	scan := plan.NewTableScan(cust, []int{0, 1})
	gb := plan.NewGroupBy(scan, []int{1}, []plan.Agg{{Fn: plan.AggCount}}, []string{"c"})
	srt := plan.NewSort(gb, []int{1}, []bool{true})
	if err := exec.AnnotateTrueCards(srt); err != nil {
		t.Fatal(err)
	}
	r := NewDefaultRegistry()
	vecs, ps := r.PlanVectors(srt, plan.TrueCards)
	if len(vecs) != len(ps) {
		t.Fatal("vector/pipeline count mismatch")
	}
	for i, v := range vecs {
		if len(v) != r.NumFeatures() {
			t.Fatalf("pipeline %d: vector length %d", i, len(v))
		}
		for f, x := range v {
			if x < 0 {
				t.Errorf("pipeline %d: negative feature %s = %v", i, r.Names()[f], x)
			}
		}
		// Exactly the stages present have nonzero counts.
		for _, s := range ps[i].Stages {
			ci := r.Location(StageKey{Op: s.Node.Op, Stage: s.Stage}, FCount)
			if ci >= 0 && v[ci] == 0 {
				t.Errorf("pipeline %d: stage %v %v has zero count", i, s.Node.Op, s.Stage)
			}
		}
	}
}

func TestPipelineVectorIntoMatchesAlloc(t *testing.T) {
	scan := plan.NewTableScan(q5LikeTable(), []int{0, 1})
	mat := plan.NewMaterialize(scan)
	if err := exec.AnnotateTrueCards(mat); err != nil {
		t.Fatal(err)
	}
	r := NewDefaultRegistry()
	ps := plan.Decompose(mat)
	buf := make([]float64, r.NumFeatures())
	for i := range buf {
		buf[i] = 999 // must be zeroed
	}
	r.PipelineVectorInto(ps[0], plan.TrueCards, buf)
	want := r.PipelineVector(ps[0], plan.TrueCards)
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("feature %d: %v != %v", i, buf[i], want[i])
		}
	}
}

func TestEmptySourceClampsToOne(t *testing.T) {
	empty := storage.MustNewTable("e", storage.Column{Name: "id", Kind: storage.Int64, Ints: []int64{}})
	scan := plan.NewTableScan(empty, []int{0})
	mat := plan.NewMaterialize(scan)
	if err := exec.AnnotateTrueCards(mat); err != nil {
		t.Fatal(err)
	}
	ps := plan.Decompose(mat)
	if got := SourceCard(ps[0], plan.TrueCards); got != 1 {
		t.Errorf("empty source card = %v, want clamp to 1", got)
	}
	r := NewDefaultRegistry()
	vec := r.PipelineVector(ps[0], plan.TrueCards)
	for i, v := range vec {
		if v != v || v < 0 {
			t.Errorf("feature %s = %v on empty source", r.Names()[i], v)
		}
	}
}

func TestDescribeOmitsZeros(t *testing.T) {
	r := NewDefaultRegistry()
	vec := make([]float64, r.NumFeatures())
	vec[3] = 42
	out := r.Describe(vec)
	if !strings.Contains(out, r.Names()[3]) || !strings.Contains(out, "42") {
		t.Errorf("describe output missing set feature: %q", out)
	}
	if strings.Count(out, "\n") != 1 {
		t.Errorf("describe should print exactly one line, got %q", out)
	}
}

// scratchTestPlan builds a small scan -> join -> group-by plan with true
// cardinalities annotated.
func scratchTestPlan(t *testing.T) *plan.Node {
	t.Helper()
	scan := plan.NewTableScan(q5LikeTable(), []int{0, 1},
		expr.NewBetween(expr.Col(1, "c_nationkey", storage.Int64), expr.ConstInt(8), expr.ConstInt(21)))
	probe := plan.NewTableScan(q5LikeTable(), []int{0})
	join := plan.NewHashJoin(scan, probe, []int{0}, []int{0}, nil)
	gb := plan.NewGroupBy(join, []int{0}, nil, nil)
	if err := exec.AnnotateTrueCards(gb); err != nil {
		t.Fatal(err)
	}
	return gb
}

func TestAppendVecMatchesPipelineVector(t *testing.T) {
	root := scratchTestPlan(t)
	r := NewDefaultRegistry()
	ps := plan.Decompose(root)
	var buf []float64
	for _, p := range ps {
		buf = r.AppendVec(buf, p, plan.TrueCards)
	}
	if len(buf) != len(ps)*r.NumFeatures() {
		t.Fatalf("buffer has %d values, want %d", len(buf), len(ps)*r.NumFeatures())
	}
	for i, p := range ps {
		want := r.PipelineVector(p, plan.TrueCards)
		got := buf[i*r.NumFeatures() : (i+1)*r.NumFeatures()]
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("pipeline %d feature %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestFeaturizeIntoMatchesPlanVectors(t *testing.T) {
	root := scratchTestPlan(t)
	r := NewDefaultRegistry()
	wantVecs, wantPs := r.PlanVectors(root, plan.TrueCards)
	var s Scratch
	for rep := 0; rep < 3; rep++ {
		vecs, ps := r.FeaturizeInto(&s, root, plan.TrueCards)
		if len(vecs) != len(wantVecs) || len(ps) != len(wantPs) {
			t.Fatalf("rep %d: %d vecs / %d pipelines, want %d / %d",
				rep, len(vecs), len(ps), len(wantVecs), len(wantPs))
		}
		for i := range vecs {
			if ps[i].Index != wantPs[i].Index {
				t.Fatalf("rep %d: pipeline %d has index %d, want %d", rep, i, ps[i].Index, wantPs[i].Index)
			}
			for j := range vecs[i] {
				if vecs[i][j] != wantVecs[i][j] {
					t.Fatalf("rep %d pipeline %d feature %d: %v != %v", rep, i, j, vecs[i][j], wantVecs[i][j])
				}
			}
		}
	}
}

func TestFeaturizeIntoZeroAlloc(t *testing.T) {
	root := scratchTestPlan(t)
	r := NewDefaultRegistry()
	var s Scratch
	r.FeaturizeInto(&s, root, plan.TrueCards) // warm the scratch
	if allocs := testing.AllocsPerRun(100, func() {
		r.FeaturizeInto(&s, root, plan.TrueCards)
	}); allocs != 0 {
		t.Fatalf("FeaturizeInto allocates %.1f objects per run, want 0", allocs)
	}
}
