// Package baselines implements the decision-tree baselines and ablation
// variants the paper compares T3 against:
//
//   - PerQuery: one feature vector per query (the sum of all pipeline
//     vectors) predicting the whole-query time — both the AutoWLM-style
//     workload model of Figure 1 and the "per query" variant of the
//     ablation study (Figure 13).
//   - PerPipelineDirect: per-pipeline vectors predicting the pipeline time
//     directly rather than per tuple — the middle variant of Figure 13.
//
// T3 itself (per-pipeline vectors with tuple-centric targets) lives in the
// root package.
package baselines

import (
	"errors"
	"fmt"

	"t3/internal/benchdata"
	"t3/internal/engine/plan"
	"t3/internal/feature"
	"t3/internal/gbdt"
	"t3/internal/treec"
)

// PerQuery predicts whole-query times from a single summed feature vector.
type PerQuery struct {
	reg  *feature.Registry
	flat *treec.Flat
}

// sumVectors adds all pipeline vectors of a plan into one query vector.
func sumVectors(reg *feature.Registry, root *plan.Node, mode plan.CardMode) []float64 {
	vecs, _ := reg.PlanVectors(root, mode)
	out := make([]float64, reg.NumFeatures())
	for _, v := range vecs {
		for i, x := range v {
			out[i] += x
		}
	}
	return out
}

// TrainPerQuery fits the per-query baseline with targets
// -log10(median total runtime).
func TrainPerQuery(benched []*benchdata.BenchedQuery, mode plan.CardMode, p gbdt.Params) (*PerQuery, error) {
	if len(benched) == 0 {
		return nil, errors.New("baselines: no training queries")
	}
	reg := feature.NewDefaultRegistry()
	xs := make([][]float64, len(benched))
	ys := make([]float64, len(benched))
	for i, b := range benched {
		xs[i] = sumVectors(reg, b.Query.Root, mode)
		ys[i] = benchdata.TargetTransform(b.MedianTotal().Seconds())
	}
	gbm, _, err := gbdt.Train(p, xs, ys, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("baselines: per-query training: %w", err)
	}
	return &PerQuery{reg: reg, flat: treec.Flatten(gbm)}, nil
}

// PredictSeconds predicts the query execution time in seconds.
func (m *PerQuery) PredictSeconds(root *plan.Node, mode plan.CardMode) float64 {
	return benchdata.InverseTarget(m.flat.Predict(sumVectors(m.reg, root, mode)))
}

// PerPipelineDirect predicts each pipeline's total time directly (without
// tuple-centric scaling) and sums.
type PerPipelineDirect struct {
	reg  *feature.Registry
	flat *treec.Flat
}

// TrainPerPipelineDirect fits the direct per-pipeline variant with targets
// -log10(median pipeline runtime).
func TrainPerPipelineDirect(benched []*benchdata.BenchedQuery, mode plan.CardMode, p gbdt.Params) (*PerPipelineDirect, error) {
	if len(benched) == 0 {
		return nil, errors.New("baselines: no training queries")
	}
	reg := feature.NewDefaultRegistry()
	var xs [][]float64
	var ys []float64
	for _, b := range benched {
		for pi, pl := range b.Pipelines {
			xs = append(xs, reg.PipelineVector(pl, mode))
			ys = append(ys, benchdata.TargetTransform(b.PipelineMedian(pi, 0).Seconds()))
		}
	}
	gbm, _, err := gbdt.Train(p, xs, ys, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("baselines: per-pipeline-direct training: %w", err)
	}
	return &PerPipelineDirect{reg: reg, flat: treec.Flatten(gbm)}, nil
}

// PredictSeconds predicts the query execution time in seconds.
func (m *PerPipelineDirect) PredictSeconds(root *plan.Node, mode plan.CardMode) float64 {
	vecs, _ := m.reg.PlanVectors(root, mode)
	total := 0.0
	for _, v := range vecs {
		total += benchdata.InverseTarget(m.flat.Predict(v))
	}
	return total
}
