package baselines

import (
	"math"
	"testing"

	"t3/internal/engine/plan"
	"t3/internal/gbdt"
	"t3/internal/qerror"
	"t3/internal/testutil"
)

func shortParams() gbdt.Params {
	p := gbdt.DefaultParams()
	p.NumRounds = 60
	return p
}

func TestPerQueryLearns(t *testing.T) {
	c := testutil.SmallCorpus(t)
	m, err := TrainPerQuery(c.AllTrain(), plan.TrueCards, shortParams())
	if err != nil {
		t.Fatal(err)
	}
	var es []float64
	for _, b := range c.AllTest() {
		es = append(es, qerror.QError(m.PredictSeconds(b.Query.Root, plan.TrueCards), b.MedianTotal().Seconds()))
	}
	s := qerror.Summarize(es)
	t.Logf("per-query baseline TPC-DS q-error: p50=%.2f p90=%.2f avg=%.2f", s.P50, s.P90, s.Avg)
	if s.P50 > 6 {
		t.Errorf("per-query baseline p50 %.2f — learned nothing", s.P50)
	}
}

func TestPerPipelineDirectLearns(t *testing.T) {
	c := testutil.SmallCorpus(t)
	m, err := TrainPerPipelineDirect(c.AllTrain(), plan.TrueCards, shortParams())
	if err != nil {
		t.Fatal(err)
	}
	var es []float64
	for _, b := range c.AllTest() {
		es = append(es, qerror.QError(m.PredictSeconds(b.Query.Root, plan.TrueCards), b.MedianTotal().Seconds()))
	}
	s := qerror.Summarize(es)
	t.Logf("per-pipeline-direct TPC-DS q-error: p50=%.2f p90=%.2f avg=%.2f", s.P50, s.P90, s.Avg)
	if s.P50 > 6 {
		t.Errorf("per-pipeline-direct p50 %.2f — learned nothing", s.P50)
	}
}

func TestPredictionsFiniteAndPositive(t *testing.T) {
	c := testutil.SmallCorpus(t)
	q, err := TrainPerQuery(c.AllTrain()[:150], plan.TrueCards, shortParams())
	if err != nil {
		t.Fatal(err)
	}
	d, err := TrainPerPipelineDirect(c.AllTrain()[:150], plan.TrueCards, shortParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range c.AllTest()[:30] {
		for _, v := range []float64{
			q.PredictSeconds(b.Query.Root, plan.TrueCards),
			d.PredictSeconds(b.Query.Root, plan.TrueCards),
		} {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: prediction %v", b.Query.Name, v)
			}
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := TrainPerQuery(nil, plan.TrueCards, shortParams()); err == nil {
		t.Error("empty per-query training should fail")
	}
	if _, err := TrainPerPipelineDirect(nil, plan.TrueCards, shortParams()); err == nil {
		t.Error("empty per-pipeline training should fail")
	}
}
