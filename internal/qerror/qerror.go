// Package qerror implements the q-error metric and its aggregation, the
// evaluation measure used throughout the paper (§5.2):
//
//	q-error(a, b) = max(a/b, b/a)
//
// Q-error penalizes over- and underestimation symmetrically; 1.0 is a
// perfect prediction. Because performance prediction has heavy outliers, the
// paper reports p50 and p90 percentiles alongside plain averages.
package qerror

import (
	"math"
	"sort"
)

// QError returns max(a/b, b/a). Non-positive inputs are clamped to a small
// epsilon so that "predicted 0" yields a large-but-finite error instead of
// infinity.
func QError(a, b float64) float64 {
	const eps = 1e-12
	if a < eps {
		a = eps
	}
	if b < eps {
		b = eps
	}
	if a > b {
		return a / b
	}
	return b / a
}

// Summary aggregates a set of q-errors.
type Summary struct {
	N   int
	Avg float64
	P50 float64
	P90 float64
	P99 float64
	Max float64
}

// Summarize computes the aggregate statistics over the given q-errors.
func Summarize(es []float64) Summary {
	if len(es) == 0 {
		return Summary{}
	}
	s := Summary{N: len(es)}
	sorted := append([]float64(nil), es...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, e := range sorted {
		sum += e
	}
	s.Avg = sum / float64(len(sorted))
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	s.Max = sorted[len(sorted)-1]
	return s
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of an ascending-sorted
// slice using linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram buckets q-errors into multiplicative bins for the error
// frequency distribution of Figure 7. Bounds[i] is the upper edge of bin i;
// the final bin is unbounded.
type Histogram struct {
	Bounds []float64
	Counts []int
}

// NewHistogram builds a histogram with the given upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{Bounds: bounds, Counts: make([]int, len(bounds)+1)}
}

// Add records one q-error.
func (h *Histogram) Add(e float64) {
	for i, b := range h.Bounds {
		if e <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// AddAll records many q-errors.
func (h *Histogram) AddAll(es []float64) {
	for _, e := range es {
		h.Add(e)
	}
}
