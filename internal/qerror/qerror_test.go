package qerror

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQErrorBasics(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{1, 1, 1},
		{2, 1, 2},
		{1, 2, 2},
		{10, 100, 10},
		{0.001, 0.01, 10},
	}
	for _, c := range cases {
		if got := QError(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("QError(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestQErrorProperties(t *testing.T) {
	// Symmetry and >= 1.
	f := func(a, b float64) bool {
		a, b = math.Abs(a)+1e-9, math.Abs(b)+1e-9
		q := QError(a, b)
		return q >= 1 && q == QError(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Scale invariance: q(ka, kb) == q(a, b) on magnitudes that do not
	// overflow when scaled.
	g := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 1e12) + 1e-6
		b = math.Mod(math.Abs(b), 1e12) + 1e-6
		const k = 7.5
		return math.Abs(QError(k*a, k*b)-QError(a, b)) < 1e-9*QError(a, b)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestQErrorClampsNonPositive(t *testing.T) {
	if q := QError(0, 1); math.IsInf(q, 0) || math.IsNaN(q) {
		t.Errorf("QError(0,1) = %v, want finite", q)
	}
	if q := QError(-5, 1); math.IsInf(q, 0) || math.IsNaN(q) {
		t.Errorf("QError(-5,1) = %v, want finite", q)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 11})
	if s.N != 10 {
		t.Errorf("N = %d", s.N)
	}
	if s.Avg != 2 {
		t.Errorf("avg = %v, want 2", s.Avg)
	}
	if s.P50 != 1 {
		t.Errorf("p50 = %v, want 1", s.P50)
	}
	if s.Max != 11 {
		t.Errorf("max = %v, want 11", s.Max)
	}
	if s.P90 <= 1 || s.P90 > 11 {
		t.Errorf("p90 = %v out of range", s.P90)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Avg != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{5, 1, 3}
	Summarize(in)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
	if got := Percentile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("empty percentile = %v, want NaN", got)
	}
	// Interpolation between elements.
	if got := Percentile([]float64{0, 10}, 0.35); math.Abs(got-3.5) > 1e-9 {
		t.Errorf("interpolated percentile = %v, want 3.5", got)
	}
}

func TestPercentileMonotonic(t *testing.T) {
	sorted := []float64{1, 1.5, 2, 4, 8, 8, 9, 100}
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		v := Percentile(sorted, p)
		if v < prev {
			t.Fatalf("percentile not monotonic at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1.5, 2, 10})
	h.AddAll([]float64{1, 1.4, 1.6, 3, 11, 200})
	want := []int{2, 1, 1, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	h := NewHistogram([]float64{2})
	h.Add(2)
	if h.Counts[0] != 1 || h.Counts[1] != 0 {
		t.Errorf("boundary value should land in first bucket: %v", h.Counts)
	}
}
