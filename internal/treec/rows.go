package treec

import "math"

// rowsLayout is the flat-row batch kernel's private compilation of the packed
// ensemble, built lazily on first PredictRowsInto call. Each tree is re-laid
// out as relative 8-byte nodes — threshold float32, feature uint16, and both
// child indices as uint8 offsets from the tree base — so one 64-bit load
// fetches a whole node and the ~80-tree working set stays L1-resident. Every
// leaf becomes a terminal node that routes to itself, which lets the kernel
// walk a fixed per-tree depth with no per-step exit test: finished walks spin
// harmlessly on their terminal until the deepest walk lands. Terminal nodes
// carry the float64 leaf value in a parallel array, so per-row sums remain
// bit-identical to Predict.
//
// ok is false when a tree exceeds the uint8 index space (≥ 256 local nodes,
// i.e. ensembles beyond ~127 leaves per tree); the kernel then falls back to
// the generic blocked walker.
type rowsLayout struct {
	ok    bool
	nodes []uint64
	val   []float64
	off   []int32 // per-tree start into nodes/val
	depth []int32 // fixed walk depth per tree (deepest terminal)
}

// rowsNode packs one relative node: threshold bits low, feature, then the two
// uint8 child offsets.
func rowsNode(thr float32, feat uint16, l, r int32) uint64 {
	return uint64(math.Float32bits(thr)) | uint64(feat)<<32 | uint64(uint8(l))<<48 | uint64(uint8(r))<<56
}

// rowsKernel returns the lazily built layout (shared; build is idempotent).
func (p *Packed) rowsKernel() *rowsLayout {
	p.rowsOnce.Do(func() { p.rowsL = buildRowsLayout(p) })
	return p.rowsL
}

// buildRowsLayout compiles the packed trees into the row-kernel layout.
func buildRowsLayout(p *Packed) *rowsLayout {
	g := &rowsLayout{ok: true}
	for ti, root := range p.Roots {
		end := int32(len(p.Nodes))
		if ti+1 < len(p.Roots) {
			end = p.Roots[ti+1]
		}
		cnt := end - root
		// Interior nodes plus one terminal per leaf reference; every interior
		// has two children, so terminals ≤ cnt+1 and the local index space is
		// 2*cnt+1. Reject trees that overflow uint8 offsets.
		if 2*cnt+1 > 256 {
			return &rowsLayout{}
		}
		base := int32(len(g.nodes))
		g.off = append(g.off, base)
		for j := int32(0); j < cnt; j++ {
			g.nodes = append(g.nodes, 0)
			g.val = append(g.val, 0)
		}
		for j := int32(0); j < cnt; j++ {
			n := p.Nodes[root+j]
			lc, rc := n.Left, n.Right
			var ll, rr int32
			if lc >= 0 {
				ll = lc - root
			} else {
				ll = int32(len(g.nodes)) - base
				g.nodes = append(g.nodes, rowsNode(0, 0, ll, ll))
				g.val = append(g.val, p.Leaves[^lc])
			}
			if rc >= 0 {
				rr = rc - root
			} else {
				rr = int32(len(g.nodes)) - base
				g.nodes = append(g.nodes, rowsNode(0, 0, rr, rr))
				g.val = append(g.val, p.Leaves[^rc])
			}
			g.nodes[base+j] = rowsNode(n.Thr, n.Feature, ll, rr)
		}
		// Fixed walk depth: the deepest terminal. Packed BFS order guarantees
		// child indices exceed their parent's, so one forward pass suffices.
		local := g.nodes[base:]
		dist := make([]int32, int32(len(g.nodes))-base)
		maxd := int32(0)
		for j := range local {
			w := local[j]
			l := int32(uint8(w >> 48))
			r := int32(uint8(w >> 56))
			if l == int32(j) && r == int32(j) { // terminal
				if dist[j] > maxd {
					maxd = dist[j]
				}
				continue
			}
			dist[l] = dist[j] + 1
			dist[r] = dist[j] + 1
		}
		g.depth = append(g.depth, maxd)
	}
	return g
}

// rowsStep advances one branchless walk: a single 64-bit node load, a float32
// threshold compare materialized as a sign mask, and an arithmetic select of
// the child offset. No branches, so eight interleaved walks keep their
// load→compare→select chains overlapped instead of serializing on branch
// mispredictions.
func rowsStep(w uint64, v []float64) int32 {
	l := int32(uint8(w >> 48))
	r := int32(uint8(w >> 56))
	m := -boolToInt32(v[uint16(w>>32)] > float64(math.Float32frombits(uint32(w))))
	return l ^ ((l ^ r) & m)
}

// boolToInt32 materializes a comparison as 0/1 without a branch (SETcc).
func boolToInt32(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// predictRowsFast is the 8-wide fixed-depth kernel over the rows layout.
// Per output element, tree contributions are added in tree order, keeping
// results bit-identical to Predict.
func (p *Packed) predictRowsFast(g *rowsLayout, rows []float64, stride int, out []float64) {
	nr := len(out)
	for k := range out {
		out[k] = p.Base
	}
	r := 0
	for ; r+7 < nr; r += 8 {
		v0 := rows[r*stride : (r+1)*stride]
		v1 := rows[(r+1)*stride : (r+2)*stride]
		v2 := rows[(r+2)*stride : (r+3)*stride]
		v3 := rows[(r+3)*stride : (r+4)*stride]
		v4 := rows[(r+4)*stride : (r+5)*stride]
		v5 := rows[(r+5)*stride : (r+6)*stride]
		v6 := rows[(r+6)*stride : (r+7)*stride]
		v7 := rows[(r+7)*stride : (r+8)*stride]
		o := out[r : r+8]
		for t := range g.off {
			lo := g.off[t]
			hi := int32(len(g.nodes))
			if t+1 < len(g.off) {
				hi = g.off[t+1]
			}
			nodes := g.nodes[lo:hi]
			val := g.val[lo:hi]
			var i0, i1, i2, i3, i4, i5, i6, i7 int32
			for d := g.depth[t]; d > 0; d-- {
				w0 := nodes[i0]
				w1 := nodes[i1]
				w2 := nodes[i2]
				w3 := nodes[i3]
				w4 := nodes[i4]
				w5 := nodes[i5]
				w6 := nodes[i6]
				w7 := nodes[i7]
				n0 := rowsStep(w0, v0)
				n1 := rowsStep(w1, v1)
				n2 := rowsStep(w2, v2)
				n3 := rowsStep(w3, v3)
				n4 := rowsStep(w4, v4)
				n5 := rowsStep(w5, v5)
				n6 := rowsStep(w6, v6)
				n7 := rowsStep(w7, v7)
				// Terminal nodes route to themselves, so all eight walks are
				// done exactly when no index moved. Leaf-wise trees are deep
				// for only a few paths; cutting the walk at the deepest of the
				// eight actual paths (instead of the tree's max depth) skips
				// the skew waste.
				moved := (i0 ^ n0) | (i1 ^ n1) | (i2 ^ n2) | (i3 ^ n3) |
					(i4 ^ n4) | (i5 ^ n5) | (i6 ^ n6) | (i7 ^ n7)
				i0, i1, i2, i3, i4, i5, i6, i7 = n0, n1, n2, n3, n4, n5, n6, n7
				if moved == 0 {
					break
				}
			}
			o[0] += val[i0]
			o[1] += val[i1]
			o[2] += val[i2]
			o[3] += val[i3]
			o[4] += val[i4]
			o[5] += val[i5]
			o[6] += val[i6]
			o[7] += val[i7]
		}
	}
	for ; r < nr; r++ {
		out[r] = p.Predict(rows[r*stride : (r+1)*stride])
	}
}
