package treec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary serialization of the Packed tier, used by the model registry
// (internal/registry) to store the compiled evaluator alongside the trained
// ensemble. The encoding is versioned, fixed-width little-endian, and
// deterministic: encoding Pack(m) for the same model always yields the same
// bytes, which is what lets registry artifacts be compared and checksummed
// bit-for-bit.

// PackedFormatVersion is the packed-tier encoding version. Bump it on any
// layout change; DecodePacked rejects versions it does not know.
const PackedFormatVersion = 1

// AppendPacked appends the versioned binary encoding of p to dst and
// returns the extended slice.
//
// Layout (all little-endian):
//
//	u32 format version | u32 numFeatures | u8 exact
//	u32 nNodes  | nNodes × (f32 thr, u16 feature, i32 left, i32 right)
//	u32 nRoots  | nRoots × i32
//	u32 nLeaves | nLeaves × f64
//	f64 base
func AppendPacked(dst []byte, p *Packed) []byte {
	dst = appendU32(dst, PackedFormatVersion)
	dst = appendU32(dst, uint32(p.NumFeatures))
	if p.Exact {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendU32(dst, uint32(len(p.Nodes)))
	for i := range p.Nodes {
		n := &p.Nodes[i]
		dst = appendU32(dst, math.Float32bits(n.Thr))
		dst = binary.LittleEndian.AppendUint16(dst, n.Feature)
		dst = appendU32(dst, uint32(n.Left))
		dst = appendU32(dst, uint32(n.Right))
	}
	dst = appendU32(dst, uint32(len(p.Roots)))
	for _, r := range p.Roots {
		dst = appendU32(dst, uint32(r))
	}
	dst = appendU32(dst, uint32(len(p.Leaves)))
	for _, v := range p.Leaves {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Base))
	return dst
}

// DecodePacked parses an AppendPacked encoding. The returned Packed shares
// nothing with b. Truncated or over-long input is an error — the encoding
// is self-delimiting, so trailing garbage means corruption.
func DecodePacked(b []byte) (*Packed, error) {
	d := &packedReader{b: b}
	ver := d.u32()
	if d.err == nil && ver != PackedFormatVersion {
		return nil, fmt.Errorf("treec: packed format version %d, want %d", ver, PackedFormatVersion)
	}
	p := &Packed{}
	p.NumFeatures = int(d.u32())
	p.Exact = d.u8() != 0
	nNodes := int(d.u32())
	if d.err == nil && nNodes > d.remaining()/14 {
		return nil, fmt.Errorf("treec: packed node count %d exceeds payload", nNodes)
	}
	p.Nodes = make([]PackedNode, nNodes)
	for i := range p.Nodes {
		n := &p.Nodes[i]
		n.Thr = math.Float32frombits(d.u32())
		n.Feature = d.u16()
		n.Left = int32(d.u32())
		n.Right = int32(d.u32())
	}
	nRoots := int(d.u32())
	if d.err == nil && nRoots > d.remaining()/4 {
		return nil, fmt.Errorf("treec: packed root count %d exceeds payload", nRoots)
	}
	p.Roots = make([]int32, nRoots)
	for i := range p.Roots {
		p.Roots[i] = int32(d.u32())
	}
	nLeaves := int(d.u32())
	if d.err == nil && nLeaves > d.remaining()/8 {
		return nil, fmt.Errorf("treec: packed leaf count %d exceeds payload", nLeaves)
	}
	p.Leaves = make([]float64, nLeaves)
	for i := range p.Leaves {
		p.Leaves[i] = math.Float64frombits(d.u64())
	}
	p.Base = math.Float64frombits(d.u64())
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("treec: %d trailing bytes after packed encoding", len(b)-d.off)
	}
	return p, nil
}

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// packedReader is a bounds-checked little-endian cursor; the first overrun
// latches an error and every later read returns zero.
type packedReader struct {
	b   []byte
	off int
	err error
}

func (d *packedReader) remaining() int { return len(d.b) - d.off }

func (d *packedReader) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.remaining() < n {
		d.err = fmt.Errorf("treec: truncated packed encoding at byte %d", d.off)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *packedReader) u8() uint8 {
	if s := d.take(1); s != nil {
		return s[0]
	}
	return 0
}

func (d *packedReader) u16() uint16 {
	if s := d.take(2); s != nil {
		return binary.LittleEndian.Uint16(s)
	}
	return 0
}

func (d *packedReader) u32() uint32 {
	if s := d.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

func (d *packedReader) u64() uint64 {
	if s := d.take(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}
