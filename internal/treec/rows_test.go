package treec

import (
	"math/rand"
	"testing"

	"t3/internal/par"
)

// TestPredictRowsIntoMatchesPredict pins the flat-row batch kernel's
// determinism contract: every row of a contiguous row-major arena must score
// bit-identically to a scalar Predict of the same vector, for any row count
// (block boundaries included) and any worker pool.
func TestPredictRowsIntoMatchesPredict(t *testing.T) {
	m := trainToy(t, 30, 12, 36)
	p := Pack(m)
	rng := rand.New(rand.NewSource(37))
	const stride = 3
	for _, n := range []int{0, 1, 7, 8, 9, 16, 100, 1000} {
		rows := make([]float64, n*stride)
		for i := 0; i < n; i++ {
			rows[i*stride+0] = rng.Float64() * 8
			rows[i*stride+1] = rng.Float64() * 200
			rows[i*stride+2] = float64(rng.Intn(10))
		}
		out := make([]float64, n)
		p.PredictRowsInto(rows, stride, out, nil)
		for i := 0; i < n; i++ {
			if want := p.Predict(rows[i*stride : (i+1)*stride]); out[i] != want {
				t.Fatalf("n=%d row %d: PredictRowsInto %v != Predict %v", n, i, out[i], want)
			}
		}
		for _, workers := range []int{1, 2, 5, 8} {
			par := make([]float64, n)
			p.PredictRowsInto(rows, stride, par, parPool(workers))
			for i := range out {
				if par[i] != out[i] {
					t.Fatalf("n=%d workers=%d row %d: %v != %v", n, workers, i, par[i], out[i])
				}
			}
		}
	}
}

func parPool(workers int) *par.Pool { return par.Sized(workers) }

// TestPredictRowsIntoZeroAlloc: the serial flat-row kernel must not allocate.
func TestPredictRowsIntoZeroAlloc(t *testing.T) {
	m := trainToy(t, 30, 12, 38)
	p := Pack(m)
	rng := rand.New(rand.NewSource(39))
	const stride = 3
	n := 64
	rows := make([]float64, n*stride)
	for i := range rows {
		rows[i] = rng.Float64() * 50
	}
	out := make([]float64, n)
	p.PredictRowsInto(rows, stride, out, nil) // build the lazy row-kernel layout
	if allocs := testing.AllocsPerRun(100, func() {
		p.PredictRowsInto(rows, stride, out, nil)
	}); allocs != 0 {
		t.Fatalf("PredictRowsInto allocates %.1f objects per run, want 0", allocs)
	}
}
