package treec

import (
	"math/rand"
	"testing"

	"t3/internal/gbdt"
)

// trainWide trains a planner-scale model: many rounds over a wide feature
// space, the shape the join enumerator batches against.
func trainWide(b *testing.B, rounds, features int) *gbdt.Model {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	n := 2000
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		v := make([]float64, features)
		for f := 0; f < 16; f++ {
			v[(f*13)%features] = rng.Float64() * 100
		}
		xs[i] = v
		ys[i] = v[0]*3 + v[13] - v[26]*0.5 + rng.Float64()
	}
	p := gbdt.DefaultParams()
	p.NumRounds = rounds
	p.Objective = gbdt.ObjectiveL2
	p.ValidationFraction = 0
	m, _, err := gbdt.Train(p, xs, ys, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// benchRows builds a row-major arena of planner-scale feature vectors.
func benchRows(nrows, stride int) []float64 {
	rng := rand.New(rand.NewSource(11))
	rows := make([]float64, nrows*stride)
	for i := range rows {
		rows[i] = rng.Float64() * 100
	}
	return rows
}

// BenchmarkPredictRowsFlatScalar is the historical planner costing path: one
// scalar Flat-tier call per row.
func BenchmarkPredictRowsFlatScalar(b *testing.B) {
	f := Flatten(trainWide(b, 80, 117))
	const nrows, stride = 1024, 117
	rows := benchRows(nrows, stride)
	out := make([]float64, nrows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < nrows; r++ {
			out[r] = f.Predict(rows[r*stride : (r+1)*stride])
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nrows), "ns/row")
}

func BenchmarkPredictRowsPackedScalar(b *testing.B) {
	p := Pack(trainWide(b, 80, 117))
	const nrows, stride = 1024, 117
	rows := benchRows(nrows, stride)
	out := make([]float64, nrows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < nrows; r++ {
			out[r] = p.Predict(rows[r*stride : (r+1)*stride])
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nrows), "ns/row")
}

// BenchmarkPredictRowsBlocked pins the generic blocked fallback walker.
func BenchmarkPredictRowsBlocked(b *testing.B) {
	p := Pack(trainWide(b, 80, 117))
	const nrows, stride = 1024, 117
	rows := benchRows(nrows, stride)
	out := make([]float64, nrows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.predictRowsBlocked(rows, stride, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nrows), "ns/row")
}

// BenchmarkPredictRowsInto is the production batch kernel: branchless
// fixed-depth 8-wide walks over the 8-byte relative node layout.
func BenchmarkPredictRowsInto(b *testing.B) {
	p := Pack(trainWide(b, 80, 117))
	const nrows, stride = 1024, 117
	rows := benchRows(nrows, stride)
	out := make([]float64, nrows)
	p.PredictRowsInto(rows, stride, out, nil) // build the lazy layout
	for i := 0; i < nrows; i++ {
		if want := p.Predict(rows[i*stride : (i+1)*stride]); out[i] != want {
			b.Fatalf("row %d: %v != %v", i, out[i], want)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PredictRowsInto(rows, stride, out, nil)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nrows), "ns/row")
}
