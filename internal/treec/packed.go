package treec

import (
	"fmt"
	"math"
	"sync"

	"t3/internal/gbdt"
	"t3/internal/par"
)

// PackedNode is one decision node in the cache-packed layout: exactly 16
// bytes, so four nodes share each 64-byte cache line. Children ≥ 0 are
// absolute indices into Packed.Nodes; a negative child c refers to leaf ^c in
// the unified Packed.Leaves array.
//
// Thr is the float32 round-up of the trained float64 threshold (see
// RoundThreshold32); the comparison contract is v[Feature] <= float64(Thr).
type PackedNode struct {
	Thr     float32
	Feature uint16
	_       uint16
	Left    int32
	Right   int32
}

// Packed is the cache-packed compiled form of a tree ensemble: every node is
// a 16-byte record, trees are laid out root-first in breadth-first order so
// the hot top levels of consecutive trees stay within a few cache lines, and
// all leaf values live in one unified float64 array.
//
// Threshold contract: thresholds are stored as float32, rounded toward +∞
// (the smallest float32 ≥ the trained float64 threshold), and compared as
// v <= float64(thr32). This preserves the trained partition exactly for every
// input that satisfied v <= t64 — ties included — and for every input value
// exactly representable in float32. The only inputs that can switch sides are
// those in the half-open rounding gap (t64, float64(thr32)], at most one
// float32 ulp wide; Exact reports whether the model has any such gap at all.
type Packed struct {
	Nodes []PackedNode
	// Roots holds the root node index of every multi-node tree.
	Roots  []int32
	Leaves []float64
	// Base includes the model base score plus all single-leaf trees.
	Base        float64
	NumFeatures int
	// Exact is true when every threshold round-trips through float32, i.e.
	// predictions are bit-identical to the float64 Flat tier for all inputs.
	Exact bool

	// rowsL is the flat-row batch kernel's private layout (see rows.go),
	// compiled lazily on first use.
	rowsOnce sync.Once
	rowsL    *rowsLayout
}

// RoundThreshold32 returns the smallest float32 whose float64 value is ≥ t —
// the rounding direction that keeps every trained v <= t decision (ties
// included) on its original side. Pack, GenGo, and the generated code all use
// this same threshold, which is what makes the tiers bit-equivalent to each
// other.
func RoundThreshold32(t float64) float32 {
	f := float32(t)
	if float64(f) < t {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	return f
}

// Pack compiles a model into the packed form. It panics if the model exceeds
// the packed index space (65536 features or 2³¹ nodes/leaves) — far beyond
// any T3 configuration.
func Pack(m *gbdt.Model) *Packed {
	if m.NumFeatures > math.MaxUint16+1 {
		panic(fmt.Sprintf("treec: %d features exceed packed uint16 feature ids", m.NumFeatures))
	}
	p := &Packed{Base: m.BaseScore, NumFeatures: m.NumFeatures, Exact: true}
	for ti := range m.Trees {
		t := &m.Trees[ti]
		if len(t.Nodes) == 0 {
			// Constant tree: fold into the base score (same order as Flatten
			// and GenGo, so all tiers share one Base).
			p.Base += t.Leaves[0]
			continue
		}
		nodeOff := int32(len(p.Nodes))
		leafOff := int32(len(p.Leaves))
		p.Roots = append(p.Roots, nodeOff)

		// Breadth-first relabeling: bfs[i] is the original index of the node
		// at packed position nodeOff+i. Root-first BFS keeps the top levels —
		// the nodes every prediction visits — contiguous at the front of each
		// tree's block.
		bfs := make([]int32, 0, len(t.Nodes))
		pos := make([]int32, len(t.Nodes))
		bfs = append(bfs, 0)
		for i := 0; i < len(bfs); i++ {
			n := &t.Nodes[bfs[i]]
			pos[bfs[i]] = int32(i)
			if n.Left >= 0 {
				bfs = append(bfs, n.Left)
			}
			if n.Right >= 0 {
				bfs = append(bfs, n.Right)
			}
		}
		for _, oi := range bfs {
			n := &t.Nodes[oi]
			l, r := n.Left, n.Right
			if l >= 0 {
				l = nodeOff + pos[l]
			} else {
				l = ^(^l + leafOff)
			}
			if r >= 0 {
				r = nodeOff + pos[r]
			} else {
				r = ^(^r + leafOff)
			}
			thr := RoundThreshold32(n.Threshold)
			if float64(thr) != n.Threshold {
				p.Exact = false
			}
			p.Nodes = append(p.Nodes, PackedNode{
				Thr:     thr,
				Feature: uint16(n.Feature),
				Left:    l,
				Right:   r,
			})
		}
		p.Leaves = append(p.Leaves, t.Leaves...)
	}
	return p
}

// Predict evaluates the packed ensemble for one feature vector.
func (p *Packed) Predict(v []float64) float64 {
	s := p.Base
	nodes, leaves := p.Nodes, p.Leaves
	for _, root := range p.Roots {
		i := root
		for {
			n := &nodes[i]
			if v[n.Feature] <= float64(n.Thr) {
				i = n.Left
			} else {
				i = n.Right
			}
			if i < 0 {
				s += leaves[^i]
				break
			}
		}
	}
	return s
}

// predictBlockK is the number of vectors evaluated per tree pass in the
// blocked batch kernel: each tree's hot nodes are loaded once and reused
// across K walks instead of being evicted between full-ensemble traversals.
const predictBlockK = 8

// PredictInto evaluates many vectors into a caller-owned output slice
// (len(out) must equal len(vs)) without allocating. Vectors are processed in
// blocks of K per tree pass; per output element, tree contributions are still
// added in tree order, so results are bit-identical to Predict.
func (p *Packed) PredictInto(vs [][]float64, out []float64) {
	if len(out) != len(vs) {
		panic(fmt.Sprintf("treec: PredictInto out has len %d, want %d", len(out), len(vs)))
	}
	nodes, leaves := p.Nodes, p.Leaves
	for lo := 0; lo < len(vs); lo += predictBlockK {
		hi := min(lo+predictBlockK, len(vs))
		blk, o := vs[lo:hi], out[lo:hi]
		for k := range o {
			o[k] = p.Base
		}
		for _, root := range p.Roots {
			for k, v := range blk {
				i := root
				for {
					n := &nodes[i]
					if v[n.Feature] <= float64(n.Thr) {
						i = n.Left
					} else {
						i = n.Right
					}
					if i < 0 {
						o[k] += leaves[^i]
						break
					}
				}
			}
		}
	}
}

// PredictBatch evaluates many vectors through the blocked kernel.
func (p *Packed) PredictBatch(vs [][]float64) []float64 {
	out := make([]float64, len(vs))
	p.PredictInto(vs, out)
	return out
}

// PredictBatchParallel evaluates many vectors across a cached worker pool
// (0 means the shared GOMAXPROCS-sized pool); no pool is constructed or torn
// down per call. Chunks are multiples of the block size so the blocked kernel
// runs at full width on every worker.
func (p *Packed) PredictBatchParallel(vs [][]float64, workers int) []float64 {
	out := make([]float64, len(vs))
	pool := par.Sized(workers)
	chunk := len(vs)/(4*pool.Workers()) + 1
	if r := chunk % predictBlockK; r != 0 {
		chunk += predictBlockK - r
	}
	pool.For(len(vs), chunk, func(lo, hi int) {
		p.PredictInto(vs[lo:hi], out[lo:hi])
	})
	return out
}

// PredictRowsInto evaluates nrows = len(out) row-major feature vectors stored
// contiguously in rows (row i is rows[i*stride : (i+1)*stride]) into the
// caller-owned out slice, fanning block-aligned chunks across the given pool
// (nil or single-worker runs serially and allocation-free). Every row's tree
// contributions are added in tree order regardless of blocking, chunking, or
// worker count, so each out[i] is bit-identical to Predict(row i) — the
// determinism contract the level-batched join enumerator is built on.
func (p *Packed) PredictRowsInto(rows []float64, stride int, out []float64, pool *par.Pool) {
	nrows := len(out)
	if stride <= 0 || len(rows) < nrows*stride {
		panic(fmt.Sprintf("treec: PredictRowsInto rows has %d floats, want >= %d x %d", len(rows), nrows, stride))
	}
	if pool.Workers() > 1 && nrows >= 2*predictBlockK {
		chunk := nrows/(4*pool.Workers()) + 1
		if r := chunk % predictBlockK; r != 0 {
			chunk += predictBlockK - r
		}
		pool.For(nrows, chunk, func(lo, hi int) {
			p.predictRows(rows[lo*stride:hi*stride], stride, out[lo:hi])
		})
		return
	}
	p.predictRows(rows[:nrows*stride], stride, out)
}

// predictRows is the serial flat-row kernel behind PredictRowsInto: the
// branchless fixed-depth layout when the ensemble fits it (see rows.go), the
// generic blocked walker otherwise.
func (p *Packed) predictRows(rows []float64, stride int, out []float64) {
	if g := p.rowsKernel(); g.ok {
		p.predictRowsFast(g, rows, stride, out)
		return
	}
	p.predictRowsBlocked(rows, stride, out)
}

// predictRowsBlocked is the generic blocked fallback walker.
func (p *Packed) predictRowsBlocked(rows []float64, stride int, out []float64) {
	nodes, leaves := p.Nodes, p.Leaves
	for lo := 0; lo < len(out); lo += predictBlockK {
		hi := min(lo+predictBlockK, len(out))
		o := out[lo:hi]
		for k := range o {
			o[k] = p.Base
		}
		for _, root := range p.Roots {
			for k := range o {
				v := rows[(lo+k)*stride : (lo+k+1)*stride]
				i := root
				for {
					n := &nodes[i]
					if v[n.Feature] <= float64(n.Thr) {
						i = n.Left
					} else {
						i = n.Right
					}
					if i < 0 {
						o[k] += leaves[^i]
						break
					}
				}
			}
		}
	}
}

// InRoundingGap reports whether any feature value of v lies inside the
// float32 rounding gap of any node threshold of f: the half-open interval
// (t64, float64(RoundThreshold32(t64))]. Those are exactly the inputs on
// which the packed tier (and the generated code, which shares its thresholds)
// may legitimately disagree with the float64 Flat tier; tests use this to pin
// the equivalence contract.
func (f *Flat) InRoundingGap(v []float64) bool {
	for i, t64 := range f.Threshold {
		up := float64(RoundThreshold32(t64))
		if up != t64 {
			x := v[f.Feature[i]]
			if x > t64 && x <= up {
				return true
			}
		}
	}
	return false
}
