// Package treec compiles gradient-boosted tree ensembles for low-latency
// evaluation — the stand-in for the lleaves/LLVM compiler in the paper
// (§2.6).
//
// Four evaluation tiers are provided:
//
//  1. The interpreted tier lives in package gbdt: pointer-walking over node
//     structs, analogous to LightGBM's built-in evaluator.
//  2. Flatten converts the ensemble into contiguous struct-of-arrays form
//     evaluated by a tight loop — removing per-tree allocation, bounds
//     checks via slicing, and pointer chasing.
//  3. Pack (packed.go) is the cache-packed serving tier: every node is one
//     16-byte record (float32 threshold, uint16 feature id, int32 children
//     with leaf values folded into a unified array), trees laid out
//     root-first in breadth-first blocks, with a blocked batch kernel that
//     evaluates several vectors per tree pass — the lleaves-style node
//     packing the paper's ~4 µs single-query latency depends on.
//  4. GenGo emits Go source: each internal node becomes one comparison and
//     one branch, each leaf a return — exactly the instruction shape lleaves
//     produces (§2.6, "Model Compilation"). The emitted package is compiled
//     ahead of time by the Go compiler into native machine code; like in
//     the paper, compilation happens once after training and adds nothing
//     to inference latency. Emitted thresholds follow the packed tier's
//     float32 round-up contract, so generated code and Pack are
//     bit-equivalent on every input.
package treec

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"

	"t3/internal/gbdt"
	"t3/internal/par"
)

// Flat is a compiled (struct-of-arrays) form of a tree ensemble.
type Flat struct {
	// Per-node arrays; children ≥ 0 index nodes, negative children c refer
	// to leaf ^c.
	Feature   []int32
	Threshold []float64
	Left      []int32
	Right     []int32
	// TreeStart holds the root node index of every multi-node tree.
	TreeStart []int32
	Leaves    []float64
	// Base includes the model base score plus all single-leaf trees.
	Base        float64
	NumFeatures int
}

// Flatten compiles a model into its flat form.
func Flatten(m *gbdt.Model) *Flat {
	f := &Flat{Base: m.BaseScore, NumFeatures: m.NumFeatures}
	for ti := range m.Trees {
		t := &m.Trees[ti]
		if len(t.Nodes) == 0 {
			// Constant tree: fold into the base score.
			f.Base += t.Leaves[0]
			continue
		}
		nodeOff := int32(len(f.Feature))
		leafOff := int32(len(f.Leaves))
		f.TreeStart = append(f.TreeStart, nodeOff)
		for _, n := range t.Nodes {
			l, r := n.Left, n.Right
			if l >= 0 {
				l += nodeOff
			} else {
				l = ^(^l + leafOff)
			}
			if r >= 0 {
				r += nodeOff
			} else {
				r = ^(^r + leafOff)
			}
			f.Feature = append(f.Feature, n.Feature)
			f.Threshold = append(f.Threshold, n.Threshold)
			f.Left = append(f.Left, l)
			f.Right = append(f.Right, r)
		}
		f.Leaves = append(f.Leaves, t.Leaves...)
	}
	return f
}

// Predict evaluates the compiled ensemble for one feature vector.
func (f *Flat) Predict(v []float64) float64 {
	s := f.Base
	feat, thr, left, right, leaves := f.Feature, f.Threshold, f.Left, f.Right, f.Leaves
	for _, root := range f.TreeStart {
		i := root
		for {
			if v[feat[i]] <= thr[i] {
				i = left[i]
			} else {
				i = right[i]
			}
			if i < 0 {
				s += leaves[^i]
				break
			}
		}
	}
	return s
}

// PredictBatch evaluates many vectors sequentially.
func (f *Flat) PredictBatch(vs [][]float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = f.Predict(v)
	}
	return out
}

// PredictBatchParallel evaluates many vectors across a cached worker pool
// (0 means the shared GOMAXPROCS-sized pool); explicit worker counts reuse
// process-wide pools via par.Sized, so no goroutines are constructed or torn
// down per call. Used to reproduce the multi-threaded interpretation line of
// Figure 5.
func (f *Flat) PredictBatchParallel(vs [][]float64, workers int) []float64 {
	out := make([]float64, len(vs))
	pool := par.Sized(workers)
	chunk := len(vs)/(4*pool.Workers()) + 1
	pool.For(len(vs), chunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f.Predict(vs[i])
		}
	})
	return out
}

// GenGo writes a Go source file for the model: package pkg exposing
//
//	func Predict(v []float64) float64
//	func PredictBatch(vs [][]float64) []float64
//	func NumFeatures() int
//	func NumTrees() int
//
// Every internal node compiles to one comparison and one branch; every leaf
// to a return — the lleaves instruction shape. Thresholds are emitted under
// the packed tier's contract: the float64 value of the float32 round-up of
// the trained threshold (RoundThreshold32), so the generated code is
// bit-equivalent to Pack on every input, and to the float64 tiers on every
// input outside the documented rounding gaps. The file carries a
// "Code generated" marker so linters skip it.
func GenGo(m *gbdt.Model, pkg string, w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "// Code generated by t3compile; DO NOT EDIT.\n\n")
	fmt.Fprintf(bw, "// Package %s is the ahead-of-time compiled form of a trained T3 model:\n", pkg)
	fmt.Fprintf(bw, "// each decision node is a comparison and a branch, each leaf a return.\n")
	fmt.Fprintf(bw, "package %s\n\n", pkg)

	base := m.BaseScore
	var funcs []int
	for ti := range m.Trees {
		if len(m.Trees[ti].Nodes) == 0 {
			base += m.Trees[ti].Leaves[0]
			continue
		}
		funcs = append(funcs, ti)
	}

	fmt.Fprintf(bw, "// NumFeatures returns the expected feature-vector length.\n")
	fmt.Fprintf(bw, "func NumFeatures() int { return %d }\n\n", m.NumFeatures)
	fmt.Fprintf(bw, "// NumTrees returns the number of compiled trees.\n")
	fmt.Fprintf(bw, "func NumTrees() int { return %d }\n\n", len(funcs))

	fmt.Fprintf(bw, "// Predict evaluates the compiled ensemble for one feature vector.\n")
	fmt.Fprintf(bw, "func Predict(v []float64) float64 {\n")
	fmt.Fprintf(bw, "\ts := %s\n", gofloat(base))
	for i := range funcs {
		fmt.Fprintf(bw, "\ts += tree%d(v)\n", i)
	}
	fmt.Fprintf(bw, "\treturn s\n}\n\n")

	fmt.Fprintf(bw, "// PredictBatch evaluates the ensemble for many vectors.\n")
	fmt.Fprintf(bw, "func PredictBatch(vs [][]float64) []float64 {\n")
	fmt.Fprintf(bw, "\tout := make([]float64, len(vs))\n")
	fmt.Fprintf(bw, "\tfor i, v := range vs {\n\t\tout[i] = Predict(v)\n\t}\n\treturn out\n}\n\n")

	for i, ti := range funcs {
		t := &m.Trees[ti]
		fmt.Fprintf(bw, "func tree%d(v []float64) float64 {\n", i)
		genNode(bw, t, 0, 1)
		fmt.Fprintf(bw, "}\n\n")
	}
	return bw.Flush()
}

// genNode emits the if/else chain for node ni of t at the given indent.
func genNode(w io.Writer, t *gbdt.Tree, ni int32, depth int) {
	ind := indent(depth)
	n := &t.Nodes[ni]
	fmt.Fprintf(w, "%sif v[%d] <= %s {\n", ind, n.Feature, gofloat(float64(RoundThreshold32(n.Threshold))))
	genChild(w, t, n.Left, depth+1)
	fmt.Fprintf(w, "%s}\n", ind)
	genChild(w, t, n.Right, depth)
}

// genChild emits either a return (leaf) or a nested node.
func genChild(w io.Writer, t *gbdt.Tree, c int32, depth int) {
	if c < 0 {
		fmt.Fprintf(w, "%sreturn %s\n", indent(depth), gofloat(t.Leaves[^c]))
		return
	}
	genNode(w, t, c, depth)
}

func indent(depth int) string {
	const tabs = "\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t\t"
	if depth <= len(tabs) {
		return tabs[:depth]
	}
	b := make([]byte, depth)
	for i := range b {
		b[i] = '\t'
	}
	return string(b)
}

// gofloat formats a float64 as a Go literal that parses back to the exact
// same value.
func gofloat(f float64) string {
	if math.IsInf(f, 1) {
		return "math.Inf(1)"
	}
	if math.IsInf(f, -1) {
		return "math.Inf(-1)"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// Ensure the literal is a float (e.g. "3" -> "3.0") so arithmetic stays
	// in float64.
	for _, c := range s {
		if c == '.' || c == 'e' || c == 'E' || c == 'N' {
			return s
		}
	}
	return s + ".0"
}
