package treec

import (
	"bytes"
	"math/rand"
	"testing"

	"t3/internal/gbdt"
)

// serialModel trains a small deterministic ensemble for codec tests.
func serialModel(t *testing.T) *gbdt.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	const n, f = 400, 6
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		v := make([]float64, f)
		for j := range v {
			v[j] = rng.Float64() * 10
		}
		xs[i] = v
		ys[i] = v[0]*2 + v[3] - v[5]*0.5 + rng.Float64()*0.1
	}
	p := gbdt.DefaultParams()
	p.NumRounds = 12
	p.Seed = 5
	m, _, err := gbdt.Train(p, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPackedCodecRoundTrip(t *testing.T) {
	m := serialModel(t)
	p := Pack(m)
	enc := AppendPacked(nil, p)
	dec, err := DecodePacked(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumFeatures != p.NumFeatures || dec.Exact != p.Exact || dec.Base != p.Base {
		t.Fatalf("header mismatch: got {%d %v %v}, want {%d %v %v}",
			dec.NumFeatures, dec.Exact, dec.Base, p.NumFeatures, p.Exact, p.Base)
	}
	if len(dec.Nodes) != len(p.Nodes) || len(dec.Roots) != len(p.Roots) || len(dec.Leaves) != len(p.Leaves) {
		t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d",
			len(dec.Nodes), len(dec.Roots), len(dec.Leaves), len(p.Nodes), len(p.Roots), len(p.Leaves))
	}

	// Re-encoding the decoded tier must be byte-identical: the codec is
	// canonical, which is what registry checksums rely on.
	if !bytes.Equal(AppendPacked(nil, dec), enc) {
		t.Fatal("re-encoded packed tier differs from original encoding")
	}

	// And it must predict bit-identically to the original.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		v := make([]float64, p.NumFeatures)
		for j := range v {
			v[j] = rng.Float64() * 10
		}
		if got, want := dec.Predict(v), p.Predict(v); got != want {
			t.Fatalf("vector %d: decoded tier predicts %v, original %v", i, got, want)
		}
	}
}

func TestPackedCodecDeterministic(t *testing.T) {
	m := serialModel(t)
	a := AppendPacked(nil, Pack(m))
	b := AppendPacked(nil, Pack(m))
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same model differ")
	}
}

func TestPackedCodecRejectsCorruption(t *testing.T) {
	enc := AppendPacked(nil, Pack(serialModel(t)))

	// Every truncation point must be rejected, never panic.
	for _, cut := range []int{0, 1, 4, 8, 9, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodePacked(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}

	// Trailing garbage is corruption, not slack.
	if _, err := DecodePacked(append(append([]byte(nil), enc...), 0xAB)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}

	// A wrong format version is refused outright.
	bad := append([]byte(nil), enc...)
	bad[0] = 0xFF
	if _, err := DecodePacked(bad); err == nil {
		t.Fatal("bogus format version decoded without error")
	}

	// Hostile counts must not cause huge allocations or panics.
	hostile := append([]byte(nil), enc[:9]...)
	hostile = appendU32(hostile, 0xFFFFFFF0) // absurd node count
	if _, err := DecodePacked(hostile); err == nil {
		t.Fatal("hostile node count decoded without error")
	}
}
