package treec

import (
	"math"
	"math/rand"
	"testing"
	"unsafe"

	"t3/internal/gbdt"
)

func TestPackedNodeIs16Bytes(t *testing.T) {
	if s := unsafe.Sizeof(PackedNode{}); s != 16 {
		t.Fatalf("PackedNode is %d bytes, want 16", s)
	}
}

func TestRoundThreshold32Contract(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200000; i++ {
		var x float64
		switch rng.Intn(4) {
		case 0:
			x = rng.Float64()
		case 1:
			x = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(17)-8))
		case 2:
			x = float64(rng.Intn(1 << 30))
		default:
			x = math.Float64frombits(rng.Uint64() &^ (0x7ff << 52)) // finite, small exp
		}
		up := RoundThreshold32(x)
		if float64(up) < x {
			t.Fatalf("RoundThreshold32(%v) = %v < input", x, up)
		}
		if float64(up) > x {
			// Must be the *smallest* such float32: one step down is below x.
			down := math.Nextafter32(up, float32(math.Inf(-1)))
			if float64(down) >= x {
				t.Fatalf("RoundThreshold32(%v) = %v not minimal (%v also >= input)", x, up, down)
			}
		}
	}
}

// randomEnsemble builds a synthetic model directly (bypassing training) so
// equivalence tests can control threshold representability. Thresholds are
// drawn by thr; trees are random complete-ish binary trees.
func randomEnsemble(rng *rand.Rand, trees, numFeat int, thr func() float64) *gbdt.Model {
	m := &gbdt.Model{BaseScore: rng.NormFloat64(), NumFeatures: numFeat}
	for t := 0; t < trees; t++ {
		nNodes := 1 + rng.Intn(31)
		tree := gbdt.Tree{}
		// Sequentially grown left/right children: node i's children are
		// either later nodes or fresh leaves.
		nextLeaf := int32(0)
		leaf := func() int32 {
			l := nextLeaf
			nextLeaf++
			tree.Leaves = append(tree.Leaves, rng.NormFloat64())
			return ^l
		}
		nextNode := int32(1)
		child := func() int32 {
			if int(nextNode) < nNodes && rng.Intn(3) > 0 {
				n := nextNode
				nextNode++
				return n
			}
			return leaf()
		}
		for i := 0; i < nNodes; i++ {
			n := gbdt.Node{Feature: int32(rng.Intn(numFeat)), Threshold: thr()}
			n.Left = child()
			n.Right = child()
			tree.Nodes = append(tree.Nodes, n)
		}
		// Any declared-but-never-reached nodes would corrupt the walk; trim
		// to the nodes actually linked.
		tree.Nodes = tree.Nodes[:nextNode]
		m.Trees = append(m.Trees, tree)
	}
	// No constant trees here: folding them into the base changes summation
	// order vs the interpreted tier, which would break the bit-equality
	// checks below. TestPackedFoldsConstantTrees covers folding.
	return m
}

func TestPackedFoldsConstantTrees(t *testing.T) {
	m := &gbdt.Model{
		BaseScore:   1.5,
		NumFeatures: 1,
		Trees: []gbdt.Tree{
			{Leaves: []float64{0.25}},
			{Leaves: []float64{-0.5}},
		},
	}
	p := Pack(m)
	if len(p.Roots) != 0 {
		t.Fatalf("constant trees should fold away, got %d roots", len(p.Roots))
	}
	f := Flatten(m)
	if p.Base != f.Base {
		t.Fatalf("packed base %v != flat base %v", p.Base, f.Base)
	}
	if got := p.Predict([]float64{7}); got != 1.25 {
		t.Fatalf("folded base = %v, want 1.25", got)
	}
}

// TestPackedExactEquivalence: when every threshold round-trips through
// float32, all tiers are bit-identical on every input.
func TestPackedExactEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		m := randomEnsemble(rng, 1+rng.Intn(8), 6, func() float64 {
			return float64(float32(rng.NormFloat64() * 100))
		})
		f := Flatten(m)
		p := Pack(m)
		if !p.Exact {
			t.Fatalf("trial %d: float32 thresholds must pack exactly", trial)
		}
		for i := 0; i < 2000; i++ {
			v := make([]float64, m.NumFeatures)
			for j := range v {
				v[j] = rng.NormFloat64() * 100
			}
			want := m.Predict(v)
			if got := f.Predict(v); got != want {
				t.Fatalf("trial %d: flat %v != interpreted %v", trial, got, want)
			}
			if got := p.Predict(v); got != want {
				t.Fatalf("trial %d: packed %v != interpreted %v", trial, got, want)
			}
		}
	}
}

// TestPackedGapContract: with arbitrary float64 thresholds, packed may only
// disagree with the float64 tiers when some feature value lies in a
// documented rounding gap — and ties always stay on the trained side.
func TestPackedGapContract(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	disagreements := 0
	for trial := 0; trial < 20; trial++ {
		m := randomEnsemble(rng, 1+rng.Intn(8), 6, func() float64 {
			return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(9)-4))
		})
		f := Flatten(m)
		p := Pack(m)
		for i := 0; i < 2000; i++ {
			v := make([]float64, m.NumFeatures)
			for j := range v {
				if rng.Intn(4) == 0 {
					// Reuse an exact threshold value: a tie, which must
					// resolve identically (left) in every tier.
					v[j] = f.Threshold[rng.Intn(len(f.Threshold))]
				} else {
					v[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(9)-4))
				}
			}
			want := f.Predict(v)
			got := p.Predict(v)
			if got != want {
				disagreements++
				if !f.InRoundingGap(v) {
					t.Fatalf("trial %d: packed %v != flat %v but no feature value in a rounding gap", trial, got, want)
				}
			}
		}
	}
	t.Logf("%d/40000 vectors hit a rounding gap", disagreements)
}

// TestPackedGapDirected plants feature values exactly inside rounding gaps —
// random vectors essentially never land in the ~1-ulp windows — and checks
// that (a) InRoundingGap flags them, and (b) packed sends them left (the
// <= side) where the float64 tiers send them right.
func TestPackedGapDirected(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randomEnsemble(rng, 6, 6, func() float64 {
		return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
	})
	f := Flatten(m)
	p := Pack(m)
	probed := 0
	for i, t64 := range f.Threshold {
		up := float64(RoundThreshold32(t64))
		if up == t64 {
			continue
		}
		v := make([]float64, m.NumFeatures)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		v[f.Feature[i]] = up // inside the half-open gap (t64, up]
		if !f.InRoundingGap(v) {
			t.Fatalf("node %d: value %v in gap (%v, %v] not flagged", i, up, t64, up)
		}
		// The planted value compares differently at this node: packed takes
		// the left (<=) branch (up <= float64(thr32) by construction), the
		// float64 tiers the right — which requires it to sit strictly above
		// the trained threshold.
		if up <= t64 {
			t.Fatalf("node %d: planted value %v not strictly above threshold %v", i, up, t64)
		}
		probed++
		// And packed vs flat whole-model disagreement, when it happens, is
		// always explained.
		if p.Predict(v) != f.Predict(v) && !f.InRoundingGap(v) {
			t.Fatalf("node %d: unexplained disagreement", i)
		}
	}
	if probed == 0 {
		t.Skip("no non-round-tripping thresholds in this ensemble")
	}
	t.Logf("probed %d rounding gaps", probed)
}

func TestPackedBreadthFirstLayout(t *testing.T) {
	m := trainToy(t, 10, 16, 31)
	p := Pack(m)
	if len(p.Roots) == 0 {
		t.Fatal("no trees packed")
	}
	// Roots are in tree order and each tree's block is contiguous: every
	// internal child index stays within [root, nextRoot) and is strictly
	// greater than its parent (BFS property).
	for ti, root := range p.Roots {
		end := int32(len(p.Nodes))
		if ti+1 < len(p.Roots) {
			end = p.Roots[ti+1]
		}
		for i := root; i < end; i++ {
			n := p.Nodes[i]
			for _, c := range []int32{n.Left, n.Right} {
				if c < 0 {
					if int(^c) >= len(p.Leaves) {
						t.Fatalf("tree %d node %d: leaf %d out of range", ti, i, ^c)
					}
					continue
				}
				if c <= i || c >= end {
					t.Fatalf("tree %d node %d: child %d outside BFS block (%d, %d)", ti, i, c, i, end)
				}
			}
		}
	}
}

func TestPackedPredictIntoMatchesPredict(t *testing.T) {
	m := trainToy(t, 30, 12, 32)
	p := Pack(m)
	rng := rand.New(rand.NewSource(33))
	// Sizes around the block boundary, plus a large one.
	for _, n := range []int{0, 1, 7, 8, 9, 16, 100, 1000} {
		vs := make([][]float64, n)
		for i := range vs {
			vs[i] = []float64{rng.Float64() * 8, rng.Float64() * 200, float64(rng.Intn(10))}
		}
		out := make([]float64, n)
		p.PredictInto(vs, out)
		for i, v := range vs {
			if want := p.Predict(v); out[i] != want {
				t.Fatalf("n=%d row %d: PredictInto %v != Predict %v", n, i, out[i], want)
			}
		}
		for _, workers := range []int{0, 1, 2, 5} {
			par := p.PredictBatchParallel(vs, workers)
			for i := range out {
				if par[i] != out[i] {
					t.Fatalf("n=%d workers=%d row %d: %v != %v", n, workers, i, par[i], out[i])
				}
			}
		}
	}
}

func TestPackedPredictIntoZeroAlloc(t *testing.T) {
	m := trainToy(t, 30, 12, 34)
	p := Pack(m)
	rng := rand.New(rand.NewSource(35))
	vs := make([][]float64, 64)
	for i := range vs {
		vs[i] = []float64{rng.Float64() * 8, rng.Float64() * 200, float64(rng.Intn(10))}
	}
	out := make([]float64, len(vs))
	if allocs := testing.AllocsPerRun(100, func() {
		p.PredictInto(vs, out)
	}); allocs != 0 {
		t.Fatalf("PredictInto allocates %.1f objects per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		p.Predict(vs[0])
	}); allocs != 0 {
		t.Fatalf("Predict allocates %.1f objects per run, want 0", allocs)
	}
}

// TestGenGoMatchesPackedSemantics: the emitted thresholds are exactly the
// packed tier's effective thresholds, checked at source level.
func TestPackedMatchesFlattenedStructure(t *testing.T) {
	m := trainToy(t, 25, 16, 36)
	f := Flatten(m)
	p := Pack(m)
	if len(p.Nodes) != len(f.Feature) {
		t.Fatalf("packed has %d nodes, flat has %d", len(p.Nodes), len(f.Feature))
	}
	if len(p.Leaves) != len(f.Leaves) {
		t.Fatalf("packed has %d leaves, flat has %d", len(p.Leaves), len(f.Leaves))
	}
	if p.Base != f.Base {
		t.Fatalf("packed base %v != flat base %v", p.Base, f.Base)
	}
	if len(p.Roots) != len(f.TreeStart) {
		t.Fatalf("packed has %d roots, flat has %d", len(p.Roots), len(f.TreeStart))
	}
}
