package treec

import (
	"math"
	"math/rand"
	"testing"

	"t3/internal/gbdt"
)

// genTree builds a random regression tree; about a fifth are single-leaf
// (constant) trees, which the compiled tiers fold into the base score.
func genTree(rng *rand.Rand, nFeatures int, exact32 bool) gbdt.Tree {
	if rng.Intn(5) == 0 {
		return gbdt.Tree{Leaves: []float64{rng.Float64()*4 - 2}}
	}
	var t gbdt.Tree
	var build func(depth int) int32
	build = func(depth int) int32 {
		if depth >= 4 || (depth > 0 && rng.Intn(3) == 0) {
			t.Leaves = append(t.Leaves, rng.Float64()*4-2)
			return ^int32(len(t.Leaves) - 1)
		}
		idx := int32(len(t.Nodes))
		t.Nodes = append(t.Nodes, gbdt.Node{})
		thr := rng.Float64()*20 - 10
		if exact32 || rng.Intn(2) == 0 {
			thr = float64(float32(thr)) // representable in float32: no rounding gap
		}
		n := gbdt.Node{Feature: int32(rng.Intn(nFeatures)), Threshold: thr}
		n.Left = build(depth + 1)
		n.Right = build(depth + 1)
		t.Nodes[idx] = n
		return idx
	}
	build(0)
	return t
}

// refFoldPredict is an independent full-precision reference with the
// compiled tiers' summation order: base score plus constant trees first (in
// tree order), then multi-node trees (in tree order).
func refFoldPredict(m *gbdt.Model, v []float64) float64 {
	s := m.BaseScore
	for i := range m.Trees {
		if len(m.Trees[i].Nodes) == 0 {
			s += m.Trees[i].Leaves[0]
		}
	}
	for i := range m.Trees {
		if len(m.Trees[i].Nodes) > 0 {
			s += m.Trees[i].Predict(v)
		}
	}
	return s
}

// simGenGo walks the trees the way the generated Go code evaluates them:
// identical structure to the interpreter but with every threshold rounded
// through RoundThreshold32 — the documented reason GenGo output is
// bit-equivalent to the packed tier.
func simGenGo(m *gbdt.Model, v []float64) float64 {
	s := m.BaseScore
	for i := range m.Trees {
		if len(m.Trees[i].Nodes) == 0 {
			s += m.Trees[i].Leaves[0]
		}
	}
	for ti := range m.Trees {
		t := &m.Trees[ti]
		if len(t.Nodes) == 0 {
			continue
		}
		i := int32(0)
		for {
			n := &t.Nodes[i]
			var next int32
			if v[n.Feature] <= float64(RoundThreshold32(n.Threshold)) {
				next = n.Left
			} else {
				next = n.Right
			}
			if next < 0 {
				s += t.Leaves[^next]
				break
			}
			i = next
		}
	}
	return s
}

// genVectors produces random probe vectors plus adversarial ones pinned at
// and around thresholds: the exact threshold, one ulp to either side, the
// rounded-up float32 threshold, and one ulp past it — the boundary inputs of
// the (t, thr32] rounding-gap contract.
func genVectors(rng *rand.Rand, f *Flat, nFeatures, n int) [][]float64 {
	vs := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		v := make([]float64, nFeatures)
		for j := range v {
			v[j] = rng.Float64()*24 - 12
		}
		if len(f.Threshold) > 0 && i%2 == 0 {
			ni := rng.Intn(len(f.Threshold))
			t64 := f.Threshold[ni]
			up := float64(RoundThreshold32(t64))
			probes := []float64{
				t64,
				math.Nextafter(t64, math.Inf(-1)),
				math.Nextafter(t64, math.Inf(1)),
				up,
				math.Nextafter(up, math.Inf(1)),
			}
			v[f.Feature[ni]] = probes[rng.Intn(len(probes))]
		}
		vs = append(vs, v)
	}
	return vs
}

// checkTreeTiers asserts the full tier-equivalence contract for one model.
func checkTreeTiers(t *testing.T, seed int64, nvec uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nFeatures := 1 + rng.Intn(8)
	nTrees := 1 + rng.Intn(6)
	exact32 := rng.Intn(4) == 0 // some models have only float32-exact thresholds
	m := &gbdt.Model{BaseScore: rng.Float64()*2 - 1, NumFeatures: nFeatures}
	for i := 0; i < nTrees; i++ {
		m.Trees = append(m.Trees, genTree(rng, nFeatures, exact32))
	}

	flat := Flatten(m)
	packed := Pack(m)
	if exact32 && !packed.Exact {
		t.Fatalf("seed=%d: all thresholds float32-exact but Packed.Exact=false", seed)
	}

	vs := genVectors(rng, flat, nFeatures, 4+int(nvec%64))
	for vi, v := range vs {
		fp := flat.Predict(v)
		if ref := refFoldPredict(m, v); math.Float64bits(fp) != math.Float64bits(ref) {
			t.Fatalf("seed=%d vec=%d: flat=%v reference=%v", seed, vi, fp, ref)
		}

		pp := packed.Predict(v)
		if math.Float64bits(pp) != math.Float64bits(fp) {
			// Divergence is legal only on inexact models AND inside the
			// documented rounding gap.
			if packed.Exact {
				t.Fatalf("seed=%d vec=%d: exact packed diverges: flat=%v packed=%v", seed, vi, fp, pp)
			}
			if !flat.InRoundingGap(v) {
				t.Fatalf("seed=%d vec=%d: packed diverges outside the rounding gap: flat=%v packed=%v v=%v",
					seed, vi, fp, pp, v)
			}
		}

		if gg := simGenGo(m, v); math.Float64bits(gg) != math.Float64bits(pp) {
			t.Fatalf("seed=%d vec=%d: generated-code semantics=%v packed=%v (must be bit-identical)",
				seed, vi, gg, pp)
		}
	}

	// Batch kernels are bit-identical to their single-vector loops.
	out := make([]float64, len(vs))
	packed.PredictInto(vs, out)
	for i, v := range vs {
		if math.Float64bits(out[i]) != math.Float64bits(packed.Predict(v)) {
			t.Fatalf("seed=%d vec=%d: PredictInto=%v Predict=%v", seed, i, out[i], packed.Predict(v))
		}
	}
	for i, got := range flat.PredictBatch(vs) {
		if math.Float64bits(got) != math.Float64bits(flat.Predict(vs[i])) {
			t.Fatalf("seed=%d vec=%d: flat batch=%v single=%v", seed, i, got, flat.Predict(vs[i]))
		}
	}
}

// FuzzTreeTiers fuzzes the flat/packed/generated-code equivalence contract
// over random models and threshold-adversarial probe vectors.
func FuzzTreeTiers(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint64(seed*17))
	}
	f.Fuzz(func(t *testing.T, seed int64, nvec uint64) {
		checkTreeTiers(t, seed, nvec)
	})
}

// TestTreeTiersMany is the deterministic property-test mode of the same
// harness.
func TestTreeTiersMany(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		checkTreeTiers(t, seed, uint64(seed))
	}
}
