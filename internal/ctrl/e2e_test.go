package ctrl

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"t3/internal/clock"
	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/obs/trace"
	"t3/internal/serve"
	"t3/internal/wire"

	t3 "t3"
)

// TestDriftToPromotionEndToEnd is the control plane's closed loop, end to
// end and fully deterministic: a serving tier answers binary predict
// requests from a seed model; drifted observations flow through
// t3.RecordObserved into the online q-error histogram; the drift detector
// (ticked from a fake clock) raises its alarm; the attached controller
// collects fresh labels, trains a candidate, shadow-evaluates it against
// the live model on held-out labels plus replayed exemplars, and promotes
// it through the server's atomic swap — after which the same request bytes
// get a different prediction and the cache generation has advanced. No
// sleeps, no wall-clock time.
func TestDriftToPromotionEndToEnd(t *testing.T) {
	fake := clock.NewFake(time.Unix(1_700_000_000, 0))
	live := seedModel(t)
	srv := serve.New(live, serve.Config{})
	h := httptest.NewServer(srv.PredictBinHandler())
	defer h.Close()

	// Capture worst-misprediction exemplars the way production does: the
	// live model's prediction vs the drifted measurement, with the full
	// request frame for replay.
	store := trace.NewExemplarStore(8)
	driftedRun := scaledRunPlan(4)
	roots := samplePlans(t)[:3]
	for _, root := range roots {
		res, err := driftedRun(&exec.Executor{}, root, true)
		if err != nil {
			t.Fatal(err)
		}
		pred, _ := live.PredictPlan(root, plan.TrueCards)
		store.Offer(root, plan.TrueCards, pred.Nanoseconds(), res.Total.Nanoseconds(), fake.Now())
	}
	if store.Len() == 0 {
		t.Fatal("no exemplars captured; drift evidence is incomplete")
	}

	c, err := New(Config{
		Registry:     openRegistry(t),
		Source:       &scaledSource{inst: ctrlInstance(t), scale: 4, workers: 2},
		Swapper:      srv,
		Clock:        fake,
		TrainOptions: t3.TrainOptions{Params: testParams()},
		Exemplars:    store,
		MinInterval:  time.Minute,
		Synchronous:  true,
	})
	if err != nil {
		t.Fatal(err)
	}

	det := trace.NewQErrorDetector(trace.DetectorConfig{
		Epochs: 4, Threshold: 2.0, MinCount: 10,
		FireAfter: 2, ClearAfter: 2, Clock: fake,
	})
	c.Attach(det)

	// A served prediction before the swap, via the real binary endpoint.
	probe := roots[0]
	frame := wire.AppendFrame(nil, probe, plan.TrueCards)
	before := postPredict(t, h.URL, frame)
	gen0 := srv.CacheGeneration()

	// Baseline tick, then two epochs of 4x-slow observations: FireAfter=2
	// raises the alarm on the second drifted tick, which runs the whole
	// retrain episode inline.
	tick := func() {
		fake.Advance(time.Second)
		det.Tick(fake.Now())
	}
	tick()
	for epoch := 0; epoch < 2; epoch++ {
		for i := 0; i < 50; i++ {
			pred, _ := srv.Model().PredictPlan(probe, plan.TrueCards)
			t3.RecordObserved(pred, 4*pred)
		}
		tick()
	}

	if !det.Status().Raised {
		t.Fatalf("drift alarm did not raise: %+v", det.Status())
	}
	st := c.Status()
	if st.Episodes != 1 || st.Promotions != 1 {
		t.Fatalf("alarm did not drive a promotion: %+v", st)
	}
	if st.LastShadow.ExemplarN != store.Len() {
		t.Fatalf("shadow replayed %d exemplars, store holds %d", st.LastShadow.ExemplarN, store.Len())
	}
	if srv.Model() == live {
		t.Fatal("server still serves the boot model")
	}
	if v, ok, err := c.cfg.Registry.Latest(); err != nil || !ok || v != 2 {
		t.Fatalf("registry after promotion: (%d,%v,%v), want v2", v, ok, err)
	}

	// The swap invalidated the cache and changed what the same bytes get.
	if gen1 := srv.CacheGeneration(); gen1 != gen0+1 {
		t.Fatalf("cache generation %d -> %d across promotion, want +1", gen0, gen1)
	}
	after := postPredict(t, h.URL, frame)
	if after == before {
		t.Fatalf("served prediction unchanged across promotion: %d ns", after)
	}
	// The new model was trained on 4x-slower measurements: predictions
	// must have moved toward slower, not just wiggled.
	if after < before {
		t.Fatalf("drift made queries 4x slower but the promoted model predicts faster: %d -> %d ns", before, after)
	}
}

func postPredict(t *testing.T, url string, frame []byte) int64 {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	ns, err := wire.ParseResponse(buf.Bytes())
	if err != nil {
		t.Fatalf("bad response frame: %v", err)
	}
	return ns
}
