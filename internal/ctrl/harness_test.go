package ctrl

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"t3/internal/benchdata"
	"t3/internal/clock"
	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/obs/trace"
	"t3/internal/registry"
	"t3/internal/workload"

	t3 "t3"
)

// The deterministic test harness: every duration in these tests is a pure
// function of the plan times a drift scale, so "the workload got 4x slower"
// is literally scale=4 — the executor still runs (annotating true
// cardinalities), only the measured times are synthetic. Combined with the
// fake clock and Synchronous mode, a full drift → retrain → shadow →
// promote episode is bit-reproducible.

var ctrlInstOnce sync.Once
var ctrlInst *workload.Instance

func ctrlInstance(t testing.TB) *workload.Instance {
	t.Helper()
	ctrlInstOnce.Do(func() {
		ctrlInst = workload.MustGenerate(workload.TPCHSpec("tpch_ctrl", 0.002, 99))
	})
	return ctrlInst
}

// scaledRunPlan runs the real executor, then overwrites the measured times
// with scale x a deterministic function of the pipeline.
func scaledRunPlan(scale float64) func(*exec.Executor, *plan.Node, bool) (*exec.RunResult, error) {
	return func(ex *exec.Executor, root *plan.Node, annotate bool) (*exec.RunResult, error) {
		res, err := ex.Run(root, annotate)
		if err != nil {
			return nil, err
		}
		res.Total = 0
		for i := range res.Pipelines {
			p := &res.Pipelines[i]
			base := time.Duration(i+1)*time.Microsecond + time.Duration(p.SourceRows)*10*time.Nanosecond
			p.Duration = time.Duration(scale * float64(base))
			res.Total += p.Duration
		}
		return res, nil
	}
}

// collectConfig is the shared collection shape; only scale and workers vary
// per test.
func collectConfig(scale float64, workers int) workload.CollectConfig {
	return workload.CollectConfig{
		Workers: workers, Runs: 2, PerGroup: 1, Seed: 7,
		RunPlan: scaledRunPlan(scale),
	}
}

// scaledSource is a LabelSource pinned to one drift scale. Unlike
// WorkloadSource it does NOT rotate seeds across attempts: determinism
// tests rely on every episode seeing identical labels.
type scaledSource struct {
	inst    *workload.Instance
	scale   float64
	workers int
	// err, when non-nil, fails every collection (fault injection).
	err error
}

func (s *scaledSource) CollectLabels(int) (*workload.LabelSet, error) {
	if s.err != nil {
		return nil, s.err
	}
	return workload.CollectLabels(s.inst, collectConfig(s.scale, s.workers))
}

// testParams is a small, pinned training configuration: fast, and
// bit-identical across worker counts for the fixed seed.
func testParams() t3.Params {
	p := t3.DefaultParams()
	p.NumRounds = 30
	p.NumLeaves = 16
	p.MinDataInLeaf = 1
	p.Seed = 11
	return p
}

// seedModel trains the "live at boot" model on scale-1 labels.
func seedModel(t testing.TB) *t3.Model {
	t.Helper()
	ls, err := workload.CollectLabels(ctrlInstance(t), collectConfig(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	m, err := t3.Train(benchdata.FromLabels(ls), t3.TrainOptions{Params: testParams()})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fakeSwapper is the minimal Swapper for unit tests (e2e tests use the real
// serve.Server).
type fakeSwapper struct {
	mu    sync.Mutex
	m     *t3.Model
	swaps int
}

func (f *fakeSwapper) Model() *t3.Model {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.m
}

func (f *fakeSwapper) SetModel(m *t3.Model) {
	f.mu.Lock()
	f.m = m
	f.swaps++
	f.mu.Unlock()
}

func openRegistry(t testing.TB) *registry.Registry {
	t.Helper()
	r, err := registry.Open(filepath.Join(t.TempDir(), "registry"))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// newHarness builds a Synchronous controller around a seed model serving
// scale-1 predictions, with a drifted (scale-4) label source.
func newHarness(t testing.TB, mut func(*Config)) (*Controller, *fakeSwapper, *clock.Fake) {
	t.Helper()
	fake := clock.NewFake(time.Unix(1_700_000_000, 0))
	sw := &fakeSwapper{m: seedModel(t)}
	cfg := Config{
		Registry:     openRegistry(t),
		Source:       &scaledSource{inst: ctrlInstance(t), scale: 4, workers: 2},
		Swapper:      sw,
		Clock:        fake,
		TrainOptions: t3.TrainOptions{Params: testParams()},
		MinInterval:  time.Minute,
		Synchronous:  true,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, sw, fake
}

// driftEvent is a canned raised alarm for OnDrift tests.
func driftEvent() trace.DriftEvent {
	return trace.DriftEvent{Raised: true, Quantile: 4.2, Count: 120, Threshold: 2}
}

// samplePlans returns annotated plans for comparing model outputs.
func samplePlans(t testing.TB) []*plan.Node {
	t.Helper()
	qs := workload.GenerateQueries(ctrlInstance(t), workload.GenConfig{PerGroup: 1, Seed: 31})
	roots := make([]*plan.Node, 0, len(qs))
	for _, q := range qs {
		if err := exec.AnnotateTrueCards(q.Root); err != nil {
			t.Fatal(err)
		}
		roots = append(roots, q.Root)
	}
	return roots
}

// predictAll evaluates m over the plans; used to compare models
// bit-for-bit.
func predictAll(m *t3.Model, roots []*plan.Node) []time.Duration {
	out := make([]time.Duration, len(roots))
	for i, root := range roots {
		d, _ := m.PredictPlan(root, plan.TrueCards)
		out[i] = d
	}
	return out
}
