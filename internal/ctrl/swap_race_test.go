package ctrl

import (
	"bufio"
	"bytes"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"t3/internal/clock"
	"t3/internal/engine/plan"
	"t3/internal/serve"
	"t3/internal/wire"
	"t3/internal/workload"

	t3 "t3"
)

// driftingSource makes every retrain attempt see a different workload
// speed, so every promoted model is genuinely different from the last.
type driftingSource struct {
	inst    *workload.Instance
	workers int
}

func (s *driftingSource) CollectLabels(attempt int) (*workload.LabelSet, error) {
	cfg := collectConfig(float64(1+attempt), s.workers)
	return workload.CollectLabels(s.inst, cfg)
}

// TestConcurrentTrafficAcrossControllerSwaps hammers both binary endpoints
// — HTTP /predict.bin and the raw TCP listener — while the controller
// promotes a stream of retrained models through the server's atomic swap.
// Every request must get a valid response frame: zero failures, under
// -race in CI.
func TestConcurrentTrafficAcrossControllerSwaps(t *testing.T) {
	srv := serve.New(seedModel(t), serve.Config{MaxWait: 50 * time.Microsecond})
	h := httptest.NewServer(srv.PredictBinHandler())
	defer h.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = srv.ServeTCP(l) }()

	c, err := New(Config{
		Registry:     openRegistry(t),
		Source:       &driftingSource{inst: ctrlInstance(t), workers: 2},
		Swapper:      srv,
		Clock:        clock.NewFake(time.Unix(1_700_000_000, 0)),
		TrainOptions: t3.TrainOptions{Params: testParams()},
		// The point is swap pressure, not model quality: accept every
		// candidate so each episode drives a swap.
		PromoteRatio: 100,
		Synchronous:  true,
	})
	if err != nil {
		t.Fatal(err)
	}

	frames := make([][]byte, 0, 4)
	for _, root := range samplePlans(t)[:4] {
		frames = append(frames, wire.AppendFrame(nil, root, plan.TrueCards))
	}

	var failures atomic.Int64
	var requests atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// HTTP clients.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				frame := frames[(g+i)%len(frames)]
				resp, err := client.Post(h.URL, "application/octet-stream", bytes.NewReader(frame))
				if err != nil {
					failures.Add(1)
					continue
				}
				var buf bytes.Buffer
				_, _ = buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if ns, err := wire.ParseResponse(buf.Bytes()); err != nil || ns <= 0 {
					failures.Add(1)
					continue
				}
				requests.Add(1)
			}
		}(g)
	}
	// TCP clients, one connection each, strict request/response lockstep.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				failures.Add(1)
				return
			}
			defer conn.Close()
			rd := bufio.NewReader(conn)
			resp := make([]byte, wire.HeaderSize+8)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				frame := frames[(g+2*i)%len(frames)]
				if _, err := conn.Write(frame); err != nil {
					failures.Add(1)
					return
				}
				if _, err := ioReadFull(rd, resp); err != nil {
					failures.Add(1)
					return
				}
				if ns, err := wire.ParseResponse(resp); err != nil || ns <= 0 {
					failures.Add(1)
					continue
				}
				requests.Add(1)
			}
		}(g)
	}

	// Swap pressure: each Retrain trains on a different drift scale and
	// promotes, so the model pointer and cache generation churn under the
	// live traffic above.
	gen0 := srv.CacheGeneration()
	const episodes = 4
	for i := 0; i < episodes; i++ {
		res, err := c.Retrain("swap pressure")
		if err != nil {
			t.Fatalf("episode %d: %v", i, err)
		}
		if !res.Promoted {
			t.Fatalf("episode %d not promoted: %+v", i, res.Shadow)
		}
	}
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d failed requests across %d swaps (%d ok)", n, episodes, requests.Load())
	}
	if requests.Load() == 0 {
		t.Fatal("no traffic actually flowed during the swaps")
	}
	if got := srv.CacheGeneration() - gen0; got != episodes {
		t.Fatalf("cache generation advanced %d times, want %d", got, episodes)
	}
	if st := c.Status(); st.Promotions != episodes {
		t.Fatalf("controller promoted %d times, want %d", st.Promotions, episodes)
	}
}

func ioReadFull(r *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
