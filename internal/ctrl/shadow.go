package ctrl

import (
	"sort"
	"time"

	"t3/internal/engine/plan"
	"t3/internal/qerror"
	"t3/internal/wire"
	"t3/internal/workload"

	t3 "t3"
)

// Shadow evaluation: before a candidate model may replace the live one,
// both predict the same evidence — the held-out labels of the fresh
// collection plus the replayed worst-misprediction exemplars — and the
// candidate must win the watched q-error quantile by the configured ratio.
// The holdout catches candidates that merely memorized the training split;
// the exemplars catch candidates that fixed the average but not the plans
// production actually mispredicts.

// ShadowResult is one shadow comparison of candidate vs live.
type ShadowResult struct {
	// Quantile is the judged q-error quantile.
	Quantile float64 `json:"quantile"`
	// LiveQ and CandidateQ are the models' q-errors at that quantile over
	// the same evidence.
	LiveQ      float64 `json:"live_q"`
	CandidateQ float64 `json:"candidate_q"`
	// HoldoutN and ExemplarN count the evidence: holdout labels scored and
	// exemplar frames replayed.
	HoldoutN  int `json:"holdout_n"`
	ExemplarN int `json:"exemplar_n"`
}

// Win reports whether the candidate's quantile beats the live model's by
// the promote ratio. With no evidence at all the candidate loses: an empty
// shadow set proves nothing, and the safe default is the incumbent.
func (r ShadowResult) Win(promoteRatio float64) bool {
	if r.HoldoutN+r.ExemplarN == 0 {
		return false
	}
	return r.CandidateQ <= promoteRatio*r.LiveQ
}

// shadowEval scores live and cand over the holdout labels and the exemplar
// store's replayed frames. live may be nil (cold start): the result then
// carries only the candidate's numbers and LiveQ stays 0.
func (c *Controller) shadowEval(live, cand *t3.Model, holdout *workload.LabelSet) ShadowResult {
	res := ShadowResult{Quantile: c.cfg.ShadowQuantile}
	var liveQs, candQs []float64
	var liveScratch, candScratch t3.PredictScratch

	score := func(root *plan.Node, mode plan.CardMode, actual time.Duration) {
		if root == nil || actual <= 0 {
			return
		}
		cp, _ := cand.PredictPlanScratch(root, mode, &candScratch)
		candQs = append(candQs, qerror.QError(cp.Seconds(), actual.Seconds()))
		if live != nil {
			lp, _ := live.PredictPlanScratch(root, mode, &liveScratch)
			liveQs = append(liveQs, qerror.QError(lp.Seconds(), actual.Seconds()))
		}
	}

	for _, l := range holdout.Labels {
		score(l.Root, plan.TrueCards, medianDuration(l.Totals))
		res.HoldoutN++
	}

	if c.cfg.Exemplars != nil {
		var dec wire.Decoder
		for _, e := range c.cfg.Exemplars.Snapshot() {
			if len(e.Frame) <= wire.HeaderSize {
				continue
			}
			mode, n, err := wire.ParseHeader(e.Frame)
			if err != nil || wire.HeaderSize+n > len(e.Frame) {
				continue
			}
			root, err := dec.Decode(e.Frame[wire.HeaderSize : wire.HeaderSize+n])
			if err != nil {
				continue
			}
			score(root, mode, time.Duration(e.ActualNs))
			res.ExemplarN++
		}
	}

	res.CandidateQ = quantileOf(candQs, res.Quantile)
	res.LiveQ = quantileOf(liveQs, res.Quantile)
	return res
}

func quantileOf(qs []float64, p float64) float64 {
	if len(qs) == 0 {
		return 0
	}
	sort.Float64s(qs)
	return qerror.Percentile(qs, p)
}

func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
