package ctrl

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"t3/internal/benchdata"

	t3 "t3"
)

func TestRetrainPromotesOnShadowWin(t *testing.T) {
	c, sw, _ := newHarness(t, nil)
	boot := sw.Model()

	retrains0, promotions0 := Retrains.Value(), Promotions.Value()
	res, err := c.Retrain("test drift")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("candidate trained on the drifted workload was not promoted: %+v", res)
	}
	if res.Shadow.CandidateQ >= res.Shadow.LiveQ {
		t.Fatalf("shadow did not show a win: %+v", res.Shadow)
	}
	if res.Shadow.HoldoutN == 0 {
		t.Fatal("shadow evaluated zero holdout labels")
	}
	if sw.Model() == boot || sw.swaps != 1 {
		t.Fatalf("swapper not driven: swaps=%d", sw.swaps)
	}
	if Retrains.Value()-retrains0 != 1 || Promotions.Value()-promotions0 != 1 {
		t.Fatal("t3_ctrl_retrains_total / t3_ctrl_promotions_total did not advance")
	}

	// The promotion landed in the registry: boot model is version 1, the
	// candidate version 2, with full provenance.
	st := c.Status()
	if st.LiveVersion != 2 || st.PreviousVersion != 1 || st.Promotions != 1 {
		t.Fatalf("status after promotion: %+v", st)
	}
	art, err := c.cfg.Registry.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	if art.Meta.Source != "ctrl" || art.Meta.ParentVersion != 1 || art.Meta.Note != "test drift" {
		t.Fatalf("artifact meta: %+v", art.Meta)
	}
	if art.Meta.TrainLabels != res.TrainLabels || art.Meta.HoldoutLabels != res.HoldoutLabels {
		t.Fatalf("artifact label counts %d/%d, episode reported %d/%d",
			art.Meta.TrainLabels, art.Meta.HoldoutLabels, res.TrainLabels, res.HoldoutLabels)
	}
	if art.Meta.HoldoutFingerprint == 0 {
		t.Fatal("artifact missing holdout fingerprint")
	}

	// The artifact reloads into a model that predicts bit-identically to
	// the one being served.
	reloaded, err := t3.NewModel(art.GBM)
	if err != nil {
		t.Fatal(err)
	}
	roots := samplePlans(t)
	if a, b := predictAll(sw.Model(), roots), predictAll(reloaded, roots); !equalDurations(a, b) {
		t.Fatal("registry artifact predicts differently from the promoted model")
	}
}

func TestRetrainArtifactDeterministicAcrossWorkers(t *testing.T) {
	// Two controllers, identical fake time and seeds, different collection
	// and training worker counts: the promoted artifact files must be
	// byte-identical.
	var files [][]byte
	for _, workers := range []int{1, 4} {
		c, _, _ := newHarness(t, func(cfg *Config) {
			cfg.Source = &scaledSource{inst: ctrlInstance(t), scale: 4, workers: workers}
			p := testParams()
			p.Workers = workers
			cfg.TrainOptions = t3.TrainOptions{Params: p}
			cfg.Train = nil // rebuild the default trainer from TrainOptions
		})
		res, err := c.Retrain("determinism probe")
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Promoted {
			t.Fatalf("workers=%d: not promoted", workers)
		}
		b, err := os.ReadFile(c.cfg.Registry.Path(res.Version))
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, b)
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Fatal("promoted artifacts differ across worker counts")
	}
}

func TestRetrainFailsOnLabelCollectionError(t *testing.T) {
	boom := errors.New("storage offline")
	c, sw, _ := newHarness(t, func(cfg *Config) {
		cfg.Source = &scaledSource{err: boom}
	})
	boot := sw.Model()

	fails0 := RetrainFailures.Value()
	if _, err := c.Retrain("doomed"); !errors.Is(err, boom) {
		t.Fatalf("Retrain error = %v, want wrapped %v", err, boom)
	}
	if RetrainFailures.Value()-fails0 != 1 {
		t.Fatal("t3_ctrl_retrain_failures_total did not advance")
	}
	if sw.Model() != boot || sw.swaps != 0 {
		t.Fatal("failed retrain touched the live model")
	}
	st := c.Status()
	if st.State != "idle" || st.Failures != 1 || !strings.Contains(st.LastError, "storage offline") {
		t.Fatalf("status after failure: %+v", st)
	}
	// The controller recovers: fix the source, retrain succeeds.
	c.cfg.Source = &scaledSource{inst: ctrlInstance(t), scale: 4, workers: 2}
	if res, err := c.Retrain("recovered"); err != nil || !res.Promoted {
		t.Fatalf("post-failure retrain = (%+v, %v)", res, err)
	}
}

func TestShadowRegressionRejectsCandidate(t *testing.T) {
	// A trainer that learns from durations inflated 50x produces a model
	// predicting far slower than reality: it must lose the shadow
	// comparison and never reach serving.
	c, sw, _ := newHarness(t, func(cfg *Config) {
		cfg.Train = func(benched []*benchdata.BenchedQuery) (*t3.Model, error) {
			for _, b := range benched {
				for r := range b.PipelineRuns {
					for p := range b.PipelineRuns[r] {
						b.PipelineRuns[r][p] *= 50
					}
					b.RunTotals[r] *= 50
				}
			}
			return t3.Train(benched, t3.TrainOptions{Params: testParams()})
		}
	})
	boot := sw.Model()

	rejects0 := ShadowRejects.Value()
	res, err := c.Retrain("bad candidate")
	if err != nil {
		t.Fatal(err)
	}
	if res.Promoted {
		t.Fatalf("regressing candidate was promoted: %+v", res.Shadow)
	}
	if res.Shadow.CandidateQ <= res.Shadow.LiveQ {
		t.Fatalf("shadow numbers do not show the regression: %+v", res.Shadow)
	}
	if ShadowRejects.Value()-rejects0 != 1 {
		t.Fatal("t3_ctrl_shadow_rejects_total did not advance")
	}
	if sw.Model() != boot || sw.swaps != 0 {
		t.Fatal("rejected candidate reached the live model")
	}
	st := c.Status()
	if st.LiveVersion != 1 || st.ShadowRejects != 1 {
		t.Fatalf("status after reject: %+v", st)
	}
	// Nothing but the boot seed landed in the registry.
	if v, ok, err := c.cfg.Registry.Latest(); err != nil || !ok || v != 1 {
		t.Fatalf("registry after reject: (%d,%v,%v), want boot-only", v, ok, err)
	}
}

func TestRollbackRestoresPreviousVersionBitIdentically(t *testing.T) {
	c, sw, _ := newHarness(t, nil)
	roots := samplePlans(t)
	bootPreds := predictAll(sw.Model(), roots)

	if res, err := c.Retrain("promote first"); err != nil || !res.Promoted {
		t.Fatalf("setup promotion failed: %v", err)
	}
	promoted := sw.Model()
	if equalDurations(predictAll(promoted, roots), bootPreds) {
		t.Fatal("promotion did not change served predictions; rollback test is vacuous")
	}

	rollbacks0 := Rollbacks.Value()
	ver, err := c.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 {
		t.Fatalf("rolled back to version %d, want 1", ver)
	}
	if Rollbacks.Value()-rollbacks0 != 1 {
		t.Fatal("t3_ctrl_rollbacks_total did not advance")
	}
	// Bit-identical restoration: the registry round-trip loses nothing.
	if !equalDurations(predictAll(sw.Model(), roots), bootPreds) {
		t.Fatal("rolled-back model does not predict identically to the original")
	}
	st := c.Status()
	if st.LiveVersion != 1 || st.PreviousVersion != 2 || st.Rollbacks != 1 {
		t.Fatalf("status after rollback: %+v", st)
	}
	// Roll forward again: PreviousVersion now points at the promotion.
	if ver, err := c.Rollback(); err != nil || ver != 2 {
		t.Fatalf("roll-forward = (%d,%v), want (2,nil)", ver, err)
	}
	if !equalDurations(predictAll(sw.Model(), roots), predictAll(promoted, roots)) {
		t.Fatal("roll-forward did not restore the promoted model")
	}
}

func TestRollbackRejectsCorruptArtifact(t *testing.T) {
	c, sw, _ := newHarness(t, nil)
	if res, err := c.Retrain("promote"); err != nil || !res.Promoted {
		t.Fatalf("setup promotion failed: %v", err)
	}
	live := sw.Model()

	// Rot the rollback target on disk.
	path := c.cfg.Registry.Path(1)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), orig...)
	bad[len(bad)/3] ^= 0x40
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	regErrs0 := RegistryErrors.Value()
	if _, err := c.Rollback(); err == nil {
		t.Fatal("rollback to a corrupt artifact succeeded")
	}
	if RegistryErrors.Value()-regErrs0 != 1 {
		t.Fatal("t3_ctrl_registry_errors_total did not advance")
	}
	if sw.Model() != live {
		t.Fatal("failed rollback touched the live model")
	}
	if st := c.Status(); st.LiveVersion != 2 || st.Rollbacks != 0 {
		t.Fatalf("status after failed rollback: %+v", st)
	}

	// Restore the bytes: rollback works again — the failure had no side
	// effects on controller state.
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if ver, err := c.Rollback(); err != nil || ver != 1 {
		t.Fatalf("rollback after restore = (%d,%v)", ver, err)
	}
}

func TestOnDriftDebounceAndRollbackWindow(t *testing.T) {
	c, sw, fake := newHarness(t, func(cfg *Config) {
		cfg.MinInterval = time.Minute
		cfg.RollbackWindow = 5 * time.Minute
	})
	ev := driftEvent()

	// First alarm: retrains and promotes.
	c.OnDrift(ev)
	if st := c.Status(); st.Episodes != 1 || st.Promotions != 1 {
		t.Fatalf("first alarm: %+v", st)
	}
	promoted := sw.Model()

	// A second alarm inside the rollback window undoes the promotion
	// instead of training again.
	fake.Advance(2 * time.Minute)
	c.OnDrift(ev)
	st := c.Status()
	if st.Rollbacks != 1 || st.Episodes != 1 {
		t.Fatalf("alarm inside rollback window: %+v", st)
	}
	if sw.Model() == promoted {
		t.Fatal("rollback window alarm did not swap the model back")
	}

	// Immediately after (inside MinInterval since the last episode): the
	// alarm is debounced.
	c.OnDrift(ev)
	if st := c.Status(); st.Episodes != 1 || st.Rollbacks != 1 {
		t.Fatalf("debounced alarm still acted: %+v", st)
	}

	// Past the debounce, with the rollback consumed: a fresh episode runs.
	fake.Advance(10 * time.Minute)
	c.OnDrift(ev)
	if st := c.Status(); st.Episodes != 2 {
		t.Fatalf("post-debounce alarm did not retrain: %+v", st)
	}
}

func TestNewSeedsRegistryFromBootModel(t *testing.T) {
	c, sw, _ := newHarness(t, nil)
	v, ok, err := c.cfg.Registry.Latest()
	if err != nil || !ok || v != 1 {
		t.Fatalf("registry after New = (%d,%v,%v), want seeded v1", v, ok, err)
	}
	art, err := c.cfg.Registry.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	if art.Meta.Source != "seed" {
		t.Fatalf("seed artifact source = %q", art.Meta.Source)
	}
	roots := samplePlans(t)
	m, err := t3.NewModel(art.GBM)
	if err != nil {
		t.Fatal(err)
	}
	if !equalDurations(predictAll(m, roots), predictAll(sw.Model(), roots)) {
		t.Fatal("seeded artifact does not match the boot model")
	}
}

func equalDurations(a, b []time.Duration) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
