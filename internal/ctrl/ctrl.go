// Package ctrl is the continuous-learning control plane: it closes the loop
// between the drift detector (internal/obs/trace), label collection
// (internal/workload), training (t3.Train), the versioned model registry
// (internal/registry), and the serving tier's atomic model swap
// (internal/serve).
//
// One retrain episode runs: collect fresh labels → deterministic
// train/holdout split → train a candidate → shadow-evaluate candidate vs
// live on the held-out labels plus the worst-misprediction exemplars →
// promote only on a configurable q-error win, writing the artifact to the
// registry first so rollback can restore the previous version
// bit-identically. Every stage failure leaves the live model untouched and
// increments a t3_ctrl_* counter.
//
// The controller is testable-first: its clock, label source, trainer, and
// swap target are all injected, so the whole drift → retrain → shadow →
// promote → rollback loop runs deterministically in-process with no sleeps.
package ctrl

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"t3/internal/benchdata"
	"t3/internal/clock"
	"t3/internal/obs"
	"t3/internal/obs/trace"
	"t3/internal/registry"
	"t3/internal/workload"

	t3 "t3"
)

// Control-plane counters and gauges on the default registry. Each failure
// mode has its own counter so a dashboard can tell "label collection broke"
// from "candidates keep losing the shadow comparison".
var (
	// Retrains counts started retrain episodes.
	Retrains = obs.Default.NewCounter("t3_ctrl_retrains_total",
		"Retrain episodes started by the control plane.")
	// RetrainFailures counts episodes that failed before shadow evaluation
	// (label collection or training errors).
	RetrainFailures = obs.Default.NewCounter("t3_ctrl_retrain_failures_total",
		"Retrain episodes failed in collection or training.")
	// ShadowRejects counts candidates rejected by the shadow comparison.
	ShadowRejects = obs.Default.NewCounter("t3_ctrl_shadow_rejects_total",
		"Candidate models rejected by shadow evaluation.")
	// Promotions counts successful model swaps.
	Promotions = obs.Default.NewCounter("t3_ctrl_promotions_total",
		"Candidate models promoted to serving.")
	// Rollbacks counts restorations of a previous registry version.
	Rollbacks = obs.Default.NewCounter("t3_ctrl_rollbacks_total",
		"Rollbacks to a previous registry version.")
	// RegistryErrors counts registry read/write failures seen by the
	// controller (corrupt artifacts, IO errors).
	RegistryErrors = obs.Default.NewCounter("t3_ctrl_registry_errors_total",
		"Registry failures observed by the control plane.")
	// ShadowLiveQ and ShadowCandQ are the watched shadow q-error quantiles
	// of the last completed shadow evaluation.
	ShadowLiveQ = obs.Default.NewGauge("t3_ctrl_shadow_live_qerror",
		"Live model's shadow q-error quantile at the last evaluation.")
	ShadowCandQ = obs.Default.NewGauge("t3_ctrl_shadow_candidate_qerror",
		"Candidate model's shadow q-error quantile at the last evaluation.")
	// LiveVersion is the registry version currently being served (0 when
	// the served model is not registry-backed).
	LiveVersion = obs.Default.NewGauge("t3_ctrl_live_version",
		"Registry version of the model currently serving.")
)

// LabelSource supplies fresh training labels for one retrain episode.
// attempt is the number of episodes started before this one, so a source
// can rotate seeds or workload slices across episodes.
type LabelSource interface {
	CollectLabels(attempt int) (*workload.LabelSet, error)
}

// WorkloadSource is the production LabelSource: it runs the configured
// workload through the parallel label runner, bumping the generation seed
// each attempt so successive retrains see fresh query instances.
type WorkloadSource struct {
	Instance *workload.Instance
	Config   workload.CollectConfig
}

// CollectLabels implements LabelSource.
func (s *WorkloadSource) CollectLabels(attempt int) (*workload.LabelSet, error) {
	cfg := s.Config
	cfg.Seed += int64(attempt)
	return workload.CollectLabels(s.Instance, cfg)
}

// Swapper is the serving-side swap target. *serve.Server implements it.
type Swapper interface {
	Model() *t3.Model
	SetModel(*t3.Model)
}

// TrainFunc builds a candidate model from benched training queries. The
// default wraps t3.Train; tests inject failures and degenerate models.
type TrainFunc func(benched []*benchdata.BenchedQuery) (*t3.Model, error)

// Config configures a Controller. Zero fields take defaults.
type Config struct {
	// Registry is the versioned artifact store. Required.
	Registry *registry.Registry
	// Source supplies labels for retraining. Required.
	Source LabelSource
	// Swapper is the serving tier whose model the controller manages.
	// Required.
	Swapper Swapper
	// Clock supplies time for debounce and artifact timestamps. Default
	// clock.Real.
	Clock clock.Clock
	// Train builds the candidate model. Default: t3.Train with
	// TrainOptions.
	Train TrainFunc
	// TrainOptions parameterize the default trainer.
	TrainOptions t3.TrainOptions
	// Exemplars is the misprediction store whose frames are replayed during
	// shadow evaluation (nil disables replay; trace.Exemplars is the
	// process-wide store).
	Exemplars *trace.ExemplarStore
	// HoldoutFraction of collected labels is held out of training and used
	// for shadow evaluation. Default 0.25, clamped to [0, 0.5].
	HoldoutFraction float64
	// ShadowQuantile is the q-error quantile the shadow comparison judges
	// on. Default 0.9.
	ShadowQuantile float64
	// PromoteRatio gates promotion: the candidate wins when its shadow
	// quantile is <= PromoteRatio x the live model's. Default 0.95; values
	// > 1 accept mild regressions, < 1 demand improvement.
	PromoteRatio float64
	// MinInterval debounces drift-triggered retrains. Default 1m (tests
	// with fake clocks set it explicitly).
	MinInterval time.Duration
	// RollbackWindow: a drift alarm raised within this span after a
	// promotion rolls the promotion back instead of retraining again (the
	// shadow gate passed but production disagreed). Default 0 = disabled.
	RollbackWindow time.Duration
	// KeepVersions bounds the registry via GC after each write. Default 8.
	KeepVersions int
	// Synchronous makes drift alarms run the episode inline in the alarm
	// callback instead of waking a background goroutine — the deterministic
	// test mode.
	Synchronous bool
}

func (c *Config) defaults() error {
	if c.Registry == nil || c.Source == nil || c.Swapper == nil {
		return errors.New("ctrl: Registry, Source, and Swapper are required")
	}
	if c.Clock == nil {
		c.Clock = clock.Real
	}
	if c.Train == nil {
		opts := c.TrainOptions
		c.Train = func(benched []*benchdata.BenchedQuery) (*t3.Model, error) {
			return t3.Train(benched, opts)
		}
	}
	if c.HoldoutFraction == 0 {
		c.HoldoutFraction = 0.25
	}
	if c.ShadowQuantile == 0 {
		c.ShadowQuantile = 0.9
	}
	if c.PromoteRatio == 0 {
		c.PromoteRatio = 0.95
	}
	if c.MinInterval == 0 {
		c.MinInterval = time.Minute
	}
	if c.KeepVersions == 0 {
		c.KeepVersions = 8
	}
	return nil
}

// Status is a point-in-time view of the controller, for /debug/ctrl.
type Status struct {
	// State is "idle", "collecting", "training", or "shadowing".
	State string `json:"state"`
	// LiveVersion is the registry version currently serving (0 if the boot
	// model was never registered).
	LiveVersion int `json:"live_version"`
	// PreviousVersion is the registry version Rollback would restore (0 if
	// none).
	PreviousVersion int `json:"previous_version"`
	// Episodes counts retrain episodes started.
	Episodes int `json:"episodes"`
	// Promotions, ShadowRejects, Failures, Rollbacks count outcomes.
	Promotions    int `json:"promotions"`
	ShadowRejects int `json:"shadow_rejects"`
	Failures      int `json:"failures"`
	Rollbacks     int `json:"rollbacks"`
	// LastShadow is the most recent shadow comparison (zero until one ran).
	LastShadow ShadowResult `json:"last_shadow"`
	// LastEpisodeUnixNs is when the last episode started (controller
	// clock), 0 if none.
	LastEpisodeUnixNs int64 `json:"last_episode_unix_ns"`
	// LastPromotionUnixNs is when the last promotion happened, 0 if none.
	LastPromotionUnixNs int64 `json:"last_promotion_unix_ns"`
	// LastError is the last episode failure message ("" when the last
	// episode succeeded).
	LastError string `json:"last_error,omitempty"`
}

// Controller runs the drift → retrain → shadow → promote loop.
type Controller struct {
	cfg Config

	mu     sync.Mutex
	status Status
	// busy serializes episodes: alarms arriving mid-episode are dropped
	// (the running episode already reflects the drifted workload).
	busy bool
	// lastEpisode and lastPromotion drive debounce and rollback-window
	// decisions on the controller clock.
	lastEpisode   time.Time
	lastPromotion time.Time

	// trigger wakes the background loop in asynchronous mode (capacity 1:
	// coalescing, never blocking the alarm path).
	trigger chan string
}

// New builds a controller. If the registry is empty and the swapper already
// serves a boot model, that model is registered as version 1 so the first
// rollback target exists.
func New(cfg Config) (*Controller, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, trigger: make(chan string, 1)}
	c.status.State = "idle"

	latest, ok, err := cfg.Registry.Latest()
	if err != nil {
		RegistryErrors.Inc()
		return nil, fmt.Errorf("ctrl: reading registry: %w", err)
	}
	if ok {
		c.status.LiveVersion = latest
	} else if boot := cfg.Swapper.Model(); boot != nil {
		ver, err := cfg.Registry.Put(&registry.Artifact{
			Meta: registry.Meta{
				CreatedUnixNs: cfg.Clock.Now().UnixNano(),
				Source:        "seed",
				Note:          "boot model registered by the controller",
			},
			GBM: boot.Boosted(),
		})
		if err != nil {
			RegistryErrors.Inc()
			return nil, fmt.Errorf("ctrl: seeding registry: %w", err)
		}
		c.status.LiveVersion = ver
	}
	LiveVersion.Set(float64(c.status.LiveVersion))
	return c, nil
}

// Attach subscribes the controller to a drift detector: raised alarms
// trigger retrain episodes (or a rollback, inside the rollback window).
// Clear transitions are ignored.
func (c *Controller) Attach(d *trace.Detector) {
	d.OnAlarm(func(ev trace.DriftEvent) {
		if !ev.Raised {
			return
		}
		c.OnDrift(ev)
	})
}

// OnDrift handles one raised drift alarm: debounce, rollback-window check,
// then either an inline episode (Synchronous) or a wakeup of Run's loop.
func (c *Controller) OnDrift(ev trace.DriftEvent) {
	now := c.cfg.Clock.Now()

	c.mu.Lock()
	if c.busy {
		c.mu.Unlock()
		return
	}
	// A drift alarm shortly after a promotion means the shadow gate passed
	// but production regressed: undo the promotion instead of training
	// again on the same evidence.
	rollback := c.cfg.RollbackWindow > 0 && !c.lastPromotion.IsZero() &&
		now.Sub(c.lastPromotion) <= c.cfg.RollbackWindow && c.status.PreviousVersion != 0
	if !rollback && !c.lastEpisode.IsZero() && now.Sub(c.lastEpisode) < c.cfg.MinInterval {
		c.mu.Unlock()
		return
	}
	if rollback {
		// The rollback consumes this drift evidence; restart the debounce
		// so the next alarm doesn't immediately retrain on the same signal.
		c.lastEpisode = now
	}
	c.mu.Unlock()

	if rollback {
		_, _ = c.Rollback()
		return
	}
	reason := fmt.Sprintf("drift q%.2f=%.3f over %d obs", c.cfg.ShadowQuantile, ev.Quantile, ev.Count)
	if c.cfg.Synchronous {
		_, _ = c.Retrain(reason)
		return
	}
	select {
	case c.trigger <- reason:
	default: // an episode is already queued
	}
}

// Run services asynchronous drift triggers until stop closes. Synchronous
// controllers never need it.
func (c *Controller) Run(stop <-chan struct{}) {
	for {
		select {
		case reason := <-c.trigger:
			_, _ = c.Retrain(reason)
		case <-stop:
			return
		}
	}
}

// Status returns the controller's current view.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status
}

// begin claims the single episode slot; it returns false when an episode is
// already running.
func (c *Controller) begin(now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.busy {
		return false
	}
	c.busy = true
	c.lastEpisode = now
	c.status.Episodes++
	c.status.LastEpisodeUnixNs = now.UnixNano()
	c.status.State = "collecting"
	c.status.LastError = ""
	return true
}

func (c *Controller) setState(s string) {
	c.mu.Lock()
	c.status.State = s
	c.mu.Unlock()
}

func (c *Controller) fail(stage string, err error) error {
	err = fmt.Errorf("ctrl: %s: %w", stage, err)
	RetrainFailures.Inc()
	c.mu.Lock()
	c.busy = false
	c.status.State = "idle"
	c.status.Failures++
	c.status.LastError = err.Error()
	c.mu.Unlock()
	return err
}

// RetrainResult reports one completed (not failed) retrain episode.
type RetrainResult struct {
	// Promoted is whether the candidate replaced the live model.
	Promoted bool `json:"promoted"`
	// Version is the registry version of the promoted artifact (0 when not
	// promoted).
	Version int `json:"version"`
	// Shadow is the shadow comparison that decided the episode.
	Shadow ShadowResult `json:"shadow"`
	// TrainLabels and HoldoutLabels count the split sizes.
	TrainLabels   int `json:"train_labels"`
	HoldoutLabels int `json:"holdout_labels"`
}

// Retrain runs one full episode: collect → split → train → shadow →
// promote/reject. It is safe to call from any goroutine; concurrent calls
// beyond the first return ErrBusy. Failures at any stage leave the live
// model untouched.
func (c *Controller) Retrain(reason string) (RetrainResult, error) {
	now := c.cfg.Clock.Now()
	if !c.begin(now) {
		return RetrainResult{}, ErrBusy
	}
	Retrains.Inc()

	attempt := c.Status().Episodes - 1
	labels, err := c.cfg.Source.CollectLabels(attempt)
	if err != nil {
		return RetrainResult{}, c.fail("collecting labels", err)
	}
	trainSet, holdout := labels.Split(c.cfg.HoldoutFraction)
	if len(trainSet.Labels) == 0 {
		return RetrainResult{}, c.fail("collecting labels", errors.New("empty label set"))
	}

	c.setState("training")
	cand, err := c.cfg.Train(benchdata.FromLabels(trainSet))
	if err != nil {
		return RetrainResult{}, c.fail("training candidate", err)
	}

	c.setState("shadowing")
	live := c.cfg.Swapper.Model()
	shadow := c.shadowEval(live, cand, holdout)
	ShadowLiveQ.Set(shadow.LiveQ)
	ShadowCandQ.Set(shadow.CandidateQ)

	res := RetrainResult{
		Shadow:        shadow,
		TrainLabels:   len(trainSet.Labels),
		HoldoutLabels: len(holdout.Labels),
	}

	if live != nil && !shadow.Win(c.cfg.PromoteRatio) {
		ShadowRejects.Inc()
		c.mu.Lock()
		c.busy = false
		c.status.State = "idle"
		c.status.ShadowRejects++
		c.status.LastShadow = shadow
		c.mu.Unlock()
		return res, nil
	}

	// Candidate won: registry first, swap second. If the artifact cannot be
	// persisted the swap does not happen — an unregistered live model would
	// have no rollback target.
	c.mu.Lock()
	parent := c.status.LiveVersion
	c.mu.Unlock()
	ver, err := c.cfg.Registry.Put(&registry.Artifact{
		Meta: registry.Meta{
			CreatedUnixNs:      now.UnixNano(),
			Source:             "ctrl",
			TrainLabels:        len(trainSet.Labels),
			HoldoutLabels:      len(holdout.Labels),
			HoldoutFingerprint: holdout.Fingerprint(),
			ParentVersion:      parent,
			Note:               reason,
		},
		GBM: cand.Boosted(),
	})
	if err != nil {
		RegistryErrors.Inc()
		return RetrainResult{}, c.fail("writing artifact", err)
	}
	c.cfg.Swapper.SetModel(cand)
	Promotions.Inc()
	if _, err := c.cfg.Registry.GC(c.cfg.KeepVersions); err != nil {
		RegistryErrors.Inc()
	}

	c.mu.Lock()
	c.busy = false
	c.status.State = "idle"
	c.status.Promotions++
	c.status.LastShadow = shadow
	c.status.PreviousVersion = parent
	c.status.LiveVersion = ver
	c.status.LastPromotionUnixNs = now.UnixNano()
	c.lastPromotion = now
	c.mu.Unlock()
	LiveVersion.Set(float64(ver))

	res.Promoted = true
	res.Version = ver
	return res, nil
}

// ErrBusy is returned by Retrain when an episode is already running.
var ErrBusy = errors.New("ctrl: retrain already in progress")

// Rollback restores the previous registry version: the artifact is loaded
// (full checksum + cross-representation verification), rebuilt into a
// serving model, and swapped in. On any failure the live model is
// untouched. Returns the restored version.
func (c *Controller) Rollback() (int, error) {
	c.mu.Lock()
	if c.busy {
		c.mu.Unlock()
		return 0, ErrBusy
	}
	prev := c.status.PreviousVersion
	cur := c.status.LiveVersion
	c.mu.Unlock()
	if prev == 0 {
		return 0, errors.New("ctrl: no previous version to roll back to")
	}

	art, err := c.cfg.Registry.Load(prev)
	if err != nil {
		RegistryErrors.Inc()
		return 0, fmt.Errorf("ctrl: loading version %d: %w", prev, err)
	}
	m, err := t3.NewModel(art.GBM)
	if err != nil {
		RegistryErrors.Inc()
		return 0, fmt.Errorf("ctrl: rebuilding version %d: %w", prev, err)
	}
	c.cfg.Swapper.SetModel(m)
	Rollbacks.Inc()

	c.mu.Lock()
	c.status.Rollbacks++
	c.status.LiveVersion = prev
	c.status.PreviousVersion = cur
	// A rollback consumes the promotion it undid: further alarms retrain.
	c.lastPromotion = time.Time{}
	c.status.LastPromotionUnixNs = 0
	c.mu.Unlock()
	LiveVersion.Set(float64(prev))
	return prev, nil
}
