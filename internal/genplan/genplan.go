// Package genplan generates random but valid (schema, data, physical plan,
// SQL) cases for differential testing of the execution engine against the
// refexec reference interpreter.
//
// Every case is a pure function of (seed, scenario): the generator draws all
// randomness from a single math/rand source, so a failing case reproduces
// from its seed alone and Bytes() is byte-identical across runs and
// GOMAXPROCS settings.
//
// The generated data obeys the constraints that make bit-exact differential
// comparison valid:
//
//   - no NaN and no negative-zero float values (the engine hashes join and
//     group keys by their bit patterns but compares them with ==, so -0.0
//     and +0.0 would land in different hash chains while comparing equal);
//   - join keys have matching column kinds on both sides;
//   - NULL slots hold the type's zero value, because null flags are dropped
//     at every materialization boundary and the raw slot value becomes
//     visible downstream;
//   - hash keys (join and group-by) are only drawn from columns whose values
//     come verbatim from base tables — arithmetic map columns can produce
//     -0.0 (e.g. 0 * negative) and are never used as hash keys, though they
//     are freely aggregated, sorted, and compared.
//
// Cardinality annotations, by contrast, are deliberately adversarial: a
// random subset of cases carries negative, absurdly large, NaN, or ±Inf
// annotations, because execution results must not depend on annotations
// (they only steer hash-table presizing).
package genplan

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
	"t3/internal/sql"
)

// Scenario selects the interesting state a generated case pins down.
type Scenario uint8

// Scenarios.
const (
	// Default generates unconstrained random cases.
	Default Scenario = iota
	// EmptyInput gives the first table zero rows.
	EmptyInput
	// SingleRow gives every table exactly one row.
	SingleRow
	// AllNull makes at least one column entirely NULL.
	AllNull
	// DupJoinKeys forces a join whose keys are drawn from a three-value
	// domain, producing heavy duplicate-key chains.
	DupJoinKeys
	// GroupGrowth forces a group-by with far more groups than the initial
	// hash-table capacity (its annotation is pinned to zero), driving the
	// open-addressing table through several 3/4-load growths.
	GroupGrowth
	// NumScenarios is the number of scenarios (for seed-to-scenario mapping).
	NumScenarios
)

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case Default:
		return "default"
	case EmptyInput:
		return "empty-input"
	case SingleRow:
		return "single-row"
	case AllNull:
		return "all-null"
	case DupJoinKeys:
		return "dup-join-keys"
	case GroupGrowth:
		return "group-growth"
	default:
		return fmt.Sprintf("Scenario(%d)", uint8(s))
	}
}

// Case is one generated differential-test case.
type Case struct {
	Seed     int64
	Scenario Scenario
	// DB holds the generated tables the plan scans.
	DB *storage.Database
	// Root is a valid physical plan over DB, with (possibly hostile)
	// cardinality annotations.
	Root *plan.Node
	// SQL is an equivalent SQL rendering when the plan is expressible
	// (sql.Unparse succeeded), "" otherwise.
	SQL string
	// FiniteCards is false when hostile NaN/±Inf annotations were injected
	// (JSON plan serialization cannot represent those).
	FiniteCards bool
}

// vocab is the string-column value domain. Small, so string predicates and
// string join keys actually select and match.
var vocab = [...]string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}

// likePatterns exercise %, _, exact, and never-matching shapes.
var likePatterns = [...]string{"%a%", "%ta", "be_a", "g%", "%", "z_t%", "nomatch", "_____"}

// colInfo tracks one output column of a stream during generation.
type colInfo struct {
	name string
	kind storage.Type
	// hashSafe marks columns whose values come verbatim from base-table
	// data (no arithmetic), making them safe as join/group-by hash keys.
	hashSafe bool
}

// stream is a plan under construction plus generator-side column metadata.
type stream struct {
	node *plan.Node
	cols []colInfo
}

type gen struct {
	rng       *rand.Rand
	sc        Scenario
	nameN     int
	nonFinite bool
}

func (g *gen) name(prefix string) string {
	g.nameN++
	return fmt.Sprintf("%s%d", prefix, g.nameN)
}

// Generate builds the case for (seed, scenario).
func Generate(seed int64, sc Scenario) *Case {
	g := &gen{rng: rand.New(rand.NewSource(seed)), sc: sc}
	c := &Case{Seed: seed, Scenario: sc}

	nTables := 1
	if sc == DupJoinKeys || (sc != GroupGrowth && g.rng.Intn(2) == 0) {
		nTables = 2
	}
	tables := make([]*storage.Table, nTables)
	for i := range tables {
		tables[i] = g.genTable(i)
	}
	c.DB = storage.MustNewDatabase(fmt.Sprintf("gen%d", seed), tables...)

	st := g.genScan(tables[0], 0)
	if nTables == 2 {
		probe := g.genScan(tables[1], 1)
		if joined, ok := g.genJoin(st, probe); ok {
			st = joined
		} else {
			// No compatible key pair (possible outside DupJoinKeys, which
			// guarantees matching int key columns): continue single-table.
			st = probe
		}
	}
	st = g.genPostOps(st)
	c.Root = st.node

	g.annotate(c.Root)
	c.FiniteCards = !g.nonFinite

	if s, err := sql.Unparse(c.Root); err == nil {
		c.SQL = s
	}
	return c
}

// genTable builds table ti with scenario-appropriate shape and data.
func (g *gen) genTable(ti int) *storage.Table {
	nCols := 2 + g.rng.Intn(3)
	rows := 0
	switch g.sc {
	case Default, AllNull:
		rows = 8 + g.rng.Intn(120)
	case EmptyInput:
		if ti == 0 {
			rows = 0
		} else {
			rows = 1 + g.rng.Intn(20)
		}
	case SingleRow:
		rows = 1
	case DupJoinKeys:
		rows = 40 + g.rng.Intn(80)
	case GroupGrowth:
		rows = 420 + g.rng.Intn(200)
	}
	intDomain := int64(12)
	if g.sc == DupJoinKeys {
		intDomain = 3
	}
	if g.sc == GroupGrowth {
		intDomain = 160
	}

	allNullCol := -1
	if g.sc == AllNull {
		allNullCol = g.rng.Intn(nCols)
	}

	cols := make([]storage.Column, nCols)
	for ci := range cols {
		kind := storage.Type(g.rng.Intn(3))
		if ci == 0 {
			// Column 0 is always Int64 so joins and group-bys have a key
			// column of matching kind available on every table.
			kind = storage.Int64
		}
		col := storage.Column{Name: fmt.Sprintf("t%dc%d", ti, ci), Kind: kind}
		withNulls := ci == allNullCol || g.rng.Intn(4) == 0
		if withNulls && rows > 0 {
			col.Nulls = make([]bool, rows)
		}
		for r := 0; r < rows; r++ {
			null := false
			if col.Nulls != nil {
				null = ci == allNullCol || g.rng.Intn(5) == 0
				col.Nulls[r] = null
			}
			switch kind {
			case storage.Int64:
				v := g.rng.Int63n(intDomain) - intDomain/4
				if null {
					v = 0
				}
				col.Ints = append(col.Ints, v)
			case storage.Float64:
				// Step-0.125 grid in [-20, 80): negatives and exact zeros,
				// but never NaN and never -0.0.
				v := float64(g.rng.Intn(800))/8.0 - 20
				if null {
					v = 0
				}
				col.Flts = append(col.Flts, v)
			case storage.String:
				s := vocab[g.rng.Intn(len(vocab))]
				if null {
					s = ""
				}
				col.Strs = append(col.Strs, s)
			}
		}
		cols[ci] = col
	}
	return storage.MustNewTable(fmt.Sprintf("tbl%d", ti), cols...)
}

// genScan scans all columns of t in a random order with 0-2 pushed-down
// predicates.
func (g *gen) genScan(t *storage.Table, ti int) stream {
	perm := g.rng.Perm(len(t.Columns))
	cols := make([]colInfo, len(perm))
	for i, ci := range perm {
		cols[i] = colInfo{name: t.Columns[ci].Name, kind: t.Columns[ci].Kind, hashSafe: true}
	}
	nPreds := g.rng.Intn(3)
	if g.sc == GroupGrowth {
		nPreds = 0 // keep every row so the group count stays high
	}
	preds := make([]expr.BoolExpr, 0, nPreds)
	for i := 0; i < nPreds; i++ {
		preds = append(preds, g.genPred(cols, 0))
	}
	return stream{node: plan.NewTableScan(t, perm, preds...), cols: cols}
}

func (g *gen) colRef(cols []colInfo, i int) *expr.ColRef {
	return expr.Col(i, cols[i].name, cols[i].kind)
}

// genConst draws a constant for comparisons against a column of the given
// kind, sometimes cross-typed (the engine coerces: float constants truncate
// against integer columns, integer constants widen against float columns).
func (g *gen) genConst(kind storage.Type) *expr.Const {
	switch kind {
	case storage.Int64:
		if g.rng.Intn(2) == 0 {
			return expr.ConstFloat(float64(g.rng.Intn(24)) - 6.5)
		}
		return expr.ConstInt(g.rng.Int63n(16) - 4)
	case storage.Float64:
		if g.rng.Intn(2) == 0 {
			return expr.ConstInt(g.rng.Int63n(60) - 10)
		}
		return expr.ConstFloat(float64(g.rng.Intn(800))/8.0 - 20)
	default:
		return expr.ConstString(vocab[g.rng.Intn(len(vocab))])
	}
}

// sameKindConst draws a constant of exactly the column's kind (BETWEEN reads
// the constant field matching the column kind without coercion).
func (g *gen) sameKindConst(kind storage.Type) *expr.Const {
	switch kind {
	case storage.Int64:
		return expr.ConstInt(g.rng.Int63n(16) - 4)
	case storage.Float64:
		return expr.ConstFloat(float64(g.rng.Intn(800))/8.0 - 20)
	default:
		return expr.ConstString(vocab[g.rng.Intn(len(vocab))])
	}
}

// genPred draws one predicate over the given schema. depth bounds OR
// recursion.
func (g *gen) genPred(cols []colInfo, depth int) expr.BoolExpr {
	kindOf := func(i int) storage.Type { return cols[i].kind }
	i := g.rng.Intn(len(cols))
	switch g.rng.Intn(6) {
	case 0: // comparison
		return expr.NewCmp(expr.CmpOp(g.rng.Intn(6)), g.colRef(cols, i), g.genConst(kindOf(i)))
	case 1: // between (occasionally inverted bounds: legal, selects nothing)
		lo, hi := g.sameKindConst(kindOf(i)), g.sameKindConst(kindOf(i))
		if g.rng.Intn(4) != 0 {
			if (kindOf(i) == storage.Int64 && lo.I > hi.I) ||
				(kindOf(i) == storage.Float64 && lo.F > hi.F) ||
				(kindOf(i) == storage.String && lo.S > hi.S) {
				lo, hi = hi, lo
			}
		}
		return expr.NewBetween(g.colRef(cols, i), lo, hi)
	case 2: // in-list (over a float column: uniformly false, by contract)
		if kindOf(i) == storage.String {
			n := 1 + g.rng.Intn(3)
			vals := make([]string, n)
			for k := range vals {
				vals[k] = vocab[g.rng.Intn(len(vocab))]
			}
			return expr.NewInListStrings(g.colRef(cols, i), vals)
		}
		n := 1 + g.rng.Intn(4)
		vals := make([]int64, n)
		for k := range vals {
			vals[k] = g.rng.Int63n(16) - 4
		}
		return expr.NewInListInts(g.colRef(cols, i), vals)
	case 3: // like (over a non-string column: uniformly false, by contract)
		return expr.NewLike(g.colRef(cols, i), likePatterns[g.rng.Intn(len(likePatterns))])
	case 4: // column-column comparison (strings read as 0)
		j := g.rng.Intn(len(cols))
		return expr.NewColCmp(expr.CmpOp(g.rng.Intn(6)), g.colRef(cols, i), g.colRef(cols, j))
	default: // disjunction
		if depth >= 1 {
			return expr.NewCmp(expr.CmpOp(g.rng.Intn(6)), g.colRef(cols, i), g.genConst(kindOf(i)))
		}
		return expr.NewOr(g.genPred(cols, depth+1), g.genPred(cols, depth+1))
	}
}

// genJoin joins build onto probe over 1-2 key pairs of matching kinds drawn
// from hash-safe columns. Returns false when no compatible pair exists.
func (g *gen) genJoin(build, probe stream) (stream, bool) {
	type pair struct{ b, p int }
	var pairs []pair
	for bi, bc := range build.cols {
		if !bc.hashSafe {
			continue
		}
		for pi, pc := range probe.cols {
			if pc.hashSafe && pc.kind == bc.kind {
				pairs = append(pairs, pair{bi, pi})
			}
		}
	}
	if len(pairs) == 0 {
		return stream{}, false
	}
	nKeys := 1
	if len(pairs) > 1 && g.rng.Intn(3) == 0 {
		nKeys = 2
	}
	first := pairs[g.rng.Intn(len(pairs))]
	buildKeys, probeKeys := []int{first.b}, []int{first.p}
	if nKeys == 2 {
		second := pairs[g.rng.Intn(len(pairs))]
		if second.b != first.b && second.p != first.p {
			buildKeys = append(buildKeys, second.b)
			probeKeys = append(probeKeys, second.p)
		}
	}

	// Payload: a random subset of build columns, without repeats (sometimes
	// empty — the join then only carries the probe side).
	var payload []int
	for bi := range build.cols {
		if g.rng.Intn(3) != 0 {
			payload = append(payload, bi)
		}
	}

	node := plan.NewHashJoin(build.node, probe.node, buildKeys, probeKeys, payload)
	cols := append([]colInfo(nil), probe.cols...)
	for _, bi := range payload {
		cols = append(cols, build.cols[bi])
	}
	return stream{node: node, cols: cols}, true
}

// genPostOps appends a random chain of unary operators.
func (g *gen) genPostOps(st stream) stream {
	if g.sc == GroupGrowth {
		// Group on the high-cardinality int column (pinned to a zero
		// annotation later, so the hash table starts at minimum capacity).
		key := -1
		for i, c := range st.cols {
			if c.kind == storage.Int64 && c.hashSafe {
				key = i
				break
			}
		}
		st = g.genGroupByOn(st, key)
		if g.rng.Intn(2) == 0 {
			st = g.genSort(st)
		}
		return st
	}
	nOps := g.rng.Intn(4)
	if g.sc == DupJoinKeys && nOps == 0 {
		nOps = 1
	}
	for i := 0; i < nOps; i++ {
		switch g.rng.Intn(6) {
		case 0:
			st = stream{node: plan.NewFilter(st.node, g.genPred(st.cols, 0)), cols: st.cols}
		case 1:
			st = g.genMap(st)
		case 2:
			st = g.genGroupByOn(st, -2)
		case 3:
			st = g.genSort(st)
		case 4:
			st = g.genWindow(st)
		case 5:
			st = g.genLimit(st)
		}
	}
	return st
}

// genMap either appends computed columns or projects a subset.
func (g *gen) genMap(st stream) stream {
	if g.rng.Intn(3) == 0 {
		// Projection: keep a random non-empty subset in random order.
		var keep []int
		for i := range st.cols {
			if g.rng.Intn(2) == 0 {
				keep = append(keep, i)
			}
		}
		if len(keep) == 0 {
			keep = []int{g.rng.Intn(len(st.cols))}
		}
		cols := make([]colInfo, len(keep))
		for i, ci := range keep {
			cols[i] = st.cols[ci]
		}
		return stream{node: plan.Project(st.node, keep), cols: cols}
	}
	n := 1 + g.rng.Intn(2)
	names := make([]string, n)
	exprs := make([]expr.ValueExpr, n)
	cols := append([]colInfo(nil), st.cols...)
	for i := 0; i < n; i++ {
		names[i] = g.name("m")
		exprs[i] = g.genArith(st.cols, 0)
		cols = append(cols, colInfo{name: names[i], kind: storage.Float64, hashSafe: false})
	}
	return stream{node: plan.NewMap(st.node, names, exprs), cols: cols}
}

// genArith draws an arithmetic value expression (always Float64; division by
// zero yields zero; string operands read as 0).
func (g *gen) genArith(cols []colInfo, depth int) expr.ValueExpr {
	operand := func() expr.ValueExpr {
		if depth < 1 && g.rng.Intn(4) == 0 {
			return g.genArith(cols, depth+1)
		}
		if g.rng.Intn(4) == 0 {
			if g.rng.Intn(2) == 0 {
				return expr.ConstInt(g.rng.Int63n(9) - 2)
			}
			return expr.ConstFloat(float64(g.rng.Intn(64))/4.0 - 4)
		}
		i := g.rng.Intn(len(cols))
		return g.colRef(cols, i)
	}
	return expr.NewArith(expr.ArithOp(g.rng.Intn(4)), operand(), operand())
}

// genGroupByOn groups by the given column (-2: choose randomly, possibly a
// global aggregate) with 1-3 aggregates over arbitrary columns.
func (g *gen) genGroupByOn(st stream, key int) stream {
	var groupCols []int
	switch {
	case key >= 0:
		groupCols = []int{key}
	case key == -2:
		// 0-2 hash-safe group columns; zero means a global aggregate.
		var safe []int
		for i, c := range st.cols {
			if c.hashSafe {
				safe = append(safe, i)
			}
		}
		g.rng.Shuffle(len(safe), func(a, b int) { safe[a], safe[b] = safe[b], safe[a] })
		n := g.rng.Intn(3)
		if n > len(safe) {
			n = len(safe)
		}
		groupCols = append(groupCols, safe[:n]...)
	}
	nAggs := 1 + g.rng.Intn(3)
	aggs := make([]plan.Agg, nAggs)
	names := make([]string, nAggs)
	for i := range aggs {
		aggs[i] = plan.Agg{Fn: plan.AggFn(g.rng.Intn(5)), Col: g.rng.Intn(len(st.cols))}
		names[i] = g.name("a")
	}
	node := plan.NewGroupBy(st.node, groupCols, aggs, names)
	cols := make([]colInfo, 0, len(node.Schema))
	for _, ci := range groupCols {
		cols = append(cols, st.cols[ci])
	}
	for i, a := range aggs {
		safe := a.Fn == plan.AggCount || st.cols[a.Col].hashSafe
		cols = append(cols, colInfo{name: names[i], kind: node.Schema[len(groupCols)+i].Kind, hashSafe: safe})
	}
	return stream{node: node, cols: cols}
}

// genSort sorts by 1-2 columns, sometimes with a desc vector shorter than
// the key list (missing entries sort ascending).
func (g *gen) genSort(st stream) stream {
	n := 1 + g.rng.Intn(2)
	keys := make([]int, n)
	for i := range keys {
		keys[i] = g.rng.Intn(len(st.cols))
	}
	desc := make([]bool, g.rng.Intn(n+1))
	for i := range desc {
		desc[i] = g.rng.Intn(2) == 0
	}
	return stream{node: plan.NewSort(st.node, keys, desc), cols: st.cols}
}

// genWindow appends a window-function column. SUM requires a numeric
// hash-safe argument; when none exists the function falls back to
// row_number.
func (g *gen) genWindow(st stream) stream {
	fn := plan.WinFn(g.rng.Intn(3))
	arg := 0
	if fn == plan.WinSum {
		arg = -1
		for i, c := range st.cols {
			if c.kind != storage.String && c.hashSafe {
				arg = i
				break
			}
		}
		if arg < 0 {
			fn, arg = plan.WinRowNumber, 0
		}
	}
	var part, order []int
	if g.rng.Intn(2) == 0 {
		part = []int{g.rng.Intn(len(st.cols))}
	}
	for i := g.rng.Intn(3); i > 0; i-- {
		order = append(order, g.rng.Intn(len(st.cols)))
	}
	name := g.name("w")
	node := plan.NewWindow(st.node, fn, part, order, arg, name)
	cols := append([]colInfo(nil), st.cols...)
	cols = append(cols, colInfo{name: name, kind: node.Schema[len(node.Schema)-1].Kind, hashSafe: fn != plan.WinSum || st.cols[arg].hashSafe})
	return stream{node: node, cols: cols}
}

// genLimit draws a limit, including the N <= 0 edge.
func (g *gen) genLimit(st stream) stream {
	var n int
	switch g.rng.Intn(5) {
	case 0:
		n = -1 - g.rng.Intn(3)
	case 1:
		n = 0
	case 2:
		n = 1
	case 3:
		n = 1 + g.rng.Intn(30)
	default:
		n = 1000 + g.rng.Intn(1000)
	}
	return stream{node: plan.NewLimit(st.node, n), cols: st.cols}
}

// annotate writes random cardinality annotations over the whole plan. About
// a third of cases get hostile values (negative, huge, NaN, ±Inf); the rest
// stay plausible. GroupGrowth pins the group-by's annotation to zero so the
// hash table starts at minimum capacity and must grow.
func (g *gen) annotate(root *plan.Node) {
	hostile := g.rng.Intn(3) == 0
	card := func() plan.Card {
		return plan.Card{True: g.cardValue(hostile), Est: g.cardValue(hostile)}
	}
	root.Walk(func(n *plan.Node) {
		n.OutCard = card()
		for i := range n.PredSel {
			n.PredSel[i] = card()
		}
		if g.sc == GroupGrowth && n.Op == plan.GroupByOp {
			n.OutCard = plan.Card{}
		}
	})
}

func (g *gen) cardValue(hostile bool) float64 {
	if !hostile {
		return float64(g.rng.Intn(300))
	}
	switch g.rng.Intn(6) {
	case 0:
		return float64(g.rng.Intn(300))
	case 1:
		return -float64(1 + g.rng.Intn(100))
	case 2:
		return 1e18
	case 3:
		g.nonFinite = true
		return math.NaN()
	case 4:
		g.nonFinite = true
		return math.Inf(1)
	default:
		g.nonFinite = true
		return math.Inf(-1)
	}
}

// Bytes renders the full case — data, plan, annotations, SQL — as a
// deterministic byte string for replayability tests.
func (c *Case) Bytes() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "seed=%d scenario=%s finite=%v\n", c.Seed, c.Scenario, c.FiniteCards)
	for _, t := range c.DB.Tables {
		fmt.Fprintf(&b, "table %s rows=%d\n", t.Name, t.NumRows())
		for i := range t.Columns {
			col := &t.Columns[i]
			fmt.Fprintf(&b, "  col %s kind=%s ints=%v flts=%v strs=%q nulls=%v\n",
				col.Name, col.Kind, col.Ints, col.Flts, col.Strs, col.Nulls)
		}
	}
	b.WriteString(c.Root.Explain())
	c.Root.Walk(func(n *plan.Node) {
		fmt.Fprintf(&b, "node %s out=(%g,%g)\n", n, n.OutCard.True, n.OutCard.Est)
	})
	fmt.Fprintf(&b, "sql=%s\n", c.SQL)
	return b.Bytes()
}
