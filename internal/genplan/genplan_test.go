package genplan

import (
	"bytes"
	"math"
	"runtime"
	"testing"

	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// TestDeterministicAcrossRunsAndGOMAXPROCS is the replayability guarantee:
// the same (seed, scenario) must produce byte-identical cases on every run
// and under every GOMAXPROCS setting, so a fuzz failure reproduces from its
// seed alone.
func TestDeterministicAcrossRunsAndGOMAXPROCS(t *testing.T) {
	type key struct {
		seed int64
		sc   Scenario
	}
	baseline := map[key][]byte{}
	for seed := int64(0); seed < 20; seed++ {
		for sc := Scenario(0); sc < NumScenarios; sc++ {
			baseline[key{seed, sc}] = Generate(seed, sc).Bytes()
		}
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for k, want := range baseline {
			got := Generate(k.seed, k.sc).Bytes()
			if !bytes.Equal(got, want) {
				t.Fatalf("seed=%d scenario=%s: bytes differ at GOMAXPROCS=%d", k.seed, k.sc, procs)
			}
		}
	}
}

// TestGeneratedPlansAreValid decomposes every generated plan into pipelines
// and validates the decomposition, plus basic structural invariants.
func TestGeneratedPlansAreValid(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		for sc := Scenario(0); sc < NumScenarios; sc++ {
			c := Generate(seed, sc)
			if c.Root == nil {
				t.Fatalf("seed=%d scenario=%s: nil plan", seed, sc)
			}
			if err := plan.ValidatePipelines(plan.Decompose(c.Root)); err != nil {
				t.Fatalf("seed=%d scenario=%s: %v", seed, sc, err)
			}
			for _, tab := range c.DB.Tables {
				if err := tab.Validate(); err != nil {
					t.Fatalf("seed=%d scenario=%s: %v", seed, sc, err)
				}
			}
		}
	}
}

// TestScenarioProperties asserts each scenario actually pins the state it
// promises.
func TestScenarioProperties(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		if c := Generate(seed, EmptyInput); c.DB.Tables[0].NumRows() != 0 {
			t.Fatalf("seed=%d: EmptyInput table 0 has %d rows", seed, c.DB.Tables[0].NumRows())
		}
		for _, tab := range Generate(seed, SingleRow).DB.Tables {
			if tab.NumRows() != 1 {
				t.Fatalf("seed=%d: SingleRow table %s has %d rows", seed, tab.Name, tab.NumRows())
			}
		}

		allNull := false
		for _, tab := range Generate(seed, AllNull).DB.Tables {
			for i := range tab.Columns {
				col := &tab.Columns[i]
				if col.Nulls == nil {
					continue
				}
				n := 0
				for _, isNull := range col.Nulls {
					if isNull {
						n++
					}
				}
				if n == tab.NumRows() && n > 0 {
					allNull = true
				}
			}
		}
		if !allNull {
			t.Fatalf("seed=%d: AllNull case has no fully-NULL column", seed)
		}

		joins := 0
		Generate(seed, DupJoinKeys).Root.Walk(func(n *plan.Node) {
			if n.Op == plan.HashJoinOp {
				joins++
			}
		})
		if joins == 0 {
			t.Fatalf("seed=%d: DupJoinKeys case has no join", seed)
		}

		cg := Generate(seed, GroupGrowth)
		var gb *plan.Node
		cg.Root.Walk(func(n *plan.Node) {
			if n.Op == plan.GroupByOp {
				gb = n
			}
		})
		if gb == nil {
			t.Fatalf("seed=%d: GroupGrowth case has no group-by", seed)
		}
		if gb.OutCard.True != 0 || gb.OutCard.Est != 0 {
			t.Fatalf("seed=%d: GroupGrowth group-by annotation = %+v, want zero (forces growth)", seed, gb.OutCard)
		}
		if rows := cg.DB.Tables[0].NumRows(); rows < 400 {
			t.Fatalf("seed=%d: GroupGrowth table has only %d rows", seed, rows)
		}
	}
}

// TestNoHostileDataValues asserts the data constraints the differential
// comparison depends on: no NaN, no negative zero, and zero values in NULL
// slots.
func TestNoHostileDataValues(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		for sc := Scenario(0); sc < NumScenarios; sc++ {
			c := Generate(seed, sc)
			for _, tab := range c.DB.Tables {
				for i := range tab.Columns {
					col := &tab.Columns[i]
					for r := 0; r < tab.NumRows(); r++ {
						if col.Kind == storage.Float64 {
							v := col.Flts[r]
							if math.IsNaN(v) {
								t.Fatalf("seed=%d %s.%s[%d] is NaN", seed, tab.Name, col.Name, r)
							}
							if v == 0 && math.Signbit(v) {
								t.Fatalf("seed=%d %s.%s[%d] is -0.0", seed, tab.Name, col.Name, r)
							}
						}
						if col.IsNull(r) {
							switch col.Kind {
							case storage.Int64:
								if col.Ints[r] != 0 {
									t.Fatalf("seed=%d %s.%s[%d]: NULL slot holds %d", seed, tab.Name, col.Name, r, col.Ints[r])
								}
							case storage.Float64:
								if col.Flts[r] != 0 {
									t.Fatalf("seed=%d %s.%s[%d]: NULL slot holds %v", seed, tab.Name, col.Name, r, col.Flts[r])
								}
							case storage.String:
								if col.Strs[r] != "" {
									t.Fatalf("seed=%d %s.%s[%d]: NULL slot holds %q", seed, tab.Name, col.Name, r, col.Strs[r])
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestFiniteCardsFlag asserts the flag matches the annotations actually
// placed, and that both finite and hostile cases occur.
func TestFiniteCardsFlag(t *testing.T) {
	finite, hostile := 0, 0
	for seed := int64(0); seed < 60; seed++ {
		c := Generate(seed, Default)
		nonFinite := false
		c.Root.Walk(func(n *plan.Node) {
			check := func(v float64) {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					nonFinite = true
				}
			}
			check(n.OutCard.True)
			check(n.OutCard.Est)
			for _, p := range n.PredSel {
				check(p.True)
				check(p.Est)
			}
		})
		if nonFinite == c.FiniteCards {
			t.Fatalf("seed=%d: FiniteCards=%v but nonFinite=%v", seed, c.FiniteCards, nonFinite)
		}
		if c.FiniteCards {
			finite++
		} else {
			hostile++
		}
	}
	if finite == 0 || hostile == 0 {
		t.Fatalf("want both finite (%d) and hostile (%d) annotation cases", finite, hostile)
	}
}

// TestSQLGeneratedForSimpleShapes checks the generator does produce SQL for
// a reasonable fraction of cases (plans within sql.Unparse's supported
// shapes).
func TestSQLGeneratedForSimpleShapes(t *testing.T) {
	withSQL := 0
	total := 0
	for seed := int64(0); seed < 80; seed++ {
		for sc := Scenario(0); sc < NumScenarios; sc++ {
			if Generate(seed, sc).SQL != "" {
				withSQL++
			}
			total++
		}
	}
	if withSQL < total/4 {
		t.Fatalf("only %d/%d cases carry SQL", withSQL, total)
	}
}
