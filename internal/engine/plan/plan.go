// Package plan defines physical query plans for the engine and their
// decomposition into pipelines.
//
// A physical plan is a tree of operators annotated with cardinalities (both
// measured/"true" and estimated), tuple widths, and — for table scans — the
// pushed-down predicate list with per-predicate selectivities. This is the
// "physical query plan with annotations" that T3 consumes (§2.1 of the
// paper).
//
// The package also implements the paper's pipeline-based plan representation
// (§2.2): a plan is decomposed into pipelines, each starting at a scan
// (either a base-table scan or the scan stage of a pipeline breaker) and
// ending at the build stage of the next breaker or at the query result.
package plan

import (
	"fmt"
	"strings"

	"t3/internal/engine/expr"
	"t3/internal/engine/storage"
)

// OpType enumerates physical operators.
type OpType uint8

// Physical operator types.
const (
	TableScanOp OpType = iota
	FilterOp
	MapOp
	HashJoinOp
	GroupByOp
	SortOp
	WindowOp
	MaterializeOp
	LimitOp
	numOpTypes
)

// NumOpTypes is the number of distinct physical operator types.
const NumOpTypes = int(numOpTypes)

// String returns the operator name.
func (t OpType) String() string {
	switch t {
	case TableScanOp:
		return "TableScan"
	case FilterOp:
		return "Filter"
	case MapOp:
		return "Map"
	case HashJoinOp:
		return "HashJoin"
	case GroupByOp:
		return "GroupBy"
	case SortOp:
		return "Sort"
	case WindowOp:
		return "Window"
	case MaterializeOp:
		return "Materialize"
	case LimitOp:
		return "Limit"
	default:
		return fmt.Sprintf("Op(%d)", uint8(t))
	}
}

// Stage is the role an operator plays within a particular pipeline (§3,
// Figure 4 of the paper).
type Stage uint8

// Operator stages.
const (
	// StageBuild consumes tuples and materializes state (hash-table build,
	// aggregation, sort input collection).
	StageBuild Stage = iota
	// StageProbe consumes tuples from the RIGHT stream, probes materialized
	// state, and emits tuples.
	StageProbe
	// StageScan produces tuples from a base table or materialized state.
	StageScan
	// StagePassThrough consumes and re-emits tuples (filter, map, limit).
	StagePassThrough
	numStages
)

// NumStages is the number of distinct stage kinds.
const NumStages = int(numStages)

// String returns the stage name.
func (s Stage) String() string {
	switch s {
	case StageBuild:
		return "Build"
	case StageProbe:
		return "Probe"
	case StageScan:
		return "Scan"
	case StagePassThrough:
		return "PassThrough"
	default:
		return fmt.Sprintf("Stage(%d)", uint8(s))
	}
}

// ColMeta describes one output column of an operator.
type ColMeta struct {
	Name string
	Kind storage.Type
}

// SchemaWidth returns the summed byte width of the given schema.
func SchemaWidth(schema []ColMeta) int {
	w := 0
	for _, c := range schema {
		w += c.Kind.Width()
	}
	return w
}

// AggFn enumerates aggregate functions.
type AggFn uint8

// Aggregate functions.
const (
	AggCount AggFn = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL name of the aggregate.
func (f AggFn) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "avg"
	}
}

// Agg is one aggregate computation: Fn over input column Col (ignored for
// COUNT).
type Agg struct {
	Fn  AggFn
	Col int
}

// WinFn enumerates window functions.
type WinFn uint8

// Window functions.
const (
	WinRowNumber WinFn = iota
	WinRank
	WinSum
)

// String returns the SQL name of the window function.
func (f WinFn) String() string {
	switch f {
	case WinRowNumber:
		return "row_number"
	case WinRank:
		return "rank"
	default:
		return "sum"
	}
}

// Card holds the true (measured) and estimated values of a cardinality
// annotation. T3 trains and predicts from either, selected by CardMode.
type Card struct {
	True float64
	Est  float64
}

// CardMode selects which cardinality annotation featurization reads.
type CardMode uint8

// Cardinality modes.
const (
	// TrueCards uses measured cardinalities (the paper's "perfect
	// cardinalities" setting).
	TrueCards CardMode = iota
	// EstCards uses estimator outputs (the paper's "estimated
	// cardinalities" setting).
	EstCards
)

// Get returns the value selected by the mode.
func (c Card) Get(m CardMode) float64 {
	if m == EstCards {
		return c.Est
	}
	return c.True
}

// Node is one physical operator in a plan tree. Left is the (only or left)
// input; Right is the right input of binary operators. Operator-specific
// fields are populated according to Op.
type Node struct {
	Op    OpType
	Left  *Node
	Right *Node

	// OutCard is the cardinality of the operator's OUT stream.
	OutCard Card

	// Schema is the operator's output schema.
	Schema []ColMeta

	// TableScan fields.
	Table      *storage.Table
	TableName  string
	ScanCols   []int           // column indices into the base table
	Predicates []expr.BoolExpr // pushed-down conjuncts, evaluated in order
	// PredSel[i] is the selectivity of predicate i among tuples that reach
	// it (predicates short-circuit in order).
	PredSel []Card
	// ScanCard is the base-table cardinality (exact in both modes).
	ScanCard float64

	// Filter fields.
	FilterPred expr.BoolExpr

	// Map fields: computed columns appended to the input schema.
	MapExprs []expr.ValueExpr
	MapNames []string

	// HashJoin fields: build on Left, probe with Right. BuildKeys index into
	// Left's schema, ProbeKeys into Right's schema. BuildPayload lists the
	// Left columns carried into the output (key columns may repeat).
	BuildKeys    []int
	ProbeKeys    []int
	BuildPayload []int
	// BuildWidth, when > 0, overrides the materialized bytes per build
	// tuple derived from BuildKeys/BuildPayload (used by deserialized
	// plans whose key/payload lists are reconstructed).
	BuildWidth int

	// GroupBy fields.
	GroupCols []int
	Aggs      []Agg
	AggNames  []string

	// Sort fields.
	SortCols []int
	SortDesc []bool

	// Window fields.
	WinFunc      WinFn
	WinPartition []int
	WinOrder     []int
	WinArg       int

	// Limit fields.
	LimitN int

	// mapReplaces marks Map nodes whose expressions replace the input schema
	// (projection) instead of appending to it.
	mapReplaces bool
}

// InCard returns the cardinality of the node's IN stream (its left/only
// child's OUT stream, or the base-table cardinality for scans).
func (n *Node) InCard(m CardMode) float64 {
	if n.Op == TableScanOp {
		return n.ScanCard
	}
	if n.Left != nil {
		return n.Left.OutCard.Get(m)
	}
	return 0
}

// RightCard returns the cardinality of the node's RIGHT stream.
func (n *Node) RightCard(m CardMode) float64 {
	if n.Right != nil {
		return n.Right.OutCard.Get(m)
	}
	return 0
}

// InWidth returns the tuple width in bytes of the node's IN stream.
func (n *Node) InWidth() int {
	if n.Op == TableScanOp {
		return SchemaWidth(n.Schema)
	}
	if n.Left != nil {
		return SchemaWidth(n.Left.Schema)
	}
	return 0
}

// OutWidth returns the tuple width in bytes of the node's OUT stream.
func (n *Node) OutWidth() int { return SchemaWidth(n.Schema) }

// NewTableScan builds a table-scan node over the given columns of t with
// pushed-down predicates. Column references inside the predicates must be
// resolved against the scan's output schema (positions in cols).
func NewTableScan(t *storage.Table, cols []int, preds ...expr.BoolExpr) *Node {
	schema := make([]ColMeta, len(cols))
	for i, ci := range cols {
		schema[i] = ColMeta{Name: t.Columns[ci].Name, Kind: t.Columns[ci].Kind}
	}
	return &Node{
		Op:         TableScanOp,
		Table:      t,
		TableName:  t.Name,
		ScanCols:   cols,
		Predicates: preds,
		PredSel:    make([]Card, len(preds)),
		ScanCard:   float64(t.NumRows()),
		Schema:     schema,
	}
}

// NewFilter builds a filter (pass-through) node.
func NewFilter(in *Node, pred expr.BoolExpr) *Node {
	return &Node{Op: FilterOp, Left: in, FilterPred: pred, Schema: in.Schema}
}

// NewMap builds a map node appending one computed column per expression.
func NewMap(in *Node, names []string, exprs []expr.ValueExpr) *Node {
	schema := append([]ColMeta(nil), in.Schema...)
	for i, e := range exprs {
		schema = append(schema, ColMeta{Name: names[i], Kind: e.Kind()})
	}
	return &Node{Op: MapOp, Left: in, MapExprs: exprs, MapNames: names, Schema: schema}
}

// NewHashJoin builds an inner hash join: the hash table is built over
// build's payload columns keyed by buildKeys; probe tuples stream through.
// The output schema is the probe schema followed by the build payload.
func NewHashJoin(build, probe *Node, buildKeys, probeKeys, buildPayload []int) *Node {
	schema := append([]ColMeta(nil), probe.Schema...)
	for _, ci := range buildPayload {
		schema = append(schema, build.Schema[ci])
	}
	return &Node{
		Op:           HashJoinOp,
		Left:         build,
		Right:        probe,
		BuildKeys:    buildKeys,
		ProbeKeys:    probeKeys,
		BuildPayload: buildPayload,
		Schema:       schema,
	}
}

// NewGroupBy builds a hash-aggregation node grouping by groupCols.
func NewGroupBy(in *Node, groupCols []int, aggs []Agg, aggNames []string) *Node {
	schema := make([]ColMeta, 0, len(groupCols)+len(aggs))
	for _, ci := range groupCols {
		schema = append(schema, in.Schema[ci])
	}
	for i, a := range aggs {
		kind := storage.Float64
		if a.Fn == AggCount {
			kind = storage.Int64
		} else if a.Fn == AggMin || a.Fn == AggMax {
			kind = in.Schema[a.Col].Kind
		}
		schema = append(schema, ColMeta{Name: aggNames[i], Kind: kind})
	}
	return &Node{Op: GroupByOp, Left: in, GroupCols: groupCols, Aggs: aggs, AggNames: aggNames, Schema: schema}
}

// NewSort builds a sort node (full materialize + sort + scan).
func NewSort(in *Node, sortCols []int, desc []bool) *Node {
	return &Node{Op: SortOp, Left: in, SortCols: sortCols, SortDesc: desc, Schema: in.Schema}
}

// NewWindow builds a window node appending one computed column. The window
// operator materializes its input, partitions and orders it, computes the
// function, and scans the result back out.
func NewWindow(in *Node, fn WinFn, partition, order []int, arg int, name string) *Node {
	kind := storage.Int64
	if fn == WinSum {
		kind = storage.Float64
	}
	schema := append([]ColMeta(nil), in.Schema...)
	schema = append(schema, ColMeta{Name: name, Kind: kind})
	return &Node{Op: WindowOp, Left: in, WinFunc: fn, WinPartition: partition, WinOrder: order, WinArg: arg, Schema: schema}
}

// NewMaterialize builds an explicit materialization (pipeline breaker).
func NewMaterialize(in *Node) *Node {
	return &Node{Op: MaterializeOp, Left: in, Schema: in.Schema}
}

// NewLimit builds a limit (pass-through) node.
func NewLimit(in *Node, n int) *Node {
	return &Node{Op: LimitOp, Left: in, LimitN: n, Schema: in.Schema}
}

// Project builds a map-free projection by scanning only the needed columns;
// at the plan level projections are folded into scans and group-bys, so this
// helper simply narrows the schema via a Map of column refs.
func Project(in *Node, cols []int) *Node {
	names := make([]string, len(cols))
	exprs := make([]expr.ValueExpr, len(cols))
	for i, ci := range cols {
		names[i] = in.Schema[ci].Name
		exprs[i] = expr.Col(ci, in.Schema[ci].Name, in.Schema[ci].Kind)
	}
	n := &Node{Op: MapOp, Left: in, MapExprs: exprs, MapNames: names}
	n.Schema = make([]ColMeta, len(cols))
	for i, ci := range cols {
		n.Schema[i] = in.Schema[ci]
	}
	n.mapReplaces = true
	return n
}

// MapReplaces reports whether this Map node's expressions replace the input
// schema (projection) instead of appending to it.
func (n *Node) MapReplaces() bool { return n.mapReplaces }

// IsBreaker reports whether the operator fully materializes its input
// (i.e. its IN stream ends a pipeline).
func (n *Node) IsBreaker() bool {
	switch n.Op {
	case HashJoinOp, GroupByOp, SortOp, WindowOp, MaterializeOp:
		return true
	default:
		return false
	}
}

// Walk visits the plan tree in post-order (left, right, node).
func (n *Node) Walk(visit func(*Node)) {
	if n == nil {
		return
	}
	n.Left.Walk(visit)
	n.Right.Walk(visit)
	visit(n)
}

// Count returns the number of operators in the plan.
func (n *Node) Count() int {
	c := 0
	n.Walk(func(*Node) { c++ })
	return c
}

// String renders a compact single-line description of the operator.
func (n *Node) String() string {
	switch n.Op {
	case TableScanOp:
		var preds []string
		for _, p := range n.Predicates {
			preds = append(preds, p.String())
		}
		s := fmt.Sprintf("TableScan(%s)", n.TableName)
		if len(preds) > 0 {
			s += " [" + strings.Join(preds, " AND ") + "]"
		}
		return s
	case FilterOp:
		return fmt.Sprintf("Filter[%s]", n.FilterPred)
	case MapOp:
		return fmt.Sprintf("Map(%d exprs)", len(n.MapExprs))
	case HashJoinOp:
		return fmt.Sprintf("HashJoin(keys=%v=%v)", n.BuildKeys, n.ProbeKeys)
	case GroupByOp:
		return fmt.Sprintf("GroupBy(%d keys, %d aggs)", len(n.GroupCols), len(n.Aggs))
	case SortOp:
		return fmt.Sprintf("Sort(%v)", n.SortCols)
	case WindowOp:
		return fmt.Sprintf("Window(%s)", n.WinFunc)
	case MaterializeOp:
		return "Materialize"
	case LimitOp:
		return fmt.Sprintf("Limit(%d)", n.LimitN)
	default:
		return n.Op.String()
	}
}

// Explain renders the plan tree as an indented multi-line string.
func (n *Node) Explain() string {
	var sb strings.Builder
	var rec func(*Node, int)
	rec = func(x *Node, depth int) {
		if x == nil {
			return
		}
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(x.String())
		sb.WriteString(fmt.Sprintf("  {card true=%.0f est=%.0f}\n", x.OutCard.True, x.OutCard.Est))
		rec(x.Left, depth+1)
		rec(x.Right, depth+1)
	}
	rec(n, 0)
	return sb.String()
}
