package plan

import (
	"fmt"
	"strings"
)

// StageRef is one operator stage inside a pipeline: which node, and in which
// role it participates in this pipeline.
type StageRef struct {
	Node  *Node
	Stage Stage
}

// Pipeline is one executable unit of a plan: it scans a source (base table
// or materialized state of a breaker), pushes tuples through pass-through
// and probe stages, and ends at a build stage or the query result (§2.2).
//
// Stages[0] is always the source stage (StageScan). If the pipeline feeds a
// breaker, the final stage is that breaker's StageBuild.
type Pipeline struct {
	// Index is the position of the pipeline in execution order.
	Index int
	// Stages lists the operator stages in push order.
	Stages []StageRef
}

// Source returns the scan stage the pipeline starts from.
func (p *Pipeline) Source() StageRef { return p.Stages[0] }

// SourceCard returns the number of tuples scanned at the start of the
// pipeline — the cardinality T3 multiplies its per-tuple prediction by.
func (p *Pipeline) SourceCard(m CardMode) float64 {
	src := p.Source()
	switch src.Node.Op {
	case TableScanOp:
		return src.Node.ScanCard
	default:
		// Scan stage of a breaker: scans that breaker's materialized output.
		return src.Node.OutCard.Get(m)
	}
}

// ReachCard returns, for stage index si, the number of tuples arriving at
// that stage (over the stream it consumes in this pipeline).
func (p *Pipeline) ReachCard(si int, m CardMode) float64 {
	if si == 0 {
		return p.SourceCard(m)
	}
	prev := p.Stages[si-1]
	switch prev.Stage {
	case StageScan, StagePassThrough, StageProbe:
		return prev.Node.OutCard.Get(m)
	default:
		return 0
	}
}

// Percentage returns the fraction of pipeline-source tuples that reach stage
// si. This is T3's most-used feature (§3, "Basic Features"): the product of
// the selectivities of all preceding operators.
func (p *Pipeline) Percentage(si int, m CardMode) float64 {
	src := p.SourceCard(m)
	if src <= 0 {
		// An empty source means no tuple ever flows; define all percentages
		// as zero.
		return 0
	}
	return p.ReachCard(si, m) / src
}

// String renders the pipeline as "src -> stage -> stage".
func (p *Pipeline) String() string {
	parts := make([]string, len(p.Stages))
	for i, s := range p.Stages {
		parts[i] = fmt.Sprintf("%s.%s", s.Node.Op, s.Stage)
	}
	return fmt.Sprintf("P%d[%s]", p.Index, strings.Join(parts, " -> "))
}

// Decompose splits a plan tree into its pipelines in execution order:
// dependencies (join build sides, breaker inputs) come before the pipelines
// that consume their materialized state. The final pipeline produces the
// query result.
func Decompose(root *Node) []*Pipeline {
	return DecomposeInto(root, &PipelineScratch{})
}

// PipelineScratch holds reusable pipeline storage for DecomposeInto. After a
// few calls its capacities stabilize and decomposition stops allocating; the
// prediction hot path keeps one scratch per caller. The zero value is ready
// to use.
type PipelineScratch struct {
	pipes []*Pipeline
	used  int
	done  []*Pipeline
}

// next returns the scratch's next reusable pipeline, emptied.
func (s *PipelineScratch) next() *Pipeline {
	if s.used == len(s.pipes) {
		s.pipes = append(s.pipes, &Pipeline{})
	}
	p := s.pipes[s.used]
	s.used++
	p.Index = 0
	p.Stages = p.Stages[:0]
	return p
}

// DecomposeInto is Decompose over caller-owned scratch storage: the returned
// pipelines (and the slice holding them) belong to the scratch and are valid
// only until its next DecomposeInto call.
func DecomposeInto(root *Node, s *PipelineScratch) []*Pipeline {
	s.used = 0
	s.done = s.done[:0]
	d := decomposer{s: s}
	last := d.visit(root)
	last.Index = len(s.done)
	s.done = append(s.done, last)
	return s.done
}

// decomposer carries the scratch through the recursive walk as a method
// receiver rather than a closure, keeping the walk allocation-free.
type decomposer struct {
	s *PipelineScratch
}

func (d *decomposer) visit(n *Node) *Pipeline {
	switch n.Op {
	case TableScanOp:
		p := d.s.next()
		p.Stages = append(p.Stages, StageRef{Node: n, Stage: StageScan})
		return p

	case FilterOp, MapOp, LimitOp:
		p := d.visit(n.Left)
		p.Stages = append(p.Stages, StageRef{Node: n, Stage: StagePassThrough})
		return p

	case HashJoinOp:
		// Build side: close its pipeline at our build stage.
		pb := d.visit(n.Left)
		pb.Stages = append(pb.Stages, StageRef{Node: n, Stage: StageBuild})
		pb.Index = len(d.s.done)
		d.s.done = append(d.s.done, pb)
		// Probe side: continue the open pipeline through our probe stage.
		pp := d.visit(n.Right)
		pp.Stages = append(pp.Stages, StageRef{Node: n, Stage: StageProbe})
		return pp

	case GroupByOp, SortOp, WindowOp, MaterializeOp:
		// Input pipeline ends at our build stage.
		pb := d.visit(n.Left)
		pb.Stages = append(pb.Stages, StageRef{Node: n, Stage: StageBuild})
		pb.Index = len(d.s.done)
		d.s.done = append(d.s.done, pb)
		// A new pipeline starts scanning our materialized state.
		p := d.s.next()
		p.Stages = append(p.Stages, StageRef{Node: n, Stage: StageScan})
		return p

	default:
		panic(fmt.Sprintf("plan: unknown operator %v", n.Op))
	}
}

// StageOf returns the stage the node executes within the pipeline containing
// it as a non-source member, following the paper's Listing 1 pseudocode
// (op.getStage(pipeline)).
func StageOf(n *Node, p *Pipeline) (Stage, bool) {
	for _, s := range p.Stages {
		if s.Node == n {
			return s.Stage, true
		}
	}
	return 0, false
}

// ValidatePipelines performs structural sanity checks used by tests and the
// featurizer: every pipeline starts with a scan stage, breakers appear with
// a build stage exactly once across all pipelines, and only probe or
// pass-through stages repeat within a pipeline.
func ValidatePipelines(ps []*Pipeline) error {
	buildSeen := make(map[*Node]int)
	for _, p := range ps {
		if len(p.Stages) == 0 {
			return fmt.Errorf("pipeline %d is empty", p.Index)
		}
		if p.Stages[0].Stage != StageScan {
			return fmt.Errorf("pipeline %d starts with %v, want Scan", p.Index, p.Stages[0].Stage)
		}
		for i, s := range p.Stages[1:] {
			switch s.Stage {
			case StageScan:
				return fmt.Errorf("pipeline %d has Scan at position %d", p.Index, i+1)
			case StageBuild:
				if i+1 != len(p.Stages)-1 {
					return fmt.Errorf("pipeline %d has Build before its end", p.Index)
				}
				buildSeen[s.Node]++
			}
		}
	}
	for n, c := range buildSeen {
		if c != 1 {
			return fmt.Errorf("node %v has %d build stages", n, c)
		}
	}
	return nil
}
