package plan

import (
	"testing"

	"t3/internal/engine/expr"
	"t3/internal/engine/storage"
)

// testTable builds a tiny table with n rows: id (0..n-1), val (float), name.
func testTable(t *testing.T, name string, n int) *storage.Table {
	t.Helper()
	ids := make([]int64, n)
	vals := make([]float64, n)
	strs := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		vals[i] = float64(i) * 1.5
		strs[i] = "row"
	}
	return storage.MustNewTable(name,
		storage.Column{Name: "id", Kind: storage.Int64, Ints: ids},
		storage.Column{Name: "val", Kind: storage.Float64, Flts: vals},
		storage.Column{Name: "name", Kind: storage.String, Strs: strs},
	)
}

func TestDecomposeScanOnly(t *testing.T) {
	tab := testTable(t, "t", 10)
	scan := NewTableScan(tab, []int{0, 1})
	ps := Decompose(scan)
	if len(ps) != 1 {
		t.Fatalf("got %d pipelines, want 1", len(ps))
	}
	if err := ValidatePipelines(ps); err != nil {
		t.Fatal(err)
	}
	if len(ps[0].Stages) != 1 || ps[0].Stages[0].Stage != StageScan {
		t.Fatalf("unexpected stages %v", ps[0])
	}
	if got := ps[0].SourceCard(TrueCards); got != 10 {
		t.Fatalf("source card = %v, want 10", got)
	}
}

func TestDecomposeJoinAggregate(t *testing.T) {
	// Shape of the paper's running example: two scans, a join, and a
	// group-by; finally an order-by.
	//   Sort(GroupBy(HashJoin(build=scan1, probe=scan2)))
	t1 := testTable(t, "t1", 100)
	t2 := testTable(t, "t2", 1000)
	s1 := NewTableScan(t1, []int{0, 1})
	s2 := NewTableScan(t2, []int{0, 1})
	join := NewHashJoin(s1, s2, []int{0}, []int{0}, []int{1})
	gb := NewGroupBy(join, []int{0}, []Agg{{Fn: AggSum, Col: 1}}, []string{"s"})
	srt := NewSort(gb, []int{1}, []bool{true})

	ps := Decompose(srt)
	if err := ValidatePipelines(ps); err != nil {
		t.Fatal(err)
	}
	// Expected pipelines:
	//   P0: scan t1 -> join build
	//   P1: scan t2 -> join probe -> groupby build
	//   P2: groupby scan -> sort build
	//   P3: sort scan (result)
	if len(ps) != 4 {
		t.Fatalf("got %d pipelines, want 4:\n%v %v", len(ps), ps[0], ps[1])
	}
	wantLens := []int{2, 3, 2, 1}
	for i, p := range ps {
		if len(p.Stages) != wantLens[i] {
			t.Errorf("pipeline %d has %d stages, want %d (%v)", i, len(p.Stages), wantLens[i], p)
		}
		if p.Index != i {
			t.Errorf("pipeline %d has index %d", i, p.Index)
		}
	}
	if ps[0].Stages[1].Stage != StageBuild || ps[0].Stages[1].Node != join {
		t.Errorf("P0 should end at join build, got %v", ps[0])
	}
	if ps[1].Stages[1].Stage != StageProbe || ps[1].Stages[2].Node != gb {
		t.Errorf("P1 should probe join then build groupby, got %v", ps[1])
	}
}

func TestDecomposeEveryOperatorAppearsOnce(t *testing.T) {
	// Each operator must appear exactly once per stage role across all
	// pipelines: breakers get a build plus either scan (unary) or probe
	// (join) appearances; pass-through ops appear once.
	tab := testTable(t, "t", 50)
	s1 := NewTableScan(tab, []int{0, 1})
	f := NewFilter(s1, expr.NewCmp(expr.Gt, expr.Col(0, "id", storage.Int64), expr.ConstInt(5)))
	mat := NewMaterialize(f)
	srt := NewSort(mat, []int{0}, []bool{false})
	ps := Decompose(srt)
	if err := ValidatePipelines(ps); err != nil {
		t.Fatal(err)
	}

	appearances := map[*Node]map[Stage]int{}
	for _, p := range ps {
		for _, s := range p.Stages {
			if appearances[s.Node] == nil {
				appearances[s.Node] = map[Stage]int{}
			}
			appearances[s.Node][s.Stage]++
		}
	}
	if appearances[s1][StageScan] != 1 {
		t.Errorf("scan appears %d times", appearances[s1][StageScan])
	}
	if appearances[f][StagePassThrough] != 1 {
		t.Errorf("filter appears %d times", appearances[f][StagePassThrough])
	}
	for _, breaker := range []*Node{mat, srt} {
		if appearances[breaker][StageBuild] != 1 || appearances[breaker][StageScan] != 1 {
			t.Errorf("breaker %v appearances: %v", breaker, appearances[breaker])
		}
	}
}

func TestPercentages(t *testing.T) {
	tab := testTable(t, "t", 1000)
	scan := NewTableScan(tab, []int{0, 1},
		expr.NewCmp(expr.Lt, expr.Col(0, "id", storage.Int64), expr.ConstInt(200)))
	f := NewFilter(scan, expr.NewCmp(expr.Lt, expr.Col(0, "id", storage.Int64), expr.ConstInt(100)))
	mat := NewMaterialize(f)

	// Fill true cards by hand (the executor normally does this).
	scan.OutCard.True = 200
	f.OutCard.True = 100
	mat.OutCard.True = 100

	ps := Decompose(mat)
	p0 := ps[0]
	if got := p0.Percentage(0, TrueCards); got != 1 {
		t.Errorf("scan stage percentage = %v, want 1", got)
	}
	// Filter is stage 1: tuples reaching it are scan's output.
	if got := p0.Percentage(1, TrueCards); got != 0.2 {
		t.Errorf("filter stage percentage = %v, want 0.2", got)
	}
	// Materialize build is stage 2: tuples reaching it are filter's output.
	if got := p0.Percentage(2, TrueCards); got != 0.1 {
		t.Errorf("materialize stage percentage = %v, want 0.1", got)
	}
}

func TestCardModeSelection(t *testing.T) {
	c := Card{True: 100, Est: 42}
	if c.Get(TrueCards) != 100 || c.Get(EstCards) != 42 {
		t.Fatalf("Card.Get mismatch: %v", c)
	}
}

func TestStageOf(t *testing.T) {
	tab := testTable(t, "t", 10)
	scan := NewTableScan(tab, []int{0})
	srt := NewSort(scan, []int{0}, []bool{false})
	ps := Decompose(srt)
	if s, ok := StageOf(srt, ps[0]); !ok || s != StageBuild {
		t.Errorf("sort in P0: stage %v ok=%v, want Build", s, ok)
	}
	if s, ok := StageOf(srt, ps[1]); !ok || s != StageScan {
		t.Errorf("sort in P1: stage %v ok=%v, want Scan", s, ok)
	}
	if _, ok := StageOf(scan, ps[1]); ok {
		t.Error("scan should not be in P1")
	}
}

func TestSchemaWidthAndProject(t *testing.T) {
	tab := testTable(t, "t", 10)
	scan := NewTableScan(tab, []int{0, 1, 2})
	if w := SchemaWidth(scan.Schema); w != 8+8+16 {
		t.Errorf("schema width = %d, want 32", w)
	}
	pr := Project(scan, []int{1})
	if len(pr.Schema) != 1 || pr.Schema[0].Name != "val" {
		t.Errorf("projection schema = %v", pr.Schema)
	}
	if !pr.MapReplaces() {
		t.Error("projection should replace schema")
	}
}

// joinAggPlan builds the running-example shape used by the Decompose tests.
func joinAggPlan(t *testing.T) *Node {
	t.Helper()
	t1 := testTable(t, "t1", 100)
	t2 := testTable(t, "t2", 1000)
	s1 := NewTableScan(t1, []int{0, 1})
	s2 := NewTableScan(t2, []int{0, 1})
	join := NewHashJoin(s1, s2, []int{0}, []int{0}, []int{1})
	gb := NewGroupBy(join, []int{0}, []Agg{{Fn: AggSum, Col: 1}}, []string{"s"})
	return NewSort(gb, []int{1}, []bool{true})
}

func TestDecomposeIntoMatchesDecompose(t *testing.T) {
	root := joinAggPlan(t)
	want := Decompose(root)
	var s PipelineScratch
	// Repeated use of one scratch must keep producing the same pipelines.
	for rep := 0; rep < 3; rep++ {
		got := DecomposeInto(root, &s)
		if err := ValidatePipelines(got); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("rep %d: %d pipelines, want %d", rep, len(got), len(want))
		}
		for i := range got {
			if got[i].Index != want[i].Index || len(got[i].Stages) != len(want[i].Stages) {
				t.Fatalf("rep %d pipeline %d: %v != %v", rep, i, got[i], want[i])
			}
			for j := range got[i].Stages {
				if got[i].Stages[j] != want[i].Stages[j] {
					t.Fatalf("rep %d pipeline %d stage %d differs", rep, i, j)
				}
			}
		}
	}
	// The scratch adapts when switching to a different (smaller) plan.
	scanOnly := NewTableScan(testTable(t, "t3", 10), []int{0})
	got := DecomposeInto(scanOnly, &s)
	if len(got) != 1 || len(got[0].Stages) != 1 {
		t.Fatalf("scan-only decomposition wrong: %v", got)
	}
}

func TestDecomposeIntoZeroAlloc(t *testing.T) {
	root := joinAggPlan(t)
	var s PipelineScratch
	DecomposeInto(root, &s) // warm the scratch capacities
	if allocs := testing.AllocsPerRun(100, func() {
		DecomposeInto(root, &s)
	}); allocs != 0 {
		t.Fatalf("DecomposeInto allocates %.1f objects per run, want 0", allocs)
	}
}
