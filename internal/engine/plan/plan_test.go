package plan

import (
	"strings"
	"testing"

	"t3/internal/engine/expr"
	"t3/internal/engine/storage"
)

func TestOpTypeAndStageNames(t *testing.T) {
	wantOps := map[OpType]string{
		TableScanOp: "TableScan", FilterOp: "Filter", MapOp: "Map",
		HashJoinOp: "HashJoin", GroupByOp: "GroupBy", SortOp: "Sort",
		WindowOp: "Window", MaterializeOp: "Materialize", LimitOp: "Limit",
	}
	for op, want := range wantOps {
		if op.String() != want {
			t.Errorf("%d: %q, want %q", op, op.String(), want)
		}
	}
	if NumOpTypes != len(wantOps) {
		t.Errorf("NumOpTypes = %d, want %d", NumOpTypes, len(wantOps))
	}
	wantStages := map[Stage]string{
		StageBuild: "Build", StageProbe: "Probe", StageScan: "Scan", StagePassThrough: "PassThrough",
	}
	for s, want := range wantStages {
		if s.String() != want {
			t.Errorf("stage %d: %q, want %q", s, s.String(), want)
		}
	}
	if NumStages != len(wantStages) {
		t.Errorf("NumStages = %d", NumStages)
	}
}

func TestAggAndWindowNames(t *testing.T) {
	for fn, want := range map[AggFn]string{
		AggCount: "count", AggSum: "sum", AggMin: "min", AggMax: "max", AggAvg: "avg",
	} {
		if fn.String() != want {
			t.Errorf("agg %d: %q", fn, fn.String())
		}
	}
	for fn, want := range map[WinFn]string{
		WinRowNumber: "row_number", WinRank: "rank", WinSum: "sum",
	} {
		if fn.String() != want {
			t.Errorf("win %d: %q", fn, fn.String())
		}
	}
}

func TestWalkCountAndStreams(t *testing.T) {
	t1 := testTable(t, "a", 100)
	t2 := testTable(t, "b", 200)
	s1 := NewTableScan(t1, []int{0, 1})
	s2 := NewTableScan(t2, []int{0, 1})
	j := NewHashJoin(s1, s2, []int{0}, []int{0}, []int{1})
	g := NewGroupBy(j, []int{0}, []Agg{{Fn: AggCount}}, []string{"c"})

	if got := g.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	var order []OpType
	g.Walk(func(n *Node) { order = append(order, n.Op) })
	want := []OpType{TableScanOp, TableScanOp, HashJoinOp, GroupByOp}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("walk order %v, want %v", order, want)
		}
	}

	s1.OutCard.True = 100
	s2.OutCard.True = 200
	j.OutCard.True = 200
	if j.InCard(TrueCards) != 100 {
		t.Errorf("join in card = %v", j.InCard(TrueCards))
	}
	if j.RightCard(TrueCards) != 200 {
		t.Errorf("join right card = %v", j.RightCard(TrueCards))
	}
	if s1.InCard(TrueCards) != 100 {
		t.Errorf("scan in card = %v (base table)", s1.InCard(TrueCards))
	}
	if g.RightCard(TrueCards) != 0 {
		t.Errorf("unary right card = %v", g.RightCard(TrueCards))
	}
	if j.InWidth() != SchemaWidth(s1.Schema) {
		t.Errorf("join in width = %d", j.InWidth())
	}
	if s1.InWidth() != SchemaWidth(s1.Schema) {
		t.Errorf("scan in width = %d", s1.InWidth())
	}
}

func TestNodeStringAndExplain(t *testing.T) {
	tab := testTable(t, "t", 10)
	scan := NewTableScan(tab, []int{0, 1},
		expr.NewCmp(expr.Lt, expr.Col(0, "id", storage.Int64), expr.ConstInt(5)))
	f := NewFilter(scan, expr.NewCmp(expr.Gt, expr.Col(1, "val", storage.Float64), expr.ConstFloat(1)))
	m := NewMap(f, []string{"x"}, []expr.ValueExpr{expr.ConstFloat(1)})
	srt := NewSort(m, []int{0}, []bool{true})
	lim := NewLimit(srt, 3)
	win := NewWindow(lim, WinRank, []int{0}, []int{1}, 0, "r")
	mat := NewMaterialize(win)

	for _, pair := range []struct {
		node *Node
		want string
	}{
		{scan, "TableScan(t)"},
		{f, "Filter["},
		{m, "Map(1 exprs)"},
		{srt, "Sort("},
		{lim, "Limit(3)"},
		{win, "Window(rank)"},
		{mat, "Materialize"},
	} {
		if !strings.Contains(pair.node.String(), pair.want) {
			t.Errorf("String() = %q, want substring %q", pair.node.String(), pair.want)
		}
	}

	ex := mat.Explain()
	for _, want := range []string{"TableScan(t)", "id < 5", "card true=", "Materialize"} {
		if !strings.Contains(ex, want) {
			t.Errorf("Explain missing %q:\n%s", want, ex)
		}
	}
	// Indentation: the scan is the deepest node.
	if !strings.Contains(ex, strings.Repeat("  ", 6)+"TableScan") {
		t.Errorf("Explain indentation wrong:\n%s", ex)
	}
}

func TestGroupBySchemaKinds(t *testing.T) {
	tab := testTable(t, "t", 10)
	scan := NewTableScan(tab, []int{0, 1, 2}) // id int, val float, name string
	gb := NewGroupBy(scan, []int{2}, []Agg{
		{Fn: AggCount},
		{Fn: AggSum, Col: 1},
		{Fn: AggMin, Col: 0},
		{Fn: AggMax, Col: 2},
		{Fn: AggAvg, Col: 0},
	}, []string{"c", "s", "mn", "mx", "av"})
	wantKinds := []storage.Type{
		storage.String,  // group col
		storage.Int64,   // count
		storage.Float64, // sum
		storage.Int64,   // min over int keeps int
		storage.String,  // max over string keeps string
		storage.Float64, // avg always float
	}
	for i, k := range wantKinds {
		if gb.Schema[i].Kind != k {
			t.Errorf("schema[%d] kind = %v, want %v", i, gb.Schema[i].Kind, k)
		}
	}
}

func TestIsBreaker(t *testing.T) {
	tab := testTable(t, "t", 10)
	scan := NewTableScan(tab, []int{0})
	cases := map[*Node]bool{
		scan: false,
		NewFilter(scan, expr.NewCmp(expr.Gt, expr.Col(0, "id", storage.Int64), expr.ConstInt(0))): false,
		NewLimit(scan, 1):                          false,
		NewSort(scan, []int{0}, nil):               true,
		NewMaterialize(scan):                       true,
		NewGroupBy(scan, nil, nil, nil):            true,
		NewWindow(scan, WinRank, nil, nil, 0, "w"): true,
	}
	for n, want := range cases {
		if n.IsBreaker() != want {
			t.Errorf("%v IsBreaker = %v, want %v", n.Op, n.IsBreaker(), want)
		}
	}
}

func TestValidatePipelinesRejectsCorrupt(t *testing.T) {
	tab := testTable(t, "t", 10)
	scan := NewTableScan(tab, []int{0})
	srt := NewSort(scan, []int{0}, nil)

	// Empty pipeline.
	if err := ValidatePipelines([]*Pipeline{{}}); err == nil {
		t.Error("empty pipeline should fail")
	}
	// Pipeline not starting with a scan.
	bad := &Pipeline{Stages: []StageRef{{Node: srt, Stage: StageBuild}}}
	if err := ValidatePipelines([]*Pipeline{bad}); err == nil {
		t.Error("non-scan start should fail")
	}
	// Scan in the middle.
	bad2 := &Pipeline{Stages: []StageRef{
		{Node: scan, Stage: StageScan},
		{Node: scan, Stage: StageScan},
	}}
	if err := ValidatePipelines([]*Pipeline{bad2}); err == nil {
		t.Error("mid-pipeline scan should fail")
	}
	// Build before the end.
	bad3 := &Pipeline{Stages: []StageRef{
		{Node: scan, Stage: StageScan},
		{Node: srt, Stage: StageBuild},
		{Node: srt, Stage: StagePassThrough},
	}}
	if err := ValidatePipelines([]*Pipeline{bad3}); err == nil {
		t.Error("early build should fail")
	}
	// Duplicate builds across pipelines.
	dup := &Pipeline{Stages: []StageRef{
		{Node: scan, Stage: StageScan},
		{Node: srt, Stage: StageBuild},
	}}
	if err := ValidatePipelines([]*Pipeline{dup, dup}); err == nil {
		t.Error("duplicate build should fail")
	}
}

func TestCardGetDefaults(t *testing.T) {
	var n Node
	n.Op = GroupByOp
	if n.InCard(TrueCards) != 0 || n.RightCard(EstCards) != 0 || n.InWidth() != 0 {
		t.Error("nil children should yield zero streams")
	}
}
