// Package storage provides the in-memory columnar storage layer of the
// engine. Tables are stored column-wise; each column holds a single typed
// vector for the whole relation. The execution engine (internal/engine/exec)
// reads these vectors in fixed-size batches.
//
// The storage layer is deliberately simple: it is the substrate on which
// queries are *actually executed* so that T3 can be trained on measured
// wall-clock times, mirroring how the paper trains on times measured in
// Umbra.
package storage

import (
	"fmt"
	"sort"
)

// Type enumerates the column types supported by the engine.
type Type uint8

const (
	// Int64 is a 64-bit signed integer column. Dates are stored as Int64
	// days-since-epoch.
	Int64 Type = iota
	// Float64 is a double-precision floating point column.
	Float64
	// String is a variable-length string column.
	String
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Width returns the width in bytes that one value of this type occupies in
// materialized state. Strings are accounted with a fixed estimate of their
// average payload plus pointer overhead; the feature extractor only needs a
// consistent notion of tuple size, not exact allocation sizes.
func (t Type) Width() int {
	switch t {
	case Int64, Float64:
		return 8
	case String:
		return 16
	default:
		return 8
	}
}

// Column is a single named, typed vector. Exactly one of the data slices is
// populated, matching Kind. A nil Nulls slice means the column contains no
// NULLs.
type Column struct {
	Name  string
	Kind  Type
	Ints  []int64
	Flts  []float64
	Strs  []string
	Nulls []bool
}

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	switch c.Kind {
	case Int64:
		return len(c.Ints)
	case Float64:
		return len(c.Flts)
	case String:
		return len(c.Strs)
	default:
		return 0
	}
}

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool {
	return c.Nulls != nil && c.Nulls[i]
}

// Validate checks internal consistency of the column.
func (c *Column) Validate() error {
	n := c.Len()
	populated := 0
	if c.Ints != nil {
		populated++
		if c.Kind != Int64 {
			return fmt.Errorf("column %q: Ints populated but kind is %s", c.Name, c.Kind)
		}
	}
	if c.Flts != nil {
		populated++
		if c.Kind != Float64 {
			return fmt.Errorf("column %q: Flts populated but kind is %s", c.Name, c.Kind)
		}
	}
	if c.Strs != nil {
		populated++
		if c.Kind != String {
			return fmt.Errorf("column %q: Strs populated but kind is %s", c.Name, c.Kind)
		}
	}
	if populated > 1 {
		return fmt.Errorf("column %q: multiple data vectors populated", c.Name)
	}
	if c.Nulls != nil && len(c.Nulls) != n {
		return fmt.Errorf("column %q: null vector length %d != %d rows", c.Name, len(c.Nulls), n)
	}
	return nil
}

// Table is a named collection of equal-length columns.
type Table struct {
	Name    string
	Columns []Column

	byName map[string]int
}

// NewTable creates a table from columns, validating that all columns have
// equal length and unique names.
func NewTable(name string, cols ...Column) (*Table, error) {
	t := &Table{Name: name, Columns: cols}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.buildIndex()
	return t, nil
}

// MustNewTable is NewTable that panics on error; intended for tests and
// generators with statically-known shapes.
func MustNewTable(name string, cols ...Column) *Table {
	t, err := NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Table) buildIndex() {
	t.byName = make(map[string]int, len(t.Columns))
	for i := range t.Columns {
		t.byName[t.Columns[i].Name] = i
	}
}

// Validate checks that the table is internally consistent.
func (t *Table) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("table has empty name")
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("table %q has no columns", t.Name)
	}
	seen := make(map[string]bool, len(t.Columns))
	n := t.Columns[0].Len()
	for i := range t.Columns {
		c := &t.Columns[i]
		if err := c.Validate(); err != nil {
			return fmt.Errorf("table %q: %w", t.Name, err)
		}
		if seen[c.Name] {
			return fmt.Errorf("table %q: duplicate column %q", t.Name, c.Name)
		}
		seen[c.Name] = true
		if c.Len() != n {
			return fmt.Errorf("table %q: column %q has %d rows, expected %d", t.Name, c.Name, c.Len(), n)
		}
	}
	return nil
}

// NumRows returns the number of rows in the table.
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return t.Columns[0].Len()
}

// Column returns the column with the given name, or nil if absent.
func (t *Table) Column(name string) *Column {
	if t.byName == nil {
		t.buildIndex()
	}
	i, ok := t.byName[name]
	if !ok {
		return nil
	}
	return &t.Columns[i]
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if t.byName == nil {
		t.buildIndex()
	}
	i, ok := t.byName[name]
	if !ok {
		return -1
	}
	return i
}

// TupleWidth returns the total width in bytes of one row across all columns.
func (t *Table) TupleWidth() int {
	w := 0
	for i := range t.Columns {
		w += t.Columns[i].Kind.Width()
	}
	return w
}

// Database is a named collection of tables: one "database instance" in the
// paper's terminology.
type Database struct {
	Name   string
	Tables []*Table

	byName map[string]int
}

// NewDatabase creates a database from tables with unique names.
func NewDatabase(name string, tables ...*Table) (*Database, error) {
	db := &Database{Name: name, Tables: tables}
	db.byName = make(map[string]int, len(tables))
	for i, tb := range tables {
		if _, dup := db.byName[tb.Name]; dup {
			return nil, fmt.Errorf("database %q: duplicate table %q", name, tb.Name)
		}
		db.byName[tb.Name] = i
	}
	return db, nil
}

// MustNewDatabase is NewDatabase that panics on error.
func MustNewDatabase(name string, tables ...*Table) *Database {
	db, err := NewDatabase(name, tables...)
	if err != nil {
		panic(err)
	}
	return db
}

// AddTable appends a table, rejecting duplicate names.
func (db *Database) AddTable(t *Table) error {
	if db.byName == nil {
		db.byName = make(map[string]int)
	}
	if _, dup := db.byName[t.Name]; dup {
		return fmt.Errorf("database %q: duplicate table %q", db.Name, t.Name)
	}
	db.byName[t.Name] = len(db.Tables)
	db.Tables = append(db.Tables, t)
	return nil
}

// Table returns the named table, or nil if absent.
func (db *Database) Table(name string) *Table {
	i, ok := db.byName[name]
	if !ok {
		return nil
	}
	return db.Tables[i]
}

// TableNames returns the sorted names of all tables.
func (db *Database) TableNames() []string {
	names := make([]string, 0, len(db.Tables))
	for _, t := range db.Tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// TotalRows returns the sum of row counts over all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, t := range db.Tables {
		n += t.NumRows()
	}
	return n
}
