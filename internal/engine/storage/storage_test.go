package storage

import (
	"testing"
)

func TestNewTableValidates(t *testing.T) {
	good := Column{Name: "a", Kind: Int64, Ints: []int64{1, 2}}
	if _, err := NewTable("t", good); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}

	cases := []struct {
		name string
		tbl  func() (*Table, error)
	}{
		{"empty name", func() (*Table, error) { return NewTable("", good) }},
		{"no columns", func() (*Table, error) { return NewTable("t") }},
		{"duplicate columns", func() (*Table, error) {
			return NewTable("t", good, Column{Name: "a", Kind: Int64, Ints: []int64{3, 4}})
		}},
		{"ragged lengths", func() (*Table, error) {
			return NewTable("t", good, Column{Name: "b", Kind: Int64, Ints: []int64{1}})
		}},
		{"kind mismatch", func() (*Table, error) {
			return NewTable("t", Column{Name: "a", Kind: Float64, Ints: []int64{1}})
		}},
		{"bad null length", func() (*Table, error) {
			return NewTable("t", Column{Name: "a", Kind: Int64, Ints: []int64{1, 2}, Nulls: []bool{false}})
		}},
	}
	for _, c := range cases {
		if _, err := c.tbl(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestColumnAccessors(t *testing.T) {
	tbl := MustNewTable("t",
		Column{Name: "a", Kind: Int64, Ints: []int64{1, 2, 3}},
		Column{Name: "b", Kind: String, Strs: []string{"x", "y", "z"}},
	)
	if tbl.NumRows() != 3 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
	if tbl.Column("b") == nil || tbl.Column("b").Strs[1] != "y" {
		t.Error("Column lookup failed")
	}
	if tbl.Column("zzz") != nil {
		t.Error("missing column should be nil")
	}
	if tbl.ColumnIndex("a") != 0 || tbl.ColumnIndex("b") != 1 || tbl.ColumnIndex("c") != -1 {
		t.Error("ColumnIndex wrong")
	}
	if w := tbl.TupleWidth(); w != 8+16 {
		t.Errorf("tuple width = %d", w)
	}
}

func TestTypeWidthAndString(t *testing.T) {
	if Int64.Width() != 8 || Float64.Width() != 8 || String.Width() != 16 {
		t.Error("unexpected widths")
	}
	if Int64.String() != "BIGINT" || Float64.String() != "DOUBLE" || String.String() != "VARCHAR" {
		t.Error("unexpected type names")
	}
}

func TestIsNull(t *testing.T) {
	c := Column{Name: "x", Kind: Int64, Ints: []int64{1, 2}, Nulls: []bool{false, true}}
	if c.IsNull(0) || !c.IsNull(1) {
		t.Error("IsNull wrong")
	}
	noNulls := Column{Name: "y", Kind: Int64, Ints: []int64{1}}
	if noNulls.IsNull(0) {
		t.Error("nil null vector means not null")
	}
}

func TestDatabase(t *testing.T) {
	t1 := MustNewTable("a", Column{Name: "x", Kind: Int64, Ints: []int64{1}})
	t2 := MustNewTable("b", Column{Name: "x", Kind: Int64, Ints: []int64{1, 2}})
	db, err := NewDatabase("db", t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if db.Table("a") != t1 || db.Table("c") != nil {
		t.Error("table lookup wrong")
	}
	if db.TotalRows() != 3 {
		t.Errorf("total rows = %d", db.TotalRows())
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
	if err := db.AddTable(MustNewTable("c", Column{Name: "x", Kind: Int64, Ints: nil})); err != nil {
		t.Errorf("add table: %v", err)
	}
	if err := db.AddTable(t1); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := NewDatabase("db", t1, t1); err == nil {
		t.Error("duplicate tables at construction should fail")
	}
}
