package exec

import (
	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// Map-expression compilation: the map stage used to call ValueExpr.Eval per
// batch, which allocates a fresh output column (and, for arithmetic, fresh
// operand columns) every time — the single largest allocation source in the
// label-collection loop. compileMapExprs lowers the three expression forms
// the planner emits (column reference, constant, arithmetic) into closures
// that write into a retained column owned by the map stage. Expression forms
// it does not recognize fall back to Eval.
//
// The compiled closures are semantically exact replicas of Eval: a column
// reference copies values and takes the kind of the *actual* input column
// (dropping any null mask, as Eval does); a constant broadcasts; arithmetic
// produces Float64 with mixed-type operands read through the same
// numeric-coercion rules as expr.numAt (strings read as 0) and division by
// zero yielding 0.

// mapFn computes one map expression over b into the retained column dst.
type mapFn func(b *expr.Batch, dst *storage.Column)

// compileMapExprs compiles every map expression of n; entries are nil where
// the expression form is not recognized (callers fall back to Eval).
func compileMapExprs(n *plan.Node) []mapFn {
	fns := make([]mapFn, len(n.MapExprs))
	for i, e := range n.MapExprs {
		fns[i] = compileMap(e)
	}
	return fns
}

func compileMap(e expr.ValueExpr) mapFn {
	switch v := e.(type) {
	case *expr.ColRef:
		idx := v.Idx
		return func(b *expr.Batch, dst *storage.Column) {
			src := &b.Cols[idx]
			dst.Kind = src.Kind
			dst.Nulls = nil
			switch src.Kind {
			case storage.Int64:
				dst.Ints = append(dst.Ints[:0], src.Ints[:b.N]...)
			case storage.Float64:
				dst.Flts = append(dst.Flts[:0], src.Flts[:b.N]...)
			case storage.String:
				dst.Strs = append(dst.Strs[:0], src.Strs[:b.N]...)
			}
		}
	case *expr.Const:
		c := *v
		return func(b *expr.Batch, dst *storage.Column) {
			dst.Kind = c.Typ
			dst.Nulls = nil
			switch c.Typ {
			case storage.Int64:
				dst.Ints = resizeInt64(dst.Ints, b.N)
				for i := range dst.Ints {
					dst.Ints[i] = c.I
				}
			case storage.Float64:
				dst.Flts = resizeFloat64(dst.Flts, b.N)
				for i := range dst.Flts {
					dst.Flts[i] = c.F
				}
			case storage.String:
				dst.Strs = resizeString(dst.Strs, b.N)
				for i := range dst.Strs {
					dst.Strs[i] = c.S
				}
			}
		}
	case *expr.Arith:
		num := compileNum(v)
		if num == nil {
			return nil
		}
		return func(b *expr.Batch, dst *storage.Column) {
			dst.Kind = storage.Float64
			dst.Nulls = nil
			dst.Flts = resizeFloat64(dst.Flts, b.N)
			for i := 0; i < b.N; i++ {
				dst.Flts[i] = num(b, i)
			}
		}
	default:
		return nil
	}
}

// numFn reads one numeric value per row, mirroring expr.numAt coercion.
type numFn func(b *expr.Batch, i int) float64

func compileNum(e expr.ValueExpr) numFn {
	switch v := e.(type) {
	case *expr.ColRef:
		idx := v.Idx
		return func(b *expr.Batch, i int) float64 {
			c := &b.Cols[idx]
			switch c.Kind {
			case storage.Int64:
				return float64(c.Ints[i])
			case storage.Float64:
				return c.Flts[i]
			default:
				return 0
			}
		}
	case *expr.Const:
		var f float64
		switch v.Typ {
		case storage.Int64:
			f = float64(v.I)
		case storage.Float64:
			f = v.F
		default:
			f = 0 // strings coerce to 0, as numAt does
		}
		return func(*expr.Batch, int) float64 { return f }
	case *expr.Arith:
		l, r := compileNum(v.Left), compileNum(v.Right)
		if l == nil || r == nil {
			return nil
		}
		switch v.Op {
		case expr.Add:
			return func(b *expr.Batch, i int) float64 { return l(b, i) + r(b, i) }
		case expr.Sub:
			return func(b *expr.Batch, i int) float64 { return l(b, i) - r(b, i) }
		case expr.Mul:
			return func(b *expr.Batch, i int) float64 { return l(b, i) * r(b, i) }
		case expr.Div:
			// Eval leaves the output at 0 when the divisor is 0; the left
			// operand has no side effects, so skipping it is unobservable.
			return func(b *expr.Batch, i int) float64 {
				if c := r(b, i); c != 0 {
					return l(b, i) / c
				}
				return 0
			}
		default:
			return nil
		}
	default:
		return nil
	}
}

func resizeInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func resizeFloat64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeString(s []string, n int) []string {
	if cap(s) < n {
		return make([]string, n)
	}
	return s[:n]
}
