package exec

import (
	"fmt"
	"time"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/obs"
)

// Morsel-driven parallel pipeline execution.
//
// An eligible pipeline's source rows are split into `parts` contiguous
// blocks. Each block runs the full stage chain — range scan, filters, maps,
// probes — on a pool worker with its own checked-out execScratch, feeding a
// partition-local terminal (a joinPartial, a partition groupState, or a
// partial Materialized). The driver then merges the partials back *in block
// order*, which reproduces the serial engine's observable behaviour exactly:
//
//   - join builds: partitions precompute row hashes and buffer key/payload
//     columns; the driver inserts the hashes into the shared open-addressing
//     table sequentially in block order, so entry ids — and therefore probe
//     chain order and probe output order — are bit-identical to a serial
//     build;
//   - group-by builds: partitions aggregate into local states recording each
//     group's hash in discovery order; the driver folds partition groups in
//     block order (lookup-or-add on the shared state), so merged group ids
//     equal serial discovery order and the finalized output row order is
//     identical. Only float SUM/AVG accumulators can differ, by reassociated
//     rounding (ULPs); counts, min/max, keys, and every cardinality counter
//     are exact;
//   - sort/window/materialize builds and the final result: partition blocks
//     materialize locally and concatenate in block order, bit-identical to
//     the serial append order.
//
// Per-node counters accumulate in partition-local maps and are summed into
// the driver's counters (integer addition — exact), so annotations and
// label fingerprints do not depend on the worker count. Pipelines containing
// a LIMIT run serially: LIMIT's early-stop is inherently order-dependent.

// DefaultMorselRows is the minimum number of source rows per partition
// block. Pipelines smaller than two morsels run serially — below that, the
// fixed cost of dispatching to the pool and merging partials outweighs the
// scan work. 4096 rows ≈ a few hundred KiB of scanned columns, comfortably
// L2-resident while amortizing dispatch.
const DefaultMorselRows = 4096

// maxPartsPerWorker bounds how many blocks each worker gets. More blocks
// than workers gives the pool slack to balance skewed filter selectivities;
// too many shrinks blocks below useful sizes.
const maxPartsPerWorker = 4

// parallelism decides whether pipeline p is eligible for morsel-parallel
// execution, returning the partition count, total source rows, and the
// resolved source state (nil for base-table scans).
func (rt *runtime) parallelism(p *plan.Pipeline) (parts, rows int, srcMat *Materialized, ok bool) {
	if rt.workers <= 1 || rt.pool == nil {
		return 0, 0, nil, false
	}
	for _, s := range p.Stages {
		if s.Node.Op == plan.LimitOp {
			// LIMIT stops the pipeline after N rows; which rows survive
			// depends on push order, so it stays serial.
			return 0, 0, nil, false
		}
	}
	src := p.Stages[0].Node
	switch src.Op {
	case plan.TableScanOp:
		if src.Table == nil {
			return 0, 0, nil, false // serial path reports the error
		}
		rows = src.Table.NumRows()
	case plan.GroupByOp, plan.SortOp, plan.WindowOp, plan.MaterializeOp:
		m, isMat := rt.states[src].(*Materialized)
		if !isMat {
			return 0, 0, nil, false // serial path reports the error
		}
		srcMat, rows = m, m.N
	default:
		return 0, 0, nil, false
	}
	parts = rows / rt.morsel
	if limit := maxPartsPerWorker * rt.workers; parts > limit {
		parts = limit
	}
	if parts < 2 {
		return 0, 0, nil, false
	}
	return parts, rows, srcMat, true
}

// partResult is one partition's terminal state plus its runtime (for the
// counter merge).
type partResult struct {
	scratch *execScratch
	rt      *runtime
	jp      *joinPartial  // join build partial
	gs      *groupState   // group-by build partial
	mat     *Materialized // sort/window/materialize buffer or result partial
	err     error
}

// runPipelineParallel executes one pipeline morsel-parallel over `parts`
// contiguous source blocks and merges the partials in block order.
func (rt *runtime) runPipelineParallel(p *plan.Pipeline, root *plan.Node, parts, rows int, srcMat *Materialized) (int, error) {
	rt.lastPar = rt.workers
	if parts < rt.lastPar {
		rt.lastPar = parts
	}
	rt.lastMorsels = parts
	obs.ExecParallelPipelines.Inc()
	obs.ExecMorsels.Add(uint64(parts))

	last := p.Stages[len(p.Stages)-1]
	isBuild := last.Stage == plan.StageBuild
	buildNode := last.Node

	// Set up the shared terminal on the driver before partitions launch, so
	// probe stages inside partitions can look up earlier build states and
	// the merge has a target.
	var (
		jst    *joinState
		gst    *groupState
		bufMat *Materialized
	)
	if isBuild {
		switch buildNode.Op {
		case plan.HashJoinOp:
			jst = rt.newJoinState(buildNode)
			rt.states[buildNode] = jst
		case plan.GroupByOp:
			gst = rt.newGroupState(buildNode, presize(buildNode.OutCard, buildNode.Left))
			rt.states[buildNode] = gst
		case plan.SortOp, plan.WindowOp, plan.MaterializeOp:
			bufMat = rt.scratch.mat(buildNode.Left.Schema)
		default:
			return 0, fmt.Errorf("node %v has no build stage", buildNode.Op)
		}
	} else {
		bufMat = rt.resultMat(root.Schema)
		rt.result = bufMat
	}

	src := p.Stages[0].Node
	results := make([]partResult, parts)
	rt.pool.Do(parts, func(k int) {
		start := time.Now()
		res := &results[k]
		scratch := scratchPool.Get().(*execScratch)
		scratch.begin()
		res.scratch = scratch
		prt := &runtime{
			batchSize: rt.batchSize,
			states:    rt.states, // read-only inside partitions
			counts:    scratch.counts,
			scratch:   scratch,
			workers:   1, // partitions never nest further splitting
			morsel:    rt.morsel,
		}
		res.rt = prt

		// Partition-local terminal sink.
		var sink pushFn
		if isBuild {
			switch buildNode.Op {
			case plan.HashJoinOp:
				jp := scratch.joinPart()
				jp.shape(jst)
				res.jp = jp
				sink = func(b *expr.Batch) { jp.buildBatch(buildNode, b) }
			case plan.GroupByOp:
				// Presize the partition state like the shared one; a
				// partition can discover at most as many groups as the whole
				// input, and undershoot just means a local rehash.
				gs := prt.newGroupState(buildNode, presize(buildNode.OutCard, buildNode.Left))
				res.gs = gs
				sink = func(b *expr.Batch) { gs.update(buildNode, b) }
			default:
				m := scratch.mat(buildNode.Left.Schema)
				res.mat = m
				sink = func(b *expr.Batch) { m.appendBatch(b) }
			}
		} else {
			m := scratch.mat(root.Schema)
			res.mat = m
			sink = func(b *expr.Batch) { m.appendBatch(b) }
		}

		// Wrap intermediate stages (source at 0, terminal build excluded).
		end := len(p.Stages)
		if isBuild {
			end--
		}
		for i := end - 1; i >= 1; i-- {
			var err error
			sink, err = prt.makeStage(p.Stages[i], sink)
			if err != nil {
				res.err = err
				obs.ExecPartitionTime.Since(start)
				return
			}
		}

		lo := k * rows / parts
		hi := (k + 1) * rows / parts
		if srcMat != nil {
			prt.scanMatRange(src, srcMat, sink, lo, hi)
		} else {
			prt.scanTableRange(src, sink, lo, hi)
		}
		obs.ExecPartitionTime.Since(start)
	})

	mergeStart := time.Now()
	defer func() {
		// Partition partials live in their scratches; return them only after
		// the merge copied everything out.
		for i := range results {
			if results[i].scratch != nil {
				scratchPool.Put(results[i].scratch)
			}
		}
	}()

	// First error in block order, so failures are deterministic.
	for i := range results {
		if err := results[i].err; err != nil {
			return 0, err
		}
	}

	// Ordered merge of terminal partials.
	for i := range results {
		res := &results[i]
		switch {
		case res.jp != nil:
			jst.merge(res.jp)
		case res.gs != nil:
			gst.merge(buildNode, res.gs)
		case res.mat != nil:
			bufMat.appendMat(res.mat)
		}
		// Fold partition counters into the driver's (integer adds — exact,
		// so annotation results are independent of worker count and order).
		for node, pc := range res.rt.counts {
			rt.count(node).add(pc)
		}
	}

	// Shared finalize, identical to the serial path.
	if isBuild {
		switch buildNode.Op {
		case plan.GroupByOp:
			rt.finalizeGroup(buildNode, gst)
		case plan.SortOp:
			rt.finalizeSort(buildNode, bufMat)
		case plan.WindowOp:
			rt.finalizeWindow(buildNode, bufMat)
		case plan.MaterializeOp:
			rt.states[buildNode] = bufMat
			rt.count(buildNode).out = int64(bufMat.N)
		}
	}
	rt.lastMerge = time.Since(mergeStart)
	obs.ExecMergeTime.Observe(rt.lastMerge)
	return rows, nil
}
