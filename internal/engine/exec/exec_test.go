package exec

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// mkTable builds a table with deterministic pseudo-random contents.
func mkTable(name string, n int, seed int64) *storage.Table {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]int64, n)
	keys := make([]int64, n)
	vals := make([]float64, n)
	strs := make([]string, n)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		keys[i] = rng.Int63n(int64(n/4 + 1))
		vals[i] = rng.Float64() * 100
		strs[i] = words[rng.Intn(len(words))]
	}
	return storage.MustNewTable(name,
		storage.Column{Name: "id", Kind: storage.Int64, Ints: ids},
		storage.Column{Name: "key", Kind: storage.Int64, Ints: keys},
		storage.Column{Name: "val", Kind: storage.Float64, Flts: vals},
		storage.Column{Name: "word", Kind: storage.String, Strs: strs},
	)
}

func TestScanFilterCounts(t *testing.T) {
	tab := mkTable("t", 10000, 1)
	scan := plan.NewTableScan(tab, []int{0, 1, 2},
		expr.NewCmp(expr.Lt, expr.Col(0, "id", storage.Int64), expr.ConstInt(5000)),
		expr.NewCmp(expr.Ge, expr.Col(0, "id", storage.Int64), expr.ConstInt(1000)),
	)
	mat := plan.NewMaterialize(scan)
	res, err := Run(mat, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 4000 {
		t.Fatalf("rows = %d, want 4000", res.Rows)
	}
	if scan.OutCard.True != 4000 {
		t.Errorf("scan out card = %v, want 4000", scan.OutCard.True)
	}
	// First predicate evaluated on all 10000, selectivity 0.5.
	if got := scan.PredSel[0].True; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("pred0 sel = %v, want 0.5", got)
	}
	// Second evaluated only on the 5000 passing tuples, 4000 pass.
	if got := scan.PredSel[1].True; math.Abs(got-0.8) > 1e-9 {
		t.Errorf("pred1 sel = %v, want 0.8", got)
	}
	if len(res.Pipelines) != 2 {
		t.Errorf("pipelines = %d, want 2 (scan->mat build, mat scan->result)", len(res.Pipelines))
	}
}

func TestHashJoinAgainstNestedLoop(t *testing.T) {
	build := mkTable("b", 500, 2)
	probe := mkTable("p", 2000, 3)
	sb := plan.NewTableScan(build, []int{1, 2})                    // key, val
	sp := plan.NewTableScan(probe, []int{1, 2})                    // key, val
	join := plan.NewHashJoin(sb, sp, []int{0}, []int{0}, []int{1}) // payload: build val
	mat := plan.NewMaterialize(join)

	res, err := Run(mat, true)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: nested loop join.
	type pair struct{ pv, bv float64 }
	var want []pair
	bk, bv := build.Column("key").Ints, build.Column("val").Flts
	pk, pv := probe.Column("key").Ints, probe.Column("val").Flts
	for i := range pk {
		for j := range bk {
			if pk[i] == bk[j] {
				want = append(want, pair{pv[i], bv[j]})
			}
		}
	}
	if res.Rows != len(want) {
		t.Fatalf("join rows = %d, want %d", res.Rows, len(want))
	}
	if join.OutCard.True != float64(len(want)) {
		t.Errorf("join out card = %v, want %d", join.OutCard.True, len(want))
	}

	// Output schema is probe cols (key, val) then build payload (val).
	got := make([]pair, res.Rows)
	for i := 0; i < res.Rows; i++ {
		got[i] = pair{res.Output.Cols[1].Flts[i], res.Output.Cols[2].Flts[i]}
	}
	less := func(a, b pair) bool {
		if a.pv != b.pv {
			return a.pv < b.pv
		}
		return a.bv < b.bv
	}
	sort.Slice(got, func(i, j int) bool { return less(got[i], got[j]) })
	sort.Slice(want, func(i, j int) bool { return less(want[i], want[j]) })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGroupByAgainstReference(t *testing.T) {
	tab := mkTable("t", 5000, 4)
	scan := plan.NewTableScan(tab, []int{1, 2}) // key, val
	gb := plan.NewGroupBy(scan, []int{0},
		[]plan.Agg{{Fn: plan.AggSum, Col: 1}, {Fn: plan.AggCount}, {Fn: plan.AggMin, Col: 1}, {Fn: plan.AggMax, Col: 1}, {Fn: plan.AggAvg, Col: 1}},
		[]string{"s", "c", "mn", "mx", "av"})
	res, err := Run(gb, true)
	if err != nil {
		t.Fatal(err)
	}

	keys, vals := tab.Column("key").Ints, tab.Column("val").Flts
	type acc struct {
		sum, mn, mx float64
		n           int64
	}
	ref := map[int64]*acc{}
	for i := range keys {
		a := ref[keys[i]]
		if a == nil {
			a = &acc{mn: math.Inf(1), mx: math.Inf(-1)}
			ref[keys[i]] = a
		}
		a.sum += vals[i]
		a.n++
		a.mn = math.Min(a.mn, vals[i])
		a.mx = math.Max(a.mx, vals[i])
	}
	if res.Rows != len(ref) {
		t.Fatalf("groups = %d, want %d", res.Rows, len(ref))
	}
	out := res.Output
	for i := 0; i < res.Rows; i++ {
		k := out.Cols[0].Ints[i]
		a := ref[k]
		if a == nil {
			t.Fatalf("unexpected group %d", k)
		}
		if math.Abs(out.Cols[1].Flts[i]-a.sum) > 1e-6 {
			t.Errorf("group %d sum = %v, want %v", k, out.Cols[1].Flts[i], a.sum)
		}
		if out.Cols[2].Ints[i] != a.n {
			t.Errorf("group %d count = %v, want %v", k, out.Cols[2].Ints[i], a.n)
		}
		if math.Abs(out.Cols[3].Flts[i]-a.mn) > 1e-9 || math.Abs(out.Cols[4].Flts[i]-a.mx) > 1e-9 {
			t.Errorf("group %d min/max mismatch", k)
		}
		if math.Abs(out.Cols[5].Flts[i]-a.sum/float64(a.n)) > 1e-9 {
			t.Errorf("group %d avg mismatch", k)
		}
	}
}

func TestGlobalAggregateOnEmptyInput(t *testing.T) {
	tab := mkTable("t", 100, 5)
	scan := plan.NewTableScan(tab, []int{0, 2},
		expr.NewCmp(expr.Lt, expr.Col(0, "id", storage.Int64), expr.ConstInt(-1)))
	gb := plan.NewGroupBy(scan, nil, []plan.Agg{{Fn: plan.AggCount}, {Fn: plan.AggSum, Col: 1}}, []string{"c", "s"})
	res, err := Run(gb, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1 {
		t.Fatalf("rows = %d, want 1 (global aggregate over empty input)", res.Rows)
	}
	if res.Output.Cols[0].Ints[0] != 0 {
		t.Errorf("count = %d, want 0", res.Output.Cols[0].Ints[0])
	}
	if res.Output.Cols[1].Flts[0] != 0 {
		t.Errorf("sum = %v, want 0", res.Output.Cols[1].Flts[0])
	}
}

func TestSortOrders(t *testing.T) {
	tab := mkTable("t", 3000, 6)
	scan := plan.NewTableScan(tab, []int{1, 2}) // key, val
	srt := plan.NewSort(scan, []int{0, 1}, []bool{false, true})
	res, err := Run(srt, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 3000 {
		t.Fatalf("rows = %d", res.Rows)
	}
	k, v := res.Output.Cols[0].Ints, res.Output.Cols[1].Flts
	for i := 1; i < res.Rows; i++ {
		if k[i-1] > k[i] {
			t.Fatalf("key order violated at %d", i)
		}
		if k[i-1] == k[i] && v[i-1] < v[i] {
			t.Fatalf("val desc order violated at %d", i)
		}
	}
}

func TestLimitStopsEarly(t *testing.T) {
	tab := mkTable("t", 100000, 7)
	scan := plan.NewTableScan(tab, []int{0})
	lim := plan.NewLimit(scan, 10)
	mat := plan.NewMaterialize(lim)
	res, err := Run(mat, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 10 {
		t.Fatalf("rows = %d, want 10", res.Rows)
	}
	if lim.OutCard.True != 10 {
		t.Errorf("limit out card = %v", lim.OutCard.True)
	}
}

func TestMapComputesExpressions(t *testing.T) {
	tab := mkTable("t", 100, 8)
	scan := plan.NewTableScan(tab, []int{2}) // val
	m := plan.NewMap(scan, []string{"twice"},
		[]expr.ValueExpr{expr.NewArith(expr.Mul, expr.Col(0, "val", storage.Float64), expr.ConstFloat(2))})
	res, err := Run(plan.NewMaterialize(m), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Rows; i++ {
		if math.Abs(res.Output.Cols[1].Flts[i]-2*res.Output.Cols[0].Flts[i]) > 1e-9 {
			t.Fatalf("row %d: map expression wrong", i)
		}
	}
}

func TestWindowRowNumberAndRank(t *testing.T) {
	tab := storage.MustNewTable("t",
		storage.Column{Name: "part", Kind: storage.Int64, Ints: []int64{1, 1, 1, 2, 2}},
		storage.Column{Name: "ord", Kind: storage.Int64, Ints: []int64{10, 10, 20, 5, 6}},
	)
	scan := plan.NewTableScan(tab, []int{0, 1})
	win := plan.NewWindow(scan, plan.WinRank, []int{0}, []int{1}, 0, "r")
	res, err := Run(win, false)
	if err != nil {
		t.Fatal(err)
	}
	// After partition/order sort: part=1 ord=10,10,20 ranks 1,1,3; part=2: 1,2.
	wantRanks := []int64{1, 1, 3, 1, 2}
	for i, w := range wantRanks {
		if got := res.Output.Cols[2].Ints[i]; got != w {
			t.Errorf("rank[%d] = %d, want %d", i, got, w)
		}
	}

	win2 := plan.NewWindow(plan.NewTableScan(tab, []int{0, 1}), plan.WinRowNumber, []int{0}, []int{1}, 0, "rn")
	res2, err := Run(win2, false)
	if err != nil {
		t.Fatal(err)
	}
	wantRN := []int64{1, 2, 3, 1, 2}
	for i, w := range wantRN {
		if got := res2.Output.Cols[2].Ints[i]; got != w {
			t.Errorf("row_number[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestPipelineTimingsCoverAllPipelines(t *testing.T) {
	b := mkTable("b", 1000, 9)
	p := mkTable("p", 5000, 10)
	sb := plan.NewTableScan(b, []int{1})
	sp := plan.NewTableScan(p, []int{1, 2})
	join := plan.NewHashJoin(sb, sp, []int{0}, []int{0}, nil)
	gb := plan.NewGroupBy(join, []int{0}, []plan.Agg{{Fn: plan.AggCount}}, []string{"c"})
	srt := plan.NewSort(gb, []int{1}, []bool{true})

	res, err := Run(srt, true)
	if err != nil {
		t.Fatal(err)
	}
	want := len(plan.Decompose(srt))
	if len(res.Pipelines) != want {
		t.Fatalf("timings for %d pipelines, want %d", len(res.Pipelines), want)
	}
	var total = res.Total
	var sum = res.Pipelines[0].Duration
	for _, pt := range res.Pipelines[1:] {
		sum += pt.Duration
	}
	if sum != total {
		t.Errorf("total %v != sum of pipeline times %v", total, sum)
	}
	// Source rows of P0 is the build table size.
	if res.Pipelines[0].SourceRows != 1000 {
		t.Errorf("P0 source rows = %d", res.Pipelines[0].SourceRows)
	}
}

func TestRepeatedRunsAreDeterministic(t *testing.T) {
	tab := mkTable("t", 2000, 11)
	scan := plan.NewTableScan(tab, []int{1, 2},
		expr.NewBetween(expr.Col(0, "key", storage.Int64), expr.ConstInt(10), expr.ConstInt(200)))
	gb := plan.NewGroupBy(scan, []int{0}, []plan.Agg{{Fn: plan.AggSum, Col: 1}}, []string{"s"})
	r1, err := Run(gb, true)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(gb, true)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows != r2.Rows {
		t.Fatalf("row counts differ: %d vs %d", r1.Rows, r2.Rows)
	}
}

func TestInListAndLikePredicates(t *testing.T) {
	tab := mkTable("t", 1000, 12)
	scan := plan.NewTableScan(tab, []int{3},
		expr.NewInListStrings(expr.Col(0, "word", storage.String), []string{"alpha", "beta"}))
	res, err := Run(plan.NewMaterialize(scan), true)
	if err != nil {
		t.Fatal(err)
	}
	words := tab.Column("word").Strs
	want := 0
	for _, w := range words {
		if w == "alpha" || w == "beta" {
			want++
		}
	}
	if res.Rows != want {
		t.Fatalf("in-list rows = %d, want %d", res.Rows, want)
	}

	scan2 := plan.NewTableScan(tab, []int{3},
		expr.NewLike(expr.Col(0, "word", storage.String), "%eta"))
	res2, err := Run(plan.NewMaterialize(scan2), false)
	if err != nil {
		t.Fatal(err)
	}
	want2 := 0
	for _, w := range words {
		if w == "beta" {
			want2++
		}
	}
	if res2.Rows != want2 {
		t.Fatalf("like rows = %d, want %d", res2.Rows, want2)
	}
}
