package exec

import (
	"fmt"
	"math"
	"sort"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// hashing: FNV-1a style mixing over column values. Collisions are handled by
// verifying key equality, so hash quality only affects speed.

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func mix(h, v uint64) uint64 {
	h ^= v
	h *= fnvPrime
	// Extra avalanche so sequential integers spread across buckets.
	h ^= h >> 29
	return h
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// hashRow hashes the values of the given columns at row i.
func hashRow(cols []storage.Column, idxs []int, i int) uint64 {
	h := fnvOffset
	for _, ci := range idxs {
		c := &cols[ci]
		switch c.Kind {
		case storage.Int64:
			h = mix(h, uint64(c.Ints[i]))
		case storage.Float64:
			h = mix(h, math.Float64bits(c.Flts[i]))
		case storage.String:
			h = hashString(h, c.Strs[i])
		}
	}
	return h
}

// rowsEqual compares row a of cols (at idxs) against row b of keyCols.
func rowsEqual(cols []storage.Column, idxs []int, a int, keyCols []storage.Column, b int) bool {
	for k, ci := range idxs {
		c := &cols[ci]
		kc := &keyCols[k]
		switch c.Kind {
		case storage.Int64:
			if c.Ints[a] != kc.Ints[b] {
				return false
			}
		case storage.Float64:
			if c.Flts[a] != kc.Flts[b] {
				return false
			}
		case storage.String:
			if c.Strs[a] != kc.Strs[b] {
				return false
			}
		}
	}
	return true
}

// joinState is the materialized build side of a hash join. Build rows are
// entries of the open-addressing table in insertion order, so the table's
// entry ids double as row indices into keyCols/payload.
type joinState struct {
	keyCols []storage.Column // key columns, one row per build tuple
	payload []storage.Column // payload columns, one row per build tuple
	ht      *hashTab
	rows    int
}

// appendCol appends value at row i of src to dst.
func appendVal(dst, src *storage.Column, i int) {
	switch src.Kind {
	case storage.Int64:
		dst.Ints = append(dst.Ints, src.Ints[i])
	case storage.Float64:
		dst.Flts = append(dst.Flts, src.Flts[i])
	case storage.String:
		dst.Strs = append(dst.Strs, src.Strs[i])
	}
}

// makeBuild returns the push function and finalizer for a build stage.
func (rt *runtime) makeBuild(n *plan.Node) (pushFn, func(), error) {
	switch n.Op {
	case plan.HashJoinOp:
		return rt.makeJoinBuild(n)
	case plan.GroupByOp:
		return rt.makeGroupByBuild(n)
	case plan.SortOp:
		return rt.makeSortBuild(n)
	case plan.WindowOp:
		return rt.makeWindowBuild(n)
	case plan.MaterializeOp:
		return rt.makeMaterializeBuild(n)
	default:
		return nil, nil, fmt.Errorf("node %v has no build stage", n.Op)
	}
}

func (rt *runtime) makeJoinBuild(n *plan.Node) (pushFn, func(), error) {
	in := n.Left
	// Presize from the build input's cardinality annotation so steady-state
	// builds (label collection re-executing annotated plans) never rehash,
	// clamped to what the input can actually produce.
	st := &joinState{ht: rt.scratch.table(presize(in.OutCard, in))}
	st.keyCols = make([]storage.Column, len(n.BuildKeys))
	for k, ci := range n.BuildKeys {
		st.keyCols[k] = storage.Column{Kind: in.Schema[ci].Kind}
	}
	st.payload = make([]storage.Column, len(n.BuildPayload))
	for k, ci := range n.BuildPayload {
		st.payload[k] = storage.Column{Name: in.Schema[ci].Name, Kind: in.Schema[ci].Kind}
	}
	rt.states[n] = st
	push := func(b *expr.Batch) {
		for i := 0; i < b.N; i++ {
			h := hashRow(b.Cols, n.BuildKeys, i)
			st.ht.insert(h) // entry id == st.rows (sequential inserts)
			for k, ci := range n.BuildKeys {
				appendVal(&st.keyCols[k], &b.Cols[ci], i)
			}
			for k, ci := range n.BuildPayload {
				appendVal(&st.payload[k], &b.Cols[ci], i)
			}
			st.rows++
		}
	}
	return push, nil, nil
}

// makeProbe wraps sink with the probe stage of a hash join.
func (rt *runtime) makeProbe(n *plan.Node, sink pushFn) (pushFn, error) {
	st, ok := rt.states[n].(*joinState)
	if !ok {
		return nil, fmt.Errorf("probe of %v before its build ran", n)
	}
	nc := rt.count(n)
	nProbe := len(n.Right.Schema)
	// One reusable output buffer for the whole probe stage: sinks consume
	// batches synchronously and never retain them, so the buffer can be
	// truncated and refilled after every flush.
	out := rt.scratch.batchMeta(n.Schema)
	on := 0
	return func(b *expr.Batch) {
		flush := func() {
			if on > 0 {
				nc.out += int64(on)
				sink(out.attach(on))
				out.truncate()
				on = 0
			}
		}
		for i := 0; i < b.N && !rt.stop; i++ {
			h := hashRow(b.Cols, n.ProbeKeys, i)
			for e := st.ht.lookup(h); e >= 0; e = st.ht.next[e] {
				if !rowsEqualProbe(b.Cols, n.ProbeKeys, i, st.keyCols, int(e)) {
					continue
				}
				for c := 0; c < nProbe; c++ {
					appendVal(&out.cols[c], &b.Cols[c], i)
				}
				for c := range st.payload {
					appendVal(&out.cols[nProbe+c], &st.payload[c], int(e))
				}
				on++
				if on >= rt.batchSize {
					flush()
				}
			}
		}
		flush()
	}, nil
}

// rowsEqualProbe compares probe row a (columns at idxs) with build key row b.
func rowsEqualProbe(cols []storage.Column, idxs []int, a int, keyCols []storage.Column, b int) bool {
	return rowsEqual(cols, idxs, a, keyCols, b)
}

// groupState is the hash-aggregation state of a group-by build. Groups are
// entries of the open-addressing table in discovery order, so the table's
// entry ids double as group ids.
type groupState struct {
	keyCols []storage.Column // one row per group
	ht      *hashTab
	groups  int
	// accumulators, one slice entry per group per aggregate
	sums   [][]float64
	counts [][]int64
	// strMin/strMax are allocated lazily: only aggregates that MIN/MAX over
	// a string column get a per-group value slice; all others stay nil.
	strMin [][]string
	strMax [][]string
}

// addGroup appends zeroed accumulator slots for a newly discovered group.
func (st *groupState) addGroup(aggs []plan.Agg) {
	st.groups++
	for a, agg := range aggs {
		st.sums[a] = append(st.sums[a], initialAcc(agg.Fn))
		st.counts[a] = append(st.counts[a], 0)
		if st.strMin[a] != nil {
			st.strMin[a] = append(st.strMin[a], "")
			st.strMax[a] = append(st.strMax[a], "")
		}
	}
}

func (rt *runtime) makeGroupByBuild(n *plan.Node) (pushFn, func(), error) {
	in := n.Left
	// Presize from the group-by's own output-cardinality annotation: the
	// number of entries is the number of distinct groups, which can never
	// exceed the input row count.
	st := &groupState{ht: rt.scratch.table(presize(n.OutCard, n.Left))}
	st.keyCols = make([]storage.Column, len(n.GroupCols))
	for k, ci := range n.GroupCols {
		st.keyCols[k] = storage.Column{Name: in.Schema[ci].Name, Kind: in.Schema[ci].Kind}
	}
	st.sums = make([][]float64, len(n.Aggs))
	st.counts = make([][]int64, len(n.Aggs))
	st.strMin = make([][]string, len(n.Aggs))
	st.strMax = make([][]string, len(n.Aggs))
	for a, agg := range n.Aggs {
		if (agg.Fn == plan.AggMin || agg.Fn == plan.AggMax) && in.Schema[agg.Col].Kind == storage.String {
			st.strMin[a] = []string{}
			st.strMax[a] = []string{}
		}
	}
	// Register the build state; finalize replaces it with the materialized
	// output, and a premature scan fails the *Materialized assertion.
	rt.states[n] = st

	push := func(b *expr.Batch) {
		for i := 0; i < b.N; i++ {
			h := hashRow(b.Cols, n.GroupCols, i)
			gi := int32(-1)
			for cand := st.ht.lookup(h); cand >= 0; cand = st.ht.next[cand] {
				if rowsEqual(b.Cols, n.GroupCols, i, st.keyCols, int(cand)) {
					gi = cand
					break
				}
			}
			if gi < 0 {
				gi = st.ht.insert(h) // entry id == st.groups (sequential)
				for k, ci := range n.GroupCols {
					appendVal(&st.keyCols[k], &b.Cols[ci], i)
				}
				st.addGroup(n.Aggs)
			}
			for a, agg := range n.Aggs {
				updateAcc(st, a, agg, b, gi, i)
			}
		}
	}

	finalize := func() {
		// A global aggregate over empty input still yields one row.
		if len(n.GroupCols) == 0 && st.groups == 0 {
			st.addGroup(n.Aggs)
		}
		out := newMaterialized(n.Schema)
		ng := len(n.GroupCols)
		for k := range st.keyCols {
			out.Cols[k] = st.keyCols[k]
		}
		for a, agg := range n.Aggs {
			col := &out.Cols[ng+a]
			for g := 0; g < st.groups; g++ {
				writeAgg(col, st, a, agg, int32(g))
			}
		}
		out.N = st.groups
		rt.states[n] = out
		rt.count(n).out = int64(st.groups)
	}
	return push, finalize, nil
}

func initialAcc(fn plan.AggFn) float64 {
	switch fn {
	case plan.AggMin:
		return math.Inf(1)
	case plan.AggMax:
		return math.Inf(-1)
	default:
		return 0
	}
}

// updateAcc folds row i of batch b into group gi's accumulator for agg a.
func updateAcc(st *groupState, a int, agg plan.Agg, b *expr.Batch, gi int32, i int) {
	if agg.Fn == plan.AggCount {
		st.counts[a][gi]++
		return
	}
	c := &b.Cols[agg.Col]
	if c.Kind == storage.String {
		s := c.Strs[i]
		first := st.counts[a][gi] == 0
		switch agg.Fn {
		case plan.AggMin:
			if first || s < st.strMin[a][gi] {
				st.strMin[a][gi] = s
			}
		case plan.AggMax:
			if first || s > st.strMax[a][gi] {
				st.strMax[a][gi] = s
			}
		}
		st.counts[a][gi]++
		return
	}
	var v float64
	if c.Kind == storage.Int64 {
		v = float64(c.Ints[i])
	} else {
		v = c.Flts[i]
	}
	switch agg.Fn {
	case plan.AggSum, plan.AggAvg:
		st.sums[a][gi] += v
	case plan.AggMin:
		if v < st.sums[a][gi] {
			st.sums[a][gi] = v
		}
	case plan.AggMax:
		if v > st.sums[a][gi] {
			st.sums[a][gi] = v
		}
	}
	st.counts[a][gi]++
}

// writeAgg appends group g's final aggregate value for agg a to col.
func writeAgg(col *storage.Column, st *groupState, a int, agg plan.Agg, g int32) {
	switch col.Kind {
	case storage.Int64:
		switch agg.Fn {
		case plan.AggCount:
			col.Ints = append(col.Ints, st.counts[a][g])
		default: // min/max over int columns
			v := st.sums[a][g]
			if math.IsInf(v, 0) {
				v = 0
			}
			col.Ints = append(col.Ints, int64(v))
		}
	case storage.Float64:
		v := st.sums[a][g]
		if agg.Fn == plan.AggAvg {
			if st.counts[a][g] > 0 {
				v /= float64(st.counts[a][g])
			} else {
				v = 0
			}
		}
		if math.IsInf(v, 0) {
			v = 0
		}
		col.Flts = append(col.Flts, v)
	case storage.String:
		switch agg.Fn {
		case plan.AggMin:
			col.Strs = append(col.Strs, st.strMin[a][g])
		case plan.AggMax:
			col.Strs = append(col.Strs, st.strMax[a][g])
		default:
			col.Strs = append(col.Strs, "")
		}
	}
}

func (rt *runtime) makeSortBuild(n *plan.Node) (pushFn, func(), error) {
	buf := newMaterialized(n.Left.Schema)
	push := func(b *expr.Batch) { buf.appendBatch(b) }
	finalize := func() {
		perm := sortPerm(buf, n.SortCols, n.SortDesc)
		out := applyPerm(buf, perm, n.Schema)
		rt.states[n] = out
		rt.count(n).out = int64(out.N)
	}
	return push, finalize, nil
}

func (rt *runtime) makeMaterializeBuild(n *plan.Node) (pushFn, func(), error) {
	buf := newMaterialized(n.Left.Schema)
	push := func(b *expr.Batch) { buf.appendBatch(b) }
	finalize := func() {
		rt.states[n] = buf
		rt.count(n).out = int64(buf.N)
	}
	return push, finalize, nil
}

func (rt *runtime) makeWindowBuild(n *plan.Node) (pushFn, func(), error) {
	buf := newMaterialized(n.Left.Schema)
	push := func(b *expr.Batch) { buf.appendBatch(b) }
	finalize := func() {
		keys := append(append([]int(nil), n.WinPartition...), n.WinOrder...)
		desc := make([]bool, len(keys))
		perm := sortPerm(buf, keys, desc)
		sorted := applyPerm(buf, perm, n.Left.Schema)

		fnCol := storage.Column{Name: n.Schema[len(n.Schema)-1].Name, Kind: n.Schema[len(n.Schema)-1].Kind}
		var rowNum int64
		var rank int64
		var runSum float64
		for i := 0; i < sorted.N; i++ {
			newPart := i == 0 || !sameRow(sorted, i, i-1, n.WinPartition)
			if newPart {
				rowNum, rank, runSum = 0, 0, 0
			}
			rowNum++
			if newPart || !sameRow(sorted, i, i-1, n.WinOrder) {
				rank = rowNum
			}
			switch n.WinFunc {
			case plan.WinRowNumber:
				fnCol.Ints = append(fnCol.Ints, rowNum)
			case plan.WinRank:
				fnCol.Ints = append(fnCol.Ints, rank)
			case plan.WinSum:
				c := &sorted.Cols[n.WinArg]
				if c.Kind == storage.Int64 {
					runSum += float64(c.Ints[i])
				} else {
					runSum += c.Flts[i]
				}
				fnCol.Flts = append(fnCol.Flts, runSum)
			}
		}
		sorted.Cols = append(sorted.Cols, fnCol)
		rt.states[n] = sorted
		rt.count(n).out = int64(sorted.N)
	}
	return push, finalize, nil
}

// sameRow reports whether rows a and b agree on the given key columns.
func sameRow(m *Materialized, a, b int, keys []int) bool {
	for _, ci := range keys {
		c := &m.Cols[ci]
		switch c.Kind {
		case storage.Int64:
			if c.Ints[a] != c.Ints[b] {
				return false
			}
		case storage.Float64:
			if c.Flts[a] != c.Flts[b] {
				return false
			}
		case storage.String:
			if c.Strs[a] != c.Strs[b] {
				return false
			}
		}
	}
	return true
}

// sortPerm computes a permutation ordering buf by the key columns.
func sortPerm(buf *Materialized, keys []int, desc []bool) []int32 {
	perm := make([]int32, buf.N)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(x, y int) bool {
		a, b := int(perm[x]), int(perm[y])
		for k, ci := range keys {
			c := &buf.Cols[ci]
			var cmp int
			switch c.Kind {
			case storage.Int64:
				switch {
				case c.Ints[a] < c.Ints[b]:
					cmp = -1
				case c.Ints[a] > c.Ints[b]:
					cmp = 1
				}
			case storage.Float64:
				switch {
				case c.Flts[a] < c.Flts[b]:
					cmp = -1
				case c.Flts[a] > c.Flts[b]:
					cmp = 1
				}
			case storage.String:
				switch {
				case c.Strs[a] < c.Strs[b]:
					cmp = -1
				case c.Strs[a] > c.Strs[b]:
					cmp = 1
				}
			}
			if cmp != 0 {
				if k < len(desc) && desc[k] {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	return perm
}

// applyPerm materializes buf reordered by perm with the given schema.
func applyPerm(buf *Materialized, perm []int32, schema []plan.ColMeta) *Materialized {
	out := newMaterialized(schema)
	for c := range buf.Cols {
		src := &buf.Cols[c]
		dst := &out.Cols[c]
		switch src.Kind {
		case storage.Int64:
			dst.Ints = make([]int64, len(perm))
			for i, p := range perm {
				dst.Ints[i] = src.Ints[p]
			}
		case storage.Float64:
			dst.Flts = make([]float64, len(perm))
			for i, p := range perm {
				dst.Flts[i] = src.Flts[p]
			}
		case storage.String:
			dst.Strs = make([]string, len(perm))
			for i, p := range perm {
				dst.Strs[i] = src.Strs[p]
			}
		}
	}
	out.N = len(perm)
	return out
}
