package exec

import (
	"fmt"
	"math"
	"sort"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// hashing: FNV-1a style mixing over column values. Collisions are handled by
// verifying key equality, so hash quality only affects speed.

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func mix(h, v uint64) uint64 {
	h ^= v
	h *= fnvPrime
	// Extra avalanche so sequential integers spread across buckets.
	h ^= h >> 29
	return h
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// hashRow hashes the values of the given columns at row i.
func hashRow(cols []storage.Column, idxs []int, i int) uint64 {
	h := fnvOffset
	for _, ci := range idxs {
		c := &cols[ci]
		switch c.Kind {
		case storage.Int64:
			h = mix(h, uint64(c.Ints[i]))
		case storage.Float64:
			h = mix(h, math.Float64bits(c.Flts[i]))
		case storage.String:
			h = hashString(h, c.Strs[i])
		}
	}
	return h
}

// rowsEqual compares row a of cols (at idxs) against row b of keyCols.
func rowsEqual(cols []storage.Column, idxs []int, a int, keyCols []storage.Column, b int) bool {
	for k, ci := range idxs {
		c := &cols[ci]
		kc := &keyCols[k]
		switch c.Kind {
		case storage.Int64:
			if c.Ints[a] != kc.Ints[b] {
				return false
			}
		case storage.Float64:
			if c.Flts[a] != kc.Flts[b] {
				return false
			}
		case storage.String:
			if c.Strs[a] != kc.Strs[b] {
				return false
			}
		}
	}
	return true
}

// keyRowsEqual compares row a of cols a against row b of cols b, column by
// column (used when merging per-partition group states, where both sides are
// already key-column layouts).
func keyRowsEqual(a []storage.Column, ai int, b []storage.Column, bi int) bool {
	for k := range a {
		ca, cb := &a[k], &b[k]
		switch ca.Kind {
		case storage.Int64:
			if ca.Ints[ai] != cb.Ints[bi] {
				return false
			}
		case storage.Float64:
			if ca.Flts[ai] != cb.Flts[bi] {
				return false
			}
		case storage.String:
			if ca.Strs[ai] != cb.Strs[bi] {
				return false
			}
		}
	}
	return true
}

// joinState is the materialized build side of a hash join. Build rows are
// entries of the open-addressing table in insertion order, so the table's
// entry ids double as row indices into keyCols/payload.
type joinState struct {
	keyCols []storage.Column // key columns, one row per build tuple
	payload []storage.Column // payload columns, one row per build tuple
	ht      *hashTab
	rows    int
}

// joinPartial is one morsel partition's contribution to a hash-join build:
// the key/payload rows plus their precomputed hashes, without a hash table.
// Partials are merged into the shared joinState in block order, reproducing
// the exact insertion order (and therefore probe output order) of a serial
// build.
type joinPartial struct {
	hashes  []uint64
	keyCols []storage.Column
	payload []storage.Column
	rows    int
}

// appendVal appends value at row i of src to dst.
func appendVal(dst, src *storage.Column, i int) {
	switch src.Kind {
	case storage.Int64:
		dst.Ints = append(dst.Ints, src.Ints[i])
	case storage.Float64:
		dst.Flts = append(dst.Flts, src.Flts[i])
	case storage.String:
		dst.Strs = append(dst.Strs, src.Strs[i])
	}
}

// makeBuild returns the push function and finalizer for a build stage.
func (rt *runtime) makeBuild(n *plan.Node) (pushFn, func(), error) {
	switch n.Op {
	case plan.HashJoinOp:
		return rt.makeJoinBuild(n)
	case plan.GroupByOp:
		return rt.makeGroupByBuild(n)
	case plan.SortOp:
		return rt.makeSortBuild(n)
	case plan.WindowOp:
		return rt.makeWindowBuild(n)
	case plan.MaterializeOp:
		return rt.makeMaterializeBuild(n)
	default:
		return nil, nil, fmt.Errorf("node %v has no build stage", n.Op)
	}
}

// newJoinState checks a join build state out of the scratch and shapes it
// for n's build side.
func (rt *runtime) newJoinState(n *plan.Node) *joinState {
	in := n.Left
	st := rt.scratch.joinState()
	// Presize from the build input's cardinality annotation so steady-state
	// builds (label collection re-executing annotated plans) never rehash,
	// clamped to what the input can actually produce.
	st.ht = rt.scratch.table(presize(in.OutCard, in))
	st.rows = 0
	st.keyCols = shapeCols(st.keyCols, len(n.BuildKeys))
	for k, ci := range n.BuildKeys {
		st.keyCols[k].Name, st.keyCols[k].Kind = "", in.Schema[ci].Kind
	}
	st.payload = shapeCols(st.payload, len(n.BuildPayload))
	for k, ci := range n.BuildPayload {
		st.payload[k].Name, st.payload[k].Kind = in.Schema[ci].Name, in.Schema[ci].Kind
	}
	return st
}

// buildBatch folds one batch into the join build state.
func (st *joinState) buildBatch(n *plan.Node, b *expr.Batch) {
	for i := 0; i < b.N; i++ {
		h := hashRow(b.Cols, n.BuildKeys, i)
		st.ht.insert(h) // entry id == st.rows (sequential inserts)
		for k, ci := range n.BuildKeys {
			appendVal(&st.keyCols[k], &b.Cols[ci], i)
		}
		for k, ci := range n.BuildPayload {
			appendVal(&st.payload[k], &b.Cols[ci], i)
		}
		st.rows++
	}
}

func (rt *runtime) makeJoinBuild(n *plan.Node) (pushFn, func(), error) {
	st := rt.newJoinState(n)
	rt.states[n] = st
	return func(b *expr.Batch) { st.buildBatch(n, b) }, nil, nil
}

// shape prepares a partition-local join partial matching st's layout.
func (p *joinPartial) shape(st *joinState) {
	p.hashes = p.hashes[:0]
	p.rows = 0
	p.keyCols = shapeCols(p.keyCols, len(st.keyCols))
	for k := range st.keyCols {
		p.keyCols[k].Kind = st.keyCols[k].Kind
	}
	p.payload = shapeCols(p.payload, len(st.payload))
	for k := range st.payload {
		p.payload[k].Kind = st.payload[k].Kind
	}
}

// buildBatch folds one batch into the partition-local join partial.
func (p *joinPartial) buildBatch(n *plan.Node, b *expr.Batch) {
	for i := 0; i < b.N; i++ {
		p.hashes = append(p.hashes, hashRow(b.Cols, n.BuildKeys, i))
		for k, ci := range n.BuildKeys {
			appendVal(&p.keyCols[k], &b.Cols[ci], i)
		}
		for k, ci := range n.BuildPayload {
			appendVal(&p.payload[k], &b.Cols[ci], i)
		}
		p.rows++
	}
}

// merge appends a partition's rows to the shared join state. Hashes were
// precomputed morsel-parallel; the table inserts are sequential and in block
// order, so entry ids match a serial build exactly.
func (st *joinState) merge(p *joinPartial) {
	for _, h := range p.hashes {
		st.ht.insert(h)
	}
	for k := range st.keyCols {
		appendCol(&st.keyCols[k], &p.keyCols[k])
	}
	for k := range st.payload {
		appendCol(&st.payload[k], &p.payload[k])
	}
	st.rows += p.rows
}

// makeProbe wraps sink with the probe stage of a hash join.
func (rt *runtime) makeProbe(n *plan.Node, sink pushFn) (pushFn, error) {
	st, ok := rt.states[n].(*joinState)
	if !ok {
		return nil, fmt.Errorf("probe of %v before its build ran", n)
	}
	nc := rt.count(n)
	nProbe := len(n.Right.Schema)
	// One reusable output buffer for the whole probe stage: sinks consume
	// batches synchronously and never retain them, so the buffer can be
	// truncated and refilled after every flush.
	out := rt.scratch.batchMeta(n.Schema)
	on := 0
	return func(b *expr.Batch) {
		flush := func() {
			if on > 0 {
				nc.out += int64(on)
				sink(out.attach(on))
				out.truncate()
				on = 0
			}
		}
		for i := 0; i < b.N && !rt.stop; i++ {
			h := hashRow(b.Cols, n.ProbeKeys, i)
			for e := st.ht.lookup(h); e >= 0; e = st.ht.next[e] {
				if !rowsEqualProbe(b.Cols, n.ProbeKeys, i, st.keyCols, int(e)) {
					continue
				}
				for c := 0; c < nProbe; c++ {
					appendVal(&out.cols[c], &b.Cols[c], i)
				}
				for c := range st.payload {
					appendVal(&out.cols[nProbe+c], &st.payload[c], int(e))
				}
				on++
				if on >= rt.batchSize {
					flush()
				}
			}
		}
		flush()
	}, nil
}

// rowsEqualProbe compares probe row a (columns at idxs) with build key row b.
func rowsEqualProbe(cols []storage.Column, idxs []int, a int, keyCols []storage.Column, b int) bool {
	return rowsEqual(cols, idxs, a, keyCols, b)
}

// groupState is the hash-aggregation state of a group-by build. Groups are
// entries of the open-addressing table in discovery order, so the table's
// entry ids double as group ids.
type groupState struct {
	keyCols []storage.Column // one row per group
	ht      *hashTab
	groups  int
	// hashes records each group's key hash in discovery order, so
	// per-partition states can be merged without rehashing keys.
	hashes []uint64
	// accumulators, one slice entry per group per aggregate
	sums   [][]float64
	counts [][]int64
	// strMin/strMax are allocated lazily: only aggregates that MIN/MAX over
	// a string column get a per-group value slice; all others stay nil.
	strMin [][]string
	strMax [][]string
}

// addGroup appends zeroed accumulator slots for a newly discovered group.
func (st *groupState) addGroup(aggs []plan.Agg) {
	st.groups++
	for a, agg := range aggs {
		st.sums[a] = append(st.sums[a], initialAcc(agg.Fn))
		st.counts[a] = append(st.counts[a], 0)
		if st.strMin[a] != nil {
			st.strMin[a] = append(st.strMin[a], "")
			st.strMax[a] = append(st.strMax[a], "")
		}
	}
}

// newGroupState checks a group state out of the scratch and shapes it for n,
// presizing the table for `expected` groups.
func (rt *runtime) newGroupState(n *plan.Node, expected int) *groupState {
	in := n.Left
	st := rt.scratch.groupState()
	st.ht = rt.scratch.table(expected)
	st.groups = 0
	st.hashes = st.hashes[:0]
	st.keyCols = shapeCols(st.keyCols, len(n.GroupCols))
	for k, ci := range n.GroupCols {
		st.keyCols[k].Name, st.keyCols[k].Kind = in.Schema[ci].Name, in.Schema[ci].Kind
	}
	st.sums = truncAccF(st.sums, len(n.Aggs))
	st.counts = truncAccI(st.counts, len(n.Aggs))
	st.strMin = truncAccS(st.strMin, len(n.Aggs))
	st.strMax = truncAccS(st.strMax, len(n.Aggs))
	for a, agg := range n.Aggs {
		if (agg.Fn == plan.AggMin || agg.Fn == plan.AggMax) && in.Schema[agg.Col].Kind == storage.String {
			if st.strMin[a] == nil {
				st.strMin[a] = []string{}
				st.strMax[a] = []string{}
			}
		} else {
			st.strMin[a] = nil
			st.strMax[a] = nil
		}
	}
	return st
}

func truncAccF(s [][]float64, n int) [][]float64 {
	if cap(s) < n {
		next := make([][]float64, n)
		copy(next, s)
		s = next
	}
	s = s[:n]
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

func truncAccI(s [][]int64, n int) [][]int64 {
	if cap(s) < n {
		next := make([][]int64, n)
		copy(next, s)
		s = next
	}
	s = s[:n]
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

func truncAccS(s [][]string, n int) [][]string {
	if cap(s) < n {
		next := make([][]string, n)
		copy(next, s)
		s = next
	}
	s = s[:n]
	for i := range s {
		if s[i] != nil {
			s[i] = s[i][:0]
		}
	}
	return s
}

// update folds one batch into the group state.
func (st *groupState) update(n *plan.Node, b *expr.Batch) {
	for i := 0; i < b.N; i++ {
		h := hashRow(b.Cols, n.GroupCols, i)
		gi := int32(-1)
		for cand := st.ht.lookup(h); cand >= 0; cand = st.ht.next[cand] {
			if rowsEqual(b.Cols, n.GroupCols, i, st.keyCols, int(cand)) {
				gi = cand
				break
			}
		}
		if gi < 0 {
			gi = st.ht.insert(h) // entry id == st.groups (sequential)
			st.hashes = append(st.hashes, h)
			for k, ci := range n.GroupCols {
				appendVal(&st.keyCols[k], &b.Cols[ci], i)
			}
			st.addGroup(n.Aggs)
		}
		for a, agg := range n.Aggs {
			updateAcc(st, a, agg, b, gi, i)
		}
	}
}

// merge folds a partition's groups into st, in the partition's discovery
// order. Because partitions are merged in block order, the merged group
// order equals the serial discovery order exactly.
func (st *groupState) merge(n *plan.Node, src *groupState) {
	for sg := 0; sg < src.groups; sg++ {
		h := src.hashes[sg]
		gi := int32(-1)
		for cand := st.ht.lookup(h); cand >= 0; cand = st.ht.next[cand] {
			if keyRowsEqual(src.keyCols, sg, st.keyCols, int(cand)) {
				gi = cand
				break
			}
		}
		if gi < 0 {
			gi = st.ht.insert(h)
			st.hashes = append(st.hashes, h)
			for k := range st.keyCols {
				appendVal(&st.keyCols[k], &src.keyCols[k], sg)
			}
			st.addGroup(n.Aggs)
		}
		for a, agg := range n.Aggs {
			mergeAcc(st, a, agg, src, gi, sg)
		}
	}
}

// mergeAcc folds partition group sg's accumulator into st's group gi.
func mergeAcc(st *groupState, a int, agg plan.Agg, src *groupState, gi int32, sg int) {
	srcCount := src.counts[a][sg]
	if srcCount == 0 {
		return
	}
	switch {
	case agg.Fn == plan.AggCount:
		// count only
	case st.strMin[a] != nil:
		if st.counts[a][gi] == 0 {
			st.strMin[a][gi] = src.strMin[a][sg]
			st.strMax[a][gi] = src.strMax[a][sg]
		} else {
			if agg.Fn == plan.AggMin && src.strMin[a][sg] < st.strMin[a][gi] {
				st.strMin[a][gi] = src.strMin[a][sg]
			}
			if agg.Fn == plan.AggMax && src.strMax[a][sg] > st.strMax[a][gi] {
				st.strMax[a][gi] = src.strMax[a][sg]
			}
		}
	default:
		v := src.sums[a][sg]
		switch agg.Fn {
		case plan.AggSum, plan.AggAvg:
			st.sums[a][gi] += v
		case plan.AggMin:
			if v < st.sums[a][gi] {
				st.sums[a][gi] = v
			}
		case plan.AggMax:
			if v > st.sums[a][gi] {
				st.sums[a][gi] = v
			}
		}
	}
	st.counts[a][gi] += srcCount
}

func (rt *runtime) makeGroupByBuild(n *plan.Node) (pushFn, func(), error) {
	// Presize from the group-by's own output-cardinality annotation: the
	// number of entries is the number of distinct groups, which can never
	// exceed the input row count.
	st := rt.newGroupState(n, presize(n.OutCard, n.Left))
	// Register the build state; finalize replaces it with the materialized
	// output, and a premature scan fails the *Materialized assertion.
	rt.states[n] = st
	push := func(b *expr.Batch) { st.update(n, b) }
	finalize := func() { rt.finalizeGroup(n, st) }
	return push, finalize, nil
}

// finalizeGroup materializes the group state as n's breaker output.
func (rt *runtime) finalizeGroup(n *plan.Node, st *groupState) {
	// A global aggregate over empty input still yields one row.
	if len(n.GroupCols) == 0 && st.groups == 0 {
		st.addGroup(n.Aggs)
	}
	out := rt.scratch.mat(n.Schema)
	ng := len(n.GroupCols)
	// Copy the key columns rather than aliasing st.keyCols: both the state
	// and the output buffer are pooled, and aliasing would let a future
	// checkout of one corrupt the other.
	for k := range st.keyCols {
		appendCol(&out.Cols[k], &st.keyCols[k])
	}
	for a, agg := range n.Aggs {
		col := &out.Cols[ng+a]
		for g := 0; g < st.groups; g++ {
			writeAgg(col, st, a, agg, int32(g))
		}
	}
	out.N = st.groups
	rt.states[n] = out
	rt.count(n).out = int64(st.groups)
}

func initialAcc(fn plan.AggFn) float64 {
	switch fn {
	case plan.AggMin:
		return math.Inf(1)
	case plan.AggMax:
		return math.Inf(-1)
	default:
		return 0
	}
}

// updateAcc folds row i of batch b into group gi's accumulator for agg a.
func updateAcc(st *groupState, a int, agg plan.Agg, b *expr.Batch, gi int32, i int) {
	if agg.Fn == plan.AggCount {
		st.counts[a][gi]++
		return
	}
	c := &b.Cols[agg.Col]
	if c.Kind == storage.String {
		s := c.Strs[i]
		first := st.counts[a][gi] == 0
		switch agg.Fn {
		case plan.AggMin:
			if first || s < st.strMin[a][gi] {
				st.strMin[a][gi] = s
			}
		case plan.AggMax:
			if first || s > st.strMax[a][gi] {
				st.strMax[a][gi] = s
			}
		}
		st.counts[a][gi]++
		return
	}
	var v float64
	if c.Kind == storage.Int64 {
		v = float64(c.Ints[i])
	} else {
		v = c.Flts[i]
	}
	switch agg.Fn {
	case plan.AggSum, plan.AggAvg:
		st.sums[a][gi] += v
	case plan.AggMin:
		if v < st.sums[a][gi] {
			st.sums[a][gi] = v
		}
	case plan.AggMax:
		if v > st.sums[a][gi] {
			st.sums[a][gi] = v
		}
	}
	st.counts[a][gi]++
}

// writeAgg appends group g's final aggregate value for agg a to col.
func writeAgg(col *storage.Column, st *groupState, a int, agg plan.Agg, g int32) {
	switch col.Kind {
	case storage.Int64:
		switch agg.Fn {
		case plan.AggCount:
			col.Ints = append(col.Ints, st.counts[a][g])
		default: // min/max over int columns
			v := st.sums[a][g]
			if math.IsInf(v, 0) {
				v = 0
			}
			col.Ints = append(col.Ints, int64(v))
		}
	case storage.Float64:
		v := st.sums[a][g]
		if agg.Fn == plan.AggAvg {
			if st.counts[a][g] > 0 {
				v /= float64(st.counts[a][g])
			} else {
				v = 0
			}
		}
		if math.IsInf(v, 0) {
			v = 0
		}
		col.Flts = append(col.Flts, v)
	case storage.String:
		switch agg.Fn {
		case plan.AggMin:
			col.Strs = append(col.Strs, st.strMin[a][g])
		case plan.AggMax:
			col.Strs = append(col.Strs, st.strMax[a][g])
		default:
			col.Strs = append(col.Strs, "")
		}
	}
}

func (rt *runtime) makeSortBuild(n *plan.Node) (pushFn, func(), error) {
	buf := rt.scratch.mat(n.Left.Schema)
	push := func(b *expr.Batch) { buf.appendBatch(b) }
	finalize := func() { rt.finalizeSort(n, buf) }
	return push, finalize, nil
}

// finalizeSort materializes the sort breaker output from its input buffer.
func (rt *runtime) finalizeSort(n *plan.Node, buf *Materialized) {
	perm := sortPerm(buf, n.SortCols, n.SortDesc, rt.scratch.permBuf(buf.N))
	out := rt.applyPerm(buf, perm, n.Schema)
	rt.states[n] = out
	rt.count(n).out = int64(out.N)
}

func (rt *runtime) makeMaterializeBuild(n *plan.Node) (pushFn, func(), error) {
	buf := rt.scratch.mat(n.Left.Schema)
	push := func(b *expr.Batch) { buf.appendBatch(b) }
	finalize := func() {
		rt.states[n] = buf
		rt.count(n).out = int64(buf.N)
	}
	return push, finalize, nil
}

func (rt *runtime) makeWindowBuild(n *plan.Node) (pushFn, func(), error) {
	buf := rt.scratch.mat(n.Left.Schema)
	push := func(b *expr.Batch) { buf.appendBatch(b) }
	finalize := func() { rt.finalizeWindow(n, buf) }
	return push, finalize, nil
}

// finalizeWindow sorts the buffered input by partition+order keys and
// computes the window function into the output's last column.
func (rt *runtime) finalizeWindow(n *plan.Node, buf *Materialized) {
	keys := append(append([]int(nil), n.WinPartition...), n.WinOrder...)
	desc := make([]bool, len(keys))
	perm := sortPerm(buf, keys, desc, rt.scratch.permBuf(buf.N))
	// applyPerm with the full output schema: buf has one column fewer than
	// n.Schema, so the trailing (window function) column comes out shaped
	// and empty, ready to be appended into.
	sorted := rt.applyPerm(buf, perm, n.Schema)

	fnCol := &sorted.Cols[len(sorted.Cols)-1]
	var rowNum int64
	var rank int64
	var runSum float64
	for i := 0; i < sorted.N; i++ {
		newPart := i == 0 || !sameRow(sorted, i, i-1, n.WinPartition)
		if newPart {
			rowNum, rank, runSum = 0, 0, 0
		}
		rowNum++
		if newPart || !sameRow(sorted, i, i-1, n.WinOrder) {
			rank = rowNum
		}
		switch n.WinFunc {
		case plan.WinRowNumber:
			fnCol.Ints = append(fnCol.Ints, rowNum)
		case plan.WinRank:
			fnCol.Ints = append(fnCol.Ints, rank)
		case plan.WinSum:
			c := &sorted.Cols[n.WinArg]
			if c.Kind == storage.Int64 {
				runSum += float64(c.Ints[i])
			} else {
				runSum += c.Flts[i]
			}
			fnCol.Flts = append(fnCol.Flts, runSum)
		}
	}
	rt.states[n] = sorted
	rt.count(n).out = int64(sorted.N)
}

// sameRow reports whether rows a and b agree on the given key columns.
func sameRow(m *Materialized, a, b int, keys []int) bool {
	for _, ci := range keys {
		c := &m.Cols[ci]
		switch c.Kind {
		case storage.Int64:
			if c.Ints[a] != c.Ints[b] {
				return false
			}
		case storage.Float64:
			if c.Flts[a] != c.Flts[b] {
				return false
			}
		case storage.String:
			if c.Strs[a] != c.Strs[b] {
				return false
			}
		}
	}
	return true
}

// sortPerm computes a permutation ordering buf by the key columns into the
// caller-supplied buffer (len buf.N).
func sortPerm(buf *Materialized, keys []int, desc []bool, perm []int32) []int32 {
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(x, y int) bool {
		a, b := int(perm[x]), int(perm[y])
		for k, ci := range keys {
			c := &buf.Cols[ci]
			var cmp int
			switch c.Kind {
			case storage.Int64:
				switch {
				case c.Ints[a] < c.Ints[b]:
					cmp = -1
				case c.Ints[a] > c.Ints[b]:
					cmp = 1
				}
			case storage.Float64:
				switch {
				case c.Flts[a] < c.Flts[b]:
					cmp = -1
				case c.Flts[a] > c.Flts[b]:
					cmp = 1
				}
			case storage.String:
				switch {
				case c.Strs[a] < c.Strs[b]:
					cmp = -1
				case c.Strs[a] > c.Strs[b]:
					cmp = 1
				}
			}
			if cmp != 0 {
				if k < len(desc) && desc[k] {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	return perm
}

// applyPerm materializes buf reordered by perm into a pooled buffer with the
// given schema. Schema columns beyond buf's width come out empty.
func (rt *runtime) applyPerm(buf *Materialized, perm []int32, schema []plan.ColMeta) *Materialized {
	out := rt.scratch.mat(schema)
	for c := range buf.Cols {
		src := &buf.Cols[c]
		dst := &out.Cols[c]
		switch src.Kind {
		case storage.Int64:
			dst.Ints = resizeInt64(dst.Ints, len(perm))
			for i, p := range perm {
				dst.Ints[i] = src.Ints[p]
			}
		case storage.Float64:
			dst.Flts = resizeFloat64(dst.Flts, len(perm))
			for i, p := range perm {
				dst.Flts[i] = src.Flts[p]
			}
		case storage.String:
			dst.Strs = resizeString(dst.Strs, len(perm))
			for i, p := range perm {
				dst.Strs[i] = src.Strs[p]
			}
		}
	}
	out.N = len(perm)
	return out
}
