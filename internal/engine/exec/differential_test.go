package exec

import (
	"fmt"
	"math"
	"testing"

	"t3/internal/engine/plan"
	"t3/internal/engine/refexec"
	"t3/internal/engine/storage"
	"t3/internal/genplan"
)

// runDifferential generates the case for (seed, scenario), executes it on
// both the optimized engine and the reference interpreter, and fails on any
// divergence. The engine's output order is deterministic (probe rows in
// stream order, matches in build insertion order, groups in discovery
// order), so the comparison is order-exact and value-bit-exact.
func runDifferential(t *testing.T, seed int64, sc genplan.Scenario, batchSize int) {
	t.Helper()
	c := genplan.Generate(seed, sc)
	if err := plan.ValidatePipelines(plan.Decompose(c.Root)); err != nil {
		t.Fatalf("seed=%d scenario=%s: invalid pipelines: %v", seed, sc, err)
	}

	ref, err := refexec.Run(c.Root)
	if err != nil {
		t.Fatalf("seed=%d scenario=%s: refexec: %v", seed, sc, err)
	}

	e := Executor{BatchSize: batchSize}
	res, err := e.Run(c.Root, false)
	if err != nil {
		t.Fatalf("seed=%d scenario=%s: engine: %v", seed, sc, err)
	}
	if err := diffResults(res.Output, ref); err != nil {
		t.Fatalf("seed=%d scenario=%s batch=%d: engine vs refexec: %v\nplan:\n%s",
			seed, sc, batchSize, err, c.Root.Explain())
	}

	// Re-run with annotation: measured cardinalities overwrite the (possibly
	// hostile) annotations, and a second run presized from real counts must
	// still match.
	if _, err := e.Run(c.Root, true); err != nil {
		t.Fatalf("seed=%d scenario=%s: annotate run: %v", seed, sc, err)
	}
	res2, err := e.Run(c.Root, false)
	if err != nil {
		t.Fatalf("seed=%d scenario=%s: post-annotate run: %v", seed, sc, err)
	}
	if err := diffResults(res2.Output, ref); err != nil {
		t.Fatalf("seed=%d scenario=%s: post-annotate engine vs refexec: %v", seed, sc, err)
	}
}

// diffResults compares the engine's materialized output against the
// reference interpreter's, bit-exactly and order-exactly.
func diffResults(eng *Materialized, ref *refexec.Result) error {
	if eng == nil {
		return fmt.Errorf("engine produced no output")
	}
	if eng.N != ref.N {
		return fmt.Errorf("row count: engine=%d ref=%d", eng.N, ref.N)
	}
	if len(eng.Cols) != len(ref.Cols) {
		return fmt.Errorf("column count: engine=%d ref=%d", len(eng.Cols), len(ref.Cols))
	}
	for ci := range eng.Cols {
		ec, rc := &eng.Cols[ci], &ref.Cols[ci]
		if ec.Kind != rc.Kind {
			return fmt.Errorf("col %d kind: engine=%s ref=%s", ci, ec.Kind, rc.Kind)
		}
		for i := 0; i < eng.N; i++ {
			switch ec.Kind {
			case storage.Int64:
				if ec.Ints[i] != rc.Ints[i] {
					return fmt.Errorf("col %d (%s) row %d: engine=%d ref=%d", ci, ec.Name, i, ec.Ints[i], rc.Ints[i])
				}
			case storage.Float64:
				if math.Float64bits(ec.Flts[i]) != math.Float64bits(rc.Flts[i]) {
					return fmt.Errorf("col %d (%s) row %d: engine=%v ref=%v (bits %x vs %x)",
						ci, ec.Name, i, ec.Flts[i], rc.Flts[i], math.Float64bits(ec.Flts[i]), math.Float64bits(rc.Flts[i]))
				}
			case storage.String:
				if ec.Strs[i] != rc.Strs[i] {
					return fmt.Errorf("col %d (%s) row %d: engine=%q ref=%q", ci, ec.Name, i, ec.Strs[i], rc.Strs[i])
				}
			}
		}
	}
	return nil
}

// TestExecDifferentialMany is the deterministic property-test mode of the
// differential harness: 100 seeds x all scenarios = 600 generated plans,
// every one compared bit-exactly between the engine and refexec (and again
// after an annotate run). Batch size varies with the seed so batch-boundary
// bugs cannot hide.
func TestExecDifferentialMany(t *testing.T) {
	plans := 0
	for seed := int64(0); seed < 100; seed++ {
		for sc := genplan.Scenario(0); sc < genplan.NumScenarios; sc++ {
			batch := 1 + int(seed*7)%193
			runDifferential(t, seed, sc, batch)
			plans++
		}
	}
	if plans < 500 {
		t.Fatalf("covered only %d plans, want >= 500", plans)
	}
	t.Logf("compared %d generated plans engine-vs-refexec with zero divergences", plans)
}

// FuzzExecDifferential drives the same differential harness from the fuzzer:
// arbitrary (seed, scenario, batch-size) triples.
func FuzzExecDifferential(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint64(seed)%uint64(genplan.NumScenarios), uint64(seed*31))
	}
	f.Fuzz(func(t *testing.T, seed int64, scenario, batch uint64) {
		sc := genplan.Scenario(scenario % uint64(genplan.NumScenarios))
		batchSize := 1 + int(batch%257)
		runDifferential(t, seed, sc, batchSize)
	})
}
