package exec

import (
	"sync"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// execScratch holds the reusable buffers of one plan execution: batch
// buffers, hash tables, selection vectors, materialized intermediates,
// join/group build states, per-node counters, the pipeline decomposition, and
// the runtime's node maps. Run checks one out of a process-wide pool and
// returns it when done, so steady-state execution (the label-collection loop
// in particular) reuses the same arenas run after run instead of reallocating
// them per query.
//
// Every buffer is handed out through a cursor-based checkout: begin() resets
// the cursors, and buffers handed out during a run stay checked out until the
// run ends (pipeline states outlive their pipeline), so reuse happens across
// runs, not within one. Morsel-parallel pipelines check out one additional
// scratch per partition block for the duration of that pipeline.
type execScratch struct {
	sels    [][]bool
	ns      int // selection vectors handed out this run
	batches []*batchBuf
	nb      int // batches handed out this run
	tabs    []*hashTab
	nt      int // tables handed out this run
	mats    []*Materialized
	nm      int // materialized buffers handed out this run
	joins   []*joinState
	nj      int // join states handed out this run
	groups  []*groupState
	ng      int // group states handed out this run
	jparts  []*joinPartial
	np      int // join partials handed out this run
	ncs     []*nodeCount
	nn      int // node counters handed out this run

	perm  []int32
	pipes plan.PipelineScratch

	// states/counts back the runtime's per-node maps; cleared per run.
	states map[*plan.Node]any
	counts map[*plan.Node]*nodeCount
}

var scratchPool = sync.Pool{New: func() any { return &execScratch{} }}

// begin resets the check-out cursors and node maps for a new run.
func (s *execScratch) begin() {
	s.ns, s.nb, s.nt, s.nm, s.nj, s.ng, s.np, s.nn = 0, 0, 0, 0, 0, 0, 0, 0
	if s.states == nil {
		s.states = make(map[*plan.Node]any)
	} else {
		clear(s.states)
	}
	if s.counts == nil {
		s.counts = make(map[*plan.Node]*nodeCount)
	} else {
		clear(s.counts)
	}
}

// selBuf hands out a selection vector of length n. Each checkout is a
// distinct buffer (a scan and the filter stages it feeds hold theirs
// simultaneously); capacity is retained across runs.
func (s *execScratch) selBuf(n int) []bool {
	if s.ns == len(s.sels) {
		s.sels = append(s.sels, nil)
	}
	b := s.sels[s.ns]
	if cap(b) < n {
		b = make([]bool, n)
		s.sels[s.ns] = b
	}
	s.ns++
	return b[:n]
}

// batch hands out a reusable batch buffer shaped like the given columns
// (data is not copied, only names and kinds).
func (s *execScratch) batch(like []storage.Column) *batchBuf {
	bb := s.nextBatch()
	bb.shape(len(like), func(i int) (string, storage.Type) { return like[i].Name, like[i].Kind })
	return bb
}

// batchMeta is batch for a plan schema.
func (s *execScratch) batchMeta(schema []plan.ColMeta) *batchBuf {
	bb := s.nextBatch()
	bb.shape(len(schema), func(i int) (string, storage.Type) { return schema[i].Name, schema[i].Kind })
	return bb
}

func (s *execScratch) nextBatch() *batchBuf {
	var bb *batchBuf
	if s.nb < len(s.batches) {
		bb = s.batches[s.nb]
	} else {
		bb = &batchBuf{}
		s.batches = append(s.batches, bb)
	}
	s.nb++
	return bb
}

// table hands out a reusable hash table presized for `expected` entries.
func (s *execScratch) table(expected int) *hashTab {
	var t *hashTab
	if s.nt < len(s.tabs) {
		t = s.tabs[s.nt]
	} else {
		t = &hashTab{}
		s.tabs = append(s.tabs, t)
	}
	s.nt++
	t.reset(expected)
	return t
}

// mat hands out a reusable materialized buffer shaped to the schema, emptied.
func (s *execScratch) mat(schema []plan.ColMeta) *Materialized {
	var m *Materialized
	if s.nm < len(s.mats) {
		m = s.mats[s.nm]
	} else {
		m = &Materialized{}
		s.mats = append(s.mats, m)
	}
	s.nm++
	matShape(m, schema)
	return m
}

// joinState hands out a recycled join build state; the caller shapes it.
func (s *execScratch) joinState() *joinState {
	var st *joinState
	if s.nj < len(s.joins) {
		st = s.joins[s.nj]
	} else {
		st = &joinState{}
		s.joins = append(s.joins, st)
	}
	s.nj++
	return st
}

// groupState hands out a recycled group-by build state; the caller shapes it.
func (s *execScratch) groupState() *groupState {
	var st *groupState
	if s.ng < len(s.groups) {
		st = s.groups[s.ng]
	} else {
		st = &groupState{}
		s.groups = append(s.groups, st)
	}
	s.ng++
	return st
}

// joinPartial hands out a recycled per-partition join build buffer.
func (s *execScratch) joinPart() *joinPartial {
	var p *joinPartial
	if s.np < len(s.jparts) {
		p = s.jparts[s.np]
	} else {
		p = &joinPartial{}
		s.jparts = append(s.jparts, p)
	}
	s.np++
	return p
}

// nodeCount hands out a zeroed per-node counter. Table scans get per-predicate
// counter slices sized to their predicate count.
func (s *execScratch) nodeCount(n *plan.Node) *nodeCount {
	var c *nodeCount
	if s.nn < len(s.ncs) {
		c = s.ncs[s.nn]
	} else {
		c = &nodeCount{}
		s.ncs = append(s.ncs, c)
	}
	s.nn++
	c.out = 0
	if n.Op == plan.TableScanOp {
		c.predEval = zeroInt64(c.predEval, len(n.Predicates))
		c.predPass = zeroInt64(c.predPass, len(n.Predicates))
	} else {
		c.predEval = c.predEval[:0]
		c.predPass = c.predPass[:0]
	}
	return c
}

// permBuf hands out the sort permutation buffer, resized to n. Only one sort
// finalize runs at a time (finalizers run on the pipeline driver), so a
// single buffer per scratch suffices.
func (s *execScratch) permBuf(n int) []int32 {
	if cap(s.perm) < n {
		s.perm = make([]int32, n)
	}
	return s.perm[:n]
}

// zeroInt64 returns s resized to n with every element zeroed.
func zeroInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// matShape configures a reusable Materialized for the schema, truncating
// every retained column to zero rows.
func matShape(m *Materialized, schema []plan.ColMeta) {
	if cap(m.Cols) < len(schema) {
		cols := make([]storage.Column, len(schema))
		copy(cols, m.Cols)
		m.Cols = cols
	}
	m.Cols = m.Cols[:len(schema)]
	for i := range m.Cols {
		c := &m.Cols[i]
		c.Name, c.Kind = schema[i].Name, schema[i].Kind
		c.Ints, c.Flts, c.Strs, c.Nulls = c.Ints[:0], c.Flts[:0], c.Strs[:0], nil
	}
	m.N = 0
}

// shapeCols resizes a retained column slice to n columns, truncating each to
// zero rows while keeping backing arrays. Callers set names and kinds.
func shapeCols(cols []storage.Column, n int) []storage.Column {
	if cap(cols) < n {
		next := make([]storage.Column, n)
		copy(next, cols)
		cols = next
	}
	cols = cols[:n]
	for i := range cols {
		c := &cols[i]
		c.Ints, c.Flts, c.Strs, c.Nulls = c.Ints[:0], c.Flts[:0], c.Strs[:0], nil
	}
	return cols
}

// appendCol bulk-appends all rows of src to dst (same kind).
func appendCol(dst, src *storage.Column) {
	switch src.Kind {
	case storage.Int64:
		dst.Ints = append(dst.Ints, src.Ints...)
	case storage.Float64:
		dst.Flts = append(dst.Flts, src.Flts...)
	case storage.String:
		dst.Strs = append(dst.Strs, src.Strs...)
	}
}

// batchBuf is a reusable batch buffer. The retained columns in cols own the
// backing arrays; callers truncate and append into cols, then call attach to
// publish the filled columns into the batch handed downstream. Downstream
// stages may shrink or replace b.Cols freely — the next refill starts from
// the retained cols again.
type batchBuf struct {
	b    expr.Batch
	cols []storage.Column
}

// shape configures the buffer's column count, names, and kinds, retaining
// backing arrays from previous uses.
func (bb *batchBuf) shape(n int, meta func(i int) (string, storage.Type)) {
	if cap(bb.cols) < n {
		cols := make([]storage.Column, n)
		copy(cols, bb.cols)
		bb.cols = cols
	}
	bb.cols = bb.cols[:n]
	for i := range bb.cols {
		c := &bb.cols[i]
		c.Name, c.Kind = meta(i)
	}
	bb.truncate()
}

// truncate resets every retained column to zero rows.
func (bb *batchBuf) truncate() {
	for i := range bb.cols {
		c := &bb.cols[i]
		c.Ints = c.Ints[:0]
		c.Flts = c.Flts[:0]
		c.Strs = c.Strs[:0]
		c.Nulls = nil
	}
	bb.b.N = 0
}

// attach publishes the retained columns (filled by the caller) as the
// batch's columns with n rows. Must be called after every refill, because
// appends into cols may have reallocated backing arrays.
func (bb *batchBuf) attach(n int) *expr.Batch {
	bb.b.Cols = append(bb.b.Cols[:0], bb.cols...)
	bb.b.N = n
	return &bb.b
}
