// Package exec executes physical plans pipeline by pipeline.
//
// The executor mirrors the push-based, pipelined execution model of
// compiling engines like Umbra: each pipeline scans its source, pushes
// batches of tuples through pass-through and probe stages, and terminates in
// a build stage or the query result. Crucially for T3, the executor measures
// the wall-clock time of *each pipeline individually*; these per-pipeline
// times are the training targets of the model (§2.4).
//
// With annotation enabled, the executor also records true cardinalities for
// every operator and per-predicate selectivities for table scans — the
// engine's "explain analyze" (§4.3).
//
// With Workers > 1, eligible pipelines run morsel-driven parallel: the
// source is split into contiguous blocks dispatched over a par.Pool, each
// block runs the full stage chain into a partition-local sink, and the
// partial states merge in block order so results (row order, group
// discovery order, cardinality counters) match the serial engine exactly.
// See parallel.go.
package exec

import (
	"fmt"
	"time"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
	"t3/internal/obs"
	"t3/internal/par"
)

// DefaultBatchSize is the number of tuples pushed per batch.
const DefaultBatchSize = 1024

// Executor runs plans. The zero value is usable and executes serially.
type Executor struct {
	// BatchSize overrides DefaultBatchSize when > 0.
	BatchSize int

	// Workers sets the intra-query parallelism degree: pipelines whose
	// source is large enough are split into morsels executed over Pool.
	// 0 or 1 means serial execution (bit-identical to the zero executor).
	Workers int

	// MorselRows overrides DefaultMorselRows when > 0.
	MorselRows int

	// Pool supplies the workers for morsel execution. When nil and
	// Workers > 1, the process-wide par.Sized(Workers) pool is used.
	// Sharing one pool between inter-query fan-out (workload.CollectLabels)
	// and intra-query morsels is safe: the pool's caller-runs overflow
	// policy degrades to inline execution when saturated.
	Pool *par.Pool

	// Reuse makes Run recycle the RunResult and the output Materialized
	// across calls: the returned result and its Output remain valid only
	// until the next Run on this executor. An executor with Reuse set must
	// not be shared between goroutines. Label-collection workers set it to
	// keep the steady-state loop allocation-free.
	Reuse bool

	res RunResult
	out Materialized
}

// PipelineTiming records the measured execution of one pipeline.
type PipelineTiming struct {
	// Index is the pipeline's position in execution order.
	Index int
	// SourceRows is the number of tuples scanned at the pipeline source.
	SourceRows int
	// Parallelism is the number of workers that can execute the pipeline's
	// partitions concurrently: min(executor workers, Morsels). 1 for
	// serially executed pipelines.
	Parallelism int
	// Morsels is the number of source partitions the pipeline was split
	// into (1 when it ran serially).
	Morsels int
	// Duration is the wall-clock execution time of the pipeline.
	Duration time.Duration
	// Merge is the driver-side ordered merge of partition partials, already
	// included in Duration (0 for serially executed pipelines).
	Merge time.Duration
}

// Materialized holds a fully materialized tuple stream.
type Materialized struct {
	Cols []storage.Column
	N    int
}

// appendBatch copies all rows of b into m.
func (m *Materialized) appendBatch(b *expr.Batch) {
	for c := range m.Cols {
		dst := &m.Cols[c]
		src := &b.Cols[c]
		switch dst.Kind {
		case storage.Int64:
			dst.Ints = append(dst.Ints, src.Ints[:b.N]...)
		case storage.Float64:
			dst.Flts = append(dst.Flts, src.Flts[:b.N]...)
		case storage.String:
			dst.Strs = append(dst.Strs, src.Strs[:b.N]...)
		}
	}
	m.N += b.N
}

// appendMat bulk-appends all rows of src to m (same schema).
func (m *Materialized) appendMat(src *Materialized) {
	for c := range m.Cols {
		appendCol(&m.Cols[c], &src.Cols[c])
	}
	m.N += src.N
}

func newMaterialized(schema []plan.ColMeta) *Materialized {
	m := &Materialized{Cols: make([]storage.Column, len(schema))}
	for i, cm := range schema {
		m.Cols[i] = storage.Column{Name: cm.Name, Kind: cm.Kind}
	}
	return m
}

// RunResult is the outcome of executing a plan.
type RunResult struct {
	// Pipelines holds per-pipeline timings in execution order.
	Pipelines []PipelineTiming
	// Total is the summed pipeline execution time.
	Total time.Duration
	// Rows is the number of result rows.
	Rows int
	// Output is the materialized query result.
	Output *Materialized
}

// Run executes the plan. If annotate is true, true cardinalities and
// per-predicate selectivities are written back into the plan nodes.
func (e *Executor) Run(root *plan.Node, annotate bool) (*RunResult, error) {
	batchSize := e.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	workers := e.Workers
	pool := e.Pool
	if workers <= 0 {
		workers = 1
	}
	if workers > 1 && pool == nil {
		pool = par.Sized(workers)
	}
	morsel := e.MorselRows
	if morsel <= 0 {
		morsel = DefaultMorselRows
	}
	scratch := scratchPool.Get().(*execScratch)
	scratch.begin()
	defer scratchPool.Put(scratch)
	pipelines := plan.DecomposeInto(root, &scratch.pipes)
	rt := &runtime{
		batchSize: batchSize,
		states:    scratch.states,
		counts:    scratch.counts,
		scratch:   scratch,
		workers:   workers,
		morsel:    morsel,
		pool:      pool,
	}
	res := &RunResult{}
	if e.Reuse {
		res = &e.res
		*res = RunResult{Pipelines: res.Pipelines[:0]}
		rt.resultBuf = &e.out
	}
	for _, p := range pipelines {
		start := time.Now()
		srcRows, err := rt.runPipeline(p, root)
		if err != nil {
			return nil, fmt.Errorf("pipeline %d: %w", p.Index, err)
		}
		d := time.Since(start)
		res.Pipelines = append(res.Pipelines, PipelineTiming{
			Index:       p.Index,
			SourceRows:  srcRows,
			Parallelism: rt.lastPar,
			Morsels:     rt.lastMorsels,
			Duration:    d,
			Merge:       rt.lastMerge,
		})
		res.Total += d
		obs.ExecPipelines.Inc()
		obs.ExecPipelineTime.Observe(d)
		obs.ExecTuples.Add(uint64(srcRows))
	}
	obs.ExecPlans.Inc()
	res.Output = rt.result
	if rt.result != nil {
		res.Rows = rt.result.N
	}
	if annotate {
		rt.writeAnnotations(root)
	}
	return res, nil
}

// Run executes the plan with a default executor.
func Run(root *plan.Node, annotate bool) (*RunResult, error) {
	var e Executor
	return e.Run(root, annotate)
}

// AnnotateTrueCards executes the plan once and fills in true cardinalities,
// discarding the result. Estimated cardinalities are left untouched.
func AnnotateTrueCards(root *plan.Node) error {
	_, err := Run(root, true)
	return err
}

// nodeCount accumulates per-node counters during execution.
type nodeCount struct {
	out      int64
	predEval []int64 // per pushed-down predicate: tuples it was evaluated on
	predPass []int64 // per pushed-down predicate: tuples that passed
}

// add folds another counter for the same node into c.
func (c *nodeCount) add(o *nodeCount) {
	c.out += o.out
	for i := range o.predEval {
		c.predEval[i] += o.predEval[i]
	}
	for i := range o.predPass {
		c.predPass[i] += o.predPass[i]
	}
}

// runtime carries execution state across the pipelines of one plan run.
type runtime struct {
	batchSize int
	states    map[*plan.Node]any
	counts    map[*plan.Node]*nodeCount
	result    *Materialized
	stop      bool // set by LIMIT once satisfied
	// scratch supplies pooled batch buffers, hash tables, selection
	// vectors, materialized buffers, and build states; it is checked out
	// for the duration of one Run (or one parallel partition).
	scratch *execScratch

	workers int       // intra-query parallelism degree (1 = serial)
	morsel  int       // rows per morsel for parallel eligibility/splitting
	pool    *par.Pool // worker pool for morsel execution

	// resultBuf, when set, is reused as the output Materialized (Reuse mode).
	resultBuf *Materialized

	// lastPar/lastMorsels/lastMerge describe the most recent runPipeline
	// call.
	lastPar, lastMorsels int
	lastMerge            time.Duration
}

func (rt *runtime) count(n *plan.Node) *nodeCount {
	c := rt.counts[n]
	if c == nil {
		if rt.scratch != nil {
			c = rt.scratch.nodeCount(n)
		} else {
			c = &nodeCount{}
			if n.Op == plan.TableScanOp {
				c.predEval = make([]int64, len(n.Predicates))
				c.predPass = make([]int64, len(n.Predicates))
			}
		}
		rt.counts[n] = c
	}
	return c
}

// resultMat returns the Materialized that receives the query result: the
// executor-owned reusable buffer in Reuse mode, a fresh allocation otherwise
// (the result escapes the run, so it cannot come from pooled scratch).
func (rt *runtime) resultMat(schema []plan.ColMeta) *Materialized {
	if rt.resultBuf != nil {
		matShape(rt.resultBuf, schema)
		return rt.resultBuf
	}
	return newMaterialized(schema)
}

// writeAnnotations copies measured counters into the plan's Card.True
// fields.
func (rt *runtime) writeAnnotations(root *plan.Node) {
	root.Walk(func(n *plan.Node) {
		c := rt.counts[n]
		if c == nil {
			return
		}
		n.OutCard.True = float64(c.out)
		if n.Op == plan.TableScanOp {
			for i := range n.Predicates {
				if c.predEval[i] > 0 {
					n.PredSel[i].True = float64(c.predPass[i]) / float64(c.predEval[i])
				} else {
					n.PredSel[i].True = 0
				}
			}
		}
	})
}

// pushFn consumes one batch.
type pushFn func(b *expr.Batch)

// runPipeline executes one pipeline and returns the number of source rows
// scanned.
func (rt *runtime) runPipeline(p *plan.Pipeline, root *plan.Node) (int, error) {
	rt.stop = false
	rt.lastPar, rt.lastMorsels, rt.lastMerge = 1, 1, 0

	if parts, rows, srcMat, ok := rt.parallelism(p); ok {
		return rt.runPipelineParallel(p, root, parts, rows, srcMat)
	}

	// Build the push chain from the last stage backwards to the sink.
	var sink pushFn
	last := p.Stages[len(p.Stages)-1]
	var finalize func()

	if last.Stage == plan.StageBuild {
		var err error
		sink, finalize, err = rt.makeBuild(last.Node)
		if err != nil {
			return 0, err
		}
	} else {
		// Final pipeline: materialize the query result.
		out := rt.resultMat(root.Schema)
		rt.result = out
		sink = func(b *expr.Batch) { out.appendBatch(b) }
	}

	// Wrap intermediate stages (excluding source at 0 and a trailing build).
	end := len(p.Stages)
	if last.Stage == plan.StageBuild {
		end--
	}
	for i := end - 1; i >= 1; i-- {
		s := p.Stages[i]
		var err error
		sink, err = rt.makeStage(s, sink)
		if err != nil {
			return 0, err
		}
	}

	srcRows, err := rt.driveSource(p.Stages[0].Node, sink)
	if err != nil {
		return 0, err
	}
	if finalize != nil {
		finalize()
	}
	return srcRows, nil
}

// driveSource scans the pipeline source and pushes batches into the chain.
func (rt *runtime) driveSource(n *plan.Node, sink pushFn) (int, error) {
	switch n.Op {
	case plan.TableScanOp:
		return rt.scanTable(n, sink)
	case plan.GroupByOp, plan.SortOp, plan.WindowOp, plan.MaterializeOp:
		st, ok := rt.states[n].(*Materialized)
		if !ok {
			return 0, fmt.Errorf("scan of %v before its build ran", n.Op)
		}
		rt.scanMatRange(n, st, sink, 0, st.N)
		return st.N, nil
	default:
		return 0, fmt.Errorf("node %v cannot be a pipeline source", n.Op)
	}
}

// scanTable reads the base table in batches, applies pushed-down predicates
// with short-circuit AND semantics, compacts, and pushes.
func (rt *runtime) scanTable(n *plan.Node, sink pushFn) (int, error) {
	t := n.Table
	if t == nil {
		return 0, fmt.Errorf("table scan %q has no bound table", n.TableName)
	}
	total := t.NumRows()
	rt.scanTableRange(n, sink, 0, total)
	return total, nil
}

// scanTableRange scans base-table rows [lo, hi), applying pushed-down
// predicates, compacting, and pushing. The caller guarantees n.Table is
// bound. Morsel partitions call it with their block bounds; the serial path
// with the full table.
func (rt *runtime) scanTableRange(n *plan.Node, sink pushFn, lo, hi int) {
	t := n.Table
	nc := rt.count(n)
	sel := rt.scratch.selBuf(rt.batchSize)
	// One pooled batch buffer for the whole scan: tuples are copied out of
	// the base table into it chunk by chunk, because downstream stages
	// (filter compaction, limit truncation) mutate batch columns in place
	// and must never write through to the base table.
	bb := rt.scratch.batchMeta(n.Schema)
	for off := lo; off < hi && !rt.stop; off += rt.batchSize {
		end := off + rt.batchSize
		if end > hi {
			end = hi
		}
		m := end - off
		for i, ci := range n.ScanCols {
			src := &t.Columns[ci]
			dst := &bb.cols[i]
			switch src.Kind {
			case storage.Int64:
				dst.Ints = append(dst.Ints[:0], src.Ints[off:end]...)
			case storage.Float64:
				dst.Flts = append(dst.Flts[:0], src.Flts[off:end]...)
			case storage.String:
				dst.Strs = append(dst.Strs[:0], src.Strs[off:end]...)
			}
			if src.Nulls != nil {
				dst.Nulls = append(dst.Nulls[:0], src.Nulls[off:end]...)
			} else {
				dst.Nulls = nil
			}
		}
		b := bb.attach(m)
		if len(n.Predicates) > 0 {
			for i := 0; i < m; i++ {
				sel[i] = true
			}
			for pi, pred := range n.Predicates {
				evaluated := pred.EvalBool(b, sel[:m])
				passed := 0
				for i := 0; i < m; i++ {
					if sel[i] {
						passed++
					}
				}
				nc.predEval[pi] += int64(evaluated)
				nc.predPass[pi] += int64(passed)
			}
			compact(b, sel[:m])
		}
		if b.N > 0 {
			nc.out += int64(b.N)
			sink(b)
		}
	}
}

// scanMatRange pushes rows [lo, hi) of a breaker's materialized state in
// batches. The breaker's out count was already recorded when its state
// materialized.
func (rt *runtime) scanMatRange(n *plan.Node, m *Materialized, sink pushFn, lo, hi int) {
	bb := rt.scratch.batch(m.Cols)
	for off := lo; off < hi && !rt.stop; off += rt.batchSize {
		end := off + rt.batchSize
		if end > hi {
			end = hi
		}
		for i := range m.Cols {
			src := &m.Cols[i]
			dst := &bb.cols[i]
			// Copy for the same reason as scanTableRange: downstream stages
			// mutate batches in place.
			switch src.Kind {
			case storage.Int64:
				dst.Ints = append(dst.Ints[:0], src.Ints[off:end]...)
			case storage.Float64:
				dst.Flts = append(dst.Flts[:0], src.Flts[off:end]...)
			case storage.String:
				dst.Strs = append(dst.Strs[:0], src.Strs[off:end]...)
			}
		}
		sink(bb.attach(end - off))
	}
}

// compact removes unselected rows from b in place.
func compact(b *expr.Batch, sel []bool) {
	w := 0
	for i := 0; i < b.N; i++ {
		if !sel[i] {
			continue
		}
		if w != i {
			for c := range b.Cols {
				col := &b.Cols[c]
				switch col.Kind {
				case storage.Int64:
					col.Ints[w] = col.Ints[i]
				case storage.Float64:
					col.Flts[w] = col.Flts[i]
				case storage.String:
					col.Strs[w] = col.Strs[i]
				}
				if col.Nulls != nil {
					col.Nulls[w] = col.Nulls[i]
				}
			}
		}
		w++
	}
	for c := range b.Cols {
		col := &b.Cols[c]
		switch col.Kind {
		case storage.Int64:
			col.Ints = col.Ints[:w]
		case storage.Float64:
			col.Flts = col.Flts[:w]
		case storage.String:
			col.Strs = col.Strs[:w]
		}
		if col.Nulls != nil {
			col.Nulls = col.Nulls[:w]
		}
	}
	b.N = w
}

// makeStage wraps sink with the given pass-through or probe stage.
func (rt *runtime) makeStage(s plan.StageRef, sink pushFn) (pushFn, error) {
	n := s.Node
	switch {
	case n.Op == plan.FilterOp:
		nc := rt.count(n)
		sel := rt.scratch.selBuf(rt.batchSize)
		return func(b *expr.Batch) {
			if cap(sel) < b.N {
				sel = make([]bool, b.N)
			}
			sel = sel[:b.N]
			for i := range sel {
				sel[i] = true
			}
			n.FilterPred.EvalBool(b, sel)
			compact(b, sel)
			if b.N > 0 {
				nc.out += int64(b.N)
				sink(b)
			}
		}, nil

	case n.Op == plan.MapOp:
		nc := rt.count(n)
		comps := compileMapExprs(n)
		// cols retains one compute column per map expression; outCols
		// retains the published column-header slice. Both are reused across
		// batches: downstream sinks consume each batch synchronously and
		// never hold onto its column headers.
		cols := make([]storage.Column, len(n.MapExprs))
		outCols := make([]storage.Column, 0, len(n.Schema))
		return func(b *expr.Batch) {
			outCols = outCols[:0]
			if !n.MapReplaces() {
				outCols = append(outCols, b.Cols...)
			}
			for i := range n.MapExprs {
				dst := &cols[i]
				if f := comps[i]; f != nil {
					f(b, dst)
				} else {
					*dst = n.MapExprs[i].Eval(b)
				}
				dst.Name = n.MapNames[i]
				outCols = append(outCols, *dst)
			}
			b.Cols = outCols
			nc.out += int64(b.N)
			sink(b)
		}, nil

	case n.Op == plan.LimitOp:
		nc := rt.count(n)
		remaining := n.LimitN
		return func(b *expr.Batch) {
			if remaining <= 0 {
				rt.stop = true
				return
			}
			if b.N > remaining {
				truncate(b, remaining)
			}
			remaining -= b.N
			if remaining <= 0 {
				rt.stop = true
			}
			nc.out += int64(b.N)
			sink(b)
		}, nil

	case n.Op == plan.HashJoinOp && s.Stage == plan.StageProbe:
		return rt.makeProbe(n, sink)

	default:
		return nil, fmt.Errorf("unsupported stage %v of %v", s.Stage, n.Op)
	}
}

// truncate shortens b to n rows.
func truncate(b *expr.Batch, n int) {
	for c := range b.Cols {
		col := &b.Cols[c]
		switch col.Kind {
		case storage.Int64:
			col.Ints = col.Ints[:n]
		case storage.Float64:
			col.Flts = col.Flts[:n]
		case storage.String:
			col.Strs = col.Strs[:n]
		}
		if col.Nulls != nil {
			col.Nulls = col.Nulls[:n]
		}
	}
	b.N = n
}
