// Package exec executes physical plans pipeline by pipeline.
//
// The executor mirrors the push-based, pipelined execution model of
// compiling engines like Umbra: each pipeline scans its source, pushes
// batches of tuples through pass-through and probe stages, and terminates in
// a build stage or the query result. Crucially for T3, the executor measures
// the wall-clock time of *each pipeline individually*; these per-pipeline
// times are the training targets of the model (§2.4).
//
// With annotation enabled, the executor also records true cardinalities for
// every operator and per-predicate selectivities for table scans — the
// engine's "explain analyze" (§4.3).
package exec

import (
	"fmt"
	"time"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
	"t3/internal/obs"
)

// DefaultBatchSize is the number of tuples pushed per batch.
const DefaultBatchSize = 1024

// Executor runs plans. The zero value is usable.
type Executor struct {
	// BatchSize overrides DefaultBatchSize when > 0.
	BatchSize int
}

// PipelineTiming records the measured execution of one pipeline.
type PipelineTiming struct {
	// Index is the pipeline's position in execution order.
	Index int
	// SourceRows is the number of tuples scanned at the pipeline source.
	SourceRows int
	// Duration is the wall-clock execution time of the pipeline.
	Duration time.Duration
}

// Materialized holds a fully materialized tuple stream.
type Materialized struct {
	Cols []storage.Column
	N    int
}

// appendBatch copies all rows of b into m.
func (m *Materialized) appendBatch(b *expr.Batch) {
	for c := range m.Cols {
		dst := &m.Cols[c]
		src := &b.Cols[c]
		switch dst.Kind {
		case storage.Int64:
			dst.Ints = append(dst.Ints, src.Ints[:b.N]...)
		case storage.Float64:
			dst.Flts = append(dst.Flts, src.Flts[:b.N]...)
		case storage.String:
			dst.Strs = append(dst.Strs, src.Strs[:b.N]...)
		}
	}
	m.N += b.N
}

func newMaterialized(schema []plan.ColMeta) *Materialized {
	m := &Materialized{Cols: make([]storage.Column, len(schema))}
	for i, cm := range schema {
		m.Cols[i] = storage.Column{Name: cm.Name, Kind: cm.Kind}
	}
	return m
}

// RunResult is the outcome of executing a plan.
type RunResult struct {
	// Pipelines holds per-pipeline timings in execution order.
	Pipelines []PipelineTiming
	// Total is the summed pipeline execution time.
	Total time.Duration
	// Rows is the number of result rows.
	Rows int
	// Output is the materialized query result.
	Output *Materialized
}

// Run executes the plan. If annotate is true, true cardinalities and
// per-predicate selectivities are written back into the plan nodes.
func (e *Executor) Run(root *plan.Node, annotate bool) (*RunResult, error) {
	pipelines := plan.Decompose(root)
	batchSize := e.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	scratch := scratchPool.Get().(*execScratch)
	scratch.begin()
	defer scratchPool.Put(scratch)
	rt := &runtime{
		batchSize: batchSize,
		states:    make(map[*plan.Node]any),
		counts:    make(map[*plan.Node]*nodeCount),
		scratch:   scratch,
	}
	res := &RunResult{}
	for _, p := range pipelines {
		start := time.Now()
		srcRows, err := rt.runPipeline(p, root)
		if err != nil {
			return nil, fmt.Errorf("pipeline %d: %w", p.Index, err)
		}
		d := time.Since(start)
		res.Pipelines = append(res.Pipelines, PipelineTiming{Index: p.Index, SourceRows: srcRows, Duration: d})
		res.Total += d
		obs.ExecPipelines.Inc()
		obs.ExecPipelineTime.Observe(d)
		obs.ExecTuples.Add(uint64(srcRows))
	}
	obs.ExecPlans.Inc()
	res.Output = rt.result
	if rt.result != nil {
		res.Rows = rt.result.N
	}
	if annotate {
		rt.writeAnnotations(root)
	}
	return res, nil
}

// Run executes the plan with a default executor.
func Run(root *plan.Node, annotate bool) (*RunResult, error) {
	var e Executor
	return e.Run(root, annotate)
}

// AnnotateTrueCards executes the plan once and fills in true cardinalities,
// discarding the result. Estimated cardinalities are left untouched.
func AnnotateTrueCards(root *plan.Node) error {
	_, err := Run(root, true)
	return err
}

// nodeCount accumulates per-node counters during execution.
type nodeCount struct {
	out      int64
	predEval []int64 // per pushed-down predicate: tuples it was evaluated on
	predPass []int64 // per pushed-down predicate: tuples that passed
}

// runtime carries execution state across the pipelines of one plan run.
type runtime struct {
	batchSize int
	states    map[*plan.Node]any
	counts    map[*plan.Node]*nodeCount
	result    *Materialized
	stop      bool // set by LIMIT once satisfied
	// scratch supplies pooled batch buffers, hash tables, and selection
	// vectors; it is checked out for the duration of one Run.
	scratch *execScratch
}

func (rt *runtime) count(n *plan.Node) *nodeCount {
	c := rt.counts[n]
	if c == nil {
		c = &nodeCount{}
		if n.Op == plan.TableScanOp {
			c.predEval = make([]int64, len(n.Predicates))
			c.predPass = make([]int64, len(n.Predicates))
		}
		rt.counts[n] = c
	}
	return c
}

// writeAnnotations copies measured counters into the plan's Card.True
// fields.
func (rt *runtime) writeAnnotations(root *plan.Node) {
	root.Walk(func(n *plan.Node) {
		c := rt.counts[n]
		if c == nil {
			return
		}
		n.OutCard.True = float64(c.out)
		if n.Op == plan.TableScanOp {
			for i := range n.Predicates {
				if c.predEval[i] > 0 {
					n.PredSel[i].True = float64(c.predPass[i]) / float64(c.predEval[i])
				} else {
					n.PredSel[i].True = 0
				}
			}
		}
	})
}

// pushFn consumes one batch.
type pushFn func(b *expr.Batch)

// runPipeline executes one pipeline and returns the number of source rows
// scanned.
func (rt *runtime) runPipeline(p *plan.Pipeline, root *plan.Node) (int, error) {
	rt.stop = false

	// Build the push chain from the last stage backwards to the sink.
	var sink pushFn
	last := p.Stages[len(p.Stages)-1]
	var finalize func()

	if last.Stage == plan.StageBuild {
		var err error
		sink, finalize, err = rt.makeBuild(last.Node)
		if err != nil {
			return 0, err
		}
	} else {
		// Final pipeline: materialize the query result.
		out := newMaterialized(root.Schema)
		rt.result = out
		sink = func(b *expr.Batch) { out.appendBatch(b) }
	}

	// Wrap intermediate stages (excluding source at 0 and a trailing build).
	end := len(p.Stages)
	if last.Stage == plan.StageBuild {
		end--
	}
	for i := end - 1; i >= 1; i-- {
		s := p.Stages[i]
		var err error
		sink, err = rt.makeStage(s, sink)
		if err != nil {
			return 0, err
		}
	}

	srcRows, err := rt.driveSource(p.Stages[0].Node, sink)
	if err != nil {
		return 0, err
	}
	if finalize != nil {
		finalize()
	}
	return srcRows, nil
}

// driveSource scans the pipeline source and pushes batches into the chain.
func (rt *runtime) driveSource(n *plan.Node, sink pushFn) (int, error) {
	switch n.Op {
	case plan.TableScanOp:
		return rt.scanTable(n, sink)
	case plan.GroupByOp, plan.SortOp, plan.WindowOp, plan.MaterializeOp:
		st, ok := rt.states[n].(*Materialized)
		if !ok {
			return 0, fmt.Errorf("scan of %v before its build ran", n.Op)
		}
		rt.scanMaterialized(n, st, sink)
		return st.N, nil
	default:
		return 0, fmt.Errorf("node %v cannot be a pipeline source", n.Op)
	}
}

// scanTable reads the base table in batches, applies pushed-down predicates
// with short-circuit AND semantics, compacts, and pushes.
func (rt *runtime) scanTable(n *plan.Node, sink pushFn) (int, error) {
	t := n.Table
	if t == nil {
		return 0, fmt.Errorf("table scan %q has no bound table", n.TableName)
	}
	total := t.NumRows()
	nc := rt.count(n)
	sel := rt.scratch.selBuf(rt.batchSize)
	// One pooled batch buffer for the whole scan: tuples are copied out of
	// the base table into it chunk by chunk, because downstream stages
	// (filter compaction, limit truncation) mutate batch columns in place
	// and must never write through to the base table.
	bb := rt.scratch.batchMeta(n.Schema)
	for off := 0; off < total && !rt.stop; off += rt.batchSize {
		hi := off + rt.batchSize
		if hi > total {
			hi = total
		}
		m := hi - off
		for i, ci := range n.ScanCols {
			src := &t.Columns[ci]
			dst := &bb.cols[i]
			switch src.Kind {
			case storage.Int64:
				dst.Ints = append(dst.Ints[:0], src.Ints[off:hi]...)
			case storage.Float64:
				dst.Flts = append(dst.Flts[:0], src.Flts[off:hi]...)
			case storage.String:
				dst.Strs = append(dst.Strs[:0], src.Strs[off:hi]...)
			}
			if src.Nulls != nil {
				dst.Nulls = append(dst.Nulls[:0], src.Nulls[off:hi]...)
			} else {
				dst.Nulls = nil
			}
		}
		b := bb.attach(m)
		if len(n.Predicates) > 0 {
			for i := 0; i < m; i++ {
				sel[i] = true
			}
			for pi, pred := range n.Predicates {
				evaluated := pred.EvalBool(b, sel[:m])
				passed := 0
				for i := 0; i < m; i++ {
					if sel[i] {
						passed++
					}
				}
				nc.predEval[pi] += int64(evaluated)
				nc.predPass[pi] += int64(passed)
			}
			compact(b, sel[:m])
		}
		if b.N > 0 {
			nc.out += int64(b.N)
			sink(b)
		}
	}
	return total, nil
}

// scanMaterialized pushes a breaker's materialized state in batches. The
// breaker's out count was already recorded when its state materialized.
func (rt *runtime) scanMaterialized(n *plan.Node, m *Materialized, sink pushFn) {
	bb := rt.scratch.batch(m.Cols)
	for off := 0; off < m.N && !rt.stop; off += rt.batchSize {
		hi := off + rt.batchSize
		if hi > m.N {
			hi = m.N
		}
		for i := range m.Cols {
			src := &m.Cols[i]
			dst := &bb.cols[i]
			// Copy for the same reason as scanTable: downstream stages
			// mutate batches in place.
			switch src.Kind {
			case storage.Int64:
				dst.Ints = append(dst.Ints[:0], src.Ints[off:hi]...)
			case storage.Float64:
				dst.Flts = append(dst.Flts[:0], src.Flts[off:hi]...)
			case storage.String:
				dst.Strs = append(dst.Strs[:0], src.Strs[off:hi]...)
			}
		}
		sink(bb.attach(hi - off))
	}
}

// compact removes unselected rows from b in place.
func compact(b *expr.Batch, sel []bool) {
	w := 0
	for i := 0; i < b.N; i++ {
		if !sel[i] {
			continue
		}
		if w != i {
			for c := range b.Cols {
				col := &b.Cols[c]
				switch col.Kind {
				case storage.Int64:
					col.Ints[w] = col.Ints[i]
				case storage.Float64:
					col.Flts[w] = col.Flts[i]
				case storage.String:
					col.Strs[w] = col.Strs[i]
				}
				if col.Nulls != nil {
					col.Nulls[w] = col.Nulls[i]
				}
			}
		}
		w++
	}
	for c := range b.Cols {
		col := &b.Cols[c]
		switch col.Kind {
		case storage.Int64:
			col.Ints = col.Ints[:w]
		case storage.Float64:
			col.Flts = col.Flts[:w]
		case storage.String:
			col.Strs = col.Strs[:w]
		}
		if col.Nulls != nil {
			col.Nulls = col.Nulls[:w]
		}
	}
	b.N = w
}

// makeStage wraps sink with the given pass-through or probe stage.
func (rt *runtime) makeStage(s plan.StageRef, sink pushFn) (pushFn, error) {
	n := s.Node
	switch {
	case n.Op == plan.FilterOp:
		nc := rt.count(n)
		var sel []bool
		return func(b *expr.Batch) {
			if cap(sel) < b.N {
				sel = make([]bool, b.N)
			}
			sel = sel[:b.N]
			for i := range sel {
				sel[i] = true
			}
			n.FilterPred.EvalBool(b, sel)
			compact(b, sel)
			if b.N > 0 {
				nc.out += int64(b.N)
				sink(b)
			}
		}, nil

	case n.Op == plan.MapOp:
		nc := rt.count(n)
		return func(b *expr.Batch) {
			outCols := make([]storage.Column, 0, len(n.Schema))
			if !n.MapReplaces() {
				outCols = append(outCols, b.Cols...)
			}
			for i, e := range n.MapExprs {
				col := e.Eval(b)
				col.Name = n.MapNames[i]
				outCols = append(outCols, col)
			}
			b.Cols = outCols
			nc.out += int64(b.N)
			sink(b)
		}, nil

	case n.Op == plan.LimitOp:
		nc := rt.count(n)
		remaining := n.LimitN
		return func(b *expr.Batch) {
			if remaining <= 0 {
				rt.stop = true
				return
			}
			if b.N > remaining {
				truncate(b, remaining)
			}
			remaining -= b.N
			if remaining <= 0 {
				rt.stop = true
			}
			nc.out += int64(b.N)
			sink(b)
		}, nil

	case n.Op == plan.HashJoinOp && s.Stage == plan.StageProbe:
		return rt.makeProbe(n, sink)

	default:
		return nil, fmt.Errorf("unsupported stage %v of %v", s.Stage, n.Op)
	}
}

// truncate shortens b to n rows.
func truncate(b *expr.Batch, n int) {
	for c := range b.Cols {
		col := &b.Cols[c]
		switch col.Kind {
		case storage.Int64:
			col.Ints = col.Ints[:n]
		case storage.Float64:
			col.Flts = col.Flts[:n]
		case storage.String:
			col.Strs = col.Strs[:n]
		}
		if col.Nulls != nil {
			col.Nulls = col.Nulls[:n]
		}
	}
	b.N = n
}
