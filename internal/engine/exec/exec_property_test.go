package exec

import (
	"testing"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// buildComplexPlan assembles a plan exercising every operator type.
func buildComplexPlan(t *testing.T) *plan.Node {
	t.Helper()
	build := mkTable("b", 700, 21)
	probe := mkTable("p", 4000, 22)
	sb := plan.NewTableScan(build, []int{1, 2},
		expr.NewCmp(expr.Lt, expr.Col(1, "val", storage.Float64), expr.ConstFloat(80)))
	sp := plan.NewTableScan(probe, []int{1, 2, 3},
		expr.NewInListStrings(expr.Col(2, "word", storage.String),
			[]string{"alpha", "beta", "gamma", "delta"}))
	fil := plan.NewFilter(sp, expr.NewCmp(expr.Ge, expr.Col(1, "val", storage.Float64), expr.ConstFloat(5)))
	m := plan.NewMap(fil, []string{"scaled"}, []expr.ValueExpr{
		expr.NewArith(expr.Mul, expr.Col(1, "val", storage.Float64), expr.ConstFloat(0.25)),
	})
	join := plan.NewHashJoin(sb, m, []int{0}, []int{0}, []int{1})
	win := plan.NewWindow(join, plan.WinRank, []int{0}, []int{1}, 1, "rnk")
	gb := plan.NewGroupBy(win, []int{0},
		[]plan.Agg{{Fn: plan.AggSum, Col: 3}, {Fn: plan.AggCount}, {Fn: plan.AggMax, Col: 4}},
		[]string{"s", "c", "mx"})
	srt := plan.NewSort(gb, []int{1, 0}, []bool{true, false})
	return plan.NewLimit(srt, 50)
}

// TestBatchSizeInvariance is the executor's core correctness property:
// results must not depend on the batch size tuples are pushed in.
func TestBatchSizeInvariance(t *testing.T) {
	root := buildComplexPlan(t)
	ref, err := (&Executor{BatchSize: 1024}).Run(root, true)
	if err != nil {
		t.Fatal(err)
	}
	refCards := snapshotCards(root)

	for _, bs := range []int{1, 3, 7, 64, 1000, 4096} {
		res, err := (&Executor{BatchSize: bs}).Run(root, true)
		if err != nil {
			t.Fatalf("batch size %d: %v", bs, err)
		}
		if res.Rows != ref.Rows {
			t.Fatalf("batch size %d: %d rows, want %d", bs, res.Rows, ref.Rows)
		}
		for c := range ref.Output.Cols {
			a, b := &ref.Output.Cols[c], &res.Output.Cols[c]
			for i := 0; i < ref.Rows; i++ {
				switch a.Kind {
				case storage.Int64:
					if a.Ints[i] != b.Ints[i] {
						t.Fatalf("batch size %d: col %d row %d: %d != %d", bs, c, i, b.Ints[i], a.Ints[i])
					}
				case storage.Float64:
					if a.Flts[i] != b.Flts[i] {
						t.Fatalf("batch size %d: col %d row %d: %v != %v", bs, c, i, b.Flts[i], a.Flts[i])
					}
				case storage.String:
					if a.Strs[i] != b.Strs[i] {
						t.Fatalf("batch size %d: col %d row %d: %q != %q", bs, c, i, b.Strs[i], a.Strs[i])
					}
				}
			}
		}
		got := snapshotCards(root)
		for i := range refCards {
			if got[i] != refCards[i] {
				t.Fatalf("batch size %d: annotated cardinality %d changed: %v != %v", bs, i, got[i], refCards[i])
			}
		}
	}
}

// snapshotCards collects true-cardinality annotations in walk order.
func snapshotCards(root *plan.Node) []float64 {
	var out []float64
	root.Walk(func(n *plan.Node) {
		out = append(out, n.OutCard.True)
		for i := range n.PredSel {
			out = append(out, n.PredSel[i].True)
		}
	})
	return out
}

// TestMaterializeRescan verifies a materialized breaker can feed a further
// pipeline (sort over materialize).
func TestMaterializeRescan(t *testing.T) {
	tab := mkTable("t", 1000, 23)
	scan := plan.NewTableScan(tab, []int{1, 2})
	mat := plan.NewMaterialize(scan)
	srt := plan.NewSort(mat, []int{0}, []bool{false})
	res, err := Run(srt, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1000 {
		t.Fatalf("rows = %d", res.Rows)
	}
	k := res.Output.Cols[0].Ints
	for i := 1; i < len(k); i++ {
		if k[i-1] > k[i] {
			t.Fatal("sort after materialize violated order")
		}
	}
	if len(res.Pipelines) != 3 {
		t.Fatalf("pipelines = %d, want 3 (scan->mat, mat->sort, sort->result)", len(res.Pipelines))
	}
}

// TestProjectionReplacesSchema verifies Project drops columns.
func TestProjectionReplacesSchema(t *testing.T) {
	tab := mkTable("t", 100, 24)
	scan := plan.NewTableScan(tab, []int{0, 1, 2, 3})
	pr := plan.Project(scan, []int{2})
	res, err := Run(plan.NewMaterialize(pr), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output.Cols) != 1 || res.Output.Cols[0].Name != "val" {
		t.Fatalf("projection output: %+v", res.Output.Cols)
	}
	for i, v := range res.Output.Cols[0].Flts {
		if v != tab.Column("val").Flts[i] {
			t.Fatalf("row %d: wrong values after projection", i)
		}
	}
}

// TestWindowSumRunning verifies the running-sum window function.
func TestWindowSumRunning(t *testing.T) {
	tab := storage.MustNewTable("t",
		storage.Column{Name: "part", Kind: storage.Int64, Ints: []int64{1, 1, 2, 2, 2}},
		storage.Column{Name: "ord", Kind: storage.Int64, Ints: []int64{1, 2, 1, 2, 3}},
		storage.Column{Name: "v", Kind: storage.Float64, Flts: []float64{10, 20, 1, 2, 3}},
	)
	scan := plan.NewTableScan(tab, []int{0, 1, 2})
	win := plan.NewWindow(scan, plan.WinSum, []int{0}, []int{1}, 2, "run")
	res, err := Run(win, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 30, 1, 3, 6}
	for i, w := range want {
		if got := res.Output.Cols[3].Flts[i]; got != w {
			t.Errorf("running sum[%d] = %v, want %v", i, got, w)
		}
	}
}

// TestStringAggregates verifies MIN/MAX over string columns.
func TestStringAggregates(t *testing.T) {
	tab := mkTable("t", 500, 25)
	scan := plan.NewTableScan(tab, []int{3})
	gb := plan.NewGroupBy(scan, nil,
		[]plan.Agg{{Fn: plan.AggMin, Col: 0}, {Fn: plan.AggMax, Col: 0}},
		[]string{"mn", "mx"})
	res, err := Run(gb, false)
	if err != nil {
		t.Fatal(err)
	}
	words := tab.Column("word").Strs
	mn, mx := words[0], words[0]
	for _, w := range words {
		if w < mn {
			mn = w
		}
		if w > mx {
			mx = w
		}
	}
	if res.Output.Cols[0].Strs[0] != mn || res.Output.Cols[1].Strs[0] != mx {
		t.Fatalf("string min/max = %q/%q, want %q/%q",
			res.Output.Cols[0].Strs[0], res.Output.Cols[1].Strs[0], mn, mx)
	}
}

// TestScanOfBreakerBeforeBuildFails covers the defensive error path.
func TestScanOfBreakerBeforeBuildFails(t *testing.T) {
	tab := mkTable("t", 10, 26)
	scan := plan.NewTableScan(tab, []int{0})
	srt := plan.NewSort(scan, []int{0}, []bool{false})
	rt := &runtime{batchSize: 16, states: map[*plan.Node]any{}, counts: map[*plan.Node]*nodeCount{}, scratch: &execScratch{}}
	if _, err := rt.driveSource(srt, func(*expr.Batch) {}); err == nil {
		t.Fatal("scanning a breaker before its build must fail")
	}
}

// TestUnboundTableFails covers released plans.
func TestUnboundTableFails(t *testing.T) {
	tab := mkTable("t", 10, 27)
	scan := plan.NewTableScan(tab, []int{0})
	scan.Table = nil
	if _, err := Run(plan.NewMaterialize(scan), false); err == nil {
		t.Fatal("executing a released plan must fail")
	}
}
