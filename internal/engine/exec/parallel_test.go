package exec

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/refexec"
	"t3/internal/engine/storage"
	"t3/internal/genplan"
)

// matDiff compares two materialized results bit-exactly (floats by bits).
func matDiff(a, b *Materialized) error {
	return matDiffTol(a, b, 0)
}

// matDiffTol compares two materialized results: ints and strings exactly,
// floats within relative tolerance tol (tol 0 = bit-exact). Morsel-parallel
// group-by merges reassociate float SUM/AVG accumulation, so those columns
// can differ from serial execution by rounding ULPs — and by nothing else.
func matDiffTol(a, b *Materialized, tol float64) error {
	if (a == nil) != (b == nil) {
		return fmt.Errorf("one result is nil: a=%v b=%v", a != nil, b != nil)
	}
	if a == nil {
		return nil
	}
	if a.N != b.N {
		return fmt.Errorf("row count: %d vs %d", a.N, b.N)
	}
	if len(a.Cols) != len(b.Cols) {
		return fmt.Errorf("column count: %d vs %d", len(a.Cols), len(b.Cols))
	}
	for ci := range a.Cols {
		ac, bc := &a.Cols[ci], &b.Cols[ci]
		if ac.Kind != bc.Kind || ac.Name != bc.Name {
			return fmt.Errorf("col %d meta: %s/%s vs %s/%s", ci, ac.Name, ac.Kind, bc.Name, bc.Kind)
		}
		for i := 0; i < a.N; i++ {
			switch ac.Kind {
			case storage.Int64:
				if ac.Ints[i] != bc.Ints[i] {
					return fmt.Errorf("col %d (%s) row %d: %d vs %d", ci, ac.Name, i, ac.Ints[i], bc.Ints[i])
				}
			case storage.Float64:
				x, y := ac.Flts[i], bc.Flts[i]
				if tol == 0 {
					if math.Float64bits(x) != math.Float64bits(y) {
						return fmt.Errorf("col %d (%s) row %d: %v vs %v (bits %x vs %x)",
							ci, ac.Name, i, x, y, math.Float64bits(x), math.Float64bits(y))
					}
				} else if diff := math.Abs(x - y); diff > tol*math.Max(1, math.Max(math.Abs(x), math.Abs(y))) {
					return fmt.Errorf("col %d (%s) row %d: %v vs %v (diff %g)", ci, ac.Name, i, x, y, diff)
				}
			case storage.String:
				if ac.Strs[i] != bc.Strs[i] {
					return fmt.Errorf("col %d (%s) row %d: %q vs %q", ci, ac.Name, i, ac.Strs[i], bc.Strs[i])
				}
			}
		}
	}
	return nil
}

const parallelTol = 1e-9

// parallelJoinGroupPlan is a join + group-by with int and float aggregates
// over morsel-sized inputs, without order-destroying stages, so every column
// except the float sum must be bit-identical between serial and parallel
// execution (group output order is discovery order).
func parallelJoinGroupPlan(build, probe *storage.Table) *plan.Node {
	sb := plan.NewTableScan(build, []int{1, 2})
	sp := plan.NewTableScan(probe, []int{0, 1, 2})
	join := plan.NewHashJoin(sb, sp, []int{0}, []int{1}, []int{1})
	return plan.NewGroupBy(join, []int{1},
		[]plan.Agg{{Fn: plan.AggCount}, {Fn: plan.AggSum, Col: 3}, {Fn: plan.AggMax, Col: 0}},
		[]string{"c", "s", "m"})
}

// TestParallelMatchesSerialAtMorselBoundaries runs the same join/group plan
// serially and morsel-parallel across cardinalities straddling morsel and
// partition-block boundaries.
func TestParallelMatchesSerialAtMorselBoundaries(t *testing.T) {
	probeSizes := []int{255, 256, 257, 511, 512, 513, 1024, 1025}
	build := mkTable("b", 300, 3)
	for _, n := range probeSizes {
		probe := mkTable("p", n, int64(n))

		serial, err := (&Executor{BatchSize: 64}).Run(parallelJoinGroupPlan(build, probe), false)
		if err != nil {
			t.Fatalf("n=%d serial: %v", n, err)
		}
		pe := &Executor{BatchSize: 64, Workers: 3, MorselRows: 128}
		parallel, err := pe.Run(parallelJoinGroupPlan(build, probe), false)
		if err != nil {
			t.Fatalf("n=%d parallel: %v", n, err)
		}
		if err := matDiffTol(serial.Output, parallel.Output, parallelTol); err != nil {
			t.Fatalf("n=%d: parallel diverges from serial: %v", n, err)
		}
		// The probe pipeline scans n rows; with MorselRows=128 it must have
		// been split whenever n/128 >= 2.
		var probePT *PipelineTiming
		for i := range parallel.Pipelines {
			if parallel.Pipelines[i].SourceRows == n {
				probePT = &parallel.Pipelines[i]
			}
		}
		if probePT == nil {
			t.Fatalf("n=%d: no pipeline scanned %d source rows", n, n)
		}
		wantParts := n / 128
		if wantParts > 4*3 {
			wantParts = 4 * 3
		}
		if wantParts < 2 {
			if probePT.Morsels != 1 || probePT.Parallelism != 1 {
				t.Fatalf("n=%d: tiny pipeline reported %d morsels / %d-way", n, probePT.Morsels, probePT.Parallelism)
			}
		} else {
			if probePT.Morsels != wantParts {
				t.Fatalf("n=%d: got %d morsels, want %d", n, probePT.Morsels, wantParts)
			}
			wantPar := wantParts
			if wantPar > 3 {
				wantPar = 3
			}
			if probePT.Parallelism != wantPar {
				t.Fatalf("n=%d: got parallelism %d, want %d", n, probePT.Parallelism, wantPar)
			}
		}
	}
}

// TestParallelEmptyAndTinyInputs covers the degenerate ends: empty tables
// (zero partitions) and inputs smaller than a morsel, plus single-row
// morsels when MorselRows=1.
func TestParallelEmptyAndTinyInputs(t *testing.T) {
	build := mkTable("b", 20, 5)
	for _, n := range []int{0, 1, 2, 5, 19} {
		probe := mkTable("p", n, 11)
		for _, morsel := range []int{1, 128} {
			serial, err := (&Executor{BatchSize: 7}).Run(parallelJoinGroupPlan(build, probe), false)
			if err != nil {
				t.Fatalf("n=%d serial: %v", n, err)
			}
			pe := &Executor{BatchSize: 7, Workers: 4, MorselRows: morsel}
			parallel, err := pe.Run(parallelJoinGroupPlan(build, probe), false)
			if err != nil {
				t.Fatalf("n=%d morsel=%d parallel: %v", n, morsel, err)
			}
			if err := matDiffTol(serial.Output, parallel.Output, parallelTol); err != nil {
				t.Fatalf("n=%d morsel=%d: %v", n, morsel, err)
			}
		}
	}
}

// TestParallelSkewedKeys pins group discovery order under pathological key
// distributions: all rows in one group, and every row its own group. The key
// and count columns must be bit-identical to serial execution.
func TestParallelSkewedKeys(t *testing.T) {
	n := 2000
	for name, keyAt := range map[string]func(i int) int64{
		"all-duplicate": func(int) int64 { return 7 },
		"all-distinct":  func(i int) int64 { return int64(n - i) },
		"zipf-ish":      func(i int) int64 { return int64(i*i) % 13 },
	} {
		keys := make([]int64, n)
		vals := make([]int64, n)
		for i := 0; i < n; i++ {
			keys[i] = keyAt(i)
			vals[i] = int64(i)
		}
		tab := storage.MustNewTable("skew",
			storage.Column{Name: "key", Kind: storage.Int64, Ints: keys},
			storage.Column{Name: "val", Kind: storage.Int64, Ints: vals},
		)
		root := func() *plan.Node {
			scan := plan.NewTableScan(tab, []int{0, 1})
			return plan.NewGroupBy(scan, []int{0},
				[]plan.Agg{{Fn: plan.AggCount}, {Fn: plan.AggSum, Col: 1}, {Fn: plan.AggMin, Col: 1}},
				[]string{"c", "s", "mn"})
		}
		serial, err := (&Executor{}).Run(root(), false)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		parallel, err := (&Executor{Workers: 4, MorselRows: 64}).Run(root(), false)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		// Integer sums are exact under any association, so the whole result
		// must be bit-identical — including the key column's order, which
		// proves the merge reproduces serial discovery order.
		if err := matDiff(serial.Output, parallel.Output); err != nil {
			t.Fatalf("%s: parallel group-by diverges bit-exactly: %v", name, err)
		}
	}
}

// TestParallelWorkers1BitIdentical: Workers=1 must take the serial path and
// produce bit-identical output and annotations to the zero executor.
func TestParallelWorkers1BitIdentical(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for sc := genplan.Scenario(0); sc < genplan.NumScenarios; sc++ {
			a := genplan.Generate(seed, sc)
			b := genplan.Generate(seed, sc)
			ra, err := (&Executor{BatchSize: 33}).Run(a.Root, true)
			if err != nil {
				t.Fatalf("seed=%d sc=%s zero executor: %v", seed, sc, err)
			}
			rb, err := (&Executor{BatchSize: 33, Workers: 1, MorselRows: 16}).Run(b.Root, true)
			if err != nil {
				t.Fatalf("seed=%d sc=%s workers=1: %v", seed, sc, err)
			}
			if err := matDiff(ra.Output, rb.Output); err != nil {
				t.Fatalf("seed=%d sc=%s: workers=1 not bit-identical: %v", seed, sc, err)
			}
			ca, cb := snapshotCards(a.Root), snapshotCards(b.Root)
			if len(ca) != len(cb) {
				t.Fatalf("seed=%d sc=%s: annotation count differs", seed, sc)
			}
			for i := range ca {
				if ca[i] != cb[i] {
					t.Fatalf("seed=%d sc=%s: annotation %d differs: %x vs %x", seed, sc, i, ca[i], cb[i])
				}
			}
			for i := range rb.Pipelines {
				if rb.Pipelines[i].Parallelism != 1 || rb.Pipelines[i].Morsels != 1 {
					t.Fatalf("seed=%d sc=%s: workers=1 pipeline %d reports parallel execution", seed, sc, i)
				}
			}
		}
	}
}

// TestParallelDifferentialMany is the morsel-parallel twin of
// TestExecDifferentialMany: generated plans (including empty inputs,
// duplicate join keys, and group growth) executed with forced morsel
// splitting must match refexec row for row — ints and strings exactly,
// floats within reassociation tolerance — and annotation runs must yield
// the exact cardinalities and selectivities of a serial annotate run.
func TestParallelDifferentialMany(t *testing.T) {
	plans := 0
	for seed := int64(0); seed < 60; seed++ {
		for sc := genplan.Scenario(0); sc < genplan.NumScenarios; sc++ {
			batch := 1 + int(seed*7)%193
			cp := genplan.Generate(seed, sc)
			cs := genplan.Generate(seed, sc)

			ref, err := refexec.Run(cp.Root)
			if err != nil {
				t.Fatalf("seed=%d sc=%s refexec: %v", seed, sc, err)
			}
			refMat := &Materialized{Cols: ref.Cols, N: ref.N}

			pe := &Executor{BatchSize: batch, Workers: 4, MorselRows: 16}
			rp, err := pe.Run(cp.Root, false)
			if err != nil {
				t.Fatalf("seed=%d sc=%s parallel: %v", seed, sc, err)
			}
			if err := matDiffTol(rp.Output, refMat, parallelTol); err != nil {
				t.Fatalf("seed=%d sc=%s batch=%d: parallel vs refexec: %v\nplan:\n%s",
					seed, sc, batch, err, cp.Root.Explain())
			}

			// Annotate with morsel parallelism; cardinalities and
			// selectivities are integer-derived and must equal a serial
			// annotate run bit for bit (the label determinism contract).
			if _, err := pe.Run(cp.Root, true); err != nil {
				t.Fatalf("seed=%d sc=%s parallel annotate: %v", seed, sc, err)
			}
			if _, err := (&Executor{BatchSize: batch}).Run(cs.Root, true); err != nil {
				t.Fatalf("seed=%d sc=%s serial annotate: %v", seed, sc, err)
			}
			pc, scards := snapshotCards(cp.Root), snapshotCards(cs.Root)
			if len(pc) != len(scards) {
				t.Fatalf("seed=%d sc=%s: annotation count differs", seed, sc)
			}
			for i := range pc {
				if pc[i] != scards[i] {
					t.Fatalf("seed=%d sc=%s: annotation %d differs parallel vs serial: %x vs %x\nplan:\n%s",
						seed, sc, i, pc[i], scards[i], cp.Root.Explain())
				}
			}

			// Re-run presized from true cardinalities; must still match.
			rp2, err := pe.Run(cp.Root, false)
			if err != nil {
				t.Fatalf("seed=%d sc=%s post-annotate parallel: %v", seed, sc, err)
			}
			if err := matDiffTol(rp2.Output, refMat, parallelTol); err != nil {
				t.Fatalf("seed=%d sc=%s: post-annotate parallel vs refexec: %v", seed, sc, err)
			}
			plans++
		}
	}
	t.Logf("compared %d generated plans morsel-parallel vs refexec", plans)
}

// TestParallelDeterministicAcrossWorkerCounts: with integer-only aggregates
// the full result must be bit-identical for every worker count and morsel
// size, not merely equivalent.
func TestParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	build := mkTable("b", 500, 17)
	probe := mkTable("p", 6000, 18)
	base, err := (&Executor{}).Run(parallelJoinGroupPlan(build, probe), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 4, 8} {
		for _, morsel := range []int{64, 500, 4096} {
			res, err := (&Executor{Workers: w, MorselRows: morsel}).Run(parallelJoinGroupPlan(build, probe), false)
			if err != nil {
				t.Fatalf("workers=%d morsel=%d: %v", w, morsel, err)
			}
			// Key, count, and max columns must be bit-identical; the float
			// sum within reassociation tolerance.
			if err := matDiffTol(base.Output, res.Output, parallelTol); err != nil {
				t.Fatalf("workers=%d morsel=%d: %v", w, morsel, err)
			}
		}
	}
}

// TestParallelLimitStaysSerial: pipelines containing LIMIT depend on push
// order and must never be split.
func TestParallelLimitStaysSerial(t *testing.T) {
	tab := mkTable("t", 5000, 9)
	scan := plan.NewTableScan(tab, []int{0, 1, 2})
	srt := plan.NewSort(scan, []int{0}, []bool{false})
	lim := plan.NewLimit(srt, 10)
	serial, err := (&Executor{}).Run(lim, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Executor{Workers: 4, MorselRows: 64}).Run(lim, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := matDiff(serial.Output, res.Output); err != nil {
		t.Fatalf("limit query diverged: %v", err)
	}
	// First pipeline (scan -> sort build) may parallelize; the final
	// pipeline scanning the sorted breaker through LIMIT must not.
	final := res.Pipelines[len(res.Pipelines)-1]
	if final.Parallelism != 1 || final.Morsels != 1 {
		t.Fatalf("LIMIT pipeline ran %d-way over %d morsels", final.Parallelism, final.Morsels)
	}
	first := res.Pipelines[0]
	if first.Morsels < 2 {
		t.Fatalf("sort-build pipeline did not split (morsels=%d)", first.Morsels)
	}
}

// TestReuseRecyclesResult: with Reuse set, Run hands back the same result
// and output buffers each call, with correct fresh contents.
func TestReuseRecyclesResult(t *testing.T) {
	tab := mkTable("t", 3000, 13)
	root := func(limit int) *plan.Node {
		scan := plan.NewTableScan(tab, []int{0, 1, 2})
		srt := plan.NewSort(scan, []int{1, 0}, []bool{false, false})
		return plan.NewLimit(srt, limit)
	}
	e := &Executor{Reuse: true}
	r1, err := e.Run(root(100), false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&Executor{}).Run(root(100), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := matDiff(want.Output, r1.Output); err != nil {
		t.Fatalf("first reuse run wrong: %v", err)
	}
	out1 := r1.Output
	r2, err := e.Run(root(50), false)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r1 {
		t.Fatal("Reuse executor allocated a fresh RunResult")
	}
	if r2.Output != out1 {
		t.Fatal("Reuse executor allocated a fresh output Materialized")
	}
	if r2.Rows != 50 || r2.Output.N != 50 {
		t.Fatalf("second run rows = %d / %d, want 50", r2.Rows, r2.Output.N)
	}
	want2, err := (&Executor{}).Run(root(50), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := matDiff(want2.Output, r2.Output); err != nil {
		t.Fatalf("second reuse run wrong: %v", err)
	}
}

// TestReuseSteadyStateAllocs bounds the per-query allocation of the
// label-collection hot loop: an annotated plan re-executed on a Reuse
// executor must settle to a small constant number of allocations (stage
// closures and map headers), nowhere near the ~3.7k/query it used to be.
func TestReuseSteadyStateAllocs(t *testing.T) {
	build := mkTable("b", 1000, 21)
	probe := mkTable("p", 8000, 22)
	root := parallelJoinGroupPlan(build, probe)
	e := &Executor{Reuse: true}
	if _, err := e.Run(root, true); err != nil {
		t.Fatal(err)
	}
	// Warm the scratch pool.
	for i := 0; i < 3; i++ {
		if _, err := e.Run(root, false); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.Run(root, false); err != nil {
			t.Fatal(err)
		}
	})
	// Stage closures, the runtime struct, and per-run odds and ends are
	// tolerated; buffer churn is not. The exact count is implementation
	// detail — the bound just has to stay two orders of magnitude below the
	// old per-query cost.
	if allocs > 40 {
		t.Fatalf("steady-state Run allocates %.0f times, want <= 40", allocs)
	}
}

// TestParallelConcurrentRuns exercises the morsel path from many goroutines
// sharing base tables and the process-wide pool (the collection topology)
// under the race detector.
func TestParallelConcurrentRuns(t *testing.T) {
	build := mkTable("b", 400, 31)
	probe := mkTable("p", 3000, 32)
	want, err := (&Executor{}).Run(parallelJoinGroupPlan(build, probe), false)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e := &Executor{Workers: 2, MorselRows: 32, Reuse: true}
			for it := 0; it < 10; it++ {
				res, err := e.Run(parallelJoinGroupPlan(build, probe), it%2 == 0)
				if err != nil {
					errs[g] = err
					return
				}
				if err := matDiffTol(want.Output, res.Output, parallelTol); err != nil {
					errs[g] = fmt.Errorf("iter %d: %w", it, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestParallelExpressionStages runs filter+map stages morsel-parallel: the
// compiled map kernels and per-partition selection vectors must reproduce
// the serial pipeline exactly.
func TestParallelExpressionStages(t *testing.T) {
	tab := mkTable("t", 4000, 41)
	root := func() *plan.Node {
		scan := plan.NewTableScan(tab, []int{0, 1, 2, 3},
			expr.NewCmp(expr.Ge, expr.Col(0, "id", storage.Int64), expr.ConstInt(100)))
		fil := plan.NewFilter(scan, expr.NewCmp(expr.Lt, expr.Col(2, "val", storage.Float64), expr.ConstFloat(90)))
		m := plan.NewMap(fil, []string{"scaled"},
			[]expr.ValueExpr{expr.NewArith(expr.Mul, expr.Col(2, "val", storage.Float64), expr.ConstFloat(0.5))})
		return plan.NewSort(m, []int{0}, []bool{false})
	}
	serial, err := (&Executor{BatchSize: 100}).Run(root(), true)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Executor{BatchSize: 100, Workers: 4, MorselRows: 256}).Run(root(), true)
	if err != nil {
		t.Fatal(err)
	}
	// Map arithmetic runs per row in both modes — no reassociation anywhere,
	// so even the float column is bit-exact.
	if err := matDiff(serial.Output, parallel.Output); err != nil {
		t.Fatalf("expression pipeline diverged: %v", err)
	}
}
