package exec

import (
	"t3/internal/engine/plan"
)

// hashTab is the purpose-built open-addressing hash table behind hash joins
// and hash aggregation, replacing the previous map[uint64][]int32 states.
// It mirrors the layout tricks of purpose-built engine tables (the
// non-linearities T3 must learn from measured executions):
//
//   - power-of-two capacity with linear probing, so a probe is a masked
//     index plus a short forward scan — no modulo, no bucket pointers;
//   - each 16-byte slot stores the full 64-bit hash and an inline
//     first-entry reference, so the common no-duplicate case touches a
//     single cache line per lookup;
//   - duplicate entries (same hash) chain through a side "next" arena
//     indexed by entry id, appended in insertion order so probe output
//     order matches the previous map-based implementation;
//   - tables are presized from the plan's cardinality annotations
//     (true cardinalities after an analyze run, estimates otherwise), so
//     steady-state builds never rehash.
//
// Like the map it replaces, the table is keyed purely by hash: callers
// verify key equality on the chained entries, so hash collisions cost time,
// never correctness.
type hashTab struct {
	slots []htSlot
	next  []int32 // chain arena: next[entry] = next entry with equal hash
	mask  uint64
	used  int // occupied slots (distinct hashes)
}

// htSlot is one 16-byte table slot. head < 0 marks an empty slot.
type htSlot struct {
	hash       uint64
	head, tail int32
}

const htMinCap = 16

// nextPow2 returns the smallest power of two >= n (and >= htMinCap).
func nextPow2(n int) int {
	c := htMinCap
	for c < n {
		c <<= 1
	}
	return c
}

// reset prepares the table for a build expecting `expected` entries,
// reusing the previous allocation when large enough.
func (t *hashTab) reset(expected int) {
	// Size for a load factor <= 1/2 at the expected entry count; inserts
	// still grow on demand if the annotation undershoots.
	capacity := nextPow2(2 * expected)
	if cap(t.slots) >= capacity {
		t.slots = t.slots[:capacity]
	} else {
		t.slots = make([]htSlot, capacity)
	}
	for i := range t.slots {
		t.slots[i].head = -1
	}
	t.mask = uint64(capacity) - 1
	t.next = t.next[:0]
	t.used = 0
}

// insert adds the next sequential entry id (len of the chain arena) under
// hash h and returns it. Entries with equal hash chain in insertion order.
func (t *hashTab) insert(h uint64) int32 {
	e := int32(len(t.next))
	t.next = append(t.next, -1)
	if 4*t.used >= 3*len(t.slots) {
		t.grow()
	}
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.head < 0 {
			s.hash, s.head, s.tail = h, e, e
			t.used++
			return e
		}
		if s.hash == h {
			t.next[s.tail] = e
			s.tail = e
			return e
		}
		i = (i + 1) & t.mask
	}
}

// lookup returns the first entry id inserted under hash h, or -1. Further
// equal-hash entries follow via next[].
func (t *hashTab) lookup(h uint64) int32 {
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.head < 0 {
			return -1
		}
		if s.hash == h {
			return s.head
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles the slot array and repositions slots; chains are untouched
// because they live in the entry-indexed arena.
func (t *hashTab) grow() {
	old := t.slots
	t.slots = make([]htSlot, 2*len(old))
	for i := range t.slots {
		t.slots[i].head = -1
	}
	t.mask = uint64(len(t.slots)) - 1
	for _, s := range old {
		if s.head < 0 {
			continue
		}
		i := s.hash & t.mask
		for t.slots[i].head >= 0 {
			i = (i + 1) & t.mask
		}
		t.slots[i] = s
	}
}

// maxPresize caps annotation-driven hash-table presizing so a wild
// overestimate cannot balloon the initial allocation.
const maxPresize = 1 << 22

// expectedCard reads a cardinality annotation for presizing: the measured
// (true) value when an analyze run filled it, the estimate otherwise.
// Annotations are untrusted inputs (estimators produce garbage, deserialized
// plans carry arbitrary values): negative, zero, and NaN values all read as
// 0, and the result is capped at maxPresize. The !(v > 0) comparisons are
// deliberate — v <= 0 is false for NaN, which would then flow into int(v),
// an implementation-defined conversion.
func expectedCard(c plan.Card) int {
	v := c.True
	if !(v > 0) {
		v = c.Est
	}
	switch {
	case !(v > 0):
		return 0
	case v > maxPresize:
		return maxPresize
	default:
		return int(v)
	}
}

// inputBound returns an upper bound on the number of tuples n can emit,
// derived from base-table sizes rather than annotations. Build stages clamp
// annotation-driven presizing with it, so a hostile annotation (say 1e18 on
// a 3-row input) cannot allocate maxPresize slots for a tiny build.
func inputBound(n *plan.Node) int {
	if n == nil {
		return 0
	}
	switch n.Op {
	case plan.TableScanOp:
		if n.Table == nil {
			// Unbound scans (deserialized plans) carry no size information;
			// fall back to the global cap rather than guessing small.
			return maxPresize
		}
		return n.Table.NumRows()
	case plan.HashJoinOp:
		l, r := inputBound(n.Left), inputBound(n.Right)
		p := int64(l) * int64(r)
		if l != 0 && p/int64(l) != int64(r) || p > maxPresize {
			return maxPresize
		}
		return int(p)
	case plan.LimitOp:
		b := inputBound(n.Left)
		if n.LimitN < 0 {
			return 0
		}
		if n.LimitN < b {
			return n.LimitN
		}
		return b
	default:
		// Filter, map, group-by, sort, window, materialize never emit more
		// tuples than their input carries.
		return inputBound(n.Left)
	}
}

// presize combines an annotation with the annotation-independent input
// bound: the annotation is trusted only up to what the input can possibly
// produce.
func presize(c plan.Card, input *plan.Node) int {
	e := expectedCard(c)
	if b := inputBound(input); b < e {
		return b
	}
	return e
}
