package exec

import (
	"fmt"
	"testing"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// Engine micro-benchmarks: per-operator throughput of the execution
// substrate. These are not paper experiments; they document the engine's
// performance characteristics (the non-linearities T3 must learn).

func benchTable(n int) *storage.Table {
	return mkTable("bench", n, 99)
}

func BenchmarkTableScan(b *testing.B) {
	tab := benchTable(100000)
	scan := plan.NewTableScan(tab, []int{0, 1, 2})
	gb := plan.NewGroupBy(scan, nil, []plan.Agg{{Fn: plan.AggCount}}, []string{"c"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(gb, false); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tab.NumRows() * 24))
}

func BenchmarkTableScanWithPredicates(b *testing.B) {
	tab := benchTable(100000)
	scan := plan.NewTableScan(tab, []int{0, 1, 2},
		expr.NewCmp(expr.Lt, expr.Col(1, "key", storage.Int64), expr.ConstInt(10000)),
		expr.NewBetween(expr.Col(2, "val", storage.Float64), expr.ConstFloat(10), expr.ConstFloat(90)),
	)
	gb := plan.NewGroupBy(scan, nil, []plan.Agg{{Fn: plan.AggCount}}, []string{"c"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(gb, false); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tab.NumRows() * 24))
}

// benchHashes precomputes realistic build/probe hash streams so the kernel
// sub-benchmarks compare the open-addressing table and the Go-map baseline on
// byte-identical inputs, isolating the table from expression evaluation.
func benchHashes(nBuild, nProbe, dup int) (build, probe []uint64) {
	distinct := nBuild / dup
	if distinct < 1 {
		distinct = 1
	}
	build = make([]uint64, nBuild)
	for i := range build {
		build[i] = mix(fnvOffset, uint64(i%distinct))
	}
	probe = make([]uint64, nProbe)
	for i := range probe {
		// Half the probes miss: keys drawn from twice the build key space.
		probe[i] = mix(fnvOffset, uint64((i*7919)%(2*distinct)))
	}
	return build, probe
}

// BenchmarkHashJoin has three faces: "engine" runs a full build+probe join
// plan end to end; "kernel-open" and "kernel-map" run just the join kernel —
// insert every build hash, then walk each probe hash's chain — over the
// open-addressing table and the map[uint64][]int32 it replaced, on the same
// precomputed hashes.
func BenchmarkHashJoin(b *testing.B) {
	b.Run("engine", func(b *testing.B) {
		build := benchTable(10000)
		probe := benchTable(100000)
		sb := plan.NewTableScan(build, []int{1, 2})
		sp := plan.NewTableScan(probe, []int{1, 2})
		join := plan.NewHashJoin(sb, sp, []int{0}, []int{0}, []int{1})
		gb := plan.NewGroupBy(join, nil, []plan.Agg{{Fn: plan.AggCount}}, []string{"c"})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Run(gb, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	bh, ph := benchHashes(10000, 100000, 4)
	b.Run("kernel-open", func(b *testing.B) {
		var ht hashTab
		sink := int32(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ht.reset(len(bh))
			for _, h := range bh {
				ht.insert(h)
			}
			for _, h := range ph {
				for e := ht.lookup(h); e >= 0; e = ht.next[e] {
					sink += e
				}
			}
		}
		_ = sink
	})
	b.Run("kernel-map", func(b *testing.B) {
		sink := int32(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := make(map[uint64][]int32, len(bh))
			for j, h := range bh {
				m[h] = append(m[h], int32(j))
			}
			for _, h := range ph {
				for _, e := range m[h] {
					sink += e
				}
			}
		}
		_ = sink
	})
}

// BenchmarkGroupBy mirrors BenchmarkHashJoin for aggregation: "engine" runs a
// grouped aggregation plan, and the kernel pair measures group lookup-or-add
// — one chain probe per row, appending a fresh group on miss — against the
// map-based variant on the same hash stream.
func BenchmarkGroupBy(b *testing.B) {
	b.Run("engine", func(b *testing.B) {
		tab := benchTable(100000)
		scan := plan.NewTableScan(tab, []int{1, 2})
		gb := plan.NewGroupBy(scan, []int{0},
			[]plan.Agg{{Fn: plan.AggSum, Col: 1}, {Fn: plan.AggCount}}, []string{"s", "c"})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Run(gb, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	rows, _ := benchHashes(100000, 0, 50) // 100k rows over 2k groups
	b.Run("kernel-open", func(b *testing.B) {
		var ht hashTab
		groups := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ht.reset(4096)
			groups = 0
			for _, h := range rows {
				if ht.lookup(h) < 0 {
					ht.insert(h)
					groups++
				}
			}
		}
		if groups != 2000 {
			b.Fatalf("groups = %d, want 2000", groups)
		}
	})
	b.Run("kernel-map", func(b *testing.B) {
		groups := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := make(map[uint64][]int32, 4096)
			groups = 0
			for _, h := range rows {
				if _, ok := m[h]; !ok {
					m[h] = append(m[h], int32(groups))
					groups++
				}
			}
		}
		if groups != 2000 {
			b.Fatalf("groups = %d, want 2000", groups)
		}
	})
}

func BenchmarkSort(b *testing.B) {
	tab := benchTable(100000)
	scan := plan.NewTableScan(tab, []int{1, 2})
	srt := plan.NewSort(scan, []int{1}, []bool{false})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(srt, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelPipeline measures morsel-driven intra-query parallelism on
// a single large join + group-by query at several worker counts. workers=1
// is the serial engine; higher counts split the probe pipeline into morsels
// over a shared pool. Reuse is set, as in label collection, so the loop
// measures steady-state execution, not allocation.
func BenchmarkParallelPipeline(b *testing.B) {
	build := mkTable("build", 50000, 7)
	probe := mkTable("probe", 400000, 8)
	mk := func() *plan.Node {
		sb := plan.NewTableScan(build, []int{1, 2})
		sp := plan.NewTableScan(probe, []int{1, 2})
		join := plan.NewHashJoin(sb, sp, []int{0}, []int{0}, []int{1})
		return plan.NewGroupBy(join, []int{0},
			[]plan.Agg{{Fn: plan.AggCount}, {Fn: plan.AggSum, Col: 1}}, []string{"c", "s"})
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := &Executor{Workers: workers, Reuse: true}
			root := mk()
			if _, err := e.Run(root, true); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(root, false); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(probe.NumRows())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
		})
	}
}
