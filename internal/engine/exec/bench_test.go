package exec

import (
	"testing"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// Engine micro-benchmarks: per-operator throughput of the execution
// substrate. These are not paper experiments; they document the engine's
// performance characteristics (the non-linearities T3 must learn).

func benchTable(n int) *storage.Table {
	return mkTable("bench", n, 99)
}

func BenchmarkTableScan(b *testing.B) {
	tab := benchTable(100000)
	scan := plan.NewTableScan(tab, []int{0, 1, 2})
	gb := plan.NewGroupBy(scan, nil, []plan.Agg{{Fn: plan.AggCount}}, []string{"c"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(gb, false); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tab.NumRows() * 24))
}

func BenchmarkTableScanWithPredicates(b *testing.B) {
	tab := benchTable(100000)
	scan := plan.NewTableScan(tab, []int{0, 1, 2},
		expr.NewCmp(expr.Lt, expr.Col(1, "key", storage.Int64), expr.ConstInt(10000)),
		expr.NewBetween(expr.Col(2, "val", storage.Float64), expr.ConstFloat(10), expr.ConstFloat(90)),
	)
	gb := plan.NewGroupBy(scan, nil, []plan.Agg{{Fn: plan.AggCount}}, []string{"c"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(gb, false); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tab.NumRows() * 24))
}

func BenchmarkHashJoin(b *testing.B) {
	build := benchTable(10000)
	probe := benchTable(100000)
	sb := plan.NewTableScan(build, []int{1, 2})
	sp := plan.NewTableScan(probe, []int{1, 2})
	join := plan.NewHashJoin(sb, sp, []int{0}, []int{0}, []int{1})
	gb := plan.NewGroupBy(join, nil, []plan.Agg{{Fn: plan.AggCount}}, []string{"c"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(gb, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupByAggregation(b *testing.B) {
	tab := benchTable(100000)
	scan := plan.NewTableScan(tab, []int{1, 2})
	gb := plan.NewGroupBy(scan, []int{0},
		[]plan.Agg{{Fn: plan.AggSum, Col: 1}, {Fn: plan.AggCount}}, []string{"s", "c"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(gb, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSort(b *testing.B) {
	tab := benchTable(100000)
	scan := plan.NewTableScan(tab, []int{1, 2})
	srt := plan.NewSort(scan, []int{1}, []bool{false})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(srt, false); err != nil {
			b.Fatal(err)
		}
	}
}
