package exec

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// chain collects the entry ids stored under hash h in insertion order.
func (t *hashTab) chain(h uint64) []int32 {
	var out []int32
	for e := t.lookup(h); e >= 0; e = t.next[e] {
		out = append(out, e)
	}
	return out
}

func TestHashTabBasic(t *testing.T) {
	var ht hashTab
	ht.reset(0)
	if got := ht.lookup(42); got != -1 {
		t.Fatalf("lookup in empty table = %d, want -1", got)
	}
	// Duplicate hashes chain in insertion order.
	for i := 0; i < 5; i++ {
		ht.insert(7)
	}
	ht.insert(9)
	if got := ht.chain(7); len(got) != 5 {
		t.Fatalf("chain(7) = %v, want 5 sequential entries", got)
	} else {
		for i, e := range got {
			if int(e) != i {
				t.Fatalf("chain(7)[%d] = %d, want %d", i, e, i)
			}
		}
	}
	if got := ht.chain(9); len(got) != 1 || got[0] != 5 {
		t.Fatalf("chain(9) = %v, want [5]", got)
	}
}

// TestHashTabVsMap is the kernel-level property test: for random hash
// streams with heavy duplication, the open-addressing table must store
// exactly the chains the previous map[uint64][]int32 representation stored.
func TestHashTabVsMap(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5000)
		distinct := 1 + rng.Intn(n)
		// Deliberately undersize half the time to force growth paths.
		expected := 0
		if rng.Intn(2) == 0 {
			expected = n
		}
		var ht hashTab
		ht.reset(expected)
		ref := map[uint64][]int32{}
		for i := 0; i < n; i++ {
			// Low-entropy hashes cluster slots and exercise linear probing.
			h := uint64(rng.Intn(distinct)) * 64
			ht.insert(h)
			ref[h] = append(ref[h], int32(i))
		}
		if len(ref) != ht.used {
			t.Fatalf("seed %d: used = %d, want %d distinct hashes", seed, ht.used, len(ref))
		}
		for h, want := range ref {
			got := ht.chain(h)
			if len(got) != len(want) {
				t.Fatalf("seed %d: chain(%d) has %d entries, want %d", seed, h, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d: chain(%d)[%d] = %d, want %d", seed, h, i, got[i], want[i])
				}
			}
		}
		// A never-inserted hash must miss.
		if got := ht.lookup(uint64(distinct)*64 + 1); got != -1 {
			t.Fatalf("seed %d: lookup of absent hash = %d", seed, got)
		}
	}
}

// TestHashTabResetReuse verifies a pooled table is fully usable after reset.
func TestHashTabResetReuse(t *testing.T) {
	var ht hashTab
	for round := 0; round < 3; round++ {
		ht.reset(4)
		for i := 0; i < 100; i++ {
			ht.insert(uint64(i % 10))
		}
		for h := 0; h < 10; h++ {
			if got := ht.chain(uint64(h)); len(got) != 10 {
				t.Fatalf("round %d: chain(%d) = %v, want 10 entries", round, h, got)
			}
		}
	}
}

// randKeyTable builds a table with an int64 key (heavy duplicates), a string
// key, a float64 key, and a float payload.
func randKeyTable(name string, n int, rng *rand.Rand) *storage.Table {
	keys := make([]int64, n)
	words := make([]string, n)
	fkeys := make([]float64, n)
	vals := make([]float64, n)
	dict := []string{"a", "b", "c", "dd", "ee", "fff"}
	for i := 0; i < n; i++ {
		keys[i] = int64(rng.Intn(n/3 + 1))
		words[i] = dict[rng.Intn(len(dict))]
		fkeys[i] = float64(rng.Intn(7))
		vals[i] = rng.Float64() * 100
	}
	return storage.MustNewTable(name,
		storage.Column{Name: "k", Kind: storage.Int64, Ints: keys},
		storage.Column{Name: "w", Kind: storage.String, Strs: words},
		storage.Column{Name: "f", Kind: storage.Float64, Flts: fkeys},
		storage.Column{Name: "v", Kind: storage.Float64, Flts: vals},
	)
}

// rowKey renders row i of the given columns as a composite string key.
func rowKey(cols []storage.Column, idxs []int, i int) string {
	var sb strings.Builder
	for _, ci := range idxs {
		c := &cols[ci]
		switch c.Kind {
		case storage.Int64:
			fmt.Fprintf(&sb, "i%d|", c.Ints[i])
		case storage.Float64:
			fmt.Fprintf(&sb, "f%v|", c.Flts[i])
		case storage.String:
			fmt.Fprintf(&sb, "s%s|", c.Strs[i])
		}
	}
	return sb.String()
}

// fmtRow renders one output row for comparison.
func fmtRow(m *Materialized, i int) string {
	var sb strings.Builder
	for c := range m.Cols {
		col := &m.Cols[c]
		switch col.Kind {
		case storage.Int64:
			fmt.Fprintf(&sb, "%d|", col.Ints[i])
		case storage.Float64:
			fmt.Fprintf(&sb, "%v|", col.Flts[i])
		case storage.String:
			fmt.Fprintf(&sb, "%s|", col.Strs[i])
		}
	}
	return sb.String()
}

// TestJoinKernelVsReference compares hash-join results against a map-based
// reference join over the same inputs, across key types, sizes, and batch
// sizes. The engine's output order (probe-row-major, build insertion order
// within a key) is part of the contract the reference reproduces.
func TestJoinKernelVsReference(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		nb := 1 + rng.Intn(800)
		np := 1 + rng.Intn(3000)
		build := randKeyTable("b", nb, rng)
		probe := randKeyTable("p", np, rng)
		keyCol := rng.Intn(3) // k, w, or f
		bs := []int{1, 7, 256, 1024, 4096}[rng.Intn(5)]

		sb := plan.NewTableScan(build, []int{0, 1, 2, 3})
		sp := plan.NewTableScan(probe, []int{0, 1, 2, 3})
		join := plan.NewHashJoin(sb, sp, []int{keyCol}, []int{keyCol}, []int{3})
		res, err := (&Executor{BatchSize: bs}).Run(plan.NewMaterialize(join), false)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Map-based reference join.
		ref := map[string][]int{}
		for i := 0; i < nb; i++ {
			k := rowKey(build.Columns, []int{keyCol}, i)
			ref[k] = append(ref[k], i)
		}
		var want []string
		for i := 0; i < np; i++ {
			k := rowKey(probe.Columns, []int{keyCol}, i)
			for _, bi := range ref[k] {
				want = append(want, fmt.Sprintf("%d|%s|%v|%v|%v|",
					probe.Columns[0].Ints[i], probe.Columns[1].Strs[i],
					probe.Columns[2].Flts[i], probe.Columns[3].Flts[i],
					build.Columns[3].Flts[bi]))
			}
		}
		if res.Rows != len(want) {
			t.Fatalf("seed %d: %d rows, want %d", seed, res.Rows, len(want))
		}
		for i := range want {
			if got := fmtRow(res.Output, i); got != want[i] {
				t.Fatalf("seed %d row %d: got %q want %q", seed, i, got, want[i])
			}
		}
	}
}

// TestGroupByKernelVsReference compares hash aggregation against a map-based
// reference over the same inputs: group discovery order, sums, counts,
// averages, and string min/max must all match.
func TestGroupByKernelVsReference(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		n := 1 + rng.Intn(5000)
		tab := randKeyTable("t", n, rng)
		bs := []int{1, 7, 256, 1024, 4096}[rng.Intn(5)]
		groupCols := [][]int{{0}, {1}, {2}, {0, 1}, {1, 2}}[rng.Intn(5)]

		scan := plan.NewTableScan(tab, []int{0, 1, 2, 3})
		gb := plan.NewGroupBy(scan, groupCols, []plan.Agg{
			{Fn: plan.AggSum, Col: 3},
			{Fn: plan.AggCount},
			{Fn: plan.AggMin, Col: 1}, // string min
			{Fn: plan.AggMax, Col: 1}, // string max
			{Fn: plan.AggAvg, Col: 3},
			{Fn: plan.AggMin, Col: 0}, // int min
		}, []string{"s", "c", "wmn", "wmx", "av", "kmn"})
		res, err := (&Executor{BatchSize: bs}).Run(gb, false)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Map-based reference aggregation in first-appearance order.
		type acc struct {
			sum        float64
			cnt        int64
			wmn, wmx   string
			kmn        int64
			rows       int64
			firstOrder int
		}
		ref := map[string]*acc{}
		var order []string
		for i := 0; i < n; i++ {
			k := rowKey(tab.Columns, groupCols, i)
			a, ok := ref[k]
			if !ok {
				a = &acc{wmn: tab.Columns[1].Strs[i], wmx: tab.Columns[1].Strs[i], kmn: tab.Columns[0].Ints[i], firstOrder: len(order)}
				ref[k] = a
				order = append(order, k)
			}
			a.sum += tab.Columns[3].Flts[i]
			a.cnt++
			if w := tab.Columns[1].Strs[i]; w < a.wmn {
				a.wmn = w
			}
			if w := tab.Columns[1].Strs[i]; w > a.wmx {
				a.wmx = w
			}
			if v := tab.Columns[0].Ints[i]; v < a.kmn {
				a.kmn = v
			}
			a.rows++
		}
		if res.Rows != len(order) {
			t.Fatalf("seed %d: %d groups, want %d", seed, res.Rows, len(order))
		}
		ng := len(groupCols)
		for g, k := range order {
			a := ref[k]
			if got := res.Output.Cols[ng+1].Ints[g]; got != a.cnt {
				t.Fatalf("seed %d group %d: count %d want %d", seed, g, got, a.cnt)
			}
			if got := res.Output.Cols[ng+2].Strs[g]; got != a.wmn {
				t.Fatalf("seed %d group %d: strmin %q want %q", seed, g, got, a.wmn)
			}
			if got := res.Output.Cols[ng+3].Strs[g]; got != a.wmx {
				t.Fatalf("seed %d group %d: strmax %q want %q", seed, g, got, a.wmx)
			}
			if got := res.Output.Cols[ng+5].Ints[g]; got != a.kmn {
				t.Fatalf("seed %d group %d: intmin %d want %d", seed, g, got, a.kmn)
			}
			// Sum/avg accumulate in identical (scan) order in both paths, so
			// exact equality is expected.
			if got := res.Output.Cols[ng].Flts[g]; got != a.sum {
				t.Fatalf("seed %d group %d: sum %v want %v", seed, g, got, a.sum)
			}
			if got, want := res.Output.Cols[ng+4].Flts[g], a.sum/float64(a.rows); got != want {
				t.Fatalf("seed %d group %d: avg %v want %v", seed, g, got, want)
			}
		}
	}
}

// TestGroupByLazyStringAccumulators verifies only string MIN/MAX aggregates
// allocate per-group string accumulators.
func TestGroupByLazyStringAccumulators(t *testing.T) {
	tab := mkTable("t", 100, 31)
	in := plan.NewTableScan(tab, []int{1, 2, 3})
	n := plan.NewGroupBy(in, []int{0}, []plan.Agg{
		{Fn: plan.AggSum, Col: 1},
		{Fn: plan.AggCount},
		{Fn: plan.AggMin, Col: 2}, // string
		{Fn: plan.AggMax, Col: 1}, // float
	}, []string{"s", "c", "mn", "mx"})
	rt := &runtime{batchSize: 64, states: map[*plan.Node]any{}, counts: map[*plan.Node]*nodeCount{}, scratch: &execScratch{}}
	push, finalize, err := rt.makeGroupByBuild(n)
	if err != nil {
		t.Fatal(err)
	}
	st := rt.states[n].(*groupState)
	if st.strMin[0] != nil || st.strMin[1] != nil || st.strMin[3] != nil {
		t.Fatal("non-string aggregates must not allocate string accumulators")
	}
	if st.strMin[2] == nil || st.strMax[2] == nil {
		t.Fatal("string MIN aggregate must have string accumulators")
	}
	if _, err := rt.driveSource(in, push); err != nil {
		t.Fatal(err)
	}
	finalize()
	out := rt.states[n].(*Materialized)
	if out.N == 0 {
		t.Fatal("no groups produced")
	}
	// The string column of every group must hold a real word.
	for g := 0; g < out.N; g++ {
		if out.Cols[3].Strs[g] == "" {
			t.Fatalf("group %d: empty string min", g)
		}
	}
}

// TestJoinPresizeFromAnnotations runs an annotated plan twice and checks the
// second (steady-state) run sees a table already sized for the build side.
func TestJoinPresizeFromAnnotations(t *testing.T) {
	build := mkTable("b", 3000, 32)
	probe := mkTable("p", 9000, 33)
	sb := plan.NewTableScan(build, []int{1, 2})
	sp := plan.NewTableScan(probe, []int{1, 2})
	join := plan.NewHashJoin(sb, sp, []int{0}, []int{0}, []int{1})
	root := plan.NewGroupBy(join, nil, []plan.Agg{{Fn: plan.AggCount}}, []string{"c"})
	if _, err := Run(root, true); err != nil {
		t.Fatal(err)
	}
	if sb.OutCard.True != 3000 {
		t.Fatalf("build-side annotation = %v, want 3000", sb.OutCard.True)
	}
	if got := expectedCard(sb.OutCard); got != 3000 {
		t.Fatalf("expectedCard = %d, want 3000", got)
	}
	// Presized capacity covers the annotated build rows at <= 1/2 load.
	var ht hashTab
	ht.reset(expectedCard(sb.OutCard))
	if len(ht.slots) < 2*3000 {
		t.Fatalf("presized capacity %d < 2x annotated rows", len(ht.slots))
	}
	before := len(ht.slots)
	for i := 0; i < 3000; i++ {
		ht.insert(mix(fnvOffset, uint64(i)))
	}
	if len(ht.slots) != before {
		t.Fatalf("presized table grew from %d to %d slots", before, len(ht.slots))
	}
	if _, err := Run(root, false); err != nil {
		t.Fatal(err)
	}
}

// TestExpectedCard covers annotation fallbacks.
func TestExpectedCard(t *testing.T) {
	cases := []struct {
		card plan.Card
		want int
	}{
		{plan.Card{}, 0},
		{plan.Card{True: 100}, 100},
		{plan.Card{Est: 50}, 50},
		{plan.Card{True: 100, Est: 50}, 100},
		{plan.Card{True: 1 << 30}, 1 << 22},
	}
	for _, c := range cases {
		if got := expectedCard(c.card); got != c.want {
			t.Errorf("expectedCard(%+v) = %d, want %d", c.card, got, c.want)
		}
	}
	if got := nextPow2(0); got != htMinCap {
		t.Errorf("nextPow2(0) = %d, want %d", got, htMinCap)
	}
	for _, n := range []int{15, 16, 17, 1000} {
		p := nextPow2(n)
		if p < n || p&(p-1) != 0 {
			t.Errorf("nextPow2(%d) = %d", n, p)
		}
	}
}

// TestExecScratchArenaReuse verifies the arena contract: begin() makes
// previously handed-out buffers available again, buffers keep their backing
// allocations, and distinct checkouts within one run never alias.
func TestExecScratchArenaReuse(t *testing.T) {
	s := &execScratch{}
	meta := []plan.ColMeta{{Name: "k", Kind: storage.Int64}, {Name: "w", Kind: storage.String}}
	var firstB *batchBuf
	var firstT *hashTab
	for round := 0; round < 3; round++ {
		s.begin()
		bb := s.batchMeta(meta)
		ht := s.table(100)
		if round == 0 {
			firstB, firstT = bb, ht
		} else if bb != firstB || ht != firstT {
			t.Fatal("scratch arena did not reuse buffers across runs")
		}
		if len(bb.cols) != 2 || bb.cols[0].Kind != storage.Int64 || len(bb.cols[0].Ints) != 0 {
			t.Fatalf("round %d: buffer not reshaped clean: %+v", round, bb.cols)
		}
		bb.cols[0].Ints = append(bb.cols[0].Ints, 1, 2, 3)
		bb.cols[1].Strs = append(bb.cols[1].Strs, "a", "b", "c")
		b := bb.attach(3)
		if b.N != 3 || len(b.Cols) != 2 || b.Cols[0].Ints[2] != 3 {
			t.Fatalf("round %d: attach produced %+v", round, b)
		}
		if got := ht.lookup(7); got != -1 {
			t.Fatalf("round %d: reused table kept stale entries", round)
		}
		ht.insert(7)
	}
	// Distinct checkouts within one run must hand out distinct objects.
	s.begin()
	if a, b := s.table(1), s.table(1); a == b {
		t.Fatal("two checkouts in one run alias the same table")
	}
	if a, b := s.batchMeta(meta), s.batchMeta(meta); a == b {
		t.Fatal("two checkouts in one run alias the same batch buffer")
	}
	// Selection vectors are checkouts too: distinct within a run (a scan and
	// the filter stages it feeds hold theirs simultaneously), retained with
	// their capacity across runs.
	small := s.selBuf(8)
	big := s.selBuf(1024)
	if len(big) != 1024 {
		t.Fatalf("selBuf(1024) has len %d", len(big))
	}
	small[0] = true
	big[0] = true
	if !small[0] || !big[0] {
		t.Fatal("selBuf checkouts alias each other")
	}
	s.begin()
	if again := s.selBuf(4); cap(again) < 8 {
		t.Fatal("selBuf shrank its retained capacity across runs")
	}
	if again := s.selBuf(16); cap(again) < 1024 {
		t.Fatal("selBuf did not reuse the second retained vector")
	}
}

// TestExpectedCardHostile covers the adversarial annotation values genplan
// produces: negative, NaN, and infinite cardinalities must never reach
// int(v) unclamped.
func TestExpectedCardHostile(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		card plan.Card
		want int
	}{
		{plan.Card{True: -5, Est: -7}, 0},
		{plan.Card{True: nan, Est: nan}, 0},
		{plan.Card{True: nan, Est: 40}, 40},
		{plan.Card{True: -1, Est: 40}, 40},
		{plan.Card{True: math.Inf(1)}, maxPresize},
		{plan.Card{True: math.Inf(-1), Est: math.Inf(-1)}, 0},
		{plan.Card{True: 1e18}, maxPresize},
	}
	for _, c := range cases {
		if got := expectedCard(c.card); got != c.want {
			t.Errorf("expectedCard(%+v) = %d, want %d", c.card, got, c.want)
		}
	}
}

// TestInputBound checks the annotation-independent presize bound.
func TestInputBound(t *testing.T) {
	small := mkTable("s", 3, 1)
	big := mkTable("b", 500, 2)
	scanS := plan.NewTableScan(small, []int{0, 1})
	scanB := plan.NewTableScan(big, []int{0, 1})

	if got := inputBound(scanS); got != 3 {
		t.Errorf("inputBound(scan 3 rows) = %d, want 3", got)
	}
	if got := inputBound(plan.NewFilter(scanS, nil)); got != 3 {
		t.Errorf("inputBound(filter) = %d, want 3", got)
	}
	if got := inputBound(plan.NewLimit(scanB, 7)); got != 7 {
		t.Errorf("inputBound(limit 7) = %d, want 7", got)
	}
	if got := inputBound(plan.NewLimit(scanS, 1000)); got != 3 {
		t.Errorf("inputBound(limit 1000 over 3) = %d, want 3", got)
	}
	if got := inputBound(plan.NewLimit(scanS, -2)); got != 0 {
		t.Errorf("inputBound(limit -2) = %d, want 0", got)
	}
	join := plan.NewHashJoin(scanS, scanB, []int{0}, []int{0}, []int{1})
	if got := inputBound(join); got != 1500 {
		t.Errorf("inputBound(join 3x500) = %d, want 1500", got)
	}
	// Unbound scans (deserialized plans) must fall back to the cap, not 0.
	if got := inputBound(&plan.Node{Op: plan.TableScanOp}); got != maxPresize {
		t.Errorf("inputBound(unbound scan) = %d, want maxPresize", got)
	}
	// Nested join products saturate at the cap instead of overflowing.
	deep := join
	for i := 0; i < 12; i++ {
		deep = plan.NewHashJoin(deep, scanB, []int{0}, []int{0}, nil)
	}
	if got := inputBound(deep); got != maxPresize {
		t.Errorf("inputBound(deep join chain) = %d, want maxPresize", got)
	}
}

// TestPresizeClampedByInput is the regression test for hostile cardinality
// annotations: a 3-row build annotated with 1e18 (or NaN) rows must presize
// from the input bound, not the annotation, and the plan must still execute
// correctly.
func TestPresizeClampedByInput(t *testing.T) {
	build := mkTable("b", 3, 11)
	probe := mkTable("p", 40, 12)
	sb := plan.NewTableScan(build, []int{0, 1})
	sp := plan.NewTableScan(probe, []int{0, 1})
	join := plan.NewHashJoin(sb, sp, []int{0}, []int{0}, []int{1})

	for _, hostile := range []float64{1e18, math.Inf(1), math.NaN(), -42} {
		sb.OutCard = plan.Card{True: hostile, Est: hostile}
		got := presize(sb.OutCard, sb)
		if got > 3 {
			t.Fatalf("presize with annotation %v = %d, want <= 3 (input rows)", hostile, got)
		}
		var ht hashTab
		ht.reset(got)
		if len(ht.slots) != htMinCap {
			t.Fatalf("annotation %v: presized %d slots, want minimum %d", hostile, len(ht.slots), htMinCap)
		}
		res, err := Run(join, false)
		if err != nil {
			t.Fatalf("annotation %v: %v", hostile, err)
		}
		if res.Rows == 0 {
			t.Fatalf("annotation %v: join produced no rows", hostile)
		}
	}

	// Group-by: the group count is bounded by the input rows, not by the
	// hostile output annotation.
	gb := plan.NewGroupBy(plan.NewTableScan(build, []int{0, 1}), []int{0},
		[]plan.Agg{{Fn: plan.AggCount}}, []string{"c"})
	gb.OutCard = plan.Card{True: 1e18, Est: math.NaN()}
	if got := presize(gb.OutCard, gb.Left); got > 3 {
		t.Fatalf("group-by presize = %d, want <= 3", got)
	}
	if _, err := Run(gb, false); err != nil {
		t.Fatal(err)
	}
}
