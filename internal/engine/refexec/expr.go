package refexec

import (
	"fmt"

	"t3/internal/engine/expr"
	"t3/internal/engine/storage"
)

// evalBool evaluates a predicate for one row, mirroring the vectorized
// evaluators' documented semantics: NULL input fails every predicate,
// constants coerce to the column's kind for simple comparisons (floats
// truncate toward zero against integer columns), BETWEEN reads the constant
// field matching the column kind without coercion, IN over float columns and
// LIKE over non-string columns are uniformly false, and column-column
// comparisons go through float64 (strings read as 0).
func evalBool(p expr.BoolExpr, r row) (bool, error) {
	switch e := p.(type) {
	case *expr.Cmp:
		v := r[e.Left.Idx]
		if v.null {
			return false, nil
		}
		switch v.k {
		case storage.Int64:
			c := e.Val.I
			if e.Val.Typ == storage.Float64 {
				c = int64(e.Val.F)
			}
			return cmpOrdered(e.Op, compareInt(v.i, c)), nil
		case storage.Float64:
			c := e.Val.F
			if e.Val.Typ == storage.Int64 {
				c = float64(e.Val.I)
			}
			return cmpFloatOp(e.Op, v.f, c), nil
		default:
			return cmpOrdered(e.Op, compareStr(v.s, e.Val.S)), nil
		}
	case *expr.Between:
		v := r[e.Col.Idx]
		if v.null {
			return false, nil
		}
		switch v.k {
		case storage.Int64:
			return v.i >= e.Lo.I && v.i <= e.Hi.I, nil
		case storage.Float64:
			return v.f >= e.Lo.F && v.f <= e.Hi.F, nil
		default:
			return v.s >= e.Lo.S && v.s <= e.Hi.S, nil
		}
	case *expr.InList:
		v := r[e.Col.Idx]
		if v.null {
			return false, nil
		}
		switch v.k {
		case storage.Int64:
			for _, c := range e.Ints {
				if v.i == c {
					return true, nil
				}
			}
			return false, nil
		case storage.String:
			for _, c := range e.Strs {
				if v.s == c {
					return true, nil
				}
			}
			return false, nil
		default:
			return false, nil
		}
	case *expr.Like:
		v := r[e.Col.Idx]
		if v.k != storage.String || v.null {
			return false, nil
		}
		return expr.MatchLike(v.s, e.Pattern), nil
	case *expr.ColCmp:
		l, rr := r[e.Left.Idx], r[e.Right.Idx]
		if l.null || rr.null {
			return false, nil
		}
		return cmpFloatOp(e.Op, numValue(l), numValue(rr)), nil
	case *expr.Or:
		lv, err := evalBool(e.Left, r)
		if err != nil {
			return false, err
		}
		rv, err := evalBool(e.Right, r)
		if err != nil {
			return false, err
		}
		return lv || rv, nil
	default:
		return false, fmt.Errorf("refexec: unsupported predicate %T", p)
	}
}

// evalValue evaluates a value expression for one row. Column references drop
// the null flag (the engine's ColRef.Eval copies values without nulls);
// arithmetic is always float64 with division by zero yielding zero.
func evalValue(x expr.ValueExpr, r row) (value, error) {
	switch e := x.(type) {
	case *expr.ColRef:
		v := r[e.Idx]
		v.null = false
		return v, nil
	case *expr.Const:
		return value{k: e.Typ, i: e.I, f: e.F, s: e.S}, nil
	case *expr.Arith:
		l, err := evalValue(e.Left, r)
		if err != nil {
			return value{}, err
		}
		rr, err := evalValue(e.Right, r)
		if err != nil {
			return value{}, err
		}
		a, b := numValue(l), numValue(rr)
		out := value{k: storage.Float64}
		switch e.Op {
		case expr.Add:
			out.f = a + b
		case expr.Sub:
			out.f = a - b
		case expr.Mul:
			out.f = a * b
		case expr.Div:
			if b != 0 {
				out.f = a / b
			}
		}
		return out, nil
	default:
		return value{}, fmt.Errorf("refexec: unsupported value expression %T", x)
	}
}

// numValue reads a value as float64 (strings read as 0), mirroring the
// engine's numAt.
func numValue(v value) float64 {
	switch v.k {
	case storage.Int64:
		return float64(v.i)
	case storage.Float64:
		return v.f
	default:
		return 0
	}
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// cmpOrdered applies op to a three-way comparison result.
func cmpOrdered(op expr.CmpOp, c int) bool {
	switch op {
	case expr.Lt:
		return c < 0
	case expr.Le:
		return c <= 0
	case expr.Eq:
		return c == 0
	case expr.Ge:
		return c >= 0
	case expr.Gt:
		return c > 0
	default:
		return c != 0
	}
}

// cmpFloatOp compares floats directly (not via three-way compare, so NaN
// behaves exactly like the engine's cmpFloat).
func cmpFloatOp(op expr.CmpOp, a, b float64) bool {
	switch op {
	case expr.Lt:
		return a < b
	case expr.Le:
		return a <= b
	case expr.Eq:
		return a == b
	case expr.Ge:
		return a >= b
	case expr.Gt:
		return a > b
	default:
		return a != b
	}
}
