// Package refexec is a deliberately naive reference interpreter over the
// engine's plan IR. It exists for one purpose: differential testing of the
// optimized vectorized executor (internal/engine/exec) and everything layered
// on top of it.
//
// Design rules, chosen so that bugs in the optimized engine cannot hide in
// shared code or shared data structures:
//
//   - Row at a time. No batches, no selection vectors, no compaction — every
//     operator consumes and produces plain []row slices.
//   - No maps. Hash joins are evaluated as nested loops over the build rows
//     in insertion order; group-by is ordered aggregation with a linear scan
//     over the groups in discovery order. This makes the interpreter's output
//     order a deterministic function of the input, matching the documented
//     order of the optimized kernels (probe matches in build insertion order,
//     groups in discovery order) without depending on Go map iteration.
//   - Independent expression evaluation. Predicates and value expressions are
//     re-implemented per row by type-switching on the expr package's node
//     types, mirroring the engine's *documented* semantics (constant
//     coercion by column type, NULL fails every predicate, division by zero
//     yields zero, LIKE via an independent matcher) rather than calling the
//     engine's vectorized evaluators.
//
// NULL semantics mirror the engine's: null flags exist only between a table
// scan and the first materialization point (join build/probe output,
// group-by, sort, window, materialize all strip them); while they exist, any
// predicate over a NULL value is false.
package refexec

import (
	"fmt"
	"math"
	"sort"

	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// value is one scalar with an optional null flag. Exactly one of i/f/s is
// meaningful, selected by k.
type value struct {
	k    storage.Type
	i    int64
	f    float64
	s    string
	null bool
}

// row is one tuple.
type row []value

// Result is the interpreter's materialized query output, shaped like the
// engine's exec.Materialized so differential tests can compare column by
// column.
type Result struct {
	Cols []storage.Column
	N    int
}

// Run interprets the plan and returns its full result.
func Run(root *plan.Node) (*Result, error) {
	rows, err := eval(root)
	if err != nil {
		return nil, err
	}
	return materialize(root.Schema, rows), nil
}

// materialize converts rows into columnar form (dropping null flags, exactly
// like the engine's result materialization does).
func materialize(schema []plan.ColMeta, rows []row) *Result {
	res := &Result{Cols: make([]storage.Column, len(schema)), N: len(rows)}
	for c, cm := range schema {
		col := storage.Column{Name: cm.Name, Kind: cm.Kind}
		switch cm.Kind {
		case storage.Int64:
			col.Ints = make([]int64, 0, len(rows))
			for _, r := range rows {
				col.Ints = append(col.Ints, r[c].i)
			}
		case storage.Float64:
			col.Flts = make([]float64, 0, len(rows))
			for _, r := range rows {
				col.Flts = append(col.Flts, r[c].f)
			}
		case storage.String:
			col.Strs = make([]string, 0, len(rows))
			for _, r := range rows {
				col.Strs = append(col.Strs, r[c].s)
			}
		}
		res.Cols[c] = col
	}
	return res
}

// stripNulls clears null flags in place — the reference analogue of the
// engine dropping null vectors at every materialization boundary.
func stripNulls(rows []row) []row {
	for _, r := range rows {
		for c := range r {
			r[c].null = false
		}
	}
	return rows
}

// eval interprets the subtree rooted at n into rows.
func eval(n *plan.Node) ([]row, error) {
	switch n.Op {
	case plan.TableScanOp:
		return evalScan(n)
	case plan.FilterOp:
		in, err := eval(n.Left)
		if err != nil {
			return nil, err
		}
		var out []row
		for _, r := range in {
			ok, err := evalBool(n.FilterPred, r)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, r)
			}
		}
		return out, nil
	case plan.MapOp:
		return evalMap(n)
	case plan.HashJoinOp:
		return evalJoin(n)
	case plan.GroupByOp:
		return evalGroupBy(n)
	case plan.SortOp:
		in, err := eval(n.Left)
		if err != nil {
			return nil, err
		}
		return sortRows(stripNulls(in), n.SortCols, n.SortDesc), nil
	case plan.WindowOp:
		return evalWindow(n)
	case plan.MaterializeOp:
		in, err := eval(n.Left)
		if err != nil {
			return nil, err
		}
		return stripNulls(in), nil
	case plan.LimitOp:
		in, err := eval(n.Left)
		if err != nil {
			return nil, err
		}
		if n.LimitN <= 0 {
			return nil, nil
		}
		if len(in) > n.LimitN {
			in = in[:n.LimitN]
		}
		return in, nil
	default:
		return nil, fmt.Errorf("refexec: unsupported operator %v", n.Op)
	}
}

// evalScan reads the base table row by row, applying pushed-down predicates
// with short-circuit AND semantics.
func evalScan(n *plan.Node) ([]row, error) {
	t := n.Table
	if t == nil {
		return nil, fmt.Errorf("refexec: table scan %q has no bound table", n.TableName)
	}
	var out []row
	total := t.NumRows()
	for i := 0; i < total; i++ {
		r := make(row, len(n.ScanCols))
		for c, ci := range n.ScanCols {
			col := &t.Columns[ci]
			v := value{k: col.Kind, null: col.IsNull(i)}
			switch col.Kind {
			case storage.Int64:
				v.i = col.Ints[i]
			case storage.Float64:
				v.f = col.Flts[i]
			case storage.String:
				v.s = col.Strs[i]
			}
			r[c] = v
		}
		keep := true
		for _, p := range n.Predicates {
			ok, err := evalBool(p, r)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, r)
		}
	}
	return out, nil
}

// evalMap appends (or, for projections, replaces with) computed columns.
func evalMap(n *plan.Node) ([]row, error) {
	in, err := eval(n.Left)
	if err != nil {
		return nil, err
	}
	out := make([]row, len(in))
	for i, r := range in {
		var nr row
		if !n.MapReplaces() {
			nr = append(nr, r...)
		}
		for _, e := range n.MapExprs {
			v, err := evalValue(e, r)
			if err != nil {
				return nil, err
			}
			nr = append(nr, v)
		}
		out[i] = nr
	}
	return out, nil
}

// evalJoin is an inner hash join evaluated as a nested loop: for every probe
// row in stream order, matches are emitted in build insertion order — the
// same output order as the engine's open-addressing kernel.
func evalJoin(n *plan.Node) ([]row, error) {
	build, err := eval(n.Left)
	if err != nil {
		return nil, err
	}
	probe, err := eval(n.Right)
	if err != nil {
		return nil, err
	}
	stripNulls(build)
	stripNulls(probe)
	var out []row
	for _, pr := range probe {
		for _, br := range build {
			match := true
			for k := range n.BuildKeys {
				if !valueEqual(br[n.BuildKeys[k]], pr[n.ProbeKeys[k]]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			nr := make(row, 0, len(pr)+len(n.BuildPayload))
			nr = append(nr, pr...)
			for _, ci := range n.BuildPayload {
				nr = append(nr, br[ci])
			}
			out = append(out, nr)
		}
	}
	return out, nil
}

// valueEqual mirrors the engine's key equality: same-kind comparison of the
// stored values (null flags were already stripped at the join boundary).
func valueEqual(a, b value) bool {
	switch a.k {
	case storage.Int64:
		return a.i == b.i
	case storage.Float64:
		return a.f == b.f
	default:
		return a.s == b.s
	}
}

// group is one aggregation group: its key row plus accumulators mirroring
// the engine's groupState exactly (float64 sums even for integer min/max,
// lazily meaningful string min/max, per-aggregate counts).
type group struct {
	key    row
	sums   []float64
	counts []int64
	strMin []string
	strMax []string
}

// evalGroupBy is ordered hash aggregation without the hash: groups are found
// by a linear scan in discovery order.
func evalGroupBy(n *plan.Node) ([]row, error) {
	in, err := eval(n.Left)
	if err != nil {
		return nil, err
	}
	stripNulls(in)
	var groups []*group
	newGroup := func(key row) *group {
		g := &group{
			key:    key,
			sums:   make([]float64, len(n.Aggs)),
			counts: make([]int64, len(n.Aggs)),
			strMin: make([]string, len(n.Aggs)),
			strMax: make([]string, len(n.Aggs)),
		}
		for a, agg := range n.Aggs {
			switch agg.Fn {
			case plan.AggMin:
				g.sums[a] = math.Inf(1)
			case plan.AggMax:
				g.sums[a] = math.Inf(-1)
			}
		}
		return g
	}
	for _, r := range in {
		key := make(row, len(n.GroupCols))
		for k, ci := range n.GroupCols {
			key[k] = r[ci]
		}
		var g *group
		for _, cand := range groups {
			same := true
			for k := range key {
				if !valueEqual(cand.key[k], key[k]) {
					same = false
					break
				}
			}
			if same {
				g = cand
				break
			}
		}
		if g == nil {
			g = newGroup(key)
			groups = append(groups, g)
		}
		for a, agg := range n.Aggs {
			accumulate(g, a, agg, r)
		}
	}
	// A global aggregate over empty input still yields one row.
	if len(n.GroupCols) == 0 && len(groups) == 0 {
		groups = append(groups, newGroup(nil))
	}
	out := make([]row, len(groups))
	ng := len(n.GroupCols)
	for gi, g := range groups {
		r := make(row, len(n.Schema))
		copy(r, g.key)
		for a, agg := range n.Aggs {
			r[ng+a] = finishAgg(n.Schema[ng+a].Kind, g, a, agg)
		}
		out[gi] = r
	}
	return out, nil
}

// accumulate folds one input row into group g's accumulator for aggregate a,
// mirroring the engine's updateAcc semantics exactly (including SUM/AVG over
// string columns counting but never summing).
func accumulate(g *group, a int, agg plan.Agg, r row) {
	if agg.Fn == plan.AggCount {
		g.counts[a]++
		return
	}
	v := r[agg.Col]
	if v.k == storage.String {
		first := g.counts[a] == 0
		switch agg.Fn {
		case plan.AggMin:
			if first || v.s < g.strMin[a] {
				g.strMin[a] = v.s
			}
		case plan.AggMax:
			if first || v.s > g.strMax[a] {
				g.strMax[a] = v.s
			}
		}
		g.counts[a]++
		return
	}
	x := v.f
	if v.k == storage.Int64 {
		x = float64(v.i)
	}
	switch agg.Fn {
	case plan.AggSum, plan.AggAvg:
		g.sums[a] += x
	case plan.AggMin:
		if x < g.sums[a] {
			g.sums[a] = x
		}
	case plan.AggMax:
		if x > g.sums[a] {
			g.sums[a] = x
		}
	}
	g.counts[a]++
}

// finishAgg converts a finished accumulator to the output value, mirroring
// the engine's writeAgg (infinities from empty min/max clamp to zero, AVG of
// an empty group is zero, integer min/max round-trips through float64).
func finishAgg(kind storage.Type, g *group, a int, agg plan.Agg) value {
	out := value{k: kind}
	switch kind {
	case storage.Int64:
		if agg.Fn == plan.AggCount {
			out.i = g.counts[a]
		} else {
			v := g.sums[a]
			if math.IsInf(v, 0) {
				v = 0
			}
			out.i = int64(v)
		}
	case storage.Float64:
		v := g.sums[a]
		if agg.Fn == plan.AggAvg {
			if g.counts[a] > 0 {
				v /= float64(g.counts[a])
			} else {
				v = 0
			}
		}
		if math.IsInf(v, 0) {
			v = 0
		}
		out.f = v
	case storage.String:
		switch agg.Fn {
		case plan.AggMin:
			out.s = g.strMin[a]
		case plan.AggMax:
			out.s = g.strMax[a]
		}
	}
	return out
}

// sortRows stably sorts rows by the key columns; desc may be shorter than
// keys (missing entries sort ascending), mirroring the engine.
func sortRows(rows []row, keys []int, desc []bool) []row {
	sort.SliceStable(rows, func(x, y int) bool {
		a, b := rows[x], rows[y]
		for k, ci := range keys {
			cmp := compareValues(a[ci], b[ci])
			if cmp != 0 {
				if k < len(desc) && desc[k] {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
	return rows
}

// compareValues orders two same-kind values.
func compareValues(a, b value) int {
	switch a.k {
	case storage.Int64:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
	case storage.Float64:
		switch {
		case a.f < b.f:
			return -1
		case a.f > b.f:
			return 1
		}
	case storage.String:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
	}
	return 0
}

// evalWindow materializes, sorts by partition then order keys (ascending,
// stable), and computes the window function as a running scan.
func evalWindow(n *plan.Node) ([]row, error) {
	in, err := eval(n.Left)
	if err != nil {
		return nil, err
	}
	keys := append(append([]int(nil), n.WinPartition...), n.WinOrder...)
	sorted := sortRows(stripNulls(in), keys, nil)

	outKind := n.Schema[len(n.Schema)-1].Kind
	out := make([]row, len(sorted))
	var rowNum, rank int64
	var runSum float64
	for i, r := range sorted {
		newPart := i == 0 || !sameKeys(sorted[i], sorted[i-1], n.WinPartition)
		if newPart {
			rowNum, rank, runSum = 0, 0, 0
		}
		rowNum++
		if newPart || !sameKeys(sorted[i], sorted[i-1], n.WinOrder) {
			rank = rowNum
		}
		v := value{k: outKind}
		switch n.WinFunc {
		case plan.WinRowNumber:
			v.i = rowNum
		case plan.WinRank:
			v.i = rank
		case plan.WinSum:
			arg := r[n.WinArg]
			if arg.k == storage.Int64 {
				runSum += float64(arg.i)
			} else {
				runSum += arg.f
			}
			v.f = runSum
		}
		nr := make(row, 0, len(r)+1)
		nr = append(nr, r...)
		nr = append(nr, v)
		out[i] = nr
	}
	return out, nil
}

// sameKeys reports whether two rows agree on the given columns.
func sameKeys(a, b row, keys []int) bool {
	for _, ci := range keys {
		if !valueEqual(a[ci], b[ci]) {
			return false
		}
	}
	return true
}
