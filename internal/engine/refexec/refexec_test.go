package refexec

import (
	"math"
	"testing"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

func intCol(name string, vals ...int64) storage.Column {
	return storage.Column{Name: name, Kind: storage.Int64, Ints: vals}
}

func fltCol(name string, vals ...float64) storage.Column {
	return storage.Column{Name: name, Kind: storage.Float64, Flts: vals}
}

func strCol(name string, vals ...string) storage.Column {
	return storage.Column{Name: name, Kind: storage.String, Strs: vals}
}

func TestScanFilterNulls(t *testing.T) {
	c := intCol("k", 1, 2, 3, 4)
	c.Nulls = []bool{false, true, false, false}
	tab := storage.MustNewTable("t", c, fltCol("v", 1.5, 2.5, 3.5, 4.5))

	// k >= 2 with k NULL at row 1: NULL fails the predicate.
	scan := plan.NewTableScan(tab, []int{0, 1},
		expr.NewCmp(expr.Ge, expr.Col(0, "k", storage.Int64), expr.ConstInt(2)))
	res, err := Run(scan)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 2 {
		t.Fatalf("rows = %d, want 2", res.N)
	}
	if got := res.Cols[0].Ints; got[0] != 3 || got[1] != 4 {
		t.Fatalf("keys = %v, want [3 4]", got)
	}
}

func TestFloatConstTruncatesAgainstIntColumn(t *testing.T) {
	tab := storage.MustNewTable("t", intCol("k", 1, 2, 3))
	// k = 2.9 coerces to k = 2 (truncation toward zero), matching the
	// vectorized engine's constant coercion.
	scan := plan.NewTableScan(tab, []int{0},
		expr.NewCmp(expr.Eq, expr.Col(0, "k", storage.Int64), expr.ConstFloat(2.9)))
	res, err := Run(scan)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1 || res.Cols[0].Ints[0] != 2 {
		t.Fatalf("got %d rows %v, want the single row k=2", res.N, res.Cols[0].Ints)
	}
}

func TestJoinDuplicateKeysInsertionOrder(t *testing.T) {
	build := storage.MustNewTable("b", intCol("k", 1, 2, 1), strCol("s", "x", "y", "z"))
	probe := storage.MustNewTable("p", intCol("k", 1, 1))
	j := plan.NewHashJoin(
		plan.NewTableScan(build, []int{0, 1}),
		plan.NewTableScan(probe, []int{0}),
		[]int{0}, []int{0}, []int{1})
	res, err := Run(j)
	if err != nil {
		t.Fatal(err)
	}
	// Each probe row matches build rows 0 and 2 in insertion order.
	want := []string{"x", "z", "x", "z"}
	if res.N != 4 {
		t.Fatalf("rows = %d, want 4", res.N)
	}
	for i, w := range want {
		if res.Cols[1].Strs[i] != w {
			t.Fatalf("payload = %v, want %v", res.Cols[1].Strs, want)
		}
	}
}

func TestGroupByAggregateEdgeCases(t *testing.T) {
	tab := storage.MustNewTable("t",
		intCol("g", 1, 1, 2),
		fltCol("v", 2, 4, 10),
		strCol("s", "beta", "alpha", "gamma"))
	gb := plan.NewGroupBy(plan.NewTableScan(tab, []int{0, 1, 2}), []int{0},
		[]plan.Agg{
			{Fn: plan.AggAvg, Col: 1},
			{Fn: plan.AggMin, Col: 2},
			{Fn: plan.AggSum, Col: 2}, // SUM over a string column: 0
			{Fn: plan.AggCount},
		},
		[]string{"avg", "smin", "ssum", "cnt"})
	res, err := Run(gb)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 2 {
		t.Fatalf("groups = %d, want 2 (discovery order)", res.N)
	}
	if g := res.Cols[0].Ints; g[0] != 1 || g[1] != 2 {
		t.Fatalf("group keys = %v, want [1 2]", g)
	}
	if a := res.Cols[1].Flts; a[0] != 3 || a[1] != 10 {
		t.Fatalf("avg = %v, want [3 10]", a)
	}
	if m := res.Cols[2].Strs; m[0] != "alpha" || m[1] != "gamma" {
		t.Fatalf("string min = %v", m)
	}
	if s := res.Cols[3].Flts; s[0] != 0 || s[1] != 0 {
		t.Fatalf("sum over string = %v, want zeros", s)
	}
	if c := res.Cols[4].Ints; c[0] != 2 || c[1] != 1 {
		t.Fatalf("count = %v, want [2 1]", c)
	}
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	tab := storage.MustNewTable("t", intCol("k"), fltCol("v"))
	gb := plan.NewGroupBy(plan.NewTableScan(tab, []int{0, 1}), nil,
		[]plan.Agg{{Fn: plan.AggCount}, {Fn: plan.AggMin, Col: 1}, {Fn: plan.AggAvg, Col: 1}},
		[]string{"cnt", "min", "avg"})
	res, err := Run(gb)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1 {
		t.Fatalf("rows = %d, want 1 (global aggregate emits one row)", res.N)
	}
	if res.Cols[0].Ints[0] != 0 {
		t.Fatalf("count = %d, want 0", res.Cols[0].Ints[0])
	}
	// Empty MIN clamps +Inf to 0; empty AVG is 0.
	if v := res.Cols[1].Flts[0]; v != 0 || math.Signbit(v) {
		t.Fatalf("empty min = %v, want +0", v)
	}
	if v := res.Cols[2].Flts[0]; v != 0 {
		t.Fatalf("empty avg = %v, want 0", v)
	}
}

func TestSortStableWithShortDesc(t *testing.T) {
	tab := storage.MustNewTable("t", intCol("a", 2, 1, 2, 1), intCol("b", 10, 20, 30, 40))
	// desc covers only the first key; the second sorts ascending.
	s := plan.NewSort(plan.NewTableScan(tab, []int{0, 1}), []int{0, 1}, []bool{true})
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	wantA := []int64{2, 2, 1, 1}
	wantB := []int64{10, 30, 20, 40}
	for i := range wantA {
		if res.Cols[0].Ints[i] != wantA[i] || res.Cols[1].Ints[i] != wantB[i] {
			t.Fatalf("sorted = %v/%v, want %v/%v", res.Cols[0].Ints, res.Cols[1].Ints, wantA, wantB)
		}
	}
}

func TestWindowRankAndLimitZero(t *testing.T) {
	tab := storage.MustNewTable("t", intCol("p", 1, 1, 1, 2), intCol("o", 5, 5, 7, 9))
	w := plan.NewWindow(plan.NewTableScan(tab, []int{0, 1}), plan.WinRank, []int{0}, []int{1}, 0, "r")
	res, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	wantRank := []int64{1, 1, 3, 1}
	for i, want := range wantRank {
		if res.Cols[2].Ints[i] != want {
			t.Fatalf("rank = %v, want %v", res.Cols[2].Ints, wantRank)
		}
	}

	lim, err := Run(plan.NewLimit(w, 0))
	if err != nil {
		t.Fatal(err)
	}
	if lim.N != 0 {
		t.Fatalf("limit 0 produced %d rows", lim.N)
	}
}

func TestArithDivisionByZero(t *testing.T) {
	tab := storage.MustNewTable("t", fltCol("a", 6, 3), fltCol("b", 2, 0))
	m := plan.NewMap(plan.NewTableScan(tab, []int{0, 1}), []string{"q"},
		[]expr.ValueExpr{expr.NewArith(expr.Div,
			expr.Col(0, "a", storage.Float64), expr.Col(1, "b", storage.Float64))})
	res, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if q := res.Cols[2].Flts; q[0] != 3 || q[1] != 0 {
		t.Fatalf("quotients = %v, want [3 0] (division by zero yields 0)", q)
	}
}
