package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"t3/internal/engine/storage"
)

// batch3 builds a 5-row batch with int, float, and string columns.
func batch3() *Batch {
	return &Batch{
		N: 5,
		Cols: []storage.Column{
			{Name: "i", Kind: storage.Int64, Ints: []int64{1, 2, 3, 4, 5}},
			{Name: "f", Kind: storage.Float64, Flts: []float64{0.5, 1.5, 2.5, 3.5, 4.5}},
			{Name: "s", Kind: storage.String, Strs: []string{"apple", "banana", "cherry", "date", "apple"}},
		},
	}
}

// allTrue returns a fresh selection mask.
func allTrue(n int) []bool {
	s := make([]bool, n)
	for i := range s {
		s[i] = true
	}
	return s
}

// selCount counts selected rows.
func selCount(s []bool) int {
	n := 0
	for _, v := range s {
		if v {
			n++
		}
	}
	return n
}

func TestCmpAllOps(t *testing.T) {
	b := batch3()
	cases := []struct {
		op   CmpOp
		want int
	}{
		{Lt, 2}, {Le, 3}, {Eq, 1}, {Ge, 3}, {Gt, 2}, {Ne, 4},
	}
	for _, c := range cases {
		sel := allTrue(b.N)
		p := NewCmp(c.op, Col(0, "i", storage.Int64), ConstInt(3))
		evaluated := p.EvalBool(b, sel)
		if evaluated != 5 {
			t.Errorf("%v: evaluated %d, want 5", c.op, evaluated)
		}
		if got := selCount(sel); got != c.want {
			t.Errorf("i %v 3: selected %d, want %d", c.op, got, c.want)
		}
	}
}

func TestCmpFloatAndString(t *testing.T) {
	b := batch3()
	sel := allTrue(b.N)
	NewCmp(Gt, Col(1, "f", storage.Float64), ConstFloat(2)).EvalBool(b, sel)
	if got := selCount(sel); got != 3 {
		t.Errorf("f > 2: %d, want 3", got)
	}
	sel = allTrue(b.N)
	NewCmp(Eq, Col(2, "s", storage.String), ConstString("apple")).EvalBool(b, sel)
	if got := selCount(sel); got != 2 {
		t.Errorf("s = apple: %d, want 2", got)
	}
	// Mixed types: int column compared with float constant.
	sel = allTrue(b.N)
	NewCmp(Le, Col(0, "i", storage.Int64), ConstFloat(2.9)).EvalBool(b, sel)
	if got := selCount(sel); got != 2 {
		t.Errorf("i <= 2.9: %d, want 2 (constant truncates to 2)", got)
	}
}

func TestShortCircuitEvaluationCounts(t *testing.T) {
	b := batch3()
	sel := allTrue(b.N)
	// First predicate keeps 3 rows; second must only evaluate those 3.
	NewCmp(Ge, Col(0, "i", storage.Int64), ConstInt(3)).EvalBool(b, sel)
	evaluated := NewCmp(Lt, Col(0, "i", storage.Int64), ConstInt(5)).EvalBool(b, sel)
	if evaluated != 3 {
		t.Errorf("second predicate evaluated on %d rows, want 3", evaluated)
	}
	if got := selCount(sel); got != 2 {
		t.Errorf("conjunction selected %d, want 2", got)
	}
}

func TestBetween(t *testing.T) {
	b := batch3()
	sel := allTrue(b.N)
	NewBetween(Col(0, "i", storage.Int64), ConstInt(2), ConstInt(4)).EvalBool(b, sel)
	if got := selCount(sel); got != 3 {
		t.Errorf("between 2 and 4: %d, want 3", got)
	}
	sel = allTrue(b.N)
	NewBetween(Col(2, "s", storage.String), ConstString("b"), ConstString("d")).EvalBool(b, sel)
	if got := selCount(sel); got != 2 {
		t.Errorf("string between: %d, want 2 (banana, cherry)", got)
	}
}

func TestInList(t *testing.T) {
	b := batch3()
	sel := allTrue(b.N)
	NewInListInts(Col(0, "i", storage.Int64), []int64{1, 4, 9}).EvalBool(b, sel)
	if got := selCount(sel); got != 2 {
		t.Errorf("in (1,4,9): %d, want 2", got)
	}
	sel = allTrue(b.N)
	NewInListStrings(Col(2, "s", storage.String), []string{"apple", "date"}).EvalBool(b, sel)
	if got := selCount(sel); got != 3 {
		t.Errorf("in (apple,date): %d, want 3", got)
	}
	// IN over a float column is unsupported and selects nothing.
	sel = allTrue(b.N)
	NewInListInts(Col(1, "f", storage.Float64), []int64{1}).EvalBool(b, sel)
	if got := selCount(sel); got != 0 {
		t.Errorf("in over float: %d, want 0", got)
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"apple", "apple", true},
		{"apple", "app%", true},
		{"apple", "%ple", true},
		{"apple", "%pp%", true},
		{"apple", "a_ple", true},
		{"apple", "a_le", false},
		{"apple", "", false},
		{"", "", true},
		{"", "%", true},
		{"apple", "%", true},
		{"apple", "%%", true},
		{"apple", "b%", false},
		{"banana", "%an%", true},
		{"banana", "b_n_n_", true},
		{"banana", "%ana", true},
		{"aaa", "a%a", true},
		{"ab", "a%b%c", false},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.p); got != c.want {
			t.Errorf("MatchLike(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestMatchLikePropertyPrefixSuffix(t *testing.T) {
	f := func(s string) bool {
		if len(s) == 0 {
			return true
		}
		half := len(s) / 2
		return MatchLike(s, s[:half]+"%") && MatchLike(s, "%"+s[half:]) && MatchLike(s, "%")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLikeOnNonStringSelectsNothing(t *testing.T) {
	b := batch3()
	sel := allTrue(b.N)
	NewLike(Col(0, "i", storage.Int64), "%1%").EvalBool(b, sel)
	if got := selCount(sel); got != 0 {
		t.Errorf("like over int: %d, want 0", got)
	}
}

func TestColCmp(t *testing.T) {
	b := &Batch{
		N: 3,
		Cols: []storage.Column{
			{Name: "a", Kind: storage.Int64, Ints: []int64{1, 5, 3}},
			{Name: "b", Kind: storage.Int64, Ints: []int64{2, 5, 1}},
		},
	}
	sel := allTrue(b.N)
	NewColCmp(Eq, Col(0, "a", storage.Int64), Col(1, "b", storage.Int64)).EvalBool(b, sel)
	if got := selCount(sel); got != 1 {
		t.Errorf("a = b: %d, want 1", got)
	}
	sel = allTrue(b.N)
	NewColCmp(Lt, Col(0, "a", storage.Int64), Col(1, "b", storage.Int64)).EvalBool(b, sel)
	if got := selCount(sel); got != 1 {
		t.Errorf("a < b: %d, want 1", got)
	}
}

func TestArith(t *testing.T) {
	b := batch3()
	e := NewArith(Mul, Col(1, "f", storage.Float64),
		NewArith(Sub, ConstFloat(1), ConstFloat(0.5)))
	out := e.Eval(b)
	if out.Kind != storage.Float64 {
		t.Fatal("arith result should be float")
	}
	for i := 0; i < b.N; i++ {
		want := b.Cols[1].Flts[i] * 0.5
		if out.Flts[i] != want {
			t.Errorf("row %d: %v, want %v", i, out.Flts[i], want)
		}
	}
	// Division by zero yields zero, not a panic or Inf.
	d := NewArith(Div, ConstFloat(1), ConstFloat(0)).Eval(b)
	if d.Flts[0] != 0 {
		t.Errorf("1/0 = %v, want 0", d.Flts[0])
	}
	// Int column arithmetic promotes to float.
	s := NewArith(Add, Col(0, "i", storage.Int64), ConstInt(10)).Eval(b)
	if s.Flts[2] != 13 {
		t.Errorf("i+10 at row 2 = %v, want 13", s.Flts[2])
	}
}

func TestNullsFailPredicates(t *testing.T) {
	b := &Batch{
		N: 3,
		Cols: []storage.Column{
			{Name: "x", Kind: storage.Int64, Ints: []int64{1, 2, 3}, Nulls: []bool{false, true, false}},
		},
	}
	sel := allTrue(b.N)
	NewCmp(Ge, Col(0, "x", storage.Int64), ConstInt(0)).EvalBool(b, sel)
	if got := selCount(sel); got != 2 {
		t.Errorf("null row should fail predicate: selected %d", got)
	}
}

func TestPredicateClasses(t *testing.T) {
	ref := Col(0, "x", storage.Int64)
	cases := []struct {
		e    Expr
		want Class
	}{
		{NewCmp(Lt, ref, ConstInt(1)), ClassComparison},
		{NewBetween(ref, ConstInt(1), ConstInt(2)), ClassBetween},
		{NewInListInts(ref, []int64{1}), ClassIn},
		{NewLike(Col(0, "s", storage.String), "a%"), ClassLike},
		{NewColCmp(Eq, ref, ref), ClassOther},
		{NewArith(Add, ref, ref), ClassOther},
		{ConstInt(1), ClassOther},
		{ref, ClassOther},
	}
	for _, c := range cases {
		if got := c.e.Class(); got != c.want {
			t.Errorf("%s: class %v, want %v", c.e, got, c.want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	ref := Col(0, "price", storage.Float64)
	cases := []struct {
		e    Expr
		want string
	}{
		{NewCmp(Le, ref, ConstFloat(9.5)), "price <= 9.5"},
		{NewBetween(ref, ConstFloat(1), ConstFloat(2)), "price BETWEEN 1 AND 2"},
		{NewLike(Col(0, "s", storage.String), "a%"), `s LIKE "a%"`},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	in := NewInListInts(Col(0, "k", storage.Int64), []int64{8, 9})
	if s := in.String(); !strings.Contains(s, "IN (8, 9)") {
		t.Errorf("in-list rendering: %q", s)
	}
}

func TestConstEvalBroadcasts(t *testing.T) {
	b := batch3()
	for _, c := range []*Const{ConstInt(7), ConstFloat(1.25), ConstString("x")} {
		out := c.Eval(b)
		if out.Len() != b.N {
			t.Errorf("%v: broadcast length %d", c, out.Len())
		}
	}
}

func TestColRefEvalCopies(t *testing.T) {
	b := batch3()
	out := Col(0, "i", storage.Int64).Eval(b)
	out.Ints[0] = 999
	if b.Cols[0].Ints[0] == 999 {
		t.Fatal("ColRef.Eval must copy, not alias")
	}
}

func TestOrDisjunction(t *testing.T) {
	b := batch3()
	sel := allTrue(b.N)
	or := NewOr(
		NewCmp(Le, Col(0, "i", storage.Int64), ConstInt(1)),
		NewCmp(Ge, Col(0, "i", storage.Int64), ConstInt(5)),
	)
	evaluated := or.EvalBool(b, sel)
	if evaluated != 5 {
		t.Errorf("evaluated %d, want 5", evaluated)
	}
	if got := selCount(sel); got != 2 {
		t.Errorf("i<=1 OR i>=5: %d, want 2", got)
	}
	if or.Class() != ClassOther {
		t.Error("OR should classify as other")
	}
	if !strings.Contains(or.String(), " OR ") {
		t.Errorf("rendering: %q", or.String())
	}
	// OR under a prior selection: rows filtered out stay out.
	sel = allTrue(b.N)
	NewCmp(Ne, Col(0, "i", storage.Int64), ConstInt(5)).EvalBool(b, sel)
	or.EvalBool(b, sel)
	if got := selCount(sel); got != 1 {
		t.Errorf("masked OR: %d, want 1 (only i=1 remains)", got)
	}
}

func TestOrKindAndNesting(t *testing.T) {
	b := batch3()
	inner := NewOr(
		NewCmp(Eq, Col(0, "i", storage.Int64), ConstInt(1)),
		NewCmp(Eq, Col(0, "i", storage.Int64), ConstInt(2)),
	)
	outer := NewOr(inner, NewCmp(Eq, Col(0, "i", storage.Int64), ConstInt(3)))
	if outer.Kind() != storage.Int64 {
		t.Error("boolean kind should be Int64")
	}
	sel := allTrue(b.N)
	outer.EvalBool(b, sel)
	if got := selCount(sel); got != 3 {
		t.Errorf("nested OR: %d, want 3", got)
	}
}
