// Package expr implements scalar expressions evaluated over column batches.
//
// Expressions reference their inputs by column index into the batch that
// flows through a pipeline, so resolution happens once at plan-build time and
// evaluation is a tight loop over vectors. The expression kinds mirror the
// predicate classes T3 featurizes separately for table scans: simple
// comparisons, BETWEEN, IN lists, LIKE patterns, and everything else
// (arithmetic, boolean connectives).
package expr

import (
	"fmt"
	"strings"

	"t3/internal/engine/storage"
)

// Class is the predicate class used by T3's table-scan features (§3, "Table
// Scan Operators"): the featurizer records, per class, the percentage of
// tuples for which predicates of that class are evaluated.
type Class uint8

const (
	// ClassComparison covers simple binary comparisons against constants.
	ClassComparison Class = iota
	// ClassBetween covers BETWEEN lower AND upper range predicates.
	ClassBetween
	// ClassIn covers IN (v1, v2, ...) list membership predicates.
	ClassIn
	// ClassLike covers LIKE pattern predicates.
	ClassLike
	// ClassOther covers all remaining expression types.
	ClassOther
)

// String returns the name of the predicate class.
func (c Class) String() string {
	switch c {
	case ClassComparison:
		return "comparison"
	case ClassBetween:
		return "between"
	case ClassIn:
		return "in"
	case ClassLike:
		return "like"
	default:
		return "other"
	}
}

// NumClasses is the number of distinct predicate classes.
const NumClasses = 5

// Batch is a horizontal slice of rows flowing through a pipeline. Cols are
// equal-length vectors; N is the row count.
type Batch struct {
	Cols []storage.Column
	N    int
}

// Expr is a scalar expression.
type Expr interface {
	// Kind returns the result type of the expression.
	Kind() storage.Type
	// Class returns the predicate class for feature extraction.
	Class() Class
	// String renders the expression for debugging and plan explain output.
	String() string
}

// BoolExpr is an expression producing a boolean, evaluated into a selection
// mask. The mask is only written at positions where sel is true on input
// (conjunction short-circuit); rows already filtered out stay false.
type BoolExpr interface {
	Expr
	// EvalBool ANDs the predicate into sel: sel[i] stays true only if it was
	// true and the predicate holds for row i. It returns the number of rows
	// for which the predicate was actually evaluated (i.e. sel[i] was true
	// on entry), which the featurizer uses for percentage features.
	EvalBool(b *Batch, sel []bool) int
}

// ValueExpr is an expression producing a typed value vector.
type ValueExpr interface {
	Expr
	// Eval computes the expression for all rows of b into a fresh column.
	Eval(b *Batch) storage.Column
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	Lt CmpOp = iota
	Le
	Eq
	Ge
	Gt
	Ne
)

// String returns the SQL spelling of the operator.
func (o CmpOp) String() string {
	switch o {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Eq:
		return "="
	case Ge:
		return ">="
	case Gt:
		return ">"
	case Ne:
		return "<>"
	default:
		return "?"
	}
}

// ColRef references a column of the batch by index.
type ColRef struct {
	Idx  int
	Name string
	Typ  storage.Type
}

// Col constructs a column reference.
func Col(idx int, name string, typ storage.Type) *ColRef {
	return &ColRef{Idx: idx, Name: name, Typ: typ}
}

// Kind returns the column type.
func (c *ColRef) Kind() storage.Type { return c.Typ }

// Class classifies column references as "other".
func (c *ColRef) Class() Class { return ClassOther }

// String renders the reference.
func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("#%d", c.Idx)
}

// Eval copies out the referenced column.
func (c *ColRef) Eval(b *Batch) storage.Column {
	src := b.Cols[c.Idx]
	out := storage.Column{Name: c.Name, Kind: src.Kind}
	switch src.Kind {
	case storage.Int64:
		out.Ints = append([]int64(nil), src.Ints[:b.N]...)
	case storage.Float64:
		out.Flts = append([]float64(nil), src.Flts[:b.N]...)
	case storage.String:
		out.Strs = append([]string(nil), src.Strs[:b.N]...)
	}
	return out
}

// Const is a typed constant.
type Const struct {
	Typ storage.Type
	I   int64
	F   float64
	S   string
}

// ConstInt constructs an integer constant.
func ConstInt(v int64) *Const { return &Const{Typ: storage.Int64, I: v} }

// ConstFloat constructs a float constant.
func ConstFloat(v float64) *Const { return &Const{Typ: storage.Float64, F: v} }

// ConstString constructs a string constant.
func ConstString(v string) *Const { return &Const{Typ: storage.String, S: v} }

// Kind returns the constant's type.
func (c *Const) Kind() storage.Type { return c.Typ }

// Class classifies constants as "other".
func (c *Const) Class() Class { return ClassOther }

// String renders the constant.
func (c *Const) String() string {
	switch c.Typ {
	case storage.Int64:
		return fmt.Sprintf("%d", c.I)
	case storage.Float64:
		return fmt.Sprintf("%g", c.F)
	default:
		return fmt.Sprintf("%q", c.S)
	}
}

// Eval broadcasts the constant over all rows.
func (c *Const) Eval(b *Batch) storage.Column {
	out := storage.Column{Kind: c.Typ}
	switch c.Typ {
	case storage.Int64:
		out.Ints = make([]int64, b.N)
		for i := range out.Ints {
			out.Ints[i] = c.I
		}
	case storage.Float64:
		out.Flts = make([]float64, b.N)
		for i := range out.Flts {
			out.Flts[i] = c.F
		}
	case storage.String:
		out.Strs = make([]string, b.N)
		for i := range out.Strs {
			out.Strs[i] = c.S
		}
	}
	return out
}

// numAt reads row i of column c as float64 for mixed-type arithmetic.
func numAt(c *storage.Column, i int) float64 {
	switch c.Kind {
	case storage.Int64:
		return float64(c.Ints[i])
	case storage.Float64:
		return c.Flts[i]
	default:
		return 0
	}
}

// Cmp compares a column against a constant. This is the paper's "simple
// comparison" predicate class.
type Cmp struct {
	Op   CmpOp
	Left *ColRef
	Val  *Const
}

// NewCmp constructs a comparison predicate col OP val.
func NewCmp(op CmpOp, left *ColRef, val *Const) *Cmp {
	return &Cmp{Op: op, Left: left, Val: val}
}

// Kind returns Int64: booleans are not first-class column values here.
func (c *Cmp) Kind() storage.Type { return storage.Int64 }

// Class classifies as comparison.
func (c *Cmp) Class() Class { return ClassComparison }

// String renders the predicate.
func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Val)
}

func cmpInt(op CmpOp, a, b int64) bool {
	switch op {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Eq:
		return a == b
	case Ge:
		return a >= b
	case Gt:
		return a > b
	default:
		return a != b
	}
}

func cmpFloat(op CmpOp, a, b float64) bool {
	switch op {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Eq:
		return a == b
	case Ge:
		return a >= b
	case Gt:
		return a > b
	default:
		return a != b
	}
}

func cmpString(op CmpOp, a, b string) bool {
	switch op {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Eq:
		return a == b
	case Ge:
		return a >= b
	case Gt:
		return a > b
	default:
		return a != b
	}
}

// EvalBool applies the comparison, ANDing into sel.
func (c *Cmp) EvalBool(b *Batch, sel []bool) int {
	col := &b.Cols[c.Left.Idx]
	evaluated := 0
	switch col.Kind {
	case storage.Int64:
		v := c.Val.I
		if c.Val.Typ == storage.Float64 {
			v = int64(c.Val.F)
		}
		for i := 0; i < b.N; i++ {
			if !sel[i] {
				continue
			}
			evaluated++
			if col.IsNull(i) || !cmpInt(c.Op, col.Ints[i], v) {
				sel[i] = false
			}
		}
	case storage.Float64:
		v := c.Val.F
		if c.Val.Typ == storage.Int64 {
			v = float64(c.Val.I)
		}
		for i := 0; i < b.N; i++ {
			if !sel[i] {
				continue
			}
			evaluated++
			if col.IsNull(i) || !cmpFloat(c.Op, col.Flts[i], v) {
				sel[i] = false
			}
		}
	case storage.String:
		for i := 0; i < b.N; i++ {
			if !sel[i] {
				continue
			}
			evaluated++
			if col.IsNull(i) || !cmpString(c.Op, col.Strs[i], c.Val.S) {
				sel[i] = false
			}
		}
	}
	return evaluated
}

// Between is a range predicate lower <= col <= upper.
type Between struct {
	Col *ColRef
	Lo  *Const
	Hi  *Const
}

// NewBetween constructs a BETWEEN predicate.
func NewBetween(col *ColRef, lo, hi *Const) *Between {
	return &Between{Col: col, Lo: lo, Hi: hi}
}

// Kind returns Int64 (boolean result).
func (e *Between) Kind() storage.Type { return storage.Int64 }

// Class classifies as between.
func (e *Between) Class() Class { return ClassBetween }

// String renders the predicate.
func (e *Between) String() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", e.Col, e.Lo, e.Hi)
}

// EvalBool applies the range check, ANDing into sel.
func (e *Between) EvalBool(b *Batch, sel []bool) int {
	col := &b.Cols[e.Col.Idx]
	evaluated := 0
	switch col.Kind {
	case storage.Int64:
		lo, hi := e.Lo.I, e.Hi.I
		for i := 0; i < b.N; i++ {
			if !sel[i] {
				continue
			}
			evaluated++
			if col.IsNull(i) || col.Ints[i] < lo || col.Ints[i] > hi {
				sel[i] = false
			}
		}
	case storage.Float64:
		lo, hi := e.Lo.F, e.Hi.F
		for i := 0; i < b.N; i++ {
			if !sel[i] {
				continue
			}
			evaluated++
			if col.IsNull(i) || col.Flts[i] < lo || col.Flts[i] > hi {
				sel[i] = false
			}
		}
	case storage.String:
		lo, hi := e.Lo.S, e.Hi.S
		for i := 0; i < b.N; i++ {
			if !sel[i] {
				continue
			}
			evaluated++
			if col.IsNull(i) || col.Strs[i] < lo || col.Strs[i] > hi {
				sel[i] = false
			}
		}
	}
	return evaluated
}

// InList is a membership predicate col IN (v1, v2, ...). The paper's running
// example (TPC-H Q5 pipeline 5) shows Umbra rewriting dictionary joins to
// such IN expressions.
type InList struct {
	Col    *ColRef
	Ints   []int64
	Strs   []string
	intSet map[int64]struct{}
	strSet map[string]struct{}
}

// NewInListInts constructs an integer IN-list predicate.
func NewInListInts(col *ColRef, vals []int64) *InList {
	set := make(map[int64]struct{}, len(vals))
	for _, v := range vals {
		set[v] = struct{}{}
	}
	return &InList{Col: col, Ints: vals, intSet: set}
}

// NewInListStrings constructs a string IN-list predicate.
func NewInListStrings(col *ColRef, vals []string) *InList {
	set := make(map[string]struct{}, len(vals))
	for _, v := range vals {
		set[v] = struct{}{}
	}
	return &InList{Col: col, Strs: vals, strSet: set}
}

// Kind returns Int64 (boolean result).
func (e *InList) Kind() storage.Type { return storage.Int64 }

// Class classifies as in.
func (e *InList) Class() Class { return ClassIn }

// String renders the predicate.
func (e *InList) String() string {
	var parts []string
	for _, v := range e.Ints {
		parts = append(parts, fmt.Sprintf("%d", v))
	}
	for _, v := range e.Strs {
		parts = append(parts, fmt.Sprintf("%q", v))
	}
	return fmt.Sprintf("%s IN (%s)", e.Col, strings.Join(parts, ", "))
}

// EvalBool applies the membership check, ANDing into sel.
func (e *InList) EvalBool(b *Batch, sel []bool) int {
	col := &b.Cols[e.Col.Idx]
	evaluated := 0
	switch col.Kind {
	case storage.Int64:
		for i := 0; i < b.N; i++ {
			if !sel[i] {
				continue
			}
			evaluated++
			if col.IsNull(i) {
				sel[i] = false
				continue
			}
			if _, ok := e.intSet[col.Ints[i]]; !ok {
				sel[i] = false
			}
		}
	case storage.String:
		for i := 0; i < b.N; i++ {
			if !sel[i] {
				continue
			}
			evaluated++
			if col.IsNull(i) {
				sel[i] = false
				continue
			}
			if _, ok := e.strSet[col.Strs[i]]; !ok {
				sel[i] = false
			}
		}
	default:
		// IN over floats is unsupported by the generators; treat as all-false.
		for i := 0; i < b.N; i++ {
			if sel[i] {
				evaluated++
				sel[i] = false
			}
		}
	}
	return evaluated
}

// Like is a SQL LIKE pattern predicate over a string column. Patterns use %
// (any sequence) and _ (any single byte).
type Like struct {
	Col     *ColRef
	Pattern string
}

// NewLike constructs a LIKE predicate.
func NewLike(col *ColRef, pattern string) *Like {
	return &Like{Col: col, Pattern: pattern}
}

// Kind returns Int64 (boolean result).
func (e *Like) Kind() storage.Type { return storage.Int64 }

// Class classifies as like.
func (e *Like) Class() Class { return ClassLike }

// String renders the predicate.
func (e *Like) String() string {
	return fmt.Sprintf("%s LIKE %q", e.Col, e.Pattern)
}

// MatchLike reports whether s matches the LIKE pattern p.
func MatchLike(s, p string) bool {
	// Iterative matcher with backtracking over the last '%'.
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			match = si
			pi++
		case star != -1:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// EvalBool applies the pattern match, ANDing into sel.
func (e *Like) EvalBool(b *Batch, sel []bool) int {
	col := &b.Cols[e.Col.Idx]
	evaluated := 0
	if col.Kind != storage.String {
		for i := 0; i < b.N; i++ {
			if sel[i] {
				evaluated++
				sel[i] = false
			}
		}
		return evaluated
	}
	for i := 0; i < b.N; i++ {
		if !sel[i] {
			continue
		}
		evaluated++
		if col.IsNull(i) || !MatchLike(col.Strs[i], e.Pattern) {
			sel[i] = false
		}
	}
	return evaluated
}

// ColCmp compares two columns of the batch (used for non-equi predicates on
// joined pipelines; classified as "other").
type ColCmp struct {
	Op    CmpOp
	Left  *ColRef
	Right *ColRef
}

// NewColCmp constructs a column-column comparison.
func NewColCmp(op CmpOp, left, right *ColRef) *ColCmp {
	return &ColCmp{Op: op, Left: left, Right: right}
}

// Kind returns Int64 (boolean result).
func (e *ColCmp) Kind() storage.Type { return storage.Int64 }

// Class classifies as other.
func (e *ColCmp) Class() Class { return ClassOther }

// String renders the predicate.
func (e *ColCmp) String() string {
	return fmt.Sprintf("%s %s %s", e.Left, e.Op, e.Right)
}

// EvalBool applies the comparison, ANDing into sel.
func (e *ColCmp) EvalBool(b *Batch, sel []bool) int {
	l, r := &b.Cols[e.Left.Idx], &b.Cols[e.Right.Idx]
	evaluated := 0
	for i := 0; i < b.N; i++ {
		if !sel[i] {
			continue
		}
		evaluated++
		if l.IsNull(i) || r.IsNull(i) || !cmpFloat(e.Op, numAt(l, i), numAt(r, i)) {
			sel[i] = false
		}
	}
	return evaluated
}

// Or is a disjunction of two boolean predicates. It is classified as
// "other" for feature extraction.
type Or struct {
	Left, Right BoolExpr
}

// NewOr constructs a disjunction.
func NewOr(left, right BoolExpr) *Or { return &Or{Left: left, Right: right} }

// Kind returns Int64 (boolean result).
func (o *Or) Kind() storage.Type { return storage.Int64 }

// Class classifies as other.
func (o *Or) Class() Class { return ClassOther }

// String renders the disjunction.
func (o *Or) String() string { return fmt.Sprintf("(%s OR %s)", o.Left, o.Right) }

// EvalBool evaluates both branches against copies of the entry mask and
// keeps rows passing either.
func (o *Or) EvalBool(b *Batch, sel []bool) int {
	evaluated := 0
	for i := 0; i < b.N; i++ {
		if sel[i] {
			evaluated++
		}
	}
	left := append([]bool(nil), sel...)
	right := append([]bool(nil), sel...)
	o.Left.EvalBool(b, left)
	o.Right.EvalBool(b, right)
	for i := 0; i < b.N; i++ {
		sel[i] = left[i] || right[i]
	}
	return evaluated
}

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

// String returns the operator symbol.
func (o ArithOp) String() string {
	switch o {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	default:
		return "/"
	}
}

// Arith is a binary arithmetic expression over numeric operands; the result
// is always Float64. The paper's Q5 example computes
// l_extendedprice * (1 - l_discount) with such expressions.
type Arith struct {
	Op    ArithOp
	Left  ValueExpr
	Right ValueExpr
}

// NewArith constructs an arithmetic expression.
func NewArith(op ArithOp, left, right ValueExpr) *Arith {
	return &Arith{Op: op, Left: left, Right: right}
}

// Kind returns Float64.
func (e *Arith) Kind() storage.Type { return storage.Float64 }

// Class classifies as other.
func (e *Arith) Class() Class { return ClassOther }

// String renders the expression.
func (e *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}

// Eval computes the arithmetic expression vectorized.
func (e *Arith) Eval(b *Batch) storage.Column {
	l := e.Left.Eval(b)
	r := e.Right.Eval(b)
	out := storage.Column{Kind: storage.Float64, Flts: make([]float64, b.N)}
	for i := 0; i < b.N; i++ {
		a, c := numAt(&l, i), numAt(&r, i)
		switch e.Op {
		case Add:
			out.Flts[i] = a + c
		case Sub:
			out.Flts[i] = a - c
		case Mul:
			out.Flts[i] = a * c
		case Div:
			if c != 0 {
				out.Flts[i] = a / c
			}
		}
	}
	return out
}
