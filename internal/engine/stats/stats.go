// Package stats collects table statistics and estimates cardinalities for
// physical plans.
//
// T3 deliberately decouples performance prediction from cardinality
// estimation (§2.1): the model consumes whatever annotations the plan
// carries. This package provides the "estimated" flavour of those
// annotations — a textbook estimator with per-column histograms, distinct
// counts, and independence assumptions — plus a seeded distortion injector
// used to study accuracy under degrading estimates (Figure 12).
package stats

import (
	"math"
	"math/rand"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// histBuckets is the number of equi-width histogram buckets per numeric
// column.
const histBuckets = 64

// ColumnStats summarizes one column.
type ColumnStats struct {
	// Distinct is the exact number of distinct values.
	Distinct int
	// Min and Max bound numeric columns (as float64, ints converted).
	Min, Max float64
	// Hist is an equi-width histogram over [Min, Max] for numeric columns.
	Hist []int
	// SampleStrings holds a few distinct values of string columns, for
	// query generation.
	SampleStrings []string
}

// TableStats summarizes one table.
type TableStats struct {
	Rows int
	Cols []ColumnStats
}

// DBStats holds statistics for all tables of a database instance.
type DBStats struct {
	Tables map[string]*TableStats
}

// Collect computes statistics for a table.
func Collect(t *storage.Table) *TableStats {
	ts := &TableStats{Rows: t.NumRows(), Cols: make([]ColumnStats, len(t.Columns))}
	for ci := range t.Columns {
		col := &t.Columns[ci]
		cs := &ts.Cols[ci]
		switch col.Kind {
		case storage.Int64:
			seen := make(map[int64]struct{})
			mn, mx := math.Inf(1), math.Inf(-1)
			for _, v := range col.Ints {
				seen[v] = struct{}{}
				f := float64(v)
				if f < mn {
					mn = f
				}
				if f > mx {
					mx = f
				}
			}
			cs.Distinct = len(seen)
			cs.Min, cs.Max = mn, mx
			cs.Hist = buildHistInts(col.Ints, mn, mx)
		case storage.Float64:
			seen := make(map[float64]struct{})
			mn, mx := math.Inf(1), math.Inf(-1)
			for _, v := range col.Flts {
				seen[v] = struct{}{}
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			cs.Distinct = len(seen)
			cs.Min, cs.Max = mn, mx
			cs.Hist = buildHistFloats(col.Flts, mn, mx)
		case storage.String:
			seen := make(map[string]struct{})
			for _, v := range col.Strs {
				if _, ok := seen[v]; !ok {
					seen[v] = struct{}{}
					if len(cs.SampleStrings) < 32 {
						cs.SampleStrings = append(cs.SampleStrings, v)
					}
				}
			}
			cs.Distinct = len(seen)
		}
		if ts.Rows == 0 {
			cs.Min, cs.Max = 0, 0
		}
	}
	return ts
}

// CollectDB computes statistics for every table of a database.
func CollectDB(db *storage.Database) *DBStats {
	s := &DBStats{Tables: make(map[string]*TableStats, len(db.Tables))}
	for _, t := range db.Tables {
		s.Tables[t.Name] = Collect(t)
	}
	return s
}

func buildHistInts(vs []int64, mn, mx float64) []int {
	if len(vs) == 0 || mx <= mn {
		return nil
	}
	h := make([]int, histBuckets)
	w := (mx - mn) / histBuckets
	for _, v := range vs {
		b := int((float64(v) - mn) / w)
		if b >= histBuckets {
			b = histBuckets - 1
		}
		if b < 0 {
			b = 0
		}
		h[b]++
	}
	return h
}

func buildHistFloats(vs []float64, mn, mx float64) []int {
	if len(vs) == 0 || mx <= mn {
		return nil
	}
	h := make([]int, histBuckets)
	w := (mx - mn) / histBuckets
	for _, v := range vs {
		b := int((v - mn) / w)
		if b >= histBuckets {
			b = histBuckets - 1
		}
		if b < 0 {
			b = 0
		}
		h[b]++
	}
	return h
}

// rangeFraction estimates the fraction of values in [lo, hi] using the
// histogram with linear interpolation within buckets.
func (cs *ColumnStats) rangeFraction(lo, hi float64) float64 {
	if hi < lo || cs.Distinct == 0 {
		return 0
	}
	if cs.Hist == nil {
		// Degenerate column (constant): all values equal Min.
		if lo <= cs.Min && cs.Min <= hi {
			return 1
		}
		return 0
	}
	total := 0
	for _, c := range cs.Hist {
		total += c
	}
	if total == 0 {
		return 0
	}
	w := (cs.Max - cs.Min) / float64(len(cs.Hist))
	sum := 0.0
	for b, c := range cs.Hist {
		bLo := cs.Min + float64(b)*w
		bHi := bLo + w
		if b == len(cs.Hist)-1 {
			bHi = cs.Max
		}
		oLo := math.Max(lo, bLo)
		oHi := math.Min(hi, bHi)
		if oHi <= oLo {
			if oLo == oHi && oLo == bLo && bLo == bHi {
				sum += float64(c)
			}
			continue
		}
		frac := 1.0
		if bHi > bLo {
			frac = (oHi - oLo) / (bHi - bLo)
		}
		sum += float64(c) * frac
	}
	f := sum / float64(total)
	if f > 1 {
		f = 1
	}
	return f
}

// colProv tracks where an intermediate column came from, for distinct-count
// propagation through joins and aggregations.
type colProv struct {
	distinct float64
	stats    *ColumnStats // base-table stats, nil for computed columns
}

// Estimator fills the Est side of a plan's cardinality annotations.
type Estimator struct {
	DB *DBStats
}

// Estimate annotates root's OutCard.Est (and PredSel Est for scans)
// bottom-up, using independence assumptions and textbook formulas.
func (e *Estimator) Estimate(root *plan.Node) {
	e.estimate(root)
}

func (e *Estimator) estimate(n *plan.Node) []colProv {
	switch n.Op {
	case plan.TableScanOp:
		return e.estimateScan(n)
	case plan.FilterOp:
		prov := e.estimate(n.Left)
		sel := e.predSel(n.FilterPred, prov)
		n.OutCard.Est = n.Left.OutCard.Est * sel
		return capProv(prov, n.OutCard.Est)
	case plan.MapOp:
		prov := e.estimate(n.Left)
		n.OutCard.Est = n.Left.OutCard.Est
		if n.MapReplaces() {
			out := make([]colProv, 0, len(n.MapExprs))
			for _, ex := range n.MapExprs {
				if cr, ok := ex.(*expr.ColRef); ok {
					out = append(out, prov[cr.Idx])
				} else {
					out = append(out, colProv{distinct: n.OutCard.Est})
				}
			}
			return out
		}
		out := append([]colProv(nil), prov...)
		for range n.MapExprs {
			out = append(out, colProv{distinct: n.OutCard.Est})
		}
		return out
	case plan.HashJoinOp:
		bProv := e.estimate(n.Left)
		pProv := e.estimate(n.Right)
		l := n.Left.OutCard.Est
		r := n.Right.OutCard.Est
		dmax := 1.0
		for k := range n.BuildKeys {
			dl := math.Max(bProv[n.BuildKeys[k]].distinct, 1)
			dr := math.Max(pProv[n.ProbeKeys[k]].distinct, 1)
			dmax *= math.Max(dl, dr)
		}
		n.OutCard.Est = l * r / math.Max(dmax, 1)
		out := append([]colProv(nil), pProv...)
		for _, ci := range n.BuildPayload {
			out = append(out, bProv[ci])
		}
		return capProv(out, n.OutCard.Est)
	case plan.GroupByOp:
		prov := e.estimate(n.Left)
		in := n.Left.OutCard.Est
		if len(n.GroupCols) == 0 {
			n.OutCard.Est = 1
		} else {
			d := 1.0
			for _, ci := range n.GroupCols {
				d *= math.Max(prov[ci].distinct, 1)
			}
			n.OutCard.Est = math.Min(in, d)
		}
		out := make([]colProv, 0, len(n.Schema))
		for _, ci := range n.GroupCols {
			out = append(out, prov[ci])
		}
		for range n.Aggs {
			out = append(out, colProv{distinct: n.OutCard.Est})
		}
		return capProv(out, n.OutCard.Est)
	case plan.SortOp, plan.MaterializeOp:
		prov := e.estimate(n.Left)
		n.OutCard.Est = n.Left.OutCard.Est
		return prov
	case plan.WindowOp:
		prov := e.estimate(n.Left)
		n.OutCard.Est = n.Left.OutCard.Est
		return append(append([]colProv(nil), prov...), colProv{distinct: n.OutCard.Est})
	case plan.LimitOp:
		prov := e.estimate(n.Left)
		n.OutCard.Est = math.Min(n.Left.OutCard.Est, float64(n.LimitN))
		return capProv(prov, n.OutCard.Est)
	default:
		return nil
	}
}

// capProv limits distinct counts to the stream cardinality.
func capProv(prov []colProv, card float64) []colProv {
	out := make([]colProv, len(prov))
	for i, p := range prov {
		out[i] = p
		if out[i].distinct > card {
			out[i].distinct = card
		}
	}
	return out
}

func (e *Estimator) estimateScan(n *plan.Node) []colProv {
	ts := e.DB.Tables[n.TableName]
	prov := make([]colProv, len(n.ScanCols))
	for i, ci := range n.ScanCols {
		var cs *ColumnStats
		d := 1.0
		if ts != nil && ci < len(ts.Cols) {
			cs = &ts.Cols[ci]
			d = float64(cs.Distinct)
		}
		prov[i] = colProv{distinct: d, stats: cs}
	}
	card := n.ScanCard
	for i, pred := range n.Predicates {
		sel := e.predSel(pred, prov)
		n.PredSel[i].Est = sel
		card *= sel
	}
	n.OutCard.Est = card
	return capProv(prov, card)
}

// predSel estimates the selectivity of one predicate given column
// provenance.
func (e *Estimator) predSel(p expr.BoolExpr, prov []colProv) float64 {
	switch q := p.(type) {
	case *expr.Cmp:
		cs := prov[q.Left.Idx].stats
		d := math.Max(prov[q.Left.Idx].distinct, 1)
		v := constVal(q.Val)
		switch q.Op {
		case expr.Eq:
			return clampSel(1 / d)
		case expr.Ne:
			return clampSel(1 - 1/d)
		case expr.Lt, expr.Le:
			if cs != nil {
				return clampSel(cs.rangeFraction(math.Inf(-1), v))
			}
			return 1.0 / 3
		default: // Gt, Ge
			if cs != nil {
				return clampSel(cs.rangeFraction(v, math.Inf(1)))
			}
			return 1.0 / 3
		}
	case *expr.Between:
		cs := prov[q.Col.Idx].stats
		if cs != nil {
			return clampSel(cs.rangeFraction(constVal(q.Lo), constVal(q.Hi)))
		}
		return 0.25
	case *expr.InList:
		d := math.Max(prov[q.Col.Idx].distinct, 1)
		k := float64(len(q.Ints) + len(q.Strs))
		return clampSel(k / d)
	case *expr.Like:
		// Heuristic: selectivity decays with the number of literal
		// characters in the pattern.
		lit := 0
		for i := 0; i < len(q.Pattern); i++ {
			if q.Pattern[i] != '%' && q.Pattern[i] != '_' {
				lit++
			}
		}
		return clampSel(math.Pow(2, -float64(lit)/2))
	case *expr.ColCmp:
		if q.Op == expr.Eq {
			d := math.Max(math.Max(prov[q.Left.Idx].distinct, prov[q.Right.Idx].distinct), 1)
			return clampSel(1 / d)
		}
		return 1.0 / 3
	default:
		return 1.0 / 3
	}
}

func constVal(c *expr.Const) float64 {
	if c.Typ == storage.Int64 {
		return float64(c.I)
	}
	return c.F
}

func clampSel(s float64) float64 {
	if math.IsNaN(s) || s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// CopyTrueToEst sets every Est annotation to the measured True value —
// the paper's "perfect cardinalities" configuration.
func CopyTrueToEst(root *plan.Node) {
	root.Walk(func(n *plan.Node) {
		n.OutCard.Est = n.OutCard.True
		for i := range n.PredSel {
			n.PredSel[i].Est = n.PredSel[i].True
		}
	})
}

// SnapshotEst captures all Est annotations of a plan so experiments that
// overwrite them (e.g. the distortion sweep) can restore the originals.
func SnapshotEst(root *plan.Node) []float64 {
	var snap []float64
	root.Walk(func(n *plan.Node) {
		snap = append(snap, n.OutCard.Est)
		for i := range n.PredSel {
			snap = append(snap, n.PredSel[i].Est)
		}
	})
	return snap
}

// RestoreEst writes back a snapshot taken by SnapshotEst.
func RestoreEst(root *plan.Node, snap []float64) {
	i := 0
	root.Walk(func(n *plan.Node) {
		n.OutCard.Est = snap[i]
		i++
		for k := range n.PredSel {
			n.PredSel[k].Est = snap[i]
			i++
		}
	})
}

// Distort overwrites every Est annotation with the True value multiplied by
// a log-uniform random factor in [1/factor, factor] (factor ≥ 1). With
// factor = 1 this equals CopyTrueToEst. Used for the degradation sweep of
// Figure 12.
func Distort(root *plan.Node, factor float64, seed int64) {
	if factor < 1 {
		factor = 1
	}
	rng := rand.New(rand.NewSource(seed))
	lf := math.Log(factor)
	root.Walk(func(n *plan.Node) {
		u := rng.Float64()*2 - 1
		n.OutCard.Est = n.OutCard.True * math.Exp(u*lf)
		for i := range n.PredSel {
			// Selectivities stay within [0, 1].
			v := rng.Float64()*2 - 1
			s := n.PredSel[i].True * math.Exp(v*lf)
			n.PredSel[i].Est = clampSel(s)
		}
	})
}
