package stats

import (
	"math"
	"testing"
	"testing/quick"

	"t3/internal/engine/exec"
	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// uniformTable builds a table with a uniform int column [0,1000), a float
// column, and a 10-word string column.
func uniformTable(n int) *storage.Table {
	ids := make([]int64, n)
	vals := make([]int64, n)
	fs := make([]float64, n)
	ws := make([]string, n)
	words := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh", "ii", "jj"}
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		vals[i] = int64(i % 1000)
		fs[i] = float64(i%500) / 2
		ws[i] = words[i%len(words)]
	}
	return storage.MustNewTable("t",
		storage.Column{Name: "id", Kind: storage.Int64, Ints: ids},
		storage.Column{Name: "val", Kind: storage.Int64, Ints: vals},
		storage.Column{Name: "f", Kind: storage.Float64, Flts: fs},
		storage.Column{Name: "w", Kind: storage.String, Strs: ws},
	)
}

func TestCollect(t *testing.T) {
	tab := uniformTable(10000)
	ts := Collect(tab)
	if ts.Rows != 10000 {
		t.Fatalf("rows = %d", ts.Rows)
	}
	if ts.Cols[0].Distinct != 10000 {
		t.Errorf("id distinct = %d", ts.Cols[0].Distinct)
	}
	if ts.Cols[1].Distinct != 1000 {
		t.Errorf("val distinct = %d", ts.Cols[1].Distinct)
	}
	if ts.Cols[1].Min != 0 || ts.Cols[1].Max != 999 {
		t.Errorf("val range [%v,%v]", ts.Cols[1].Min, ts.Cols[1].Max)
	}
	if ts.Cols[3].Distinct != 10 {
		t.Errorf("w distinct = %d", ts.Cols[3].Distinct)
	}
	if len(ts.Cols[3].SampleStrings) != 10 {
		t.Errorf("w samples = %d", len(ts.Cols[3].SampleStrings))
	}
}

func TestRangeFraction(t *testing.T) {
	tab := uniformTable(10000)
	cs := &Collect(tab).Cols[1] // val uniform [0,999]
	cases := []struct {
		lo, hi, want, tol float64
	}{
		{0, 999, 1, 0.01},
		{0, 499, 0.5, 0.05},
		{900, 999, 0.1, 0.05},
		{math.Inf(-1), 250, 0.25, 0.05},
		{1500, 2000, 0, 0.001},
		{500, 400, 0, 0},
	}
	for _, c := range cases {
		got := cs.rangeFraction(c.lo, c.hi)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("rangeFraction(%v, %v) = %v, want %v±%v", c.lo, c.hi, got, c.want, c.tol)
		}
	}
}

func TestRangeFractionBounds(t *testing.T) {
	tab := uniformTable(3000)
	cs := &Collect(tab).Cols[2]
	f := func(a, b float64) bool {
		lo := math.Mod(math.Abs(a), 300)
		hi := lo + math.Mod(math.Abs(b), 300)
		v := cs.rangeFraction(lo, hi)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// estimateSel estimates then measures a predicate's selectivity and returns
// both.
func estimateSel(t *testing.T, tab *storage.Table, pred expr.BoolExpr) (est, actual float64) {
	t.Helper()
	scan := plan.NewTableScan(tab, []int{0, 1, 2, 3}, pred)
	db := storage.MustNewDatabase("db", tab)
	e := &Estimator{DB: CollectDB(db)}
	e.Estimate(scan)
	if err := exec.AnnotateTrueCards(plan.NewMaterialize(scan)); err != nil {
		t.Fatal(err)
	}
	return scan.OutCard.Est / scan.ScanCard, scan.OutCard.True / scan.ScanCard
}

func TestEstimatorPredicateClasses(t *testing.T) {
	tab := uniformTable(10000)
	cases := []struct {
		name string
		pred expr.BoolExpr
		tol  float64
	}{
		{"lt", expr.NewCmp(expr.Lt, expr.Col(1, "val", storage.Int64), expr.ConstInt(300)), 0.05},
		{"ge", expr.NewCmp(expr.Ge, expr.Col(1, "val", storage.Int64), expr.ConstInt(800)), 0.05},
		{"eq", expr.NewCmp(expr.Eq, expr.Col(3, "w", storage.String), expr.ConstString("aa")), 0.02},
		{"between", expr.NewBetween(expr.Col(1, "val", storage.Int64), expr.ConstInt(100), expr.ConstInt(199)), 0.05},
		{"in", expr.NewInListInts(expr.Col(1, "val", storage.Int64), []int64{1, 2, 3, 4, 5}), 0.01},
	}
	for _, c := range cases {
		est, actual := estimateSel(t, tab, c.pred)
		if math.Abs(est-actual) > c.tol {
			t.Errorf("%s: estimated %v, actual %v", c.name, est, actual)
		}
	}
}

func TestEstimatorJoin(t *testing.T) {
	// FK join: child 20000 rows referencing 500 parents uniformly.
	n, parents := 20000, 500
	fk := make([]int64, n)
	for i := range fk {
		fk[i] = int64(i % parents)
	}
	child := storage.MustNewTable("child",
		storage.Column{Name: "fk", Kind: storage.Int64, Ints: fk})
	pids := make([]int64, parents)
	for i := range pids {
		pids[i] = int64(i)
	}
	parent := storage.MustNewTable("parent",
		storage.Column{Name: "id", Kind: storage.Int64, Ints: pids})
	db := storage.MustNewDatabase("db", child, parent)

	ps := plan.NewTableScan(parent, []int{0})
	cs := plan.NewTableScan(child, []int{0})
	join := plan.NewHashJoin(ps, cs, []int{0}, []int{0}, nil)
	e := &Estimator{DB: CollectDB(db)}
	e.Estimate(join)
	// |child| x |parent| / max(d_fk, d_id) = 20000*500/500 = 20000.
	if math.Abs(join.OutCard.Est-20000) > 1 {
		t.Errorf("join estimate = %v, want 20000", join.OutCard.Est)
	}
	if err := exec.AnnotateTrueCards(plan.NewMaterialize(join)); err != nil {
		t.Fatal(err)
	}
	if join.OutCard.True != 20000 {
		t.Errorf("join actual = %v", join.OutCard.True)
	}
}

func TestEstimatorGroupBy(t *testing.T) {
	tab := uniformTable(10000)
	scan := plan.NewTableScan(tab, []int{1, 3})
	gb := plan.NewGroupBy(scan, []int{1}, []plan.Agg{{Fn: plan.AggCount}}, []string{"c"})
	db := storage.MustNewDatabase("db", tab)
	e := &Estimator{DB: CollectDB(db)}
	e.Estimate(gb)
	if gb.OutCard.Est != 10 {
		t.Errorf("group-by estimate = %v, want 10 (distinct words)", gb.OutCard.Est)
	}

	global := plan.NewGroupBy(plan.NewTableScan(tab, []int{1}), nil, []plan.Agg{{Fn: plan.AggCount}}, []string{"c"})
	e.Estimate(global)
	if global.OutCard.Est != 1 {
		t.Errorf("global aggregate estimate = %v, want 1", global.OutCard.Est)
	}
}

func TestEstimatorLimitAndPassThrough(t *testing.T) {
	tab := uniformTable(5000)
	db := storage.MustNewDatabase("db", tab)
	e := &Estimator{DB: CollectDB(db)}

	scan := plan.NewTableScan(tab, []int{0})
	lim := plan.NewLimit(scan, 10)
	e.Estimate(lim)
	if lim.OutCard.Est != 10 {
		t.Errorf("limit estimate = %v", lim.OutCard.Est)
	}

	srt := plan.NewSort(plan.NewTableScan(tab, []int{0}), []int{0}, []bool{false})
	e.Estimate(srt)
	if srt.OutCard.Est != 5000 {
		t.Errorf("sort estimate = %v", srt.OutCard.Est)
	}
}

func TestSnapshotRestoreEst(t *testing.T) {
	tab := uniformTable(2000)
	scan := plan.NewTableScan(tab, []int{0, 1},
		expr.NewCmp(expr.Lt, expr.Col(1, "val", storage.Int64), expr.ConstInt(100)))
	gb := plan.NewGroupBy(scan, []int{1}, []plan.Agg{{Fn: plan.AggCount}}, []string{"c"})
	db := storage.MustNewDatabase("db", tab)
	e := &Estimator{DB: CollectDB(db)}
	e.Estimate(gb)
	if err := exec.AnnotateTrueCards(gb); err != nil {
		t.Fatal(err)
	}

	snap := SnapshotEst(gb)
	Distort(gb, 50, 3)
	if gb.OutCard.Est == snap[len(snap)-1] && scan.OutCard.Est == snap[0] {
		t.Log("distortion may coincide; checking restore anyway")
	}
	RestoreEst(gb, snap)
	if got := SnapshotEst(gb); len(got) != len(snap) {
		t.Fatal("snapshot size changed")
	} else {
		for i := range got {
			if got[i] != snap[i] {
				t.Fatalf("entry %d: %v != %v after restore", i, got[i], snap[i])
			}
		}
	}
}

func TestDistortDeterministic(t *testing.T) {
	tab := uniformTable(1000)
	scan := plan.NewTableScan(tab, []int{0})
	mat := plan.NewMaterialize(scan)
	if err := exec.AnnotateTrueCards(mat); err != nil {
		t.Fatal(err)
	}
	Distort(mat, 100, 42)
	a := SnapshotEst(mat)
	Distort(mat, 100, 42)
	b := SnapshotEst(mat)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("distortion not deterministic at %d", i)
		}
	}
}

func TestClampSel(t *testing.T) {
	if clampSel(math.NaN()) != 0 {
		t.Error("NaN should clamp to 0")
	}
	if clampSel(-0.5) != 0 {
		t.Error("negative should clamp to 0")
	}
	if clampSel(1.5) != 1 {
		t.Error("over 1 should clamp to 1")
	}
	if clampSel(0.3) != 0.3 {
		t.Error("valid selectivity should pass through")
	}
}

func TestEmptyTableStats(t *testing.T) {
	empty := storage.MustNewTable("e",
		storage.Column{Name: "x", Kind: storage.Int64, Ints: []int64{}})
	ts := Collect(empty)
	if ts.Rows != 0 || ts.Cols[0].Distinct != 0 {
		t.Errorf("empty table stats: %+v", ts)
	}
	if ts.Cols[0].rangeFraction(0, 10) != 0 {
		t.Error("range fraction on empty column should be 0")
	}
}
