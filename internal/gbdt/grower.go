package gbdt

import (
	"math/rand"

	"t3/internal/par"
)

// leafCand is a tree leaf that may still be split.
type leafCand struct {
	lo, hi     int // row range in the grower's index partition
	sumG, sumH float64
	parent     int32 // index of the parent internal node, -1 for the root
	isLeft     bool
	// hist holds the candidate's feature histograms; nil when the candidate
	// is too small to split (histograms are never built for it).
	hist *histSet

	bestGain float64
	bestFeat int
	bestBin  uint8
	bestLG   float64 // left-side gradient sums of the best split
	bestLH   float64
	bestLC   int
}

// histSet is one leaf candidate's per-feature histograms, stored as flat
// arrays of totBins entries addressed by the grower's featOff layout. Keeping
// whole sets alive per candidate (instead of one shared per-feature scratch)
// is what enables the histogram-subtraction trick: a split's larger child
// derives its set as parent − smaller child in O(bins) instead of rescanning
// its rows in O(rows).
type histSet struct {
	g []float64
	h []float64
	c []int32
}

// featSplit is the best split one feature offers for a leaf candidate.
type featSplit struct {
	gain   float64
	feat   int
	bin    uint8
	lg, lh float64
	lc     int
}

// minParallelRows is the smallest leaf for which per-feature histogram
// construction fans out across the pool; below it, task-dispatch overhead
// dominates the histogram work.
const minParallelRows = 2048

// grower grows one tree per boosting round, reusing its buffers.
type grower struct {
	td   *trainData
	bnr  *binner
	p    Params
	rng  *rand.Rand
	pool *par.Pool

	idx  []int32 // row partition
	tmp  []int32 // partition scratch
	feat []int   // features considered for the current tree

	// Histogram layout: feature f's bins live at [featOff[f],
	// featOff[f]+numBins(f)) in every histSet's flat arrays.
	featOff []int
	totBins int

	// sets is the histSet arena, reset (cursor only, buffers kept) at the
	// start of every grow. Each split retires the parent's set to one child
	// and draws at most one fresh set for the other, so the arena never
	// holds more than NumLeaves+1 sets.
	sets  []*histSet
	nsets int

	// featBest collects each feature's candidate split, indexed by position
	// in feat, so the cross-feature reduction can run in fixed order.
	featBest []featSplit

	// nodeBins mirrors tree.Nodes with the split bin, letting training
	// predict on binned rows without keeping raw feature values.
	nodeBins []uint8
}

func newGrower(td *trainData, bnr *binner, p Params, rng *rand.Rand, pool *par.Pool) *grower {
	g := &grower{td: td, bnr: bnr, p: p, rng: rng, pool: pool}
	g.idx = make([]int32, td.n)
	g.tmp = make([]int32, td.n)
	g.featOff = make([]int, td.f)
	for f := 0; f < td.f; f++ {
		g.featOff[f] = g.totBins
		g.totBins += bnr.numBins(f)
	}
	g.featBest = make([]featSplit, td.f)
	return g
}

// newHistSet draws the next set from the arena, allocating flat buffers only
// the first time each slot is used across the grower's lifetime.
func (gr *grower) newHistSet() *histSet {
	if gr.nsets == len(gr.sets) {
		gr.sets = append(gr.sets, &histSet{
			g: make([]float64, gr.totBins),
			h: make([]float64, gr.totBins),
			c: make([]int32, gr.totBins),
		})
	}
	hs := gr.sets[gr.nsets]
	gr.nsets++
	return hs
}

// grow fits one tree to the gradient pair (grad, hess).
func (gr *grower) grow(grad, hess []float64) *Tree {
	p := gr.p
	td := gr.td
	gr.nsets = 0 // recycle the histogram arena from the previous tree

	// Row bagging.
	n := td.n
	if p.BaggingFraction < 1 {
		n = int(float64(td.n) * p.BaggingFraction)
		if n < 1 {
			n = 1
		}
		perm := gr.rng.Perm(td.n)
		for i := 0; i < n; i++ {
			gr.idx[i] = int32(perm[i])
		}
	} else {
		for i := 0; i < td.n; i++ {
			gr.idx[i] = int32(i)
		}
	}

	// Feature sampling.
	gr.feat = gr.feat[:0]
	if p.FeatureFraction < 1 {
		k := int(float64(td.f) * p.FeatureFraction)
		if k < 1 {
			k = 1
		}
		perm := gr.rng.Perm(td.f)
		for _, f := range perm[:k] {
			gr.feat = append(gr.feat, f)
		}
	} else {
		for f := 0; f < td.f; f++ {
			gr.feat = append(gr.feat, f)
		}
	}

	tree := &Tree{}
	gr.nodeBins = gr.nodeBins[:0]
	minSplit := 2 * p.MinDataInLeaf

	root := &leafCand{lo: 0, hi: n, parent: -1}
	// Root gradient sums: fixed-size chunks folded in order, so the
	// floating-point result is identical for every worker count.
	rs := par.MapReduce(gr.pool, n, rowChunk, func(lo, hi int) [2]float64 {
		var g, h float64
		for i := lo; i < hi; i++ {
			r := gr.idx[i]
			g += grad[r]
			h += hess[r]
		}
		return [2]float64{g, h}
	}, func(a, b [2]float64) [2]float64 {
		return [2]float64{a[0] + b[0], a[1] + b[1]}
	}, [2]float64{})
	root.sumG, root.sumH = rs[0], rs[1]
	// The root is always built by a row scan; subtraction needs a parent.
	if n >= minSplit {
		root.hist = gr.newHistSet()
		gr.buildHist(root, grad, hess)
	}
	gr.findBestSplit(root)

	cands := []*leafCand{root}
	for len(cands) < p.NumLeaves {
		// Pick the candidate with the highest gain (leaf-wise growth).
		best := -1
		for i, c := range cands {
			if c.bestGain > 0 && (best < 0 || c.bestGain > cands[best].bestGain) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		c := cands[best]

		// Materialize the internal node.
		nodeIdx := int32(len(tree.Nodes))
		tree.Nodes = append(tree.Nodes, Node{
			Feature:   int32(c.bestFeat),
			Threshold: gr.bnr.threshold(c.bestFeat, c.bestBin),
		})
		gr.nodeBins = append(gr.nodeBins, c.bestBin)
		gr.patchParent(tree, c, nodeIdx)

		// Partition rows: bin <= bestBin goes left (stable).
		mid := gr.partition(c.lo, c.hi, c.bestFeat, c.bestBin)

		left := &leafCand{lo: c.lo, hi: mid, sumG: c.bestLG, sumH: c.bestLH, parent: nodeIdx, isLeft: true}
		right := &leafCand{lo: mid, hi: c.hi, sumG: c.sumG - c.bestLG, sumH: c.sumH - c.bestLH, parent: nodeIdx}

		small, large := left, right
		if right.hi-right.lo < left.hi-left.lo {
			small, large = right, left
		}
		if !p.NoHistSubtraction && large.hi-large.lo >= minSplit {
			// Histogram subtraction: scan only the smaller child's rows,
			// then derive the larger child's histograms in place as
			// parent − smaller, reusing the parent's buffers.
			small.hist = gr.newHistSet()
			gr.buildHist(small, grad, hess)
			gr.subtractHist(c.hist, small.hist)
			large.hist = c.hist
			if small.hi-small.lo < minSplit {
				// Too small to ever split; its histogram only fed the
				// subtraction.
				small.hist = nil
			}
		} else {
			// Rescan each splittable child directly. The first reuses the
			// parent's buffers (rebuilt from zero), so this path allocates
			// exactly like — and computes bit-identically to — the
			// pre-subtraction algorithm.
			avail := c.hist
			for _, ch := range [2]*leafCand{left, right} {
				if ch.hi-ch.lo < minSplit {
					continue
				}
				if avail != nil {
					ch.hist, avail = avail, nil
				} else {
					ch.hist = gr.newHistSet()
				}
				gr.buildHist(ch, grad, hess)
			}
		}
		c.hist = nil

		gr.findBestSplit(left)
		gr.findBestSplit(right)

		cands[best] = left
		cands = append(cands, right)
	}

	// Remaining candidates become leaves.
	for _, c := range cands {
		leafIdx := int32(len(tree.Leaves))
		w := -c.sumG / (c.sumH + gr.p.Lambda) * gr.p.LearningRate
		tree.Leaves = append(tree.Leaves, w)
		if c.parent < 0 {
			// Single-leaf tree.
			continue
		}
		ref := int32(^leafIdx)
		if c.isLeft {
			tree.Nodes[c.parent].Left = ref
		} else {
			tree.Nodes[c.parent].Right = ref
		}
	}
	return tree
}

// patchParent wires the freshly created internal node into its parent.
func (gr *grower) patchParent(tree *Tree, c *leafCand, nodeIdx int32) {
	if c.parent < 0 {
		return
	}
	if c.isLeft {
		tree.Nodes[c.parent].Left = nodeIdx
	} else {
		tree.Nodes[c.parent].Right = nodeIdx
	}
}

// partition stably reorders idx[lo:hi] so rows with bin ≤ b come first and
// returns the boundary.
func (gr *grower) partition(lo, hi, f int, b uint8) int {
	bins := gr.td.bins[f]
	w := lo
	t := 0
	for i := lo; i < hi; i++ {
		r := gr.idx[i]
		if bins[r] <= b {
			gr.idx[w] = r
			w++
		} else {
			gr.tmp[t] = r
			t++
		}
	}
	copy(gr.idx[w:hi], gr.tmp[:t])
	return w
}

// buildHist fills the candidate's histograms by scanning its rows, one
// sampled feature per task (features are independent, each writing only its
// own slice of the flat buffers).
func (gr *grower) buildHist(c *leafCand, grad, hess []float64) {
	pool := gr.pool
	if c.hi-c.lo < minParallelRows {
		pool = nil // leaf too small: run the feature scans inline
	}
	hs := c.hist
	pool.Do(len(gr.feat), func(fi int) {
		f := gr.feat[fi]
		nb := gr.bnr.numBins(f)
		if nb < 2 {
			return // constant feature: never splittable, never scanned
		}
		off := gr.featOff[f]
		hg := hs.g[off : off+nb]
		hh := hs.h[off : off+nb]
		hc := hs.c[off : off+nb]
		for b := 0; b < nb; b++ {
			hg[b], hh[b], hc[b] = 0, 0, 0
		}
		bins := gr.td.bins[f]
		for i := c.lo; i < c.hi; i++ {
			r := gr.idx[i]
			b := bins[r]
			hg[b] += grad[r]
			hh[b] += hess[r]
			hc[b]++
		}
	})
}

// subtractHist turns parent's histograms into the sibling's in place:
// parent −= small over every sampled feature's bin range. O(totBins) —
// cheap enough to stay inline on the growing goroutine.
func (gr *grower) subtractHist(parent, small *histSet) {
	for _, f := range gr.feat {
		nb := gr.bnr.numBins(f)
		if nb < 2 {
			continue
		}
		off := gr.featOff[f]
		for b := off; b < off+nb; b++ {
			parent.g[b] -= small.g[b]
			parent.h[b] -= small.h[b]
			parent.c[b] -= small.c[b]
		}
	}
}

// findBestSplit fills the candidate's best split fields from its histograms:
// every considered feature proposes its best split in parallel, and the
// cross-feature winner is then reduced sequentially in feature order — the
// same tie-breaking the serial scan had, for any worker count. A candidate
// without histograms (too small to split) keeps gain 0.
func (gr *grower) findBestSplit(c *leafCand) {
	c.bestGain = 0
	if c.hist == nil {
		return
	}
	parentScore := c.sumG * c.sumG / (c.sumH + gr.p.Lambda)

	pool := gr.pool
	if c.hi-c.lo < minParallelRows {
		pool = nil // leaf too small: run the split scans inline
	}
	best := gr.featBest[:len(gr.feat)]
	pool.Do(len(gr.feat), func(fi int) {
		best[fi] = gr.scanHist(gr.feat[fi], c, parentScore)
	})
	for _, fb := range best {
		if fb.gain > c.bestGain {
			c.bestGain = fb.gain
			c.bestFeat = fb.feat
			c.bestBin = fb.bin
			c.bestLG, c.bestLH, c.bestLC = fb.lg, fb.lh, fb.lc
		}
	}
}

// scanHist walks feature f's histogram in the candidate's set and returns
// the best split the feature offers (gain 0 if none).
func (gr *grower) scanHist(f int, c *leafCand, parentScore float64) featSplit {
	best := featSplit{feat: f}
	nb := gr.bnr.numBins(f)
	if nb < 2 {
		return best
	}
	count := c.hi - c.lo
	lambda := gr.p.Lambda
	off := gr.featOff[f]
	hg := c.hist.g[off : off+nb]
	hh := c.hist.h[off : off+nb]
	hc := c.hist.c[off : off+nb]
	var lg, lh float64
	var lc int
	// Split on "bin ≤ b" for b in [0, nb-2].
	for b := 0; b < nb-1; b++ {
		lg += hg[b]
		lh += hh[b]
		lc += int(hc[b])
		if lc < gr.p.MinDataInLeaf {
			continue
		}
		rc := count - lc
		if rc < gr.p.MinDataInLeaf {
			break
		}
		rg := c.sumG - lg
		rh := c.sumH - lh
		gain := lg*lg/(lh+lambda) + rg*rg/(rh+lambda) - parentScore
		if gain > best.gain {
			best.gain = gain
			best.bin = uint8(b)
			best.lg, best.lh, best.lc = lg, lh, lc
		}
	}
	return best
}

// predictBinned evaluates the freshly grown tree for training row r using
// binned features (valid until the next grow call).
func (gr *grower) predictBinned(tree *Tree, r int) float64 {
	if len(tree.Nodes) == 0 {
		return tree.Leaves[0]
	}
	i := int32(0)
	for {
		n := &tree.Nodes[i]
		if gr.td.bins[n.Feature][r] <= gr.nodeBins[i] {
			i = n.Left
		} else {
			i = n.Right
		}
		if i < 0 {
			return tree.Leaves[^i]
		}
	}
}
