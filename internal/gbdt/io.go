package gbdt

import (
	"encoding/json"
	"fmt"
	"os"
)

// MarshalJSON-based persistence: models serialize to a self-contained JSON
// document (thresholds are real values, so no binner state is needed for
// prediction).

// Save writes the model as JSON to path.
func (m *Model) Save(path string) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("gbdt: marshal model: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("gbdt: write model: %w", err)
	}
	return nil
}

// Load reads a model saved by Save.
func Load(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gbdt: read model: %w", err)
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("gbdt: parse model %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("gbdt: invalid model %s: %w", path, err)
	}
	return &m, nil
}

// Validate checks structural integrity of the model: child references in
// range, every leaf reachable, features within bounds.
func (m *Model) Validate() error {
	if m.NumFeatures <= 0 {
		return fmt.Errorf("NumFeatures = %d", m.NumFeatures)
	}
	for ti := range m.Trees {
		t := &m.Trees[ti]
		if len(t.Nodes) == 0 {
			if len(t.Leaves) != 1 {
				return fmt.Errorf("tree %d: no nodes but %d leaves", ti, len(t.Leaves))
			}
			continue
		}
		if len(t.Leaves) != len(t.Nodes)+1 {
			return fmt.Errorf("tree %d: %d nodes with %d leaves, want %d", ti, len(t.Nodes), len(t.Leaves), len(t.Nodes)+1)
		}
		for ni, n := range t.Nodes {
			if n.Feature < 0 || int(n.Feature) >= m.NumFeatures {
				return fmt.Errorf("tree %d node %d: feature %d out of range", ti, ni, n.Feature)
			}
			for _, c := range [2]int32{n.Left, n.Right} {
				if c >= 0 {
					if int(c) >= len(t.Nodes) {
						return fmt.Errorf("tree %d node %d: child %d out of range", ti, ni, c)
					}
					if c <= int32(ni) {
						return fmt.Errorf("tree %d node %d: non-forward child %d", ti, ni, c)
					}
				} else if int(^c) >= len(t.Leaves) {
					return fmt.Errorf("tree %d node %d: leaf %d out of range", ti, ni, ^c)
				}
			}
		}
	}
	return nil
}
