package gbdt

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// synth generates a nonlinear regression problem with interactions, similar
// in spirit to per-tuple cost surfaces (plateaus and jumps).
func synth(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64(), float64(rng.Intn(5)), rng.Float64() * 1000}
		y := 2.0
		if x[0] > 5 {
			y += 3
		}
		y += x[1] * 2
		if x[2] >= 3 && x[0] < 2 {
			y -= 4
		}
		y += math.Log1p(x[3]) * 0.5
		xs[i] = x
		ys[i] = y
	}
	return xs, ys
}

func TestTrainReducesLoss(t *testing.T) {
	xs, ys := synth(4000, 1)
	p := DefaultParams()
	p.NumRounds = 60
	p.Objective = ObjectiveL2
	p.Seed = 7
	m, res, err := Train(p, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainLoss) != 60 {
		t.Fatalf("rounds = %d", len(res.TrainLoss))
	}
	if res.TrainLoss[59] >= res.TrainLoss[0]*0.2 {
		t.Errorf("training barely improved: %v -> %v", res.TrainLoss[0], res.TrainLoss[59])
	}
	// Held-out accuracy.
	tx, ty := synth(1000, 2)
	mse := 0.0
	for i, x := range tx {
		d := m.Predict(x) - ty[i]
		mse += d * d
	}
	mse /= float64(len(tx))
	if mse > 0.1 {
		t.Errorf("test MSE = %v, want < 0.1", mse)
	}
}

func TestMAPEObjective(t *testing.T) {
	xs, ys := synth(3000, 3)
	p := DefaultParams()
	p.NumRounds = 80
	p.Objective = ObjectiveMAPE
	m, _, err := Train(p, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, ty := synth(500, 4)
	mape := 0.0
	for i, x := range tx {
		mape += math.Abs(m.Predict(x)-ty[i]) / math.Max(math.Abs(ty[i]), 1)
	}
	mape /= float64(len(tx))
	if mape > 0.08 {
		t.Errorf("test MAPE = %v, want < 0.08", mape)
	}
}

func TestConstantTargetGivesBaseScore(t *testing.T) {
	xs := make([][]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = []float64{float64(i), float64(i % 3)}
		ys[i] = 42
	}
	p := DefaultParams()
	p.NumRounds = 5
	p.ValidationFraction = 0
	m, _, err := Train(p, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{3, 1}); math.Abs(got-42) > 1e-9 {
		t.Errorf("constant prediction = %v, want 42", got)
	}
}

func TestEarlyStopping(t *testing.T) {
	xs, ys := synth(2000, 5)
	p := DefaultParams()
	p.NumRounds = 200
	p.EarlyStoppingRounds = 5
	p.Objective = ObjectiveL2
	m, res, err := Train(p, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trees) == 200 && m.BestIteration == 200 {
		t.Skip("no early stop triggered; acceptable but unusual")
	}
	if m.BestIteration > len(res.ValLoss) {
		t.Errorf("best iteration %d beyond %d rounds", m.BestIteration, len(res.ValLoss))
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	xs, ys := synth(1000, 6)
	p := DefaultParams()
	p.NumRounds = 20
	m, _, err := Train(p, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		x := xs[i]
		if a, b := m.Predict(x), m2.Predict(x); a != b {
			t.Fatalf("prediction diverged after roundtrip: %v vs %v", a, b)
		}
	}
}

func TestLoadRejectsCorruptModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"num_features":2,"trees":[{"nodes":[{"f":9,"t":1,"l":-1,"r":-2}],"leaves":[1,2]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("expected validation error for out-of-range feature")
	}
}

func TestValidateDetectsBadLeafCount(t *testing.T) {
	m := &Model{NumFeatures: 1, Trees: []Tree{{Nodes: []Node{{Feature: 0, Left: -1, Right: -2}}, Leaves: []float64{1}}}}
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for mismatched leaf count")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, _, err := Train(DefaultParams(), nil, nil, nil, nil); err == nil {
		t.Error("empty training set should fail")
	}
	p := DefaultParams()
	p.NumLeaves = 1
	if _, _, err := Train(p, [][]float64{{1}}, []float64{1}, nil, nil); err == nil {
		t.Error("NumLeaves=1 should fail")
	}
	p = DefaultParams()
	p.MaxBins = 1000
	if _, _, err := Train(p, [][]float64{{1}}, []float64{1}, nil, nil); err == nil {
		t.Error("MaxBins=1000 should fail")
	}
	if _, _, err := Train(DefaultParams(), [][]float64{{1}, {2}}, []float64{1}, nil, nil); err == nil {
		t.Error("row/target mismatch should fail")
	}
}

func TestDeterministicTraining(t *testing.T) {
	xs, ys := synth(1500, 8)
	p := DefaultParams()
	p.NumRounds = 15
	p.Seed = 99
	m1, _, err := Train(p, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Train(p, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if a, b := m1.Predict(xs[i]), m2.Predict(xs[i]); a != b {
			t.Fatalf("same seed, different models at row %d: %v vs %v", i, a, b)
		}
	}
}

func TestBinnerMonotonic(t *testing.T) {
	xs, _ := synth(2000, 9)
	b := newBinner(nil, xs, 4, 64)
	// Property: binning preserves order.
	f := func(a, c float64) bool {
		a = math.Mod(math.Abs(a), 10)
		c = math.Mod(math.Abs(c), 10)
		if a > c {
			a, c = c, a
		}
		return b.bin(0, a) <= b.bin(0, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinnerThresholdConsistent(t *testing.T) {
	xs, _ := synth(500, 10)
	b := newBinner(nil, xs, 4, 32)
	// Property: for any value and any bin edge, v <= threshold(bin) iff
	// bin(v) <= bin. This is what makes real-valued tree thresholds
	// equivalent to binned splits.
	for f := 0; f < 4; f++ {
		for bin := 0; bin < b.numBins(f)-1; bin++ {
			thr := b.threshold(f, uint8(bin))
			for _, x := range xs[:200] {
				v := x[f]
				if (v <= thr) != (b.bin(f, v) <= uint8(bin)) {
					t.Fatalf("feature %d bin %d thr %v: inconsistent for v=%v (bin %d)", f, bin, thr, v, b.bin(f, v))
				}
			}
		}
	}
}

func TestFeatureImportanceAndNumNodes(t *testing.T) {
	xs, ys := synth(2000, 11)
	p := DefaultParams()
	p.NumRounds = 10
	m, _, err := Train(p, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportance()
	total := 0
	for _, c := range imp {
		total += c
	}
	if total != m.NumNodes() {
		t.Errorf("importance sum %d != node count %d", total, m.NumNodes())
	}
	if m.NumNodes() == 0 {
		t.Error("model learned no splits")
	}
}

func TestBaggingAndFeatureFraction(t *testing.T) {
	xs, ys := synth(3000, 12)
	p := DefaultParams()
	p.NumRounds = 40
	p.BaggingFraction = 0.7
	p.FeatureFraction = 0.75
	p.Objective = ObjectiveL2
	m, _, err := Train(p, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, ty := synth(500, 13)
	mse := 0.0
	for i, x := range tx {
		d := m.Predict(x) - ty[i]
		mse += d * d
	}
	mse /= float64(len(tx))
	if mse > 0.5 {
		t.Errorf("bagged model test MSE = %v", mse)
	}
}
