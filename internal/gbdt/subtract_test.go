package gbdt

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// dyadicGrads fills grad/hess with values of the form k/4 — exactly
// representable in float64, so every histogram sum and every
// parent − child subtraction is exact floating-point arithmetic. Under such
// gradients the subtraction path must reproduce the scan path bit for bit.
func dyadicGrads(rng *rand.Rand, grad, hess []float64) {
	for i := range grad {
		grad[i] = float64(rng.Intn(65))/4 - 8 // k/4 in [-8, 8]
		hess[i] = float64(rng.Intn(8)+1) / 4  // k/4 in (0, 2]
	}
}

// growBoth grows `rounds` trees twice from identical state — once per
// NoHistSubtraction setting — and hands each pair to check.
func growBoth(t *testing.T, rounds int, check func(round int, sub, scan *Tree)) {
	t.Helper()
	xs, _ := synth(3000, 5)
	ys := make([]float64, len(xs))
	p := DefaultParams()
	p.NumLeaves = 31
	p.MinDataInLeaf = 5
	// Exercise the rng-driven sampling paths too: both growers draw the
	// same bagging and feature permutations from identically seeded rngs.
	p.BaggingFraction = 0.7
	p.FeatureFraction = 0.8
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	bnr := newBinner(nil, xs, len(xs[0]), p.MaxBins)
	td := newTrainData(nil, bnr, xs, ys)

	pSub, pScan := p, p
	pSub.NoHistSubtraction = false
	pScan.NoHistSubtraction = true
	sub := newGrower(td, bnr, pSub, rand.New(rand.NewSource(11)), nil)
	scan := newGrower(td, bnr, pScan, rand.New(rand.NewSource(11)), nil)

	grng := rand.New(rand.NewSource(99))
	grad := make([]float64, td.n)
	hess := make([]float64, td.n)
	for round := 0; round < rounds; round++ {
		dyadicGrads(grng, grad, hess)
		check(round, sub.grow(grad, hess), scan.grow(grad, hess))
	}
}

// requireTreesBitIdentical compares two trees down to the float bits of
// thresholds and leaf weights.
func requireTreesBitIdentical(t *testing.T, round int, a, b *Tree) {
	t.Helper()
	if len(a.Nodes) != len(b.Nodes) || len(a.Leaves) != len(b.Leaves) {
		t.Fatalf("round %d: shape differs: %d/%d nodes, %d/%d leaves",
			round, len(a.Nodes), len(b.Nodes), len(a.Leaves), len(b.Leaves))
	}
	for i := range a.Nodes {
		an, bn := a.Nodes[i], b.Nodes[i]
		if an.Feature != bn.Feature || an.Left != bn.Left || an.Right != bn.Right ||
			math.Float64bits(an.Threshold) != math.Float64bits(bn.Threshold) {
			t.Fatalf("round %d: node %d differs: %+v vs %+v", round, i, an, bn)
		}
	}
	for i := range a.Leaves {
		if math.Float64bits(a.Leaves[i]) != math.Float64bits(b.Leaves[i]) {
			t.Fatalf("round %d: leaf %d differs: %v vs %v", round, i, a.Leaves[i], b.Leaves[i])
		}
	}
}

// TestHistSubtractionBitIdenticalDyadic grows many trees under exactly
// representable gradients and asserts the subtraction path and the
// scan-everything path produce bit-identical trees: with exact sums, deriving
// the larger child as parent − smaller is the same arithmetic as rescanning.
func TestHistSubtractionBitIdenticalDyadic(t *testing.T) {
	growBoth(t, 10, func(round int, sub, scan *Tree) {
		requireTreesBitIdentical(t, round, sub, scan)
		if round == 0 && len(sub.Nodes) < 5 {
			t.Fatalf("degenerate tree (%d nodes); test exercises nothing", len(sub.Nodes))
		}
	})
}

// TestHistSubtractionBitIdenticalTrain asserts full-model bit identity
// through the public Train path. One boosting round over 2^k rows with
// dyadic targets keeps every gradient, the base score, and all histogram
// sums exact, so the serialized models must match byte for byte.
func TestHistSubtractionBitIdenticalTrain(t *testing.T) {
	const n = 2048 // power of two: the base-score mean stays exact
	rng := rand.New(rand.NewSource(17))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64() * 10, rng.Float64(), float64(rng.Intn(7))}
		ys[i] = float64(rng.Intn(129)) / 4 // dyadic targets in [0, 32]
	}
	train := func(noSub bool) []byte {
		p := DefaultParams()
		p.NumRounds = 1
		p.Objective = ObjectiveL2
		p.Seed = 3
		p.MinDataInLeaf = 5
		p.ValidationFraction = 0 // keep all 2^k rows: the mean stays exact
		p.NoHistSubtraction = noSub
		m, _, err := Train(p, xs, ys, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	withSub, withoutSub := train(false), train(true)
	if !bytes.Equal(withSub, withoutSub) {
		t.Fatal("models differ between subtraction and scan paths under exact gradients")
	}
}

// TestHistSubtractionFullTrainingAgrees compares complete multi-round
// training runs with arbitrary (non-dyadic) gradients. Subtraction can round
// differently in the last ulp, so this checks the models agree functionally:
// held-out predictions match to within a tight relative tolerance.
func TestHistSubtractionFullTrainingAgrees(t *testing.T) {
	xs, ys := synth(3000, 8)
	train := func(noSub bool) *Model {
		p := DefaultParams()
		p.NumRounds = 40
		p.Objective = ObjectiveL2
		p.Seed = 9
		p.NoHistSubtraction = noSub
		m, _, err := Train(p, xs, ys, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	withSub, withoutSub := train(false), train(true)
	tx, _ := synth(500, 10)
	for i, x := range tx {
		a, b := withSub.Predict(x), withoutSub.Predict(x)
		if d := math.Abs(a - b); d > 1e-9*(1+math.Abs(b)) {
			t.Fatalf("row %d: predictions diverge: %v vs %v (diff %v)", i, a, b, d)
		}
	}
}
