package gbdt

import (
	"bytes"
	"encoding/json"
	"testing"
)

// trainJSON trains on a fixed synthetic problem with the given worker count
// and returns the serialized model.
func trainJSON(t *testing.T, workers int) []byte {
	t.Helper()
	xs, ys := synth(3000, 21)
	p := DefaultParams()
	p.NumRounds = 25
	p.Seed = 42
	p.Workers = workers
	// Exercise every rng-driven and every parallelized path: bagging,
	// feature sampling, validation split, early-stopping bookkeeping.
	p.BaggingFraction = 0.8
	p.FeatureFraction = 0.75
	p.EarlyStoppingRounds = 50
	m, _, err := Train(p, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestParallelTrainingIsDeterministic(t *testing.T) {
	serial := trainJSON(t, 1)
	for _, workers := range []int{2, 3, 8} {
		if got := trainJSON(t, workers); !bytes.Equal(got, serial) {
			t.Errorf("workers=%d model differs from workers=1 model (%d vs %d bytes)",
				workers, len(got), len(serial))
		}
	}
}

func TestWorkersExcludedFromSerialization(t *testing.T) {
	p := DefaultParams()
	p.Workers = 8
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("Workers")) {
		t.Errorf("Workers leaked into serialized params: %s", data)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	if err := (Params{}).Validate(); err == nil {
		t.Error("zero params should be invalid")
	}
	bad := []func(*Params){
		func(p *Params) { p.NumRounds = 0 },
		func(p *Params) { p.NumLeaves = 1 },
		func(p *Params) { p.MaxBins = 1 },
		func(p *Params) { p.MaxBins = 256 },
		func(p *Params) { p.LearningRate = 0 },
		func(p *Params) { p.LearningRate = -1 },
		func(p *Params) { p.MinDataInLeaf = 0 },
		func(p *Params) { p.Lambda = -0.1 },
		func(p *Params) { p.ValidationFraction = 1 },
		func(p *Params) { p.ValidationFraction = -0.1 },
		func(p *Params) { p.EarlyStoppingRounds = -1 },
		func(p *Params) { p.FeatureFraction = 0 },
		func(p *Params) { p.FeatureFraction = 1.5 },
		func(p *Params) { p.BaggingFraction = 0 },
		func(p *Params) { p.Workers = -1 },
		func(p *Params) { p.Objective = "huber" },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params %+v accepted", i, p)
		}
		if _, _, err := Train(p, [][]float64{{1}, {2}}, []float64{1, 2}, nil, nil); err == nil {
			t.Errorf("case %d: Train accepted invalid params", i)
		}
	}
}

func TestTrainWithExplicitWorkers(t *testing.T) {
	xs, ys := synth(500, 30)
	p := DefaultParams()
	p.NumRounds = 5
	p.Workers = 4
	p.ValidationFraction = 0
	m, _, err := Train(p, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trees) != 5 {
		t.Fatalf("trained %d trees, want 5", len(m.Trees))
	}
}
