// Package gbdt implements histogram-based gradient-boosted regression trees
// from scratch — the stand-in for LightGBM in the paper (§2.3, §2.5).
//
// Features are quantile-binned into at most 256 bins. Trees are grown
// leaf-wise (best-first) like LightGBM: the leaf with the highest split gain
// is expanded until the leaf budget is exhausted. Split gain and leaf values
// follow the standard second-order formulation
//
//	gain = G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ),  w = −G/(H+λ)
//
// Supported objectives are L2 and MAPE; the paper trains with the MAPE
// objective on −log-transformed per-tuple times (§2.4, §2.5).
package gbdt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"t3/internal/obs"
	"t3/internal/par"
)

// Objective selects the training loss.
type Objective string

// Objectives.
const (
	// ObjectiveL2 is squared error.
	ObjectiveL2 Objective = "l2"
	// ObjectiveMAPE is mean absolute percentage error, as used by the paper.
	ObjectiveMAPE Objective = "mape"
)

// Params configures training. The zero value is invalid; use
// DefaultParams, which mirrors the paper's setup (200 trees with roughly 30
// leaves each).
type Params struct {
	// NumRounds is the number of boosting iterations (trees).
	NumRounds int
	// NumLeaves is the maximum number of leaves per tree.
	NumLeaves int
	// LearningRate shrinks each tree's contribution.
	LearningRate float64
	// MinDataInLeaf is the minimum number of samples per leaf.
	MinDataInLeaf int
	// Lambda is the L2 regularization on leaf values.
	Lambda float64
	// MaxBins caps the number of histogram bins per feature (≤ 256).
	MaxBins int
	// Objective is the training loss.
	Objective Objective
	// ValidationFraction is the share of training data held out for early
	// stopping when Train is called without an explicit validation set
	// (the paper samples 20%).
	ValidationFraction float64
	// EarlyStoppingRounds stops training when the validation loss has not
	// improved for this many rounds (0 disables early stopping).
	EarlyStoppingRounds int
	// FeatureFraction subsamples features per tree (1 = use all).
	FeatureFraction float64
	// BaggingFraction subsamples rows per tree (1 = use all).
	BaggingFraction float64
	// Seed drives all random sampling during training.
	Seed int64
	// Workers is the number of parallel workers used while training
	// (0 = GOMAXPROCS). Training is bit-for-bit deterministic for a fixed
	// Seed regardless of the worker count, so Workers is an execution
	// detail, not a model property — it is excluded from serialization.
	Workers int `json:"-"`
	// NoHistSubtraction disables the histogram-subtraction optimization
	// (deriving the larger child's histograms as parent − smaller child)
	// and rebuilds every child histogram by scanning rows. Both paths grow
	// the same trees up to floating-point rounding in the subtraction; this
	// switch exists for A/B benchmarks and equivalence tests, so like
	// Workers it is an execution detail excluded from serialization.
	NoHistSubtraction bool `json:"-"`
}

// Validate reports whether the parameters can train a model. The zero Params
// value is invalid; start from DefaultParams.
func (p Params) Validate() error {
	switch {
	case p.NumRounds < 1:
		return fmt.Errorf("gbdt: NumRounds must be >= 1, got %d", p.NumRounds)
	case p.NumLeaves < 2:
		return fmt.Errorf("gbdt: NumLeaves must be >= 2, got %d", p.NumLeaves)
	case p.MaxBins < 2 || p.MaxBins > 255:
		return fmt.Errorf("gbdt: MaxBins must be in [2,255], got %d", p.MaxBins)
	case p.LearningRate <= 0:
		return fmt.Errorf("gbdt: LearningRate must be > 0, got %v", p.LearningRate)
	case p.MinDataInLeaf < 1:
		return fmt.Errorf("gbdt: MinDataInLeaf must be >= 1, got %d", p.MinDataInLeaf)
	case p.Lambda < 0:
		return fmt.Errorf("gbdt: Lambda must be >= 0, got %v", p.Lambda)
	case p.ValidationFraction < 0 || p.ValidationFraction >= 1:
		return fmt.Errorf("gbdt: ValidationFraction must be in [0,1), got %v", p.ValidationFraction)
	case p.EarlyStoppingRounds < 0:
		return fmt.Errorf("gbdt: EarlyStoppingRounds must be >= 0, got %d", p.EarlyStoppingRounds)
	case p.FeatureFraction <= 0 || p.FeatureFraction > 1:
		return fmt.Errorf("gbdt: FeatureFraction must be in (0,1], got %v", p.FeatureFraction)
	case p.BaggingFraction <= 0 || p.BaggingFraction > 1:
		return fmt.Errorf("gbdt: BaggingFraction must be in (0,1], got %v", p.BaggingFraction)
	case p.Workers < 0:
		return fmt.Errorf("gbdt: Workers must be >= 0, got %d", p.Workers)
	}
	switch p.Objective {
	case ObjectiveL2, ObjectiveMAPE, "":
	default:
		return fmt.Errorf("gbdt: unknown objective %q", p.Objective)
	}
	return nil
}

// DefaultParams returns the configuration used throughout the paper: 200
// trees, ~30 leaves, MAPE objective, 20% validation sample.
func DefaultParams() Params {
	return Params{
		NumRounds:           200,
		NumLeaves:           31,
		LearningRate:        0.1,
		MinDataInLeaf:       20,
		Lambda:              1.0,
		MaxBins:             255,
		Objective:           ObjectiveMAPE,
		ValidationFraction:  0.2,
		EarlyStoppingRounds: 0,
		FeatureFraction:     1.0,
		BaggingFraction:     1.0,
	}
}

// Node is an internal decision node. Children indices ≥ 0 refer to Nodes;
// negative indices c refer to leaf ^c in Leaves.
type Node struct {
	Feature   int32   `json:"f"`
	Threshold float64 `json:"t"`
	Left      int32   `json:"l"`
	Right     int32   `json:"r"`
}

// Tree is one regression tree. An empty Nodes slice means the tree is a
// single leaf (Leaves[0]).
type Tree struct {
	Nodes  []Node    `json:"nodes"`
	Leaves []float64 `json:"leaves"`
}

// Predict evaluates the tree for one feature vector by walking the nodes —
// the interpreted evaluation strategy of Figure 3.
func (t *Tree) Predict(v []float64) float64 {
	if len(t.Nodes) == 0 {
		return t.Leaves[0]
	}
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if v[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
		if i < 0 {
			return t.Leaves[^i]
		}
	}
}

// NumLeaves returns the number of leaves of the tree.
func (t *Tree) NumLeaves() int { return len(t.Leaves) }

// Model is a trained ensemble.
type Model struct {
	// BaseScore is the initial prediction all trees correct.
	BaseScore float64 `json:"base_score"`
	// Trees are the boosted trees; predictions are BaseScore plus the sum of
	// (already learning-rate-scaled) leaf values.
	Trees []Tree `json:"trees"`
	// NumFeatures is the expected feature-vector length.
	NumFeatures int `json:"num_features"`
	// FeatureNames optionally labels the features (for importances).
	FeatureNames []string `json:"feature_names,omitempty"`
	// Params records the training configuration.
	Params Params `json:"params"`
	// BestIteration is the early-stopping round, or len(Trees).
	BestIteration int `json:"best_iteration"`
}

// Predict evaluates the full ensemble for one vector (interpreted).
func (m *Model) Predict(v []float64) float64 {
	s := m.BaseScore
	for i := range m.Trees {
		s += m.Trees[i].Predict(v)
	}
	return s
}

// PredictBatch evaluates the ensemble for many vectors.
func (m *Model) PredictBatch(vs [][]float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = m.Predict(v)
	}
	return out
}

// NumNodes returns the total number of internal nodes across all trees.
func (m *Model) NumNodes() int {
	n := 0
	for i := range m.Trees {
		n += len(m.Trees[i].Nodes)
	}
	return n
}

// FeatureImportance returns, per feature, the number of splits using it.
func (m *Model) FeatureImportance() []int {
	imp := make([]int, m.NumFeatures)
	for i := range m.Trees {
		for _, n := range m.Trees[i].Nodes {
			imp[n.Feature]++
		}
	}
	return imp
}

// binner quantile-bins features.
type binner struct {
	// edges[f] are ascending cut values; bin b covers (edges[b-1], edges[b]],
	// with bin len(edges) covering everything above the last edge.
	edges [][]float64
}

// newBinner computes per-feature quantile cut points from the data. Features
// are independent, so cut-point computation fans out across the pool.
func newBinner(pool *par.Pool, xs [][]float64, numFeatures, maxBins int) *binner {
	b := &binner{edges: make([][]float64, numFeatures)}
	pool.Do(numFeatures, func(f int) {
		vals := make([]float64, 0, len(xs))
		for _, x := range xs {
			vals = append(vals, x[f])
		}
		sort.Float64s(vals)
		// Distinct values.
		distinct := vals[:0:0]
		for i, v := range vals {
			if i == 0 || v != vals[i-1] {
				distinct = append(distinct, v)
			}
		}
		var edges []float64
		if len(distinct) <= maxBins {
			// One bin per distinct value: edges are the values themselves,
			// except the last (everything above the second-to-last edge
			// falls into the final bin).
			if len(distinct) > 1 {
				edges = append(edges, distinct[:len(distinct)-1]...)
			}
		} else {
			// Quantile cut points over distinct values.
			for i := 1; i < maxBins; i++ {
				q := distinct[i*len(distinct)/maxBins]
				if len(edges) == 0 || q > edges[len(edges)-1] {
					edges = append(edges, q)
				}
			}
		}
		b.edges[f] = edges
	})
	return b
}

// bin maps a value of feature f to its bin index.
func (b *binner) bin(f int, v float64) uint8 {
	e := b.edges[f]
	// First edge >= v; bin covers (edges[i-1], edges[i]].
	i := sort.SearchFloat64s(e, v)
	if i < len(e) && e[i] == v {
		return uint8(i)
	}
	return uint8(i)
}

// numBins returns the bin count of feature f.
func (b *binner) numBins(f int) int { return len(b.edges[f]) + 1 }

// threshold returns the real-valued split threshold for "bin ≤ bin".
func (b *binner) threshold(f int, bin uint8) float64 { return b.edges[f][bin] }

// trainData holds binned, feature-major training data.
type trainData struct {
	bins [][]uint8 // [feature][row]
	y    []float64
	n    int
	f    int
}

func newTrainData(pool *par.Pool, b *binner, xs [][]float64, ys []float64) *trainData {
	n := len(xs)
	f := len(b.edges)
	td := &trainData{y: ys, n: n, f: f, bins: make([][]uint8, f)}
	pool.Do(f, func(fi int) {
		col := make([]uint8, n)
		for i, x := range xs {
			col[i] = b.bin(fi, x[fi])
		}
		td.bins[fi] = col
	})
	return td
}

// gradients computes first and second order gradients for the objective.
func gradients(obj Objective, preds, ys, g, h []float64) {
	switch obj {
	case ObjectiveMAPE:
		for i := range ys {
			d := math.Max(math.Abs(ys[i]), 1)
			if preds[i] > ys[i] {
				g[i] = 1 / d
			} else if preds[i] < ys[i] {
				g[i] = -1 / d
			} else {
				g[i] = 0
			}
			h[i] = 1 / d
		}
	default: // L2
		for i := range ys {
			g[i] = preds[i] - ys[i]
			h[i] = 1
		}
	}
}

// lossSum computes the summed objective value over a slice range.
func lossSum(obj Objective, preds, ys []float64) float64 {
	s := 0.0
	switch obj {
	case ObjectiveMAPE:
		for i := range ys {
			s += math.Abs(preds[i]-ys[i]) / math.Max(math.Abs(ys[i]), 1)
		}
	default:
		for i := range ys {
			d := preds[i] - ys[i]
			s += d * d
		}
	}
	return s
}

// loss computes the objective value for reporting/early stopping, reducing
// fixed-size chunks in order so the result is worker-count independent.
func loss(pool *par.Pool, obj Objective, preds, ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	s := par.MapReduce(pool, len(ys), rowChunk, func(lo, hi int) float64 {
		return lossSum(obj, preds[lo:hi], ys[lo:hi])
	}, func(a, b float64) float64 { return a + b }, 0)
	return s / float64(len(ys))
}

// TrainResult reports training diagnostics.
type TrainResult struct {
	// TrainLoss and ValLoss trace the objective per round.
	TrainLoss []float64
	ValLoss   []float64
}

// rowChunk is the fixed chunk size of the parallel row loops in Train.
// Chunking by a constant (rather than by worker count) keeps every
// floating-point reduction order identical no matter how many workers run,
// which is what makes parallel training bit-for-bit deterministic.
const rowChunk = 4096

// Train fits a model on xs/ys. When valX is nil, ValidationFraction of the
// training data is sampled for validation (matching the paper's use of
// LightGBM's automatic 20% split). Training parallelizes across
// Params.Workers and produces identical models for any worker count.
func Train(p Params, xs [][]float64, ys []float64, valX [][]float64, valY []float64) (*Model, *TrainResult, error) {
	if len(xs) == 0 {
		return nil, nil, errors.New("gbdt: empty training set")
	}
	if len(xs) != len(ys) {
		return nil, nil, fmt.Errorf("gbdt: %d rows but %d targets", len(xs), len(ys))
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	trainStart := time.Now()
	obs.TrainSessions.Inc()
	rng := rand.New(rand.NewSource(p.Seed))
	pool := par.New(p.Workers)
	defer pool.Close()

	if valX == nil && p.ValidationFraction > 0 && len(xs) >= 10 {
		perm := rng.Perm(len(xs))
		nVal := int(float64(len(xs)) * p.ValidationFraction)
		trX := make([][]float64, 0, len(xs)-nVal)
		trY := make([]float64, 0, len(xs)-nVal)
		valX = make([][]float64, 0, nVal)
		valY = make([]float64, 0, nVal)
		for i, pi := range perm {
			if i < nVal {
				valX = append(valX, xs[pi])
				valY = append(valY, ys[pi])
			} else {
				trX = append(trX, xs[pi])
				trY = append(trY, ys[pi])
			}
		}
		xs, ys = trX, trY
	}

	numFeatures := len(xs[0])
	bnr := newBinner(pool, xs, numFeatures, p.MaxBins)
	td := newTrainData(pool, bnr, xs, ys)

	m := &Model{NumFeatures: numFeatures, Params: p}
	// Base score: mean target.
	for _, y := range ys {
		m.BaseScore += y
	}
	m.BaseScore /= float64(len(ys))

	preds := make([]float64, td.n)
	for i := range preds {
		preds[i] = m.BaseScore
	}
	var valPreds []float64
	if valX != nil {
		valPreds = make([]float64, len(valX))
		for i := range valPreds {
			valPreds[i] = m.BaseScore
		}
	}

	g := make([]float64, td.n)
	h := make([]float64, td.n)
	res := &TrainResult{}
	bestVal := math.Inf(1)
	bestIter := 0
	grower := newGrower(td, bnr, p, rng, pool)

	for round := 0; round < p.NumRounds; round++ {
		roundStart := time.Now()
		// Gradient/hessian computation and score updates write disjoint
		// per-row slots, so chunked fan-out cannot change the result.
		pool.For(td.n, rowChunk, func(lo, hi int) {
			gradients(p.Objective, preds[lo:hi], ys[lo:hi], g[lo:hi], h[lo:hi])
		})
		growStart := time.Now()
		tree := grower.grow(g, h)
		obs.TrainGrowTime.Since(growStart)
		m.Trees = append(m.Trees, *tree)

		pool.For(td.n, rowChunk, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				preds[i] += grower.predictBinned(tree, i)
			}
		})
		res.TrainLoss = append(res.TrainLoss, loss(pool, p.Objective, preds, ys))
		stop := false
		if valX != nil {
			pool.For(len(valX), 256, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					valPreds[i] += tree.Predict(valX[i])
				}
			})
			vl := loss(pool, p.Objective, valPreds, valY)
			res.ValLoss = append(res.ValLoss, vl)
			if vl < bestVal {
				bestVal = vl
				bestIter = round + 1
			}
			if p.EarlyStoppingRounds > 0 && round+1-bestIter >= p.EarlyStoppingRounds {
				m.Trees = m.Trees[:bestIter]
				stop = true
			}
		}
		obs.TrainRounds.Inc()
		obs.TrainRoundTime.Since(roundStart)
		if stop {
			break
		}
	}
	if bestIter == 0 {
		bestIter = len(m.Trees)
	}
	m.BestIteration = bestIter
	if elapsed := time.Since(trainStart).Seconds(); elapsed > 0 {
		obs.TrainRowsPerSec.Set(float64(td.n) * float64(len(m.Trees)) / elapsed)
	}
	return m, res, nil
}
