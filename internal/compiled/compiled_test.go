package compiled

import (
	"math"
	"math/rand"
	"testing"

	"t3/internal/gbdt"
	"t3/internal/treec"
)

// loadDefault reads the JSON model the generated code was compiled from.
func loadDefault(t *testing.T) *gbdt.Model {
	t.Helper()
	m, err := gbdt.Load("../../models/t3_default.json")
	if err != nil {
		t.Skipf("default model unavailable: %v", err)
	}
	return m
}

func TestGeneratedMatchesInterpreted(t *testing.T) {
	m := loadDefault(t)
	if m.NumFeatures != NumFeatures() {
		t.Fatalf("generated code has %d features, model has %d — regenerate with cmd/t3compile",
			NumFeatures(), m.NumFeatures)
	}
	flat := treec.Flatten(m)
	packed := treec.Pack(m)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		v := make([]float64, m.NumFeatures)
		for j := range v {
			switch rng.Intn(3) {
			case 0: // zero, like most sparse pipeline features
			case 1:
				v[j] = rng.Float64() // percentages
			default:
				v[j] = math.Pow(10, rng.Float64()*7) // cardinalities
			}
		}
		want := m.Predict(v)
		gotFlat := flat.Predict(v)
		gotPacked := packed.Predict(v)
		got := Predict(v)
		if gotFlat != want {
			t.Fatalf("flat(%d) = %v, interpreted = %v", i, gotFlat, want)
		}
		// Generated code shares the packed tier's float32-rounded
		// thresholds: the two must agree bit-for-bit on every input.
		if got != gotPacked {
			t.Fatalf("generated(%d) = %v, packed = %v — tiers must be bit-equivalent", i, got, gotPacked)
		}
		// Against the float64 tiers, divergence beyond summation noise is
		// only legitimate when a feature value sits in a documented float32
		// rounding gap.
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) && !flat.InRoundingGap(v) {
			t.Fatalf("generated(%d) = %v, interpreted = %v with no feature value in a rounding gap", i, got, want)
		}
	}
}

func TestGeneratedBatch(t *testing.T) {
	m := loadDefault(t)
	rng := rand.New(rand.NewSource(2))
	vs := make([][]float64, 100)
	for i := range vs {
		v := make([]float64, m.NumFeatures)
		for j := range v {
			v[j] = rng.Float64() * 1000
		}
		vs[i] = v
	}
	out := PredictBatch(vs)
	for i, v := range vs {
		if out[i] != Predict(v) {
			t.Fatalf("batch row %d differs from single prediction", i)
		}
	}
}

func TestMetadata(t *testing.T) {
	if NumTrees() <= 0 || NumFeatures() <= 0 {
		t.Fatalf("implausible metadata: %d trees, %d features", NumTrees(), NumFeatures())
	}
}
