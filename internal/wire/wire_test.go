package wire

import (
	"math"
	"testing"

	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/feature"
	"t3/internal/workload"
)

// benchPlans returns annotated multi-pipeline plans covering joins,
// filters, group-bys, sorts, and windows.
func benchPlans(t *testing.T) []*plan.Node {
	t.Helper()
	in := workload.MustGenerate(workload.TPCHSpec("tpch_wire", 0.01, 3))
	qs := workload.TPCHBenchmarkQueries(in)
	roots := make([]*plan.Node, 0, len(qs))
	for _, q := range qs {
		if err := exec.AnnotateTrueCards(q.Root); err != nil {
			t.Fatal(err)
		}
		roots = append(roots, q.Root)
	}
	return roots
}

func TestFrameRoundtripPreservesFeatureVectors(t *testing.T) {
	reg := feature.NewDefaultRegistry()
	var dec Decoder
	for qi, root := range benchPlans(t) {
		for _, mode := range []plan.CardMode{plan.TrueCards, plan.EstCards} {
			frame := AppendFrame(nil, root, mode)
			gotMode, n, err := ParseHeader(frame)
			if err != nil {
				t.Fatalf("q%d: %v", qi, err)
			}
			if gotMode != mode {
				t.Fatalf("q%d: mode %d -> %d", qi, mode, gotMode)
			}
			if n != len(frame)-HeaderSize {
				t.Fatalf("q%d: header says %d payload bytes, frame has %d", qi, n, len(frame)-HeaderSize)
			}
			back, err := dec.Decode(frame[HeaderSize:])
			if err != nil {
				t.Fatalf("q%d: decode: %v", qi, err)
			}
			origVecs, origPs := reg.PlanVectors(root, mode)
			backVecs, backPs := reg.PlanVectors(back, mode)
			if len(origVecs) != len(backVecs) {
				t.Fatalf("q%d: pipeline count %d -> %d", qi, len(origVecs), len(backVecs))
			}
			for p := range origVecs {
				if feature.SourceCard(origPs[p], mode) != feature.SourceCard(backPs[p], mode) {
					t.Fatalf("q%d pipeline %d: source card changed", qi, p)
				}
				for f := range origVecs[p] {
					if origVecs[p][f] != backVecs[p][f] {
						t.Fatalf("q%d pipeline %d feature %d: %v -> %v",
							qi, p, f, origVecs[p][f], backVecs[p][f])
					}
				}
			}
		}
	}
}

func TestWireSmallerThanJSON(t *testing.T) {
	for qi, root := range benchPlans(t) {
		bin := AppendPlan(nil, root)
		nodes := root.Count()
		if len(bin) > nodes*64 {
			t.Errorf("q%d: %d nodes encode to %d bytes (> 64 B/node)", qi, nodes, len(bin))
		}
	}
}

func TestDecoderReuseIsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	root := benchPlans(t)[2]
	payload := AppendPlan(nil, root)
	var dec Decoder
	for i := 0; i < 4; i++ { // warm the arena
		if _, err := dec.Decode(payload); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := dec.Decode(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Decode allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestPlanKeyContract(t *testing.T) {
	roots := benchPlans(t)
	a, b := roots[0], roots[1]

	ka := PlanKey(a, plan.TrueCards)
	if ka != PlanKey(a, plan.TrueCards) {
		t.Fatal("PlanKey is not deterministic")
	}

	// Different structure: Struct differs.
	kb := PlanKey(b, plan.TrueCards)
	if ka.Struct == kb.Struct {
		t.Fatal("different plans share a structural fingerprint")
	}

	// Same structure, different cardinality annotation: Struct equal,
	// Cards differ.
	var dec Decoder
	clone, err := dec.Decode(AppendPlan(nil, a))
	if err != nil {
		t.Fatal(err)
	}
	kc := PlanKey(clone, plan.TrueCards)
	if kc != ka {
		t.Fatalf("decoded clone keys differently: %+v vs %+v", kc, ka)
	}
	clone.OutCard.True *= 2
	kd := PlanKey(clone, plan.TrueCards)
	if kd.Struct != ka.Struct {
		t.Fatal("cardinality change altered the structural fingerprint")
	}
	if kd.Cards == ka.Cards {
		t.Fatal("cardinality change did not alter the annotation hash")
	}

	// Same plan under the other card mode: Cards differ (mode is folded in).
	ke := PlanKey(a, plan.EstCards)
	if ke.Cards == ka.Cards {
		t.Fatal("card mode is not part of the annotation hash")
	}
	if ke.Struct != ka.Struct {
		t.Fatal("card mode altered the structural fingerprint")
	}
}

func TestPlanKeyIsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	root := benchPlans(t)[2]
	allocs := testing.AllocsPerRun(100, func() { PlanKey(root, plan.TrueCards) })
	if allocs != 0 {
		t.Fatalf("PlanKey allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestResponseRoundtrip(t *testing.T) {
	resp := AppendResponse(nil, 123456789)
	ns, err := ParseResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if ns != 123456789 {
		t.Fatalf("predicted ns %d, want 123456789", ns)
	}

	eresp := AppendErrorResponse(nil, StatusBadRequest, "boom")
	if _, err := ParseResponse(eresp); err == nil {
		t.Fatal("error response parsed as success")
	}
}

func TestDecodeRejectsMalformedInput(t *testing.T) {
	root := benchPlans(t)[0]
	payload := AppendPlan(nil, root)
	var dec Decoder
	cases := map[string][]byte{
		"empty":     {},
		"truncated": payload[:len(payload)/2],
		"trailing":  append(append([]byte{}, payload...), 0xAB),
		"bad op":    {0xEE, 0},
	}
	for name, data := range cases {
		if _, err := dec.Decode(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if _, _, err := ParseHeader([]byte("XXXXXXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	big := make([]byte, HeaderSize)
	PutHeader(big, plan.TrueCards, MaxPayload+1)
	if _, _, err := ParseHeader(big); err == nil {
		t.Error("oversized payload length accepted")
	}
}

func TestHeaderModeValidation(t *testing.T) {
	h := make([]byte, HeaderSize)
	PutHeader(h, plan.EstCards, 0)
	mode, _, err := ParseHeader(h)
	if err != nil || mode != plan.EstCards {
		t.Fatalf("mode = %v, err = %v", mode, err)
	}
	h[3] = 7
	if _, _, err := ParseHeader(h); err == nil {
		t.Error("bad card mode accepted")
	}
	if math.Float64bits(0) != 0 { // paranoia anchor for the fixed-width float encoding
		t.Fatal("float64 encoding assumption broken")
	}
}
