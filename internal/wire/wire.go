// Package wire is the compact binary plan encoding and length-prefixed
// framing spoken by t3serve's high-throughput endpoints (/predict.bin and
// the raw TCP listener).
//
// T3 predicts from plan annotations only — operator types, cardinalities,
// tuple widths, predicate classes, selectivities — so the wire form carries
// exactly those, byte-packed, and nothing else: no column names, no table
// names, no JSON. A typical TPC-H plan is ~100–300 bytes on the wire versus
// several KiB of JSON, and decoding is a single arena-backed pass with zero
// steady-state allocations (see Decoder).
//
// # Frame layout (version 1)
//
// Request frame:
//
//	offset size  field
//	0      2     magic "T3"
//	2      1     version (1)
//	3      1     card mode: 0 = true cards, 1 = estimated cards
//	4      4     payload length, little-endian uint32
//	8      n     payload: the encoded plan (see below)
//
// Response frame:
//
//	offset size  field
//	0      2     magic "T3"
//	2      1     version (1)
//	3      1     status: 0 = ok, 1 = bad request, 2 = server error
//	4      4     payload length, little-endian uint32
//	8      n     ok: 8-byte little-endian uint64 predicted nanoseconds
//	             error: UTF-8 message
//
// # Plan payload
//
// Nodes are serialized pre-order (node, left, right). Each node is:
//
//	op      1 byte   plan.OpType
//	flags   1 byte   bit0 = has left child, bit1 = has right child,
//	                 bit2 = has explicit columns
//	cols    uvarint count + 1 byte storage.Type per column (iff bit2)
//	card    8+8 bytes little-endian float64 (true, est)
//	scan    TableScan only: 8-byte float64 scan_card, uvarint predicate
//	        count, then per predicate 1 byte expr.Class + 8+8 bytes
//	        float64 selectivities (true, est)
//	build   HashJoin only: uvarint build width in bytes
//
// Like planio, decoded plans are featurizable and predictable but not
// executable: scans carry no bound tables and predicates are class-only
// stubs.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// Version is the current wire protocol version.
const Version = 1

// HeaderSize is the fixed size of request and response frame headers.
const HeaderSize = 8

// MaxPayload bounds the payload length a decoder accepts (1 MiB — real
// plans are a few hundred bytes; this guards the pre-read allocation).
const MaxPayload = 1 << 20

// Response status codes.
const (
	StatusOK         = 0
	StatusBadRequest = 1
	StatusError      = 2
)

var (
	// ErrHeader reports a malformed or foreign frame header.
	ErrHeader = errors.New("wire: bad frame header")
	// ErrVersion reports an unsupported protocol version.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrTooLarge reports a payload length above MaxPayload.
	ErrTooLarge = errors.New("wire: payload too large")
	// ErrTruncated reports a payload shorter than its encoding requires.
	ErrTruncated = errors.New("wire: truncated payload")
)

// magic0, magic1 are the frame magic bytes.
const magic0, magic1 = 'T', '3'

// Node flag bits.
const (
	flagLeft  = 1 << 0
	flagRight = 1 << 1
	flagCols  = 1 << 2
)

// PutHeader writes a request frame header for a payload of the given length
// into dst, which must be at least HeaderSize bytes.
func PutHeader(dst []byte, mode plan.CardMode, payloadLen int) {
	dst[0], dst[1], dst[2] = magic0, magic1, Version
	dst[3] = byte(mode)
	binary.LittleEndian.PutUint32(dst[4:8], uint32(payloadLen))
}

// ParseHeader validates a request frame header and returns the card mode
// and payload length.
func ParseHeader(b []byte) (plan.CardMode, int, error) {
	if len(b) < HeaderSize || b[0] != magic0 || b[1] != magic1 {
		return 0, 0, ErrHeader
	}
	if b[2] != Version {
		return 0, 0, ErrVersion
	}
	if b[3] > 1 {
		return 0, 0, fmt.Errorf("wire: bad card mode %d", b[3])
	}
	n := binary.LittleEndian.Uint32(b[4:8])
	if n > MaxPayload {
		return 0, 0, ErrTooLarge
	}
	return plan.CardMode(b[3]), int(n), nil
}

// AppendFrame appends a complete request frame (header + encoded plan) to
// dst and returns the extended slice.
func AppendFrame(dst []byte, n *plan.Node, mode plan.CardMode) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	dst = AppendPlan(dst, n)
	PutHeader(dst[start:], mode, len(dst)-start-HeaderSize)
	return dst
}

// AppendResponse appends an ok response frame carrying the predicted
// nanoseconds.
func AppendResponse(dst []byte, predictedNs int64) []byte {
	dst = append(dst, magic0, magic1, Version, StatusOK, 8, 0, 0, 0)
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], uint64(predictedNs))
	return append(dst, v[:]...)
}

// AppendErrorResponse appends an error response frame with the given status
// and message.
func AppendErrorResponse(dst []byte, status byte, msg string) []byte {
	dst = append(dst, magic0, magic1, Version, status, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(dst[len(dst)-4:], uint32(len(msg)))
	return append(dst, msg...)
}

// ParseResponse parses a complete response frame, returning the predicted
// nanoseconds or the server-reported error.
func ParseResponse(b []byte) (int64, error) {
	if len(b) < HeaderSize || b[0] != magic0 || b[1] != magic1 {
		return 0, ErrHeader
	}
	if b[2] != Version {
		return 0, ErrVersion
	}
	n := int(binary.LittleEndian.Uint32(b[4:8]))
	if len(b) < HeaderSize+n {
		return 0, ErrTruncated
	}
	body := b[HeaderSize : HeaderSize+n]
	if b[3] != StatusOK {
		return 0, fmt.Errorf("wire: server status %d: %s", b[3], body)
	}
	if n != 8 {
		return 0, ErrTruncated
	}
	return int64(binary.LittleEndian.Uint64(body)), nil
}

// AppendPlan appends the binary encoding of the plan to dst and returns the
// extended slice. It allocates only when growing dst.
func AppendPlan(dst []byte, n *plan.Node) []byte {
	if n == nil {
		return dst
	}
	flags := byte(0)
	if n.Left != nil {
		flags |= flagLeft
	}
	if n.Right != nil {
		flags |= flagRight
	}
	// Pass-through operators inherit the left child's schema; encoding it
	// again would only bloat the frame. Emit columns when there is no child
	// to inherit from or the schema genuinely differs (breakers, maps).
	explicitCols := n.Left == nil || !sameSchema(n.Schema, n.Left.Schema)
	if explicitCols {
		flags |= flagCols
	}
	dst = append(dst, byte(n.Op), flags)
	if explicitCols {
		dst = appendUvarint(dst, uint64(len(n.Schema)))
		for _, c := range n.Schema {
			dst = append(dst, byte(c.Kind))
		}
	}
	dst = appendF64(dst, n.OutCard.True)
	dst = appendF64(dst, n.OutCard.Est)
	if n.Op == plan.TableScanOp {
		dst = appendF64(dst, n.ScanCard)
		dst = appendUvarint(dst, uint64(len(n.Predicates)))
		for i, p := range n.Predicates {
			dst = append(dst, byte(p.Class()))
			dst = appendF64(dst, n.PredSel[i].True)
			dst = appendF64(dst, n.PredSel[i].Est)
		}
	}
	if n.Op == plan.HashJoinOp {
		dst = appendUvarint(dst, uint64(buildWidth(n)))
	}
	dst = AppendPlan(dst, n.Left)
	dst = AppendPlan(dst, n.Right)
	return dst
}

// buildWidth returns the bytes per tuple a hash join materializes: the
// explicit override when set, else the sum of build key and payload widths.
func buildWidth(n *plan.Node) int {
	if n.BuildWidth > 0 {
		return n.BuildWidth
	}
	w := 0
	for _, ci := range n.BuildKeys {
		w += n.Left.Schema[ci].Kind.Width()
	}
	for _, ci := range n.BuildPayload {
		w += n.Left.Schema[ci].Kind.Width()
	}
	return w
}

func sameSchema(a, b []plan.ColMeta) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind {
			return false
		}
	}
	return true
}

func appendF64(dst []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(dst, b[:]...)
}

func appendUvarint(dst []byte, v uint64) []byte {
	var b [binary.MaxVarintLen64]byte
	return append(dst, b[:binary.PutUvarint(b[:], v)]...)
}

// stubPred is a non-executable predicate carrying only its class, like
// planio's JSON-decoded predicates.
type stubPred struct{ class expr.Class }

func (s *stubPred) Kind() storage.Type { return storage.Int64 }
func (s *stubPred) Class() expr.Class  { return s.class }
func (s *stubPred) String() string     { return "<" + s.class.String() + ">" }
func (s *stubPred) EvalBool(*expr.Batch, []bool) int {
	panic("wire: decoded plans are not executable")
}

// stubPreds pre-boxes one predicate stub per class so decoding never
// allocates an interface value.
var stubPreds = func() [expr.NumClasses]expr.BoolExpr {
	var a [expr.NumClasses]expr.BoolExpr
	for c := range a {
		a[c] = &stubPred{class: expr.Class(c)}
	}
	return a
}()

// keyZero is the shared synthesized key list of decoded hash joins (the
// explicit BuildWidth override carries the real materialized width).
var keyZero = []int{0}

// nodeSlabSize is the node-arena slab size. Slabs give decoded nodes stable
// addresses (Left/Right pointers) while still amortizing allocation.
const nodeSlabSize = 32

// Decoder decodes binary plan payloads over a reusable arena. After a few
// decodes the arena capacities stabilize and Decode stops allocating. The
// returned plan aliases the arena and is valid only until the next Decode.
// A Decoder must not be used concurrently; keep one per connection.
type Decoder struct {
	slabs []*[nodeSlabSize]plan.Node
	used  int
	cols  []plan.ColMeta
	preds []expr.BoolExpr
	sels  []plan.Card
}

// next hands out the next arena node, zeroed.
func (d *Decoder) next() *plan.Node {
	if d.used == len(d.slabs)*nodeSlabSize {
		d.slabs = append(d.slabs, new([nodeSlabSize]plan.Node))
	}
	n := &d.slabs[d.used/nodeSlabSize][d.used%nodeSlabSize]
	d.used++
	*n = plan.Node{}
	return n
}

// Decode parses one plan payload. The result aliases the decoder's arena.
func (d *Decoder) Decode(payload []byte) (*plan.Node, error) {
	d.used = 0
	d.cols = d.cols[:0]
	d.preds = d.preds[:0]
	d.sels = d.sels[:0]
	n, rest, err := d.decodeNode(payload)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after plan", len(rest))
	}
	return n, nil
}

func (d *Decoder) decodeNode(b []byte) (*plan.Node, []byte, error) {
	if len(b) < 2 {
		return nil, nil, ErrTruncated
	}
	op, flags := plan.OpType(b[0]), b[1]
	if int(op) >= plan.NumOpTypes {
		return nil, nil, fmt.Errorf("wire: unknown operator %d", op)
	}
	b = b[2:]
	n := d.next()
	n.Op = op

	var err error
	if flags&flagCols != 0 {
		var ncols uint64
		if ncols, b, err = readUvarint(b); err != nil {
			return nil, nil, err
		}
		if ncols > uint64(len(b)) {
			return nil, nil, ErrTruncated
		}
		start := len(d.cols)
		for i := 0; i < int(ncols); i++ {
			k := storage.Type(b[i])
			if k > storage.String {
				return nil, nil, fmt.Errorf("wire: unknown column type %d", b[i])
			}
			d.cols = append(d.cols, plan.ColMeta{Kind: k})
		}
		b = b[ncols:]
		n.Schema = d.cols[start:len(d.cols):len(d.cols)]
	}
	if n.OutCard.True, b, err = readF64(b); err != nil {
		return nil, nil, err
	}
	if n.OutCard.Est, b, err = readF64(b); err != nil {
		return nil, nil, err
	}

	switch op {
	case plan.TableScanOp:
		if n.ScanCard, b, err = readF64(b); err != nil {
			return nil, nil, err
		}
		var npreds uint64
		if npreds, b, err = readUvarint(b); err != nil {
			return nil, nil, err
		}
		if npreds > uint64(len(b))/17 { // 1 class byte + two float64s each
			return nil, nil, ErrTruncated
		}
		pstart, sstart := len(d.preds), len(d.sels)
		for i := 0; i < int(npreds); i++ {
			class := b[0]
			if int(class) >= expr.NumClasses {
				return nil, nil, fmt.Errorf("wire: unknown predicate class %d", class)
			}
			b = b[1:]
			var sel plan.Card
			if sel.True, b, err = readF64(b); err != nil {
				return nil, nil, err
			}
			if sel.Est, b, err = readF64(b); err != nil {
				return nil, nil, err
			}
			d.preds = append(d.preds, stubPreds[class])
			d.sels = append(d.sels, sel)
		}
		n.Predicates = d.preds[pstart:len(d.preds):len(d.preds)]
		n.PredSel = d.sels[sstart:len(d.sels):len(d.sels)]
	case plan.HashJoinOp:
		var w uint64
		if w, b, err = readUvarint(b); err != nil {
			return nil, nil, err
		}
		n.BuildKeys, n.ProbeKeys = keyZero, keyZero
		n.BuildWidth = int(w)
	}

	if flags&flagLeft != 0 {
		if n.Left, b, err = d.decodeNode(b); err != nil {
			return nil, nil, err
		}
	}
	if flags&flagRight != 0 {
		if n.Right, b, err = d.decodeNode(b); err != nil {
			return nil, nil, err
		}
	}

	// Structural checks mirroring planio.Decode.
	switch op {
	case plan.HashJoinOp:
		if n.Left == nil || n.Right == nil {
			return nil, nil, errors.New("wire: HashJoin requires two children")
		}
		if len(n.Left.Schema) == 0 {
			return nil, nil, errors.New("wire: HashJoin build side has no columns")
		}
	case plan.TableScanOp:
		if len(n.Schema) == 0 {
			return nil, nil, errors.New("wire: TableScan without columns")
		}
	default:
		if n.Left == nil {
			return nil, nil, fmt.Errorf("wire: %s requires an input", op)
		}
	}
	if n.Schema == nil {
		n.Schema = n.Left.Schema
	}
	return n, b, nil
}

func readF64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrTruncated
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	return v, b[n:], nil
}
