// Plan fingerprinting: the cache key contract of the serving tier.
//
// A prediction is a pure function of (plan structure, cardinality
// annotations, card mode), so the prediction cache keys on exactly that,
// split in two halves the same way workload.LabelSet splits StableBytes
// from measured durations:
//
//   - Key.Struct hashes the plan's shape: operators, child positions,
//     column type lists, predicate classes, and hash-join build widths.
//   - Key.Cards hashes everything the featurizer reads per card mode: the
//     mode itself, every node's output cardinality, scan cardinalities,
//     and per-predicate selectivities.
//
// Two plans with the same shape but different annotations share Struct and
// differ in Cards; the same plan asked under true vs estimated
// cardinalities differs in Cards. Hashing is FNV-1a (the same scheme as
// workload.LabelSet.Fingerprint) over the node walk directly — no
// serialization buffer, no allocation.
package wire

import (
	"math"

	"t3/internal/engine/plan"
)

// Key identifies a (plan, annotations, mode) triple for prediction caching.
type Key struct {
	// Struct is the structural plan fingerprint.
	Struct uint64
	// Cards is the cardinality-annotation hash, card mode folded in.
	Cards uint64
}

// FNV-1a parameters (shared with workload.LabelSet.Fingerprint).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnv64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v))
		v >>= 8
	}
	return h
}

// PlanKey fingerprints a featurizable plan for prediction caching.
func PlanKey(root *plan.Node, mode plan.CardMode) Key {
	k := Key{Struct: fnvOffset, Cards: fnvByte(fnvOffset, byte(mode))}
	hashNode(&k, root, mode)
	return k
}

// hashNode folds one node and its subtree into the key, pre-order. Child
// presence bytes delimit subtrees, so distinct shapes cannot collapse onto
// the same byte stream.
func hashNode(k *Key, n *plan.Node, mode plan.CardMode) {
	if n == nil {
		return
	}
	h := fnvByte(k.Struct, byte(n.Op))
	childMask := byte(0)
	if n.Left != nil {
		childMask |= 1
	}
	if n.Right != nil {
		childMask |= 2
	}
	h = fnvByte(h, childMask)
	h = fnv64(h, uint64(len(n.Schema)))
	for _, c := range n.Schema {
		h = fnvByte(h, byte(c.Kind))
	}
	c := fnv64(k.Cards, math.Float64bits(n.OutCard.Get(mode)))
	switch n.Op {
	case plan.TableScanOp:
		c = fnv64(c, math.Float64bits(n.ScanCard))
		h = fnv64(h, uint64(len(n.Predicates)))
		for i, p := range n.Predicates {
			h = fnvByte(h, byte(p.Class()))
			c = fnv64(c, math.Float64bits(n.PredSel[i].Get(mode)))
		}
	case plan.HashJoinOp:
		h = fnv64(h, uint64(buildWidth(n)))
	}
	k.Struct, k.Cards = h, c
	hashNode(k, n.Left, mode)
	hashNode(k, n.Right, mode)
}
