package sched

import (
	"math/rand"
	"testing"
	"time"
)

// mkJobs builds n jobs with durations in [1ms, 100ms] and the given
// prediction quality: predicted = actual * (1 ± err).
func mkJobs(n int, err float64, predLat time.Duration, seed int64) []Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]Job, n)
	for i := range jobs {
		actual := time.Duration(1+rng.Intn(100)) * time.Millisecond
		noise := 1 + (rng.Float64()*2-1)*err
		if noise < 0.01 {
			noise = 0.01
		}
		jobs[i] = Job{
			ID:          "q",
			Actual:      actual,
			Predicted:   time.Duration(float64(actual) * noise),
			PredLatency: predLat,
		}
	}
	return jobs
}

func TestPerfectPredictionsBeatRoundRobin(t *testing.T) {
	jobs := mkJobs(200, 0, 0, 1)
	rr := Simulate(jobs, 4, RoundRobin)
	lpt := Simulate(jobs, 4, LongestFirst)
	if lpt.Makespan >= rr.Makespan {
		t.Errorf("LPT makespan %v should beat round-robin %v", lpt.Makespan, rr.Makespan)
	}
	ll := Simulate(jobs, 4, LeastLoaded)
	if ll.Makespan > rr.Makespan {
		t.Errorf("least-loaded makespan %v should not exceed round-robin %v", ll.Makespan, rr.Makespan)
	}
}

func TestMakespanLowerBound(t *testing.T) {
	jobs := mkJobs(100, 0.2, 0, 2)
	var total time.Duration
	var longest time.Duration
	for _, j := range jobs {
		total += j.Actual
		if j.Actual > longest {
			longest = j.Actual
		}
	}
	for _, p := range []Policy{RoundRobin, LeastLoaded, LongestFirst} {
		r := Simulate(jobs, 4, p)
		lb := maxDur(total/4, longest)
		if r.Makespan < lb {
			t.Errorf("%v: makespan %v below lower bound %v", p, r.Makespan, lb)
		}
		if r.Makespan > total {
			t.Errorf("%v: makespan %v exceeds serial time %v", p, r.Makespan, total)
		}
	}
}

func TestPredictionLatencyDelaysEverything(t *testing.T) {
	fast := mkJobs(500, 0.1, 4*time.Microsecond, 3)
	slow := make([]Job, len(fast))
	copy(slow, fast)
	for i := range slow {
		slow[i].PredLatency = 50 * time.Millisecond // an NN-class predictor
	}
	rFast := Simulate(fast, 8, LongestFirst)
	rSlow := Simulate(slow, 8, LongestFirst)
	if rSlow.DispatchOverhead <= rFast.DispatchOverhead {
		t.Fatal("dispatch overhead should reflect prediction latency")
	}
	// With 500 x 50ms serialized predictions, the dispatcher becomes the
	// bottleneck: 25 seconds of pure prediction time.
	if rSlow.Makespan <= rFast.Makespan {
		t.Errorf("slow-predictor makespan %v should exceed fast %v", rSlow.Makespan, rFast.Makespan)
	}
	if rSlow.MeanCompletion <= rFast.MeanCompletion {
		t.Errorf("slow-predictor mean completion %v should exceed fast %v",
			rSlow.MeanCompletion, rFast.MeanCompletion)
	}
}

func TestBadPredictionsHurtPlacement(t *testing.T) {
	good := mkJobs(300, 0.05, 0, 4)
	bad := make([]Job, len(good))
	copy(bad, good)
	rng := rand.New(rand.NewSource(5))
	for i := range bad {
		// Random predictions uncorrelated with actual times.
		bad[i].Predicted = time.Duration(1+rng.Intn(100)) * time.Millisecond
	}
	rGood := Simulate(good, 4, LongestFirst)
	rBad := Simulate(bad, 4, LongestFirst)
	if rBad.Makespan < rGood.Makespan {
		t.Errorf("random predictions (%v) should not beat accurate ones (%v)",
			rBad.Makespan, rGood.Makespan)
	}
}

func TestSingleClusterSerializes(t *testing.T) {
	jobs := mkJobs(50, 0, 0, 6)
	var total time.Duration
	for _, j := range jobs {
		total += j.Actual
	}
	r := Simulate(jobs, 1, LeastLoaded)
	if r.Makespan != total {
		t.Errorf("single cluster makespan %v != serial %v", r.Makespan, total)
	}
	if r2 := Simulate(jobs, 0, RoundRobin); r2.Clusters != 1 {
		t.Error("clusters < 1 should clamp to 1")
	}
}

func TestEmptyJobs(t *testing.T) {
	r := Simulate(nil, 4, LongestFirst)
	if r.Makespan != 0 || r.MeanCompletion != 0 {
		t.Errorf("empty simulation: %+v", r)
	}
}

func TestBatchDispatchIsUniformShift(t *testing.T) {
	// One upfront batch latency L shifts every placement — and therefore
	// every completion — by exactly L relative to latency-free dispatch:
	// the dispatcher clock is the constant L, so start = free + L by
	// induction. Per-job PredLatency must be ignored entirely.
	jobs := mkJobs(200, 0.1, 3*time.Millisecond, 7)
	free := make([]Job, len(jobs))
	copy(free, jobs)
	for i := range free {
		free[i].PredLatency = 0
	}
	const L = 25 * time.Millisecond
	for _, p := range []Policy{RoundRobin, LeastLoaded, LongestFirst} {
		base := Simulate(free, 4, p)
		batch := SimulateBatchDispatch(jobs, 4, p, L)
		if batch.Makespan != base.Makespan+L {
			t.Errorf("%v: batch makespan %v != base %v + %v", p, batch.Makespan, base.Makespan, L)
		}
		if batch.MeanCompletion != base.MeanCompletion+L {
			t.Errorf("%v: batch mean %v != base %v + %v", p, batch.MeanCompletion, base.MeanCompletion, L)
		}
		if batch.DispatchOverhead != L {
			t.Errorf("%v: overhead %v != batch latency %v", p, batch.DispatchOverhead, L)
		}
		// Zero-latency batch dispatch equals zero-latency serial dispatch.
		if zero := SimulateBatchDispatch(jobs, 4, p, 0); zero.Makespan != base.Makespan || zero.MeanCompletion != base.MeanCompletion {
			t.Errorf("%v: zero-latency batch %+v != zero-latency serial %+v", p, zero, base)
		}
	}
}

func TestBatchDispatchBeatsSerializedPredictions(t *testing.T) {
	// When serialized per-job predictions make the dispatcher the bottleneck
	// (the paper's NN-class regime), one amortized batched prediction wins on
	// every axis.
	jobs := mkJobs(500, 0.1, 10*time.Millisecond, 8)
	serial := Simulate(jobs, 8, LongestFirst)
	batch := SimulateBatchDispatch(jobs, 8, LongestFirst, 20*time.Millisecond)
	if batch.DispatchOverhead >= serial.DispatchOverhead {
		t.Fatal("batched dispatch should cut dispatcher overhead")
	}
	if batch.Makespan >= serial.Makespan {
		t.Errorf("batched makespan %v should beat serialized %v", batch.Makespan, serial.Makespan)
	}
	if batch.MeanCompletion >= serial.MeanCompletion {
		t.Errorf("batched mean completion %v should beat serialized %v",
			batch.MeanCompletion, serial.MeanCompletion)
	}
}

func TestPolicyNames(t *testing.T) {
	if RoundRobin.String() != "round-robin" || LeastLoaded.String() != "least-loaded" || LongestFirst.String() != "longest-first" {
		t.Error("policy names wrong")
	}
}
