// Package sched simulates prediction-driven query scheduling — the paper's
// motivating use-case (§1): a spike of concurrent queries must be assigned
// across compute clusters, each query waiting for its performance prediction
// before it can be placed. Better predictions improve placement; prediction
// latency is paid on every query's critical path.
//
// The simulator is discrete and deterministic: a dispatcher processes the
// queue sequentially (predictions serialize on the dispatcher, as in the
// paper's "each query must wait for its prediction before being scheduled"),
// assigns each job per the policy, and clusters execute jobs back to back
// with their *actual* measured durations.
package sched

import (
	"fmt"
	"sort"
	"time"
)

// Job is one query to schedule.
type Job struct {
	ID string
	// Actual is the measured execution time, charged to the cluster.
	Actual time.Duration
	// Predicted is the estimate the policy sees (0 for prediction-free
	// policies).
	Predicted time.Duration
	// PredLatency is the prediction cost paid by the dispatcher before the
	// job can be placed.
	PredLatency time.Duration
}

// Policy decides the processing order and placement of jobs.
type Policy uint8

// Scheduling policies.
const (
	// RoundRobin assigns jobs in arrival order, cycling clusters; needs no
	// predictions.
	RoundRobin Policy = iota
	// LeastLoaded assigns each job (in arrival order) to the cluster with
	// the least predicted outstanding work.
	LeastLoaded
	// LongestFirst sorts the queue by descending predicted time, then
	// assigns least-loaded (LPT; near-optimal for makespan).
	LongestFirst
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	default:
		return "longest-first"
	}
}

// Result summarizes one simulation.
type Result struct {
	Policy   Policy
	Clusters int
	// Makespan is the time the last cluster finishes.
	Makespan time.Duration
	// MeanCompletion and P95Completion aggregate per-job completion times
	// (dispatch wait + queue wait + execution).
	MeanCompletion time.Duration
	P95Completion  time.Duration
	// DispatchOverhead is the total prediction latency serialized on the
	// dispatcher.
	DispatchOverhead time.Duration
}

// Simulate schedules the jobs onto the given number of clusters. Each job's
// prediction latency serializes on the dispatcher before the job can be
// placed — the paper's "each query must wait for its prediction" regime.
func Simulate(jobs []Job, clusters int, policy Policy) Result {
	return simulate(jobs, clusters, policy, 0, true)
}

// SimulateBatchDispatch schedules like Simulate, except the dispatcher prices
// the entire queue with one batched prediction up front: batchLatency is
// charged once to the dispatcher clock (and reported as DispatchOverhead),
// and the per-job PredLatency fields are ignored. This is the scheduling
// counterpart of level-batched planner costing — the spike of queued queries
// is exactly a batch the packed tier can price in one call.
func SimulateBatchDispatch(jobs []Job, clusters int, policy Policy, batchLatency time.Duration) Result {
	return simulate(jobs, clusters, policy, batchLatency, false)
}

// simulate is the shared discrete simulator core: upfront is charged to the
// dispatcher clock before any placement; perJob charges each job's
// PredLatency as it is dispatched.
func simulate(jobs []Job, clusters int, policy Policy, upfront time.Duration, perJob bool) Result {
	if clusters < 1 {
		clusters = 1
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	if policy == LongestFirst {
		sort.SliceStable(order, func(a, b int) bool {
			return jobs[order[a]].Predicted > jobs[order[b]].Predicted
		})
	}

	// free[c] is when cluster c next becomes idle; predLoad[c] is the
	// policy's view of outstanding predicted work.
	free := make([]time.Duration, clusters)
	predLoad := make([]time.Duration, clusters)
	completions := make([]time.Duration, 0, len(jobs))

	dispatch := upfront // dispatcher clock
	var res Result
	res.Policy = policy
	res.Clusters = clusters
	res.DispatchOverhead = upfront
	for i, oi := range order {
		j := jobs[oi]
		if perJob {
			// The dispatcher pays the prediction latency before placing.
			dispatch += j.PredLatency
			res.DispatchOverhead += j.PredLatency
		}

		var c int
		switch policy {
		case RoundRobin:
			c = i % clusters
		default:
			c = 0
			for k := 1; k < clusters; k++ {
				if predLoad[k] < predLoad[c] {
					c = k
				}
			}
		}
		start := maxDur(free[c], dispatch)
		finish := start + j.Actual
		free[c] = finish
		predLoad[c] += j.Predicted
		completions = append(completions, finish)
		if finish > res.Makespan {
			res.Makespan = finish
		}
	}

	sort.Slice(completions, func(a, b int) bool { return completions[a] < completions[b] })
	var sum time.Duration
	for _, cdone := range completions {
		sum += cdone
	}
	if len(completions) > 0 {
		res.MeanCompletion = sum / time.Duration(len(completions))
		res.P95Completion = completions[len(completions)*95/100]
	}
	return res
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// Format renders the result as one table row.
func (r Result) Format() string {
	return fmt.Sprintf("%-14s makespan=%v mean=%v p95=%v dispatch=%v",
		r.Policy, r.Makespan, r.MeanCompletion, r.P95Completion, r.DispatchOverhead)
}
