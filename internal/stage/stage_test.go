package stage

import (
	"testing"

	"t3/internal/baselines"
	"t3/internal/engine/plan"
	"t3/internal/gbdt"
	"t3/internal/testutil"
	"t3/internal/zeroshot"
)

func buildHierarchy(t *testing.T) (*Predictor, []*plan.Node) {
	t.Helper()
	c := testutil.SmallCorpus(t)
	train := c.AllTrain()
	p := gbdt.DefaultParams()
	p.NumRounds = 40
	dt, err := baselines.TrainPerQuery(train, plan.TrueCards, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := zeroshot.DefaultTrainConfig()
	cfg.Epochs = 3
	nn := zeroshot.Train(train[:200], plan.TrueCards, cfg)
	var roots []*plan.Node
	for _, b := range c.AllTest() {
		roots = append(roots, b.Query.Root)
	}
	return New(dt, nn, 4), roots
}

func TestHierarchyRouting(t *testing.T) {
	s, roots := buildHierarchy(t)
	counts := map[Source]int{}
	for _, r := range roots {
		_, src := s.Predict(r, plan.TrueCards)
		counts[src]++
		if src == FromCache {
			t.Fatal("cache hit before any Observe")
		}
		// Simple plans go to the DT tier, complex ones to the NN.
		simple := len(plan.Decompose(r)) <= s.MaxDTPipelines
		if simple && src != FromDT {
			t.Errorf("simple plan routed to %v", src)
		}
		if !simple && src != FromNN {
			t.Errorf("complex plan routed to %v", src)
		}
	}
	if counts[FromDT] == 0 || counts[FromNN] == 0 {
		t.Errorf("expected both tiers used, got %v", counts)
	}
}

func TestCacheHitsAfterObserve(t *testing.T) {
	s, roots := buildHierarchy(t)
	r := roots[0]
	s.Observe(r, plan.TrueCards, 0.123)
	got, src := s.Predict(r, plan.TrueCards)
	if src != FromCache {
		t.Fatalf("expected cache hit, got %v", src)
	}
	if got != 0.123 {
		t.Fatalf("cached value %v, want 0.123", got)
	}
	if s.CacheSize() != 1 {
		t.Fatalf("cache size %d", s.CacheSize())
	}
}

func TestPlanHashDistinguishesPlans(t *testing.T) {
	_, roots := buildHierarchy(t)
	// Identically-structured generated queries may legitimately collide (a
	// correct cache hit); require only that the overwhelming majority of
	// distinct plans hash distinctly and that the hash is stable.
	seen := map[uint64]bool{}
	collisions := 0
	for _, r := range roots {
		h := PlanHash(r, plan.TrueCards)
		if seen[h] {
			collisions++
		}
		seen[h] = true
	}
	if collisions > len(roots)/10 {
		t.Fatalf("%d/%d plan hash collisions", collisions, len(roots))
	}
	if PlanHash(roots[0], plan.TrueCards) != PlanHash(roots[0], plan.TrueCards) {
		t.Fatal("hash not deterministic")
	}
	// Structurally different plans must differ.
	if PlanHash(roots[0], plan.TrueCards) == PlanHash(plan.NewMaterialize(roots[0]), plan.TrueCards) {
		t.Fatal("wrapping in Materialize did not change the hash")
	}
}
