// Package stage implements a hierarchical query-time predictor modeled on
// Amazon Redshift's Stage (Wu et al., 2024), which the paper uses as its
// latency comparison point (Tables 1 and 2): an exact-plan cache answers
// repeated queries in nanoseconds, a local decision-tree model covers simple
// queries in microseconds, and a neural network handles the rest at high
// latency. T3's argument is that a single compiled-tree model makes this
// hierarchy unnecessary.
package stage

import (
	"fmt"
	"hash/fnv"

	"t3/internal/baselines"
	"t3/internal/engine/plan"
	"t3/internal/zeroshot"
)

// Source identifies which tier produced a prediction.
type Source uint8

// Prediction sources.
const (
	// FromCache means the exact plan was seen before.
	FromCache Source = iota
	// FromDT means the decision-tree tier answered.
	FromDT
	// FromNN means the neural-network tier answered.
	FromNN
)

// String names the source.
func (s Source) String() string {
	switch s {
	case FromCache:
		return "cache"
	case FromDT:
		return "dt"
	default:
		return "nn"
	}
}

// Predictor is the cache → DT → NN hierarchy.
type Predictor struct {
	cache map[uint64]float64
	dt    *baselines.PerQuery
	nn    *zeroshot.Model
	// MaxDTPipelines is the escalation policy: plans with more pipelines
	// are considered complex and routed to the NN tier.
	MaxDTPipelines int
}

// New builds a hierarchy from its tiers.
func New(dt *baselines.PerQuery, nn *zeroshot.Model, maxDTPipelines int) *Predictor {
	if maxDTPipelines <= 0 {
		maxDTPipelines = 4
	}
	return &Predictor{
		cache:          make(map[uint64]float64),
		dt:             dt,
		nn:             nn,
		MaxDTPipelines: maxDTPipelines,
	}
}

// Predict returns the predicted execution time in seconds and the tier that
// produced it.
func (p *Predictor) Predict(root *plan.Node, mode plan.CardMode) (float64, Source) {
	h := PlanHash(root, mode)
	if v, ok := p.cache[h]; ok {
		return v, FromCache
	}
	if len(plan.Decompose(root)) <= p.MaxDTPipelines {
		return p.dt.PredictSeconds(root, mode), FromDT
	}
	return p.nn.PredictSeconds(root, mode), FromNN
}

// Observe records an executed query's measured time, as Redshift's history
// cache does, so repeated submissions hit the cache tier.
func (p *Predictor) Observe(root *plan.Node, mode plan.CardMode, seconds float64) {
	p.cache[PlanHash(root, mode)] = seconds
}

// CacheSize returns the number of cached plans.
func (p *Predictor) CacheSize() int { return len(p.cache) }

// PlanHash computes a structural hash of an annotated plan: operator types,
// table names, predicate texts, and cardinalities.
func PlanHash(root *plan.Node, mode plan.CardMode) uint64 {
	h := fnv.New64a()
	root.Walk(func(n *plan.Node) {
		fmt.Fprintf(h, "%d|%s|%.0f|", n.Op, n.TableName, n.OutCard.Get(mode))
		for _, pr := range n.Predicates {
			h.Write([]byte(pr.String()))
			h.Write([]byte{';'})
		}
		if n.FilterPred != nil {
			h.Write([]byte(n.FilterPred.String()))
		}
	})
	return h.Sum64()
}
