// Package testutil provides shared fixtures for tests: a small benchmarked
// corpus built once per test binary.
package testutil

import (
	"sync"
	"testing"

	"t3/internal/benchdata"
)

var (
	once   sync.Once
	corpus *benchdata.Corpus
	err    error
)

// SmallCorpus returns a tiny shared corpus (≈20 train instances + 3 TPC-DS
// test instances at scale 0.05). The corpus is built once per test binary.
func SmallCorpus(t *testing.T) *benchdata.Corpus {
	t.Helper()
	once.Do(func() {
		cfg := benchdata.Config{Scale: 0.05, PerGroup: 2, Runs: 3, Seed: 5, ReleaseTables: true}
		corpus, err = benchdata.BuildCorpus(cfg)
	})
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}
