// Package registry is the versioned on-disk model store of the
// continuous-learning control plane. Every artifact bundles the trained
// ensemble (the authoritative JSON form), the compiled packed tier
// (internal/treec binary encoding), and training metadata — including the
// fingerprint of the held-out label set the model was shadow-evaluated on —
// in one checksummed file, so a promotion can always be traced back to what
// it was trained and judged on, and a rollback restores the previous model
// bit-for-bit.
//
// Artifacts are immutable once written: Put writes to a temp file and
// renames it into place, Load verifies a SHA-256 trailer over the entire
// payload and refuses corrupt or truncated files, and GC deletes only whole
// versions. Version numbers are dense and ascending; the latest version is
// the one a freshly booted server should serve.
package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"t3/internal/gbdt"
	"t3/internal/obs"
	"t3/internal/treec"
)

// FormatVersion is the artifact file format version. Bump on any layout
// change; Decode rejects versions it does not know, and the golden
// round-trip test in CI is gated on it.
const FormatVersion = 1

// magic opens every artifact file. The trailing byte is the format
// generation so old readers fail fast on future major layouts.
var magic = [8]byte{'T', '3', 'M', 'O', 'D', 'E', 'L', 1}

// Registry metrics on the default obs registry.
var (
	// Writes counts artifacts written.
	Writes = obs.Default.NewCounter("t3_registry_writes_total",
		"Model artifacts written to the registry.")
	// Loads counts artifacts loaded and verified.
	Loads = obs.Default.NewCounter("t3_registry_loads_total",
		"Model artifacts loaded and checksum-verified from the registry.")
	// CorruptRejects counts artifacts refused on checksum or structural
	// failure — the disk-rot alarm.
	CorruptRejects = obs.Default.NewCounter("t3_registry_corrupt_total",
		"Registry artifacts rejected as corrupt or truncated.")
)

// Meta is the training metadata stored with every artifact.
type Meta struct {
	// FormatVersion echoes the file format the artifact was written with.
	FormatVersion int `json:"format_version"`
	// Version is the registry-assigned version number (dense, ascending).
	Version int `json:"version"`
	// CreatedUnixNs is when the artifact was written, on the writer's
	// (possibly injected) clock.
	CreatedUnixNs int64 `json:"created_unix_ns"`
	// Source names the writer: "t3train", "ctrl", "seed", ...
	Source string `json:"source"`
	// Trees and NumFeatures describe the ensemble shape.
	Trees       int `json:"trees"`
	NumFeatures int `json:"num_features"`
	// TrainLabels and HoldoutLabels count the queries behind the model.
	TrainLabels   int `json:"train_labels,omitempty"`
	HoldoutLabels int `json:"holdout_labels,omitempty"`
	// HoldoutFingerprint is the stable fingerprint of the held-out label
	// set the candidate was shadow-evaluated on (workload.LabelSet
	// fingerprint for controller retrains, benchdata corpus fingerprint
	// for t3train), so an artifact records what judged it.
	HoldoutFingerprint uint64 `json:"holdout_fingerprint,omitempty"`
	// ParentVersion is the version that was live when this artifact was
	// promoted (0 = none/unknown) — the rollback target.
	ParentVersion int `json:"parent_version,omitempty"`
	// Note is free-form provenance (flags, drift episode, ...).
	Note string `json:"note,omitempty"`
}

// Artifact is one versioned model: metadata, the trained ensemble, and its
// compiled packed tier.
type Artifact struct {
	Meta Meta
	// GBM is the authoritative trained ensemble.
	GBM *gbdt.Model
	// Packed is the compiled tier. Encode derives it from GBM when nil;
	// Decode verifies the stored tier matches a fresh compile of GBM, so a
	// loaded artifact's two representations can never disagree.
	Packed *treec.Packed
}

// Encode serializes the artifact to its canonical byte form:
//
//	magic[8] | u32 metaLen, meta JSON | u32 gbmLen, gbm JSON |
//	u32 packedLen, packed binary | sha256[32] over everything above
func Encode(a *Artifact) ([]byte, error) {
	if a.GBM == nil {
		return nil, fmt.Errorf("registry: artifact has no model")
	}
	metaJSON, err := json.Marshal(a.Meta)
	if err != nil {
		return nil, fmt.Errorf("registry: marshal meta: %w", err)
	}
	gbmJSON, err := json.Marshal(a.GBM)
	if err != nil {
		return nil, fmt.Errorf("registry: marshal model: %w", err)
	}
	packed := a.Packed
	if packed == nil {
		packed = treec.Pack(a.GBM)
	}
	packedBin := treec.AppendPacked(nil, packed)

	var buf bytes.Buffer
	buf.Write(magic[:])
	writeSection(&buf, metaJSON)
	writeSection(&buf, gbmJSON)
	writeSection(&buf, packedBin)
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes(), nil
}

// Decode parses and fully verifies an Encode'd artifact: magic, format
// version, SHA-256 trailer, model structural validity, and packed-tier
// equivalence (the stored compiled tier must be byte-identical to
// recompiling the stored ensemble).
func Decode(data []byte) (*Artifact, error) {
	if len(data) < len(magic)+sha256.Size {
		return nil, fmt.Errorf("registry: artifact truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:len(magic)], magic[:]) {
		return nil, fmt.Errorf("registry: bad artifact magic")
	}
	body, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], trailer) {
		return nil, fmt.Errorf("registry: artifact checksum mismatch (corrupt or truncated)")
	}
	rest := body[len(magic):]
	metaJSON, rest, err := readSection(rest)
	if err != nil {
		return nil, fmt.Errorf("registry: meta section: %w", err)
	}
	gbmJSON, rest, err := readSection(rest)
	if err != nil {
		return nil, fmt.Errorf("registry: model section: %w", err)
	}
	packedBin, rest, err := readSection(rest)
	if err != nil {
		return nil, fmt.Errorf("registry: packed section: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("registry: %d trailing bytes in artifact body", len(rest))
	}

	a := &Artifact{}
	if err := json.Unmarshal(metaJSON, &a.Meta); err != nil {
		return nil, fmt.Errorf("registry: parse meta: %w", err)
	}
	if a.Meta.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("registry: artifact format version %d, want %d", a.Meta.FormatVersion, FormatVersion)
	}
	a.GBM = &gbdt.Model{}
	if err := json.Unmarshal(gbmJSON, a.GBM); err != nil {
		return nil, fmt.Errorf("registry: parse model: %w", err)
	}
	if err := a.GBM.Validate(); err != nil {
		return nil, fmt.Errorf("registry: invalid model: %w", err)
	}
	// The packed tier must be exactly what compiling the stored ensemble
	// yields — a drifted compiler or a partial write can't slip through.
	recompiled := treec.Pack(a.GBM)
	if !bytes.Equal(packedBin, treec.AppendPacked(nil, recompiled)) {
		return nil, fmt.Errorf("registry: packed tier does not match stored ensemble")
	}
	a.Packed = recompiled
	return a, nil
}

func writeSection(buf *bytes.Buffer, b []byte) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(b)))
	buf.Write(n[:])
	buf.Write(b)
}

func readSection(b []byte) (section, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("truncated length prefix")
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n < 0 || len(b)-4 < n {
		return nil, nil, fmt.Errorf("section length %d exceeds remaining %d bytes", n, len(b)-4)
	}
	return b[4 : 4+n], b[4+n:], nil
}

// Registry is a directory of versioned artifacts. Safe for concurrent use
// within one process; cross-process writers race only on version
// assignment (last rename wins), which the single-controller deployment
// model makes a non-issue.
type Registry struct {
	dir string
	mu  sync.Mutex
}

// Open opens (creating if needed) a registry rooted at dir.
func Open(dir string) (*Registry, error) {
	if dir == "" {
		return nil, fmt.Errorf("registry: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: create %s: %w", dir, err)
	}
	return &Registry{dir: dir}, nil
}

// Dir returns the registry's root directory.
func (r *Registry) Dir() string { return r.dir }

// Path returns the file path of a version (whether or not it exists).
func (r *Registry) Path(version int) string {
	return filepath.Join(r.dir, fmt.Sprintf("v%06d.t3m", version))
}

// versions returns the existing version numbers, ascending. Callers hold
// r.mu or tolerate races with concurrent Put/GC.
func (r *Registry) versions() ([]int, error) {
	ents, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("registry: read %s: %w", r.dir, err)
	}
	var vs []int
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "v") || !strings.HasSuffix(name, ".t3m") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "v"), ".t3m"))
		if err != nil || n < 1 {
			continue
		}
		vs = append(vs, n)
	}
	sort.Ints(vs)
	return vs, nil
}

// Put assigns the next version number, stamps it into the metadata, and
// writes the artifact atomically (temp file + rename). It returns the
// assigned version. The caller fills every other Meta field — in
// particular CreatedUnixNs, which comes from the caller's clock so tests
// stay deterministic.
func (r *Registry) Put(a *Artifact) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	vs, err := r.versions()
	if err != nil {
		return 0, err
	}
	next := 1
	if len(vs) > 0 {
		next = vs[len(vs)-1] + 1
	}
	a.Meta.Version = next
	a.Meta.FormatVersion = FormatVersion
	if a.GBM != nil {
		a.Meta.Trees = len(a.GBM.Trees)
		a.Meta.NumFeatures = a.GBM.NumFeatures
	}
	data, err := Encode(a)
	if err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(r.dir, ".put-*")
	if err != nil {
		return 0, fmt.Errorf("registry: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("registry: write artifact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("registry: sync artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("registry: close artifact: %w", err)
	}
	if err := os.Rename(tmpName, r.Path(next)); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("registry: rename artifact: %w", err)
	}
	Writes.Inc()
	return next, nil
}

// Load reads and fully verifies one version. Corruption — a flipped bit, a
// truncated write, a packed tier that disagrees with the ensemble — is an
// error, never a silently wrong model.
func (r *Registry) Load(version int) (*Artifact, error) {
	data, err := os.ReadFile(r.Path(version))
	if err != nil {
		return nil, fmt.Errorf("registry: read version %d: %w", version, err)
	}
	a, err := Decode(data)
	if err != nil {
		CorruptRejects.Inc()
		return nil, fmt.Errorf("registry: version %d: %w", version, err)
	}
	if a.Meta.Version != version {
		CorruptRejects.Inc()
		return nil, fmt.Errorf("registry: file v%06d claims version %d", version, a.Meta.Version)
	}
	Loads.Inc()
	return a, nil
}

// List returns the metadata of every stored version, ascending. Artifacts
// that fail verification are skipped (they still occupy their version
// number); Load reports their corruption precisely.
func (r *Registry) List() ([]Meta, error) {
	r.mu.Lock()
	vs, err := r.versions()
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	metas := make([]Meta, 0, len(vs))
	for _, v := range vs {
		a, err := r.Load(v)
		if err != nil {
			continue
		}
		metas = append(metas, a.Meta)
	}
	return metas, nil
}

// Latest returns the highest stored version number, or ok=false when the
// registry is empty.
func (r *Registry) Latest() (version int, ok bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	vs, err := r.versions()
	if err != nil || len(vs) == 0 {
		return 0, false, err
	}
	return vs[len(vs)-1], true, nil
}

// GC deletes all but the newest keep versions and returns how many were
// removed. keep < 1 is a no-op: a registry is never emptied by GC.
func (r *Registry) GC(keep int) (removed int, err error) {
	if keep < 1 {
		return 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	vs, err := r.versions()
	if err != nil {
		return 0, err
	}
	for len(vs) > keep {
		if err := os.Remove(r.Path(vs[0])); err != nil {
			return removed, fmt.Errorf("registry: gc version %d: %w", vs[0], err)
		}
		removed++
		vs = vs[1:]
	}
	return removed, nil
}
