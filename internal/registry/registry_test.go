package registry

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"t3/internal/gbdt"
	"t3/internal/treec"
)

var update = flag.Bool("update", false, "rewrite the golden artifact")

// handModel builds a small fixed ensemble by hand — no training, so its
// bytes are stable across grower changes and usable in golden files.
func handModel() *gbdt.Model {
	return &gbdt.Model{
		BaseScore:   1.25,
		NumFeatures: 4,
		Trees: []gbdt.Tree{
			{
				Nodes: []gbdt.Node{
					{Feature: 0, Threshold: 2.5, Left: 1, Right: ^int32(2)},
					{Feature: 2, Threshold: -0.75, Left: ^int32(0), Right: ^int32(1)},
				},
				Leaves: []float64{-0.5, 0.125, 0.875},
			},
			{
				Nodes: []gbdt.Node{
					{Feature: 3, Threshold: 10, Left: ^int32(0), Right: ^int32(1)},
				},
				Leaves: []float64{0.0625, -0.25},
			},
			{Leaves: []float64{0.03125}}, // constant tree folds into Base
		},
		// Pinned literal params: the golden must not move when training
		// defaults do.
		Params: gbdt.Params{
			NumRounds: 3, NumLeaves: 4, LearningRate: 0.1, MinDataInLeaf: 1,
			Lambda: 1, MaxBins: 16, Objective: gbdt.ObjectiveL2,
			FeatureFraction: 1, BaggingFraction: 1, Seed: 1,
		},
		BestIteration: 3,
	}
}

// trainedModel trains a small real ensemble for round-trip tests that
// should exercise realistic tree shapes.
func trainedModel(t *testing.T) *gbdt.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	const n, f = 500, 8
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		v := make([]float64, f)
		for j := range v {
			v[j] = rng.Float64() * 8
		}
		xs[i] = v
		ys[i] = v[1] - 0.5*v[4] + v[6]*v[6]*0.1
	}
	p := gbdt.DefaultParams()
	p.NumRounds = 15
	p.Seed = 2
	m, _, err := gbdt.Train(p, xs, ys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func openTemp(t *testing.T) *Registry {
	t.Helper()
	r, err := Open(filepath.Join(t.TempDir(), "registry"))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPutLoadRoundTrip(t *testing.T) {
	r := openTemp(t)
	gbm := trainedModel(t)
	ver, err := r.Put(&Artifact{
		Meta: Meta{
			CreatedUnixNs:      12345,
			Source:             "test",
			TrainLabels:        300,
			HoldoutLabels:      100,
			HoldoutFingerprint: 0xDEADBEEF12345678,
		},
		GBM: gbm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 {
		t.Fatalf("first Put assigned version %d, want 1", ver)
	}

	a, err := r.Load(ver)
	if err != nil {
		t.Fatal(err)
	}
	if a.Meta.Version != 1 || a.Meta.Source != "test" || a.Meta.HoldoutFingerprint != 0xDEADBEEF12345678 {
		t.Fatalf("meta mismatch: %+v", a.Meta)
	}
	if a.Meta.Trees != len(gbm.Trees) || a.Meta.NumFeatures != gbm.NumFeatures {
		t.Fatalf("shape meta mismatch: %+v", a.Meta)
	}

	// The stored ensemble must serve bit-identical predictions to the
	// in-memory one, on both tiers.
	packed := treec.Pack(gbm)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		v := make([]float64, gbm.NumFeatures)
		for j := range v {
			v[j] = rng.Float64() * 8
		}
		if got, want := a.GBM.Predict(v), gbm.Predict(v); got != want {
			t.Fatalf("loaded gbm predicts %v, want %v", got, want)
		}
		if got, want := a.Packed.Predict(v), packed.Predict(v); got != want {
			t.Fatalf("loaded packed tier predicts %v, want %v", got, want)
		}
	}
}

func TestArtifactByteIdentity(t *testing.T) {
	// Encode(Decode(Encode(a))) must reproduce the file bytes exactly:
	// rollback is advertised as bit-identical restoration.
	a := &Artifact{Meta: Meta{FormatVersion: FormatVersion, Version: 1, CreatedUnixNs: 99, Source: "test"}, GBM: handModel()}
	a.Meta.Trees = len(a.GBM.Trees)
	a.Meta.NumFeatures = a.GBM.NumFeatures
	enc1, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc1)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := Encode(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("artifact does not round-trip byte-identically")
	}
}

func TestVersionsListLatestGC(t *testing.T) {
	r := openTemp(t)
	gbm := handModel()
	for i := 0; i < 5; i++ {
		ver, err := r.Put(&Artifact{Meta: Meta{CreatedUnixNs: int64(i), Source: "test"}, GBM: gbm})
		if err != nil {
			t.Fatal(err)
		}
		if ver != i+1 {
			t.Fatalf("Put %d assigned version %d", i, ver)
		}
	}
	metas, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 5 {
		t.Fatalf("List returned %d metas, want 5", len(metas))
	}
	for i, m := range metas {
		if m.Version != i+1 {
			t.Fatalf("List[%d].Version = %d, want ascending", i, m.Version)
		}
	}
	v, ok, err := r.Latest()
	if err != nil || !ok || v != 5 {
		t.Fatalf("Latest = (%d,%v,%v), want (5,true,nil)", v, ok, err)
	}

	removed, err := r.GC(2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("GC removed %d, want 3", removed)
	}
	if _, err := r.Load(1); err == nil {
		t.Fatal("version 1 still loadable after GC")
	}
	if _, err := r.Load(4); err != nil {
		t.Fatalf("version 4 gone after GC(2): %v", err)
	}
	// Version numbering keeps ascending after GC.
	ver, err := r.Put(&Artifact{Meta: Meta{Source: "test"}, GBM: gbm})
	if err != nil || ver != 6 {
		t.Fatalf("post-GC Put = (%d,%v), want (6,nil)", ver, err)
	}
	// GC(0) never empties the registry.
	if n, err := r.GC(0); err != nil || n != 0 {
		t.Fatalf("GC(0) = (%d,%v), want no-op", n, err)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	r := openTemp(t)
	ver, err := r.Put(&Artifact{Meta: Meta{Source: "test"}, GBM: handModel()})
	if err != nil {
		t.Fatal(err)
	}
	path := r.Path(ver)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	before := CorruptRejects.Value()

	// Single flipped byte in the middle: checksum rejection.
	bad := append([]byte(nil), orig...)
	bad[len(bad)/2] ^= 0x01
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load(ver); err == nil {
		t.Fatal("corrupt artifact loaded without error")
	}

	// Truncation: also rejected.
	if err := os.WriteFile(path, orig[:len(orig)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load(ver); err == nil {
		t.Fatal("truncated artifact loaded without error")
	}

	// Empty file.
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load(ver); err == nil {
		t.Fatal("empty artifact loaded without error")
	}

	if got := CorruptRejects.Value() - before; got != 3 {
		t.Fatalf("t3_registry_corrupt_total advanced by %d, want 3", got)
	}

	// Restoring the original bytes restores loadability — corruption
	// detection has no side effects on the artifact itself.
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load(ver); err != nil {
		t.Fatalf("restored artifact fails to load: %v", err)
	}
}

func TestListSkipsCorruptEntries(t *testing.T) {
	r := openTemp(t)
	gbm := handModel()
	for i := 0; i < 3; i++ {
		if _, err := r.Put(&Artifact{Meta: Meta{Source: "test"}, GBM: gbm}); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(r.Path(2), []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}
	metas, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 || metas[0].Version != 1 || metas[1].Version != 3 {
		t.Fatalf("List over corrupt registry = %+v, want versions 1 and 3", metas)
	}
}

// TestArtifactGoldenRoundTrip pins the artifact byte format: the checked-in
// golden file must decode, and re-encoding the canonical artifact must
// reproduce it byte for byte. Gated on FormatVersion — bumping the format
// requires regenerating the golden with -update and reviewing the diff.
func TestArtifactGoldenRoundTrip(t *testing.T) {
	golden := filepath.Join("testdata", "artifact_v1.t3m")
	a := &Artifact{
		Meta: Meta{
			FormatVersion:      FormatVersion,
			Version:            1,
			CreatedUnixNs:      1700000000000000000,
			Source:             "golden",
			TrainLabels:        12,
			HoldoutLabels:      4,
			HoldoutFingerprint: 0x0123456789ABCDEF,
			ParentVersion:      0,
			Note:               "format-v1 golden artifact",
		},
		GBM: handModel(),
	}
	a.Meta.Trees = len(a.GBM.Trees)
	a.Meta.NumFeatures = a.GBM.NumFeatures
	enc, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}

	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, enc, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(enc))
	}

	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update after a deliberate format change): %v", err)
	}
	dec, err := Decode(want)
	if err != nil {
		t.Fatalf("golden artifact does not decode: %v", err)
	}
	if dec.Meta.FormatVersion != FormatVersion {
		t.Fatalf("golden has format version %d but code is at %d — regenerate with -update and review",
			dec.Meta.FormatVersion, FormatVersion)
	}
	if !bytes.Equal(enc, want) {
		t.Fatalf("encoding drifted from golden (%d vs %d bytes): the artifact format changed without a FormatVersion bump",
			len(enc), len(want))
	}
}
