//go:build !race

package serve

// raceEnabled reports whether the race detector is on; allocation-count
// guards are skipped under -race because its instrumentation allocates.
const raceEnabled = false
