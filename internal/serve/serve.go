// Package serve is the high-throughput serving core behind cmd/t3serve:
// the binary wire endpoints (/predict.bin over HTTP and a raw TCP
// listener), the fingerprint-keyed prediction cache, request coalescing
// into batched prediction, and atomic model hot-swapping.
//
// The request path, in order:
//
//  1. Decode the wire frame into a pooled per-connection scratch
//     (wire.Decoder arena — no steady-state allocation).
//  2. Fingerprint the plan (wire.PlanKey) and probe the prediction cache;
//     a hit answers immediately without touching the model.
//  3. On a miss, hand the plan to the card-mode's coalescer, which gathers
//     concurrent misses into one Model.PredictBatchInto call, then insert
//     the result into the cache.
//
// Model swaps (SetModel) are an atomic pointer store plus one cache
// generation bump: in-flight requests finish against whichever model their
// dispatch loaded, and no request ever observes a stale cached prediction
// from the previous model.
package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"t3"
	"t3/internal/coalesce"
	"t3/internal/engine/plan"
	"t3/internal/obs"
	"t3/internal/obs/trace"
	"t3/internal/predcache"
	"t3/internal/wire"
)

// Config tunes the serving core. The zero value enables the cache and the
// coalescer with defaults.
type Config struct {
	// MaxBatch caps requests per coalesced dispatch (0 = 64).
	MaxBatch int
	// MaxWait bounds how long the first request of a coalescing window
	// waits for company (0 = 20µs).
	MaxWait time.Duration
	// CacheEntries bounds the prediction cache (0 = 65536). Negative
	// disables caching.
	CacheEntries int
	// NoCoalesce disables request coalescing: every miss dispatches its
	// own single-plan prediction (for A/B benchmarking).
	NoCoalesce bool
}

// DefaultCacheEntries is the default prediction-cache bound. At 40 bytes a
// slot this is ~2.6 MiB — small against the model itself.
const DefaultCacheEntries = 1 << 16

// Server is the serving core. Safe for concurrent use.
type Server struct {
	model atomic.Pointer[t3.Model]
	cache *predcache.Cache // nil when disabled
	// One coalescer per card mode: a batch dispatches a single
	// PredictBatchInto call, which takes the mode once.
	batchers [2]*coalesce.Batcher
	conns    sync.Pool // *connScratch
	cfg      Config
}

// connScratch is the per-connection reusable state of the binary request
// path: frame read buffer, plan-decode arena, response write buffer, and a
// prediction scratch for uncoalesced dispatches.
type connScratch struct {
	hdr  [wire.HeaderSize]byte
	body []byte
	resp []byte
	dec  wire.Decoder
	pred t3.PredictScratch
}

// New builds a serving core around the given model.
func New(model *t3.Model, cfg Config) *Server {
	s := &Server{cfg: cfg}
	s.model.Store(model)
	if cfg.CacheEntries >= 0 {
		n := cfg.CacheEntries
		if n == 0 {
			n = DefaultCacheEntries
		}
		s.cache = predcache.New(n)
	}
	for mode := range s.batchers {
		m := plan.CardMode(mode)
		s.batchers[mode] = coalesce.New(func(roots []*plan.Node, out []time.Duration) {
			s.model.Load().PredictBatchInto(roots, m, out)
		}, cfg.MaxBatch, cfg.MaxWait)
	}
	return s
}

// Model returns the currently served model.
func (s *Server) Model() *t3.Model { return s.model.Load() }

// SetModel atomically swaps the served model and invalidates every cached
// prediction. In-flight dispatches complete on the model they loaded.
func (s *Server) SetModel(m *t3.Model) {
	s.model.Store(m)
	if s.cache != nil {
		s.cache.Invalidate()
	}
}

// CacheGeneration reports the prediction cache's generation counter, which
// advances on every SetModel (0 when caching is disabled).
func (s *Server) CacheGeneration() uint64 {
	if s.cache == nil {
		return 0
	}
	return s.cache.Generation()
}

// CacheLen reports live cache entries (0 when caching is disabled).
func (s *Server) CacheLen() int {
	if s.cache == nil {
		return 0
	}
	return s.cache.Len()
}

// getConn hands out a pooled connection scratch.
func (s *Server) getConn() *connScratch {
	if c, ok := s.conns.Get().(*connScratch); ok {
		return c
	}
	return &connScratch{}
}

// predictPayload serves one binary plan payload: decode, cache probe,
// coalesced predict, cache fill. It returns the predicted nanoseconds.
//
// A sampled subset of requests (trace.Default) records a flight-recorder
// trace of the whole path — decode, cache lookup, coalesce wait or model
// stages — without allocating; the untraced majority pays one atomic add.
func (s *Server) predictPayload(c *connScratch, payload []byte, mode plan.CardMode) (int64, error) {
	tr := trace.Default.Begin(trace.KindServeBin, uint8(mode))
	var t0 time.Time
	if tr != nil {
		t0 = tr.Start()
	}
	root, err := c.dec.Decode(payload)
	if err != nil {
		if tr != nil {
			tr.Flags |= trace.FlagError
			trace.Default.Publish(tr)
		}
		return 0, err
	}
	tr.Record(trace.StageWireDecode, t0, uint32(len(payload)))
	var key predcache.Key
	if s.cache != nil {
		if tr != nil {
			t0 = time.Now()
		}
		key = predcache.Key(wire.PlanKey(root, mode))
		d, ok := s.cache.Get(key)
		if tr != nil {
			tr.Record(trace.StageCacheLookup, t0, 0)
			tr.Fingerprint = trace.KeyFingerprint(wire.Key(key))
		}
		if ok {
			if tr != nil {
				tr.Flags |= trace.FlagCacheHit
				tr.PredictedNs = d.Nanoseconds()
				trace.Default.Publish(tr)
			}
			return d.Nanoseconds(), nil
		}
	}
	var d time.Duration
	if s.cfg.NoCoalesce {
		// Direct dispatch over the connection's own scratch: the model's
		// decompose/featurize/tree-eval spans land on this request's trace.
		c.pred.AttachTrace(tr)
		d, _ = s.Model().PredictPlanScratch(root, mode, &c.pred)
		c.pred.AttachTrace(nil)
	} else {
		if tr != nil {
			t0 = time.Now()
		}
		d = s.batchers[mode].Predict(root)
		if tr != nil {
			tr.Record(trace.StageCoalesce, t0, 0)
			tr.Flags |= trace.FlagCoalesced
		}
	}
	if s.cache != nil {
		s.cache.Put(key, d)
	}
	if tr != nil {
		if s.cache == nil {
			tr.Fingerprint = trace.KeyFingerprint(wire.PlanKey(root, mode))
		}
		tr.PredictedNs = d.Nanoseconds()
		trace.Default.Publish(tr)
	}
	return d.Nanoseconds(), nil
}

// PredictBinHandler returns the HTTP handler of POST /predict.bin: the
// request body is one wire request frame, the response body one wire
// response frame.
func (s *Server) PredictBinHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		obs.ServeBinRequests.Inc()
		obs.ServeInflight.Inc()
		defer obs.ServeInflight.Dec()
		if r.Method != http.MethodPost {
			obs.ServeBinErrors.Inc()
			http.Error(w, "POST a wire frame", http.StatusMethodNotAllowed)
			return
		}
		c := s.getConn()
		defer s.conns.Put(c)
		ns, status, err := s.handleFrame(c, r.Body)
		w.Header().Set("Content-Type", "application/octet-stream")
		c.resp = c.resp[:0]
		if err != nil {
			obs.ServeBinErrors.Inc()
			w.WriteHeader(http.StatusBadRequest)
			c.resp = wire.AppendErrorResponse(c.resp, status, err.Error())
		} else {
			c.resp = wire.AppendResponse(c.resp, ns)
		}
		_, _ = w.Write(c.resp)
		obs.ServeBinLatency.Since(start)
	}
}

// handleFrame reads one request frame from rd and serves it.
func (s *Server) handleFrame(c *connScratch, rd io.Reader) (int64, byte, error) {
	if _, err := io.ReadFull(rd, c.hdr[:]); err != nil {
		return 0, wire.StatusBadRequest, fmt.Errorf("reading frame header: %w", err)
	}
	mode, n, err := wire.ParseHeader(c.hdr[:])
	if err != nil {
		return 0, wire.StatusBadRequest, err
	}
	if cap(c.body) < n {
		c.body = make([]byte, n)
	}
	c.body = c.body[:n]
	if _, err := io.ReadFull(rd, c.body); err != nil {
		return 0, wire.StatusBadRequest, fmt.Errorf("reading frame payload: %w", err)
	}
	ns, err := s.predictPayload(c, c.body, mode)
	if err != nil {
		return 0, wire.StatusBadRequest, err
	}
	return ns, wire.StatusOK, nil
}

// ServeTCP accepts connections on l and speaks the framed wire protocol on
// each: any number of request frames per connection, one response frame
// per request, in order. It returns when the listener is closed.
func (s *Server) ServeTCP(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveConn(conn)
	}
}

// serveConn runs one connection's request loop over pooled scratch.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	c := s.getConn()
	defer s.conns.Put(c)
	rd := bufio.NewReaderSize(conn, 64<<10)
	wr := bufio.NewWriterSize(conn, 32<<10)
	for {
		if _, err := io.ReadFull(rd, c.hdr[:]); err != nil {
			return // EOF or torn connection: drop it
		}
		start := time.Now()
		obs.ServeBinRequests.Inc()
		obs.ServeInflight.Inc()
		mode, n, err := wire.ParseHeader(c.hdr[:])
		if err != nil {
			// Framing is broken; answer once and hang up.
			obs.ServeBinErrors.Inc()
			obs.ServeInflight.Dec()
			c.resp = wire.AppendErrorResponse(c.resp[:0], wire.StatusBadRequest, err.Error())
			_, _ = wr.Write(c.resp)
			_ = wr.Flush()
			return
		}
		if cap(c.body) < n {
			c.body = make([]byte, n)
		}
		c.body = c.body[:n]
		if _, err := io.ReadFull(rd, c.body); err != nil {
			obs.ServeInflight.Dec()
			return
		}
		c.resp = c.resp[:0]
		if ns, perr := s.predictPayload(c, c.body, mode); perr != nil {
			// A malformed plan poisons only this request; the frame
			// boundary is intact, so the connection survives.
			obs.ServeBinErrors.Inc()
			c.resp = wire.AppendErrorResponse(c.resp, wire.StatusBadRequest, perr.Error())
		} else {
			c.resp = wire.AppendResponse(c.resp, ns)
		}
		if _, err := wr.Write(c.resp); err != nil {
			obs.ServeInflight.Dec()
			return
		}
		// Flush only when no further request is already buffered, so
		// pipelined clients batch response writes too.
		if rd.Buffered() < wire.HeaderSize {
			if err := wr.Flush(); err != nil {
				obs.ServeInflight.Dec()
				return
			}
		}
		obs.ServeInflight.Dec()
		obs.ServeBinLatency.Since(start)
	}
}
