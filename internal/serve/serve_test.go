package serve

import (
	"bytes"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"t3"
	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/obs"
	"t3/internal/obs/trace"
	"t3/internal/predcache"
	"t3/internal/wire"
	"t3/internal/workload"
)

var (
	modelOnce sync.Once
	model     *t3.Model
	modelErr  error
)

func loadModel(t *testing.T) *t3.Model {
	t.Helper()
	modelOnce.Do(func() { model, modelErr = t3.Load("../../models/t3_default.json") })
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return model
}

func benchPlans(t *testing.T) []*plan.Node {
	t.Helper()
	in := workload.MustGenerate(workload.TPCHSpec("tpch_serve", 0.01, 3))
	qs := workload.TPCHBenchmarkQueries(in)
	roots := make([]*plan.Node, 0, len(qs))
	for _, q := range qs {
		if err := exec.AnnotateTrueCards(q.Root); err != nil {
			t.Fatal(err)
		}
		roots = append(roots, q.Root)
	}
	return roots
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	return New(loadModel(t), cfg)
}

func TestPredictBinHTTPMatchesPredictPlan(t *testing.T) {
	s := newServer(t, Config{MaxWait: 50 * time.Microsecond})
	h := httptest.NewServer(s.PredictBinHandler())
	defer h.Close()

	m := loadModel(t)
	for _, root := range benchPlans(t) {
		want, _ := m.PredictPlan(root, plan.TrueCards)
		frame := wire.AppendFrame(nil, root, plan.TrueCards)
		resp, err := http.Post(h.URL, "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		ns, err := wire.ParseResponse(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if ns != want.Nanoseconds() {
			t.Fatalf("served %d ns, PredictPlan says %d ns", ns, want.Nanoseconds())
		}
	}
}

func TestPredictBinRejectsGarbage(t *testing.T) {
	s := newServer(t, Config{})
	h := httptest.NewServer(s.PredictBinHandler())
	defer h.Close()

	resp, err := http.Post(h.URL, "application/octet-stream", bytes.NewReader([]byte("not a frame at all")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	if _, err := wire.ParseResponse(buf.Bytes()); err == nil {
		t.Fatal("garbage request produced an ok response frame")
	}
}

func TestServeTCPRoundtripAndPipelining(t *testing.T) {
	s := newServer(t, Config{MaxWait: 50 * time.Microsecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = s.ServeTCP(l) }()

	m := loadModel(t)
	roots := benchPlans(t)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Pipelined: write every request first, then read every response in
	// order.
	var frames []byte
	var want []int64
	for _, root := range roots {
		frames = wire.AppendFrame(frames, root, plan.TrueCards)
		d, _ := m.PredictPlan(root, plan.TrueCards)
		want = append(want, d.Nanoseconds())
	}
	if _, err := conn.Write(frames); err != nil {
		t.Fatal(err)
	}
	respBuf := make([]byte, wire.HeaderSize+8)
	for i := range roots {
		if err := readFull(conn, respBuf); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		ns, err := wire.ParseResponse(respBuf)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if ns != want[i] {
			t.Fatalf("response %d: %d ns, want %d", i, ns, want[i])
		}
	}
}

func readFull(conn net.Conn, buf []byte) error {
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for n := 0; n < len(buf); {
		m, err := conn.Read(buf[n:])
		if err != nil {
			return err
		}
		n += m
	}
	return nil
}

// TestBadPlanKeepsTCPConnectionAlive: a well-framed but undecodable plan
// answers an error frame without dropping the connection.
func TestBadPlanKeepsTCPConnectionAlive(t *testing.T) {
	s := newServer(t, Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = s.ServeTCP(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Valid header, garbage payload.
	bad := make([]byte, wire.HeaderSize)
	wire.PutHeader(bad, plan.TrueCards, 4)
	bad = append(bad, 0xEE, 0xEE, 0xEE, 0xEE)
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, wire.HeaderSize)
	if err := readFull(conn, hdr); err != nil {
		t.Fatal(err)
	}
	if hdr[3] != wire.StatusBadRequest {
		t.Fatalf("status %d, want bad request", hdr[3])
	}
	msg := make([]byte, int(uint32(hdr[4])|uint32(hdr[5])<<8|uint32(hdr[6])<<16|uint32(hdr[7])<<24))
	if err := readFull(conn, msg); err != nil {
		t.Fatal(err)
	}

	// The connection must still serve a good request.
	root := benchPlans(t)[0]
	if _, err := conn.Write(wire.AppendFrame(nil, root, plan.TrueCards)); err != nil {
		t.Fatal(err)
	}
	resp := make([]byte, wire.HeaderSize+8)
	if err := readFull(conn, resp); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ParseResponse(resp); err != nil {
		t.Fatal(err)
	}
}

func TestCacheHitsAndModelSwapInvalidation(t *testing.T) {
	s := newServer(t, Config{})
	c := s.getConn()
	root := benchPlans(t)[1]
	payload := wire.AppendPlan(nil, root)

	hits0, misses0 := obs.ServeCacheHits.Value(), obs.ServeCacheMisses.Value()
	ns1, err := s.predictPayload(c, payload, plan.TrueCards)
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.ServeCacheMisses.Value() - misses0; got != 1 {
		t.Fatalf("first request: %d misses, want 1", got)
	}
	ns2, err := s.predictPayload(c, payload, plan.TrueCards)
	if err != nil {
		t.Fatal(err)
	}
	if ns2 != ns1 {
		t.Fatalf("cache served %d ns, first prediction was %d ns", ns2, ns1)
	}
	if got := obs.ServeCacheHits.Value() - hits0; got != 1 {
		t.Fatalf("second request: %d hits, want 1", got)
	}
	if s.CacheLen() != 1 {
		t.Fatalf("CacheLen = %d, want 1", s.CacheLen())
	}

	// Swap the model: same bytes must MISS (and still predict correctly).
	m2, err := t3.Load("../../models/t3_default.json")
	if err != nil {
		t.Fatal(err)
	}
	s.SetModel(m2)
	if s.CacheLen() != 0 {
		t.Fatalf("CacheLen = %d after swap, want 0", s.CacheLen())
	}
	misses1 := obs.ServeCacheMisses.Value()
	ns3, err := s.predictPayload(c, payload, plan.TrueCards)
	if err != nil {
		t.Fatal(err)
	}
	if obs.ServeCacheMisses.Value()-misses1 != 1 {
		t.Fatal("post-swap request did not miss")
	}
	if ns3 != ns1 {
		t.Fatalf("identical model predicts %d ns after swap, was %d ns", ns3, ns1)
	}
}

// TestCacheHitRequestPathIsAllocationFree is the tentpole zero-alloc
// guard: a warm binary request that hits the cache — header parse, arena
// decode, fingerprint, cache probe — performs zero heap allocations.
func TestCacheHitRequestPathIsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	s := newServer(t, Config{})
	c := s.getConn()
	root := benchPlans(t)[2]
	payload := wire.AppendPlan(nil, root)
	for i := 0; i < 8; i++ { // warm arena + cache
		if _, err := s.predictPayload(c, payload, plan.TrueCards); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := s.predictPayload(c, payload, plan.TrueCards); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache-hit request path allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestCacheHitAllocationFreeAcrossSwap re-checks the zero-alloc guarantee
// after a model swap: invalidation is a generation bump, so once the cache
// re-warms against the new model the hit path must again be free — no
// rehashing, no entry churn, no per-request cleanup debt from the old
// generation.
func TestCacheHitAllocationFreeAcrossSwap(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	s := newServer(t, Config{})
	c := s.getConn()
	root := benchPlans(t)[3]
	payload := wire.AppendPlan(nil, root)

	measure := func(stage string) {
		t.Helper()
		for i := 0; i < 8; i++ { // warm arena + cache
			if _, err := s.predictPayload(c, payload, plan.TrueCards); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(500, func() {
			if _, err := s.predictPayload(c, payload, plan.TrueCards); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: cache-hit path allocates %.2f allocs/op, want 0", stage, allocs)
		}
	}

	measure("before swap")
	m2, err := t3.Load("../../models/t3_default.json")
	if err != nil {
		t.Fatal(err)
	}
	s.SetModel(m2)
	measure("after swap")
}

// TestConcurrentClientsWithModelSwaps hammers the TCP listener from many
// connections while models are swapped, under -race in CI.
func TestConcurrentClientsWithModelSwaps(t *testing.T) {
	s := newServer(t, Config{MaxWait: 100 * time.Microsecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = s.ServeTCP(l) }()

	m := loadModel(t)
	roots := benchPlans(t)
	frames := make([][]byte, len(roots))
	want := make([]int64, len(roots))
	for i, root := range roots {
		frames[i] = wire.AppendFrame(nil, root, plan.TrueCards)
		d, _ := m.PredictPlan(root, plan.TrueCards)
		want[i] = d.Nanoseconds()
	}

	const clients, perClient = 8, 60
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			resp := make([]byte, wire.HeaderSize+8)
			for i := 0; i < perClient; i++ {
				q := (g + i) % len(roots)
				if _, err := conn.Write(frames[q]); err != nil {
					t.Error(err)
					return
				}
				if err := readFull(conn, resp); err != nil {
					t.Error(err)
					return
				}
				ns, err := wire.ParseResponse(resp)
				if err != nil {
					t.Error(err)
					return
				}
				// Both models are loaded from the same artifact, so the
				// prediction is stable across swaps.
				if ns != want[q] {
					t.Errorf("client %d query %d: %d ns, want %d", g, q, ns, want[q])
					return
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				m2, err := t3.Load("../../models/t3_default.json")
				if err == nil {
					s.SetModel(m2)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(done)
}

func TestCacheDisabled(t *testing.T) {
	s := newServer(t, Config{CacheEntries: -1})
	c := s.getConn()
	payload := wire.AppendPlan(nil, benchPlans(t)[0])
	misses0 := obs.ServeCacheMisses.Value()
	if _, err := s.predictPayload(c, payload, plan.TrueCards); err != nil {
		t.Fatal(err)
	}
	if _, err := s.predictPayload(c, payload, plan.TrueCards); err != nil {
		t.Fatal(err)
	}
	if obs.ServeCacheMisses.Value() != misses0 {
		t.Fatal("disabled cache recorded traffic")
	}
	if s.CacheLen() != 0 {
		t.Fatal("disabled cache holds entries")
	}
}

// TestUncoalescedMissPathIsAllocationFree guards the cache-off direct
// dispatch: decode, predict over the connection's own scratch (with its
// trace attached when sampled), respond — zero heap allocations warm.
func TestUncoalescedMissPathIsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	s := newServer(t, Config{NoCoalesce: true, CacheEntries: -1})
	c := s.getConn()
	root := benchPlans(t)[1]
	payload := wire.AppendPlan(nil, root)
	for i := 0; i < 32; i++ { // warm arena, predict scratch, trace pool
		if _, err := s.predictPayload(c, payload, plan.TrueCards); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := s.predictPayload(c, payload, plan.TrueCards); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("uncoalesced miss path allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestServeRequestsAppearInFlightRecorder drives enough requests through
// the sampled recorder to see serve-path traces in the ring, with the
// stages and flags the path implies.
func TestServeRequestsAppearInFlightRecorder(t *testing.T) {
	s := newServer(t, Config{MaxWait: 50 * time.Microsecond})
	root := benchPlans(t)[0]
	payload := wire.AppendPlan(nil, root)
	c := s.getConn()
	key := predcache.Key(wire.PlanKey(root, plan.TrueCards))
	wantFP := trace.KeyFingerprint(wire.Key(key))

	// 64 requests at 1-in-16 sampling: ~4 traces; all but the first hit.
	for i := 0; i < 64; i++ {
		if _, err := s.predictPayload(c, payload, plan.TrueCards); err != nil {
			t.Fatal(err)
		}
	}
	var hit *trace.Trace
	for _, tr := range trace.Default.Snapshot(nil) {
		if tr.Kind == trace.KindServeBin && tr.Fingerprint == wantFP &&
			tr.Flags&trace.FlagCacheHit != 0 {
			hit = &tr
			break
		}
	}
	if hit == nil {
		t.Fatal("no cache-hit serve trace in the flight recorder after 64 requests")
	}
	stages := map[trace.Stage]bool{}
	for _, sp := range hit.Spans[:hit.NSpans] {
		stages[sp.Stage] = true
	}
	if !stages[trace.StageWireDecode] || !stages[trace.StageCacheLookup] {
		t.Fatalf("cache-hit trace missing decode/lookup spans: %+v", hit.Spans[:hit.NSpans])
	}
	if hit.PredictedNs <= 0 {
		t.Fatalf("trace predicted %d ns", hit.PredictedNs)
	}
}
