package clock

import (
	"testing"
	"time"
)

func TestFakeNowAndAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", f.Now(), start)
	}
	f.Advance(3 * time.Second)
	if want := start.Add(3 * time.Second); !f.Now().Equal(want) {
		t.Fatalf("Now after Advance = %v, want %v", f.Now(), want)
	}
}

func TestFakeTickerFiresInOrder(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(time.Second)
	defer tk.Stop()

	// One advance spanning several periods delivers ticks one at a time:
	// the 1-buffered channel means only the first undrained fire lands.
	f.Advance(500 * time.Millisecond)
	select {
	case at := <-tk.C():
		t.Fatalf("ticker fired early at %v", at)
	default:
	}
	f.Advance(time.Second)
	at := <-tk.C()
	if want := time.Unix(1, 0); !at.Equal(want) {
		t.Fatalf("first tick at %v, want %v", at, want)
	}

	// Drain between advances: each period yields exactly one tick at the
	// right fake time (period boundaries, not advance boundaries).
	f.Advance(time.Second)
	at = <-tk.C()
	if want := time.Unix(2, 0); !at.Equal(want) {
		t.Fatalf("second tick at %v, want %v", at, want)
	}
}

func TestFakeTickerDropsWhenNotDrained(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(time.Second)
	defer tk.Stop()

	// Five periods with nobody reading: only one tick is pending (the
	// buffered one), matching time.Ticker drop semantics.
	f.Advance(5 * time.Second)
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("pending ticks = %d, want 1 (drop semantics)", n)
	}
}

func TestFakeTickerStop(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(time.Second)
	tk.Stop()
	f.Advance(10 * time.Second)
	select {
	case at := <-tk.C():
		t.Fatalf("stopped ticker fired at %v", at)
	default:
	}
}

func TestFakeMultipleTickersInterleave(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	a := f.NewTicker(2 * time.Second)
	b := f.NewTicker(3 * time.Second)
	defer a.Stop()
	defer b.Stop()

	f.Advance(2 * time.Second)
	if at := <-a.C(); !at.Equal(time.Unix(2, 0)) {
		t.Fatalf("a fired at %v", at)
	}
	f.Advance(time.Second)
	if at := <-b.C(); !at.Equal(time.Unix(3, 0)) {
		t.Fatalf("b fired at %v", at)
	}
}

func TestRealClockBasics(t *testing.T) {
	before := time.Now()
	now := Real.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("Real.Now %v too far before time.Now %v", now, before)
	}
	tk := Real.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real ticker never fired")
	}
}
