// Package clock is the injectable time source of the continuous-learning
// control plane. Production code runs on the wall clock (Real); tests drive
// a Fake whose Advance delivers ticker fires synchronously, so an entire
// drift → retrain → promote episode replays deterministically with no real
// sleeps.
//
// The interface is deliberately tiny — Now plus ticker construction — which
// is all the drift detector's tick loop and the retrain controller's
// debounce/timestamps need. Anything that wants richer scheduling should
// compose these primitives rather than widen the interface.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock supplies the current time and periodic tickers.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// NewTicker returns a ticker firing every d (d must be > 0).
	NewTicker(d time.Duration) Ticker
}

// Ticker is the clock-agnostic subset of time.Ticker.
type Ticker interface {
	// C is the channel tick times are delivered on. Like time.Ticker, the
	// channel has a one-element buffer and slow receivers drop ticks.
	C() <-chan time.Time
	// Stop turns the ticker off. It does not close C.
	Stop()
}

// Real is the wall clock.
var Real Clock = realClock{}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) NewTicker(d time.Duration) Ticker {
	return &realTicker{t: time.NewTicker(d)}
}

type realTicker struct{ t *time.Ticker }

func (r *realTicker) C() <-chan time.Time { return r.t.C }
func (r *realTicker) Stop()               { r.t.Stop() }

// Fake is a manually advanced clock. Now never moves on its own; Advance
// moves it forward and fires every due ticker in chronological order,
// delivering each tick before moving past it. Safe for concurrent use.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	tickers []*fakeTicker
}

// NewFake returns a fake clock pinned at start.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now returns the fake's current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the clock forward by d, firing due tickers in time order.
// Tick delivery matches time.Ticker semantics: the channel holds one
// pending tick and further fires are dropped until it is drained.
func (f *Fake) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: negative Advance")
	}
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		// Find the earliest due ticker fire at or before target.
		var due *fakeTicker
		for _, t := range f.tickers {
			if t.stopped || t.next.After(target) {
				continue
			}
			if due == nil || t.next.Before(due.next) {
				due = t
			}
		}
		if due == nil {
			break
		}
		f.now = due.next
		due.next = due.next.Add(due.period)
		select {
		case due.c <- f.now:
		default: // receiver hasn't drained the last tick; drop, like time.Ticker
		}
	}
	f.now = target
	f.mu.Unlock()
}

// Tickers returns the number of live tickers on the fake. Tests that hand
// the fake to a goroutine use it to wait until the goroutine has built its
// ticker before the first Advance — otherwise that advance fires nothing.
func (f *Fake) Tickers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.tickers)
}

// NewTicker returns a ticker firing every d of fake time, driven by Advance.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	f.mu.Lock()
	t := &fakeTicker{f: f, period: d, next: f.now.Add(d), c: make(chan time.Time, 1)}
	f.tickers = append(f.tickers, t)
	f.mu.Unlock()
	return t
}

type fakeTicker struct {
	f       *Fake
	period  time.Duration
	next    time.Time
	c       chan time.Time
	stopped bool
}

func (t *fakeTicker) C() <-chan time.Time { return t.c }

func (t *fakeTicker) Stop() {
	t.f.mu.Lock()
	t.stopped = true
	// Compact the registry so long-lived fakes don't accumulate dead tickers.
	live := t.f.tickers[:0]
	for _, o := range t.f.tickers {
		if !o.stopped {
			live = append(live, o)
		}
	}
	sort.SliceStable(live, func(i, j int) bool { return live[i].next.Before(live[j].next) })
	t.f.tickers = live
	t.f.mu.Unlock()
}
