//go:build race

package predcache

// raceEnabled reports whether the race detector is active; allocation-count
// guards skip under it because instrumentation itself allocates.
const raceEnabled = true
