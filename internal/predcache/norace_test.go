//go:build !race

package predcache

const raceEnabled = false
