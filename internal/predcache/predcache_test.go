package predcache

import (
	"sync"
	"testing"
	"time"

	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/wire"
	"t3/internal/workload"
)

func key(a, b uint64) Key { return Key{Struct: a, Cards: b} }

func TestGetPutRoundtrip(t *testing.T) {
	c := New(64)
	if _, ok := c.Get(key(1, 2)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(key(1, 2), 42*time.Microsecond)
	v, ok := c.Get(key(1, 2))
	if !ok || v != 42*time.Microsecond {
		t.Fatalf("got (%v, %v), want (42µs, true)", v, ok)
	}
	// Overwrite updates in place.
	c.Put(key(1, 2), 7*time.Microsecond)
	if v, _ := c.Get(key(1, 2)); v != 7*time.Microsecond {
		t.Fatalf("overwrite kept %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// TestPlanFingerprintKeys exercises the cache with real plan fingerprints:
// the same plan hits, and plans differing only in cardinality annotations
// do not collide.
func TestPlanFingerprintKeys(t *testing.T) {
	in := workload.MustGenerate(workload.TPCHSpec("tpch_pc", 0.01, 3))
	root := workload.TPCHBenchmarkQueries(in)[2].Root
	if err := exec.AnnotateTrueCards(root); err != nil {
		t.Fatal(err)
	}

	c := New(128)
	k1 := Key(wire.PlanKey(root, plan.TrueCards))
	c.Put(k1, 100*time.Microsecond)
	if _, ok := c.Get(Key(wire.PlanKey(root, plan.TrueCards))); !ok {
		t.Fatal("identical plan fingerprint missed")
	}

	// Same structure, different cardinality annotation: distinct entry.
	root.OutCard.True *= 3
	k2 := Key(wire.PlanKey(root, plan.TrueCards))
	if k2 == k1 {
		t.Fatal("cardinality change produced an identical key")
	}
	if _, ok := c.Get(k2); ok {
		t.Fatal("different annotations hit the old entry")
	}
	c.Put(k2, 300*time.Microsecond)
	v1, _ := c.Get(k1)
	v2, _ := c.Get(k2)
	if v1 != 100*time.Microsecond || v2 != 300*time.Microsecond {
		t.Fatalf("colliding values: %v, %v", v1, v2)
	}

	// Distinct card modes are distinct entries too.
	k3 := Key(wire.PlanKey(root, plan.EstCards))
	if k3 == k2 {
		t.Fatal("card mode not part of the key")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(numShards) // one slot per shard
	perShard := 1
	// Fill one specific shard beyond capacity and check the oldest leaves.
	var keys []Key
	target := c.shardOf(key(0, 0))
	for i := uint64(0); len(keys) < perShard+2; i++ {
		k := key(i, i*31)
		if c.shardOf(k) == target {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], 1)
	c.Put(keys[1], 2) // evicts keys[0]
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if v, ok := c.Get(keys[1]); !ok || v != 2 {
		t.Fatal("most recent entry lost")
	}
	// Recency: touch keys[1], insert keys[2]; keys[1] must survive if there
	// were two slots — with one slot it is evicted; just assert the new
	// entry is present and the cache stays consistent.
	c.Put(keys[2], 3)
	if v, ok := c.Get(keys[2]); !ok || v != 3 {
		t.Fatal("newest entry lost after eviction")
	}
}

func TestRecencyOrder(t *testing.T) {
	c := New(numShards * 2) // two slots per shard
	target := c.shardOf(key(0, 0))
	var keys []Key
	for i := uint64(0); len(keys) < 3; i++ {
		k := key(i, i*31)
		if c.shardOf(k) == target {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], 1)
	c.Put(keys[1], 2)
	c.Get(keys[0])    // keys[0] now MRU; keys[1] is LRU
	c.Put(keys[2], 3) // evicts keys[1]
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU entry survived")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("recently used entry evicted")
	}
}

func TestInvalidateDropsEverything(t *testing.T) {
	c := New(256)
	for i := uint64(0); i < 100; i++ {
		c.Put(key(i, i), time.Duration(i))
	}
	c.Invalidate()
	if n := c.Len(); n != 0 {
		t.Fatalf("%d live entries after Invalidate", n)
	}
	for i := uint64(0); i < 100; i++ {
		if _, ok := c.Get(key(i, i)); ok {
			t.Fatalf("stale entry %d served after Invalidate", i)
		}
	}
	// New generation entries work.
	c.Put(key(7, 7), 70)
	if v, ok := c.Get(key(7, 7)); !ok || v != 70 {
		t.Fatal("cache dead after Invalidate")
	}
}

// TestCacheHitPathIsAllocationFree is the serving-tier zero-alloc guard:
// a steady-state hit (lookup + recency bump) must not allocate.
func TestCacheHitPathIsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	c := New(1024)
	k1, k2 := key(1, 2), key(3, 4)
	c.Put(k1, 10)
	c.Put(k2, 20)
	allocs := testing.AllocsPerRun(1000, func() {
		// Alternate so the recency splice actually runs.
		c.Get(k1)
		c.Get(k2)
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestSteadyStateChurnIsNearlyAllocationFree guards the miss/evict/put
// cycle at capacity: slot and map storage are reused, not reallocated.
func TestSteadyStateChurnIsNearlyAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	c := New(64)
	// Saturate.
	for i := uint64(0); i < 1024; i++ {
		c.Put(key(i, i^0xbeef), time.Duration(i))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		k := key(77, 88)
		c.Get(k)
		c.Put(k, 5)
	})
	if allocs > 0.5 {
		t.Fatalf("churn allocates %.2f allocs/op, want ~0", allocs)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(512)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g uint64) {
			defer wg.Done()
			for i := uint64(0); i < 5000; i++ {
				k := key(i%300, g<<32|i%97)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Error("negative cached value")
					return
				}
				c.Put(k, time.Duration(i))
				if i%1000 == 0 && g == 0 {
					c.Invalidate()
				}
			}
		}(uint64(g))
	}
	wg.Wait()
}
