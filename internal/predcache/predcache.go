// Package predcache is the serving tier's prediction cache: a sharded,
// bounded LRU mapping plan fingerprints (see internal/wire.Key) to
// predicted execution times.
//
// Predictions are pure functions of (plan structure, cardinality
// annotations, card mode), so repeated plans — the common case for
// parameterized workloads, plan enumeration, and scheduler re-admission —
// can skip decode-adjacent featurization and tree evaluation entirely.
//
// Design constraints, in order:
//
//   - The hit path must be allocation-free and short: one shard lock, one
//     map probe, one intrusive-list splice. Entries live in a fixed slot
//     arena per shard; the LRU list is index-linked, so recency updates
//     never touch the allocator.
//   - Model swaps must invalidate atomically without blocking readers on a
//     global lock: a generation counter is bumped once; entries stamped
//     with an older generation read as misses and are reclaimed lazily.
//   - Sharding (by the key's own hash bits) keeps lock hold times short
//     under concurrent serving.
//
// Hit/miss/eviction/invalidation counts are recorded into internal/obs
// (t3_serve_cache_*), so /metrics proves cache effectiveness in production.
package predcache

import (
	"sync"
	"sync/atomic"
	"time"

	"t3/internal/obs"
)

// Key identifies a cached prediction: a structural plan fingerprint plus a
// cardinality-annotation hash with the card mode folded in. It is
// layout-compatible with (and produced from) internal/wire.Key.
type Key struct {
	Struct uint64
	Cards  uint64
}

// numShards is the shard count (power of two). 16 shards keep lock
// contention negligible at serving concurrencies well past typical core
// counts.
const numShards = 16

// none is the nil index of the intrusive LRU list.
const none = int32(-1)

// entry is one cache slot. Slots are arena-allocated per shard and linked
// into an LRU list by index, so hits and evictions never allocate.
type entry struct {
	key        Key
	val        int64 // predicted nanoseconds
	gen        uint64
	prev, next int32
}

type shard struct {
	mu   sync.Mutex
	idx  map[Key]int32
	ents []entry
	head int32 // most recently used
	tail int32 // least recently used
	free int32 // free-slot list, linked through next
}

// Cache is a sharded, bounded, generation-invalidated LRU. The zero value
// is not usable; construct with New.
type Cache struct {
	shards [numShards]shard
	gen    atomic.Uint64
}

// New returns a cache holding up to capacity entries (rounded up to a
// multiple of the shard count; minimum one entry per shard).
func New(capacity int) *Cache {
	per := capacity / numShards
	if per < 1 {
		per = 1
	}
	c := &Cache{}
	for i := range c.shards {
		s := &c.shards[i]
		s.idx = make(map[Key]int32, per)
		s.ents = make([]entry, per)
		s.head, s.tail = none, none
		// Thread all slots onto the free list.
		s.free = 0
		for j := range s.ents {
			s.ents[j].next = int32(j + 1)
		}
		s.ents[per-1].next = none
	}
	return c
}

// Capacity returns the total entry capacity.
func (c *Cache) Capacity() int {
	return len(c.shards[0].ents) * numShards
}

// shardOf picks the shard from the key's own hash bits. Struct and Cards
// are already FNV-1a digests; mixing them spreads single-plan workloads
// with varying annotations across shards.
func (c *Cache) shardOf(k Key) *shard {
	return &c.shards[(k.Struct^(k.Cards>>17))&(numShards-1)]
}

// Get returns the cached prediction for k, bumping its recency. A stale
// entry (written before the last Invalidate) reads as a miss and frees its
// slot.
func (c *Cache) Get(k Key) (time.Duration, bool) {
	gen := c.gen.Load()
	s := c.shardOf(k)
	s.mu.Lock()
	i, ok := s.idx[k]
	if !ok {
		s.mu.Unlock()
		obs.ServeCacheMisses.Inc()
		return 0, false
	}
	e := &s.ents[i]
	if e.gen != gen {
		// Invalidated by a model swap: reclaim lazily.
		s.unlink(i)
		delete(s.idx, k)
		e.next = s.free
		s.free = i
		s.mu.Unlock()
		obs.ServeCacheMisses.Inc()
		return 0, false
	}
	if s.head != i {
		s.unlink(i)
		s.pushFront(i)
	}
	v := e.val
	s.mu.Unlock()
	obs.ServeCacheHits.Inc()
	return time.Duration(v), true
}

// Put stores a prediction for k, evicting the shard's least recently used
// entry when full. A Put racing an Invalidate stores a stale generation and
// simply reads as a miss afterwards — never a wrong value.
func (c *Cache) Put(k Key, v time.Duration) {
	gen := c.gen.Load()
	s := c.shardOf(k)
	s.mu.Lock()
	if i, ok := s.idx[k]; ok {
		e := &s.ents[i]
		e.val = int64(v)
		e.gen = gen
		if s.head != i {
			s.unlink(i)
			s.pushFront(i)
		}
		s.mu.Unlock()
		return
	}
	i := s.free
	if i != none {
		s.free = s.ents[i].next
	} else {
		// Full: evict the LRU tail and reuse its slot.
		i = s.tail
		s.unlink(i)
		delete(s.idx, s.ents[i].key)
		obs.ServeCacheEvictions.Inc()
	}
	e := &s.ents[i]
	e.key, e.val, e.gen = k, int64(v), gen
	s.pushFront(i)
	s.idx[k] = i
	s.mu.Unlock()
}

// Invalidate atomically discards every cached prediction: one generation
// bump, no locks taken, concurrent readers immediately miss on all prior
// entries. Serving calls this when the model is swapped.
func (c *Cache) Invalidate() {
	c.gen.Add(1)
	obs.ServeCacheInvalidations.Inc()
}

// Generation returns the current cache generation. It advances by exactly
// one per Invalidate, so observers (the control plane's e2e checks) can
// assert that a model swap really flushed the cache.
func (c *Cache) Generation() uint64 { return c.gen.Load() }

// Len returns the number of live (current-generation) entries, for tests
// and debugging; it takes every shard lock.
func (c *Cache) Len() int {
	gen := c.gen.Load()
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, idx := range s.idx {
			if s.ents[idx].gen == gen {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// unlink removes slot i from the shard's LRU list.
func (s *shard) unlink(i int32) {
	e := &s.ents[i]
	if e.prev != none {
		s.ents[e.prev].next = e.next
	} else {
		s.head = e.next
	}
	if e.next != none {
		s.ents[e.next].prev = e.prev
	} else {
		s.tail = e.prev
	}
}

// pushFront links slot i as the most recently used.
func (s *shard) pushFront(i int32) {
	e := &s.ents[i]
	e.prev, e.next = none, s.head
	if s.head != none {
		s.ents[s.head].prev = i
	}
	s.head = i
	if s.tail == none {
		s.tail = i
	}
}
