package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		for _, n := range []int{0, 1, 3, 17, 1000} {
			counts := make([]int32, n)
			p.Do(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
		p.Close()
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d, want 1", p.Workers())
	}
	sum := 0
	p.Do(5, func(i int) { sum += i })
	if sum != 10 {
		t.Fatalf("nil pool Do sum = %d, want 10", sum)
	}
	p.Close() // must not panic
}

func TestForCoversRangeExactly(t *testing.T) {
	p := New(4)
	defer p.Close()
	for _, n := range []int{0, 1, 5, 100, 101} {
		for _, chunk := range []int{0, 1, 7, 100, 1000} {
			seen := make([]int32, n)
			p.For(n, chunk, func(lo, hi int) {
				if lo >= hi {
					t.Errorf("empty chunk [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d chunk=%d: index %d covered %d times", n, chunk, i, c)
				}
			}
		}
	}
}

func TestMapReduceFoldsInChunkOrder(t *testing.T) {
	// String concatenation is non-commutative: any out-of-order fold or
	// worker-count-dependent chunking changes the result.
	want := ""
	for c := 0; c*3 < 20; c++ {
		lo := c * 3
		hi := min(lo+3, 20)
		want += fmt.Sprintf("[%d,%d)", lo, hi)
	}
	for _, workers := range []int{1, 2, 8} {
		p := New(workers)
		got := MapReduce(p, 20, 3, func(lo, hi int) string {
			return fmt.Sprintf("[%d,%d)", lo, hi)
		}, func(a, b string) string { return a + b }, "")
		p.Close()
		if got != want {
			t.Fatalf("workers=%d: fold order broken:\ngot  %s\nwant %s", workers, got, want)
		}
	}
}

func TestMapReduceFloatDeterminism(t *testing.T) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = 1.0 / float64(i+3)
	}
	sum := func(workers int) float64 {
		p := New(workers)
		defer p.Close()
		return MapReduce(p, len(xs), 512, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			return s
		}, func(a, b float64) float64 { return a + b }, 0)
	}
	base := sum(1)
	for _, w := range []int{2, 3, 8} {
		if got := sum(w); got != base {
			t.Fatalf("workers=%d sum %v != workers=1 sum %v", w, got, base)
		}
	}
}

func TestNestedDo(t *testing.T) {
	p := New(4)
	defer p.Close()
	var total int64
	p.Do(8, func(i int) {
		p.Do(8, func(j int) { atomic.AddInt64(&total, 1) })
	})
	if total != 64 {
		t.Fatalf("nested Do ran %d tasks, want 64", total)
	}
}

func TestSharedIsSingleton(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared returned different pools")
	}
	if Shared().Workers() < 1 {
		t.Fatalf("shared pool has %d workers", Shared().Workers())
	}
}

func TestSizedPoolsAreCached(t *testing.T) {
	if Sized(0) != Shared() {
		t.Fatal("Sized(0) should be the shared pool")
	}
	if Sized(runtime.GOMAXPROCS(0)) != Shared() {
		t.Fatal("Sized(GOMAXPROCS) should be the shared pool")
	}
	p1, p2 := Sized(3), Sized(3)
	if p1 != p2 {
		t.Fatal("Sized(3) returned different pools across calls")
	}
	if p1.Workers() != 3 {
		t.Fatalf("Sized(3) has %d workers", p1.Workers())
	}
	// Cached pools survive Close: a no-op so one caller cannot tear the
	// pool down under another.
	p1.Close()
	var total int64
	p1.Do(16, func(i int) { atomic.AddInt64(&total, 1) })
	if total != 16 {
		t.Fatalf("pool ran %d tasks after Close, want 16", total)
	}
}

func TestSizedConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	pools := make([]*Pool, 16)
	for i := range pools {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pools[i] = Sized(5)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(pools); i++ {
		if pools[i] != pools[0] {
			t.Fatal("concurrent Sized(5) returned different pools")
		}
	}
}

func TestDoStateEveryIndexOnceOwnedState(t *testing.T) {
	type state struct {
		id    int
		inUse atomic.Bool
	}
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		for _, n := range []int{0, 1, 3, 17, 200} {
			var created atomic.Int32
			counts := make([]int32, n)
			DoState(p, n,
				func() *state { return &state{id: int(created.Add(1))} },
				func(st *state, i int) {
					if !st.inUse.CompareAndSwap(false, true) {
						t.Error("state used by two tasks concurrently")
					}
					atomic.AddInt32(&counts[i], 1)
					st.inUse.Store(false)
				})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
			if n > 0 {
				want := int32(min(workers, n))
				if got := created.Load(); got != want {
					t.Fatalf("workers=%d n=%d: created %d states, want %d", workers, n, got, want)
				}
			}
		}
		p.Close()
	}
}

func TestDoStateNilPool(t *testing.T) {
	var p *Pool
	var states int
	sum := 0
	DoState(p, 5, func() int { states++; return 100 }, func(st, i int) { sum += st + i })
	if states != 1 || sum != 510 {
		t.Fatalf("nil pool DoState: states=%d sum=%d", states, sum)
	}
}
