// Package par provides the shared worker-pool abstraction behind parallel
// GBDT training and batched prediction.
//
// A Pool owns workers-1 long-lived goroutines pulling tasks from an
// unbuffered channel; the goroutine calling Do participates as the remaining
// worker by running tasks inline whenever no pool worker is immediately
// available. This caller-runs design keeps a one-worker pool entirely
// allocation- and synchronization-free on the dispatch path, makes nested Do
// calls deadlock-free, and lets a nil *Pool act as a serial executor.
//
// Determinism: Do and For guarantee nothing about execution order, but chunk
// *boundaries* in For and MapReduce depend only on (n, chunk) — never on the
// worker count — and MapReduce folds partial results in ascending chunk
// order on the calling goroutine. Any computation whose tasks write disjoint
// output slots, or that reduces exclusively through MapReduce with a fixed
// chunk size, therefore produces bit-for-bit identical results for every
// worker count. The gbdt trainer relies on exactly this contract.
package par

import (
	"runtime"
	"sync"
)

// Pool is a fixed-size worker pool for fork-join parallelism.
type Pool struct {
	workers int
	tasks   chan func()
	close   sync.Once
	// persistent marks process-wide cached pools (Shared, Sized) whose
	// goroutines must outlive any single caller; Close is a no-op on them.
	persistent bool
}

// New creates a pool with the given number of workers (0 means GOMAXPROCS).
// Pools with more than one worker hold goroutines until Close is called.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan func())
		// workers-1 goroutines; the Do caller is the final worker.
		for i := 1; i < workers; i++ {
			go func() {
				for task := range p.tasks {
					task()
				}
			}()
		}
	}
	return p
}

var (
	sharedOnce sync.Once
	shared     *Pool

	sizedMu    sync.Mutex
	sizedPools map[int]*Pool
)

// Shared returns the process-wide pool, sized to GOMAXPROCS at first use and
// never closed. It is the default executor for batched prediction.
func Shared() *Pool {
	sharedOnce.Do(func() {
		shared = New(0)
		shared.persistent = true
	})
	return shared
}

// Sized returns a process-wide cached pool with exactly the given worker
// count (0 or GOMAXPROCS map to the shared pool). Unlike New, repeated calls
// with the same count reuse one long-lived pool, so hot paths that honour a
// per-call worker override never pay goroutine construction or teardown.
// Cached pools are never closed; Close on them is a no-op.
func Sized(workers int) *Pool {
	if workers <= 0 || workers == runtime.GOMAXPROCS(0) {
		return Shared()
	}
	sizedMu.Lock()
	defer sizedMu.Unlock()
	if p, ok := sizedPools[workers]; ok {
		return p
	}
	p := New(workers)
	p.persistent = true
	if sizedPools == nil {
		sizedPools = make(map[int]*Pool)
	}
	sizedPools[workers] = p
	return p
}

// Workers returns the pool's worker count. A nil pool reports one worker.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close releases the pool's goroutines. The pool must not be used afterwards.
// Closing a nil, single-worker, or process-wide cached pool is a no-op; Close
// is idempotent.
func (p *Pool) Close() {
	if p == nil || p.tasks == nil || p.persistent {
		return
	}
	p.close.Do(func() { close(p.tasks) })
}

// Do runs fn(0) … fn(n-1), distributing calls across the pool, and returns
// once all have completed. On a nil or single-worker pool every call runs
// inline on the caller. Tasks must not depend on execution order.
func (p *Pool) Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.tasks == nil || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		task := func() {
			defer wg.Done()
			fn(i)
		}
		// Hand the task to a parked worker if one is ready; otherwise the
		// caller runs it, so the pool can never deadlock on nested use.
		select {
		case p.tasks <- task:
		default:
			task()
		}
	}
	wg.Wait()
}

// DoState runs fn(state, 0) … fn(state, n-1) across the pool like Do, but
// hands every concurrent task one of min(Workers, n) per-worker states
// created up front by newState. A state is owned exclusively by one task at a
// time, so fn may mutate it freely; states are recycled between tasks, never
// shared concurrently. On a nil or single-worker pool one state serves every
// call inline. Like Do, execution order is unspecified — determinism must
// come from tasks writing disjoint, index-keyed output slots.
func DoState[S any](p *Pool, n int, newState func() S, fn func(st S, i int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if p == nil || p.tasks == nil || w <= 1 || n == 1 {
		st := newState()
		for i := 0; i < n; i++ {
			fn(st, i)
		}
		return
	}
	states := make(chan S, w)
	for i := 0; i < w; i++ {
		states <- newState()
	}
	// Do bounds concurrency by the pool's worker count >= w states, so a
	// task never blocks on the channel longer than one in-flight peer.
	p.Do(n, func(i int) {
		st := <-states
		defer func() { states <- st }()
		fn(st, i)
	})
}

// For splits [0, n) into chunks of the given size and runs body(lo, hi) for
// every chunk in parallel. Chunk boundaries depend only on n and chunk, so a
// body writing output slots keyed by index produces identical results for
// any worker count.
func (p *Pool) For(n, chunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	nc := (n + chunk - 1) / chunk
	p.Do(nc, func(c int) {
		lo := c * chunk
		hi := min(lo+chunk, n)
		body(lo, hi)
	})
}

// MapReduce splits [0, n) into fixed-size chunks, evaluates mapFn on every
// chunk in parallel, and folds the partial results in ascending chunk order
// on the calling goroutine. Because both the chunking and the fold order are
// independent of the worker count, non-associative reductions (floating-point
// sums in particular) are bit-for-bit deterministic.
func MapReduce[T any](p *Pool, n, chunk int, mapFn func(lo, hi int) T, fold func(acc, x T) T, zero T) T {
	if n <= 0 {
		return zero
	}
	if chunk < 1 {
		chunk = 1
	}
	nc := (n + chunk - 1) / chunk
	parts := make([]T, nc)
	p.Do(nc, func(c int) {
		lo := c * chunk
		hi := min(lo+chunk, n)
		parts[c] = mapFn(lo, hi)
	})
	acc := zero
	for _, x := range parts {
		acc = fold(acc, x)
	}
	return acc
}
