package workload

import (
	"fmt"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
)

// QB is a small fluent builder for hand-written physical plans (the fixed
// benchmark queries). It resolves column names to positions so queries read
// like SQL instead of index arithmetic.
type QB struct {
	inst *Instance
	node *plan.Node
	// names are the qualified output column names ("table.col" for base
	// columns, plain names for computed ones).
	names []string
}

// Ref resolves a column name within a predicate or expression; see QB.Col.
type Ref func(name string) *expr.ColRef

// Scan starts a plan with a table scan. cols are column names of the table;
// preds build pushed-down predicates using a resolver over those columns.
func (in *Instance) Scan(table string, cols []string, preds ...func(Ref) expr.BoolExpr) *QB {
	t := in.Table(table)
	if t == nil {
		panic(fmt.Sprintf("workload: unknown table %q", table))
	}
	idxs := make([]int, len(cols))
	for i, c := range cols {
		ci := t.ColumnIndex(c)
		if ci < 0 {
			panic(fmt.Sprintf("workload: table %s has no column %q", table, c))
		}
		idxs[i] = ci
	}
	ref := func(name string) *expr.ColRef {
		for i, c := range cols {
			if c == name {
				return expr.Col(i, name, t.Columns[idxs[i]].Kind)
			}
		}
		panic(fmt.Sprintf("workload: column %q not scanned from %s", name, table))
	}
	var bes []expr.BoolExpr
	for _, p := range preds {
		bes = append(bes, p(ref))
	}
	q := &QB{inst: in, node: plan.NewTableScan(t, idxs, bes...)}
	for _, c := range cols {
		q.names = append(q.names, table+"."+c)
	}
	return q
}

// Col resolves a qualified output column name to a reference.
func (q *QB) Col(name string) *expr.ColRef {
	i := q.idx(name)
	return expr.Col(i, name, q.node.Schema[i].Kind)
}

func (q *QB) idx(name string) int {
	for i, n := range q.names {
		if n == name {
			return i
		}
	}
	panic(fmt.Sprintf("workload: plan has no column %q (have %v)", name, q.names))
}

// Filter appends a filter node; the predicate resolves against the current
// output columns.
func (q *QB) Filter(pred func(Ref) expr.BoolExpr) *QB {
	q.node = plan.NewFilter(q.node, pred(q.colRef))
	return q
}

func (q *QB) colRef(name string) *expr.ColRef { return q.Col(name) }

// Map appends computed columns.
func (q *QB) Map(names []string, mk func(Ref) []expr.ValueExpr) *QB {
	q.node = plan.NewMap(q.node, names, mk(q.colRef))
	q.names = append(q.names, names...)
	return q
}

// JoinBuild hash-joins a build-side sub-plan into this (probe-side) plan.
// payload lists build-side columns carried into the output.
func (q *QB) JoinBuild(build *QB, buildKey, probeKey string, payload ...string) *QB {
	bk := build.idx(buildKey)
	pk := q.idx(probeKey)
	pls := make([]int, len(payload))
	for i, c := range payload {
		pls[i] = build.idx(c)
	}
	q.node = plan.NewHashJoin(build.node, q.node, []int{bk}, []int{pk}, pls)
	for _, c := range payload {
		q.names = append(q.names, c)
	}
	return q
}

// AggSpec pairs an aggregate function with its input column name.
type AggSpec struct {
	Fn   plan.AggFn
	Col  string // empty for COUNT
	Name string
}

// GroupBy appends a hash aggregation.
func (q *QB) GroupBy(groupCols []string, aggs ...AggSpec) *QB {
	gcs := make([]int, len(groupCols))
	for i, c := range groupCols {
		gcs[i] = q.idx(c)
	}
	pas := make([]plan.Agg, len(aggs))
	names := make([]string, len(aggs))
	for i, a := range aggs {
		pa := plan.Agg{Fn: a.Fn}
		if a.Col != "" {
			pa.Col = q.idx(a.Col)
		}
		pas[i] = pa
		names[i] = a.Name
	}
	q.node = plan.NewGroupBy(q.node, gcs, pas, names)
	newNames := append([]string(nil), groupCols...)
	newNames = append(newNames, names...)
	q.names = newNames
	return q
}

// Sort appends an order-by.
func (q *QB) Sort(cols []string, desc []bool) *QB {
	idxs := make([]int, len(cols))
	for i, c := range cols {
		idxs[i] = q.idx(c)
	}
	q.node = plan.NewSort(q.node, idxs, desc)
	return q
}

// Window appends a window function column.
func (q *QB) Window(fn plan.WinFn, partition, order []string, arg, name string) *QB {
	ps := make([]int, len(partition))
	for i, c := range partition {
		ps[i] = q.idx(c)
	}
	os := make([]int, len(order))
	for i, c := range order {
		os[i] = q.idx(c)
	}
	ai := 0
	if arg != "" {
		ai = q.idx(arg)
	}
	q.node = plan.NewWindow(q.node, fn, ps, os, ai, name)
	q.names = append(q.names, name)
	return q
}

// Limit appends a limit.
func (q *QB) Limit(n int) *QB {
	q.node = plan.NewLimit(q.node, n)
	return q
}

// Project narrows the output to the named columns.
func (q *QB) Project(cols ...string) *QB {
	idxs := make([]int, len(cols))
	for i, c := range cols {
		idxs[i] = q.idx(c)
	}
	q.node = plan.Project(q.node, idxs)
	q.names = append([]string(nil), cols...)
	return q
}

// Materialize appends an explicit materialization.
func (q *QB) Materialize() *QB {
	q.node = plan.NewMaterialize(q.node)
	return q
}

// Build returns the assembled plan root.
func (q *QB) Build() *plan.Node { return q.node }

// Predicate helpers for fixed queries.

// CmpP builds a comparison predicate builder.
func CmpP(op expr.CmpOp, col string, c *expr.Const) func(Ref) expr.BoolExpr {
	return func(r Ref) expr.BoolExpr { return expr.NewCmp(op, r(col), c) }
}

// BetweenP builds a BETWEEN predicate builder.
func BetweenP(col string, lo, hi *expr.Const) func(Ref) expr.BoolExpr {
	return func(r Ref) expr.BoolExpr { return expr.NewBetween(r(col), lo, hi) }
}

// InIntsP builds an integer IN-list predicate builder.
func InIntsP(col string, vals ...int64) func(Ref) expr.BoolExpr {
	return func(r Ref) expr.BoolExpr { return expr.NewInListInts(r(col), vals) }
}

// InStrsP builds a string IN-list predicate builder.
func InStrsP(col string, vals ...string) func(Ref) expr.BoolExpr {
	return func(r Ref) expr.BoolExpr { return expr.NewInListStrings(r(col), vals) }
}

// LikeP builds a LIKE predicate builder.
func LikeP(col, pattern string) func(Ref) expr.BoolExpr {
	return func(r Ref) expr.BoolExpr { return expr.NewLike(r(col), pattern) }
}

// Int returns an integer constant.
func Int(v int64) *expr.Const { return expr.ConstInt(v) }

// Float returns a float constant.
func Float(v float64) *expr.Const { return expr.ConstFloat(v) }

// Str returns a string constant.
func Str(v string) *expr.Const { return expr.ConstString(v) }
