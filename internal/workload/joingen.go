package workload

import (
	"fmt"
	"math/rand"

	"t3/internal/engine/expr"
	"t3/internal/engine/storage"
)

// Synthetic join-graph workloads for the planner benchmarks and the
// batched-vs-scalar equivalence tests. JOBJoinSpecs tops out at 6 relations;
// these generators produce seeded chain/star/clique graphs up to the DP's
// bitmask capacity, with per-relation cardinalities and predicate
// selectivities varied enough that join order matters.

// Join-graph shapes understood by SyntheticJoinSpec.
const (
	ShapeChain  = "chain"
	ShapeStar   = "star"
	ShapeClique = "clique"
)

// SyntheticJoinInstance generates a database of n tables s0..s{n-1}, each with
// a dense id, a shared-domain join key k (so any pair of tables joins
// meaningfully), a predicate column v, and — on odd tables — an extra payload
// column for width variety. Row counts vary per table deterministically from
// the seed.
func SyntheticJoinInstance(n, baseRows int, seed int64) *Instance {
	if baseRows < 32 {
		baseRows = 32
	}
	rng := rand.New(rand.NewSource(seed))
	keySpace := baseRows / 4
	if keySpace < 8 {
		keySpace = 8
	}
	spec := InstanceSpec{Name: fmt.Sprintf("synjoin-n%d-s%d", n, seed), Seed: seed}
	for i := 0; i < n; i++ {
		rows := baseRows/4 + rng.Intn(baseRows)
		cols := []ColSpec{
			{Name: "id", Kind: storage.Int64, Dist: DistSeq},
			{Name: "k", Kind: storage.Int64, Dist: DistUniformInt, Min: 0, Max: float64(keySpace - 1)},
			{Name: "v", Kind: storage.Float64, Dist: DistUniformFloat, Min: 0, Max: 1},
		}
		if i%2 == 1 {
			cols = append(cols, ColSpec{Name: "p", Kind: storage.Float64, Dist: DistUniformFloat, Min: 0, Max: 1})
		}
		spec.Tables = append(spec.Tables, TableSpec{Name: fmt.Sprintf("s%d", i), Rows: rows, Cols: cols})
	}
	return MustGenerate(spec)
}

// SyntheticJoinSpec builds a JoinSpec of the given shape over the instance's
// first n tables (which must exist, e.g. via SyntheticJoinInstance): "chain"
// links i—i+1, "star" links 0—i, "clique" links every pair. All edges join on
// the shared key column; most relations carry a seeded selective predicate on
// v so filtered cardinalities differ across relations.
func SyntheticJoinSpec(inst *Instance, shape string, n int, seed int64) *JoinSpec {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	sp := &JoinSpec{Name: fmt.Sprintf("%s-%d-s%d", shape, n, seed)}
	for i := 0; i < n; i++ {
		t := inst.Table(fmt.Sprintf("s%d", i))
		cols := make([]int, len(t.Columns))
		for ci := range cols {
			cols[ci] = ci
		}
		rs := RelSpec{Table: t.Name, ScanCols: cols}
		if rng.Float64() < 0.6 {
			vc := &t.Columns[2]
			sel := 0.15 + 0.7*rng.Float64()
			ref := expr.Col(2, vc.Name, vc.Kind)
			rs.Preds = []expr.BoolExpr{expr.NewCmp(expr.Le, ref, expr.ConstFloat(sel))}
		}
		sp.Rels = append(sp.Rels, rs)
	}
	// Key column k sits at scan position 1 in every relation.
	addEdge := func(a, b int) {
		sp.Edges = append(sp.Edges, EdgeSpec{A: a, B: b, ACol: 1, BCol: 1})
	}
	switch shape {
	case ShapeChain:
		for i := 0; i+1 < n; i++ {
			addEdge(i, i+1)
		}
	case ShapeStar:
		for i := 1; i < n; i++ {
			addEdge(0, i)
		}
	case ShapeClique:
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				addEdge(i, j)
			}
		}
	default:
		panic(fmt.Sprintf("workload: unknown join shape %q", shape))
	}
	return sp
}

// SyntheticJoinBench generates an instance and a spec in one call — the
// planner benchmark's per-case entry point.
func SyntheticJoinBench(shape string, n, baseRows int, seed int64) (*Instance, *JoinSpec) {
	inst := SyntheticJoinInstance(n, baseRows, seed)
	return inst, SyntheticJoinSpec(inst, shape, n, seed)
}
