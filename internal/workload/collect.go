package workload

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/obs"
	"t3/internal/par"
)

// Label is one collected training label: a query's annotated plan together
// with the measured per-pipeline wall-clock times of every timing run — the
// (plan, pipeline-time) pairs T3 trains on.
type Label struct {
	Name  string
	Group Group
	Root  *plan.Node
	// Pipelines is the plan decomposition after the analyze run annotated
	// true cardinalities.
	Pipelines []*plan.Pipeline
	// SourceRows[p] is the number of tuples scanned at pipeline p's source.
	SourceRows []int
	// Parallelism[p] is the morsel-parallelism degree pipeline p ran with in
	// the analyze run (1 = serial). It describes how the label was measured,
	// so featurization can learn parallel execution; it is deliberately part
	// of neither StableBytes nor Bytes, because it varies with the worker
	// count while the labels themselves must not.
	Parallelism []int
	// PipelineRuns[r][p] is the measured time of pipeline p in timing run r.
	PipelineRuns [][]time.Duration
	// Totals[r] is the summed pipeline time of timing run r.
	Totals []time.Duration
}

// LabelSet is the result of one collection over an instance's workload.
type LabelSet struct {
	Instance string
	Labels   []*Label
	// Elapsed is the wall-clock time of the whole collection.
	Elapsed time.Duration
	// Workers is the worker count the collection actually used.
	Workers int
}

// CollectConfig controls parallel label collection.
type CollectConfig struct {
	// Workers is the number of collection workers (0 = GOMAXPROCS). Unless
	// IntraWorkers overrides it, the same degree is used for morsel-driven
	// parallelism inside each query's pipelines, over the same shared pool.
	Workers int
	// IntraWorkers overrides the intra-query (morsel) parallelism degree:
	// < 0 disables intra-query parallelism, 0 inherits Workers, > 0 sets the
	// degree explicitly.
	IntraWorkers int
	// MorselRows overrides exec.DefaultMorselRows when > 0 (tests shrink it
	// to force morsel-parallel pipelines on small instances).
	MorselRows int
	// Runs is the number of timing runs per query after the analyze run
	// (default 1).
	Runs int
	// PerGroup is the number of generated queries per structure group
	// (default 1).
	PerGroup int
	// Seed drives query generation.
	Seed int64
	// BatchSize overrides the executor batch size when > 0.
	BatchSize int
	// RunPlan, when non-nil, replaces plan execution. Tests and the
	// retrain controller's deterministic harness inject synthetic
	// durations through it (typically: run the real executor, then
	// overwrite the measured times with a pure function of the plan).
	RunPlan func(ex *exec.Executor, root *plan.Node, annotate bool) (*exec.RunResult, error)
}

// CollectLabels generates the instance's workload and executes every query —
// one analyze run to annotate true cardinalities, then cfg.Runs timing runs —
// fanning independent queries out across a fixed worker set. Each worker owns
// its own executor state (with Reuse set, so the steady-state loop recycles
// plan/exec scratch and result buffers across queries), and big pipelines
// additionally run morsel-parallel over the same pool. Every query's plan is
// generated from a seed that depends only on the query's position, and the
// executor's ordered partition merges make parallel results equal serial
// ones, so for a fixed (instance, cfg minus Workers/IntraWorkers/MorselRows)
// the collected label set is byte-stable (see StableBytes) for ANY worker
// count — inter- or intra-query: parallelism changes wall-clock time, never
// the data.
func CollectLabels(inst *Instance, cfg CollectConfig) (*LabelSet, error) {
	if cfg.Runs < 1 {
		cfg.Runs = 1
	}
	if cfg.PerGroup < 1 {
		cfg.PerGroup = 1
	}
	run := cfg.RunPlan
	if run == nil {
		run = func(ex *exec.Executor, root *plan.Node, annotate bool) (*exec.RunResult, error) {
			return ex.Run(root, annotate)
		}
	}

	qs := GenerateQueries(inst, GenConfig{PerGroup: cfg.PerGroup, Seed: cfg.Seed})
	pool := par.Sized(cfg.Workers)
	intra := cfg.IntraWorkers
	switch {
	case intra < 0:
		intra = 1
	case intra == 0:
		intra = pool.Workers()
	}
	out := make([]*Label, len(qs))
	errs := make([]error, len(qs))

	start := time.Now()
	// One pool serves both levels: DoState fans queries out across it, and
	// each worker's executor splits big pipelines into morsels over the same
	// pool. The pool's caller-runs overflow policy keeps that safe — when all
	// workers are busy with queries, morsels just run inline.
	par.DoState(pool, len(qs),
		func() *exec.Executor {
			return &exec.Executor{
				BatchSize:  cfg.BatchSize,
				Workers:    intra,
				MorselRows: cfg.MorselRows,
				Pool:       pool,
				Reuse:      true,
			}
		},
		func(ex *exec.Executor, i int) {
			q := qs[i]
			qStart := time.Now()
			// Analyze run: annotate true cardinalities on the plan.
			res, err := run(ex, q.Root, true)
			if err != nil {
				errs[i] = fmt.Errorf("analyze %s: %w", q.Name, err)
				return
			}
			l := &Label{
				Name:      q.Name,
				Group:     q.Group,
				Root:      q.Root,
				Pipelines: plan.Decompose(q.Root),
			}
			for _, pt := range res.Pipelines {
				l.SourceRows = append(l.SourceRows, pt.SourceRows)
				l.Parallelism = append(l.Parallelism, pt.Parallelism)
			}
			for r := 0; r < cfg.Runs; r++ {
				res, err := run(ex, q.Root, false)
				if err != nil {
					errs[i] = fmt.Errorf("run %d of %s: %w", r, q.Name, err)
					return
				}
				times := make([]time.Duration, len(res.Pipelines))
				for p, pt := range res.Pipelines {
					times[p] = pt.Duration
				}
				l.PipelineRuns = append(l.PipelineRuns, times)
				l.Totals = append(l.Totals, res.Total)
			}
			out[i] = l
			obs.CollectQueries.Inc()
			obs.CollectQueryTime.Since(qStart)
		})
	elapsed := time.Since(start)

	// Report the first error in query order: deterministic regardless of
	// which worker hit it first.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		obs.CollectThroughput.Set(float64(len(qs)) / secs)
	}
	return &LabelSet{
		Instance: inst.Name,
		Labels:   out,
		Elapsed:  elapsed,
		Workers:  pool.Workers(),
	}, nil
}

// Split partitions the label set into train and holdout subsets by
// position: with holdout fraction f, every round(1/f)-th label (the last of
// each stride) is held out. The split is a pure function of (len(Labels),
// f) — no randomness, no durations — so the same collection always yields
// the same partition and the holdout subset's Fingerprint is reproducible
// anywhere. f is clamped to [0, 0.5]; f = 0 holds nothing out.
func (ls *LabelSet) Split(f float64) (train, holdout *LabelSet) {
	if f > 0.5 {
		f = 0.5
	}
	train = &LabelSet{Instance: ls.Instance, Elapsed: ls.Elapsed, Workers: ls.Workers}
	holdout = &LabelSet{Instance: ls.Instance, Workers: ls.Workers}
	if f <= 0 || len(ls.Labels) < 2 {
		train.Labels = append(train.Labels, ls.Labels...)
		return train, holdout
	}
	stride := int(1/f + 0.5)
	if stride < 2 {
		stride = 2
	}
	for i, l := range ls.Labels {
		if i%stride == stride-1 {
			holdout.Labels = append(holdout.Labels, l)
		} else {
			train.Labels = append(train.Labels, l)
		}
	}
	if len(holdout.Labels) == 0 && len(ls.Labels) >= 2 {
		// Tiny sets still get one holdout label so shadow evaluation
		// always has ground truth to judge on.
		last := len(train.Labels) - 1
		holdout.Labels = append(holdout.Labels, train.Labels[last])
		train.Labels = train.Labels[:last]
	}
	return train, holdout
}

// StableBytes serializes everything about the label set that is independent
// of measurement noise and scheduling: query identities, plan decompositions,
// source cardinalities, annotated true cardinalities and selectivities, and
// the shape of the timing data — but NOT the measured durations themselves.
// This is the determinism contract of parallel collection: StableBytes is
// byte-identical for any worker count.
func (ls *LabelSet) StableBytes() []byte {
	var buf bytes.Buffer
	buf.WriteString(ls.Instance)
	for _, l := range ls.Labels {
		buf.WriteByte(0)
		buf.WriteString(l.Name)
		buf.WriteByte(0)
		buf.WriteString(string(l.Group))
		writeUvarint(&buf, uint64(len(l.PipelineRuns)))
		writeUvarint(&buf, uint64(len(l.Pipelines)))
		for p, pl := range l.Pipelines {
			writeUvarint(&buf, uint64(len(pl.Stages)))
			for _, s := range pl.Stages {
				writeUvarint(&buf, uint64(s.Node.Op))
				writeUvarint(&buf, uint64(s.Stage))
			}
			writeUvarint(&buf, uint64(l.SourceRows[p]))
		}
		l.Root.Walk(func(n *plan.Node) {
			writeUvarint(&buf, math.Float64bits(n.OutCard.True))
			for i := range n.PredSel {
				writeUvarint(&buf, math.Float64bits(n.PredSel[i].True))
			}
		})
	}
	return buf.Bytes()
}

// Bytes serializes the full label set including measured durations. Two
// collections agree byte-for-byte only when durations were injected
// deterministically (the runner's plumbing tests do exactly that); real
// measurements differ run to run, which is why StableBytes exists.
func (ls *LabelSet) Bytes() []byte {
	var buf bytes.Buffer
	buf.Write(ls.StableBytes())
	for _, l := range ls.Labels {
		for r, times := range l.PipelineRuns {
			writeUvarint(&buf, uint64(l.Totals[r]))
			for _, d := range times {
				writeUvarint(&buf, uint64(d))
			}
		}
	}
	return buf.Bytes()
}

// Fingerprint is an FNV-1a hash of StableBytes, cheap to print and compare.
func (ls *LabelSet) Fingerprint() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range ls.StableBytes() {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}
