package workload

import (
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// TestCollectLabelsScaling asserts that parallel collection actually scales:
// workers=4 must beat workers=1 by a configurable margin. Wall-clock scaling
// is meaningless on starved machines, so the test only arms itself when
// T3_SCALING_ASSERT is set AND at least 4 CPUs are available; otherwise it
// skips with an explanation. CI sets the variable on its 4-vCPU runners.
// T3_SCALING_MIN overrides the required speedup (default 2.5, the roadmap
// target; CI uses a safer 1.5 to tolerate noisy shared runners).
func TestCollectLabelsScaling(t *testing.T) {
	if os.Getenv("T3_SCALING_ASSERT") == "" {
		t.Skip("scaling assertion disabled (set T3_SCALING_ASSERT=1 to enable)")
	}
	if p := runtime.GOMAXPROCS(0); p < 4 {
		t.Skipf("scaling assertion needs >= 4 CPUs, have %d", p)
	}
	minSpeedup := 2.5
	if s := os.Getenv("T3_SCALING_MIN"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad T3_SCALING_MIN %q: %v", s, err)
		}
		minSpeedup = v
	}

	in := MustGenerate(TPCHSpec("tpch_scaling", 0.01, 42))
	collect := func(workers int) time.Duration {
		// Best of three: scaling claims should not hinge on one noisy run.
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			ls, err := CollectLabels(in, CollectConfig{Workers: workers, Runs: 1, PerGroup: 2, Seed: 7})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if ls.Elapsed < best {
				best = ls.Elapsed
			}
		}
		return best
	}
	// Warm caches and the scratch pool before timing anything.
	collect(1)

	serial := collect(1)
	parallel := collect(4)
	speedup := float64(serial) / float64(parallel)
	t.Logf("workers=1 %v, workers=4 %v, speedup %.2fx (floor %.2fx)", serial, parallel, speedup, minSpeedup)
	if speedup < minSpeedup {
		t.Fatalf("workers=4 speedup %.2fx below required %.2fx (serial %v, parallel %v)",
			speedup, minSpeedup, serial, parallel)
	}
}
