// Package workload generates database instances, random queries, and the
// fixed benchmark workloads used to train and evaluate T3 (§4 of the paper).
//
// The paper trains on 21 public database instances (the zero-shot suite of
// Hilprecht & Binnig) plus ~14,000 randomly generated queries, holding out
// TPC-DS as the test instance. Those instances are not shippable inside an
// offline repository, so this package substitutes seeded generators: scaled
// "lite" versions of TPC-H, TPC-DS, and the IMDb/JOB schema, plus a suite of
// synthetic real-world-shaped instances with varied schemas, row counts, and
// value distributions. What matters for T3 is schema/data diversity and
// measurable execution times, both of which the generators provide
// deterministically.
package workload

import (
	"fmt"
	"math/rand"

	"t3/internal/engine/stats"
	"t3/internal/engine/storage"
)

// Dist selects how a generated column's values are distributed.
type Dist uint8

// Column value distributions.
const (
	// DistSeq is a dense primary key 0..rows-1.
	DistSeq Dist = iota
	// DistUniformInt draws integers uniformly from [Min, Max].
	DistUniformInt
	// DistZipfInt draws integers 0..NDistinct-1 with a Zipf skew.
	DistZipfInt
	// DistUniformFloat draws floats uniformly from [Min, Max].
	DistUniformFloat
	// DistNormalFloat draws floats from N(Mean=Min, Stddev=Max).
	DistNormalFloat
	// DistFK draws integers referencing the parent table's primary key.
	DistFK
	// DistWords draws strings from a pool of NDistinct generated words.
	DistWords
	// DistDate draws integers (days) uniformly from [Min, Max].
	DistDate
)

// ColSpec describes one generated column.
type ColSpec struct {
	Name      string
	Kind      storage.Type
	Dist      Dist
	Min, Max  float64
	NDistinct int
	// FKTable names the parent table for DistFK columns; values are drawn
	// from [0, parentRows).
	FKTable string
	// Skew applies Zipf skew (> 1) for DistZipfInt and DistFK columns;
	// 0 means uniform.
	Skew float64
}

// TableSpec describes one generated table.
type TableSpec struct {
	Name string
	Rows int
	Cols []ColSpec
}

// InstanceSpec describes a whole database instance.
type InstanceSpec struct {
	Name   string
	Seed   int64
	Tables []TableSpec
}

// FK records a foreign-key relationship used for join generation.
type FK struct {
	ChildTable, ChildCol   string
	ParentTable, ParentCol string
}

// Instance bundles a generated database with its statistics and join graph.
type Instance struct {
	Name  string
	DB    *storage.Database
	Stats *stats.DBStats
	FKs   []FK
}

// Table returns the named table.
func (in *Instance) Table(name string) *storage.Table { return in.DB.Table(name) }

// Maker lazily constructs an instance, so the full suite never has to be
// resident at once.
type Maker struct {
	Name string
	Make func() *Instance
}

// wordPool deterministically generates pseudo-words ("baro", "tusi", ...).
func wordPool(rng *rand.Rand, n int) []string {
	syll := []string{"ba", "ro", "tu", "si", "ka", "len", "mor", "vi", "da", "pex", "ul", "gri", "no", "sha", "wem", "zu"}
	seen := make(map[string]bool, n)
	pool := make([]string, 0, n)
	for len(pool) < n {
		k := 2 + rng.Intn(3)
		w := ""
		for i := 0; i < k; i++ {
			w += syll[rng.Intn(len(syll))]
		}
		if !seen[w] {
			seen[w] = true
			pool = append(pool, w)
		}
	}
	return pool
}

// Generate materializes an instance from its spec. Tables must be listed
// parents-before-children for foreign keys.
func Generate(spec InstanceSpec) (*Instance, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	db := &storage.Database{Name: spec.Name}
	inst := &Instance{Name: spec.Name, DB: db}
	rowsOf := make(map[string]int, len(spec.Tables))

	for _, ts := range spec.Tables {
		cols := make([]storage.Column, len(ts.Cols))
		for ci, cs := range ts.Cols {
			col, err := genColumn(rng, cs, ts.Rows, rowsOf)
			if err != nil {
				return nil, fmt.Errorf("instance %s table %s column %s: %w", spec.Name, ts.Name, cs.Name, err)
			}
			cols[ci] = col
			if cs.Dist == DistFK {
				inst.FKs = append(inst.FKs, FK{
					ChildTable: ts.Name, ChildCol: cs.Name,
					ParentTable: cs.FKTable, ParentCol: "id",
				})
			}
		}
		t, err := storage.NewTable(ts.Name, cols...)
		if err != nil {
			return nil, err
		}
		if err := db.AddTable(t); err != nil {
			return nil, err
		}
		rowsOf[ts.Name] = ts.Rows
	}
	inst.Stats = stats.CollectDB(db)
	return inst, nil
}

// MustGenerate is Generate that panics on error; specs are statically known.
func MustGenerate(spec InstanceSpec) *Instance {
	in, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return in
}

func genColumn(rng *rand.Rand, cs ColSpec, rows int, rowsOf map[string]int) (storage.Column, error) {
	col := storage.Column{Name: cs.Name, Kind: cs.Kind}
	switch cs.Dist {
	case DistSeq:
		v := make([]int64, rows)
		for i := range v {
			v[i] = int64(i)
		}
		col.Ints = v
	case DistUniformInt, DistDate:
		v := make([]int64, rows)
		lo, hi := int64(cs.Min), int64(cs.Max)
		if hi < lo {
			hi = lo
		}
		span := hi - lo + 1
		for i := range v {
			v[i] = lo + rng.Int63n(span)
		}
		col.Ints = v
	case DistZipfInt:
		n := cs.NDistinct
		if n < 1 {
			n = 1
		}
		s := cs.Skew
		if s <= 1 {
			s = 1.2
		}
		z := rand.NewZipf(rng, s, 1, uint64(n-1))
		v := make([]int64, rows)
		for i := range v {
			v[i] = int64(z.Uint64()) + int64(cs.Min)
		}
		col.Ints = v
	case DistUniformFloat:
		v := make([]float64, rows)
		for i := range v {
			v[i] = cs.Min + rng.Float64()*(cs.Max-cs.Min)
		}
		col.Flts = v
	case DistNormalFloat:
		v := make([]float64, rows)
		for i := range v {
			v[i] = cs.Min + rng.NormFloat64()*cs.Max
		}
		col.Flts = v
	case DistFK:
		parentRows, ok := rowsOf[cs.FKTable]
		if !ok {
			return col, fmt.Errorf("FK to unknown or later table %q", cs.FKTable)
		}
		if parentRows <= 0 {
			return col, fmt.Errorf("FK to empty table %q", cs.FKTable)
		}
		v := make([]int64, rows)
		if cs.Skew > 1 {
			z := rand.NewZipf(rng, cs.Skew, 1, uint64(parentRows-1))
			for i := range v {
				v[i] = int64(z.Uint64())
			}
		} else {
			for i := range v {
				v[i] = rng.Int63n(int64(parentRows))
			}
		}
		col.Ints = v
	case DistWords:
		n := cs.NDistinct
		if n < 1 {
			n = 8
		}
		pool := wordPool(rng, n)
		v := make([]string, rows)
		if cs.Skew > 1 {
			z := rand.NewZipf(rng, cs.Skew, 1, uint64(n-1))
			for i := range v {
				v[i] = pool[z.Uint64()]
			}
		} else {
			for i := range v {
				v[i] = pool[rng.Intn(n)]
			}
		}
		col.Strs = v
	default:
		return col, fmt.Errorf("unknown distribution %d", cs.Dist)
	}
	return col, nil
}
