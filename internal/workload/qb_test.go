package workload

import (
	"testing"

	"t3/internal/engine/exec"
	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

func qbInstance(t *testing.T) *Instance {
	t.Helper()
	return MustGenerate(TPCHSpec("tpch_qb", 0.01, 77))
}

func TestQBScanFilterAggregate(t *testing.T) {
	in := qbInstance(t)
	q := in.Scan("orders", []string{"id", "o_totalprice", "o_orderpriority"},
		CmpP(expr.Gt, "o_totalprice", Float(100000))).
		GroupBy([]string{"orders.o_orderpriority"},
			AggSpec{Fn: plan.AggCount, Name: "n"},
			AggSpec{Fn: plan.AggAvg, Col: "orders.o_totalprice", Name: "avg_price"}).
		Sort([]string{"n"}, []bool{true}).
		Build()
	res, err := exec.Run(q, true)
	if err != nil {
		t.Fatal(err)
	}
	// Reference.
	ord := in.Table("orders")
	ref := map[string]int64{}
	for i, v := range ord.Column("o_totalprice").Flts {
		if v > 100000 {
			ref[ord.Column("o_orderpriority").Strs[i]]++
		}
	}
	if res.Rows != len(ref) {
		t.Fatalf("groups = %d, want %d", res.Rows, len(ref))
	}
	for i := 0; i < res.Rows; i++ {
		seg := res.Output.Cols[0].Strs[i]
		if res.Output.Cols[1].Ints[i] != ref[seg] {
			t.Errorf("group %q: %d, want %d", seg, res.Output.Cols[1].Ints[i], ref[seg])
		}
	}
}

func TestQBColumnResolutionPanics(t *testing.T) {
	in := qbInstance(t)
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("unknown table", func() { in.Scan("nosuch", []string{"id"}) })
	expectPanic("unknown column", func() { in.Scan("orders", []string{"nosuch"}) })
	expectPanic("unscanned predicate column", func() {
		in.Scan("orders", []string{"id"}, CmpP(expr.Gt, "o_totalprice", Float(1)))
	})
	expectPanic("unknown output column", func() {
		in.Scan("orders", []string{"id"}).Sort([]string{"nosuch"}, []bool{false})
	})
}

func TestQBWindowAndLimit(t *testing.T) {
	in := qbInstance(t)
	q := in.Scan("customer", []string{"id", "c_nationkey", "c_acctbal"}).
		Window(plan.WinRowNumber, []string{"customer.c_nationkey"}, []string{"customer.c_acctbal"}, "", "rn").
		Filter(func(r Ref) expr.BoolExpr {
			return expr.NewCmp(expr.Le, r("rn"), expr.ConstInt(2))
		}).
		Limit(10).
		Build()
	res, err := exec.Run(q, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows > 10 {
		t.Fatalf("limit violated: %d rows", res.Rows)
	}
	for i := 0; i < res.Rows; i++ {
		if res.Output.Cols[3].Ints[i] > 2 {
			t.Fatal("window filter violated")
		}
	}
}

func TestQBProjectAndMaterialize(t *testing.T) {
	in := qbInstance(t)
	q := in.Scan("supplier", []string{"id", "s_acctbal", "s_name"}).
		Project("supplier.s_name").
		Materialize().
		Build()
	res, err := exec.Run(q, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output.Cols) != 1 || res.Output.Cols[0].Kind != storage.String {
		t.Fatalf("projection wrong: %+v", res.Output.Cols)
	}
}

func TestJOBJoinSpecsDeterministicAndConnected(t *testing.T) {
	in := MustGenerate(IMDBSpec("imdb_qb", 0.01, 88))
	a := JOBJoinSpecs(in)
	b := JOBJoinSpecs(in)
	if len(a) != len(b) || len(a) < 100 {
		t.Fatalf("spec counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Rels) != len(b[i].Rels) || len(a[i].Edges) != len(b[i].Edges) {
			t.Fatalf("spec %d differs across generations", i)
		}
	}
	for _, sp := range a {
		if len(sp.Edges) < len(sp.Rels)-1 {
			t.Errorf("%s: %d edges cannot connect %d relations", sp.Name, len(sp.Edges), len(sp.Rels))
		}
		// Edge endpoints in range and columns valid.
		for _, e := range sp.Edges {
			if e.A < 0 || e.A >= len(sp.Rels) || e.B < 0 || e.B >= len(sp.Rels) {
				t.Fatalf("%s: edge endpoints out of range", sp.Name)
			}
			if e.ACol >= len(sp.Rels[e.A].ScanCols) || e.BCol >= len(sp.Rels[e.B].ScanCols) {
				t.Fatalf("%s: edge columns out of range", sp.Name)
			}
		}
	}
}

func TestGroupsCount(t *testing.T) {
	if len(Groups) != 16 {
		t.Fatalf("paper defines 16 query structure groups, have %d", len(Groups))
	}
	seen := map[Group]bool{}
	for _, g := range Groups {
		if seen[g] {
			t.Errorf("duplicate group %s", g)
		}
		seen[g] = true
		if g == GroupFixed {
			t.Error("Fixed is reserved for benchmark queries")
		}
	}
}

func TestTrainAndTestMakersCoverSuite(t *testing.T) {
	cfg := SuiteConfig{Scale: 0.01, Seed: 3}
	train := TrainMakers(cfg)
	test := TestMakers(cfg)
	if len(train) != 22 {
		t.Errorf("train instances = %d, want 22 (3 tpch + imdb + 18 synthetic)", len(train))
	}
	if len(test) != 3 {
		t.Errorf("test instances = %d, want 3 TPC-DS scale variants", len(test))
	}
	names := map[string]bool{}
	for _, m := range append(train, test...) {
		if names[m.Name] {
			t.Errorf("duplicate instance name %s", m.Name)
		}
		names[m.Name] = true
	}
	// Lazy construction actually works.
	in := train[0].Make()
	if in == nil || in.DB.TotalRows() == 0 {
		t.Fatal("maker produced empty instance")
	}
}

func TestWordPoolDistinct(t *testing.T) {
	in := MustGenerate(InstanceSpec{
		Name: "wp", Seed: 4,
		Tables: []TableSpec{{
			Name: "t", Rows: 5000,
			Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "w", Kind: storage.String, Dist: DistWords, NDistinct: 50},
			},
		}},
	})
	if d := in.Stats.Tables["t"].Cols[1].Distinct; d != 50 {
		t.Errorf("word pool distinct = %d, want 50", d)
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	in := MustGenerate(InstanceSpec{
		Name: "zf", Seed: 5,
		Tables: []TableSpec{{
			Name: "t", Rows: 20000,
			Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "z", Kind: storage.Int64, Dist: DistZipfInt, NDistinct: 100, Skew: 1.6},
				{Name: "u", Kind: storage.Int64, Dist: DistUniformInt, Min: 0, Max: 99},
			},
		}},
	})
	count := func(col string) int {
		c := in.Table("t").Column(col)
		m := mode(c.Ints)
		top := 0
		for _, v := range c.Ints {
			if v == m {
				top++
			}
		}
		return top
	}
	if zTop, uTop := count("z"), count("u"); zTop <= 3*uTop {
		t.Errorf("zipf top value (%d) should dominate uniform top (%d)", zTop, uTop)
	}
}

// mode returns the most frequent value.
func mode(vs []int64) int64 {
	counts := map[int64]int{}
	best, bestN := int64(0), 0
	for _, v := range vs {
		counts[v]++
		if counts[v] > bestN {
			best, bestN = v, counts[v]
		}
	}
	return best
}
