package workload

import (
	"bytes"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
)

// collectInstance builds a small deterministic instance for collection tests.
func collectInstance(t testing.TB) *Instance {
	t.Helper()
	return MustGenerate(TPCHSpec("tpch_collect", 0.002, 99))
}

// TestCollectLabelsDeterministicAcrossWorkers is the runner's core contract:
// the stable serialization of the collected label set must be byte-identical
// for every worker count.
func TestCollectLabelsDeterministicAcrossWorkers(t *testing.T) {
	in := collectInstance(t)
	var ref []byte
	for _, workers := range []int{1, 2, 4} {
		ls, err := CollectLabels(in, CollectConfig{Workers: workers, Runs: 2, PerGroup: 2, Seed: 7})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(ls.Labels) == 0 {
			t.Fatalf("workers=%d: no labels collected", workers)
		}
		for i, l := range ls.Labels {
			if l == nil {
				t.Fatalf("workers=%d: label %d missing", workers, i)
			}
			if len(l.PipelineRuns) != 2 {
				t.Fatalf("workers=%d: label %d has %d runs, want 2", workers, i, len(l.PipelineRuns))
			}
			if len(l.SourceRows) != len(l.Pipelines) {
				t.Fatalf("workers=%d: label %d source rows %d != pipelines %d",
					workers, i, len(l.SourceRows), len(l.Pipelines))
			}
		}
		b := ls.StableBytes()
		if ref == nil {
			ref = b
			continue
		}
		if !bytes.Equal(b, ref) {
			t.Fatalf("workers=%d: stable bytes differ from workers=1 (%d vs %d bytes)",
				workers, len(b), len(ref))
		}
	}
}

// TestCollectLabelsFullByteIdentity stubs execution with deterministic
// durations and asserts FULL byte identity — including the timing payload —
// across worker counts, proving the runner's ordering and plumbing add no
// nondeterminism of their own.
func TestCollectLabelsFullByteIdentity(t *testing.T) {
	in := collectInstance(t)
	stub := func(ex *exec.Executor, root *plan.Node, annotate bool) (*exec.RunResult, error) {
		res, err := ex.Run(root, annotate)
		if err != nil {
			return nil, err
		}
		// Replace measured times with a deterministic function of the
		// pipeline's position and source cardinality.
		res.Total = 0
		for i := range res.Pipelines {
			p := &res.Pipelines[i]
			p.Duration = time.Duration(i+1)*time.Microsecond + time.Duration(p.SourceRows)
			res.Total += p.Duration
		}
		return res, nil
	}
	var ref []byte
	for _, workers := range []int{1, 4} {
		ls, err := CollectLabels(in, CollectConfig{
			Workers: workers, Runs: 3, PerGroup: 2, Seed: 7, RunPlan: stub,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b := ls.Bytes()
		if ref == nil {
			ref = b
			continue
		}
		if !bytes.Equal(b, ref) {
			t.Fatalf("workers=%d: full bytes differ from workers=1", workers)
		}
	}
}

// TestCollectLabelsParallel exercises the fan-out with more workers than
// GOMAXPROCS typically grants and verifies per-worker executor states are
// actually distinct. Run under -race this is the runner's data-race test.
func TestCollectLabelsParallel(t *testing.T) {
	in := collectInstance(t)
	var calls atomic.Int64
	seen := make(map[*exec.Executor]bool)
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	stub := func(ex *exec.Executor, root *plan.Node, annotate bool) (*exec.RunResult, error) {
		calls.Add(1)
		<-mu
		seen[ex] = true
		mu <- struct{}{}
		return ex.Run(root, annotate)
	}
	ls, err := CollectLabels(in, CollectConfig{Workers: 4, Runs: 1, PerGroup: 1, Seed: 3, RunPlan: stub})
	if err != nil {
		t.Fatal(err)
	}
	if got := int(calls.Load()); got != 2*len(ls.Labels) {
		t.Fatalf("stub called %d times, want %d (analyze + 1 run per query)", got, 2*len(ls.Labels))
	}
	if len(seen) < 1 || len(seen) > 4 {
		t.Fatalf("saw %d executor states, want between 1 and 4", len(seen))
	}
	// Fingerprint must match a serial collection of the same config.
	serial, err := CollectLabels(in, CollectConfig{Workers: 1, Runs: 1, PerGroup: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ls.Fingerprint() != serial.Fingerprint() {
		t.Fatal("parallel and serial fingerprints differ")
	}
}

// TestCollectLabelsErrorIsDeterministic injects a failure on one specific
// query and checks the reported error does not depend on the worker count.
func TestCollectLabelsErrorIsDeterministic(t *testing.T) {
	in := collectInstance(t)
	var msgs []string
	for _, workers := range []int{1, 4} {
		var n atomic.Int64
		stub := func(ex *exec.Executor, root *plan.Node, annotate bool) (*exec.RunResult, error) {
			n.Add(1)
			if annotate && root.Op == plan.GroupByOp {
				return nil, errBoom
			}
			return ex.Run(root, annotate)
		}
		_, err := CollectLabels(in, CollectConfig{Workers: workers, Runs: 1, PerGroup: 1, Seed: 3, RunPlan: stub})
		if err == nil {
			t.Fatalf("workers=%d: expected an error", workers)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("error depends on worker count: %q vs %q", msgs[0], msgs[1])
	}
}

var errBoom = &collectTestError{}

type collectTestError struct{}

func (*collectTestError) Error() string { return "injected failure" }

// TestCollectLabelsIntraParallelDeterministic forces morsel-parallel
// pipelines with a tiny morsel size and asserts the label-set fingerprint is
// still byte-identical for every combination of inter- and intra-query
// parallelism — the contract that lets `-workers` mean both levels at once.
func TestCollectLabelsIntraParallelDeterministic(t *testing.T) {
	in := collectInstance(t)
	var ref []byte
	for _, cfg := range []CollectConfig{
		{Workers: 1, IntraWorkers: -1},           // fully serial baseline
		{Workers: 1, IntraWorkers: 4, MorselRows: 64}, // intra only
		{Workers: 4, IntraWorkers: -1},           // inter only
		{Workers: 4, MorselRows: 64},             // both, intra inherits workers
		{Workers: 2, IntraWorkers: 3, MorselRows: 32},
	} {
		cfg.Runs = 1
		cfg.PerGroup = 2
		cfg.Seed = 7
		ls, err := CollectLabels(in, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		b := ls.StableBytes()
		if ref == nil {
			ref = b
			continue
		}
		if !bytes.Equal(b, ref) {
			t.Fatalf("%+v: stable bytes differ from serial baseline", cfg)
		}
	}
	// With a shrunken morsel, at least one pipeline should actually have run
	// parallel — otherwise this test proves nothing.
	ls, err := CollectLabels(in, CollectConfig{
		Workers: 4, MorselRows: 64, Runs: 1, PerGroup: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sawParallel := false
	for _, l := range ls.Labels {
		for _, par := range l.Parallelism {
			if par > 1 {
				sawParallel = true
			}
		}
	}
	if !sawParallel {
		t.Fatal("no pipeline ran morsel-parallel despite MorselRows=64")
	}
}

// BenchmarkLabelCollect measures end-to-end label-collection throughput at
// several worker counts over the same instance and workload. Worker counts
// above GOMAXPROCS are skipped: they cannot add parallelism, only queueing.
func BenchmarkLabelCollect(b *testing.B) {
	in := MustGenerate(TPCHSpec("tpch_bench", 0.01, 42))
	maxp := runtime.GOMAXPROCS(0)
	for _, workers := range []int{1, 2, 4, 8} {
		if workers > maxp && workers > 4 {
			continue
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var queries int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ls, err := CollectLabels(in, CollectConfig{Workers: workers, Runs: 1, PerGroup: 1, Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				queries = len(ls.Labels)
			}
			b.ReportMetric(float64(queries*b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// TestLabelSetSplit checks the deterministic holdout split: stable stride
// partition, no label lost or duplicated, and reproducible fingerprints.
func TestLabelSetSplit(t *testing.T) {
	mk := func(n int) *LabelSet {
		ls := &LabelSet{Instance: "split_test", Workers: 1}
		for i := 0; i < n; i++ {
			ls.Labels = append(ls.Labels, &Label{Name: fmt.Sprintf("q%03d", i)})
		}
		return ls
	}

	ls := mk(16)
	train, hold := ls.Split(0.25)
	if len(train.Labels) != 12 || len(hold.Labels) != 4 {
		t.Fatalf("Split(0.25) over 16 = %d/%d, want 12/4", len(train.Labels), len(hold.Labels))
	}
	// Every 4th label (stride 4) goes to the holdout; order is preserved.
	for i, l := range hold.Labels {
		if want := fmt.Sprintf("q%03d", i*4+3); l.Name != want {
			t.Fatalf("holdout[%d] = %s, want %s", i, l.Name, want)
		}
	}
	seen := map[string]bool{}
	for _, l := range append(append([]*Label(nil), train.Labels...), hold.Labels...) {
		if seen[l.Name] {
			t.Fatalf("label %s appears twice after split", l.Name)
		}
		seen[l.Name] = true
	}
	if len(seen) != 16 {
		t.Fatalf("split lost labels: %d of 16 remain", len(seen))
	}

	// Same input, same fraction → identical partition and fingerprints.
	train2, hold2 := mk(16).Split(0.25)
	if train.Fingerprint() != train2.Fingerprint() || hold.Fingerprint() != hold2.Fingerprint() {
		t.Fatal("Split is not deterministic")
	}

	// Zero fraction holds nothing out; tiny sets still yield one holdout.
	tr, ho := mk(9).Split(0)
	if len(tr.Labels) != 9 || len(ho.Labels) != 0 {
		t.Fatalf("Split(0) = %d/%d, want 9/0", len(tr.Labels), len(ho.Labels))
	}
	tr, ho = mk(2).Split(0.1)
	if len(tr.Labels) != 1 || len(ho.Labels) != 1 {
		t.Fatalf("Split(0.1) over 2 = %d/%d, want 1/1", len(tr.Labels), len(ho.Labels))
	}
	tr, ho = mk(1).Split(0.5)
	if len(tr.Labels) != 1 || len(ho.Labels) != 0 {
		t.Fatalf("Split(0.5) over 1 = %d/%d, want 1/0", len(tr.Labels), len(ho.Labels))
	}
}
