package workload

import (
	"fmt"
	"math/rand"

	"t3/internal/engine/storage"
)

// TPCHSpec returns a scaled-down TPC-H schema ("TPC-H-lite"). scale = 1
// yields a lineitem of 600k rows (1% of TPC-H sf 1), preserving the relative
// table proportions and foreign keys of the benchmark.
func TPCHSpec(name string, scale float64, seed int64) InstanceSpec {
	n := func(base int) int {
		r := int(float64(base) * scale)
		if r < 1 {
			r = 1
		}
		return r
	}
	return InstanceSpec{
		Name: name,
		Seed: seed,
		Tables: []TableSpec{
			{Name: "region", Rows: 5, Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "r_name", Kind: storage.String, Dist: DistWords, NDistinct: 5},
			}},
			{Name: "nation", Rows: 25, Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "n_regionkey", Kind: storage.Int64, Dist: DistFK, FKTable: "region"},
				{Name: "n_name", Kind: storage.String, Dist: DistWords, NDistinct: 25},
			}},
			{Name: "supplier", Rows: n(1000), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "s_nationkey", Kind: storage.Int64, Dist: DistFK, FKTable: "nation"},
				{Name: "s_acctbal", Kind: storage.Float64, Dist: DistUniformFloat, Min: -999, Max: 9999},
				{Name: "s_name", Kind: storage.String, Dist: DistWords, NDistinct: 200},
			}},
			{Name: "part", Rows: n(20000), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "p_size", Kind: storage.Int64, Dist: DistUniformInt, Min: 1, Max: 50},
				{Name: "p_retailprice", Kind: storage.Float64, Dist: DistUniformFloat, Min: 900, Max: 2100},
				{Name: "p_brand", Kind: storage.String, Dist: DistWords, NDistinct: 25},
				{Name: "p_type", Kind: storage.String, Dist: DistWords, NDistinct: 150},
			}},
			{Name: "partsupp", Rows: n(80000), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "ps_partkey", Kind: storage.Int64, Dist: DistFK, FKTable: "part"},
				{Name: "ps_suppkey", Kind: storage.Int64, Dist: DistFK, FKTable: "supplier"},
				{Name: "ps_availqty", Kind: storage.Int64, Dist: DistUniformInt, Min: 1, Max: 9999},
				{Name: "ps_supplycost", Kind: storage.Float64, Dist: DistUniformFloat, Min: 1, Max: 1000},
			}},
			{Name: "customer", Rows: n(15000), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "c_nationkey", Kind: storage.Int64, Dist: DistFK, FKTable: "nation"},
				{Name: "c_acctbal", Kind: storage.Float64, Dist: DistUniformFloat, Min: -999, Max: 9999},
				{Name: "c_mktsegment", Kind: storage.String, Dist: DistWords, NDistinct: 5},
			}},
			{Name: "orders", Rows: n(150000), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "o_custkey", Kind: storage.Int64, Dist: DistFK, FKTable: "customer"},
				{Name: "o_orderdate", Kind: storage.Int64, Dist: DistDate, Min: 8766, Max: 11322},
				{Name: "o_totalprice", Kind: storage.Float64, Dist: DistUniformFloat, Min: 800, Max: 550000},
				{Name: "o_orderpriority", Kind: storage.String, Dist: DistWords, NDistinct: 5},
			}},
			{Name: "lineitem", Rows: n(600000), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "l_orderkey", Kind: storage.Int64, Dist: DistFK, FKTable: "orders"},
				{Name: "l_partkey", Kind: storage.Int64, Dist: DistFK, FKTable: "part"},
				{Name: "l_suppkey", Kind: storage.Int64, Dist: DistFK, FKTable: "supplier"},
				{Name: "l_quantity", Kind: storage.Int64, Dist: DistUniformInt, Min: 1, Max: 50},
				{Name: "l_extendedprice", Kind: storage.Float64, Dist: DistUniformFloat, Min: 900, Max: 105000},
				{Name: "l_discount", Kind: storage.Float64, Dist: DistUniformFloat, Min: 0, Max: 0.1},
				{Name: "l_shipdate", Kind: storage.Int64, Dist: DistDate, Min: 8766, Max: 11322},
			}},
		},
	}
}

// TPCDSSpec returns a scaled-down TPC-DS core schema ("TPC-DS-lite").
// scale = 1 yields a store_sales of 10k rows; the paper's test instances use
// scale factors 1, 10, and 100.
func TPCDSSpec(name string, scale float64, seed int64) InstanceSpec {
	n := func(base int) int {
		r := int(float64(base) * scale)
		if r < 1 {
			r = 1
		}
		return r
	}
	return InstanceSpec{
		Name: name,
		Seed: seed,
		Tables: []TableSpec{
			{Name: "date_dim", Rows: 2500, Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "d_year", Kind: storage.Int64, Dist: DistUniformInt, Min: 1998, Max: 2004},
				{Name: "d_moy", Kind: storage.Int64, Dist: DistUniformInt, Min: 1, Max: 12},
				{Name: "d_dow", Kind: storage.Int64, Dist: DistUniformInt, Min: 0, Max: 6},
			}},
			{Name: "store", Rows: n(12) + 3, Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "s_state", Kind: storage.String, Dist: DistWords, NDistinct: 9},
				{Name: "s_floor_space", Kind: storage.Int64, Dist: DistUniformInt, Min: 5000000, Max: 10000000},
			}},
			{Name: "item", Rows: n(1800) + 100, Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "i_category", Kind: storage.String, Dist: DistWords, NDistinct: 10, Skew: 1.3},
				{Name: "i_brand", Kind: storage.String, Dist: DistWords, NDistinct: 70},
				{Name: "i_current_price", Kind: storage.Float64, Dist: DistUniformFloat, Min: 0.09, Max: 99.9},
			}},
			{Name: "customer", Rows: n(1000) + 200, Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "c_birth_year", Kind: storage.Int64, Dist: DistUniformInt, Min: 1924, Max: 1992},
				{Name: "c_preferred", Kind: storage.Int64, Dist: DistUniformInt, Min: 0, Max: 1},
			}},
			{Name: "promotion", Rows: n(3) + 10, Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "p_channel", Kind: storage.String, Dist: DistWords, NDistinct: 4},
			}},
			{Name: "store_sales", Rows: n(10000), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "ss_sold_date_sk", Kind: storage.Int64, Dist: DistFK, FKTable: "date_dim"},
				{Name: "ss_item_sk", Kind: storage.Int64, Dist: DistFK, FKTable: "item"},
				{Name: "ss_customer_sk", Kind: storage.Int64, Dist: DistFK, FKTable: "customer"},
				{Name: "ss_store_sk", Kind: storage.Int64, Dist: DistFK, FKTable: "store"},
				{Name: "ss_promo_sk", Kind: storage.Int64, Dist: DistFK, FKTable: "promotion"},
				{Name: "ss_quantity", Kind: storage.Int64, Dist: DistUniformInt, Min: 1, Max: 100},
				{Name: "ss_sales_price", Kind: storage.Float64, Dist: DistUniformFloat, Min: 0, Max: 200},
				{Name: "ss_net_profit", Kind: storage.Float64, Dist: DistNormalFloat, Min: 50, Max: 300},
			}},
			{Name: "store_returns", Rows: n(1000), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "sr_item_sk", Kind: storage.Int64, Dist: DistFK, FKTable: "item"},
				{Name: "sr_customer_sk", Kind: storage.Int64, Dist: DistFK, FKTable: "customer"},
				{Name: "sr_return_amt", Kind: storage.Float64, Dist: DistUniformFloat, Min: 0, Max: 18000},
			}},
			{Name: "web_sales", Rows: n(7200), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "ws_sold_date_sk", Kind: storage.Int64, Dist: DistFK, FKTable: "date_dim"},
				{Name: "ws_item_sk", Kind: storage.Int64, Dist: DistFK, FKTable: "item"},
				{Name: "ws_customer_sk", Kind: storage.Int64, Dist: DistFK, FKTable: "customer"},
				{Name: "ws_sales_price", Kind: storage.Float64, Dist: DistUniformFloat, Min: 0, Max: 300},
			}},
		},
	}
}

// IMDBSpec returns a scaled-down IMDb schema ("imdb-lite") matching the
// join structure of the Join Order Benchmark. scale = 1 yields a title
// table of 50k rows.
func IMDBSpec(name string, scale float64, seed int64) InstanceSpec {
	n := func(base int) int {
		r := int(float64(base) * scale)
		if r < 1 {
			r = 1
		}
		return r
	}
	return InstanceSpec{
		Name: name,
		Seed: seed,
		Tables: []TableSpec{
			{Name: "kind_type", Rows: 7, Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "kind", Kind: storage.String, Dist: DistWords, NDistinct: 7},
			}},
			{Name: "info_type", Rows: 110, Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "it_info", Kind: storage.String, Dist: DistWords, NDistinct: 110},
			}},
			{Name: "company_name", Rows: n(6000), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "cn_country", Kind: storage.String, Dist: DistWords, NDistinct: 60, Skew: 1.5},
				{Name: "cn_name", Kind: storage.String, Dist: DistWords, NDistinct: 4000},
			}},
			{Name: "keyword", Rows: n(4000), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "k_keyword", Kind: storage.String, Dist: DistWords, NDistinct: 3000},
			}},
			{Name: "name", Rows: n(40000), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "n_gender", Kind: storage.String, Dist: DistWords, NDistinct: 3},
				{Name: "n_name", Kind: storage.String, Dist: DistWords, NDistinct: 20000},
			}},
			{Name: "title", Rows: n(50000), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "t_kind_id", Kind: storage.Int64, Dist: DistFK, FKTable: "kind_type"},
				{Name: "t_production_year", Kind: storage.Int64, Dist: DistUniformInt, Min: 1900, Max: 2008},
				{Name: "t_title", Kind: storage.String, Dist: DistWords, NDistinct: 30000},
			}},
			{Name: "movie_companies", Rows: n(80000), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "mc_movie_id", Kind: storage.Int64, Dist: DistFK, FKTable: "title"},
				{Name: "mc_company_id", Kind: storage.Int64, Dist: DistFK, FKTable: "company_name"},
			}},
			{Name: "movie_keyword", Rows: n(120000), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "mk_movie_id", Kind: storage.Int64, Dist: DistFK, FKTable: "title"},
				{Name: "mk_keyword_id", Kind: storage.Int64, Dist: DistFK, FKTable: "keyword"},
			}},
			{Name: "movie_info", Rows: n(150000), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "mi_movie_id", Kind: storage.Int64, Dist: DistFK, FKTable: "title"},
				{Name: "mi_info_type_id", Kind: storage.Int64, Dist: DistFK, FKTable: "info_type"},
				{Name: "mi_note", Kind: storage.String, Dist: DistWords, NDistinct: 500, Skew: 1.4},
			}},
			{Name: "cast_info", Rows: n(250000), Cols: []ColSpec{
				{Name: "id", Kind: storage.Int64, Dist: DistSeq},
				{Name: "ci_movie_id", Kind: storage.Int64, Dist: DistFK, FKTable: "title"},
				{Name: "ci_person_id", Kind: storage.Int64, Dist: DistFK, FKTable: "name"},
				{Name: "ci_role", Kind: storage.String, Dist: DistWords, NDistinct: 12},
			}},
		},
	}
}

// syntheticNames are the real-world instances of the zero-shot suite; our
// data is synthetic but keeps the suite's role of schema/scale diversity.
var syntheticNames = []string{
	"airline", "accidents", "baseball", "basketball", "carcinogenesis",
	"consumer", "credit", "employee", "financial", "fhnk", "geneea",
	"genome", "hepatitis", "movielens", "seznam", "ssb", "telstra",
	"walmart",
}

// SyntheticSpec procedurally derives a varied star/snowflake-ish schema from
// the instance seed: 3-8 tables, 1k-150k rows, mixed distributions, foreign
// keys to earlier tables.
func SyntheticSpec(name string, seed int64, scale float64) InstanceSpec {
	rng := rand.New(rand.NewSource(seed))
	numTables := 3 + rng.Intn(6)
	spec := InstanceSpec{Name: name, Seed: seed + 1}
	for ti := 0; ti < numTables; ti++ {
		// Row counts log-uniform-ish in [1k, 150k]; later tables (facts)
		// larger.
		base := 1000 * (1 << rng.Intn(8)) // 1k .. 128k
		if ti == numTables-1 {
			base *= 2
		}
		rows := int(float64(base) * scale)
		if rows < 50 {
			rows = 50
		}
		t := TableSpec{Name: fmt.Sprintf("%s_t%d", name, ti), Rows: rows}
		t.Cols = append(t.Cols, ColSpec{Name: "id", Kind: storage.Int64, Dist: DistSeq})
		// Foreign keys to up to two earlier tables; every non-root table
		// gets at least one so the instance always has a join graph.
		fks := 0
		for p := 0; p < ti && fks < 2; p++ {
			if rng.Float64() < 0.6 || (fks == 0 && p == ti-1) {
				parent := spec.Tables[rng.Intn(ti)]
				skew := 0.0
				if rng.Float64() < 0.4 {
					skew = 1.1 + rng.Float64()
				}
				t.Cols = append(t.Cols, ColSpec{
					Name: fmt.Sprintf("fk%d_%s", fks, parent.Name), Kind: storage.Int64,
					Dist: DistFK, FKTable: parent.Name, Skew: skew,
				})
				fks++
			}
		}
		numVals := 2 + rng.Intn(5)
		for v := 0; v < numVals; v++ {
			switch rng.Intn(5) {
			case 0:
				t.Cols = append(t.Cols, ColSpec{
					Name: fmt.Sprintf("i%d", v), Kind: storage.Int64, Dist: DistUniformInt,
					Min: 0, Max: float64(1 + rng.Intn(100000)),
				})
			case 1:
				t.Cols = append(t.Cols, ColSpec{
					Name: fmt.Sprintf("z%d", v), Kind: storage.Int64, Dist: DistZipfInt,
					NDistinct: 2 + rng.Intn(1000), Skew: 1.1 + rng.Float64(),
				})
			case 2:
				t.Cols = append(t.Cols, ColSpec{
					Name: fmt.Sprintf("f%d", v), Kind: storage.Float64, Dist: DistUniformFloat,
					Min: 0, Max: float64(1 + rng.Intn(10000)),
				})
			case 3:
				t.Cols = append(t.Cols, ColSpec{
					Name: fmt.Sprintf("n%d", v), Kind: storage.Float64, Dist: DistNormalFloat,
					Min: float64(rng.Intn(1000)), Max: float64(1 + rng.Intn(200)),
				})
			default:
				skew := 0.0
				if rng.Float64() < 0.5 {
					skew = 1.1 + rng.Float64()
				}
				t.Cols = append(t.Cols, ColSpec{
					Name: fmt.Sprintf("s%d", v), Kind: storage.String, Dist: DistWords,
					NDistinct: 2 + rng.Intn(500), Skew: skew,
				})
			}
		}
		spec.Tables = append(spec.Tables, t)
	}
	return spec
}

// SuiteConfig sizes the instance suite.
type SuiteConfig struct {
	// Scale multiplies all row counts (1 = full default sizes; tests use
	// much smaller values).
	Scale float64
	// Seed drives all generators.
	Seed int64
}

// TrainMakers returns lazy constructors for the training instances: three
// TPC-H-lite scale variants, imdb-lite, and the 18 synthetic real-world
// stand-ins (≈ the paper's 21 training instances).
func TrainMakers(cfg SuiteConfig) []Maker {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	makers := []Maker{
		{Name: "tpch_sf0_1", Make: func() *Instance { return MustGenerate(TPCHSpec("tpch_sf0_1", 0.02*cfg.Scale, cfg.Seed+11)) }},
		{Name: "tpch_sf0_5", Make: func() *Instance { return MustGenerate(TPCHSpec("tpch_sf0_5", 0.1*cfg.Scale, cfg.Seed+12)) }},
		{Name: "tpch_sf1", Make: func() *Instance { return MustGenerate(TPCHSpec("tpch_sf1", 0.2*cfg.Scale, cfg.Seed+13)) }},
		{Name: "imdb", Make: func() *Instance { return MustGenerate(IMDBSpec("imdb", 0.3*cfg.Scale, cfg.Seed+14)) }},
	}
	for i, name := range syntheticNames {
		name := name
		seed := cfg.Seed + 100 + int64(i)
		makers = append(makers, Maker{Name: name, Make: func() *Instance {
			return MustGenerate(SyntheticSpec(name, seed, 0.3*cfg.Scale))
		}})
	}
	return makers
}

// TestMakers returns lazy constructors for the held-out TPC-DS-lite test
// instances at scale factors 1, 10, and 100 (paper §4.2).
func TestMakers(cfg SuiteConfig) []Maker {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	return []Maker{
		{Name: "tpcds_sf1", Make: func() *Instance { return MustGenerate(TPCDSSpec("tpcds_sf1", 1*cfg.Scale, cfg.Seed+21)) }},
		{Name: "tpcds_sf10", Make: func() *Instance { return MustGenerate(TPCDSSpec("tpcds_sf10", 10*cfg.Scale, cfg.Seed+22)) }},
		{Name: "tpcds_sf100", Make: func() *Instance { return MustGenerate(TPCDSSpec("tpcds_sf100", 100*cfg.Scale, cfg.Seed+23)) }},
	}
}
