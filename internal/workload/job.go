package workload

import (
	"fmt"
	"math/rand"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// RelSpec is one base relation of a join query: a table scan with pushed
// predicates.
type RelSpec struct {
	Table    string
	ScanCols []int
	Preds    []expr.BoolExpr // column refs resolved against ScanCols positions
}

// Scan builds a fresh scan node for the relation.
func (r *RelSpec) Scan(in *Instance) *plan.Node {
	return plan.NewTableScan(in.Table(r.Table), r.ScanCols, r.Preds...)
}

// EdgeSpec is an equi-join edge between two relations. ACol/BCol are
// positions within the respective relation's scan schema.
type EdgeSpec struct {
	A, B       int
	ACol, BCol int
}

// JoinSpec is a join query in optimizer-friendly form: relations plus an
// equi-join graph. The join-order experiments (§5.5) enumerate plans over
// this representation.
type JoinSpec struct {
	Name  string
	Rels  []RelSpec
	Edges []EdgeSpec
}

// JOBJoinSpecs deterministically generates the 113 JOB-like join queries
// over an imdb-lite instance.
func JOBJoinSpecs(in *Instance) []*JoinSpec {
	specs := make([]*JoinSpec, 0, 113)
	for i := 0; i < 113; i++ {
		rng := rand.New(rand.NewSource(int64(7000 + i*37)))
		sp := genJoinSpec(in, rng, fmt.Sprintf("%da", i+1))
		if sp != nil {
			specs = append(specs, sp)
		}
	}
	return specs
}

// genJoinSpec samples a connected FK subgraph of 3-6 tables with selective
// predicates on dimension relations.
func genJoinSpec(in *Instance, rng *rand.Rand, name string) *JoinSpec {
	if len(in.FKs) == 0 {
		return nil
	}
	k := 3 + rng.Intn(4)
	sp := &JoinSpec{Name: name}
	relIdx := map[string]int{}

	addRel := func(table string) int {
		if i, ok := relIdx[table]; ok {
			return i
		}
		t := in.Table(table)
		cols := []int{}
		need := map[int]bool{}
		if i := t.ColumnIndex("id"); i >= 0 {
			need[i] = true
		}
		for _, fk := range in.FKs {
			if fk.ChildTable == table {
				if i := t.ColumnIndex(fk.ChildCol); i >= 0 {
					need[i] = true
				}
			}
		}
		var valCols []int
		for ci := range t.Columns {
			if need[ci] {
				cols = append(cols, ci)
			} else {
				valCols = append(valCols, ci)
			}
		}
		// One value column for potential predicates.
		var filterPos = -1
		if len(valCols) > 0 {
			vc := valCols[rng.Intn(len(valCols))]
			cols = append(cols, vc)
			filterPos = len(cols) - 1
		}
		rs := RelSpec{Table: table, ScanCols: cols}
		// Selective predicate on the value column, JOB-style (on the
		// smaller/dimension tables more often).
		if filterPos >= 0 && rng.Float64() < 0.55 {
			rs.Preds = genJOBPred(in, t, cols, filterPos, rng)
		}
		relIdx[table] = len(sp.Rels)
		sp.Rels = append(sp.Rels, rs)
		return relIdx[table]
	}

	colPos := func(rel int, table, col string) int {
		t := in.Table(table)
		ci := t.ColumnIndex(col)
		for p, c := range sp.Rels[rel].ScanCols {
			if c == ci {
				return p
			}
		}
		return -1
	}

	// Start from a random FK child and extend along edges.
	start := in.FKs[rng.Intn(len(in.FKs))]
	addRel(start.ChildTable)
	for len(sp.Rels) < k {
		var cands []FK
		var newIsParent []bool
		for _, fk := range in.FKs {
			_, hasChild := relIdx[fk.ChildTable]
			_, hasParent := relIdx[fk.ParentTable]
			if hasChild && !hasParent {
				cands = append(cands, fk)
				newIsParent = append(newIsParent, true)
			} else if hasParent && !hasChild {
				cands = append(cands, fk)
				newIsParent = append(newIsParent, false)
			}
		}
		if len(cands) == 0 {
			break
		}
		ei := rng.Intn(len(cands))
		fk := cands[ei]
		var a, b int
		if newIsParent[ei] {
			a = relIdx[fk.ChildTable]
			b = addRel(fk.ParentTable)
		} else {
			b = relIdx[fk.ParentTable]
			a = addRel(fk.ChildTable)
		}
		ac := colPos(a, fk.ChildTable, fk.ChildCol)
		bc := colPos(b, fk.ParentTable, fk.ParentCol)
		if ac < 0 || bc < 0 {
			break
		}
		sp.Edges = append(sp.Edges, EdgeSpec{A: a, B: b, ACol: ac, BCol: bc})
	}
	if len(sp.Rels) < 2 {
		return nil
	}
	return sp
}

// genJOBPred creates a selective predicate over the value column at position
// pos of the scan schema.
func genJOBPred(in *Instance, t *storage.Table, cols []int, pos int, rng *rand.Rand) []expr.BoolExpr {
	ci := cols[pos]
	col := &t.Columns[ci]
	cs := &in.Stats.Tables[t.Name].Cols[ci]
	ref := expr.Col(pos, col.Name, col.Kind)
	switch col.Kind {
	case storage.String:
		if len(cs.SampleStrings) == 0 {
			return nil
		}
		w := cs.SampleStrings[rng.Intn(len(cs.SampleStrings))]
		switch rng.Intn(3) {
		case 0:
			return []expr.BoolExpr{expr.NewCmp(expr.Eq, ref, expr.ConstString(w))}
		case 1:
			if len(w) > 2 {
				return []expr.BoolExpr{expr.NewLike(ref, w[:len(w)-1]+"%")}
			}
			return []expr.BoolExpr{expr.NewLike(ref, "%"+w)}
		default:
			k := 1 + rng.Intn(3)
			vals := make([]string, k)
			for i := range vals {
				vals[i] = cs.SampleStrings[rng.Intn(len(cs.SampleStrings))]
			}
			return []expr.BoolExpr{expr.NewInListStrings(ref, vals)}
		}
	case storage.Int64:
		span := cs.Max - cs.Min
		sel := 0.02 + rng.Float64()*0.5
		lo := cs.Min + rng.Float64()*(1-sel)*span
		return []expr.BoolExpr{expr.NewBetween(ref, expr.ConstInt(int64(lo)), expr.ConstInt(int64(lo+sel*span)))}
	case storage.Float64:
		span := cs.Max - cs.Min
		sel := 0.02 + rng.Float64()*0.5
		return []expr.BoolExpr{expr.NewCmp(expr.Le, ref, expr.ConstFloat(cs.Min+sel*span))}
	}
	return nil
}

// LeftDeepPlan materializes the spec as a left-deep physical plan in
// relation order (rel 0 is the initial probe stream, every further relation
// is a hash-join build side), ending in a global aggregation to a single
// tuple — the JOB-full query shape.
func (sp *JoinSpec) LeftDeepPlan(in *Instance) *plan.Node {
	return sp.PlanForOrder(in, nil)
}

// PlanForOrder materializes the spec as a left-deep plan joining relations
// in the given order (nil means 0..n-1), ending in the JOB-style global
// aggregation to a single tuple. The order must keep the join graph
// connected at every step; unsatisfiable orders panic.
func (sp *JoinSpec) PlanForOrder(in *Instance, order []int) *plan.Node {
	root := sp.PlanForOrderNoAgg(in, order)
	aggs := []plan.Agg{{Fn: plan.AggCount}}
	names := []string{"cnt"}
	for i, cm := range root.Schema {
		if cm.Kind == storage.Int64 || cm.Kind == storage.Float64 {
			aggs = append(aggs, plan.Agg{Fn: plan.AggMin, Col: i})
			names = append(names, "mn")
			break
		}
	}
	return plan.NewGroupBy(root, nil, aggs, names)
}

// PlanForOrderNoAgg is PlanForOrder without the final aggregation: it
// returns the raw join pipeline result.
func (sp *JoinSpec) PlanForOrderNoAgg(in *Instance, order []int) *plan.Node {
	if order == nil {
		order = make([]int, len(sp.Rels))
		for i := range order {
			order[i] = i
		}
	}
	// offset[r] is the position of relation r's scan columns in the current
	// output schema, or -1 if not yet joined.
	offset := make([]int, len(sp.Rels))
	for i := range offset {
		offset[i] = -1
	}

	first := order[0]
	root := sp.Rels[first].Scan(in)
	offset[first] = 0
	width := len(sp.Rels[first].ScanCols)
	joined := map[int]bool{first: true}

	for _, r := range order[1:] {
		// Find an edge connecting r to the joined set.
		var probeKeys, buildKeys []int
		for _, e := range sp.Edges {
			if e.A == r && joined[e.B] {
				buildKeys = append(buildKeys, e.ACol)
				probeKeys = append(probeKeys, offset[e.B]+e.BCol)
			} else if e.B == r && joined[e.A] {
				buildKeys = append(buildKeys, e.BCol)
				probeKeys = append(probeKeys, offset[e.A]+e.ACol)
			}
		}
		if len(buildKeys) == 0 {
			panic(fmt.Sprintf("workload: join order disconnects relation %d in %s", r, sp.Name))
		}
		// A single equi-edge suffices; extra edges would be filters. Use the
		// first to keep plans simple and deterministic.
		build := sp.Rels[r].Scan(in)
		payload := make([]int, len(sp.Rels[r].ScanCols))
		for i := range payload {
			payload[i] = i
		}
		root = plan.NewHashJoin(build, root, buildKeys[:1], probeKeys[:1], payload)
		offset[r] = width
		width += len(payload)
		joined[r] = true
	}
	return root
}
