package workload

import (
	"fmt"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
)

// TPCHBenchmarkQueries returns hand-written TPC-H-like queries over a
// TPC-H-lite instance, including the paper's running example Q5 (Figure 2,
// Listings 2-4). These act as "Fixed" benchmark queries for the TPC-H
// training instances.
func TPCHBenchmarkQueries(in *Instance) []*Query {
	var qs []*Query
	add := func(name string, root *plan.Node) {
		qs = append(qs, &Query{Name: in.Name + "/" + name, Group: GroupFixed, Instance: in.Name, Root: root})
	}

	// Q1-like: scan lineitem with a date filter, aggregate by quantity
	// bucket-ish columns, order by group.
	add("q1", in.Scan("lineitem", []string{"l_quantity", "l_extendedprice", "l_discount", "l_shipdate"},
		CmpP(expr.Le, "l_shipdate", Int(11200))).
		Map([]string{"disc_price"}, func(r Ref) []expr.ValueExpr {
			return []expr.ValueExpr{expr.NewArith(expr.Mul, r("lineitem.l_extendedprice"),
				expr.NewArith(expr.Sub, expr.ConstFloat(1), r("lineitem.l_discount")))}
		}).
		GroupBy([]string{"lineitem.l_quantity"},
			AggSpec{Fn: plan.AggSum, Col: "disc_price", Name: "sum_disc"},
			AggSpec{Fn: plan.AggAvg, Col: "lineitem.l_extendedprice", Name: "avg_price"},
			AggSpec{Fn: plan.AggCount, Name: "cnt"}).
		Sort([]string{"lineitem.l_quantity"}, []bool{false}).
		Build())

	// Q3-like: customer x orders x lineitem with segment and date filters,
	// top revenue.
	cust := in.Scan("customer", []string{"id", "c_mktsegment"},
		LikeP("c_mktsegment", "%a%"))
	ord := in.Scan("orders", []string{"id", "o_custkey", "o_orderdate"},
		CmpP(expr.Lt, "o_orderdate", Int(9500)))
	q3 := in.Scan("lineitem", []string{"l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"},
		CmpP(expr.Gt, "l_shipdate", Int(9500)))
	ordJoined := ord.JoinBuild(cust, "customer.id", "orders.o_custkey")
	q3.JoinBuild(ordJoined, "orders.id", "lineitem.l_orderkey", "orders.o_orderdate").
		Map([]string{"revenue"}, func(r Ref) []expr.ValueExpr {
			return []expr.ValueExpr{expr.NewArith(expr.Mul, r("lineitem.l_extendedprice"),
				expr.NewArith(expr.Sub, expr.ConstFloat(1), r("lineitem.l_discount")))}
		}).
		GroupBy([]string{"lineitem.l_orderkey", "orders.o_orderdate"},
			AggSpec{Fn: plan.AggSum, Col: "revenue", Name: "rev"}).
		Sort([]string{"rev"}, []bool{true}).
		Limit(10)
	add("q3", q3.Build())

	// Q5-like (the paper's running example): Umbra folds the
	// nation/region joins into IN/BETWEEN expressions on nation keys.
	supp := in.Scan("supplier", []string{"id", "s_nationkey"},
		BetweenP("s_nationkey", Int(8), Int(21)),
		InIntsP("s_nationkey", 8, 9, 12, 18, 21))
	cust5 := in.Scan("customer", []string{"id", "c_nationkey"},
		BetweenP("c_nationkey", Int(8), Int(21)),
		InIntsP("c_nationkey", 8, 9, 12, 18, 21))
	ord5 := in.Scan("orders", []string{"id", "o_custkey", "o_orderdate"},
		BetweenP("o_orderdate", Int(8766), Int(9131))).
		JoinBuild(cust5, "customer.id", "orders.o_custkey", "customer.c_nationkey")
	q5 := in.Scan("lineitem", []string{"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"}).
		JoinBuild(ord5, "orders.id", "lineitem.l_orderkey", "customer.c_nationkey").
		JoinBuild(supp, "supplier.id", "lineitem.l_suppkey", "supplier.s_nationkey").
		Filter(func(r Ref) expr.BoolExpr {
			return expr.NewColCmp(expr.Eq, r("customer.c_nationkey"), r("supplier.s_nationkey"))
		}).
		Map([]string{"revenue"}, func(r Ref) []expr.ValueExpr {
			return []expr.ValueExpr{expr.NewArith(expr.Mul, r("lineitem.l_extendedprice"),
				expr.NewArith(expr.Sub, expr.ConstFloat(1), r("lineitem.l_discount")))}
		}).
		GroupBy([]string{"supplier.s_nationkey"}, AggSpec{Fn: plan.AggSum, Col: "revenue", Name: "revenue"}).
		Sort([]string{"revenue"}, []bool{true})
	add("q5", q5.Build())

	// Q6-like: pure selective scan aggregation.
	add("q6", in.Scan("lineitem", []string{"l_extendedprice", "l_discount", "l_quantity", "l_shipdate"},
		BetweenP("l_shipdate", Int(8766), Int(9131)),
		BetweenP("l_discount", Float(0.05), Float(0.07)),
		CmpP(expr.Lt, "l_quantity", Int(24))).
		Map([]string{"rev"}, func(r Ref) []expr.ValueExpr {
			return []expr.ValueExpr{expr.NewArith(expr.Mul, r("lineitem.l_extendedprice"), r("lineitem.l_discount"))}
		}).
		GroupBy(nil, AggSpec{Fn: plan.AggSum, Col: "rev", Name: "revenue"}).
		Build())

	// Q10-ish: customer returns by acctbal, joined through orders/lineitem.
	cust10 := in.Scan("customer", []string{"id", "c_acctbal", "c_nationkey"})
	ord10 := in.Scan("orders", []string{"id", "o_custkey", "o_orderdate"},
		BetweenP("o_orderdate", Int(9100), Int(9200))).
		JoinBuild(cust10, "customer.id", "orders.o_custkey", "customer.c_acctbal", "customer.c_nationkey")
	q10 := in.Scan("lineitem", []string{"l_orderkey", "l_extendedprice", "l_discount"}).
		JoinBuild(ord10, "orders.id", "lineitem.l_orderkey", "customer.c_acctbal", "customer.c_nationkey").
		GroupBy([]string{"customer.c_nationkey"},
			AggSpec{Fn: plan.AggSum, Col: "lineitem.l_extendedprice", Name: "total"},
			AggSpec{Fn: plan.AggMax, Col: "customer.c_acctbal", Name: "max_bal"}).
		Sort([]string{"total"}, []bool{true}).
		Limit(20)
	add("q10", q10.Build())

	// Q12-ish: orders priority counting by lineitem ship mode-ish filter.
	ord12 := in.Scan("orders", []string{"id", "o_orderpriority"})
	q12 := in.Scan("lineitem", []string{"l_orderkey", "l_shipdate"},
		BetweenP("l_shipdate", Int(9496), Int(9861))).
		JoinBuild(ord12, "orders.id", "lineitem.l_orderkey", "orders.o_orderpriority").
		GroupBy([]string{"orders.o_orderpriority"}, AggSpec{Fn: plan.AggCount, Name: "cnt"}).
		Sort([]string{"orders.o_orderpriority"}, []bool{false})
	add("q12", q12.Build())

	// Q18-ish: big customers via window over order totals.
	q18 := in.Scan("orders", []string{"id", "o_custkey", "o_totalprice"},
		CmpP(expr.Gt, "o_totalprice", Float(400000))).
		Window(plan.WinRank, []string{"orders.o_custkey"}, []string{"orders.o_totalprice"}, "", "rnk").
		Filter(func(r Ref) expr.BoolExpr {
			return expr.NewCmp(expr.Le, r("rnk"), expr.ConstInt(3))
		})
	add("q18", q18.Build())

	// Partsupp availability: part x partsupp x supplier join aggregation.
	part := in.Scan("part", []string{"id", "p_size", "p_brand"},
		CmpP(expr.Le, "p_size", Int(15)))
	supp2 := in.Scan("supplier", []string{"id", "s_acctbal"})
	q16 := in.Scan("partsupp", []string{"ps_partkey", "ps_suppkey", "ps_availqty"}).
		JoinBuild(part, "part.id", "partsupp.ps_partkey", "part.p_brand").
		JoinBuild(supp2, "supplier.id", "partsupp.ps_suppkey", "supplier.s_acctbal").
		GroupBy([]string{"part.p_brand"},
			AggSpec{Fn: plan.AggSum, Col: "partsupp.ps_availqty", Name: "avail"},
			AggSpec{Fn: plan.AggAvg, Col: "supplier.s_acctbal", Name: "bal"}).
		Sort([]string{"avail"}, []bool{true})
	add("q16", q16.Build())

	return qs
}

// TPCDSBenchmarkQueries returns the fixed TPC-DS-like benchmark query set
// over a TPC-DS-lite instance — the paper's "TPC-DS Benchmark Queries" rows
// of Table 4 and the "Fixed" bars of Figure 8.
func TPCDSBenchmarkQueries(in *Instance) []*Query {
	var qs []*Query
	add := func(name string, root *plan.Node) {
		qs = append(qs, &Query{Name: in.Name + "/" + name, Group: GroupFixed, Instance: in.Name, Root: root})
	}

	// q1: sales by item category for one year.
	date := in.Scan("date_dim", []string{"id", "d_year"}, CmpP(expr.Eq, "d_year", Int(2000)))
	item := in.Scan("item", []string{"id", "i_category"})
	q := in.Scan("store_sales", []string{"ss_sold_date_sk", "ss_item_sk", "ss_sales_price"}).
		JoinBuild(date, "date_dim.id", "store_sales.ss_sold_date_sk").
		JoinBuild(item, "item.id", "store_sales.ss_item_sk", "item.i_category").
		GroupBy([]string{"item.i_category"}, AggSpec{Fn: plan.AggSum, Col: "store_sales.ss_sales_price", Name: "sales"}).
		Sort([]string{"sales"}, []bool{true})
	add("ds_q1", q.Build())

	// q2: monthly sales totals.
	date2 := in.Scan("date_dim", []string{"id", "d_year", "d_moy"}, BetweenP("d_year", Int(1999), Int(2001)))
	q2 := in.Scan("store_sales", []string{"ss_sold_date_sk", "ss_net_profit"}).
		JoinBuild(date2, "date_dim.id", "store_sales.ss_sold_date_sk", "date_dim.d_year", "date_dim.d_moy").
		GroupBy([]string{"date_dim.d_year", "date_dim.d_moy"},
			AggSpec{Fn: plan.AggSum, Col: "store_sales.ss_net_profit", Name: "profit"},
			AggSpec{Fn: plan.AggCount, Name: "cnt"}).
		Sort([]string{"date_dim.d_year", "date_dim.d_moy"}, []bool{false, false})
	add("ds_q2", q2.Build())

	// q3: store sales by state with price filter.
	store := in.Scan("store", []string{"id", "s_state"})
	q3 := in.Scan("store_sales", []string{"ss_store_sk", "ss_sales_price", "ss_quantity"},
		CmpP(expr.Gt, "ss_sales_price", Float(100))).
		JoinBuild(store, "store.id", "store_sales.ss_store_sk", "store.s_state").
		GroupBy([]string{"store.s_state"},
			AggSpec{Fn: plan.AggSum, Col: "store_sales.ss_quantity", Name: "qty"}).
		Sort([]string{"qty"}, []bool{true})
	add("ds_q3", q3.Build())

	// q4: customer purchase profile: preferred customers, avg price.
	custQ := in.Scan("customer", []string{"id", "c_preferred", "c_birth_year"},
		CmpP(expr.Eq, "c_preferred", Int(1)))
	q4 := in.Scan("store_sales", []string{"ss_customer_sk", "ss_sales_price"}).
		JoinBuild(custQ, "customer.id", "store_sales.ss_customer_sk", "customer.c_birth_year").
		GroupBy([]string{"customer.c_birth_year"},
			AggSpec{Fn: plan.AggAvg, Col: "store_sales.ss_sales_price", Name: "avg_price"},
			AggSpec{Fn: plan.AggCount, Name: "cnt"}).
		Sort([]string{"customer.c_birth_year"}, []bool{false})
	add("ds_q4", q4.Build())

	// q5: returns vs sales per item (two fact tables).
	item5 := in.Scan("item", []string{"id", "i_brand"})
	ret := in.Scan("store_returns", []string{"sr_item_sk", "sr_return_amt"}).
		JoinBuild(item5, "item.id", "store_returns.sr_item_sk", "item.i_brand").
		GroupBy([]string{"item.i_brand"}, AggSpec{Fn: plan.AggSum, Col: "store_returns.sr_return_amt", Name: "returned"}).
		Sort([]string{"returned"}, []bool{true}).
		Limit(25)
	add("ds_q5", ret.Build())

	// q6: web sales by item category with price band.
	item6 := in.Scan("item", []string{"id", "i_category", "i_current_price"},
		BetweenP("i_current_price", Float(20), Float(70)))
	q6 := in.Scan("web_sales", []string{"ws_item_sk", "ws_sales_price"}).
		JoinBuild(item6, "item.id", "web_sales.ws_item_sk", "item.i_category").
		GroupBy([]string{"item.i_category"}, AggSpec{Fn: plan.AggSum, Col: "web_sales.ws_sales_price", Name: "sales"}).
		Sort([]string{"sales"}, []bool{true})
	add("ds_q6", q6.Build())

	// q7: promotion effect: sales by promo channel.
	promo := in.Scan("promotion", []string{"id", "p_channel"})
	q7 := in.Scan("store_sales", []string{"ss_promo_sk", "ss_quantity", "ss_sales_price"}).
		JoinBuild(promo, "promotion.id", "store_sales.ss_promo_sk", "promotion.p_channel").
		GroupBy([]string{"promotion.p_channel"},
			AggSpec{Fn: plan.AggSum, Col: "store_sales.ss_sales_price", Name: "sales"},
			AggSpec{Fn: plan.AggAvg, Col: "store_sales.ss_quantity", Name: "avg_qty"})
	add("ds_q7", q7.Build())

	// q8: cross-channel customers: store + web sales joined via customer.
	webAgg := in.Scan("web_sales", []string{"ws_customer_sk", "ws_sales_price"}).
		GroupBy([]string{"web_sales.ws_customer_sk"},
			AggSpec{Fn: plan.AggSum, Col: "web_sales.ws_sales_price", Name: "web_total"})
	q8 := in.Scan("store_sales", []string{"ss_customer_sk", "ss_sales_price"}).
		JoinBuild(webAgg, "web_sales.ws_customer_sk", "store_sales.ss_customer_sk", "web_total").
		GroupBy(nil,
			AggSpec{Fn: plan.AggSum, Col: "store_sales.ss_sales_price", Name: "store_total"},
			AggSpec{Fn: plan.AggSum, Col: "web_total", Name: "web_total_sum"},
			AggSpec{Fn: plan.AggCount, Name: "pairs"})
	add("ds_q8", q8.Build())

	// q9: quantity band counts (pure scan aggregation with IN).
	q9 := in.Scan("store_sales", []string{"ss_quantity", "ss_net_profit"},
		InIntsP("ss_quantity", 1, 2, 3, 4, 5, 10, 20, 40, 60, 80)).
		GroupBy([]string{"store_sales.ss_quantity"},
			AggSpec{Fn: plan.AggAvg, Col: "store_sales.ss_net_profit", Name: "profit"},
			AggSpec{Fn: plan.AggCount, Name: "cnt"}).
		Sort([]string{"store_sales.ss_quantity"}, []bool{false})
	add("ds_q9", q9.Build())

	// q10: day-of-week shopping pattern with window ranking.
	date10 := in.Scan("date_dim", []string{"id", "d_dow"})
	q10 := in.Scan("store_sales", []string{"ss_sold_date_sk", "ss_sales_price"}).
		JoinBuild(date10, "date_dim.id", "store_sales.ss_sold_date_sk", "date_dim.d_dow").
		GroupBy([]string{"date_dim.d_dow"}, AggSpec{Fn: plan.AggSum, Col: "store_sales.ss_sales_price", Name: "sales"}).
		Window(plan.WinRank, nil, []string{"sales"}, "", "rnk").
		Sort([]string{"rnk"}, []bool{false})
	add("ds_q10", q10.Build())

	// q11: high-volume items per store.
	item11 := in.Scan("item", []string{"id", "i_brand"})
	store11 := in.Scan("store", []string{"id", "s_state"})
	q11 := in.Scan("store_sales", []string{"ss_item_sk", "ss_store_sk", "ss_quantity"},
		CmpP(expr.Ge, "ss_quantity", Int(50))).
		JoinBuild(item11, "item.id", "store_sales.ss_item_sk", "item.i_brand").
		JoinBuild(store11, "store.id", "store_sales.ss_store_sk", "store.s_state").
		GroupBy([]string{"item.i_brand", "store.s_state"},
			AggSpec{Fn: plan.AggCount, Name: "cnt"}).
		Sort([]string{"cnt"}, []bool{true}).
		Limit(100)
	add("ds_q11", q11.Build())

	// q12: selective scan with LIKE on category.
	q12 := in.Scan("item", []string{"id", "i_category", "i_current_price"},
		LikeP("i_category", "%a%"),
		CmpP(expr.Gt, "i_current_price", Float(50))).
		GroupBy([]string{"item.i_category"},
			AggSpec{Fn: plan.AggAvg, Col: "item.i_current_price", Name: "avg_price"},
			AggSpec{Fn: plan.AggCount, Name: "cnt"})
	add("ds_q12", q12.Build())

	// q13: five-way star join: sales with date, item, store, and promotion.
	date13 := in.Scan("date_dim", []string{"id", "d_year"}, InIntsP("d_year", 1999, 2000, 2001))
	item13 := in.Scan("item", []string{"id", "i_category"})
	store13 := in.Scan("store", []string{"id", "s_state"})
	promo13 := in.Scan("promotion", []string{"id", "p_channel"})
	q13 := in.Scan("store_sales", []string{"ss_sold_date_sk", "ss_item_sk", "ss_store_sk", "ss_promo_sk", "ss_net_profit"}).
		JoinBuild(date13, "date_dim.id", "store_sales.ss_sold_date_sk").
		JoinBuild(item13, "item.id", "store_sales.ss_item_sk", "item.i_category").
		JoinBuild(store13, "store.id", "store_sales.ss_store_sk", "store.s_state").
		JoinBuild(promo13, "promotion.id", "store_sales.ss_promo_sk", "promotion.p_channel").
		GroupBy([]string{"item.i_category", "promotion.p_channel"},
			AggSpec{Fn: plan.AggSum, Col: "store_sales.ss_net_profit", Name: "profit"}).
		Sort([]string{"profit"}, []bool{true}).
		Limit(50)
	add("ds_q13", q13.Build())

	// q14: returned fraction per customer cohort (two fact tables via
	// customer).
	retAgg := in.Scan("store_returns", []string{"sr_customer_sk", "sr_return_amt"}).
		GroupBy([]string{"store_returns.sr_customer_sk"},
			AggSpec{Fn: plan.AggSum, Col: "store_returns.sr_return_amt", Name: "returned"})
	q14 := in.Scan("store_sales", []string{"ss_customer_sk", "ss_sales_price"}).
		JoinBuild(retAgg, "store_returns.sr_customer_sk", "store_sales.ss_customer_sk", "returned").
		GroupBy([]string{"store_sales.ss_customer_sk"},
			AggSpec{Fn: plan.AggSum, Col: "store_sales.ss_sales_price", Name: "bought"},
			AggSpec{Fn: plan.AggMax, Col: "returned", Name: "ret"}).
		Sort([]string{"ret"}, []bool{true}).
		Limit(100)
	add("ds_q14", q14.Build())

	// q15: revenue per item ranked within category (window over join).
	item15 := in.Scan("item", []string{"id", "i_category", "i_brand"})
	q15 := in.Scan("store_sales", []string{"ss_item_sk", "ss_sales_price"}).
		JoinBuild(item15, "item.id", "store_sales.ss_item_sk", "item.i_category", "item.i_brand").
		GroupBy([]string{"item.i_category", "item.i_brand"},
			AggSpec{Fn: plan.AggSum, Col: "store_sales.ss_sales_price", Name: "rev"}).
		Window(plan.WinRank, []string{"item.i_category"}, []string{"rev"}, "", "rnk").
		Filter(func(r Ref) expr.BoolExpr {
			return expr.NewCmp(expr.Le, r("rnk"), expr.ConstInt(3))
		}).
		Sort([]string{"item.i_category"}, []bool{false})
	add("ds_q15", q15.Build())

	// q16: young preferred customers' web spending.
	cust16 := in.Scan("customer", []string{"id", "c_birth_year", "c_preferred"},
		CmpP(expr.Ge, "c_birth_year", Int(1980)),
		CmpP(expr.Eq, "c_preferred", Int(1)))
	q16 := in.Scan("web_sales", []string{"ws_customer_sk", "ws_sales_price"}).
		JoinBuild(cust16, "customer.id", "web_sales.ws_customer_sk").
		GroupBy(nil,
			AggSpec{Fn: plan.AggSum, Col: "web_sales.ws_sales_price", Name: "total"},
			AggSpec{Fn: plan.AggCount, Name: "cnt"},
			AggSpec{Fn: plan.AggAvg, Col: "web_sales.ws_sales_price", Name: "avg_price"})
	add("ds_q16", q16.Build())

	// q17: weekday vs weekend quantity comparison.
	date17 := in.Scan("date_dim", []string{"id", "d_dow"}, InIntsP("d_dow", 0, 6))
	q17 := in.Scan("store_sales", []string{"ss_sold_date_sk", "ss_quantity"}).
		JoinBuild(date17, "date_dim.id", "store_sales.ss_sold_date_sk", "date_dim.d_dow").
		GroupBy([]string{"date_dim.d_dow"},
			AggSpec{Fn: plan.AggSum, Col: "store_sales.ss_quantity", Name: "qty"},
			AggSpec{Fn: plan.AggCount, Name: "cnt"}).
		Sort([]string{"date_dim.d_dow"}, []bool{false})
	add("ds_q17", q17.Build())

	// q18: discount-band profitability (pure scan with BETWEEN bands).
	q18 := in.Scan("store_sales", []string{"ss_sales_price", "ss_quantity", "ss_net_profit"},
		BetweenP("ss_sales_price", Float(50), Float(150)),
		BetweenP("ss_quantity", Int(10), Int(60))).
		Map([]string{"margin"}, func(r Ref) []expr.ValueExpr {
			return []expr.ValueExpr{expr.NewArith(expr.Div, r("store_sales.ss_net_profit"),
				expr.NewArith(expr.Add, r("store_sales.ss_sales_price"), expr.ConstFloat(1)))}
		}).
		GroupBy(nil,
			AggSpec{Fn: plan.AggAvg, Col: "margin", Name: "avg_margin"},
			AggSpec{Fn: plan.AggCount, Name: "cnt"})
	add("ds_q18", q18.Build())

	// q19: store channel vs web channel per item brand.
	itemW := in.Scan("item", []string{"id", "i_brand"})
	webRev := in.Scan("web_sales", []string{"ws_item_sk", "ws_sales_price"}).
		JoinBuild(itemW, "item.id", "web_sales.ws_item_sk", "item.i_brand").
		GroupBy([]string{"item.i_brand"},
			AggSpec{Fn: plan.AggSum, Col: "web_sales.ws_sales_price", Name: "web_rev"})
	q19 := in.Scan("store_sales", []string{"ss_item_sk", "ss_sales_price"}).
		JoinBuild(in.Scan("item", []string{"id", "i_brand"}), "item.id", "store_sales.ss_item_sk", "item.i_brand").
		GroupBy([]string{"item.i_brand"},
			AggSpec{Fn: plan.AggSum, Col: "store_sales.ss_sales_price", Name: "store_rev"}).
		JoinBuild(webRev, "item.i_brand", "item.i_brand", "web_rev").
		Sort([]string{"store_rev"}, []bool{true}).
		Limit(40)
	add("ds_q19", q19.Build())

	// q20: heavy sort: all sales ordered by price (stresses the sort
	// operator's nonlinearity).
	q20 := in.Scan("store_sales", []string{"id", "ss_sales_price", "ss_quantity"}).
		Sort([]string{"store_sales.ss_sales_price", "store_sales.ss_quantity"}, []bool{true, false}).
		Limit(500)
	add("ds_q20", q20.Build())

	return qs
}

// JOBQueries deterministically generates 113 JOB-like queries over an
// imdb-lite instance: selective scans, equi-joins along foreign keys, and a
// final aggregation to a single tuple — the query pattern the paper
// describes for JOB-full and uses for the Zero Shot comparison (Figure 10)
// and the join-ordering experiments (Tables 5 and 6).
func JOBQueries(in *Instance) []*Query {
	specs := JOBJoinSpecs(in)
	qs := make([]*Query, 0, len(specs))
	for _, sp := range specs {
		root := sp.LeftDeepPlan(in)
		qs = append(qs, &Query{
			Name:     fmt.Sprintf("%s/job_%s", in.Name, sp.Name),
			Group:    GroupFixed,
			Instance: in.Name,
			Root:     root,
		})
	}
	return qs
}
