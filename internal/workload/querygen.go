package workload

import (
	"fmt"
	"math/rand"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/stats"
	"t3/internal/engine/storage"
)

// Group labels a generated query-structure group (§4.2, Figure 8 of the
// paper): Se = selections, CSe = complex selections, A = aggregation,
// SiA = simple (global) aggregation, J = joins, W = window functions, So =
// sort, and combinations thereof. "Fixed" marks hand-written benchmark
// queries.
type Group string

// Query structure groups. GroupFixed is reserved for benchmark queries.
const (
	GroupSe     Group = "Se"
	GroupCSe    Group = "CSe"
	GroupA      Group = "A"
	GroupSiA    Group = "SiA"
	GroupJ      Group = "J"
	GroupW      Group = "W"
	GroupSeA    Group = "SeA"
	GroupSeSiA  Group = "SeSiA"
	GroupSeJ    Group = "SeJ"
	GroupCSeJ   Group = "CSeJ"
	GroupJA     Group = "JA"
	GroupSeJA   Group = "SeJA"
	GroupSeJSiA Group = "SeJSiA"
	GroupCSeJA  Group = "CSeJA"
	GroupSeJW   Group = "SeJW"
	GroupSeJASo Group = "SeJASo"
	GroupFixed  Group = "Fixed"
)

// Groups lists the 16 generated structure groups.
var Groups = []Group{
	GroupSe, GroupCSe, GroupA, GroupSiA, GroupJ, GroupW,
	GroupSeA, GroupSeSiA, GroupSeJ, GroupCSeJ, GroupJA, GroupSeJA,
	GroupSeJSiA, GroupCSeJA, GroupSeJW, GroupSeJASo,
}

// Query is one generated or fixed benchmark query: a physical plan bound to
// an instance.
type Query struct {
	Name     string
	Group    Group
	Instance string
	Root     *plan.Node
}

// GenConfig controls random query generation.
type GenConfig struct {
	// PerGroup is the number of queries per structure group (the paper
	// uses 40).
	PerGroup int
	// Seed drives generation.
	Seed int64
	// MaxJoinTables caps the number of joined tables (default 4).
	MaxJoinTables int
}

// GenerateQueries produces PerGroup queries for each of the 16 groups on
// the instance. Queries are deterministic given the config.
func GenerateQueries(inst *Instance, cfg GenConfig) []*Query {
	if cfg.PerGroup <= 0 {
		cfg.PerGroup = 1
	}
	if cfg.MaxJoinTables <= 0 {
		cfg.MaxJoinTables = 4
	}
	var out []*Query
	for gi, g := range Groups {
		for q := 0; q < cfg.PerGroup; q++ {
			seed := cfg.Seed + int64(gi)*100003 + int64(q)*7919
			rng := rand.New(rand.NewSource(seed))
			root := buildGroupQuery(inst, g, rng, cfg)
			if root == nil {
				continue
			}
			out = append(out, &Query{
				Name:     fmt.Sprintf("%s/%s/%d", inst.Name, g, q),
				Group:    g,
				Instance: inst.Name,
				Root:     root,
			})
		}
	}
	return out
}

// buildGroupQuery constructs one query of the given structure group, or nil
// when the instance cannot express it (e.g. joins without FK edges).
func buildGroupQuery(inst *Instance, g Group, rng *rand.Rand, cfg GenConfig) *plan.Node {
	b := newBuilder(inst, rng)
	switch g {
	case GroupSe:
		b.scanRandom(filterSimple)
		b.maybeProject()
	case GroupCSe:
		b.scanRandom(filterComplex)
		b.maybeProject()
	case GroupA:
		b.scanRandom(filterNone)
		b.aggregate(true)
	case GroupSiA:
		b.scanRandom(filterNone)
		b.aggregate(false)
	case GroupJ:
		if !b.joins(2+rng.Intn(cfg.MaxJoinTables-1), filterNone) {
			return nil
		}
		b.maybeProject()
	case GroupW:
		b.scanRandom(filterNone)
		if !b.window() {
			return nil
		}
	case GroupSeA:
		b.scanRandom(filterSimple)
		b.aggregate(true)
	case GroupSeSiA:
		b.scanRandom(filterSimple)
		b.aggregate(false)
	case GroupSeJ:
		if !b.joins(2+rng.Intn(cfg.MaxJoinTables-1), filterSimple) {
			return nil
		}
		b.maybeProject()
	case GroupCSeJ:
		if !b.joins(2+rng.Intn(cfg.MaxJoinTables-1), filterComplex) {
			return nil
		}
		b.maybeProject()
	case GroupJA:
		if !b.joins(2+rng.Intn(cfg.MaxJoinTables-1), filterNone) {
			return nil
		}
		b.aggregate(true)
	case GroupSeJA:
		if !b.joins(2+rng.Intn(cfg.MaxJoinTables-1), filterSimple) {
			return nil
		}
		b.aggregate(true)
	case GroupSeJSiA:
		if !b.joins(2+rng.Intn(cfg.MaxJoinTables-1), filterSimple) {
			return nil
		}
		b.aggregate(false)
	case GroupCSeJA:
		if !b.joins(2+rng.Intn(cfg.MaxJoinTables-1), filterComplex) {
			return nil
		}
		b.aggregate(true)
	case GroupSeJW:
		if !b.joins(2+rng.Intn(cfg.MaxJoinTables-1), filterSimple) {
			return nil
		}
		if !b.window() {
			return nil
		}
	case GroupSeJASo:
		if !b.joins(2+rng.Intn(cfg.MaxJoinTables-1), filterSimple) {
			return nil
		}
		b.aggregate(true)
		b.sort()
		if b.rng.Float64() < 0.3 {
			b.root = plan.NewLimit(b.root, 1+b.rng.Intn(100))
		}
	default:
		return nil
	}
	return b.root
}

// filterMode selects predicate complexity for scans.
type filterMode uint8

const (
	filterNone filterMode = iota
	filterSimple
	filterComplex
)

// provCol records where a plan output column came from.
type provCol struct {
	table string
	col   int // index into the base table's columns, -1 for computed
}

// builder incrementally assembles a plan while tracking column provenance.
type builder struct {
	inst *Instance
	rng  *rand.Rand
	root *plan.Node
	prov []provCol
	used map[string]bool // joined tables
}

func newBuilder(inst *Instance, rng *rand.Rand) *builder {
	return &builder{inst: inst, rng: rng, used: map[string]bool{}}
}

// randomTable picks any table of the instance.
func (b *builder) randomTable() *storage.Table {
	return b.inst.DB.Tables[b.rng.Intn(len(b.inst.DB.Tables))]
}

// scanRandom starts the plan with a scan of a random table.
func (b *builder) scanRandom(fm filterMode) {
	t := b.randomTable()
	b.scanInto(t, fm)
}

// scanCols picks the columns to scan: id, all FK columns (so joins remain
// possible), and a sample of value columns.
func (b *builder) scanCols(t *storage.Table) []int {
	cols := []int{}
	needed := map[int]bool{}
	if i := t.ColumnIndex("id"); i >= 0 {
		needed[i] = true
	}
	for _, fk := range b.inst.FKs {
		if fk.ChildTable == t.Name {
			if i := t.ColumnIndex(fk.ChildCol); i >= 0 {
				needed[i] = true
			}
		}
	}
	for ci := range t.Columns {
		if needed[ci] || b.rng.Float64() < 0.6 {
			cols = append(cols, ci)
		}
	}
	if len(cols) == 0 {
		cols = []int{0}
	}
	return cols
}

// scanInto sets the builder's root to a scan of t with generated pushed-down
// predicates, and records provenance.
func (b *builder) scanInto(t *storage.Table, fm filterMode) {
	cols := b.scanCols(t)
	preds := b.genPredicates(t, cols, fm)
	b.root = plan.NewTableScan(t, cols, preds...)
	b.prov = b.prov[:0]
	for _, ci := range cols {
		b.prov = append(b.prov, provCol{table: t.Name, col: ci})
	}
	b.used = map[string]bool{t.Name: true}
}

// scanFor builds a standalone scan of t (for join build sides) returning the
// node and its provenance.
func (b *builder) scanFor(t *storage.Table, fm filterMode) (*plan.Node, []provCol) {
	cols := b.scanCols(t)
	preds := b.genPredicates(t, cols, fm)
	n := plan.NewTableScan(t, cols, preds...)
	prov := make([]provCol, len(cols))
	for i, ci := range cols {
		prov[i] = provCol{table: t.Name, col: ci}
	}
	return n, prov
}

// genPredicates creates 0-3 pushed-down predicates over the scanned columns.
func (b *builder) genPredicates(t *storage.Table, cols []int, fm filterMode) []expr.BoolExpr {
	if fm == filterNone {
		return nil
	}
	ts := b.inst.Stats.Tables[t.Name]
	var preds []expr.BoolExpr
	n := 1 + b.rng.Intn(3)
	for i := 0; i < n; i++ {
		p := b.genPredicate(t, ts, cols, fm)
		if p != nil {
			preds = append(preds, p)
		}
	}
	return preds
}

// genPredicate creates one predicate over a random scanned column.
func (b *builder) genPredicate(t *storage.Table, ts *stats.TableStats, cols []int, fm filterMode) expr.BoolExpr {
	pos := b.rng.Intn(len(cols))
	ci := cols[pos]
	col := &t.Columns[ci]
	cs := &ts.Cols[ci]
	ref := expr.Col(pos, col.Name, col.Kind)

	switch col.Kind {
	case storage.Int64, storage.Float64:
		lo, hi := cs.Min, cs.Max
		span := hi - lo
		sel := 0.01 + b.rng.Float64()*0.9
		mkConst := func(v float64) *expr.Const {
			if col.Kind == storage.Int64 {
				return expr.ConstInt(int64(v))
			}
			return expr.ConstFloat(v)
		}
		if fm == filterComplex && b.rng.Float64() < 0.5 {
			// BETWEEN with random placement.
			start := lo + b.rng.Float64()*(1-sel)*span
			return expr.NewBetween(ref, mkConst(start), mkConst(start+sel*span))
		}
		if fm == filterComplex && col.Kind == storage.Int64 && cs.Distinct <= 1000 && b.rng.Float64() < 0.4 {
			// IN over a handful of values.
			k := 1 + b.rng.Intn(6)
			vals := make([]int64, k)
			for i := range vals {
				vals[i] = int64(lo) + b.rng.Int63n(int64(span)+1)
			}
			return expr.NewInListInts(ref, vals)
		}
		if b.rng.Float64() < 0.5 {
			return expr.NewCmp(expr.Le, ref, mkConst(lo+sel*span))
		}
		return expr.NewCmp(expr.Ge, ref, mkConst(hi-sel*span))
	case storage.String:
		if len(cs.SampleStrings) == 0 {
			return nil
		}
		w := cs.SampleStrings[b.rng.Intn(len(cs.SampleStrings))]
		if fm == filterComplex {
			switch b.rng.Intn(3) {
			case 0:
				// LIKE with a prefix or suffix wildcard.
				if len(w) > 2 && b.rng.Float64() < 0.5 {
					return expr.NewLike(ref, w[:len(w)/2]+"%")
				}
				return expr.NewLike(ref, "%"+w[len(w)/2:])
			case 1:
				k := 1 + b.rng.Intn(4)
				vals := make([]string, k)
				for i := range vals {
					vals[i] = cs.SampleStrings[b.rng.Intn(len(cs.SampleStrings))]
				}
				return expr.NewInListStrings(ref, vals)
			default:
				return expr.NewCmp(expr.Eq, ref, expr.ConstString(w))
			}
		}
		return expr.NewCmp(expr.Eq, ref, expr.ConstString(w))
	}
	return nil
}

// joins extends the plan with up to k-1 hash joins along foreign-key edges.
// It reports false when the instance has no usable join edges.
func (b *builder) joins(k int, fm filterMode) bool {
	if len(b.inst.FKs) == 0 {
		return false
	}
	// Start from a random FK child so at least one edge is reachable.
	fk := b.inst.FKs[b.rng.Intn(len(b.inst.FKs))]
	b.scanInto(b.inst.Table(fk.ChildTable), fm)

	for len(b.used) < k {
		edge, newParent := b.pickEdge()
		if edge == nil {
			break
		}
		before := len(b.used)
		if newParent {
			b.joinParent(*edge, fm)
		} else {
			b.joinChild(*edge, fm)
		}
		if len(b.used) == before {
			// Defensive: the edge could not be wired (key column missing
			// from provenance); avoid retrying it forever.
			break
		}
	}
	return len(b.used) >= 2
}

// pickEdge finds a random FK edge connecting the current table set to a new
// table. newParent reports whether the new table is the parent side.
func (b *builder) pickEdge() (*FK, bool) {
	var cands []FK
	var parent []bool
	for _, fk := range b.inst.FKs {
		if b.used[fk.ChildTable] && !b.used[fk.ParentTable] {
			cands = append(cands, fk)
			parent = append(parent, true)
		} else if b.used[fk.ParentTable] && !b.used[fk.ChildTable] {
			cands = append(cands, fk)
			parent = append(parent, false)
		}
	}
	if len(cands) == 0 {
		return nil, false
	}
	i := b.rng.Intn(len(cands))
	return &cands[i], parent[i]
}

// provIndex finds the position of table.col in the current provenance.
func (b *builder) provIndex(table, col string) int {
	t := b.inst.Table(table)
	ci := t.ColumnIndex(col)
	for i, p := range b.prov {
		if p.table == table && p.col == ci {
			return i
		}
	}
	return -1
}

// joinParent hash-joins a new parent table (build side) against the current
// plan's FK column (probe side).
func (b *builder) joinParent(fk FK, fm filterMode) {
	probeKey := b.provIndex(fk.ChildTable, fk.ChildCol)
	if probeKey < 0 {
		return
	}
	build, bProv := b.scanFor(b.inst.Table(fk.ParentTable), fm)
	buildKey := -1
	for i, p := range bProv {
		if p.col == b.inst.Table(fk.ParentTable).ColumnIndex(fk.ParentCol) {
			buildKey = i
		}
	}
	if buildKey < 0 {
		return
	}
	payload := b.pickPayload(build, bProv, buildKey)
	b.finishJoin(build, bProv, buildKey, probeKey, payload, fk.ParentTable)
}

// joinChild hash-joins a new child table (build side, keyed by its FK
// column) against the current plan's parent id column (probe side).
func (b *builder) joinChild(fk FK, fm filterMode) {
	probeKey := b.provIndex(fk.ParentTable, fk.ParentCol)
	if probeKey < 0 {
		return
	}
	child := b.inst.Table(fk.ChildTable)
	build, bProv := b.scanFor(child, fm)
	buildKey := -1
	for i, p := range bProv {
		if p.col == child.ColumnIndex(fk.ChildCol) {
			buildKey = i
		}
	}
	if buildKey < 0 {
		return
	}
	payload := b.pickPayload(build, bProv, buildKey)
	b.finishJoin(build, bProv, buildKey, probeKey, payload, fk.ChildTable)
}

// pickPayload selects the build-side columns carried into the join output:
// all FK columns (to keep later joins possible) plus a sample of values.
func (b *builder) pickPayload(build *plan.Node, bProv []provCol, buildKey int) []int {
	var payload []int
	t := b.inst.Table(bProv[0].table)
	isKeyish := map[int]bool{}
	if i := t.ColumnIndex("id"); i >= 0 {
		isKeyish[i] = true
	}
	for _, fk := range b.inst.FKs {
		if fk.ChildTable == t.Name {
			if i := t.ColumnIndex(fk.ChildCol); i >= 0 {
				isKeyish[i] = true
			}
		}
	}
	for i, p := range bProv {
		if i == buildKey {
			continue
		}
		if isKeyish[p.col] || b.rng.Float64() < 0.5 {
			payload = append(payload, i)
		}
	}
	return payload
}

// finishJoin wires the join node and updates provenance.
func (b *builder) finishJoin(build *plan.Node, bProv []provCol, buildKey, probeKey int, payload []int, newTable string) {
	b.root = plan.NewHashJoin(build, b.root, []int{buildKey}, []int{probeKey}, payload)
	for _, ci := range payload {
		b.prov = append(b.prov, bProv[ci])
	}
	b.used[newTable] = true
}

// numericCols returns provenance positions of numeric columns.
func (b *builder) numericCols() []int {
	var out []int
	for i := range b.prov {
		k := b.colKind(i)
		if k == storage.Int64 || k == storage.Float64 {
			out = append(out, i)
		}
	}
	return out
}

// colKind returns the type of output column i of the current plan.
func (b *builder) colKind(i int) storage.Type { return b.root.Schema[i].Kind }

// colDistinct estimates the distinct count of output column i from base
// statistics.
func (b *builder) colDistinct(i int) int {
	p := b.prov[i]
	if p.table == "" || p.col < 0 {
		return 1 << 30
	}
	return b.inst.Stats.Tables[p.table].Cols[p.col].Distinct
}

// aggregate appends a group-by. grouped=false produces a global aggregate
// (the paper's "simple aggregation").
func (b *builder) aggregate(grouped bool) {
	var groupCols []int
	if grouped {
		// Prefer low-distinct columns as grouping keys.
		var cands []int
		for i := range b.prov {
			if d := b.colDistinct(i); d <= 10000 {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			for i := range b.prov {
				cands = append(cands, i)
			}
		}
		k := 1
		if len(cands) > 1 && b.rng.Float64() < 0.3 {
			k = 2
		}
		seen := map[int]bool{}
		for len(groupCols) < k {
			c := cands[b.rng.Intn(len(cands))]
			if !seen[c] {
				seen[c] = true
				groupCols = append(groupCols, c)
			}
		}
	}
	nums := b.numericCols()
	var aggs []plan.Agg
	var names []string
	na := 1 + b.rng.Intn(3)
	for i := 0; i < na; i++ {
		if len(nums) == 0 || b.rng.Float64() < 0.25 {
			aggs = append(aggs, plan.Agg{Fn: plan.AggCount})
			names = append(names, fmt.Sprintf("c%d", i))
			continue
		}
		fns := []plan.AggFn{plan.AggSum, plan.AggMin, plan.AggMax, plan.AggAvg}
		col := nums[b.rng.Intn(len(nums))]
		aggs = append(aggs, plan.Agg{Fn: fns[b.rng.Intn(len(fns))], Col: col})
		names = append(names, fmt.Sprintf("a%d", i))
	}
	root := plan.NewGroupBy(b.root, groupCols, aggs, names)
	b.root = root
	// New provenance: group cols keep theirs, aggregates are computed.
	newProv := make([]provCol, 0, len(root.Schema))
	for _, ci := range groupCols {
		newProv = append(newProv, b.prov[ci])
	}
	for range aggs {
		newProv = append(newProv, provCol{col: -1})
	}
	b.prov = newProv
}

// window appends a window function; reports false when no suitable columns
// exist.
func (b *builder) window() bool {
	var part []int
	for i := range b.prov {
		if d := b.colDistinct(i); d <= 1000 {
			part = append(part, i)
		}
	}
	if len(part) == 0 {
		return false
	}
	nums := b.numericCols()
	if len(nums) == 0 {
		return false
	}
	p := part[b.rng.Intn(len(part))]
	o := nums[b.rng.Intn(len(nums))]
	fn := []plan.WinFn{plan.WinRowNumber, plan.WinRank, plan.WinSum}[b.rng.Intn(3)]
	arg := o
	b.root = plan.NewWindow(b.root, fn, []int{p}, []int{o}, arg, "w")
	b.prov = append(b.prov, provCol{col: -1})
	return true
}

// sort appends an order-by over 1-2 output columns.
func (b *builder) sort() {
	k := 1
	if len(b.prov) > 1 && b.rng.Float64() < 0.4 {
		k = 2
	}
	cols := make([]int, 0, k)
	desc := make([]bool, 0, k)
	seen := map[int]bool{}
	for len(cols) < k {
		c := b.rng.Intn(len(b.prov))
		if !seen[c] {
			seen[c] = true
			cols = append(cols, c)
			desc = append(desc, b.rng.Float64() < 0.5)
		}
	}
	b.root = plan.NewSort(b.root, cols, desc)
}

// maybeProject narrows the output to a random column subset.
func (b *builder) maybeProject() {
	if len(b.prov) < 2 || b.rng.Float64() < 0.3 {
		return
	}
	var cols []int
	for i := range b.prov {
		if b.rng.Float64() < 0.6 {
			cols = append(cols, i)
		}
	}
	if len(cols) == 0 {
		cols = []int{0}
	}
	b.root = plan.Project(b.root, cols)
	newProv := make([]provCol, len(cols))
	for i, ci := range cols {
		newProv[i] = b.prov[ci]
	}
	b.prov = newProv
}
