package workload

import (
	"testing"

	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/engine/stats"
)

// smallTPCH returns a tiny TPC-H-lite instance for tests.
func smallTPCH(t *testing.T) *Instance {
	t.Helper()
	return MustGenerate(TPCHSpec("tpch_test", 0.01, 42))
}

func smallTPCDS(t *testing.T) *Instance {
	t.Helper()
	return MustGenerate(TPCDSSpec("tpcds_test", 1, 43))
}

func smallIMDB(t *testing.T) *Instance {
	t.Helper()
	return MustGenerate(IMDBSpec("imdb_test", 0.02, 44))
}

func TestGenerateTPCHInstance(t *testing.T) {
	in := smallTPCH(t)
	if got := len(in.DB.Tables); got != 8 {
		t.Fatalf("tables = %d, want 8", got)
	}
	li := in.Table("lineitem")
	if li == nil || li.NumRows() != 6000 {
		t.Fatalf("lineitem rows = %v, want 6000", li.NumRows())
	}
	// FK values reference parent PK range.
	ord := in.Table("orders")
	ok := li.Column("l_orderkey")
	for _, v := range ok.Ints[:100] {
		if v < 0 || v >= int64(ord.NumRows()) {
			t.Fatalf("l_orderkey %d out of range [0,%d)", v, ord.NumRows())
		}
	}
	if len(in.FKs) == 0 {
		t.Fatal("no FK metadata recorded")
	}
	if in.Stats.Tables["lineitem"].Rows != 6000 {
		t.Fatal("stats not collected")
	}
}

func TestSyntheticInstancesHaveJoinGraphs(t *testing.T) {
	for i, name := range syntheticNames[:6] {
		in := MustGenerate(SyntheticSpec(name, int64(500+i), 0.05))
		if len(in.DB.Tables) < 3 {
			t.Errorf("%s: only %d tables", name, len(in.DB.Tables))
		}
		if len(in.FKs) == 0 {
			t.Errorf("%s: no foreign keys", name)
		}
		for _, fk := range in.FKs {
			if in.Table(fk.ParentTable) == nil || in.Table(fk.ChildTable) == nil {
				t.Errorf("%s: dangling FK %+v", name, fk)
			}
		}
	}
}

func TestGenerateQueriesAllGroupsExecutable(t *testing.T) {
	in := smallTPCH(t)
	qs := GenerateQueries(in, GenConfig{PerGroup: 2, Seed: 7})
	if len(qs) < len(Groups)*2-4 {
		t.Fatalf("generated only %d queries", len(qs))
	}
	seen := map[Group]int{}
	for _, q := range qs {
		seen[q.Group]++
		ps := plan.Decompose(q.Root)
		if err := plan.ValidatePipelines(ps); err != nil {
			t.Fatalf("%s: invalid pipelines: %v", q.Name, err)
		}
		res, err := exec.Run(q.Root, true)
		if err != nil {
			t.Fatalf("%s failed to execute: %v", q.Name, err)
		}
		if len(res.Pipelines) != len(ps) {
			t.Fatalf("%s: %d timings for %d pipelines", q.Name, len(res.Pipelines), len(ps))
		}
	}
	for _, g := range Groups {
		if seen[g] == 0 {
			t.Errorf("group %s produced no queries", g)
		}
	}
}

func TestGenerateQueriesDeterministic(t *testing.T) {
	in := smallTPCH(t)
	a := GenerateQueries(in, GenConfig{PerGroup: 1, Seed: 3})
	b := GenerateQueries(in, GenConfig{PerGroup: 1, Seed: 3})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("names differ at %d", i)
		}
		ra, err := exec.Run(a[i].Root, false)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := exec.Run(b[i].Root, false)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Rows != rb.Rows {
			t.Fatalf("%s: row counts differ %d vs %d", a[i].Name, ra.Rows, rb.Rows)
		}
	}
}

func TestTPCHBenchmarkQueriesExecute(t *testing.T) {
	in := smallTPCH(t)
	qs := TPCHBenchmarkQueries(in)
	if len(qs) < 8 {
		t.Fatalf("only %d TPC-H benchmark queries", len(qs))
	}
	for _, q := range qs {
		res, err := exec.Run(q.Root, true)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if q.Group != GroupFixed {
			t.Errorf("%s: group %s, want Fixed", q.Name, q.Group)
		}
		_ = res
	}
}

func TestQ5PipelineStructure(t *testing.T) {
	// The paper's running example: Q5 decomposes into multiple pipelines
	// with two hash-join probes in the lineitem pipeline (Listing 4).
	in := smallTPCH(t)
	var q5 *Query
	for _, q := range TPCHBenchmarkQueries(in) {
		if q.Name == in.Name+"/q5" {
			q5 = q
		}
	}
	if q5 == nil {
		t.Fatal("q5 not found")
	}
	ps := plan.Decompose(q5.Root)
	if len(ps) < 5 {
		t.Fatalf("Q5 has %d pipelines, want >= 5", len(ps))
	}
	// Find the pipeline scanning lineitem: it must contain 2 probe stages.
	var probeCount int
	for _, p := range ps {
		src := p.Source().Node
		if src.Op == plan.TableScanOp && src.TableName == "lineitem" {
			for _, s := range p.Stages {
				if s.Stage == plan.StageProbe {
					probeCount++
				}
			}
		}
	}
	if probeCount != 2 {
		t.Fatalf("lineitem pipeline has %d probes, want 2", probeCount)
	}
}

func TestTPCDSBenchmarkQueriesExecute(t *testing.T) {
	in := smallTPCDS(t)
	qs := TPCDSBenchmarkQueries(in)
	if len(qs) < 12 {
		t.Fatalf("only %d TPC-DS benchmark queries", len(qs))
	}
	for _, q := range qs {
		if _, err := exec.Run(q.Root, true); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
	}
}

func TestJOBQueriesExecuteAndAggregateToOneRow(t *testing.T) {
	in := smallIMDB(t)
	qs := JOBQueries(in)
	if len(qs) < 100 {
		t.Fatalf("only %d JOB-like queries", len(qs))
	}
	for _, q := range qs[:30] {
		res, err := exec.Run(q.Root, true)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if res.Rows != 1 {
			t.Fatalf("%s: %d result rows, want 1 (global aggregate)", q.Name, res.Rows)
		}
	}
}

func TestJOBPlanForOrderMatchesLeftDeep(t *testing.T) {
	// Any valid join order must produce the same aggregate result.
	in := smallIMDB(t)
	specs := JOBJoinSpecs(in)
	checked := 0
	for _, sp := range specs {
		if len(sp.Rels) != 3 {
			continue
		}
		p1 := sp.LeftDeepPlan(in)
		r1, err := exec.Run(p1, false)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		// Try a reversed-ish order if it stays connected.
		order := validReorder(sp)
		if order == nil {
			continue
		}
		p2 := sp.PlanForOrder(in, order)
		r2, err := exec.Run(p2, false)
		if err != nil {
			t.Fatalf("%s reordered: %v", sp.Name, err)
		}
		c1 := r1.Output.Cols[0].Ints[0]
		c2 := r2.Output.Cols[0].Ints[0]
		if c1 != c2 {
			t.Fatalf("%s: count differs across join orders: %d vs %d", sp.Name, c1, c2)
		}
		checked++
		if checked >= 5 {
			break
		}
	}
	if checked == 0 {
		t.Skip("no reorderable 3-relation specs found")
	}
}

// validReorder returns an alternative connected join order, or nil.
func validReorder(sp *JoinSpec) []int {
	n := len(sp.Rels)
	adj := make(map[int]map[int]bool)
	for _, e := range sp.Edges {
		if adj[e.A] == nil {
			adj[e.A] = map[int]bool{}
		}
		if adj[e.B] == nil {
			adj[e.B] = map[int]bool{}
		}
		adj[e.A][e.B] = true
		adj[e.B][e.A] = true
	}
	// Start from the last relation and grow greedily.
	order := []int{n - 1}
	used := map[int]bool{n - 1: true}
	for len(order) < n {
		found := -1
		for r := 0; r < n; r++ {
			if used[r] {
				continue
			}
			for u := range used {
				if adj[r][u] {
					found = r
					break
				}
			}
			if found >= 0 {
				break
			}
		}
		if found < 0 {
			return nil
		}
		used[found] = true
		order = append(order, found)
	}
	same := true
	for i, r := range order {
		if r != i {
			same = false
		}
	}
	if same {
		return nil
	}
	return order
}

func TestEstimatorAnnotatesPlans(t *testing.T) {
	in := smallTPCH(t)
	qs := GenerateQueries(in, GenConfig{PerGroup: 2, Seed: 11})
	est := &stats.Estimator{DB: in.Stats}
	for _, q := range qs {
		est.Estimate(q.Root)
		if err := exec.AnnotateTrueCards(q.Root); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		q.Root.Walk(func(n *plan.Node) {
			if n.OutCard.Est < 0 {
				t.Errorf("%s: negative estimate at %v", q.Name, n)
			}
		})
		// The root estimate should be within a few orders of magnitude of
		// the truth for most queries; check it is at least finite and
		// non-negative.
		if n := q.Root; n.OutCard.Est != n.OutCard.Est {
			t.Errorf("%s: NaN estimate", q.Name)
		}
	}
}

func TestDistortion(t *testing.T) {
	in := smallTPCH(t)
	q := TPCHBenchmarkQueries(in)[0]
	if err := exec.AnnotateTrueCards(q.Root); err != nil {
		t.Fatal(err)
	}
	stats.Distort(q.Root, 1, 5)
	q.Root.Walk(func(n *plan.Node) {
		if n.OutCard.Est != n.OutCard.True {
			t.Errorf("factor 1 should keep cards exact: %v vs %v", n.OutCard.Est, n.OutCard.True)
		}
	})
	stats.Distort(q.Root, 100, 5)
	var distorted bool
	q.Root.Walk(func(n *plan.Node) {
		if n.OutCard.True > 0 {
			ratio := n.OutCard.Est / n.OutCard.True
			if ratio < 1.0/100-1e-9 || ratio > 100+1e-9 {
				t.Errorf("distortion out of bounds: ratio %v", ratio)
			}
			if ratio != 1 {
				distorted = true
			}
		}
	})
	if !distorted {
		t.Error("factor 100 distorted nothing")
	}
}

func TestCopyTrueToEst(t *testing.T) {
	in := smallTPCH(t)
	q := TPCHBenchmarkQueries(in)[2]
	if err := exec.AnnotateTrueCards(q.Root); err != nil {
		t.Fatal(err)
	}
	stats.CopyTrueToEst(q.Root)
	q.Root.Walk(func(n *plan.Node) {
		if n.OutCard.Est != n.OutCard.True {
			t.Errorf("est %v != true %v", n.OutCard.Est, n.OutCard.True)
		}
		for i := range n.PredSel {
			if n.PredSel[i].Est != n.PredSel[i].True {
				t.Errorf("pred sel est %v != true %v", n.PredSel[i].Est, n.PredSel[i].True)
			}
		}
	})
}
