package experiments

import (
	"strings"
	"sync"
	"testing"

	"t3/internal/benchdata"
)

var (
	envOnce sync.Once
	testEnv *Env
)

// sharedEnv returns a tiny experiment environment shared across tests.
func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		cfg := Config{
			Corpus:               benchdata.Config{Scale: 0.04, PerGroup: 2, Runs: 3, Seed: 13, ReleaseTables: true},
			Rounds:               50,
			NNEpochs:             6,
			LeaveOneOutInstances: 3,
			JOBScale:             0.01,
			JOBQueries:           8,
			DeepRunInstances:     3,
			DeepRuns:             10,
		}
		testEnv = NewEnv(cfg)
	})
	return testEnv
}

func TestTable1LatencyOrdering(t *testing.T) {
	e := sharedEnv(t)
	r, err := e.RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Format())
	// The paper's headline shape: compiled model evaluation is faster than
	// interpreted (the full-path numbers also include featurization, which
	// dominates for small test models, so assert on the model-only step).
	// With small 50-round test models the two are close, so allow 15%
	// timing noise — the decisive 5x gap on the real 200-tree model is
	// asserted by BenchmarkTable1_ModelEval* against internal/compiled.
	if float64(r.T3ModelCompiled) > 1.15*float64(r.T3ModelInterp) {
		t.Errorf("compiled model eval %v materially slower than interpreted %v", r.T3ModelCompiled, r.T3ModelInterp)
	}
	if r.T3Compiled >= r.ZeroShotNN {
		t.Errorf("compiled %v not faster than NN %v", r.T3Compiled, r.ZeroShotNN)
	}
	if r.StageCache >= r.ZeroShotNN {
		t.Errorf("cache %v not faster than NN %v", r.StageCache, r.ZeroShotNN)
	}
}

func TestTable2Throughput(t *testing.T) {
	e := sharedEnv(t)
	r, err := e.RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Format())
	for _, row := range r.Rows {
		if row.Single <= 0 || row.Batched <= 0 {
			t.Errorf("%s: nonpositive throughput", row.Model)
		}
	}
	// Compiled throughput clearly beats the NN. The compiled-vs-interpreted
	// margin is featurization-dominated for small test models and too noisy
	// to assert on a shared single-vCPU box; the model-only superiority is
	// asserted by the allocation-free BenchmarkTable1_ModelEval* benchmarks.
	if r.Rows[0].Single <= 1.5*r.Rows[2].Single {
		t.Errorf("compiled single throughput should dominate the NN: %+v", r.Rows)
	}
}

func TestTable3Deviations(t *testing.T) {
	e := sharedEnv(t)
	r, err := e.RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Format())
	if r.Summary.N == 0 {
		t.Fatal("no deviation statistics computed")
	}
	if r.Summary.P50 < 1 {
		t.Errorf("q-error below 1 is impossible: %v", r.Summary.P50)
	}
}

func TestTable4Accuracy(t *testing.T) {
	e := sharedEnv(t)
	r, err := e.RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Format())
	if len(r.Rows) != 5 {
		t.Fatalf("want 5 splits, got %d", len(r.Rows))
	}
	train, test := r.Rows[0].Summary, r.Rows[1].Summary
	if train.P50 > test.P50+0.5 {
		t.Errorf("train p50 %.2f should not exceed test p50 %.2f", train.P50, test.P50)
	}
	if test.P50 > 4 {
		t.Errorf("test p50 %.2f too high", test.P50)
	}
}

func TestFigures6to8(t *testing.T) {
	e := sharedEnv(t)
	f6, err := e.RunFig6()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f6.Format())
	total := 0
	for _, c := range f6.Counts {
		total += c
	}
	if total == 0 {
		t.Fatal("figure 6 histogram empty")
	}

	f7, err := e.RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f7.Format())

	f8, err := e.RunFig8()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f8.Format())
	if len(f8.Rows) < 10 {
		t.Errorf("figure 8 covers only %d groups", len(f8.Rows))
	}
}

func TestFig9LeaveOneOut(t *testing.T) {
	e := sharedEnv(t)
	f, err := e.RunFig9()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.Format())
	if len(f.Rows) != 3 {
		t.Fatalf("expected 3 leave-one-out rows, got %d", len(f.Rows))
	}
}

func TestFig10JOBComparison(t *testing.T) {
	e := sharedEnv(t)
	f, err := e.RunFig10()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.Format())
	if f.T3.N == 0 || f.ZeroShot.N == 0 {
		t.Fatal("missing JOB evaluations")
	}
}

func TestFig11CardinalityModes(t *testing.T) {
	e := sharedEnv(t)
	f, err := e.RunFig11()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.Format())
	// Perfect cardinalities should beat estimated ones (paper: "the median
	// q-error degrades for imperfect cardinality estimates").
	if f.TrainPerfectEvalPerfect.P50 > f.TrainPerfectEvalEst.P50+0.3 {
		t.Errorf("perfect eval p50 %.2f unexpectedly worse than estimated %.2f",
			f.TrainPerfectEvalPerfect.P50, f.TrainPerfectEvalEst.P50)
	}
}

func TestFig12Degradation(t *testing.T) {
	e := sharedEnv(t)
	f, err := e.RunFig12()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.Format())
	// Accuracy must degrade from exact to heavily distorted estimates.
	first, last := f.T3P50[0], f.T3P50[len(f.T3P50)-1]
	if last <= first {
		t.Errorf("T3 p50 did not degrade under 1000x distortion: %v -> %v", first, last)
	}
}

func TestFig13Ablation(t *testing.T) {
	e := sharedEnv(t)
	f, err := e.RunFig13()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.Format())
	// The paper's central ablation: tuple-centric per-pipeline prediction
	// beats whole-query prediction.
	if f.PerTuple.P50 >= f.PerQuery.P50 {
		t.Errorf("per-tuple p50 %.2f should beat per-query p50 %.2f", f.PerTuple.P50, f.PerQuery.P50)
	}
}

func TestFig14BenchmarkRuns(t *testing.T) {
	e := sharedEnv(t)
	f, err := e.RunFig14()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.Format())
	if len(f.P50) != len(f.Runs) {
		t.Fatal("missing run counts")
	}
	// Paper: no strong dependence on run count; all variants stay sane.
	for i, p := range f.P50 {
		if p > 10 {
			t.Errorf("runs=%d p50=%.2f exploded", f.Runs[i], p)
		}
	}
}

func TestTables5And6JoinOrdering(t *testing.T) {
	e := sharedEnv(t)
	t5, err := e.RunTable5()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + t5.Format())
	if len(t5.Rows) != 2 {
		t.Fatal("expected Cout and T3 rows")
	}
	cout, t3row := t5.Rows[0], t5.Rows[1]
	// §5.5: twice as many calls to T3 as to Cout; T3 optimization is
	// substantially slower.
	if t3row.ModelCalls < 2*cout.ModelCalls {
		t.Errorf("T3 calls %d < 2x Cout calls %d", t3row.ModelCalls, cout.ModelCalls)
	}
	if t3row.OptTime <= cout.OptTime {
		t.Errorf("T3 opt time %v should exceed Cout %v", t3row.OptTime, cout.OptTime)
	}

	t6, err := e.RunTable6()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + t6.Format())
	for _, r := range t6.Rows {
		if r.ExecTime <= 0 {
			t.Errorf("%s: nonpositive execution time", r.CostModel)
		}
	}
	// T3's plans should be in the same league as Cout's (paper: within a
	// few percent; we allow 3x at tiny scale).
	if t6.Rows[1].ExecTime > 3*t6.Rows[0].ExecTime {
		t.Errorf("T3 plans %v much slower than Cout plans %v", t6.Rows[1].ExecTime, t6.Rows[0].ExecTime)
	}
}

func TestFeatureAblation(t *testing.T) {
	e := sharedEnv(t)
	f, err := e.RunFeatureAblation()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.Format())
	if len(f.Rows) != 7 {
		t.Fatalf("expected 7 variants, got %d", len(f.Rows))
	}
	full := f.Rows[0]
	if full.Variant != "full feature set" {
		t.Fatalf("first row is %q", full.Variant)
	}
	countsOnly := f.Rows[len(f.Rows)-1]
	// The crippled counts-only model must be clearly worse than the full
	// feature set.
	if countsOnly.Summary.P50 <= full.Summary.P50 {
		t.Errorf("counts-only p50 %.2f should exceed full p50 %.2f",
			countsOnly.Summary.P50, full.Summary.P50)
	}
	for _, r := range f.Rows[1:] {
		if r.Features >= full.Features {
			t.Errorf("%s: %d features, expected fewer than %d", r.Variant, r.Features, full.Features)
		}
	}
}

func TestSchedulingExtension(t *testing.T) {
	e := sharedEnv(t)
	s, err := e.RunScheduling()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + s.Format())
	if len(s.Rows) != 5 {
		t.Fatalf("expected 5 predictors, got %d", len(s.Rows))
	}
	byName := map[string]SchedulingRow{}
	for _, r := range s.Rows {
		byName[r.Predictor] = r
		if r.Result.Makespan <= 0 {
			t.Errorf("%s: nonpositive makespan", r.Predictor)
		}
	}
	// The oracle's placement is at least as good as no predictions, and T3
	// should be close to the oracle.
	oracle := byName["oracle"].Result
	none := byName["none (round-robin)"].Result
	if oracle.Makespan > none.Makespan {
		t.Errorf("oracle makespan %v should not exceed round-robin %v", oracle.Makespan, none.Makespan)
	}
	t3r := byName["T3"].Result
	if t3r.Makespan > 2*none.Makespan {
		t.Errorf("T3 scheduling far worse than blind: %v vs %v", t3r.Makespan, none.Makespan)
	}
	// Prediction overhead: the NN must pay more than T3.
	if byName["Zero Shot NN"].Result.DispatchOverhead <= t3r.DispatchOverhead {
		t.Errorf("NN dispatch overhead should exceed T3's")
	}
	// Batched dispatch prices the whole queue with one packed-tier call, so
	// its critical-path prediction latency must undercut serialized T3's.
	batched := byName["T3 (batched dispatch)"].Result
	if batched.DispatchOverhead >= t3r.DispatchOverhead {
		t.Errorf("batched dispatch overhead %v should undercut serialized T3's %v",
			batched.DispatchOverhead, t3r.DispatchOverhead)
	}
}

func TestFig1Scatter(t *testing.T) {
	e := sharedEnv(t)
	f, err := e.RunFig1()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.Format())
	if len(f.Points) != 4 {
		t.Fatalf("expected 4 scatter points, got %d", len(f.Points))
	}
	for _, p := range f.Points {
		if p.Latency <= 0 || p.P50 < 1 {
			t.Errorf("%s: implausible point %+v", p.Model, p)
		}
	}
}

func TestFig5Scaling(t *testing.T) {
	e := sharedEnv(t)
	f, err := e.RunFig5()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + f.Format())
	n := len(f.Counts)
	// Latency must grow with pipeline count, and compiled must stay in the
	// same league as single-threaded interpretation at scale (the strict
	// compiled < interpreted ordering is asserted by the allocation-free
	// model-eval benchmarks; here timing shares a noisy single vCPU).
	if f.CompiledST[n-1] <= f.CompiledST[0] {
		t.Errorf("compiled latency did not grow with pipelines")
	}
	if float64(f.CompiledST[n-1]) > 1.3*float64(f.InterpST[n-1]) {
		t.Errorf("compiled %v materially slower than interpreted %v at 1000 pipelines",
			f.CompiledST[n-1], f.InterpST[n-1])
	}
	if !strings.Contains(f.Format(), "1000") {
		t.Error("missing 1000-pipeline row")
	}
}
