package experiments

import (
	"fmt"
	"math"
	"strings"

	"t3"
	"t3/internal/baselines"
	"t3/internal/benchdata"
	"t3/internal/engine/plan"
	"t3/internal/engine/stats"
	"t3/internal/qerror"
	"t3/internal/workload"
)

// Table3 reproduces the benchmark-deviation statistics: the most consistent
// two-thirds of 10 timing runs, reporting the run furthest from the median.
type Table3 struct {
	Summary qerror.Summary
}

// RunTable3 measures run-to-run deviation on the 10-run corpus.
func (e *Env) RunTable3() (*Table3, error) {
	deep, err := e.DeepRunQueries()
	if err != nil {
		return nil, err
	}
	return &Table3{Summary: benchdata.DeviationStats(deep)}, nil
}

// Format renders Table 3.
func (t *Table3) Format() string {
	s := t.Summary
	return fmt.Sprintf("Table 3: benchmark deviation as q-error (most consistent 2/3 of runs)\n"+
		"%8s %8s %8s %8s %8s\n%8.3f %8.3f %8.3f %8.3f %8d\n",
		"avg", "p50", "p90", "max", "n", s.Avg, s.P50, s.P90, s.Max, s.N)
}

// Table4 reproduces the headline accuracy table: q-errors on train queries,
// all TPC-DS test queries, the fixed TPC-DS benchmark queries, and the
// sf100 splits.
type Table4 struct {
	Rows []Table4Row
}

// Table4Row is one evaluation split.
type Table4Row struct {
	Split   string
	Summary qerror.Summary
}

// RunTable4 evaluates the trained T3 model on all paper splits with perfect
// cardinalities.
func (e *Env) RunTable4() (*Table4, error) {
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	m, err := e.T3()
	if err != nil {
		return nil, err
	}
	pred := t3Predict(m, plan.TrueCards)

	t4 := &Table4{}
	add := func(split string, qs []*benchdata.BenchedQuery) {
		t4.Rows = append(t4.Rows, Table4Row{Split: split, Summary: qerror.Summarize(qerrors(pred, qs))})
	}

	train := c.AllTrain()
	if len(train) > 2000 {
		train = train[:2000]
	}
	add("Train Queries", train)
	add("All TPC-DS Test Queries", c.AllTest())

	var fixed, sf100, sf100fixed []*benchdata.BenchedQuery
	for _, set := range c.Test {
		for _, b := range set.Queries {
			if b.Query.Group == workload.GroupFixed {
				fixed = append(fixed, b)
			}
			if set.Name == "tpcds_sf100" {
				sf100 = append(sf100, b)
				if b.Query.Group == workload.GroupFixed {
					sf100fixed = append(sf100fixed, b)
				}
			}
		}
	}
	add("TPC-DS Benchmark Queries", fixed)
	add("TPC-DS sf100 Test Queries", sf100)
	add("TPC-DS sf100 Benchmark Queries", sf100fixed)
	return t4, nil
}

// Format renders Table 4.
func (t *Table4) Format() string {
	var sb strings.Builder
	sb.WriteString("Table 4: T3 accuracy in q-error (perfect cardinalities)\n")
	fmt.Fprintf(&sb, "%-34s %8s %8s %8s %6s\n", "Queries", "p50", "p90", "avg", "n")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-34s %8.2f %8.2f %8.2f %6d\n", r.Split, r.Summary.P50, r.Summary.P90, r.Summary.Avg, r.Summary.N)
	}
	return sb.String()
}

// Fig6 reproduces the distribution of observed query running times.
type Fig6 struct {
	// BucketEdges are upper bounds in seconds (powers of 10); Counts has
	// one extra bucket for the tail.
	BucketEdges []float64
	Counts      []int
	Min, Max    float64
}

// RunFig6 histograms the measured running times of the whole dataset.
func (e *Env) RunFig6() (*Fig6, error) {
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	f := &Fig6{Min: math.Inf(1), Max: math.Inf(-1)}
	for exp := -7; exp <= 2; exp++ {
		f.BucketEdges = append(f.BucketEdges, math.Pow(10, float64(exp)))
	}
	f.Counts = make([]int, len(f.BucketEdges)+1)
	all := append(c.AllTrain(), c.AllTest()...)
	for _, b := range all {
		t := b.MedianTotal().Seconds()
		f.Min = math.Min(f.Min, t)
		f.Max = math.Max(f.Max, t)
		placed := false
		for i, edge := range f.BucketEdges {
			if t <= edge {
				f.Counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			f.Counts[len(f.BucketEdges)]++
		}
	}
	return f, nil
}

// Format renders Figure 6 as an ASCII histogram.
func (f *Fig6) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 6: observed running times (min=%s max=%s)\n",
		fmtSeconds(f.Min), fmtSeconds(f.Max))
	for i, c := range f.Counts {
		label := "more"
		if i < len(f.BucketEdges) {
			label = "<= " + fmtSeconds(f.BucketEdges[i])
		}
		fmt.Fprintf(&sb, "%12s %6d %s\n", label, c, strings.Repeat("#", bar(c, 50)))
	}
	return sb.String()
}

func fmtSeconds(s float64) string {
	switch {
	case s < 1e-6:
		return fmt.Sprintf("%.0fns", s*1e9)
	case s < 1e-3:
		return fmt.Sprintf("%.0fus", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.0fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

func bar(count, cap int) int {
	if count > cap {
		return cap
	}
	return count
}

// Fig7 reproduces the q-error frequency distribution on the TPC-DS test
// queries.
type Fig7 struct {
	Hist *qerror.Histogram
}

// RunFig7 histograms T3's q-errors.
func (e *Env) RunFig7() (*Fig7, error) {
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	m, err := e.T3()
	if err != nil {
		return nil, err
	}
	h := qerror.NewHistogram([]float64{1.05, 1.1, 1.2, 1.5, 2, 3, 5, 10, 100})
	h.AddAll(qerrors(t3Predict(m, plan.TrueCards), c.AllTest()))
	return &Fig7{Hist: h}, nil
}

// Format renders Figure 7.
func (f *Fig7) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 7: q-error frequency distribution (TPC-DS test queries)\n")
	for i, c := range f.Hist.Counts {
		label := "more"
		if i < len(f.Hist.Bounds) {
			label = fmt.Sprintf("<= %.2f", f.Hist.Bounds[i])
		}
		fmt.Fprintf(&sb, "%10s %6d %s\n", label, c, strings.Repeat("#", bar(c, 50)))
	}
	return sb.String()
}

// Fig8 reproduces q-error by query-structure group.
type Fig8 struct {
	Rows []Fig8Row
}

// Fig8Row is one query group's accuracy.
type Fig8Row struct {
	Group   workload.Group
	Summary qerror.Summary
}

// RunFig8 splits the TPC-DS test accuracy by generator group (plus the
// fixed benchmark queries).
func (e *Env) RunFig8() (*Fig8, error) {
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	m, err := e.T3()
	if err != nil {
		return nil, err
	}
	pred := t3Predict(m, plan.TrueCards)
	groups := append([]workload.Group{workload.GroupFixed}, workload.Groups...)
	f := &Fig8{}
	for _, g := range groups {
		var qs []*benchdata.BenchedQuery
		for _, set := range c.Test {
			qs = append(qs, set.Split(g)...)
		}
		if len(qs) == 0 {
			continue
		}
		f.Rows = append(f.Rows, Fig8Row{Group: g, Summary: qerror.Summarize(qerrors(pred, qs))})
	}
	return f, nil
}

// Format renders Figure 8.
func (f *Fig8) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 8: q-error by query type (TPC-DS test queries)\n")
	fmt.Fprintf(&sb, "%-10s %8s %8s %8s %6s\n", "Group", "p50", "p90", "avg", "n")
	for _, r := range f.Rows {
		fmt.Fprintf(&sb, "%-10s %8.2f %8.2f %8.2f %6d\n", r.Group, r.Summary.P50, r.Summary.P90, r.Summary.Avg, r.Summary.N)
	}
	return sb.String()
}

// Fig9 reproduces the leave-one-out generalization study: for each
// evaluation instance, T3 is trained on all other instances.
type Fig9 struct {
	Rows []Fig9Row
}

// Fig9Row is one held-out instance.
type Fig9Row struct {
	Instance string
	Summary  qerror.Summary
}

// RunFig9 retrains T3 once per held-out training instance.
func (e *Env) RunFig9() (*Fig9, error) {
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	sets := c.Train
	if e.Cfg.LeaveOneOutInstances > 0 && e.Cfg.LeaveOneOutInstances < len(sets) {
		sets = sets[:e.Cfg.LeaveOneOutInstances]
	}
	f := &Fig9{}
	for _, held := range sets {
		m, err := t3.Train(c.TrainExcept(held.Name), t3.TrainOptions{Params: e.Params()})
		if err != nil {
			return nil, fmt.Errorf("leave-one-out %s: %w", held.Name, err)
		}
		es := qerrors(t3Predict(m, plan.TrueCards), held.Queries)
		f.Rows = append(f.Rows, Fig9Row{Instance: held.Name, Summary: qerror.Summarize(es)})
	}
	return f, nil
}

// Format renders Figure 9.
func (f *Fig9) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 9: leave-one-out q-error per evaluation instance\n")
	fmt.Fprintf(&sb, "%-18s %8s %8s %8s\n", "Instance", "p50", "p90", "avg")
	for _, r := range f.Rows {
		fmt.Fprintf(&sb, "%-18s %8.2f %8.2f %8.2f\n", r.Instance, r.Summary.P50, r.Summary.P90, r.Summary.Avg)
	}
	return sb.String()
}

// Fig11 reproduces the perfect-vs-estimated cardinality study with its
// three variants.
type Fig11 struct {
	TrainPerfectEvalPerfect qerror.Summary
	TrainPerfectEvalEst     qerror.Summary
	TrainEstEvalEst         qerror.Summary
}

// RunFig11 evaluates the three cardinality configurations on the TPC-DS
// test queries.
func (e *Env) RunFig11() (*Fig11, error) {
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	m, err := e.T3()
	if err != nil {
		return nil, err
	}
	test := c.AllTest()
	f := &Fig11{}
	f.TrainPerfectEvalPerfect = qerror.Summarize(qerrors(t3Predict(m, plan.TrueCards), test))
	f.TrainPerfectEvalEst = qerror.Summarize(qerrors(t3Predict(m, plan.EstCards), test))

	mEst, err := t3.Train(c.AllTrain(), t3.TrainOptions{Params: e.Params(), CardMode: plan.EstCards})
	if err != nil {
		return nil, err
	}
	f.TrainEstEvalEst = qerror.Summarize(qerrors(t3Predict(mEst, plan.EstCards), test))
	return f, nil
}

// Format renders Figure 11.
func (f *Fig11) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 11: accuracy with perfect vs estimated cardinalities\n")
	fmt.Fprintf(&sb, "%-28s %s\n", "train perfect, eval perfect", fmtSummary(f.TrainPerfectEvalPerfect))
	fmt.Fprintf(&sb, "%-28s %s\n", "train perfect, eval est", fmtSummary(f.TrainPerfectEvalEst))
	fmt.Fprintf(&sb, "%-28s %s\n", "train est, eval est", fmtSummary(f.TrainEstEvalEst))
	return sb.String()
}

// Fig12 reproduces accuracy under artificially degraded cardinality
// estimates for T3 and the Zero Shot NN.
type Fig12 struct {
	Factors []float64
	T3P50   []float64
	T3Avg   []float64
	NNP50   []float64
	NNAvg   []float64
}

// RunFig12 sweeps distortion factors from exact (1x) to 1000x.
func (e *Env) RunFig12() (*Fig12, error) {
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	m, err := e.T3()
	if err != nil {
		return nil, err
	}
	nn, err := e.ZeroShot()
	if err != nil {
		return nil, err
	}
	test := c.AllTest()
	// Preserve the estimator-produced annotations; the sweep overwrites
	// them with distorted true values.
	snaps := make([][]float64, len(test))
	for i, b := range test {
		snaps[i] = stats.SnapshotEst(b.Query.Root)
	}
	f := &Fig12{Factors: []float64{1, 2, 5, 10, 50, 100, 500, 1000}}
	for fi, factor := range f.Factors {
		for _, b := range test {
			stats.Distort(b.Query.Root, factor, int64(fi)*1001+7)
		}
		t3es := qerrors(t3Predict(m, plan.EstCards), test)
		nnes := qerrors(func(b *benchdata.BenchedQuery) float64 {
			return nn.PredictSeconds(b.Query.Root, plan.EstCards)
		}, test)
		st, sn := qerror.Summarize(t3es), qerror.Summarize(nnes)
		f.T3P50 = append(f.T3P50, st.P50)
		f.T3Avg = append(f.T3Avg, st.Avg)
		f.NNP50 = append(f.NNP50, sn.P50)
		f.NNAvg = append(f.NNAvg, sn.Avg)
	}
	// Restore the original estimator annotations for later experiments.
	for i, b := range test {
		stats.RestoreEst(b.Query.Root, snaps[i])
	}
	return f, nil
}

// Format renders Figure 12.
func (f *Fig12) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 12: accuracy under degraded cardinality estimates\n")
	fmt.Fprintf(&sb, "%8s %10s %10s %10s %10s\n", "factor", "T3 p50", "T3 avg", "NN p50", "NN avg")
	for i, fac := range f.Factors {
		fmt.Fprintf(&sb, "%8.0f %10.2f %10.2f %10.2f %10.2f\n", fac, f.T3P50[i], f.T3Avg[i], f.NNP50[i], f.NNAvg[i])
	}
	return sb.String()
}

// Fig13 reproduces the ablation study: per-tuple (T3) vs per-pipeline
// direct vs per-query prediction.
type Fig13 struct {
	PerTuple    qerror.Summary
	PerPipeline qerror.Summary
	PerQuery    qerror.Summary
}

// RunFig13 trains the two ablation variants and compares on TPC-DS.
func (e *Env) RunFig13() (*Fig13, error) {
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	m, err := e.T3()
	if err != nil {
		return nil, err
	}
	test := c.AllTest()
	f := &Fig13{}
	f.PerTuple = qerror.Summarize(qerrors(t3Predict(m, plan.TrueCards), test))

	direct, err := baselines.TrainPerPipelineDirect(c.AllTrain(), plan.TrueCards, e.Params())
	if err != nil {
		return nil, err
	}
	f.PerPipeline = qerror.Summarize(qerrors(func(b *benchdata.BenchedQuery) float64 {
		return direct.PredictSeconds(b.Query.Root, plan.TrueCards)
	}, test))

	pq, err := e.PerQueryDT()
	if err != nil {
		return nil, err
	}
	f.PerQuery = qerror.Summarize(qerrors(func(b *benchdata.BenchedQuery) float64 {
		return pq.PredictSeconds(b.Query.Root, plan.TrueCards)
	}, test))
	return f, nil
}

// Format renders Figure 13.
func (f *Fig13) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 13: ablation — prediction granularity\n")
	fmt.Fprintf(&sb, "%-26s %s\n", "single tuple (T3)", fmtSummary(f.PerTuple))
	fmt.Fprintf(&sb, "%-26s %s\n", "individual pipeline", fmtSummary(f.PerPipeline))
	fmt.Fprintf(&sb, "%-26s %s\n", "whole query", fmtSummary(f.PerQuery))
	return sb.String()
}

// Fig14 reproduces the repeated-benchmark study: model accuracy when targets
// come from the median of k timing runs.
type Fig14 struct {
	Runs []int
	P50  []float64
	Avg  []float64
}

// RunFig14 trains one model per run count on the 10-run corpus and evaluates
// on the TPC-DS test queries.
func (e *Env) RunFig14() (*Fig14, error) {
	deep, err := e.DeepRunQueries()
	if err != nil {
		return nil, err
	}
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	test := c.AllTest()
	f := &Fig14{Runs: []int{1, 2, 3, 5, 10}}
	for _, k := range f.Runs {
		m, err := t3.Train(deep, t3.TrainOptions{Params: e.Params(), Runs: k})
		if err != nil {
			return nil, err
		}
		s := qerror.Summarize(qerrors(t3Predict(m, plan.TrueCards), test))
		f.P50 = append(f.P50, s.P50)
		f.Avg = append(f.Avg, s.Avg)
	}
	return f, nil
}

// Format renders Figure 14.
func (f *Fig14) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 14: accuracy by number of benchmark runs\n")
	fmt.Fprintf(&sb, "%6s %8s %8s\n", "runs", "p50", "avg")
	for i, k := range f.Runs {
		fmt.Fprintf(&sb, "%6d %8.2f %8.2f\n", k, f.P50[i], f.Avg[i])
	}
	return sb.String()
}
