package experiments

import (
	"fmt"
	"strings"

	"t3/internal/benchdata"
	"t3/internal/engine/plan"
	"t3/internal/feature"
	"t3/internal/gbdt"
	"t3/internal/qerror"
	"t3/internal/treec"
)

// FeatureAblation extends the paper's ablation study (§5.7) to the feature
// set itself: T3 is retrained with individual basic-feature kinds removed
// from the registry, quantifying how much each hand-selected feature family
// (§3) contributes to accuracy. The paper motivates the families but only
// ablates prediction granularity; this experiment covers the rest of the
// design space DESIGN.md calls out.
type FeatureAblation struct {
	Rows []FeatureAblationRow
}

// FeatureAblationRow is one ablated variant.
type FeatureAblationRow struct {
	Variant  string
	Features int
	Summary  qerror.Summary
}

// ablationVariants maps variant names to a keep-predicate over basic feature
// names.
var ablationVariants = []struct {
	name string
	keep func(name string) bool
}{
	{"full feature set", func(string) bool { return true }},
	{"no scan expression classes", func(n string) bool {
		return !strings.HasPrefix(n, feature.FExprPrefix)
	}},
	{"no count features", func(n string) bool { return n != feature.FCount }},
	{"no size features", func(n string) bool {
		return n != feature.FInSize && n != feature.FOutSize
	}},
	{"no percentage features", func(n string) bool {
		return !strings.HasSuffix(n, "percentage")
	}},
	{"no cardinality features", func(n string) bool {
		return n != feature.FInCard && n != feature.FOutCard && n != feature.FHTCard
	}},
	{"counts only", func(n string) bool { return n == feature.FCount }},
}

// filteredRegistry builds a registry keeping only features passing keep.
// Every stage retains at least its count feature so vectors are never empty.
func filteredRegistry(keep func(string) bool) *feature.Registry {
	spec := feature.DefaultSpec()
	out := feature.Spec{}
	for k, feats := range spec {
		var kept []string
		for _, f := range feats {
			if keep(f) {
				kept = append(kept, f)
			}
		}
		if len(kept) == 0 {
			kept = []string{feature.FCount}
		}
		out[k] = kept
	}
	return feature.NewRegistry(out)
}

// ablatedModel is a T3 variant over a reduced registry.
type ablatedModel struct {
	reg  *feature.Registry
	flat *treec.Flat
}

// predictSeconds predicts a whole query with tuple-centric scaling.
func (m *ablatedModel) predictSeconds(root *plan.Node) float64 {
	vecs, ps := m.reg.PlanVectors(root, plan.TrueCards)
	total := 0.0
	for i, v := range vecs {
		perTuple := benchdata.InverseTarget(m.flat.Predict(v))
		total += perTuple * feature.SourceCard(ps[i], plan.TrueCards)
	}
	return total
}

// trainAblated trains a T3 variant on the reduced registry.
func trainAblated(reg *feature.Registry, train []*benchdata.BenchedQuery, p gbdt.Params) (*ablatedModel, error) {
	xs, ys := benchdata.Examples(reg, train, plan.TrueCards, 0)
	gbm, _, err := gbdt.Train(p, xs, ys, nil, nil)
	if err != nil {
		return nil, err
	}
	return &ablatedModel{reg: reg, flat: treec.Flatten(gbm)}, nil
}

// RunFeatureAblation trains one model per feature-set variant and evaluates
// on the TPC-DS test queries with perfect cardinalities.
func (e *Env) RunFeatureAblation() (*FeatureAblation, error) {
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	train := c.AllTrain()
	test := c.AllTest()
	res := &FeatureAblation{}
	for _, v := range ablationVariants {
		reg := filteredRegistry(v.keep)
		m, err := trainAblated(reg, train, e.Params())
		if err != nil {
			return nil, fmt.Errorf("ablation %q: %w", v.name, err)
		}
		es := qerrors(func(b *benchdata.BenchedQuery) float64 {
			return m.predictSeconds(b.Query.Root)
		}, test)
		res.Rows = append(res.Rows, FeatureAblationRow{
			Variant:  v.name,
			Features: reg.NumFeatures(),
			Summary:  qerror.Summarize(es),
		})
	}
	return res, nil
}

// Format renders the ablation table.
func (f *FeatureAblation) Format() string {
	var sb strings.Builder
	sb.WriteString("Feature ablation (extension): accuracy with feature families removed\n")
	fmt.Fprintf(&sb, "%-30s %6s %8s %8s %8s\n", "Variant", "#feat", "p50", "p90", "avg")
	for _, r := range f.Rows {
		fmt.Fprintf(&sb, "%-30s %6d %8.2f %8.2f %8.2f\n", r.Variant, r.Features, r.Summary.P50, r.Summary.P90, r.Summary.Avg)
	}
	return sb.String()
}
