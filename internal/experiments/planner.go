package experiments

import (
	"fmt"
	"strings"
	"time"

	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/joinorder"
	"t3/internal/sched"
	"t3/internal/workload"
)

// Planner is the planner-costing benchmark (make bench-planner →
// BENCH_planner.json): per synthetic join graph, DPsize enumeration
// wall-clock and model/oracle-call accounting across costing paths — the
// historical scalar Flat tier, memoized scalar tiers, and the level-batched
// packed tier — plus plan-quality (executed T3 vs Cout trees, Table-6-style)
// and the batched-dispatch scheduling uplift (§1).
type Planner struct {
	Cases []PlannerCase      `json:"cases"`
	Sched []PlannerSchedRow  `json:"sched"`
}

// PlannerCase is one join graph's enumeration comparison.
type PlannerCase struct {
	Spec      string `json:"spec"`
	Shape     string `json:"shape"`
	Relations int    `json:"relations"`
	DPSteps   int    `json:"dp_steps"`
	// OracleSubsets is how many distinct subsets the shared, pre-warmed memo
	// oracle computed: every timed run below pays map lookups only, so oracle
	// cost cannot masquerade as model cost.
	OracleSubsets int          `json:"oracle_subsets"`
	Rows          []PlannerRow `json:"rows"`

	// Plan quality: measured execution of the chosen trees (Table-6-style).
	CoutTree      string        `json:"cout_tree"`
	T3Tree        string        `json:"t3_tree"`
	CoutExec      time.Duration `json:"cout_exec_ns"`
	T3Exec        time.Duration `json:"t3_exec_ns"`
	QualityUplift float64       `json:"quality_uplift"` // cout_exec / t3_exec
}

// PlannerRow is one costing path's timed enumeration (best of reps).
type PlannerRow struct {
	Path       string        `json:"path"`
	WallClock  time.Duration `json:"wall_ns"`
	ModelCalls int           `json:"model_calls"`
	Batches    int           `json:"batches"`
	MaxBatch   int           `json:"max_batch"`
	// Pruned counts candidates the batched path rejected through the exact
	// incumbent bound without featurizing or predicting them.
	Pruned int     `json:"pruned"`
	Cost   float64 `json:"cost"`
	// TreeMatches reports whether this path chose the same tree as the
	// scalar-flat-nomemo baseline.
	TreeMatches bool `json:"tree_matches"`
	// Speedup is baseline wall-clock / this wall-clock.
	Speedup float64 `json:"speedup"`
}

// PlannerSchedRow is one dispatch regime's simulated scheduling outcome over
// the benchmarked test workload.
type PlannerSchedRow struct {
	Dispatch         string        `json:"dispatch"`
	Makespan         time.Duration `json:"makespan_ns"`
	MeanCompletion   time.Duration `json:"mean_ns"`
	P95Completion    time.Duration `json:"p95_ns"`
	DispatchOverhead time.Duration `json:"dispatch_overhead_ns"`
	// MakespanUplift is serialized makespan / this makespan.
	MakespanUplift float64 `json:"makespan_uplift"`
}

// plannerCases are the benchmarked synthetic join graphs. The 8+ relation
// cases carry the paper-style headline: batched packed-tier costing vs the
// scalar Flat path.
var plannerCases = []struct {
	shape string
	n     int
}{
	{workload.ShapeChain, 10},
	{workload.ShapeStar, 10},
	{workload.ShapeClique, 8},
	{workload.ShapeChain, 12},
}

// plannerReps is how many times each path is enumerated; the minimum wall
// clock is reported.
const plannerReps = 3

// RunPlanner benchmarks join-order enumeration across costing paths and the
// batched-dispatch scheduler.
func (e *Env) RunPlanner() (*Planner, error) {
	m, err := e.T3()
	if err != nil {
		return nil, err
	}
	flat, packed, reg := m.Compiled(), m.Packed(), m.Registry()
	res := &Planner{}

	for ci, c := range plannerCases {
		inst, sp := workload.SyntheticJoinBench(c.shape, c.n, 4000, int64(101+ci))
		oracle := joinorder.NewMemoOracle(joinorder.NewEstOracle(inst, sp), c.n)
		pc := PlannerCase{Spec: sp.Name, Shape: c.shape, Relations: c.n}

		// Warm the oracle memo so every timed run pays lookups only.
		warm := joinorder.NewT3Cost(packed, reg, inst, sp, oracle)
		if _, err := joinorder.DPSize(sp, warm); err != nil {
			return nil, fmt.Errorf("planner %s: %w", sp.Name, err)
		}
		pc.OracleSubsets = joinorder.OracleCalls(oracle)

		type path struct {
			name string
			run  func() (*joinorder.Result, error)
		}
		paths := []path{
			{"scalar-flat-nomemo", func() (*joinorder.Result, error) {
				cm := joinorder.NewT3Cost(flat, reg, inst, sp, oracle)
				cm.NoMemo = true
				return joinorder.DPSize(sp, cm)
			}},
			{"scalar-flat-memo", func() (*joinorder.Result, error) {
				return joinorder.DPSize(sp, joinorder.NewT3Cost(flat, reg, inst, sp, oracle))
			}},
			{"scalar-packed-memo", func() (*joinorder.Result, error) {
				return joinorder.DPSize(sp, joinorder.NewT3Cost(packed, reg, inst, sp, oracle))
			}},
			{"batched-w1", func() (*joinorder.Result, error) {
				return joinorder.DPSizeBatched(sp, packed, reg, inst, oracle, joinorder.BatchConfig{Workers: 1})
			}},
			{"batched", func() (*joinorder.Result, error) {
				return joinorder.DPSizeBatched(sp, packed, reg, inst, oracle, joinorder.BatchConfig{})
			}},
		}

		var baseWall time.Duration
		var baseTree string
		var packedScalar *joinorder.Result
		for pi, p := range paths {
			var best *joinorder.Result
			var bestWall time.Duration
			for rep := 0; rep < plannerReps; rep++ {
				start := time.Now()
				r, err := p.run()
				wall := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("planner %s %s: %w", sp.Name, p.name, err)
				}
				if best == nil || wall < bestWall {
					best, bestWall = r, wall
				}
			}
			if pi == 0 {
				baseWall = bestWall
				baseTree = best.Tree.String()
				pc.DPSteps = best.DPSteps
			}
			switch p.name {
			case "scalar-packed-memo":
				packedScalar = best
			case "batched-w1", "batched":
				// The determinism contract: batched must be bit-identical to
				// the scalar reference on the same packed predictor.
				if packedScalar != nil && (best.Cost != packedScalar.Cost || best.Tree.String() != packedScalar.Tree.String()) {
					return nil, fmt.Errorf("planner %s: %s diverged from scalar-packed reference (cost %v vs %v)",
						sp.Name, p.name, best.Cost, packedScalar.Cost)
				}
			}
			pc.Rows = append(pc.Rows, PlannerRow{
				Path:        p.name,
				WallClock:   bestWall,
				ModelCalls:  best.ModelCalls,
				Batches:     best.Batches,
				MaxBatch:    best.MaxBatch,
				Pruned:      best.Pruned,
				Cost:        best.Cost,
				TreeMatches: best.Tree.String() == baseTree,
				Speedup:     float64(baseWall) / float64(bestWall),
			})
		}

		// Plan quality: execute the T3-chosen tree against the Cout tree.
		coutRes, err := joinorder.DPSize(sp, joinorder.NewCout(oracle))
		if err != nil {
			return nil, fmt.Errorf("planner %s cout: %w", sp.Name, err)
		}
		t3Res, err := joinorder.DPSizeBatched(sp, packed, reg, inst, oracle, joinorder.BatchConfig{})
		if err != nil {
			return nil, err
		}
		pc.CoutTree = coutRes.Tree.String()
		pc.T3Tree = t3Res.Tree.String()
		if pc.CoutExec, err = execTree(inst, sp, coutRes.Tree, oracle); err != nil {
			return nil, fmt.Errorf("planner %s cout exec: %w", sp.Name, err)
		}
		if pc.T3Exec, err = execTree(inst, sp, t3Res.Tree, oracle); err != nil {
			return nil, fmt.Errorf("planner %s t3 exec: %w", sp.Name, err)
		}
		if pc.T3Exec > 0 {
			pc.QualityUplift = float64(pc.CoutExec) / float64(pc.T3Exec)
		}
		res.Cases = append(res.Cases, pc)
	}

	if err := e.plannerSched(res); err != nil {
		return nil, err
	}
	return res, nil
}

// execTree executes the tree's physical plan (engine-style smaller-side
// builds) twice and returns the faster run.
func execTree(inst *workload.Instance, sp *workload.JoinSpec, tree *joinorder.Tree, oracle joinorder.Oracle) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < 2; i++ {
		p := joinorder.TreeToPlanSides(inst, sp, tree, oracle)
		start := time.Now()
		if _, err := exec.Run(p, false); err != nil {
			return 0, err
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// plannerSched compares serialized per-job dispatch against one batched
// packed-tier prediction of the whole queue (per-tier latency measured on
// this machine, not assumed), over the benchmarked test workload.
func (e *Env) plannerSched(res *Planner) error {
	c, err := e.Corpus()
	if err != nil {
		return err
	}
	m, err := e.T3()
	if err != nil {
		return err
	}
	test := c.AllTest()
	if len(test) == 0 {
		return fmt.Errorf("planner: empty test workload")
	}
	const clusters = 8

	// Serialized: each job pays its measured scalar prediction latency.
	jobs := make([]sched.Job, len(test))
	for i, b := range test {
		start := time.Now()
		p, _ := m.PredictPlan(b.Query.Root, plan.TrueCards)
		jobs[i] = sched.Job{
			ID:          b.Query.Name,
			Actual:      b.MedianTotal(),
			Predicted:   p,
			PredLatency: time.Since(start),
		}
	}
	serial := sched.Simulate(jobs, clusters, sched.LongestFirst)

	// Batched: the dispatcher prices the whole queue in one packed-tier
	// batch; the measured batch latency is charged once.
	roots := make([]*plan.Node, len(test))
	for i, b := range test {
		roots[i] = b.Query.Root
	}
	preds := make([]time.Duration, len(test))
	start := time.Now()
	m.PredictBatchInto(roots, plan.TrueCards, preds)
	batchLat := time.Since(start)
	bjobs := make([]sched.Job, len(test))
	copy(bjobs, jobs)
	for i := range bjobs {
		bjobs[i].Predicted = preds[i]
	}
	batched := sched.SimulateBatchDispatch(bjobs, clusters, sched.LongestFirst, batchLat)

	// Round-robin baseline: no predictions at all.
	plain := make([]sched.Job, len(jobs))
	copy(plain, jobs)
	for i := range plain {
		plain[i].Predicted, plain[i].PredLatency = 0, 0
	}
	rows := []struct {
		name string
		r    sched.Result
	}{
		{"serialized-per-job", serial},
		{"batched-one-call", batched},
		{"none-round-robin", sched.Simulate(plain, clusters, sched.RoundRobin)},
	}

	for _, row := range rows {
		uplift := 0.0
		if row.r.Makespan > 0 {
			uplift = float64(serial.Makespan) / float64(row.r.Makespan)
		}
		res.Sched = append(res.Sched, PlannerSchedRow{
			Dispatch:         row.name,
			Makespan:         row.r.Makespan,
			MeanCompletion:   row.r.MeanCompletion,
			P95Completion:    row.r.P95Completion,
			DispatchOverhead: row.r.DispatchOverhead,
			MakespanUplift:   uplift,
		})
	}
	return nil
}

// Format renders the planner benchmark as tables.
func (p *Planner) Format() string {
	var sb strings.Builder
	sb.WriteString("Planner costing (§5.5-style): DPsize enumeration wall-clock by costing path\n")
	for _, c := range p.Cases {
		fmt.Fprintf(&sb, "\n%s (%d rels, %d DP steps, %d oracle subsets)\n",
			c.Spec, c.Relations, c.DPSteps, c.OracleSubsets)
		fmt.Fprintf(&sb, "  %-20s %10s %12s %8s %9s %7s %8s %6s\n",
			"path", "wall", "model calls", "batches", "max batch", "pruned", "speedup", "tree=")
		for _, r := range c.Rows {
			fmt.Fprintf(&sb, "  %-20s %10s %12d %8d %9d %7d %7.2fx %6v\n",
				r.Path, fmtDur(r.WallClock), r.ModelCalls, r.Batches, r.MaxBatch, r.Pruned, r.Speedup, r.TreeMatches)
		}
		fmt.Fprintf(&sb, "  plan quality: Cout %s vs T3 %s -> %.2fx (%s vs %s)\n",
			fmtDur(c.CoutExec), fmtDur(c.T3Exec), c.QualityUplift, c.CoutTree, c.T3Tree)
	}
	sb.WriteString("\nScheduling dispatch (LPT, 8 clusters, measured prediction latencies)\n")
	fmt.Fprintf(&sb, "  %-20s %12s %12s %12s %14s %8s\n", "dispatch", "makespan", "mean", "p95", "pred latency", "uplift")
	for _, r := range p.Sched {
		fmt.Fprintf(&sb, "  %-20s %12s %12s %12s %14s %7.2fx\n", r.Dispatch,
			fmtDur(r.Makespan), fmtDur(r.MeanCompletion), fmtDur(r.P95Completion),
			fmtDur(r.DispatchOverhead), r.MakespanUplift)
	}
	return sb.String()
}
