package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	t3 "t3"
	"t3/internal/benchdata"
	"t3/internal/compiled"
	"t3/internal/engine/plan"
	"t3/internal/par"
	"t3/internal/qerror"
	"t3/internal/stage"
)

// timeIt measures the median wall-clock time of f over reps repetitions.
func timeIt(reps int, f func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	ds := make([]time.Duration, reps)
	for i := range ds {
		start := time.Now()
		f()
		ds[i] = time.Since(start)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// Table1 reproduces the prediction-latency comparison: Zero Shot (NN only),
// Stage (cache/DT/NN hierarchy with a realized average), T3 interpreted, and
// T3 compiled.
type Table1 struct {
	ZeroShotNN time.Duration
	StageCache time.Duration
	StageDT    time.Duration
	StageNN    time.Duration
	StageAvg   time.Duration
	// T3Interp and T3Compiled measure the full prediction path
	// (decomposition + featurization + model).
	T3Interp   time.Duration
	T3Compiled time.Duration
	// T3Packed measures the full path on the allocation-free scratch API
	// over the packed (16-byte node) tier, with per-query latency
	// percentiles and steady-state heap allocations per prediction.
	T3Packed       time.Duration
	T3PackedP50    time.Duration
	T3PackedP99    time.Duration
	T3PackedAllocs float64
	// T3ModelInterp and T3ModelCompiled isolate the model-evaluation step
	// on pre-featurized vectors — the direct analogue of the paper's
	// LightGBM-interpreted vs lleaves-compiled contrast (22us -> 4us).
	// T3ModelPacked is the same step on the packed tier, and T3ModelGenGo
	// on the ahead-of-time generated Go code (zero when the checked-in
	// generated model does not match the registry).
	T3ModelInterp   time.Duration
	T3ModelCompiled time.Duration
	T3ModelPacked   time.Duration
	T3ModelGenGo    time.Duration
	AvgPipelines    float64
}

// latencyPercentiles times f once per (query, rep) pair and returns the p50
// and p99 of the per-call latency distribution.
func latencyPercentiles(test []*benchdata.BenchedQuery, reps int, f func(*benchdata.BenchedQuery)) (p50, p99 time.Duration) {
	ds := make([]time.Duration, 0, len(test)*reps)
	for r := 0; r < reps; r++ {
		for _, b := range test {
			start := time.Now()
			f(b)
			ds = append(ds, time.Since(start))
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2], ds[len(ds)*99/100]
}

// RunTable1 measures single-query prediction latency for every model tier.
func (e *Env) RunTable1() (*Table1, error) {
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	m, err := e.T3()
	if err != nil {
		return nil, err
	}
	nn, err := e.ZeroShot()
	if err != nil {
		return nil, err
	}
	dt, err := e.PerQueryDT()
	if err != nil {
		return nil, err
	}
	test := c.AllTest()
	if len(test) > 200 {
		test = test[:200]
	}
	res := &Table1{}
	var pipes int
	for _, b := range test {
		pipes += len(b.Pipelines)
	}
	res.AvgPipelines = float64(pipes) / float64(len(test))

	const inner = 20
	perQuery := func(f func(*benchdata.BenchedQuery)) time.Duration {
		total := timeIt(5, func() {
			for _, b := range test {
				for i := 0; i < inner; i++ {
					f(b)
				}
			}
		})
		return total / time.Duration(len(test)*inner)
	}

	res.T3Compiled = perQuery(func(b *benchdata.BenchedQuery) { m.PredictPlan(b.Query.Root, plan.TrueCards) })
	res.T3Interp = perQuery(func(b *benchdata.BenchedQuery) { m.PredictInterpreted(b.Query.Root, plan.TrueCards) })

	// Packed tier over the reusable scratch: the allocation-free hot path.
	var scratch t3.PredictScratch
	m.PredictPlanScratch(test[0].Query.Root, plan.TrueCards, &scratch) // warm up
	res.T3Packed = perQuery(func(b *benchdata.BenchedQuery) {
		m.PredictPlanScratch(b.Query.Root, plan.TrueCards, &scratch)
	})
	res.T3PackedP50, res.T3PackedP99 = latencyPercentiles(test, inner, func(b *benchdata.BenchedQuery) {
		m.PredictPlanScratch(b.Query.Root, plan.TrueCards, &scratch)
	})
	warmRoot := test[0].Query.Root
	res.T3PackedAllocs = testing.AllocsPerRun(100, func() {
		m.PredictPlanScratch(warmRoot, plan.TrueCards, &scratch)
	})

	// Model-only latency per query on pre-featurized pipeline vectors.
	var queryVecs [][][]float64
	for _, b := range test {
		vs, _ := m.Registry().PlanVectors(b.Query.Root, plan.TrueCards)
		queryVecs = append(queryVecs, vs)
	}
	flat := m.Compiled()
	gbm := m.Boosted()
	res.T3ModelCompiled = timeIt(7, func() {
		for _, vs := range queryVecs {
			for i := 0; i < inner; i++ {
				for _, v := range vs {
					flat.Predict(v)
				}
			}
		}
	}) / time.Duration(len(test)*inner)
	res.T3ModelInterp = timeIt(7, func() {
		for _, vs := range queryVecs {
			for i := 0; i < inner; i++ {
				for _, v := range vs {
					gbm.Predict(v)
				}
			}
		}
	}) / time.Duration(len(test)*inner)
	packed := m.Packed()
	res.T3ModelPacked = timeIt(7, func() {
		for _, vs := range queryVecs {
			for i := 0; i < inner; i++ {
				for _, v := range vs {
					packed.Predict(v)
				}
			}
		}
	}) / time.Duration(len(test)*inner)
	// The checked-in generated code only applies when it was compiled from a
	// model with the same feature schema as this registry.
	if compiled.NumFeatures() == m.Registry().NumFeatures() {
		res.T3ModelGenGo = timeIt(7, func() {
			for _, vs := range queryVecs {
				for i := 0; i < inner; i++ {
					for _, v := range vs {
						compiled.Predict(v)
					}
				}
			}
		}) / time.Duration(len(test)*inner)
	}
	res.ZeroShotNN = perQuery(func(b *benchdata.BenchedQuery) { nn.PredictSeconds(b.Query.Root, plan.TrueCards) })
	res.StageDT = perQuery(func(b *benchdata.BenchedQuery) { dt.PredictSeconds(b.Query.Root, plan.TrueCards) })

	// Stage: realized behaviour on a workload where half the submissions
	// repeat already-seen plans (hitting the cache tier).
	h := stage.New(dt, nn, 4)
	for _, b := range test[:len(test)/2] {
		h.Observe(b.Query.Root, plan.TrueCards, b.MedianTotal().Seconds())
	}
	res.StageCache = perQuery(func(b *benchdata.BenchedQuery) { stage.PlanHash(b.Query.Root, plan.TrueCards) })
	res.StageAvg = perQuery(func(b *benchdata.BenchedQuery) { h.Predict(b.Query.Root, plan.TrueCards) })

	// NN tier latency measured on the complex plans only.
	var complexQ []*benchdata.BenchedQuery
	for _, b := range test {
		if len(b.Pipelines) > 4 {
			complexQ = append(complexQ, b)
		}
	}
	if len(complexQ) > 0 {
		saved := test
		test = complexQ
		res.StageNN = perQuery(func(b *benchdata.BenchedQuery) { nn.PredictSeconds(b.Query.Root, plan.TrueCards) })
		test = saved
	} else {
		res.StageNN = res.ZeroShotNN
	}
	return res, nil
}

// Format renders the paper's Table 1 layout.
func (t *Table1) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: single-prediction latency (avg query ≈ %.1f pipelines)\n", t.AvgPipelines)
	fmt.Fprintf(&sb, "%-16s %10s %10s %10s %10s\n", "", "Cache", "DT", "NN", "Avg")
	fmt.Fprintf(&sb, "%-16s %10s %10s %10s %10s\n", "Zero Shot", "-", "-", fmtDur(t.ZeroShotNN), fmtDur(t.ZeroShotNN))
	fmt.Fprintf(&sb, "%-16s %10s %10s %10s %10s\n", "Stage", fmtDur(t.StageCache), fmtDur(t.StageDT), fmtDur(t.StageNN), fmtDur(t.StageAvg))
	fmt.Fprintf(&sb, "%-16s %10s %10s %10s %10s\n", "T3 interpreted", "-", fmtDur(t.T3Interp), "-", fmtDur(t.T3Interp))
	fmt.Fprintf(&sb, "%-16s %10s %10s %10s %10s\n", "T3 (ours)", "-", fmtDur(t.T3Compiled), "-", fmtDur(t.T3Compiled))
	fmt.Fprintf(&sb, "%-16s %10s %10s %10s %10s\n", "T3 packed", "-", fmtDur(t.T3Packed), "-", fmtDur(t.T3Packed))
	fmt.Fprintf(&sb, "T3 packed percentiles: p50 %s, p99 %s, %.0f allocs/op (scratch path)\n",
		fmtDur(t.T3PackedP50), fmtDur(t.T3PackedP99), t.T3PackedAllocs)
	fmt.Fprintf(&sb, "model eval only: interpreted %s, compiled %s, packed %s per query",
		fmtDur(t.T3ModelInterp), fmtDur(t.T3ModelCompiled), fmtDur(t.T3ModelPacked))
	if t.T3ModelGenGo > 0 {
		fmt.Fprintf(&sb, ", genGo %s", fmtDur(t.T3ModelGenGo))
	}
	sb.WriteString("\n")
	return sb.String()
}

// Table2 reproduces the throughput comparison (queries per second), single
// predictions vs batched evaluation.
type Table2 struct {
	Rows []Table2Row
}

// Table2Row is one model's throughput.
type Table2Row struct {
	Model   string
	Single  float64 // queries/s, one at a time
	Batched float64 // queries/s, batch evaluation
}

// RunTable2 measures prediction throughput.
func (e *Env) RunTable2() (*Table2, error) {
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	m, err := e.T3()
	if err != nil {
		return nil, err
	}
	nn, err := e.ZeroShot()
	if err != nil {
		return nil, err
	}
	test := c.AllTest()
	if len(test) > 300 {
		test = test[:300]
	}

	// Pre-featurize for the interpreted batch row: all pipeline vectors with
	// query boundaries.
	var vecs [][]float64
	var bounds []int
	var cards []float64
	roots := make([]*plan.Node, len(test))
	for qi, b := range test {
		roots[qi] = b.Query.Root
		vs, ps := m.Registry().PlanVectors(b.Query.Root, plan.TrueCards)
		vecs = append(vecs, vs...)
		for _, p := range ps {
			cards = append(cards, p.SourceCard(plan.TrueCards))
		}
		bounds = append(bounds, len(vecs))
	}

	qps := func(d time.Duration, n int) float64 {
		if d <= 0 {
			return 0
		}
		return float64(n) / d.Seconds()
	}
	t2 := &Table2{}

	// T3 compiled: the batched row submits all plans through PredictBatch,
	// which fans featurization and evaluation out over the worker pool.
	single := timeIt(5, func() {
		for _, b := range test {
			m.PredictPlan(b.Query.Root, plan.TrueCards)
		}
	})
	batched := timeIt(5, func() {
		m.PredictBatch(roots, plan.TrueCards)
	})
	t2.Rows = append(t2.Rows, Table2Row{"T3 (compiled)", qps(single, len(test)), qps(batched, len(test))})

	// T3 interpreted.
	singleI := timeIt(3, func() {
		for _, b := range test {
			m.PredictInterpreted(b.Query.Root, plan.TrueCards)
		}
	})
	batchedI := timeIt(3, func() {
		gbm := m.Boosted()
		lo := 0
		var sum float64
		for _, hi := range bounds {
			for i := lo; i < hi; i++ {
				sum += benchdata.InverseTarget(gbm.Predict(vecs[i])) * cards[i]
			}
			lo = hi
		}
		_ = sum
	})
	t2.Rows = append(t2.Rows, Table2Row{"T3 interpreted", qps(singleI, len(test)), qps(batchedI, len(test))})

	// Zero-shot NN (no vectorized batching in this pure-Go substrate; the
	// paper's 1000x batching gain comes from GPU/BLAS batching, see
	// EXPERIMENTS.md).
	singleN := timeIt(3, func() {
		for _, b := range test {
			nn.PredictSeconds(b.Query.Root, plan.TrueCards)
		}
	})
	t2.Rows = append(t2.Rows, Table2Row{"Zero Shot NN", qps(singleN, len(test)), qps(singleN, len(test))})
	return t2, nil
}

// Format renders Table 2.
func (t *Table2) Format() string {
	var sb strings.Builder
	sb.WriteString("Table 2: throughput in queries per second\n")
	fmt.Fprintf(&sb, "%-16s %14s %14s\n", "Model", "Single", "Batched")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-16s %14.0f %14.0f\n", r.Model, r.Single, r.Batched)
	}
	return sb.String()
}

// Fig1 reproduces the latency/accuracy scatter of Figure 1.
type Fig1 struct {
	Points []Fig1Point
}

// Fig1Point is one model in the scatter.
type Fig1Point struct {
	Model   string
	Latency time.Duration
	P50     float64
	Avg     float64
}

// RunFig1 evaluates latency and accuracy for every model on the TPC-DS test
// set.
func (e *Env) RunFig1() (*Fig1, error) {
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	t1, err := e.RunTable1()
	if err != nil {
		return nil, err
	}
	m, err := e.T3()
	if err != nil {
		return nil, err
	}
	nn, err := e.ZeroShot()
	if err != nil {
		return nil, err
	}
	dt, err := e.PerQueryDT()
	if err != nil {
		return nil, err
	}
	test := c.AllTest()

	f := &Fig1{}
	add := func(name string, lat time.Duration, es []float64) {
		s := qerror.Summarize(es)
		f.Points = append(f.Points, Fig1Point{Model: name, Latency: lat, P50: s.P50, Avg: s.Avg})
	}
	add("T3 (compiled)", t1.T3Compiled, qerrors(t3Predict(m, plan.TrueCards), test))
	add("T3 interpreted", t1.T3Interp, qerrors(t3Predict(m, plan.TrueCards), test))
	add("AutoWLM-style DT", t1.StageDT, qerrors(func(b *benchdata.BenchedQuery) float64 {
		return dt.PredictSeconds(b.Query.Root, plan.TrueCards)
	}, test))
	add("Zero Shot NN", t1.ZeroShotNN, qerrors(func(b *benchdata.BenchedQuery) float64 {
		return nn.PredictSeconds(b.Query.Root, plan.TrueCards)
	}, test))
	return f, nil
}

// Format renders Figure 1 as a table of scatter points.
func (f *Fig1) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 1: latency vs accuracy (TPC-DS test queries)\n")
	fmt.Fprintf(&sb, "%-18s %12s %8s %8s\n", "Model", "Latency", "p50", "avg")
	for _, p := range f.Points {
		fmt.Fprintf(&sb, "%-18s %12s %8.2f %8.2f\n", p.Model, fmtDur(p.Latency), p.P50, p.Avg)
	}
	return sb.String()
}

// Fig5 reproduces prediction latency by pipeline count: compiled
// single-threaded vs interpreted single- and multi-threaded.
type Fig5 struct {
	Counts     []int
	CompiledST []time.Duration
	InterpST   []time.Duration
	InterpMT   []time.Duration
	Workers    int
}

// RunFig5 measures batch prediction latency for growing pipeline counts,
// sampling random pipelines from the test workload (as the paper does:
// "many random pipelines perform equivalently to a large query").
func (e *Env) RunFig5() (*Fig5, error) {
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	m, err := e.T3()
	if err != nil {
		return nil, err
	}
	// Pool of real pipeline vectors.
	var pool [][]float64
	for _, b := range c.AllTest() {
		vs, _ := m.Registry().PlanVectors(b.Query.Root, plan.TrueCards)
		pool = append(pool, vs...)
		if len(pool) > 5000 {
			break
		}
	}
	rng := rand.New(rand.NewSource(4))
	wp := par.New(e.Cfg.Workers)
	defer wp.Close()
	f := &Fig5{Counts: []int{1, 2, 3, 5, 10, 30, 100, 300, 1000}, Workers: wp.Workers()}
	flat := m.Compiled()
	gbm := m.Boosted()
	for _, k := range f.Counts {
		vs := make([][]float64, k)
		for i := range vs {
			vs[i] = pool[rng.Intn(len(pool))]
		}
		chunk := len(vs)/(4*wp.Workers()) + 1
		f.CompiledST = append(f.CompiledST, timeIt(9, func() {
			for _, v := range vs {
				flat.Predict(v)
			}
		}))
		f.InterpST = append(f.InterpST, timeIt(9, func() {
			for _, v := range vs {
				gbm.Predict(v)
			}
		}))
		f.InterpMT = append(f.InterpMT, timeIt(9, func() {
			wp.For(len(vs), chunk, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					gbm.Predict(vs[i])
				}
			})
		}))
	}
	return f, nil
}

// Format renders Figure 5 as a latency table by pipeline count.
func (f *Fig5) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5: prediction latency by number of pipelines (MT = %d workers)\n", f.Workers)
	fmt.Fprintf(&sb, "%10s %14s %14s %14s\n", "pipelines", "compiled ST", "interp ST", "interp MT")
	for i, k := range f.Counts {
		fmt.Fprintf(&sb, "%10d %14s %14s %14s\n", k, fmtDur(f.CompiledST[i]), fmtDur(f.InterpST[i]), fmtDur(f.InterpMT[i]))
	}
	return sb.String()
}
