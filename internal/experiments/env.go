// Package experiments reproduces every table and figure of the paper's
// evaluation (§5). Each experiment is a function on a shared Env that
// returns a structured result with a Format method printing the same rows or
// series the paper reports. cmd/t3bench and the repository's benchmark suite
// drive these entry points; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"t3"
	"t3/internal/baselines"
	"t3/internal/benchdata"
	"t3/internal/engine/plan"
	"t3/internal/gbdt"
	"t3/internal/qerror"
	"t3/internal/workload"
	"t3/internal/zeroshot"
)

// Config sizes the experiment suite. Quick mode keeps everything small
// enough for the repository's `go test -bench` run; the full mode matches
// cmd/t3bench defaults.
type Config struct {
	// Corpus sizes the training/evaluation workload.
	Corpus benchdata.Config
	// Rounds is the number of boosting rounds for all tree models.
	Rounds int
	// NNEpochs is the number of epochs for the zero-shot NN baseline.
	NNEpochs int
	// LeaveOneOutInstances caps how many instances Figure 9 retrains for
	// (0 = all).
	LeaveOneOutInstances int
	// JOBScale sizes the imdb-lite instance for the JOB experiments.
	JOBScale float64
	// JOBQueries caps how many JOB queries the join-ordering experiments
	// optimize (0 = all 113).
	JOBQueries int
	// DeepRunInstances and DeepRuns size the 10-run corpus used by Table 3
	// and Figure 14.
	DeepRunInstances int
	DeepRuns         int
	// Workers is the worker count for parallel training and batched
	// prediction (0 = GOMAXPROCS). Trained models are identical for any
	// value, so experiment results stay reproducible.
	Workers int
}

// QuickConfig returns the configuration used by the repository benchmarks:
// small instances, a few queries per group, reduced rounds.
func QuickConfig() Config {
	return Config{
		Corpus:               benchdata.Config{Scale: 0.05, PerGroup: 3, Runs: 3, Seed: 9, ReleaseTables: true},
		Rounds:               80,
		NNEpochs:             15,
		LeaveOneOutInstances: 5,
		JOBScale:             0.02,
		JOBQueries:           30,
		DeepRunInstances:     4,
		DeepRuns:             10,
	}
}

// FullConfig returns the configuration for a full reproduction run
// (cmd/t3bench -full): the paper-scale 200-round models and the complete
// query sets, sized to finish in tens of minutes on a laptop.
func FullConfig() Config {
	return Config{
		Corpus:               benchdata.Config{Scale: 0.4, PerGroup: 8, Runs: 3, Seed: 1, ReleaseTables: true},
		Rounds:               200,
		NNEpochs:             40,
		LeaveOneOutInstances: 0,
		JOBScale:             0.05,
		JOBQueries:           0,
		DeepRunInstances:     6,
		DeepRuns:             10,
	}
}

// Env lazily builds and caches the expensive shared artifacts: the corpus,
// the trained T3 model, and the baselines.
type Env struct {
	Cfg Config

	corpusOnce sync.Once
	corpus     *benchdata.Corpus
	corpusErr  error

	t3Once sync.Once
	t3m    *t3.Model
	t3Err  error

	nnOnce sync.Once
	nnm    *zeroshot.Model

	dtOnce sync.Once
	dtm    *baselines.PerQuery
	dtErr  error

	deepOnce sync.Once
	deep     []*benchdata.BenchedQuery
	deepErr  error

	jobOnce sync.Once
	job     *jobEnv
	jobErr  error
}

// NewEnv creates an environment with the given config.
func NewEnv(cfg Config) *Env { return &Env{Cfg: cfg} }

// Params returns the boosting parameters for the configured round count and
// worker count.
func (e *Env) Params() gbdt.Params {
	p := gbdt.DefaultParams()
	if e.Cfg.Rounds > 0 {
		p.NumRounds = e.Cfg.Rounds
	}
	p.Workers = e.Cfg.Workers
	return p
}

// Corpus builds (once) and returns the benchmarked workload.
func (e *Env) Corpus() (*benchdata.Corpus, error) {
	e.corpusOnce.Do(func() {
		e.corpus, e.corpusErr = benchdata.BuildCorpus(e.Cfg.Corpus)
	})
	return e.corpus, e.corpusErr
}

// T3 trains (once) and returns the T3 model on the full training corpus with
// perfect cardinalities.
func (e *Env) T3() (*t3.Model, error) {
	e.t3Once.Do(func() {
		c, err := e.Corpus()
		if err != nil {
			e.t3Err = err
			return
		}
		e.t3m, e.t3Err = t3.Train(c.AllTrain(), t3.TrainOptions{Params: e.Params()})
		if e.t3m != nil {
			e.t3m.SetWorkers(e.Cfg.Workers)
		}
	})
	return e.t3m, e.t3Err
}

// ZeroShot trains (once) and returns the NN baseline on the full training
// corpus.
func (e *Env) ZeroShot() (*zeroshot.Model, error) {
	var err error
	e.nnOnce.Do(func() {
		var c *benchdata.Corpus
		c, err = e.Corpus()
		if err != nil {
			return
		}
		cfg := zeroshot.DefaultTrainConfig()
		cfg.Epochs = e.Cfg.NNEpochs
		cfg.Seed = e.Cfg.Corpus.Seed
		e.nnm = zeroshot.Train(c.AllTrain(), plan.TrueCards, cfg)
	})
	if e.nnm == nil {
		return nil, fmt.Errorf("experiments: zero-shot training unavailable: %v", err)
	}
	return e.nnm, nil
}

// PerQueryDT trains (once) and returns the AutoWLM-style baseline.
func (e *Env) PerQueryDT() (*baselines.PerQuery, error) {
	e.dtOnce.Do(func() {
		c, err := e.Corpus()
		if err != nil {
			e.dtErr = err
			return
		}
		e.dtm, e.dtErr = baselines.TrainPerQuery(c.AllTrain(), plan.TrueCards, e.Params())
	})
	return e.dtm, e.dtErr
}

// DeepRunQueries builds (once) a smaller corpus benchmarked with 10 timing
// runs per query, used by Table 3 and Figure 14.
func (e *Env) DeepRunQueries() ([]*benchdata.BenchedQuery, error) {
	e.deepOnce.Do(func() {
		cfg := e.Cfg.Corpus
		cfg.Runs = e.Cfg.DeepRuns
		if cfg.Runs < 10 {
			cfg.Runs = 10
		}
		suite := workload.SuiteConfig{Scale: cfg.Scale, Seed: cfg.Seed + 77}
		makers := workload.TrainMakers(suite)
		if e.Cfg.DeepRunInstances > 0 && e.Cfg.DeepRunInstances < len(makers) {
			makers = makers[:e.Cfg.DeepRunInstances]
		}
		for _, mk := range makers {
			set, err := benchdata.BenchmarkInstance(mk.Make(), cfg)
			if err != nil {
				e.deepErr = err
				return
			}
			for _, b := range set.Queries {
				b.ReleaseTables()
			}
			e.deep = append(e.deep, set.Queries...)
		}
	})
	return e.deep, e.deepErr
}

// qerrors evaluates a predictor over benched queries and returns the
// q-errors of predicted vs. measured total times.
func qerrors(predict func(*benchdata.BenchedQuery) float64, benched []*benchdata.BenchedQuery) []float64 {
	es := make([]float64, 0, len(benched))
	for _, b := range benched {
		es = append(es, qerror.QError(predict(b), b.MedianTotal().Seconds()))
	}
	return es
}

// t3Predict returns a prediction closure for a T3 model under a cardinality
// mode.
func t3Predict(m *t3.Model, mode plan.CardMode) func(*benchdata.BenchedQuery) float64 {
	return func(b *benchdata.BenchedQuery) float64 {
		d, _ := m.PredictPlan(b.Query.Root, mode)
		return d.Seconds()
	}
}

// fmtDur renders a duration with microsecond-level readability.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fus", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// fmtSummary renders a q-error summary as "p50=1.23 p90=2.34 avg=1.56".
func fmtSummary(s qerror.Summary) string {
	return fmt.Sprintf("p50=%.2f p90=%.2f avg=%.2f (n=%d)", s.P50, s.P90, s.Avg, s.N)
}
