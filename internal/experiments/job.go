package experiments

import (
	"fmt"
	"strings"
	"time"

	"t3"
	"t3/internal/benchdata"
	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/engine/stats"
	"t3/internal/joinorder"
	"t3/internal/qerror"
	"t3/internal/workload"
	"t3/internal/zeroshot"
)

// jobEnv bundles the artifacts of the JOB experiments: the imdb-lite
// instance, the 113 join specs, the benchmarked JOB queries, and models
// trained with imdb held out (as in the paper's Figure 10 setup).
type jobEnv struct {
	inst    *workload.Instance
	specs   []*workload.JoinSpec
	benched []*benchdata.BenchedQuery
	t3m     *t3.Model
	nn      *zeroshot.Model
}

// jobState caches the JOB environment on Env.
func (e *Env) jobState() (*jobEnv, error) {
	e.jobOnceDo()
	if e.jobErr != nil {
		return nil, e.jobErr
	}
	return e.job, nil
}

func (e *Env) jobOnceDo() {
	e.jobOnce.Do(func() {
		c, err := e.Corpus()
		if err != nil {
			e.jobErr = err
			return
		}
		scale := e.Cfg.JOBScale
		if scale <= 0 {
			scale = 0.02
		}
		inst := workload.MustGenerate(workload.IMDBSpec("imdb_job", scale, e.Cfg.Corpus.Seed+55))
		specs := workload.JOBJoinSpecs(inst)
		if e.Cfg.JOBQueries > 0 && e.Cfg.JOBQueries < len(specs) {
			specs = specs[:e.Cfg.JOBQueries]
		}

		// Benchmark the JOB queries themselves (left-deep plans).
		est := &stats.Estimator{DB: inst.Stats}
		var benched []*benchdata.BenchedQuery
		for _, sp := range specs {
			q := &workload.Query{
				Name:     fmt.Sprintf("%s/job_%s", inst.Name, sp.Name),
				Group:    workload.GroupFixed,
				Instance: inst.Name,
				Root:     sp.LeftDeepPlan(inst),
			}
			b, err := benchdata.Benchmark(q, e.Cfg.Corpus.Runs, est)
			if err != nil {
				e.jobErr = err
				return
			}
			benched = append(benched, b)
		}

		// Train models with imdb data held out (Figure 10: "both are
		// trained on other database instances").
		train := c.TrainExcept("imdb")
		t3m, err := t3.Train(train, t3.TrainOptions{Params: e.Params()})
		if err != nil {
			e.jobErr = err
			return
		}
		cfg := zeroshot.DefaultTrainConfig()
		cfg.Epochs = e.Cfg.NNEpochs
		cfg.Seed = e.Cfg.Corpus.Seed + 3
		nn := zeroshot.Train(train, plan.TrueCards, cfg)

		e.job = &jobEnv{inst: inst, specs: specs, benched: benched, t3m: t3m, nn: nn}
	})
}

// Fig10 reproduces the Zero Shot accuracy comparison on the Join Order
// Benchmark queries with exact cardinalities.
type Fig10 struct {
	T3       qerror.Summary
	ZeroShot qerror.Summary
}

// RunFig10 evaluates T3 and the Zero Shot NN (both trained without imdb) on
// the JOB-like queries.
func (e *Env) RunFig10() (*Fig10, error) {
	job, err := e.jobState()
	if err != nil {
		return nil, err
	}
	f := &Fig10{}
	f.T3 = qerror.Summarize(qerrors(t3Predict(job.t3m, plan.TrueCards), job.benched))
	f.ZeroShot = qerror.Summarize(qerrors(func(b *benchdata.BenchedQuery) float64 {
		return job.nn.PredictSeconds(b.Query.Root, plan.TrueCards)
	}, job.benched))
	return f, nil
}

// Format renders Figure 10.
func (f *Fig10) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 10: accuracy on JOB queries (exact cardinalities, imdb held out)\n")
	fmt.Fprintf(&sb, "%-14s %s\n", "T3", fmtSummary(f.T3))
	fmt.Fprintf(&sb, "%-14s %s\n", "Zero Shot NN", fmtSummary(f.ZeroShot))
	return sb.String()
}

// Table5 reproduces the join-ordering optimization-time comparison.
type Table5 struct {
	Rows    []Table5Row
	Queries int
}

// Table5Row is one cost model's optimizer statistics over all queries.
type Table5Row struct {
	CostModel  string
	OptTime    time.Duration
	ModelCalls int
}

// TimePerCall returns the average model-call latency.
func (r Table5Row) TimePerCall() time.Duration {
	if r.ModelCalls == 0 {
		return 0
	}
	return r.OptTime / time.Duration(r.ModelCalls)
}

// RunTable5 optimizes all JOB queries with DPsize under Cout and T3,
// measuring optimization time and model calls. Oracle cardinalities are
// precomputed so the measured time stresses the cost model, as in the paper.
func (e *Env) RunTable5() (*Table5, error) {
	job, err := e.jobState()
	if err != nil {
		return nil, err
	}
	t5 := &Table5{Queries: len(job.specs)}

	// Warm the exact oracles up front (the paper uses a low-latency
	// cardinality oracle; we memoize every subset before timing).
	oracles := make([]*joinorder.ExactOracle, len(job.specs))
	for i, sp := range job.specs {
		oracles[i] = joinorder.NewExactOracle(job.inst, sp)
		if _, err := joinorder.DPSize(sp, joinorder.NewCout(oracles[i])); err != nil {
			return nil, err
		}
	}

	// Cout.
	calls := 0
	start := time.Now()
	for i, sp := range job.specs {
		cm := joinorder.NewCout(oracles[i])
		if _, err := joinorder.DPSize(sp, cm); err != nil {
			return nil, err
		}
		calls += cm.Calls()
	}
	t5.Rows = append(t5.Rows, Table5Row{CostModel: "Cout", OptTime: time.Since(start), ModelCalls: calls})

	// T3.
	calls = 0
	flat := job.t3m.Compiled()
	reg := job.t3m.Registry()
	start = time.Now()
	for i, sp := range job.specs {
		cm := joinorder.NewT3Cost(flat, reg, job.inst, sp, oracles[i])
		if _, err := joinorder.DPSize(sp, cm); err != nil {
			return nil, err
		}
		calls += cm.Calls()
	}
	t5.Rows = append(t5.Rows, Table5Row{CostModel: "T3", OptTime: time.Since(start), ModelCalls: calls})
	return t5, nil
}

// Format renders Table 5.
func (t *Table5) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 5: DPsize join ordering over %d JOB queries\n", t.Queries)
	fmt.Fprintf(&sb, "%-10s %12s %12s %12s\n", "Cost Model", "Opt. Time", "Model Calls", "Time/Call")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-10s %12s %12d %12s\n", r.CostModel, fmtDur(r.OptTime), r.ModelCalls, fmtDur(r.TimePerCall()))
	}
	return sb.String()
}

// Table6 reproduces the plan-quality comparison: total execution time of all
// JOB queries under join orders chosen by Cout, T3, and the native
// (estimate-based greedy) optimizer.
type Table6 struct {
	Rows []Table6Row
}

// Table6Row is one optimizer's total execution time.
type Table6Row struct {
	CostModel string
	ExecTime  time.Duration
}

// RunTable6 executes the plans chosen by each optimizer.
func (e *Env) RunTable6() (*Table6, error) {
	job, err := e.jobState()
	if err != nil {
		return nil, err
	}
	flat := job.t3m.Compiled()
	reg := job.t3m.Registry()

	var coutTotal, t3Total, nativeTotal time.Duration
	for _, sp := range job.specs {
		oracle := joinorder.NewExactOracle(job.inst, sp)

		coutRes, err := joinorder.DPSize(sp, joinorder.NewCout(oracle))
		if err != nil {
			return nil, err
		}
		t3Res, err := joinorder.DPSize(sp, joinorder.NewT3Cost(flat, reg, job.inst, sp, oracle))
		if err != nil {
			return nil, err
		}
		nativeTree, err := joinorder.Greedy(sp, joinorder.NewEstOracle(job.inst, sp))
		if err != nil {
			return nil, err
		}

		// As in the paper, the engine builds each hash table over the
		// smaller input regardless of the optimizer's tree orientation
		// (the "Native DB" plan only has estimates to decide with).
		estOracle := joinorder.NewEstOracle(job.inst, sp)
		for _, run := range []struct {
			tree   *joinorder.Tree
			acc    *time.Duration
			oracle joinorder.Oracle
		}{
			{coutRes.Tree, &coutTotal, oracle},
			{t3Res.Tree, &t3Total, oracle},
			{nativeTree, &nativeTotal, estOracle},
		} {
			res, err := exec.Run(joinorder.TreeToPlanSides(job.inst, sp, run.tree, run.oracle), false)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sp.Name, err)
			}
			*run.acc += res.Total
		}
	}
	return &Table6{Rows: []Table6Row{
		{"Cout", coutTotal},
		{"T3", t3Total},
		{"Native DB", nativeTotal},
	}}, nil
}

// Format renders Table 6.
func (t *Table6) Format() string {
	var sb strings.Builder
	sb.WriteString("Table 6: execution time of all JOB queries by join-order source\n")
	fmt.Fprintf(&sb, "%-10s %14s\n", "Cost Model", "Execution Time")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-10s %14s\n", r.CostModel, fmtDur(r.ExecTime))
	}
	return sb.String()
}
