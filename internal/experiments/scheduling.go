package experiments

import (
	"fmt"
	"strings"
	"time"

	"t3/internal/engine/plan"
	"t3/internal/sched"
)

// Scheduling quantifies the paper's motivating use-case (§1): how much do
// prediction accuracy and prediction latency matter when scheduling a spike
// of queries across clusters? It schedules the benchmarked TPC-DS test
// workload (with its real measured durations) under different predictors:
// a perfect oracle, T3, the Zero Shot NN (accurate-ish but slow), and no
// predictor at all.
type Scheduling struct {
	Clusters int
	Rows     []SchedulingRow
}

// SchedulingRow is one predictor's outcome.
type SchedulingRow struct {
	Predictor string
	Result    sched.Result
}

// RunScheduling simulates LPT scheduling with each predictor. Prediction
// latencies are measured per query on this machine.
func (e *Env) RunScheduling() (*Scheduling, error) {
	c, err := e.Corpus()
	if err != nil {
		return nil, err
	}
	m, err := e.T3()
	if err != nil {
		return nil, err
	}
	nn, err := e.ZeroShot()
	if err != nil {
		return nil, err
	}
	test := c.AllTest()

	const clusters = 8
	res := &Scheduling{Clusters: clusters}

	mkJobs := func(predict func(i int) (time.Duration, time.Duration)) []sched.Job {
		jobs := make([]sched.Job, len(test))
		for i, b := range test {
			p, lat := predict(i)
			jobs[i] = sched.Job{
				ID:          b.Query.Name,
				Actual:      b.MedianTotal(),
				Predicted:   p,
				PredLatency: lat,
			}
		}
		return jobs
	}

	// Perfect oracle: exact durations, zero latency.
	oracleJobs := mkJobs(func(i int) (time.Duration, time.Duration) {
		return test[i].MedianTotal(), 0
	})
	res.Rows = append(res.Rows, SchedulingRow{"oracle", sched.Simulate(oracleJobs, clusters, sched.LongestFirst)})

	// T3: measured per-query prediction and latency.
	t3Jobs := mkJobs(func(i int) (time.Duration, time.Duration) {
		start := time.Now()
		p, _ := m.PredictPlan(test[i].Query.Root, plan.TrueCards)
		return p, time.Since(start)
	})
	res.Rows = append(res.Rows, SchedulingRow{"T3", sched.Simulate(t3Jobs, clusters, sched.LongestFirst)})

	// T3, batched dispatch: the dispatcher prices the whole queue with one
	// packed-tier batch call and pays its measured latency once.
	roots := make([]*plan.Node, len(test))
	for i, b := range test {
		roots[i] = b.Query.Root
	}
	preds := make([]time.Duration, len(test))
	batchStart := time.Now()
	m.PredictBatchInto(roots, plan.TrueCards, preds)
	batchLat := time.Since(batchStart)
	batchJobs := mkJobs(func(i int) (time.Duration, time.Duration) { return preds[i], 0 })
	res.Rows = append(res.Rows, SchedulingRow{"T3 (batched dispatch)",
		sched.SimulateBatchDispatch(batchJobs, clusters, sched.LongestFirst, batchLat)})

	// Zero Shot NN.
	nnJobs := mkJobs(func(i int) (time.Duration, time.Duration) {
		start := time.Now()
		p := nn.PredictSeconds(test[i].Query.Root, plan.TrueCards)
		return time.Duration(p * float64(time.Second)), time.Since(start)
	})
	res.Rows = append(res.Rows, SchedulingRow{"Zero Shot NN", sched.Simulate(nnJobs, clusters, sched.LongestFirst)})

	// No predictor: round-robin placement.
	plainJobs := mkJobs(func(int) (time.Duration, time.Duration) { return 0, 0 })
	res.Rows = append(res.Rows, SchedulingRow{"none (round-robin)", sched.Simulate(plainJobs, clusters, sched.RoundRobin)})
	return res, nil
}

// Format renders the scheduling comparison.
func (s *Scheduling) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Scheduling (extension): LPT across %d clusters, TPC-DS test workload\n", s.Clusters)
	fmt.Fprintf(&sb, "%-20s %12s %12s %12s %14s\n", "Predictor", "makespan", "mean", "p95", "pred latency")
	for _, r := range s.Rows {
		fmt.Fprintf(&sb, "%-20s %12s %12s %12s %14s\n", r.Predictor,
			fmtDur(r.Result.Makespan), fmtDur(r.Result.MeanCompletion),
			fmtDur(r.Result.P95Completion), fmtDur(r.Result.DispatchOverhead))
	}
	return sb.String()
}
