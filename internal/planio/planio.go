// Package planio serializes annotated physical plans to and from JSON.
//
// T3 predicts from plan *annotations* — operator types, cardinalities, tuple
// widths, predicate classes and selectivities — not from data. The JSON form
// carries exactly those annotations, so external systems can hand plans to
// cmd/t3predict without sharing any table data. Decoded plans are
// featurizable and predictable but not executable (their scans have no bound
// tables).
package planio

import (
	"encoding/json"
	"fmt"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// Node is the JSON form of one plan operator.
type Node struct {
	// Op is the operator name: TableScan, Filter, Map, HashJoin, GroupBy,
	// Sort, Window, Materialize, Limit.
	Op string `json:"op"`
	// Columns describe the operator's output schema; omitted for
	// pass-through operators (inherited from the input).
	Columns []Column `json:"columns,omitempty"`
	// Card carries the output cardinality annotations.
	Card CardJSON `json:"card"`
	// Table and ScanCard apply to TableScan nodes.
	Table    string  `json:"table,omitempty"`
	ScanCard float64 `json:"scan_card,omitempty"`
	// Predicates lists pushed-down scan predicates by class.
	Predicates []Predicate `json:"predicates,omitempty"`
	// BuildWidth is the bytes per tuple a HashJoin materializes in its hash
	// table (keys + payload).
	BuildWidth int `json:"build_width,omitempty"`
	// Children.
	Left  *Node `json:"left,omitempty"`
	Right *Node `json:"right,omitempty"`
}

// Column is one output column.
type Column struct {
	Name string `json:"name"`
	// Type is BIGINT, DOUBLE, or VARCHAR.
	Type string `json:"type"`
}

// CardJSON mirrors plan.Card.
type CardJSON struct {
	True float64 `json:"true"`
	Est  float64 `json:"est"`
}

// Predicate is one pushed-down scan predicate: its class (comparison,
// between, in, like, other) and its selectivity annotations.
type Predicate struct {
	Class   string  `json:"class"`
	SelTrue float64 `json:"sel_true"`
	SelEst  float64 `json:"sel_est"`
}

// stubPred is a non-executable predicate carrying only a class.
type stubPred struct {
	class expr.Class
}

func (s stubPred) Kind() storage.Type { return storage.Int64 }
func (s stubPred) Class() expr.Class  { return s.class }
func (s stubPred) String() string     { return "<" + s.class.String() + ">" }
func (s stubPred) EvalBool(*expr.Batch, []bool) int {
	panic("planio: decoded plans are not executable")
}

// classFromString parses a predicate class name.
func classFromString(s string) (expr.Class, error) {
	for c := expr.ClassComparison; c <= expr.ClassOther; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("planio: unknown predicate class %q", s)
}

var opNames = map[string]plan.OpType{
	"TableScan":   plan.TableScanOp,
	"Filter":      plan.FilterOp,
	"Map":         plan.MapOp,
	"HashJoin":    plan.HashJoinOp,
	"GroupBy":     plan.GroupByOp,
	"Sort":        plan.SortOp,
	"Window":      plan.WindowOp,
	"Materialize": plan.MaterializeOp,
	"Limit":       plan.LimitOp,
}

func typeFromString(s string) (storage.Type, error) {
	switch s {
	case "BIGINT":
		return storage.Int64, nil
	case "DOUBLE":
		return storage.Float64, nil
	case "VARCHAR":
		return storage.String, nil
	default:
		return 0, fmt.Errorf("planio: unknown column type %q", s)
	}
}

// Encode converts an annotated plan into its JSON form.
func Encode(n *plan.Node) *Node {
	if n == nil {
		return nil
	}
	out := &Node{
		Op:   n.Op.String(),
		Card: CardJSON{True: n.OutCard.True, Est: n.OutCard.Est},
	}
	for _, cm := range n.Schema {
		out.Columns = append(out.Columns, Column{Name: cm.Name, Type: cm.Kind.String()})
	}
	if n.Op == plan.TableScanOp {
		out.Table = n.TableName
		out.ScanCard = n.ScanCard
		for i, p := range n.Predicates {
			out.Predicates = append(out.Predicates, Predicate{
				Class:   p.Class().String(),
				SelTrue: n.PredSel[i].True,
				SelEst:  n.PredSel[i].Est,
			})
		}
	}
	if n.Op == plan.HashJoinOp {
		w := 0
		for _, ci := range n.BuildKeys {
			w += n.Left.Schema[ci].Kind.Width()
		}
		for _, ci := range n.BuildPayload {
			w += n.Left.Schema[ci].Kind.Width()
		}
		out.BuildWidth = w
	}
	out.Left = Encode(n.Left)
	out.Right = Encode(n.Right)
	return out
}

// Decode converts the JSON form back into a featurizable plan. Decoded scans
// carry no table data; executing the plan is not possible.
func Decode(j *Node) (*plan.Node, error) {
	if j == nil {
		return nil, nil
	}
	op, ok := opNames[j.Op]
	if !ok {
		return nil, fmt.Errorf("planio: unknown operator %q", j.Op)
	}
	n := &plan.Node{Op: op}
	n.OutCard = plan.Card{True: j.Card.True, Est: j.Card.Est}

	var err error
	if n.Left, err = Decode(j.Left); err != nil {
		return nil, err
	}
	if n.Right, err = Decode(j.Right); err != nil {
		return nil, err
	}

	// Schema: explicit columns, or inherited from the left child.
	if len(j.Columns) > 0 {
		for _, c := range j.Columns {
			k, err := typeFromString(c.Type)
			if err != nil {
				return nil, err
			}
			n.Schema = append(n.Schema, plan.ColMeta{Name: c.Name, Kind: k})
		}
	} else if n.Left != nil {
		n.Schema = n.Left.Schema
	} else {
		return nil, fmt.Errorf("planio: %s node without columns or input", j.Op)
	}

	switch op {
	case plan.TableScanOp:
		n.TableName = j.Table
		n.ScanCard = j.ScanCard
		for _, p := range j.Predicates {
			c, err := classFromString(p.Class)
			if err != nil {
				return nil, err
			}
			n.Predicates = append(n.Predicates, stubPred{class: c})
			n.PredSel = append(n.PredSel, plan.Card{True: p.SelTrue, Est: p.SelEst})
		}
	case plan.HashJoinOp:
		if n.Left == nil || n.Right == nil {
			return nil, fmt.Errorf("planio: HashJoin requires two children")
		}
		if err := synthesizeBuild(n, j.BuildWidth); err != nil {
			return nil, err
		}
	case plan.FilterOp, plan.MapOp, plan.GroupByOp, plan.SortOp, plan.WindowOp, plan.MaterializeOp, plan.LimitOp:
		if n.Left == nil {
			return nil, fmt.Errorf("planio: %s requires an input", j.Op)
		}
	}
	return n, nil
}

// synthesizeBuild reconstructs minimal BuildKeys/ProbeKeys lists and records
// the materialized width explicitly (plan.Node.BuildWidth), so the
// featurizer's width computation round-trips exactly.
func synthesizeBuild(n *plan.Node, width int) error {
	if len(n.Left.Schema) == 0 {
		return fmt.Errorf("planio: HashJoin build side has no columns")
	}
	n.BuildKeys = []int{0}
	n.ProbeKeys = []int{0}
	n.BuildWidth = width
	return nil
}

// Marshal renders a plan as indented JSON.
func Marshal(n *plan.Node) ([]byte, error) {
	return json.MarshalIndent(Encode(n), "", "  ")
}

// Unmarshal parses a JSON plan document.
func Unmarshal(data []byte) (*plan.Node, error) {
	var j Node
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("planio: parse: %w", err)
	}
	return Decode(&j)
}
