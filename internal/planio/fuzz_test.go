package planio

import (
	"bytes"
	"testing"

	"t3/internal/engine/plan"
	"t3/internal/genplan"
)

// FuzzPlanIO feeds arbitrary bytes through Unmarshal. Inputs that parse must
// reach a marshal fixed point: the first Marshal canonicalizes (explicit
// schemas everywhere, build width recomputed from the synthesized keys), and
// from then on Unmarshal∘Marshal must be the identity on bytes.
func FuzzPlanIO(f *testing.F) {
	f.Add([]byte(`{"op":"TableScan","columns":[{"name":"k","type":"BIGINT"}],"card":{"true":8,"est":6},"table":"t0","scan_card":8}`))
	f.Add([]byte(`{"op":"Limit","card":{},"left":{"op":"TableScan","columns":[{"name":"k","type":"BIGINT"}],"card":{}}}`))
	f.Add([]byte(`{"op":"HashJoin","card":{"true":4,"est":4},"build_width":16,` +
		`"left":{"op":"TableScan","columns":[{"name":"a","type":"BIGINT"},{"name":"s","type":"VARCHAR"}],"card":{}},` +
		`"right":{"op":"TableScan","columns":[{"name":"b","type":"DOUBLE"}],"card":{}}}`))
	f.Add([]byte(`{"op":"TableScan","columns":[{"name":"x","type":"DOUBLE"}],"card":{"true":1e100,"est":-3},` +
		`"predicates":[{"class":"comparison","sel_true":0.5,"sel_est":2}]}`))
	f.Add([]byte(`{"op":"FlumeScan"}`))
	f.Add([]byte(`{]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p1, err := Unmarshal(data)
		if err != nil {
			return // malformed input must only yield an error, never a panic
		}
		m1, err := Marshal(p1)
		if err != nil {
			t.Fatalf("marshal of freshly decoded plan: %v", err)
		}
		p2, err := Unmarshal(m1)
		if err != nil {
			t.Fatalf("re-parse of own output: %v\n%s", err, m1)
		}
		m2, err := Marshal(p2)
		if err != nil {
			t.Fatalf("second marshal: %v", err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("marshal not a fixed point:\nfirst:\n%s\nsecond:\n%s", m1, m2)
		}
	})
}

// samePlanAnnotations walks two plans in lockstep and compares every field
// the JSON form promises to carry: operator, schema, cardinalities, scan
// identity, and predicate classes with their selectivities.
func samePlanAnnotations(t *testing.T, orig, back *plan.Node, path string) {
	t.Helper()
	if (orig == nil) != (back == nil) {
		t.Fatalf("%s: child present only on one side", path)
	}
	if orig == nil {
		return
	}
	if orig.Op != back.Op {
		t.Fatalf("%s: op %v -> %v", path, orig.Op, back.Op)
	}
	if orig.OutCard != back.OutCard {
		t.Fatalf("%s: card %+v -> %+v", path, orig.OutCard, back.OutCard)
	}
	if len(orig.Schema) != len(back.Schema) {
		t.Fatalf("%s: schema width %d -> %d", path, len(orig.Schema), len(back.Schema))
	}
	for i := range orig.Schema {
		if orig.Schema[i] != back.Schema[i] {
			t.Fatalf("%s: column %d: %+v -> %+v", path, i, orig.Schema[i], back.Schema[i])
		}
	}
	if orig.Op == plan.TableScanOp {
		if orig.TableName != back.TableName || orig.ScanCard != back.ScanCard {
			t.Fatalf("%s: scan %s/%g -> %s/%g", path, orig.TableName, orig.ScanCard, back.TableName, back.ScanCard)
		}
		if len(orig.Predicates) != len(back.Predicates) {
			t.Fatalf("%s: predicate count %d -> %d", path, len(orig.Predicates), len(back.Predicates))
		}
		for i := range orig.Predicates {
			if orig.Predicates[i].Class() != back.Predicates[i].Class() {
				t.Fatalf("%s: predicate %d class changed", path, i)
			}
			if orig.PredSel[i] != back.PredSel[i] {
				t.Fatalf("%s: predicate %d selectivity %+v -> %+v", path, i, orig.PredSel[i], back.PredSel[i])
			}
		}
	}
	samePlanAnnotations(t, orig.Left, back.Left, path+".L")
	samePlanAnnotations(t, orig.Right, back.Right, path+".R")
}

// TestRoundtripGeneratedPlans round-trips generator output: every annotation
// the featurizer reads survives Marshal→Unmarshal, and the marshaled form is
// idempotent after canonicalization. Hostile (NaN/Inf) annotation cases are
// excluded because JSON cannot represent them.
func TestRoundtripGeneratedPlans(t *testing.T) {
	tripped := 0
	for seed := int64(0); seed < 60; seed++ {
		for sc := genplan.Scenario(0); sc < genplan.NumScenarios; sc++ {
			c := genplan.Generate(seed, sc)
			if !c.FiniteCards {
				continue
			}
			m1, err := Marshal(c.Root)
			if err != nil {
				t.Fatalf("seed=%d scenario=%s: marshal: %v", seed, sc, err)
			}
			back, err := Unmarshal(m1)
			if err != nil {
				t.Fatalf("seed=%d scenario=%s: unmarshal: %v", seed, sc, err)
			}
			samePlanAnnotations(t, c.Root, back, "root")

			m2, err := Marshal(back)
			if err != nil {
				t.Fatalf("seed=%d scenario=%s: re-marshal: %v", seed, sc, err)
			}
			back2, err := Unmarshal(m2)
			if err != nil {
				t.Fatalf("seed=%d scenario=%s: re-unmarshal: %v", seed, sc, err)
			}
			m3, err := Marshal(back2)
			if err != nil {
				t.Fatalf("seed=%d scenario=%s: third marshal: %v", seed, sc, err)
			}
			if !bytes.Equal(m2, m3) {
				t.Fatalf("seed=%d scenario=%s: canonical form not a fixed point", seed, sc)
			}
			tripped++
		}
	}
	if tripped < 100 {
		t.Fatalf("only %d finite-annotation cases round-tripped; generator drifted?", tripped)
	}
}
