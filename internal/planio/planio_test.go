package planio

import (
	"testing"

	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/feature"
	"t3/internal/workload"
)

// benchPlan returns an annotated multi-pipeline plan.
func benchPlan(t *testing.T) *plan.Node {
	t.Helper()
	in := workload.MustGenerate(workload.TPCHSpec("tpch_pio", 0.01, 3))
	qs := workload.TPCHBenchmarkQueries(in)
	root := qs[2].Root // q5: joins, filters, group-by, sort
	if err := exec.AnnotateTrueCards(root); err != nil {
		t.Fatal(err)
	}
	return root
}

func TestRoundtripPreservesFeatureVectors(t *testing.T) {
	root := benchPlan(t)
	data, err := Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}

	reg := feature.NewDefaultRegistry()
	origVecs, origPs := reg.PlanVectors(root, plan.TrueCards)
	backVecs, backPs := reg.PlanVectors(back, plan.TrueCards)
	if len(origVecs) != len(backVecs) {
		t.Fatalf("pipeline count changed: %d -> %d", len(origVecs), len(backVecs))
	}
	for i := range origVecs {
		if feature.SourceCard(origPs[i], plan.TrueCards) != feature.SourceCard(backPs[i], plan.TrueCards) {
			t.Errorf("pipeline %d: source card changed", i)
		}
		for f := range origVecs[i] {
			if origVecs[i][f] != backVecs[i][f] {
				t.Errorf("pipeline %d feature %s: %v -> %v",
					i, reg.Names()[f], origVecs[i][f], backVecs[i][f])
			}
		}
	}
}

func TestDecodedPlanIsNotExecutable(t *testing.T) {
	root := benchPlan(t)
	data, err := Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Run(back, false); err == nil {
		t.Fatal("decoded plan executed — scans should have no bound tables")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := map[string]string{
		"bad op":       `{"op":"FlumeScan"}`,
		"no columns":   `{"op":"TableScan","card":{"true":1,"est":1}}`,
		"bad type":     `{"op":"TableScan","columns":[{"name":"x","type":"BLOB"}],"card":{}}`,
		"bad class":    `{"op":"TableScan","columns":[{"name":"x","type":"BIGINT"}],"predicates":[{"class":"regex"}],"card":{}}`,
		"join 1 child": `{"op":"HashJoin","left":{"op":"TableScan","columns":[{"name":"x","type":"BIGINT"}],"card":{}},"card":{}}`,
		"lonely limit": `{"op":"Limit","card":{}}`,
		"not json":     `{]`,
	}
	for name, doc := range cases {
		if _, err := Unmarshal([]byte(doc)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestEncodeNilIsNil(t *testing.T) {
	if Encode(nil) != nil {
		t.Fatal("Encode(nil) != nil")
	}
	n, err := Decode(nil)
	if err != nil || n != nil {
		t.Fatal("Decode(nil) should be nil, nil")
	}
}
