package sql

import (
	"math"
	"strings"
	"testing"

	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/workload"
)

func TestLex(t *testing.T) {
	toks, err := Lex("SELECT a.b, 'it''s', 3.14 FROM t WHERE x <= 5 -- comment\nAND y <> 2")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a", ".", "b", ",", "it's", ",", "3.14", "FROM", "t",
		"WHERE", "x", "<=", "5", "AND", "y", "<>", "2", ""}
	if len(texts) != len(want) {
		t.Fatalf("got %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d: %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", "a ! b", "a @ b"} {
		if _, err := Lex(bad); err == nil {
			t.Errorf("%q: expected lex error", bad)
		}
	}
}

func TestParseRoundtrip(t *testing.T) {
	cases := []string{
		"SELECT * FROM t",
		"SELECT a, b AS c FROM t WHERE (a = 1)",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 2 ORDER BY a ASC LIMIT 10",
		"SELECT COUNT(*), SUM(x) AS s FROM t GROUP BY y",
		"SELECT a FROM t1, t2 WHERE (t1.id = t2.fk)",
		"SELECT a FROM t1 JOIN t2 ON (t1.id = t2.fk)",
		"SELECT a FROM t WHERE a IN (1, 2, 3)",
		"SELECT a FROM t WHERE s LIKE 'ab%'",
		"SELECT a FROM t WHERE ((a = 1) OR (b = 2))",
	}
	for _, q := range cases {
		stmt, err := Parse(q)
		if err != nil {
			t.Errorf("%s: %v", q, err)
			continue
		}
		// Re-parse the normalized form: must be stable.
		again, err := Parse(stmt.String())
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", stmt.String(), err)
			continue
		}
		if stmt.String() != again.String() {
			t.Errorf("not a fixpoint: %q vs %q", stmt.String(), again.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t LIMIT -1",
		"SELECT * FROM t extra garbage here",
		"SELECT a FROM t WHERE a IN ()",
		"SELECT a FROM t WHERE a LIKE 5",
		"UPDATE t SET x = 1",
	}
	for _, q := range cases {
		if _, err := Parse(q); err == nil {
			t.Errorf("%q: expected parse error", q)
		}
	}
}

// tpch builds a small instance for planner tests.
func tpch(t *testing.T) (*workload.Instance, *Planner) {
	t.Helper()
	in := workload.MustGenerate(workload.TPCHSpec("tpch_sql", 0.01, 5))
	return in, NewPlanner(in.DB, in.Stats)
}

// run plans and executes a query, returning the result.
func run(t *testing.T, pl *Planner, q string) *exec.RunResult {
	t.Helper()
	root, err := pl.PlanString(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	ps := plan.Decompose(root)
	if err := plan.ValidatePipelines(ps); err != nil {
		t.Fatalf("%s: invalid pipelines: %v", q, err)
	}
	res, err := exec.Run(root, true)
	if err != nil {
		t.Fatalf("%s: execution: %v", q, err)
	}
	return res
}

func TestPlanSimpleScan(t *testing.T) {
	in, pl := tpch(t)
	res := run(t, pl, "SELECT id, o_totalprice FROM orders WHERE o_totalprice > 400000")
	// Reference count.
	ord := in.Table("orders")
	want := 0
	for _, v := range ord.Column("o_totalprice").Flts {
		if v > 400000 {
			want++
		}
	}
	if res.Rows != want {
		t.Fatalf("rows = %d, want %d", res.Rows, want)
	}
	if len(res.Output.Cols) != 2 {
		t.Fatalf("output columns = %d", len(res.Output.Cols))
	}
}

func TestPlanPushdownIntoScan(t *testing.T) {
	_, pl := tpch(t)
	root, err := pl.PlanString("SELECT id FROM customer WHERE c_acctbal BETWEEN 0 AND 100 AND c_mktsegment LIKE 'b%'")
	if err != nil {
		t.Fatal(err)
	}
	// Both predicates must be pushed into the scan, not Filter nodes.
	var scans, filters int
	root.Walk(func(n *plan.Node) {
		switch n.Op {
		case plan.TableScanOp:
			scans++
			if len(n.Predicates) != 2 {
				t.Errorf("scan has %d pushed predicates, want 2", len(n.Predicates))
			}
		case plan.FilterOp:
			filters++
		}
	})
	if scans != 1 || filters != 0 {
		t.Errorf("scans=%d filters=%d", scans, filters)
	}
}

func TestPlanJoinMatchesReference(t *testing.T) {
	in, pl := tpch(t)
	res := run(t, pl, `SELECT o.id, c.c_acctbal FROM orders o, customer c
		WHERE o.o_custkey = c.id AND c.c_acctbal > 9000`)
	cust := in.Table("customer")
	ord := in.Table("orders")
	rich := map[int64]bool{}
	for i, v := range cust.Column("c_acctbal").Flts {
		if v > 9000 {
			rich[cust.Column("id").Ints[i]] = true
		}
	}
	want := 0
	for _, ck := range ord.Column("o_custkey").Ints {
		if rich[ck] {
			want++
		}
	}
	if res.Rows != want {
		t.Fatalf("join rows = %d, want %d", res.Rows, want)
	}
}

func TestPlanThreeWayJoinWithExplicitJoinSyntax(t *testing.T) {
	_, pl := tpch(t)
	res := run(t, pl, `SELECT COUNT(*) AS n
		FROM lineitem l
		JOIN orders o ON l.l_orderkey = o.id
		JOIN customer c ON o.o_custkey = c.id
		WHERE c.c_acctbal > 0`)
	if res.Rows != 1 {
		t.Fatalf("aggregate rows = %d", res.Rows)
	}
	if res.Output.Cols[0].Ints[0] <= 0 {
		t.Fatal("three-way join returned no tuples")
	}
}

func TestPlanAggregation(t *testing.T) {
	in, pl := tpch(t)
	res := run(t, pl, `SELECT c_mktsegment, COUNT(*) AS n, AVG(c_acctbal) AS bal
		FROM customer GROUP BY c_mktsegment ORDER BY n DESC`)
	cust := in.Table("customer")
	ref := map[string]int64{}
	for _, s := range cust.Column("c_mktsegment").Strs {
		ref[s]++
	}
	if res.Rows != len(ref) {
		t.Fatalf("groups = %d, want %d", res.Rows, len(ref))
	}
	// Descending count order.
	counts := res.Output.Cols[1].Ints
	for i := 1; i < len(counts); i++ {
		if counts[i-1] < counts[i] {
			t.Fatal("ORDER BY n DESC violated")
		}
	}
	for i := 0; i < res.Rows; i++ {
		seg := res.Output.Cols[0].Strs[i]
		if counts[i] != ref[seg] {
			t.Errorf("segment %s: count %d, want %d", seg, counts[i], ref[seg])
		}
	}
}

func TestPlanComputedAggArgument(t *testing.T) {
	in, pl := tpch(t)
	res := run(t, pl, `SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
		FROM lineitem WHERE l_quantity < 10`)
	if res.Rows != 1 {
		t.Fatalf("rows = %d", res.Rows)
	}
	li := in.Table("lineitem")
	want := 0.0
	q := li.Column("l_quantity").Ints
	ep := li.Column("l_extendedprice").Flts
	d := li.Column("l_discount").Flts
	for i := range q {
		if q[i] < 10 {
			want += ep[i] * (1 - d[i])
		}
	}
	got := res.Output.Cols[0].Flts[0]
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("revenue = %v, want %v", got, want)
	}
}

func TestPlanOrDisjunction(t *testing.T) {
	in, pl := tpch(t)
	res := run(t, pl, "SELECT id FROM part WHERE p_size <= 2 OR p_size >= 49")
	p := in.Table("part")
	want := 0
	for _, v := range p.Column("p_size").Ints {
		if v <= 2 || v >= 49 {
			want++
		}
	}
	if res.Rows != want {
		t.Fatalf("rows = %d, want %d", res.Rows, want)
	}
}

func TestPlanComputedSelectItem(t *testing.T) {
	_, pl := tpch(t)
	res := run(t, pl, "SELECT l_extendedprice / 100 AS cents FROM lineitem LIMIT 5")
	if res.Rows != 5 {
		t.Fatalf("rows = %d", res.Rows)
	}
	if res.Output.Cols[0].Name != "cents" {
		t.Errorf("output name = %q", res.Output.Cols[0].Name)
	}
}

func TestPlanStarAndLimit(t *testing.T) {
	in, pl := tpch(t)
	res := run(t, pl, "SELECT * FROM nation LIMIT 7")
	if res.Rows != 7 {
		t.Fatalf("rows = %d", res.Rows)
	}
	if len(res.Output.Cols) != len(in.Table("nation").Columns) {
		t.Fatalf("star expanded to %d columns", len(res.Output.Cols))
	}
}

func TestPlanEstimatesAnnotated(t *testing.T) {
	_, pl := tpch(t)
	root, err := pl.PlanString("SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity <= 25")
	if err != nil {
		t.Fatal(err)
	}
	var scan *plan.Node
	root.Walk(func(n *plan.Node) {
		if n.Op == plan.TableScanOp {
			scan = n
		}
	})
	if scan.OutCard.Est <= 0 {
		t.Fatalf("scan estimate missing: %v", scan.OutCard)
	}
	// Roughly half of quantities are <= 25.
	frac := scan.OutCard.Est / scan.ScanCard
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("estimated selectivity %v, want ~0.5", frac)
	}
}

func TestPlanErrors(t *testing.T) {
	_, pl := tpch(t)
	cases := map[string]string{
		"unknown table":    "SELECT x FROM nosuch",
		"unknown column":   "SELECT nosuch FROM orders",
		"ambiguous column": "SELECT id FROM orders, customer WHERE orders.o_custkey = customer.id",
		"cross product":    "SELECT orders.id FROM orders, customer",
		"non-grouped col":  "SELECT o_orderdate, COUNT(*) AS n FROM orders GROUP BY o_orderpriority",
		"order by missing": "SELECT id FROM orders ORDER BY nosuch",
		"type mismatch":    "SELECT id FROM orders WHERE o_orderpriority > 5",
		"dup table names":  "SELECT orders.id FROM orders, orders",
	}
	for name, q := range cases {
		if _, err := pl.PlanString(q); err == nil {
			t.Errorf("%s (%q): expected plan error", name, q)
		}
	}
}

func TestPlanPipelinesFeaturizable(t *testing.T) {
	_, pl := tpch(t)
	root, err := pl.PlanString(`SELECT o_orderpriority, COUNT(*) AS n
		FROM orders o JOIN lineitem l ON l.l_orderkey = o.id
		WHERE l.l_shipdate BETWEEN 9000 AND 9500
		GROUP BY o_orderpriority ORDER BY n DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.AnnotateTrueCards(root); err != nil {
		t.Fatal(err)
	}
	ps := plan.Decompose(root)
	if len(ps) < 3 {
		t.Fatalf("only %d pipelines", len(ps))
	}
	if err := plan.ValidatePipelines(ps); err != nil {
		t.Fatal(err)
	}
}

func TestStatementStringRendering(t *testing.T) {
	stmt, err := Parse("select a, count(*) as n from t1 join t2 on t1.x = t2.y where a > 3 group by a order by n desc limit 5")
	if err != nil {
		t.Fatal(err)
	}
	s := stmt.String()
	for _, want := range []string{"SELECT", "JOIN t2 ON", "GROUP BY a", "ORDER BY n DESC", "LIMIT 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered statement missing %q: %s", want, s)
		}
	}
}

func TestPlanHaving(t *testing.T) {
	in, pl := tpch(t)
	res := run(t, pl, `SELECT c_mktsegment, COUNT(*) AS n FROM customer
		GROUP BY c_mktsegment HAVING n >= 20 ORDER BY n DESC`)
	cust := in.Table("customer")
	ref := map[string]int64{}
	for _, s := range cust.Column("c_mktsegment").Strs {
		ref[s]++
	}
	want := 0
	for _, c := range ref {
		if c >= 20 {
			want++
		}
	}
	if res.Rows != want {
		t.Fatalf("having groups = %d, want %d", res.Rows, want)
	}
	for i := 0; i < res.Rows; i++ {
		if res.Output.Cols[1].Ints[i] < 20 {
			t.Fatal("HAVING predicate violated")
		}
	}
}

func TestPlanDistinct(t *testing.T) {
	in, pl := tpch(t)
	res := run(t, pl, "SELECT DISTINCT c_mktsegment FROM customer")
	cust := in.Table("customer")
	ref := map[string]bool{}
	for _, s := range cust.Column("c_mktsegment").Strs {
		ref[s] = true
	}
	if res.Rows != len(ref) {
		t.Fatalf("distinct rows = %d, want %d", res.Rows, len(ref))
	}
	seen := map[string]bool{}
	for i := 0; i < res.Rows; i++ {
		v := res.Output.Cols[0].Strs[i]
		if seen[v] {
			t.Fatalf("duplicate %q in DISTINCT output", v)
		}
		seen[v] = true
	}
}

func TestPlanHavingErrors(t *testing.T) {
	_, pl := tpch(t)
	if _, err := pl.PlanString("SELECT id FROM orders HAVING id > 5"); err == nil {
		t.Error("HAVING without grouping should fail")
	}
	if _, err := pl.PlanString("SELECT c_mktsegment, COUNT(*) AS n FROM customer GROUP BY c_mktsegment HAVING nosuch > 5"); err == nil {
		t.Error("HAVING with unknown column should fail")
	}
}

func TestParseDistinctHavingRoundtrip(t *testing.T) {
	stmt, err := Parse("SELECT DISTINCT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Distinct || !strings.Contains(stmt.String(), "DISTINCT") {
		t.Error("DISTINCT lost")
	}
	stmt2, err := Parse("SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING n > 3")
	if err != nil {
		t.Fatal(err)
	}
	if stmt2.Having == nil || !strings.Contains(stmt2.String(), "HAVING") {
		t.Error("HAVING lost")
	}
}

func TestPlanResidualCrossTableFilter(t *testing.T) {
	in, pl := tpch(t)
	// Non-equi cross-table predicate: cannot be pushed down or used as a
	// join edge; must become a residual Filter above the join.
	root, err := pl.PlanString(`SELECT o.id FROM orders o, lineitem l
		WHERE l.l_orderkey = o.id AND l.l_shipdate < o.o_orderdate`)
	if err != nil {
		t.Fatal(err)
	}
	var filters int
	root.Walk(func(n *plan.Node) {
		if n.Op == plan.FilterOp {
			filters++
		}
	})
	if filters != 1 {
		t.Fatalf("residual filters = %d, want 1", filters)
	}
	res, err := exec.Run(root, false)
	if err != nil {
		t.Fatal(err)
	}
	// Reference.
	ord := in.Table("orders")
	li := in.Table("lineitem")
	dates := map[int64]int64{}
	for i, id := range ord.Column("id").Ints {
		dates[id] = ord.Column("o_orderdate").Ints[i]
	}
	want := 0
	lk := li.Column("l_orderkey").Ints
	ls := li.Column("l_shipdate").Ints
	for i := range lk {
		if ls[i] < dates[lk[i]] {
			want++
		}
	}
	if res.Rows != want {
		t.Fatalf("rows = %d, want %d", res.Rows, want)
	}
}

func TestPlanLiteralOnLeft(t *testing.T) {
	in, pl := tpch(t)
	a := run(t, pl, "SELECT id FROM orders WHERE 400000 < o_totalprice")
	b := run(t, pl, "SELECT id FROM orders WHERE o_totalprice > 400000")
	if a.Rows != b.Rows {
		t.Fatalf("mirrored comparison: %d vs %d rows", a.Rows, b.Rows)
	}
	_ = in
}

func TestPlanAndInsideOr(t *testing.T) {
	in, pl := tpch(t)
	res := run(t, pl, `SELECT id FROM part
		WHERE (p_size <= 5 AND p_retailprice < 1500) OR p_size >= 45`)
	p := in.Table("part")
	sizes := p.Column("p_size").Ints
	prices := p.Column("p_retailprice").Flts
	want := 0
	for i := range sizes {
		if (sizes[i] <= 5 && prices[i] < 1500) || sizes[i] >= 45 {
			want++
		}
	}
	if res.Rows != want {
		t.Fatalf("rows = %d, want %d", res.Rows, want)
	}
}

func TestParseUnaryMinus(t *testing.T) {
	_, pl := tpch(t)
	res := run(t, pl, "SELECT id FROM supplier WHERE s_acctbal < -500")
	res2 := run(t, pl, "SELECT id FROM supplier WHERE s_acctbal BETWEEN -999 AND -500")
	if res2.Rows > res.Rows {
		t.Fatalf("between subset larger than superset: %d > %d", res2.Rows, res.Rows)
	}
	// Unary minus over an expression (not a literal).
	res3 := run(t, pl, "SELECT -(s_acctbal) AS neg FROM supplier LIMIT 3")
	if res3.Rows != 3 || res3.Output.Cols[0].Name != "neg" {
		t.Fatalf("negated expression select failed: %+v", res3.Output.Cols)
	}
}

func TestUnparseHavingStylePlan(t *testing.T) {
	in, pl := tpch(t)
	root, err := pl.PlanString(`SELECT c_mktsegment, COUNT(*) AS n FROM customer
		GROUP BY c_mktsegment HAVING n >= 10 ORDER BY n DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	text, err := Unparse(root)
	if err != nil {
		t.Fatal(err)
	}
	// The grouped block must be wrapped in a derived table so the filter
	// can apply above the aggregation.
	for _, want := range []string{"(SELECT", "GROUP BY", ") d", "WHERE", "ORDER BY", "LIMIT 3"} {
		if !strings.Contains(text, want) {
			t.Fatalf("unparsed HAVING plan missing %q:\n%s", want, text)
		}
	}
	_ = in
}

func TestUnparseDistinctPlan(t *testing.T) {
	_, pl := tpch(t)
	root, err := pl.PlanString("SELECT DISTINCT c_mktsegment FROM customer")
	if err != nil {
		t.Fatal(err)
	}
	text, err := Unparse(root)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "GROUP BY") {
		t.Fatalf("distinct should unparse as GROUP BY: %s", text)
	}
}
