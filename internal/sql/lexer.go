// Package sql implements a small SQL front-end for the engine: a lexer,
// recursive-descent parser, and planner that turns SELECT statements into
// annotated physical plans over a database instance.
//
// The supported subset covers the query shapes of the paper's workloads:
// projections, arithmetic, WHERE conjunctions (comparisons, BETWEEN, IN,
// LIKE), inner equi-joins (comma syntax or JOIN ... ON), GROUP BY with
// aggregates, ORDER BY, and LIMIT. The planner pushes single-table
// predicates into scans, orders joins greedily by estimated cardinality, and
// produces the same plan.Node trees the rest of the system featurizes,
// predicts, and executes.
package sql

import (
	"fmt"
	"strings"
)

// TokenKind classifies lexer tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol // ( ) , . * + - / = < > <= >= <>
)

// Token is one lexical element with its source position.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased
	Pos  int
}

// keywords recognized by the lexer.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AND": true, "OR": true, "NOT": true,
	"AS": true, "ASC": true, "DESC": true, "BETWEEN": true, "IN": true,
	"LIKE": true, "JOIN": true, "INNER": true, "ON": true, "COUNT": true,
	"SUM": true, "MIN": true, "MAX": true, "AVG": true, "DISTINCT": true,
	"HAVING": true,
}

// Lex tokenizes a SQL string.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			seenDot := false
			for i < n && (isDigit(input[i]) || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string at position %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case strings.ContainsRune("(),.*+-/=", rune(c)):
			toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: i})
			i++
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, Token{Kind: TokSymbol, Text: input[i : i+2], Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokSymbol, Text: "<", Pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokSymbol, Text: ">=", Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokSymbol, Text: ">", Pos: i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokSymbol, Text: "<>", Pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected '!' at position %d", i)
			}
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at position %d", c, i)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
