package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SELECT statement.
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, p.errorf("unexpected %q after statement", p.cur().Text)
	}
	return stmt, nil
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

// at reports whether the current token matches kind (and text when given).
func (p *parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

// accept consumes the current token when it matches.
func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a required token or fails.
func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return Token{}, p.errorf("expected %s, found %q", want, p.cur().Text)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if p.accept(TokKeyword, "DISTINCT") {
		stmt.Distinct = true
	}

	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}

	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}

	// Explicit joins.
	for {
		if p.accept(TokKeyword, "INNER") {
			if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		} else if !p.accept(TokKeyword, "JOIN") {
			break
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: ref, On: on})
	}

	if p.accept(TokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.Text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(TokKeyword, "AS") {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.Text
	} else if p.at(TokIdent, "") {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: t.Text}
	if p.accept(TokKeyword, "AS") {
		a, err := p.expect(TokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a.Text
	} else if p.at(TokIdent, "") {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

// Expression grammar (loosest first):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := cmpExpr (AND cmpExpr)*
//	cmpExpr := addExpr ((=|<>|<|<=|>|>=) addExpr
//	           | BETWEEN addExpr AND addExpr
//	           | IN ( literal, ... )
//	           | LIKE 'pattern')?
//	addExpr := mulExpr ((+|-) mulExpr)*
//	mulExpr := unary ((*|/) unary)*
//	unary   := primary | - unary
//	primary := literal | call | column | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseCmp() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "<>", "=", "<", ">"} {
		if p.accept(TokSymbol, op) {
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	if p.accept(TokKeyword, "BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Expr: left, Lo: lo, Hi: hi}, nil
	}
	if p.accept(TokKeyword, "IN") {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			v, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			list = append(list, v)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InExpr{Expr: left, List: list}, nil
	}
	if p.accept(TokKeyword, "LIKE") {
		t, err := p.expect(TokString, "")
		if err != nil {
			return nil, err
		}
		return &LikeExpr{Expr: left, Pattern: t.Text}, nil
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokSymbol, "+"):
			right, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "+", Left: left, Right: right}
		case p.accept(TokSymbol, "-"):
			right, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "-", Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokSymbol, "*"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "*", Left: left, Right: right}
		case p.accept(TokSymbol, "/"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "/", Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if num, ok := e.(*NumberExpr); ok {
			return &NumberExpr{Text: "-" + num.Text, Value: -num.Value, Float: num.Float}, nil
		}
		return &BinaryExpr{Op: "-", Left: &NumberExpr{Text: "0", Value: 0}, Right: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.Text)
		}
		return &NumberExpr{Text: t.Text, Value: v, Float: strings.Contains(t.Text, ".")}, nil
	case t.Kind == TokString:
		p.next()
		return &StringExpr{Value: t.Text}, nil
	case t.Kind == TokKeyword && isAggName(t.Text):
		p.next()
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		call := &CallExpr{Func: t.Text}
		if t.Text == "COUNT" && p.accept(TokSymbol, "*") {
			call.Star = true
		} else {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Arg = arg
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return call, nil
	case t.Kind == TokIdent:
		p.next()
		col := &ColumnExpr{Column: t.Text}
		if p.accept(TokSymbol, ".") {
			c, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			col.Table = t.Text
			col.Column = c.Text
		}
		return col, nil
	case t.Kind == TokSymbol && t.Text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf("unexpected %q in expression", t.Text)
	}
}

func isAggName(s string) bool {
	switch s {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return true
	default:
		return false
	}
}
