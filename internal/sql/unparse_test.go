package sql

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"t3/internal/engine/exec"
	"t3/internal/engine/plan"
	"t3/internal/workload"
)

// execRows runs a plan and returns a canonical multiset fingerprint of the
// result rows.
func execRows(t *testing.T, root *plan.Node) []string {
	t.Helper()
	res, err := exec.Run(root, false)
	if err != nil {
		t.Fatalf("execution: %v", err)
	}
	rows := make([]string, res.Rows)
	for i := 0; i < res.Rows; i++ {
		var parts []string
		for _, c := range res.Output.Cols {
			switch {
			case c.Ints != nil:
				parts = append(parts, fmt.Sprintf("%d", c.Ints[i]))
			case c.Flts != nil:
				// Limited precision so reassociation differences across
				// equivalent plans do not flag false mismatches.
				parts = append(parts, fmt.Sprintf("%.6g", c.Flts[i]))
			default:
				parts = append(parts, c.Strs[i])
			}
		}
		rows[i] = strings.Join(parts, "|")
	}
	sort.Strings(rows)
	return rows
}

func TestUnparseRoundtripThroughParser(t *testing.T) {
	in := workload.MustGenerate(workload.TPCHSpec("tpch_unp", 0.01, 12))
	pl := NewPlanner(in.DB, in.Stats)
	queries := []string{
		"SELECT id, o_totalprice FROM orders WHERE o_totalprice > 300000",
		"SELECT c_mktsegment, COUNT(*) AS n FROM customer GROUP BY c_mktsegment ORDER BY n DESC",
		`SELECT o.o_orderpriority, SUM(l.l_extendedprice) AS s
		 FROM orders o JOIN lineitem l ON l.l_orderkey = o.id
		 WHERE l.l_quantity < 25 GROUP BY o.o_orderpriority`,
		"SELECT id FROM part WHERE p_size BETWEEN 10 AND 20 AND p_brand LIKE 'b%' LIMIT 50",
		"SELECT id FROM supplier WHERE s_acctbal < 0 OR s_acctbal > 9000",
	}
	for _, q := range queries {
		p1, err := pl.PlanString(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		sqlText, err := Unparse(p1)
		if err != nil {
			t.Fatalf("%s: unparse: %v", q, err)
		}
		p2, err := pl.PlanString(sqlText)
		if err != nil {
			t.Fatalf("unparsed SQL does not re-plan: %v\n%s", err, sqlText)
		}
		r1 := execRows(t, p1)
		r2 := execRows(t, p2)
		if len(r1) != len(r2) {
			t.Fatalf("%s: row counts differ %d vs %d\nunparsed: %s", q, len(r1), len(r2), sqlText)
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("%s: row %d differs: %q vs %q\nunparsed: %s", q, i, r1[i], r2[i], sqlText)
			}
		}
	}
}

func TestUnparseGeneratedWorkload(t *testing.T) {
	in := workload.MustGenerate(workload.TPCHSpec("tpch_unp2", 0.01, 13))
	qs := workload.GenerateQueries(in, workload.GenConfig{PerGroup: 2, Seed: 6})
	unparsed := 0
	for _, q := range qs {
		sqlText, err := Unparse(q.Root)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if !strings.HasPrefix(sqlText, "SELECT ") || !strings.Contains(sqlText, " FROM ") {
			t.Fatalf("%s: implausible SQL %q", q.Name, sqlText)
		}
		unparsed++
	}
	if unparsed < 20 {
		t.Fatalf("only %d queries unparsed", unparsed)
	}
}

func TestUnparseFixedBenchmarks(t *testing.T) {
	in := workload.MustGenerate(workload.TPCHSpec("tpch_unp3", 0.01, 14))
	for _, q := range workload.TPCHBenchmarkQueries(in) {
		sqlText, err := Unparse(q.Root)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if !strings.Contains(sqlText, "SELECT") {
			t.Fatalf("%s: %q", q.Name, sqlText)
		}
	}
	// Q5's rendering shows the paper's folded IN/BETWEEN predicates.
	var q5 *workload.Query
	for _, q := range workload.TPCHBenchmarkQueries(in) {
		if strings.HasSuffix(q.Name, "/q5") {
			q5 = q
		}
	}
	sqlText, err := Unparse(q5.Root)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BETWEEN 8 AND 21", "IN (8, 9, 12, 18, 21)", "GROUP BY", "ORDER BY"} {
		if !strings.Contains(sqlText, want) {
			t.Errorf("q5 SQL missing %q:\n%s", want, sqlText)
		}
	}
}

func TestUnparseWindow(t *testing.T) {
	in := workload.MustGenerate(workload.TPCHSpec("tpch_unp4", 0.01, 15))
	var q18 *workload.Query
	for _, q := range workload.TPCHBenchmarkQueries(in) {
		if strings.HasSuffix(q.Name, "/q18") {
			q18 = q
		}
	}
	sqlText, err := Unparse(q18.Root)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sqlText, "RANK() OVER (PARTITION BY") {
		t.Errorf("window rendering missing: %s", sqlText)
	}
}
