package sql_test

import (
	"strings"
	"testing"

	"t3/internal/genplan"
	"t3/internal/sql"
)

// FuzzSQL feeds arbitrary query text through the parser. Malformed input
// must fail with an error, never a panic; input that parses must reach a
// printed-form fixed point: Parse∘String is the identity on String output.
func FuzzSQL(f *testing.F) {
	f.Add("SELECT * FROM t0")
	f.Add("SELECT DISTINCT a, b AS x FROM t0 WHERE a >= 3 AND b <> 0 ORDER BY a DESC LIMIT 7")
	f.Add("SELECT t0.a, t1.b FROM t0, t1 WHERE t0.k = t1.k AND t0.a BETWEEN 1 AND 5")
	f.Add("SELECT g, COUNT(*), SUM(v) FROM t0 GROUP BY g HAVING COUNT(*) > 2")
	f.Add("SELECT s FROM t0 WHERE s LIKE 'al%a' OR s IN ('beta', 'gamma')")
	f.Add("SELECT s FROM t0 WHERE s LIKE 'don''t%'")
	f.Add("SELECT a FROM t0 JOIN t1 ON t0.k = t1.k WHERE a * -2.5 < 1.")
	f.Add("SELECT")
	f.Add("SELECT 'unterminated FROM t0")
	f.Fuzz(func(t *testing.T, q string) {
		stmt, err := sql.Parse(q)
		if err != nil {
			return
		}
		s1 := stmt.String()
		stmt2, err := sql.Parse(s1)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\ninput: %q\nprinted: %q", err, q, s1)
		}
		if s2 := stmt2.String(); s1 != s2 {
			t.Fatalf("printed form not stable:\nfirst:  %q\nsecond: %q", s1, s2)
		}
	})
}

// singleBlock reports whether generated SQL stays inside the parser's
// subset: no derived tables, no window functions.
func singleBlock(q string) bool {
	return !strings.Contains(q, "(SELECT") && !strings.Contains(q, " OVER ")
}

// TestParseGeneratedSQL checks the parser accepts every single-block query
// the generator unparses, and that the parsed form prints stably.
func TestParseGeneratedSQL(t *testing.T) {
	parsed := 0
	for seed := int64(0); seed < 120; seed++ {
		for sc := genplan.Scenario(0); sc < genplan.NumScenarios; sc++ {
			c := genplan.Generate(seed, sc)
			if c.SQL == "" || !singleBlock(c.SQL) {
				continue
			}
			stmt, err := sql.Parse(c.SQL)
			if err != nil {
				t.Fatalf("seed=%d scenario=%s: generated SQL rejected: %v\n%s", seed, sc, err, c.SQL)
			}
			s1 := stmt.String()
			stmt2, err := sql.Parse(s1)
			if err != nil {
				t.Fatalf("seed=%d scenario=%s: printed form rejected: %v\n%s", seed, sc, err, s1)
			}
			if s2 := stmt2.String(); s1 != s2 {
				t.Fatalf("seed=%d scenario=%s: printed form unstable:\n%q\n%q", seed, sc, s1, s2)
			}
			parsed++
		}
	}
	if parsed < 60 {
		t.Fatalf("only %d generated queries hit the parser subset; generator drifted?", parsed)
	}
}
