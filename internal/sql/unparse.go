package sql

import (
	"fmt"
	"strings"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/storage"
)

// Unparse renders a physical plan back into SQL text. It supports the plan
// shapes the generators and the planner produce: scan/filter/map chains,
// hash joins (including breaker inputs, rendered as derived tables),
// grouping, sorting, windows, and limits. The output is standard SQL; note
// that window functions and derived tables are outside the subset this
// package's own parser accepts.
func Unparse(root *plan.Node) (string, error) {
	u := &unparser{}
	b, names, err := u.build(root)
	if err != nil {
		return "", err
	}
	return b.render(names), nil
}

// block accumulates one SELECT block.
type block struct {
	sel     []string // explicit select items; empty means all names
	from    []string
	where   []string
	group   []string
	order   []string
	limit   int  // -1 = none
	grouped bool // a GROUP BY was placed
}

func newBlock() *block { return &block{limit: -1} }

// render assembles the block into SQL, defaulting the select list to names.
func (b *block) render(names []string) string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if len(b.sel) > 0 {
		sb.WriteString(strings.Join(b.sel, ", "))
	} else {
		sb.WriteString(strings.Join(names, ", "))
	}
	sb.WriteString(" FROM " + strings.Join(b.from, ", "))
	if len(b.where) > 0 {
		sb.WriteString(" WHERE " + strings.Join(b.where, " AND "))
	}
	if len(b.group) > 0 {
		sb.WriteString(" GROUP BY " + strings.Join(b.group, ", "))
	}
	if len(b.order) > 0 {
		sb.WriteString(" ORDER BY " + strings.Join(b.order, ", "))
	}
	if b.limit >= 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", b.limit))
	}
	return sb.String()
}

// unparser assigns table and derived-table aliases.
type unparser struct {
	aliasN int
}

func (u *unparser) alias(prefix string) string {
	u.aliasN++
	return fmt.Sprintf("%s%d", prefix, u.aliasN)
}

// build recursively converts a node into a block plus the SQL expressions
// naming its output columns.
func (u *unparser) build(n *plan.Node) (*block, []string, error) {
	switch n.Op {
	case plan.TableScanOp:
		a := u.alias("t")
		b := newBlock()
		b.from = append(b.from, n.TableName+" "+a)
		names := make([]string, len(n.Schema))
		for i, cm := range n.Schema {
			names[i] = a + "." + cm.Name
		}
		for _, p := range n.Predicates {
			s, err := sqlExpr(p, names)
			if err != nil {
				return nil, nil, err
			}
			b.where = append(b.where, s)
		}
		return b, names, nil

	case plan.FilterOp:
		b, names, err := u.build(n.Left)
		if err != nil {
			return nil, nil, err
		}
		if b.grouped {
			b, names = u.wrap(b, names, n.Left.Schema)
		}
		s, err := sqlExpr(n.FilterPred, names)
		if err != nil {
			return nil, nil, err
		}
		b.where = append(b.where, s)
		return b, names, nil

	case plan.MapOp:
		b, names, err := u.build(n.Left)
		if err != nil {
			return nil, nil, err
		}
		if len(b.sel) > 0 {
			// The block already carries an explicit select list (group-by or
			// window output); extending its columns requires a derived table.
			b, names = u.wrap(b, names, n.Left.Schema)
		}
		var out []string
		if !n.MapReplaces() {
			out = append(out, names...)
		}
		for _, e := range n.MapExprs {
			s, err := sqlExpr(e, names)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, s)
		}
		return b, out, nil

	case plan.MaterializeOp:
		return u.build(n.Left)

	case plan.LimitOp:
		b, names, err := u.build(n.Left)
		if err != nil {
			return nil, nil, err
		}
		b.limit = n.LimitN
		return b, names, nil

	case plan.SortOp:
		b, names, err := u.build(n.Left)
		if err != nil {
			return nil, nil, err
		}
		if len(b.order) > 0 {
			b, names = u.wrap(b, names, n.Left.Schema)
		}
		for i, ci := range n.SortCols {
			dir := " ASC"
			if i < len(n.SortDesc) && n.SortDesc[i] {
				dir = " DESC"
			}
			b.order = append(b.order, names[ci]+dir)
		}
		return b, names, nil

	case plan.HashJoinOp:
		// Probe side continues the current block; the build side merges
		// when it is a plain scan chain, otherwise it becomes a derived
		// table.
		pb, pNames, err := u.build(n.Right)
		if err != nil {
			return nil, nil, err
		}
		if pb.grouped || len(pb.sel) > 0 || len(pb.order) > 0 || pb.limit >= 0 {
			pb, pNames = u.wrap(pb, pNames, n.Right.Schema)
		}
		var bNames []string
		if mergeable(n.Left) {
			bb, names, err := u.build(n.Left)
			if err != nil {
				return nil, nil, err
			}
			pb.from = append(pb.from, bb.from...)
			pb.where = append(pb.where, bb.where...)
			bNames = names
		} else {
			bb, names, err := u.build(n.Left)
			if err != nil {
				return nil, nil, err
			}
			sub, subNames := u.derived(bb, names, n.Left.Schema)
			pb.from = append(pb.from, sub)
			bNames = subNames
		}
		for k := range n.BuildKeys {
			pb.where = append(pb.where, bNames[n.BuildKeys[k]]+" = "+pNames[n.ProbeKeys[k]])
		}
		out := append([]string(nil), pNames...)
		for _, ci := range n.BuildPayload {
			out = append(out, bNames[ci])
		}
		return pb, out, nil

	case plan.GroupByOp:
		b, names, err := u.build(n.Left)
		if err != nil {
			return nil, nil, err
		}
		if b.grouped || len(b.sel) > 0 || len(b.order) > 0 || b.limit >= 0 {
			b, names = u.wrap(b, names, n.Left.Schema)
		}
		var out []string
		for _, ci := range n.GroupCols {
			b.group = append(b.group, names[ci])
			b.sel = append(b.sel, names[ci])
			out = append(out, names[ci])
		}
		for i, a := range n.Aggs {
			var item string
			switch a.Fn {
			case plan.AggCount:
				item = "COUNT(*)"
			default:
				item = fmt.Sprintf("%s(%s)", strings.ToUpper(a.Fn.String()), names[a.Col])
			}
			aliased := item + " AS " + n.AggNames[i]
			b.sel = append(b.sel, aliased)
			out = append(out, n.AggNames[i])
		}
		if len(n.GroupCols) == 0 {
			b.group = nil // global aggregate: no GROUP BY clause needed
		}
		b.grouped = true
		return b, out, nil

	case plan.WindowOp:
		b, names, err := u.build(n.Left)
		if err != nil {
			return nil, nil, err
		}
		if b.grouped || len(b.sel) > 0 {
			b, names = u.wrap(b, names, n.Left.Schema)
		}
		var over []string
		if len(n.WinPartition) > 0 {
			parts := make([]string, len(n.WinPartition))
			for i, ci := range n.WinPartition {
				parts[i] = names[ci]
			}
			over = append(over, "PARTITION BY "+strings.Join(parts, ", "))
		}
		if len(n.WinOrder) > 0 {
			ords := make([]string, len(n.WinOrder))
			for i, ci := range n.WinOrder {
				ords[i] = names[ci]
			}
			over = append(over, "ORDER BY "+strings.Join(ords, ", "))
		}
		var fn string
		switch n.WinFunc {
		case plan.WinRowNumber:
			fn = "ROW_NUMBER()"
		case plan.WinRank:
			fn = "RANK()"
		default:
			fn = fmt.Sprintf("SUM(%s)", names[n.WinArg])
		}
		winName := n.Schema[len(n.Schema)-1].Name
		item := fmt.Sprintf("%s OVER (%s) AS %s", fn, strings.Join(over, " "), winName)
		b.sel = append(append([]string(nil), names...), item)
		return b, append(append([]string(nil), names...), winName), nil

	default:
		return nil, nil, fmt.Errorf("sql: cannot unparse operator %v", n.Op)
	}
}

// mergeable reports whether the subtree is a plain scan/filter/map chain
// that can merge into the enclosing block without a derived table.
func mergeable(n *plan.Node) bool {
	for n != nil {
		switch n.Op {
		case plan.TableScanOp:
			return true
		case plan.FilterOp, plan.MapOp:
			n = n.Left
		default:
			return false
		}
	}
	return false
}

// wrap turns a finished block into a derived table so further clauses can
// attach in a fresh outer block.
func (u *unparser) wrap(b *block, names []string, schema []plan.ColMeta) (*block, []string) {
	sub, subNames := u.derived(b, names, schema)
	outer := newBlock()
	outer.from = append(outer.from, sub)
	return outer, subNames
}

// derived renders a block as "(SELECT ... ) alias" with stable column
// aliases, returning the FROM item and the outer column names.
func (u *unparser) derived(b *block, names []string, schema []plan.ColMeta) (string, []string) {
	a := u.alias("d")
	sel := make([]string, len(names))
	outNames := make([]string, len(names))
	for i := range names {
		col := fmt.Sprintf("c%d", i)
		if i < len(schema) && isPlainIdent(schema[i].Name) {
			col = schema[i].Name
		}
		inner := names[i]
		if len(b.sel) > 0 {
			inner = stripAlias(b.sel[i])
		}
		sel[i] = inner + " AS " + col
		outNames[i] = a + "." + col
	}
	inner := *b
	inner.sel = sel
	return "(" + inner.render(nil) + ") " + a, outNames
}

// stripAlias removes a trailing " AS x" from a select item.
func stripAlias(s string) string {
	if i := strings.LastIndex(s, " AS "); i >= 0 {
		return s[:i]
	}
	return s
}

// isPlainIdent reports whether s is usable as a bare SQL identifier.
func isPlainIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || (i > 0 && c >= '0' && c <= '9')) {
			return false
		}
	}
	return true
}

// sqlExpr renders an engine expression as SQL, resolving column references
// through names.
func sqlExpr(e expr.Expr, names []string) (string, error) {
	switch x := e.(type) {
	case *expr.ColRef:
		if x.Idx < 0 || x.Idx >= len(names) {
			return "", fmt.Errorf("sql: column reference %d out of range", x.Idx)
		}
		return names[x.Idx], nil
	case *expr.Const:
		return sqlConst(x), nil
	case *expr.Cmp:
		l, err := sqlExpr(x.Left, names)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s %s %s", l, x.Op, sqlConst(x.Val)), nil
	case *expr.Between:
		c, err := sqlExpr(x.Col, names)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s BETWEEN %s AND %s", c, sqlConst(x.Lo), sqlConst(x.Hi)), nil
	case *expr.InList:
		c, err := sqlExpr(x.Col, names)
		if err != nil {
			return "", err
		}
		var vals []string
		for _, v := range x.Ints {
			vals = append(vals, fmt.Sprintf("%d", v))
		}
		for _, v := range x.Strs {
			vals = append(vals, sqlString(v))
		}
		return fmt.Sprintf("%s IN (%s)", c, strings.Join(vals, ", ")), nil
	case *expr.Like:
		c, err := sqlExpr(x.Col, names)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s LIKE %s", c, sqlString(x.Pattern)), nil
	case *expr.ColCmp:
		l, err := sqlExpr(x.Left, names)
		if err != nil {
			return "", err
		}
		r, err := sqlExpr(x.Right, names)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s %s %s", l, x.Op, r), nil
	case *expr.Or:
		l, err := sqlExpr(x.Left, names)
		if err != nil {
			return "", err
		}
		r, err := sqlExpr(x.Right, names)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s OR %s)", l, r), nil
	case *expr.Arith:
		l, err := sqlExpr(x.Left, names)
		if err != nil {
			return "", err
		}
		r, err := sqlExpr(x.Right, names)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s %s %s)", l, x.Op, r), nil
	default:
		return "", fmt.Errorf("sql: cannot unparse expression %T", e)
	}
}

func sqlConst(c *expr.Const) string {
	switch c.Typ {
	case storage.Int64:
		return fmt.Sprintf("%d", c.I)
	case storage.Float64:
		return fmt.Sprintf("%g", c.F)
	default:
		return sqlString(c.S)
	}
}

func sqlString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
