package sql

import (
	"fmt"
	"strings"
)

// Node is any AST node.
type Node interface {
	String() string
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Joins    []JoinClause
	Where    Expr // nil when absent; conjunctions are flattened by the planner
	GroupBy  []Expr
	Having   Expr // nil when absent; references output names
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// String renders the statement (normalized).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.String())
	}
	sb.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.String())
	}
	for _, j := range s.Joins {
		sb.WriteString(" JOIN " + j.Table.String() + " ON " + j.On.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			parts[i] = g.String()
		}
		sb.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = o.String()
		}
		sb.WriteString(" ORDER BY " + strings.Join(parts, ", "))
	}
	if s.Limit >= 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", s.Limit))
	}
	return sb.String()
}

// SelectItem is one output expression, possibly aliased; Star marks "*".
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// String renders the item.
func (it SelectItem) String() string {
	if it.Star {
		return "*"
	}
	if it.Alias != "" {
		return it.Expr.String() + " AS " + it.Alias
	}
	return it.Expr.String()
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the effective name (alias if present).
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// String renders the reference.
func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Table + " " + t.Alias
	}
	return t.Table
}

// JoinClause is an explicit JOIN ... ON clause.
type JoinClause struct {
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// String renders the item.
func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String() + " ASC"
}

// Expr is a SQL scalar or boolean expression.
type Expr interface {
	Node
}

// ColumnExpr references table.column or a bare column name.
type ColumnExpr struct {
	Table  string // optional qualifier
	Column string
}

// String renders the reference.
func (c *ColumnExpr) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// NumberExpr is a numeric literal; Float reports a decimal point.
type NumberExpr struct {
	Text  string
	Value float64
	Float bool
}

// String renders the literal.
func (n *NumberExpr) String() string { return n.Text }

// StringExpr is a string literal.
type StringExpr struct {
	Value string
}

// String renders the literal.
func (s *StringExpr) String() string { return "'" + strings.ReplaceAll(s.Value, "'", "''") + "'" }

// BinaryExpr is a binary operation: comparison, arithmetic, AND, OR.
type BinaryExpr struct {
	Op    string // =, <>, <, <=, >, >=, +, -, *, /, AND, OR
	Left  Expr
	Right Expr
}

// String renders the expression.
func (b *BinaryExpr) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// BetweenExpr is x BETWEEN lo AND hi.
type BetweenExpr struct {
	Expr   Expr
	Lo, Hi Expr
}

// String renders the expression.
func (b *BetweenExpr) String() string {
	return b.Expr.String() + " BETWEEN " + b.Lo.String() + " AND " + b.Hi.String()
}

// InExpr is x IN (v1, v2, ...).
type InExpr struct {
	Expr Expr
	List []Expr
}

// String renders the expression.
func (e *InExpr) String() string {
	parts := make([]string, len(e.List))
	for i, v := range e.List {
		parts[i] = v.String()
	}
	return e.Expr.String() + " IN (" + strings.Join(parts, ", ") + ")"
}

// LikeExpr is x LIKE 'pattern'.
type LikeExpr struct {
	Expr    Expr
	Pattern string
}

// String renders the expression.
func (e *LikeExpr) String() string {
	return e.Expr.String() + " LIKE '" + strings.ReplaceAll(e.Pattern, "'", "''") + "'"
}

// CallExpr is an aggregate call: COUNT(*), SUM(x), MIN(x), MAX(x), AVG(x).
type CallExpr struct {
	Func string // upper-case
	Star bool   // COUNT(*)
	Arg  Expr   // nil for COUNT(*)
}

// String renders the call.
func (c *CallExpr) String() string {
	if c.Star {
		return c.Func + "(*)"
	}
	return c.Func + "(" + c.Arg.String() + ")"
}
