package sql

import (
	"fmt"
	"math"
	"strings"

	"t3/internal/engine/expr"
	"t3/internal/engine/plan"
	"t3/internal/engine/stats"
	"t3/internal/engine/storage"
)

// Planner turns parsed statements into physical plans over a database.
type Planner struct {
	DB    *storage.Database
	Stats *stats.DBStats
}

// NewPlanner builds a planner; statistics drive greedy join ordering and the
// estimated-cardinality annotations.
func NewPlanner(db *storage.Database, st *stats.DBStats) *Planner {
	if st == nil {
		st = stats.CollectDB(db)
	}
	return &Planner{DB: db, Stats: st}
}

// PlanString parses and plans a SQL string.
func (pl *Planner) PlanString(query string) (*plan.Node, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return pl.Plan(stmt)
}

// Plan converts a parsed SELECT into a physical plan: predicates are pushed
// into scans, joins are ordered greedily by estimated cardinality, and the
// result is annotated with estimated cardinalities.
func (pl *Planner) Plan(stmt *SelectStmt) (*plan.Node, error) {
	b := &binder{pl: pl, stmt: stmt}
	root, err := b.build()
	if err != nil {
		return nil, err
	}
	est := &stats.Estimator{DB: pl.Stats}
	est.Estimate(root)
	return root, nil
}

// boundTable is one FROM/JOIN table with its binding name.
type boundTable struct {
	name string // alias or table name
	tbl  *storage.Table
}

// conjunct is one WHERE/ON conjunct with the tables it references.
type conjunct struct {
	e      Expr
	tables map[string]bool
}

// binder carries the state of planning one statement.
type binder struct {
	pl   *Planner
	stmt *SelectStmt

	tables []boundTable

	// scanCols[t] lists base-column indices scanned from table t, in order.
	scanCols map[string][]int

	// current plan with provenance: out[i] = (tableName, baseColIdx); the
	// qualifier is "" and col -1 for computed columns (tracked by outName).
	root     *plan.Node
	outTab   []string
	outCol   []int
	outNames []string // effective output names (aliases/agg names)
}

// build runs all planning phases.
func (b *binder) build() (*plan.Node, error) {
	if err := b.bindTables(); err != nil {
		return nil, err
	}
	singles, joins, others, err := b.classifyConjuncts()
	if err != nil {
		return nil, err
	}
	if err := b.collectScanColumns(joins); err != nil {
		return nil, err
	}
	if err := b.buildJoins(singles, joins); err != nil {
		return nil, err
	}
	if err := b.applyResidualFilters(others); err != nil {
		return nil, err
	}
	if err := b.buildProjectionAndAggregation(); err != nil {
		return nil, err
	}
	if err := b.buildHaving(); err != nil {
		return nil, err
	}
	if err := b.buildDistinct(); err != nil {
		return nil, err
	}
	if err := b.buildOrderByLimit(); err != nil {
		return nil, err
	}
	return b.root, nil
}

// buildHaving filters aggregated output rows. Column references resolve
// against the output names (group columns and aggregate aliases).
func (b *binder) buildHaving() error {
	if b.stmt.Having == nil {
		return nil
	}
	if len(b.stmt.GroupBy) == 0 && !b.hasAggregates() {
		return fmt.Errorf("sql: HAVING requires GROUP BY or aggregates")
	}
	be, err := b.bindBoolByName(b.stmt.Having)
	if err != nil {
		return err
	}
	b.root = plan.NewFilter(b.root, be)
	return nil
}

// buildDistinct deduplicates the output via a group-by over all output
// columns.
func (b *binder) buildDistinct() error {
	if !b.stmt.Distinct {
		return nil
	}
	cols := make([]int, len(b.outNames))
	for i := range cols {
		cols[i] = i
	}
	b.root = plan.NewGroupBy(b.root, cols, nil, nil)
	return nil
}

// bindBoolByName binds a predicate resolving bare columns against output
// names first (aliases included), falling back to base-table provenance.
func (b *binder) bindBoolByName(e Expr) (expr.BoolExpr, error) {
	resolve := func(c *ColumnExpr) (*expr.ColRef, error) {
		if c.Table == "" {
			if i := b.outIndexByName(c.Column); i >= 0 {
				return expr.Col(i, c.Column, b.root.Schema[i].Kind), nil
			}
		}
		rt, ci, err := b.resolveColumn(c)
		if err != nil {
			return nil, err
		}
		pos := b.outPos(rt, ci)
		if pos < 0 {
			return nil, fmt.Errorf("sql: column %s not available after aggregation", c)
		}
		return expr.Col(pos, c.Column, b.root.Schema[pos].Kind), nil
	}
	return b.bindBool(e, resolve)
}

// bindTables resolves FROM and JOIN table references.
func (b *binder) bindTables() error {
	refs := append([]TableRef(nil), b.stmt.From...)
	for _, j := range b.stmt.Joins {
		refs = append(refs, j.Table)
	}
	seen := map[string]bool{}
	for _, r := range refs {
		t := b.pl.DB.Table(r.Table)
		if t == nil {
			return fmt.Errorf("sql: unknown table %q", r.Table)
		}
		name := r.Name()
		if seen[name] {
			return fmt.Errorf("sql: duplicate table name %q (use aliases)", name)
		}
		seen[name] = true
		b.tables = append(b.tables, boundTable{name: name, tbl: t})
	}
	return nil
}

// table returns the bound table by effective name.
func (b *binder) table(name string) *boundTable {
	for i := range b.tables {
		if b.tables[i].name == name {
			return &b.tables[i]
		}
	}
	return nil
}

// resolveColumn finds the table binding a (possibly unqualified) column.
func (b *binder) resolveColumn(c *ColumnExpr) (tableName string, colIdx int, err error) {
	if c.Table != "" {
		bt := b.table(c.Table)
		if bt == nil {
			return "", 0, fmt.Errorf("sql: unknown table %q in %s", c.Table, c)
		}
		ci := bt.tbl.ColumnIndex(c.Column)
		if ci < 0 {
			return "", 0, fmt.Errorf("sql: table %s has no column %q", c.Table, c.Column)
		}
		return bt.name, ci, nil
	}
	found := ""
	idx := -1
	for i := range b.tables {
		if ci := b.tables[i].tbl.ColumnIndex(c.Column); ci >= 0 {
			if found != "" {
				return "", 0, fmt.Errorf("sql: column %q is ambiguous (%s and %s)", c.Column, found, b.tables[i].name)
			}
			found = b.tables[i].name
			idx = ci
		}
	}
	if found == "" {
		return "", 0, fmt.Errorf("sql: unknown column %q", c.Column)
	}
	return found, idx, nil
}

// exprTables collects the effective table names referenced by an AST
// expression.
func (b *binder) exprTables(e Expr, out map[string]bool) error {
	switch x := e.(type) {
	case *ColumnExpr:
		t, _, err := b.resolveColumn(x)
		if err != nil {
			return err
		}
		out[t] = true
	case *BinaryExpr:
		if err := b.exprTables(x.Left, out); err != nil {
			return err
		}
		return b.exprTables(x.Right, out)
	case *BetweenExpr:
		if err := b.exprTables(x.Expr, out); err != nil {
			return err
		}
		if err := b.exprTables(x.Lo, out); err != nil {
			return err
		}
		return b.exprTables(x.Hi, out)
	case *InExpr:
		if err := b.exprTables(x.Expr, out); err != nil {
			return err
		}
		for _, v := range x.List {
			if err := b.exprTables(v, out); err != nil {
				return err
			}
		}
	case *LikeExpr:
		return b.exprTables(x.Expr, out)
	case *CallExpr:
		if x.Arg != nil {
			return b.exprTables(x.Arg, out)
		}
	case *NumberExpr, *StringExpr:
	}
	return nil
}

// flattenAnd splits a conjunction tree into conjuncts.
func flattenAnd(e Expr, out *[]Expr) {
	if be, ok := e.(*BinaryExpr); ok && be.Op == "AND" {
		flattenAnd(be.Left, out)
		flattenAnd(be.Right, out)
		return
	}
	*out = append(*out, e)
}

// joinEdge is an equi-join conjunct between two tables.
type joinEdge struct {
	ta, tb string
	ca, cb int // base column indices
}

// classifyConjuncts splits WHERE/ON conjuncts into single-table predicates,
// equi-join edges, and residual multi-table predicates.
func (b *binder) classifyConjuncts() (singles map[string][]Expr, joins []joinEdge, others []Expr, err error) {
	var conjuncts []Expr
	if b.stmt.Where != nil {
		flattenAnd(b.stmt.Where, &conjuncts)
	}
	for _, j := range b.stmt.Joins {
		flattenAnd(j.On, &conjuncts)
	}
	singles = map[string][]Expr{}
	for _, c := range conjuncts {
		tabs := map[string]bool{}
		if err := b.exprTables(c, tabs); err != nil {
			return nil, nil, nil, err
		}
		switch len(tabs) {
		case 0:
			return nil, nil, nil, fmt.Errorf("sql: constant predicate %s not supported", c)
		case 1:
			for t := range tabs {
				singles[t] = append(singles[t], c)
			}
		default:
			if edge, ok := b.asJoinEdge(c); ok {
				joins = append(joins, edge)
			} else {
				others = append(others, c)
			}
		}
	}
	return singles, joins, others, nil
}

// asJoinEdge recognizes col = col conjuncts across two tables.
func (b *binder) asJoinEdge(e Expr) (joinEdge, bool) {
	be, ok := e.(*BinaryExpr)
	if !ok || be.Op != "=" {
		return joinEdge{}, false
	}
	lc, lok := be.Left.(*ColumnExpr)
	rc, rok := be.Right.(*ColumnExpr)
	if !lok || !rok {
		return joinEdge{}, false
	}
	lt, lci, err := b.resolveColumn(lc)
	if err != nil {
		return joinEdge{}, false
	}
	rt, rci, err := b.resolveColumn(rc)
	if err != nil || lt == rt {
		return joinEdge{}, false
	}
	return joinEdge{ta: lt, ca: lci, tb: rt, cb: rci}, true
}

// collectScanColumns determines which base columns each table must scan:
// anything referenced by the select list, predicates, grouping, ordering, or
// join keys.
func (b *binder) collectScanColumns(joins []joinEdge) error {
	need := map[string]map[int]bool{}
	add := func(t string, ci int) {
		if need[t] == nil {
			need[t] = map[int]bool{}
		}
		need[t][ci] = true
	}
	var visit func(e Expr) error
	visit = func(e Expr) error {
		switch x := e.(type) {
		case *ColumnExpr:
			t, ci, err := b.resolveColumn(x)
			if err != nil {
				return err
			}
			add(t, ci)
		case *BinaryExpr:
			if err := visit(x.Left); err != nil {
				return err
			}
			return visit(x.Right)
		case *BetweenExpr:
			if err := visit(x.Expr); err != nil {
				return err
			}
			if err := visit(x.Lo); err != nil {
				return err
			}
			return visit(x.Hi)
		case *InExpr:
			if err := visit(x.Expr); err != nil {
				return err
			}
			for _, v := range x.List {
				if err := visit(v); err != nil {
					return err
				}
			}
		case *LikeExpr:
			return visit(x.Expr)
		case *CallExpr:
			if x.Arg != nil {
				return visit(x.Arg)
			}
		}
		return nil
	}

	for _, it := range b.stmt.Items {
		if it.Star {
			for _, bt := range b.tables {
				for ci := range bt.tbl.Columns {
					add(bt.name, ci)
				}
			}
			continue
		}
		if err := visit(it.Expr); err != nil {
			return err
		}
	}
	if b.stmt.Where != nil {
		if err := visit(b.stmt.Where); err != nil {
			return err
		}
	}
	for _, j := range b.stmt.Joins {
		if err := visit(j.On); err != nil {
			return err
		}
	}
	for _, g := range b.stmt.GroupBy {
		if err := visit(g); err != nil {
			return err
		}
	}
	for _, o := range b.stmt.OrderBy {
		if _, isCol := o.Expr.(*ColumnExpr); isCol {
			// Order-by may name an output alias; resolved later.
			if tabs := map[string]bool{}; b.exprTables(o.Expr, tabs) == nil {
				if err := visit(o.Expr); err != nil {
					return err
				}
			}
		}
	}
	for _, e := range joins {
		add(e.ta, e.ca)
		add(e.tb, e.cb)
	}

	b.scanCols = map[string][]int{}
	for _, bt := range b.tables {
		cols := need[bt.name]
		if len(cols) == 0 {
			// Scan at least one column so the table contributes tuples.
			cols = map[int]bool{0: true}
		}
		list := make([]int, 0, len(cols))
		for ci := range cols {
			list = append(list, ci)
		}
		// Deterministic order.
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				if list[j] < list[i] {
					list[i], list[j] = list[j], list[i]
				}
			}
		}
		b.scanCols[bt.name] = list
	}
	return nil
}

// scanPos returns the position of base column ci within table t's scan.
func (b *binder) scanPos(t string, ci int) int {
	for i, c := range b.scanCols[t] {
		if c == ci {
			return i
		}
	}
	return -1
}

// buildScan creates the scan node for a table with its pushed-down
// predicates bound.
func (b *binder) buildScan(t string, preds []Expr) (*plan.Node, error) {
	bt := b.table(t)
	cols := b.scanCols[t]
	var bound []expr.BoolExpr
	for _, p := range preds {
		be, err := b.bindBoolAgainstScan(p, t)
		if err != nil {
			return nil, err
		}
		bound = append(bound, be)
	}
	return plan.NewTableScan(bt.tbl, cols, bound...), nil
}

// outPos finds an output column by provenance.
func (b *binder) outPos(t string, ci int) int {
	for i := range b.outTab {
		if b.outTab[i] == t && b.outCol[i] == ci {
			return i
		}
	}
	return -1
}

// buildJoins constructs scans and greedily joins them along equi-edges,
// smallest estimated result first.
func (b *binder) buildJoins(singles map[string][]Expr, joins []joinEdge) error {
	est := &stats.Estimator{DB: b.pl.Stats}

	// Build all scans and estimate their cardinalities.
	scans := map[string]*plan.Node{}
	for _, bt := range b.tables {
		s, err := b.buildScan(bt.name, singles[bt.name])
		if err != nil {
			return err
		}
		est.Estimate(s)
		scans[bt.name] = s
	}

	if len(b.tables) == 1 {
		t := b.tables[0].name
		b.root = scans[t]
		for _, ci := range b.scanCols[t] {
			b.outTab = append(b.outTab, t)
			b.outCol = append(b.outCol, ci)
			b.outNames = append(b.outNames, b.table(t).tbl.Columns[ci].Name)
		}
		return nil
	}
	if len(joins) == 0 {
		return fmt.Errorf("sql: cross products are not supported (add join predicates)")
	}

	// Start from the smallest scan that has at least one edge.
	hasEdge := map[string]bool{}
	for _, e := range joins {
		hasEdge[e.ta] = true
		hasEdge[e.tb] = true
	}
	start := ""
	for _, bt := range b.tables {
		if !hasEdge[bt.name] {
			continue
		}
		if start == "" || scans[bt.name].OutCard.Est < scans[start].OutCard.Est {
			start = bt.name
		}
	}
	if start == "" {
		return fmt.Errorf("sql: no joinable table found")
	}

	joined := map[string]bool{start: true}
	b.root = scans[start]
	for _, ci := range b.scanCols[start] {
		b.outTab = append(b.outTab, start)
		b.outCol = append(b.outCol, ci)
		b.outNames = append(b.outNames, b.table(start).tbl.Columns[ci].Name)
	}

	for len(joined) < len(b.tables) {
		// Pick the connected new table with the smallest estimated scan.
		next := ""
		var edge joinEdge
		for _, e := range joins {
			var newT string
			var cand joinEdge
			switch {
			case joined[e.ta] && !joined[e.tb]:
				newT, cand = e.tb, e
			case joined[e.tb] && !joined[e.ta]:
				newT, cand = e.ta, joinEdge{ta: e.tb, ca: e.cb, tb: e.ta, cb: e.ca}
			default:
				continue
			}
			if next == "" || scans[newT].OutCard.Est < scans[next].OutCard.Est {
				next, edge = newT, cand
			}
		}
		if next == "" {
			return fmt.Errorf("sql: join graph is disconnected (cross products are not supported)")
		}
		// edge.ta is in the joined set (probe side), edge.tb == next is the
		// build side.
		probeKey := b.outPos(edge.ta, edge.ca)
		if probeKey < 0 {
			return fmt.Errorf("sql: internal: join key %s.%d not in output", edge.ta, edge.ca)
		}
		build := scans[next]
		buildKey := b.scanPos(next, edge.cb)
		payload := make([]int, 0, len(b.scanCols[next]))
		for i := range b.scanCols[next] {
			payload = append(payload, i)
		}
		b.root = plan.NewHashJoin(build, b.root, []int{buildKey}, []int{probeKey}, payload)
		for _, ci := range b.scanCols[next] {
			b.outTab = append(b.outTab, next)
			b.outCol = append(b.outCol, ci)
			b.outNames = append(b.outNames, b.table(next).tbl.Columns[ci].Name)
		}
		joined[next] = true
	}
	return nil
}

// applyResidualFilters adds Filter nodes for multi-table non-equi
// predicates.
func (b *binder) applyResidualFilters(others []Expr) error {
	for _, e := range others {
		be, err := b.bindBoolAgainstOutput(e)
		if err != nil {
			return err
		}
		b.root = plan.NewFilter(b.root, be)
	}
	return nil
}

// aggFromCall translates an aggregate call; the argument must already be an
// output column position.
func aggFromCall(fn string, col int) (plan.Agg, error) {
	switch fn {
	case "COUNT":
		return plan.Agg{Fn: plan.AggCount}, nil
	case "SUM":
		return plan.Agg{Fn: plan.AggSum, Col: col}, nil
	case "MIN":
		return plan.Agg{Fn: plan.AggMin, Col: col}, nil
	case "MAX":
		return plan.Agg{Fn: plan.AggMax, Col: col}, nil
	case "AVG":
		return plan.Agg{Fn: plan.AggAvg, Col: col}, nil
	default:
		return plan.Agg{}, fmt.Errorf("sql: unknown aggregate %q", fn)
	}
}

// hasAggregates reports whether any select item is an aggregate call.
func (b *binder) hasAggregates() bool {
	for _, it := range b.stmt.Items {
		if _, ok := it.Expr.(*CallExpr); ok {
			return true
		}
	}
	return false
}

// buildProjectionAndAggregation materializes the select list: computed
// columns via Map, aggregation via GroupBy, plain projections via Project.
func (b *binder) buildProjectionAndAggregation() error {
	grouped := len(b.stmt.GroupBy) > 0 || b.hasAggregates()
	if grouped {
		return b.buildAggregation()
	}

	// Plain select: computed items become Map columns, then project in
	// select-list order.
	var projCols []int
	var projNames []string
	for _, it := range b.stmt.Items {
		if it.Star {
			for i := range b.outNames {
				projCols = append(projCols, i)
				projNames = append(projNames, b.outNames[i])
			}
			continue
		}
		pos, name, err := b.materializeItem(it.Expr, it.Alias)
		if err != nil {
			return err
		}
		projCols = append(projCols, pos)
		projNames = append(projNames, name)
	}
	b.project(projCols, projNames)
	return nil
}

// materializeItem ensures the expression is an output column, appending a
// Map node for computed expressions, and returns its position and name.
func (b *binder) materializeItem(e Expr, alias string) (int, string, error) {
	if c, ok := e.(*ColumnExpr); ok {
		t, ci, err := b.resolveColumn(c)
		if err != nil {
			return 0, "", err
		}
		pos := b.outPos(t, ci)
		if pos < 0 {
			return 0, "", fmt.Errorf("sql: internal: column %s not in output", c)
		}
		name := alias
		if name == "" {
			name = c.Column
		}
		return pos, name, nil
	}
	ve, err := b.bindScalarAgainstOutput(e)
	if err != nil {
		return 0, "", err
	}
	name := alias
	if name == "" {
		name = strings.ToLower(e.String())
	}
	b.root = plan.NewMap(b.root, []string{name}, []expr.ValueExpr{ve})
	b.outTab = append(b.outTab, "")
	b.outCol = append(b.outCol, -1)
	b.outNames = append(b.outNames, name)
	return len(b.outNames) - 1, name, nil
}

// buildAggregation constructs the GroupBy node from GROUP BY columns and
// aggregate select items.
func (b *binder) buildAggregation() error {
	var groupCols []int
	var groupNames []string
	for _, g := range b.stmt.GroupBy {
		c, ok := g.(*ColumnExpr)
		if !ok {
			return fmt.Errorf("sql: GROUP BY supports plain columns, got %s", g)
		}
		pos, name, err := b.materializeItem(c, "")
		if err != nil {
			return err
		}
		groupCols = append(groupCols, pos)
		groupNames = append(groupNames, name)
	}

	var aggs []plan.Agg
	var aggNames []string
	var outOrder []string // select-list order of output names
	for i, it := range b.stmt.Items {
		if it.Star {
			return fmt.Errorf("sql: SELECT * cannot be combined with aggregation")
		}
		switch x := it.Expr.(type) {
		case *CallExpr:
			col := 0
			if !x.Star && x.Arg != nil {
				pos, _, err := b.materializeItem(x.Arg, "")
				if err != nil {
					return err
				}
				col = pos
			}
			a, err := aggFromCall(x.Func, col)
			if err != nil {
				return err
			}
			name := it.Alias
			if name == "" {
				name = fmt.Sprintf("%s_%d", strings.ToLower(x.Func), i)
			}
			aggs = append(aggs, a)
			aggNames = append(aggNames, name)
			outOrder = append(outOrder, name)
		case *ColumnExpr:
			// Must be a grouping column.
			t, ci, err := b.resolveColumn(x)
			if err != nil {
				return err
			}
			pos := b.outPos(t, ci)
			found := false
			for gi, gc := range groupCols {
				if gc == pos {
					found = true
					name := it.Alias
					if name == "" {
						name = groupNames[gi]
					}
					outOrder = append(outOrder, groupNames[gi])
					_ = name
				}
			}
			if !found {
				return fmt.Errorf("sql: column %s must appear in GROUP BY or an aggregate", x)
			}
		default:
			return fmt.Errorf("sql: select item %s must be a column or aggregate when grouping", it.Expr)
		}
	}

	b.root = plan.NewGroupBy(b.root, groupCols, aggs, aggNames)
	newTab := make([]string, 0, len(groupCols)+len(aggs))
	newCol := make([]int, 0, len(groupCols)+len(aggs))
	newNames := make([]string, 0, len(groupCols)+len(aggs))
	for i, gc := range groupCols {
		newTab = append(newTab, b.outTab[gc])
		newCol = append(newCol, b.outCol[gc])
		newNames = append(newNames, groupNames[i])
	}
	for _, n := range aggNames {
		newTab = append(newTab, "")
		newCol = append(newCol, -1)
		newNames = append(newNames, n)
	}
	b.outTab, b.outCol, b.outNames = newTab, newCol, newNames
	return nil
}

// project narrows the plan output to the given positions/names, skipping
// no-op projections.
func (b *binder) project(cols []int, names []string) {
	identity := len(cols) == len(b.outNames)
	for i, c := range cols {
		if c != i {
			identity = false
		}
	}
	if identity {
		b.outNames = names
		return
	}
	b.root = plan.Project(b.root, cols)
	newTab := make([]string, len(cols))
	newCol := make([]int, len(cols))
	for i, c := range cols {
		newTab[i] = b.outTab[c]
		newCol[i] = b.outCol[c]
	}
	b.outTab, b.outCol, b.outNames = newTab, newCol, names
}

// outIndexByName finds an output column by its effective name.
func (b *binder) outIndexByName(name string) int {
	for i, n := range b.outNames {
		if n == name {
			return i
		}
	}
	return -1
}

// buildOrderByLimit appends Sort and Limit nodes.
func (b *binder) buildOrderByLimit() error {
	if len(b.stmt.OrderBy) > 0 {
		var cols []int
		var desc []bool
		for _, o := range b.stmt.OrderBy {
			c, ok := o.Expr.(*ColumnExpr)
			if !ok {
				return fmt.Errorf("sql: ORDER BY supports output columns, got %s", o.Expr)
			}
			idx := -1
			if c.Table == "" {
				idx = b.outIndexByName(c.Column)
			}
			if idx < 0 {
				return fmt.Errorf("sql: ORDER BY column %s is not in the output", c)
			}
			cols = append(cols, idx)
			desc = append(desc, o.Desc)
		}
		b.root = plan.NewSort(b.root, cols, desc)
	}
	if b.stmt.Limit >= 0 {
		b.root = plan.NewLimit(b.root, b.stmt.Limit)
	}
	return nil
}

// --- expression binding -----------------------------------------------------

// bindBoolAgainstScan binds a single-table predicate against the table's
// scan schema.
func (b *binder) bindBoolAgainstScan(e Expr, t string) (expr.BoolExpr, error) {
	resolve := func(c *ColumnExpr) (*expr.ColRef, error) {
		rt, ci, err := b.resolveColumn(c)
		if err != nil {
			return nil, err
		}
		if rt != t {
			return nil, fmt.Errorf("sql: predicate %s mixes tables", e)
		}
		pos := b.scanPos(t, ci)
		col := &b.table(t).tbl.Columns[ci]
		return expr.Col(pos, col.Name, col.Kind), nil
	}
	return b.bindBool(e, resolve)
}

// bindBoolAgainstOutput binds a predicate against the current plan output.
func (b *binder) bindBoolAgainstOutput(e Expr) (expr.BoolExpr, error) {
	resolve := func(c *ColumnExpr) (*expr.ColRef, error) {
		rt, ci, err := b.resolveColumn(c)
		if err != nil {
			return nil, err
		}
		pos := b.outPos(rt, ci)
		if pos < 0 {
			return nil, fmt.Errorf("sql: column %s not available", c)
		}
		return expr.Col(pos, c.Column, b.root.Schema[pos].Kind), nil
	}
	return b.bindBool(e, resolve)
}

// bindBool translates a boolean AST into engine predicates with a column
// resolver.
func (b *binder) bindBool(e Expr, resolve func(*ColumnExpr) (*expr.ColRef, error)) (expr.BoolExpr, error) {
	switch x := e.(type) {
	case *BinaryExpr:
		switch x.Op {
		case "AND":
			// Conjuncts are normally split before binding; bind as nested
			// for completeness (OR branches may contain AND).
			l, err := b.bindBool(x.Left, resolve)
			if err != nil {
				return nil, err
			}
			r, err := b.bindBool(x.Right, resolve)
			if err != nil {
				return nil, err
			}
			return andExpr{l, r}, nil
		case "OR":
			l, err := b.bindBool(x.Left, resolve)
			if err != nil {
				return nil, err
			}
			r, err := b.bindBool(x.Right, resolve)
			if err != nil {
				return nil, err
			}
			return expr.NewOr(l, r), nil
		case "=", "<>", "<", "<=", ">", ">=":
			return b.bindComparison(x, resolve)
		default:
			return nil, fmt.Errorf("sql: %q is not a boolean operator", x.Op)
		}
	case *BetweenExpr:
		c, ok := x.Expr.(*ColumnExpr)
		if !ok {
			return nil, fmt.Errorf("sql: BETWEEN requires a column, got %s", x.Expr)
		}
		ref, err := resolve(c)
		if err != nil {
			return nil, err
		}
		lo, err := b.literal(x.Lo, ref.Typ)
		if err != nil {
			return nil, err
		}
		hi, err := b.literal(x.Hi, ref.Typ)
		if err != nil {
			return nil, err
		}
		return expr.NewBetween(ref, lo, hi), nil
	case *InExpr:
		c, ok := x.Expr.(*ColumnExpr)
		if !ok {
			return nil, fmt.Errorf("sql: IN requires a column, got %s", x.Expr)
		}
		ref, err := resolve(c)
		if err != nil {
			return nil, err
		}
		switch ref.Typ {
		case storage.Int64:
			vals := make([]int64, len(x.List))
			for i, v := range x.List {
				lit, err := b.literal(v, storage.Int64)
				if err != nil {
					return nil, err
				}
				vals[i] = lit.I
			}
			return expr.NewInListInts(ref, vals), nil
		case storage.String:
			vals := make([]string, len(x.List))
			for i, v := range x.List {
				lit, err := b.literal(v, storage.String)
				if err != nil {
					return nil, err
				}
				vals[i] = lit.S
			}
			return expr.NewInListStrings(ref, vals), nil
		default:
			return nil, fmt.Errorf("sql: IN over %s columns is not supported", ref.Typ)
		}
	case *LikeExpr:
		c, ok := x.Expr.(*ColumnExpr)
		if !ok {
			return nil, fmt.Errorf("sql: LIKE requires a column, got %s", x.Expr)
		}
		ref, err := resolve(c)
		if err != nil {
			return nil, err
		}
		if ref.Typ != storage.String {
			return nil, fmt.Errorf("sql: LIKE requires a string column")
		}
		return expr.NewLike(ref, x.Pattern), nil
	default:
		return nil, fmt.Errorf("sql: %s is not a boolean expression", e)
	}
}

// bindComparison binds col OP literal or col OP col.
func (b *binder) bindComparison(x *BinaryExpr, resolve func(*ColumnExpr) (*expr.ColRef, error)) (expr.BoolExpr, error) {
	op, err := cmpOp(x.Op)
	if err != nil {
		return nil, err
	}
	lc, lIsCol := x.Left.(*ColumnExpr)
	rc, rIsCol := x.Right.(*ColumnExpr)
	switch {
	case lIsCol && rIsCol:
		lref, err := resolve(lc)
		if err != nil {
			return nil, err
		}
		rref, err := resolve(rc)
		if err != nil {
			return nil, err
		}
		return expr.NewColCmp(op, lref, rref), nil
	case lIsCol:
		ref, err := resolve(lc)
		if err != nil {
			return nil, err
		}
		lit, err := b.literal(x.Right, ref.Typ)
		if err != nil {
			return nil, err
		}
		return expr.NewCmp(op, ref, lit), nil
	case rIsCol:
		ref, err := resolve(rc)
		if err != nil {
			return nil, err
		}
		lit, err := b.literal(x.Left, ref.Typ)
		if err != nil {
			return nil, err
		}
		return expr.NewCmp(mirror(op), ref, lit), nil
	default:
		return nil, fmt.Errorf("sql: comparison %s needs at least one column", x)
	}
}

// literal converts a literal AST node to a typed constant matching the
// column type.
func (b *binder) literal(e Expr, want storage.Type) (*expr.Const, error) {
	switch x := e.(type) {
	case *NumberExpr:
		switch want {
		case storage.Int64:
			if x.Float && x.Value != math.Trunc(x.Value) {
				return expr.ConstFloat(x.Value), nil
			}
			return expr.ConstInt(int64(x.Value)), nil
		case storage.Float64:
			return expr.ConstFloat(x.Value), nil
		default:
			return nil, fmt.Errorf("sql: numeric literal %s compared with string column", x.Text)
		}
	case *StringExpr:
		if want != storage.String {
			return nil, fmt.Errorf("sql: string literal %q compared with numeric column", x.Value)
		}
		return expr.ConstString(x.Value), nil
	default:
		return nil, fmt.Errorf("sql: expected a literal, got %s", e)
	}
}

// bindScalarAgainstOutput binds an arithmetic expression against the plan
// output.
func (b *binder) bindScalarAgainstOutput(e Expr) (expr.ValueExpr, error) {
	switch x := e.(type) {
	case *ColumnExpr:
		t, ci, err := b.resolveColumn(x)
		if err != nil {
			return nil, err
		}
		pos := b.outPos(t, ci)
		if pos < 0 {
			return nil, fmt.Errorf("sql: column %s not available", x)
		}
		return expr.Col(pos, x.Column, b.root.Schema[pos].Kind), nil
	case *NumberExpr:
		if x.Float {
			return expr.ConstFloat(x.Value), nil
		}
		return expr.ConstInt(int64(x.Value)), nil
	case *StringExpr:
		return expr.ConstString(x.Value), nil
	case *BinaryExpr:
		var op expr.ArithOp
		switch x.Op {
		case "+":
			op = expr.Add
		case "-":
			op = expr.Sub
		case "*":
			op = expr.Mul
		case "/":
			op = expr.Div
		default:
			return nil, fmt.Errorf("sql: %q is not an arithmetic operator", x.Op)
		}
		l, err := b.bindScalarAgainstOutput(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := b.bindScalarAgainstOutput(x.Right)
		if err != nil {
			return nil, err
		}
		return expr.NewArith(op, l, r), nil
	default:
		return nil, fmt.Errorf("sql: unsupported scalar expression %s", e)
	}
}

func cmpOp(op string) (expr.CmpOp, error) {
	switch op {
	case "=":
		return expr.Eq, nil
	case "<>":
		return expr.Ne, nil
	case "<":
		return expr.Lt, nil
	case "<=":
		return expr.Le, nil
	case ">":
		return expr.Gt, nil
	case ">=":
		return expr.Ge, nil
	default:
		return 0, fmt.Errorf("sql: unknown comparison %q", op)
	}
}

// mirror flips a comparison for literal OP col forms.
func mirror(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.Lt:
		return expr.Gt
	case expr.Le:
		return expr.Ge
	case expr.Gt:
		return expr.Lt
	case expr.Ge:
		return expr.Le
	default:
		return op
	}
}

// andExpr conjoins two bound predicates (used inside OR branches).
type andExpr struct {
	l, r expr.BoolExpr
}

func (a andExpr) Kind() storage.Type { return storage.Int64 }
func (a andExpr) Class() expr.Class  { return expr.ClassOther }
func (a andExpr) String() string     { return fmt.Sprintf("(%s AND %s)", a.l, a.r) }

// EvalBool applies both conjuncts with short-circuit masking.
func (a andExpr) EvalBool(b *expr.Batch, sel []bool) int {
	evaluated := a.l.EvalBool(b, sel)
	a.r.EvalBool(b, sel)
	return evaluated
}
