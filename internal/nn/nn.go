// Package nn is a minimal dense neural-network substrate: linear layers,
// ReLU, and the Adam optimizer, with hand-written backpropagation. It exists
// to implement the Zero Shot plan-structured baseline (Hilprecht & Binnig)
// that the paper compares against in Figures 1, 10, and 12 — a model family
// that is accurate but orders of magnitude slower to evaluate than T3's
// compiled trees.
package nn

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
)

// Linear is a fully connected layer y = W·x + b.
type Linear struct {
	In, Out int
	W       []float64 // Out × In, row-major
	B       []float64

	// gradient accumulators
	dW []float64
	dB []float64

	// Adam state
	mW, vW []float64
	mB, vB []float64
}

// NewLinear initializes a layer with He-scaled random weights.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	l := &Linear{In: in, Out: out}
	l.W = make([]float64, in*out)
	l.B = make([]float64, out)
	scale := math.Sqrt(2.0 / float64(in))
	for i := range l.W {
		l.W[i] = rng.NormFloat64() * scale
	}
	l.dW = make([]float64, in*out)
	l.dB = make([]float64, out)
	l.mW = make([]float64, in*out)
	l.vW = make([]float64, in*out)
	l.mB = make([]float64, out)
	l.vB = make([]float64, out)
	return l
}

// Forward computes the layer output for input x.
func (l *Linear) Forward(x, out []float64) []float64 {
	if out == nil {
		out = make([]float64, l.Out)
	}
	for o := 0; o < l.Out; o++ {
		s := l.B[o]
		row := l.W[o*l.In : (o+1)*l.In]
		for i, xi := range x {
			s += row[i] * xi
		}
		out[o] = s
	}
	return out
}

// Backward accumulates gradients given the input x and the output gradient
// dy, and returns the input gradient dx.
func (l *Linear) Backward(x, dy, dx []float64) []float64 {
	if dx == nil {
		dx = make([]float64, l.In)
	} else {
		for i := range dx {
			dx[i] = 0
		}
	}
	for o := 0; o < l.Out; o++ {
		g := dy[o]
		l.dB[o] += g
		row := l.W[o*l.In : (o+1)*l.In]
		drow := l.dW[o*l.In : (o+1)*l.In]
		for i, xi := range x {
			drow[i] += g * xi
			dx[i] += row[i] * g
		}
	}
	return dx
}

// Adam applies one Adam update with the accumulated gradients and clears
// them. step is the 1-based global step for bias correction.
func (l *Linear) Adam(lr float64, step int) {
	const (
		b1  = 0.9
		b2  = 0.999
		eps = 1e-8
	)
	c1 := 1 - math.Pow(b1, float64(step))
	c2 := 1 - math.Pow(b2, float64(step))
	for i, g := range l.dW {
		l.mW[i] = b1*l.mW[i] + (1-b1)*g
		l.vW[i] = b2*l.vW[i] + (1-b2)*g*g
		l.W[i] -= lr * (l.mW[i] / c1) / (math.Sqrt(l.vW[i]/c2) + eps)
		l.dW[i] = 0
	}
	for i, g := range l.dB {
		l.mB[i] = b1*l.mB[i] + (1-b1)*g
		l.vB[i] = b2*l.vB[i] + (1-b2)*g*g
		l.B[i] -= lr * (l.mB[i] / c1) / (math.Sqrt(l.vB[i]/c2) + eps)
		l.dB[i] = 0
	}
}

// ReLU applies max(0, x) in place and returns x.
func ReLU(x []float64) []float64 {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
	return x
}

// ReLUGrad zeroes the gradient where the forward activation was clipped.
func ReLUGrad(activated, dy []float64) []float64 {
	for i := range dy {
		if activated[i] <= 0 {
			dy[i] = 0
		}
	}
	return dy
}

// MLP is a stack of linear layers with ReLU between them (none after the
// final layer).
type MLP struct {
	Layers []*Linear
}

// NewMLP builds an MLP with the given layer sizes, e.g. (rng, 16, 32, 1).
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least two sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(rng, sizes[i], sizes[i+1]))
	}
	return m
}

// Trace stores the intermediate activations of one forward pass, enabling
// backprop through arbitrary composition (e.g. recursive plan encoders).
type Trace struct {
	// Acts[0] is the input; Acts[i] is the post-activation output of layer
	// i-1.
	Acts [][]float64
}

// Forward runs the MLP, recording activations into a fresh trace.
func (m *MLP) Forward(x []float64) (*Trace, []float64) {
	tr := &Trace{Acts: make([][]float64, 0, len(m.Layers)+1)}
	cur := x
	tr.Acts = append(tr.Acts, cur)
	for i, l := range m.Layers {
		out := l.Forward(cur, nil)
		if i+1 < len(m.Layers) {
			ReLU(out)
		}
		tr.Acts = append(tr.Acts, out)
		cur = out
	}
	return tr, cur
}

// Infer runs the MLP without recording a trace (prediction path).
func (m *MLP) Infer(x []float64) []float64 {
	cur := x
	for i, l := range m.Layers {
		out := l.Forward(cur, nil)
		if i+1 < len(m.Layers) {
			ReLU(out)
		}
		cur = out
	}
	return cur
}

// Backward backpropagates dy through the trace, accumulating parameter
// gradients, and returns the gradient w.r.t. the input.
func (m *MLP) Backward(tr *Trace, dy []float64) []float64 {
	grad := append([]float64(nil), dy...)
	for i := len(m.Layers) - 1; i >= 0; i-- {
		if i+1 < len(m.Layers) {
			ReLUGrad(tr.Acts[i+1], grad)
		}
		grad = m.Layers[i].Backward(tr.Acts[i], grad, nil)
	}
	return grad
}

// Adam updates all layers.
func (m *MLP) Adam(lr float64, step int) {
	for _, l := range m.Layers {
		l.Adam(lr, step)
	}
}

// NumParams returns the number of trainable parameters.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		n += len(l.W) + len(l.B)
	}
	return n
}

// persistedLinear is the serialization form of a layer.
type persistedLinear struct {
	In  int       `json:"in"`
	Out int       `json:"out"`
	W   []float64 `json:"w"`
	B   []float64 `json:"b"`
}

// MarshalJSON serializes the MLP weights.
func (m *MLP) MarshalJSON() ([]byte, error) {
	ls := make([]persistedLinear, len(m.Layers))
	for i, l := range m.Layers {
		ls[i] = persistedLinear{In: l.In, Out: l.Out, W: l.W, B: l.B}
	}
	return json.Marshal(ls)
}

// UnmarshalJSON restores the MLP weights.
func (m *MLP) UnmarshalJSON(data []byte) error {
	var ls []persistedLinear
	if err := json.Unmarshal(data, &ls); err != nil {
		return err
	}
	m.Layers = nil
	for _, p := range ls {
		if len(p.W) != p.In*p.Out || len(p.B) != p.Out {
			return fmt.Errorf("nn: corrupt layer %dx%d", p.In, p.Out)
		}
		l := &Linear{In: p.In, Out: p.Out, W: p.W, B: p.B}
		l.dW = make([]float64, len(p.W))
		l.dB = make([]float64, len(p.B))
		l.mW = make([]float64, len(p.W))
		l.vW = make([]float64, len(p.W))
		l.mB = make([]float64, len(p.B))
		l.vB = make([]float64, len(p.B))
		m.Layers = append(m.Layers, l)
	}
	return nil
}
