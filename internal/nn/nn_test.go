package nn

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestLinearForwardBackwardGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 4, 3)
	x := []float64{0.5, -1, 2, 0.1}
	dy := []float64{1, -0.5, 0.25}

	dx := l.Backward(x, dy, nil)

	// Numeric gradient check on the input.
	const h = 1e-6
	for i := range x {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[i] += h
		xm[i] -= h
		op := l.Forward(xp, nil)
		om := l.Forward(xm, nil)
		num := 0.0
		for o := range dy {
			num += dy[o] * (op[o] - om[o]) / (2 * h)
		}
		if math.Abs(num-dx[i]) > 1e-6 {
			t.Errorf("dx[%d] = %v, numeric %v", i, dx[i], num)
		}
	}
}

func TestMLPGradcheckThroughReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 3, 5, 1)
	x := []float64{0.3, -0.7, 1.2}

	tr, out := m.Forward(x)
	dx := m.Backward(tr, []float64{1})
	_ = out

	const h = 1e-6
	for i := range x {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[i] += h
		xm[i] -= h
		op := m.Infer(xp)[0]
		om := m.Infer(xm)[0]
		num := (op - om) / (2 * h)
		if math.Abs(num-dx[i]) > 1e-5 {
			t.Errorf("dx[%d] = %v, numeric %v", i, dx[i], num)
		}
	}
}

func TestMLPFitsXORish(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 2, 16, 1)
	data := [][2]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	target := []float64{0, 1, 1, 0}
	step := 0
	for epoch := 0; epoch < 3000; epoch++ {
		for i, d := range data {
			tr, out := m.Forward(d[:])
			diff := out[0] - target[i]
			m.Backward(tr, []float64{diff})
		}
		step++
		m.Adam(0.01, step)
	}
	for i, d := range data {
		got := m.Infer(d[:])[0]
		if math.Abs(got-target[i]) > 0.1 {
			t.Errorf("xor(%v) = %v, want %v", d, got, target[i])
		}
	}
}

func TestInferMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP(rng, 6, 8, 8, 2)
	for i := 0; i < 50; i++ {
		x := make([]float64, 6)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		_, a := m.Forward(x)
		b := m.Infer(x)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("forward %v != infer %v", a, b)
			}
		}
	}
}

func TestMLPJSONRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, 4, 7, 1)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 MLP
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	x := []float64{1, -2, 0.5, 3}
	if a, b := m.Infer(x)[0], m2.Infer(x)[0]; a != b {
		t.Fatalf("roundtrip changed predictions: %v vs %v", a, b)
	}
	if m.NumParams() != m2.NumParams() {
		t.Fatal("param count changed")
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	var m MLP
	if err := json.Unmarshal([]byte(`[{"in":2,"out":3,"w":[1,2],"b":[0,0,0]}]`), &m); err == nil {
		t.Fatal("expected error for wrong weight count")
	}
}
