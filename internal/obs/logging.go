package obs

import (
	"io"
	"log/slog"
	"os"
)

// SetupLogging builds a slog.Logger writing to w (os.Stderr when nil) in
// the given format ("text" or "json"), installs it as the slog default,
// and returns it. verbose lowers the level to Debug. Every cmd routes its
// logging through this so output is uniformly structured and -log json
// makes runs machine-parseable.
func SetupLogging(w io.Writer, format string, verbose bool) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	logger := slog.New(h)
	slog.SetDefault(logger)
	return logger
}
