package obs

import (
	"encoding/binary"
	"math"
	"math/bits"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the oracle the histogram approximates: the ceil(p*n)-th
// smallest recorded value.
func exactQuantile(sorted []uint64, p float64) uint64 {
	idx := int(math.Ceil(p * float64(len(sorted))))
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}

// checkQuantileOctave asserts the documented accuracy contract: a quantile
// is exact for zeros and otherwise within a factor of two of the true value
// (power-of-two buckets resolve one octave).
func checkQuantileOctave(t *testing.T, s *HistSnapshot, values []uint64) {
	t.Helper()
	sorted := append([]uint64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		q := s.Quantile(p)
		exact := exactQuantile(sorted, p)
		if exact == 0 {
			if q != 0 {
				t.Fatalf("p=%g: exact quantile is 0 but histogram reports %g", p, q)
			}
			continue
		}
		e := float64(exact)
		if !(q > e/2 && q <= 2*e) {
			t.Fatalf("p=%g: histogram quantile %g outside octave bound (%g, %g] of exact %d",
				p, q, e/2, 2*e, exact)
		}
	}
}

// checkHistogramMerge records values whole and sharded, merges the shard
// snapshots in two orders, and asserts both merges reproduce the whole
// histogram and keep the quantile contract.
func checkHistogramMerge(t *testing.T, values []uint64, shards int) {
	t.Helper()
	whole := NewHistogram("whole", "", 1)
	hs := make([]*Histogram, shards)
	for i := range hs {
		hs[i] = NewHistogram("shard", "", 1)
	}
	for i, v := range values {
		whole.Record(v)
		hs[i%shards].Record(v)
	}
	want := whole.Snapshot()

	var fwd, rev HistSnapshot // zero value: Merge must adopt the unit
	for i := 0; i < shards; i++ {
		fwd.Merge(hs[i].Snapshot())
		rev.Merge(hs[shards-1-i].Snapshot())
	}
	// The raw accumulator is a wrapping uint64 and Sum is float64, so sums
	// are only comparable when the true total is exactly representable.
	sumExact := true
	var total uint64
	for _, v := range values {
		var carry uint64
		total, carry = bits.Add64(total, v, 0)
		if carry != 0 {
			sumExact = false
			break
		}
	}
	sumExact = sumExact && total < 1<<53

	for _, got := range []*HistSnapshot{&fwd, &rev} {
		if got.Unit != want.Unit || got.Count != want.Count || got.Counts != want.Counts {
			t.Fatalf("merged snapshot diverges from whole: got count=%d unit=%g, want count=%d unit=%g",
				got.Count, got.Unit, want.Count, want.Unit)
		}
		if sumExact && got.Sum != want.Sum {
			t.Fatalf("merged sum %g differs from whole sum %g", got.Sum, want.Sum)
		}
	}
	if len(values) > 0 {
		checkQuantileOctave(t, &fwd, values)
	} else if q := fwd.Quantile(0.5); q != 0 {
		t.Fatalf("empty merged histogram quantile = %g, want 0", q)
	}
}

// FuzzHistogramMerge drives shard/merge consistency from raw bytes: each
// 8-byte word is one observation, and the shard count comes from the fuzzer.
func FuzzHistogramMerge(f *testing.F) {
	f.Add([]byte{}, uint64(1))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint64(3))
	f.Add(binary.LittleEndian.AppendUint64(nil, math.MaxUint64), uint64(2))
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 255, 255, 0, 0, 0, 0, 0, 0, 7}, uint64(5))
	f.Fuzz(func(t *testing.T, data []byte, shardSeed uint64) {
		if len(data) > 1<<16 {
			return
		}
		var values []uint64
		for len(data) >= 8 {
			values = append(values, binary.LittleEndian.Uint64(data))
			data = data[8:]
		}
		if len(data) > 0 { // leftover bytes become one small observation
			var tail [8]byte
			copy(tail[:], data)
			values = append(values, binary.LittleEndian.Uint64(tail[:]))
		}
		checkHistogramMerge(t, values, 1+int(shardSeed%7))
	})
}

// TestHistogramMergeAndQuantileProperty is the deterministic mode: seeded
// mixed-magnitude workloads (zeros, small counts, huge durations) through
// the same shard/merge/quantile checks.
func TestHistogramMergeAndQuantileProperty(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(400)
		values := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				values = append(values, 0)
			case 1:
				values = append(values, uint64(rng.Intn(100)))
			case 2:
				values = append(values, uint64(rng.Int63n(1<<30)))
			default:
				values = append(values, uint64(rng.Int63())<<rng.Intn(4))
			}
		}
		checkHistogramMerge(t, values, 1+rng.Intn(8))
	}
}
