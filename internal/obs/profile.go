package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles wires the conventional -cpuprofile/-memprofile flags of the
// T3 commands: it begins CPU profiling to cpuPath (when non-empty) and
// returns a stop function that finalizes the CPU profile and writes a heap
// profile to memPath (when non-empty). The stop function must run before
// the process exits; it is safe to call when both paths are empty.
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("starting cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "creating mem profile:", err)
				return
			}
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "writing mem profile:", err)
			}
			f.Close()
		}
	}, nil
}
