package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Histogram buckets are emitted
// cumulatively; empty buckets are elided (the +Inf bucket is always
// present), keeping the payload proportional to the observed value range.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runExportHooks()
	counters, gauges, hists := r.metrics()
	for _, c := range counters {
		writeHeader(w, c.name, c.help, "counter")
		if _, err := fmt.Fprintf(w, "%s %d\n", c.name, c.Value()); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		writeHeader(w, g.name, g.help, "gauge")
		if _, err := fmt.Fprintf(w, "%s %s\n", g.sampleName(), formatFloat(g.Value())); err != nil {
			return err
		}
	}
	for _, h := range hists {
		s := h.Snapshot()
		writeHeader(w, h.name, h.help, "histogram")
		var cum uint64
		for i, c := range s.Counts {
			if c == 0 {
				continue
			}
			cum += c
			le := bucketUpper(i) * s.Unit
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			h.name, s.Count, h.name, formatFloat(s.Sum), h.name, s.Count); err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// escapeHelp escapes a HELP string per the text exposition format:
// backslash and newline must be escaped so the comment stays one line.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeLabelValue escapes a label value: backslash, double quote, and
// newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// renderLabels renders constant labels as a `{k="v",...}` sample suffix.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// bucketUpper returns the exclusive raw upper bound of bucket i.
func bucketUpper(i int) float64 {
	if i == 0 {
		return 0
	}
	return math.Ldexp(1, i)
}

func formatFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot is the JSON-exportable view of a registry — the schema shared
// by cmd/t3serve's /metrics.json endpoint, its expvar publication, and the
// -json output modes of t3predict and t3bench, so CI can diff runs.
type Snapshot struct {
	Counters   map[string]uint64           `json:"counters"`
	Gauges     map[string]float64          `json:"gauges"`
	Histograms map[string]HistogramSummary `json:"histograms"`
}

// HistogramSummary is one histogram in a Snapshot: totals, the standard
// quantiles, and the sparse cumulative buckets (upper bound in export
// units → cumulative count), mirroring the Prometheus exposition.
type HistogramSummary struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Mean    float64           `json:"mean"`
	P50     float64           `json:"p50"`
	P95     float64           `json:"p95"`
	P99     float64           `json:"p99"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.runExportHooks()
	counters, gauges, hists := r.metrics()
	snap := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistogramSummary, len(hists)),
	}
	for _, c := range counters {
		snap.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		v := g.Value()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		snap.Gauges[g.sampleName()] = v
	}
	for _, h := range hists {
		s := h.Snapshot()
		hs := HistogramSummary{
			Count: s.Count,
			Sum:   s.Sum,
			Mean:  s.Mean(),
			P50:   s.Quantile(0.50),
			P95:   s.Quantile(0.95),
			P99:   s.Quantile(0.99),
		}
		if s.Count > 0 {
			hs.Buckets = make(map[string]uint64)
			var cum uint64
			for i, c := range s.Counts {
				if c == 0 {
					continue
				}
				cum += c
				hs.Buckets[formatFloat(bucketUpper(i)*s.Unit)] = cum
			}
		}
		snap.Histograms[h.name] = hs
	}
	return snap
}

// DumpText renders every registered metric as an aligned human-readable
// report — the output behind the CLIs' -stats flag. Duration histograms
// print as durations; everything else prints as plain numbers. Metrics
// that never fired are elided.
func (r *Registry) DumpText() string {
	r.runExportHooks()
	counters, gauges, hists := r.metrics()
	var sb strings.Builder
	var lines []string
	for _, c := range counters {
		if v := c.Value(); v > 0 {
			lines = append(lines, fmt.Sprintf("  %-40s %d", c.name, v))
		}
	}
	if len(lines) > 0 {
		sb.WriteString("counters:\n")
		sortAndWrite(&sb, lines)
		lines = lines[:0]
	}
	for _, g := range gauges {
		if v := g.Value(); v != 0 {
			lines = append(lines, fmt.Sprintf("  %-40s %.6g", g.sampleName(), v))
		}
	}
	if len(lines) > 0 {
		sb.WriteString("gauges:\n")
		sortAndWrite(&sb, lines)
		lines = lines[:0]
	}
	for _, h := range hists {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		lines = append(lines, fmt.Sprintf("  %-40s n=%-8d mean=%-10s p50=%-10s p95=%-10s p99=%s",
			h.name, s.Count,
			formatInUnit(s.Mean(), h.unit), formatInUnit(s.Quantile(0.50), h.unit),
			formatInUnit(s.Quantile(0.95), h.unit), formatInUnit(s.Quantile(0.99), h.unit)))
	}
	if len(lines) > 0 {
		sb.WriteString("histograms:\n")
		sortAndWrite(&sb, lines)
	}
	if sb.Len() == 0 {
		return "no metrics recorded\n"
	}
	return sb.String()
}

func sortAndWrite(sb *strings.Builder, lines []string) {
	sort.Strings(lines)
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
}

// formatInUnit renders an export-unit value, using duration formatting for
// nanosecond-unit histograms.
func formatInUnit(v, unit float64) string {
	if unit == UnitNanoseconds {
		return time.Duration(v * float64(time.Second)).Round(time.Nanosecond).String()
	}
	return fmt.Sprintf("%.4g", v)
}
