package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every histogram: bucket 0 holds
// exact zeros and bucket i (1 ≤ i ≤ 64) holds raw values v with
// bits.Len64(v) == i, i.e. v ∈ [2^(i-1), 2^i). Power-of-two buckets span
// the full uint64 range — 1 ns to ~584 years for duration histograms —
// with a worst-case quantile resolution of one octave (2×), which is ample
// for latency percentiles that themselves vary run to run.
const NumBuckets = 65

// Histogram is a preallocated, lock-free latency/value histogram. Record
// is three atomic adds; histograms are safe for concurrent use and never
// allocate after construction.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Uint64 // total of recorded raw units
	name   string
	help   string
	unit   float64 // export value of one raw unit (see Unit* constants)
}

// NewHistogram creates an unregistered histogram (see
// Registry.NewHistogram for the registered variant).
func NewHistogram(name, help string, unit float64) *Histogram {
	if unit <= 0 {
		unit = 1
	}
	return &Histogram{name: name, help: help, unit: unit}
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Record adds one observation of v raw units.
func (h *Histogram) Record(v uint64) {
	h.counts[bits.Len64(v)].Add(1)
	h.sum.Add(v)
}

// Observe records a duration (into a UnitNanoseconds histogram). Negative
// durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Since records the time elapsed since start — the span/stage timer used
// on instrumented paths: t := time.Now(); ...; h.Since(t).
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// ObserveFloat records a value given in export units (e.g. a q-error
// ratio into a UnitMilli histogram), converting to raw units.
func (h *Histogram) ObserveFloat(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	raw := v / h.unit
	if raw >= math.MaxUint64 {
		raw = math.MaxUint64
	}
	h.Record(uint64(raw))
}

// Snapshot returns a point-in-time copy of the histogram. Buckets are read
// individually (not under a lock), so a snapshot taken during concurrent
// recording may be off by in-flight observations — each bucket is still
// internally consistent, and totals converge as recording quiesces.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Unit: h.unit}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = float64(h.sum.Load()) * h.unit
	return s
}

// HistSnapshot is a mergeable point-in-time view of a histogram.
type HistSnapshot struct {
	// Unit is the export value of one raw unit.
	Unit float64
	// Counts are per-bucket observation counts (see NumBuckets).
	Counts [NumBuckets]uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the total of all observations in export units.
	Sum float64
}

// Merge folds another snapshot into this one. Merging is commutative and
// associative, so per-shard snapshots can be combined in any order.
// Snapshots must share the same unit.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if s.Count == 0 && s.Unit == 0 {
		s.Unit = o.Unit
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Sub subtracts an earlier snapshot of the same histogram from s, leaving
// exactly the observations recorded between the two snapshot points — the
// windowed view a ring of epoch snapshots is built from (see
// internal/obs/trace.Window). Because per-bucket counts are monotone,
// subtraction is exact; buckets are clamped at zero to tolerate snapshots
// taken during concurrent recording, and Count is recomputed from the
// buckets so the result stays internally consistent.
func (s *HistSnapshot) Sub(o HistSnapshot) {
	var count uint64
	for i := range s.Counts {
		if o.Counts[i] >= s.Counts[i] {
			s.Counts[i] = 0
		} else {
			s.Counts[i] -= o.Counts[i]
		}
		count += s.Counts[i]
	}
	s.Count = count
	s.Sum -= o.Sum
	if s.Sum < 0 {
		s.Sum = 0
	}
}

// Mean returns the mean observation in export units (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) in export units, linearly
// interpolated within the containing power-of-two bucket. The result is
// exact to within one octave of the true value. Returns 0 when empty.
func (s *HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := uint64(math.Ceil(p * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum < target {
			continue
		}
		if i == 0 {
			return 0
		}
		lo := math.Ldexp(1, i-1)
		hi := math.Ldexp(1, i)
		frac := float64(target-(cum-c)) / float64(c)
		return (lo + frac*(hi-lo)) * s.Unit
	}
	return math.Ldexp(1, 64) * s.Unit // unreachable: cum == Count >= target
}

// QuantileDuration is Quantile for duration histograms: the quantile in
// export units (seconds) converted to a time.Duration.
func (s *HistSnapshot) QuantileDuration(p float64) time.Duration {
	return time.Duration(s.Quantile(p) * float64(time.Second))
}
