package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	g := r.NewGauge("g", "a gauge")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("h_seconds", "", UnitNanoseconds)
	h.Observe(1500 * time.Nanosecond)
	h.Observe(-time.Second) // clamps to 0
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if want := 1500e-9; math.Abs(s.Sum-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	// 1500 ns falls in bucket 11: [1024, 2048).
	if s.Counts[11] != 1 || s.Counts[0] != 1 {
		t.Fatalf("bucket layout wrong: %v", s.Counts[:16])
	}
}

// TestQuantileAccuracy pins the histogram quantiles against a sorted
// reference on random data: power-of-two buckets guarantee the estimate
// lies within the true value's bucket, i.e. within a factor of 2.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		h := NewHistogram("q", "", UnitCount)
		n := 5000
		vals := make([]float64, n)
		for i := range vals {
			// Log-uniform over ~6 orders of magnitude, like latencies.
			v := math.Exp(rng.Float64() * 14)
			vals[i] = v
			h.Record(uint64(v))
		}
		sort.Float64s(vals)
		s := h.Snapshot()
		for _, p := range []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0} {
			got := s.Quantile(p)
			idx := int(math.Ceil(p*float64(n))) - 1
			if idx < 0 {
				idx = 0
			}
			want := vals[idx]
			if got < want/2 || got > want*2 {
				t.Errorf("trial %d p%g: quantile %.1f outside factor-2 band of reference %.1f",
					trial, p*100, got, want)
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var s HistSnapshot
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	h := NewHistogram("e", "", UnitCount)
	h.Record(0)
	s = h.Snapshot()
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("all-zero quantile = %v, want 0", got)
	}
	h.Record(100)
	s = h.Snapshot()
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("p0 = %v, want 0 (smallest observation bucket)", got)
	}
	if got := s.Quantile(1); got < 64 || got > 128 {
		t.Fatalf("p100 = %v, want within [64,128] (bucket of 100)", got)
	}
}

// TestConcurrentRecording hammers one histogram and counter from many
// goroutines; with -race this doubles as the data-race check, and the
// totals must come out exact because recording is atomic.
func TestConcurrentRecording(t *testing.T) {
	h := NewHistogram("conc", "", UnitNanoseconds)
	c := NewCounter("conc_total", "")
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.Record(uint64(rng.Intn(1 << 20)))
				c.Inc()
			}
		}(int64(g))
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if s := h.Snapshot(); s.Count != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", s.Count, goroutines*perG)
	}
}

// TestSnapshotMergeAssociativity: merging per-shard snapshots must be
// order-independent, so sharded recorders can combine in any topology.
func TestSnapshotMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func() HistSnapshot {
		h := NewHistogram("m", "", UnitNanoseconds)
		for i := 0; i < 1000; i++ {
			h.Record(uint64(rng.Intn(1 << 30)))
		}
		return h.Snapshot()
	}
	a, b, c := mk(), mk(), mk()

	left := a // (a+b)+c
	left.Merge(b)
	left.Merge(c)
	right := b // a+(b+c)
	right.Merge(c)
	ab := a
	ab.Merge(right)

	if left.Counts != ab.Counts || left.Count != ab.Count {
		t.Fatalf("merge is not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", left, ab)
	}
	// Sum is a float accumulation, so allow rounding in the last bits.
	if d := math.Abs(left.Sum - ab.Sum); d > 1e-9*math.Abs(left.Sum) {
		t.Fatalf("merged sums diverge: %v vs %v", left.Sum, ab.Sum)
	}
	if left.Count != 3000 {
		t.Fatalf("merged count = %d, want 3000", left.Count)
	}
	// Quantiles of the merge must agree regardless of merge order.
	for _, p := range []float64{0.5, 0.95, 0.99} {
		if left.Quantile(p) != ab.Quantile(p) {
			t.Fatalf("p%g differs across merge orders", p*100)
		}
	}
}

// TestRecordZeroAlloc guards the hot-path contract: counter increments,
// histogram records, span timers, and sampler checks perform zero heap
// allocations.
func TestRecordZeroAlloc(t *testing.T) {
	h := NewHistogram("za", "", UnitNanoseconds)
	c := NewCounter("za_total", "")
	g := NewGauge("za_g", "")
	smp := NewSampler(8)
	if allocs := testing.AllocsPerRun(200, func() {
		start := time.Now()
		c.Inc()
		g.Set(1.5)
		if smp.Sample() {
			h.Since(start)
		}
		h.Observe(time.Since(start))
		h.ObserveFloat(1.25)
	}); allocs != 0 {
		t.Fatalf("record path allocates %.1f objects per run, want 0", allocs)
	}
}

func TestSamplerRate(t *testing.T) {
	s := NewSampler(8)
	hits := 0
	for i := 0; i < 800; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("sampler admitted %d of 800, want exactly 100 (1 in 8)", hits)
	}
	every := NewSampler(1)
	if !every.Sample() || !every.Sample() {
		t.Fatal("NewSampler(1) must admit every call")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_requests_total", "Requests.")
	g := r.NewGauge("t_rows_per_second", "Throughput.")
	h := r.NewHistogram("t_latency_seconds", "Latency.", UnitNanoseconds)
	c.Add(3)
	g.Set(123.5)
	h.Observe(1500 * time.Nanosecond) // bucket [1024, 2048) ns
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE t_requests_total counter",
		"t_requests_total 3",
		"# TYPE t_rows_per_second gauge",
		"t_rows_per_second 123.5",
		"# TYPE t_latency_seconds histogram",
		`t_latency_seconds_bucket{le="2.048e-06"} 1`,
		`t_latency_seconds_bucket{le="+Inf"} 1`,
		"t_latency_seconds_count 1",
		"t_latency_seconds_sum 1.5e-06",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("j_total", "").Add(7)
	h := r.NewHistogram("j_seconds", "", UnitNanoseconds)
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["j_total"] != 7 {
		t.Fatalf("counter lost in round trip: %+v", back.Counters)
	}
	hs := back.Histograms["j_seconds"]
	if hs.Count != 100 || hs.P50 <= 0 || hs.P99 < hs.P50 {
		t.Fatalf("histogram summary implausible: %+v", hs)
	}
}

func TestDumpText(t *testing.T) {
	r := NewRegistry()
	if got := r.DumpText(); got != "no metrics recorded\n" {
		t.Fatalf("empty dump = %q", got)
	}
	r.NewCounter("d_total", "").Inc()
	h := r.NewHistogram("d_seconds", "", UnitNanoseconds)
	h.Observe(4 * time.Microsecond)
	out := r.DumpText()
	for _, want := range []string{"counters:", "d_total", "histograms:", "d_seconds", "n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeConcurrentAddIncDec(t *testing.T) {
	g := NewRegistry().NewGauge("t_concurrent_gauge", "")
	const workers, rounds = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				g.Inc()
				g.Add(0.5)
				g.Dec()
			}
		}()
	}
	wg.Wait()
	// Inc and Dec cancel; the CAS loop must not lose any of the 0.5 adds.
	if want := float64(workers*rounds) * 0.5; g.Value() != want {
		t.Errorf("gauge after concurrent Add/Inc/Dec = %v, want %v", g.Value(), want)
	}
}
