package obs

import (
	"runtime"
	"strconv"
)

// Go runtime stats, refreshed at export time via an OnExport hook so
// /metrics is self-describing without a node-exporter sidecar. These are
// gauges sampled when an exporter asks, not hot-path instrumentation:
// ReadMemStats briefly stops the world, which is fine once per scrape and
// unacceptable once per prediction.
var (
	// Goroutines is the live goroutine count at export time.
	Goroutines = Default.NewGauge("t3_goroutines",
		"Live goroutines at export time.")
	// HeapAllocBytes is the in-use heap at export time.
	HeapAllocBytes = Default.NewGauge("t3_heap_alloc_bytes",
		"Heap bytes in use at export time.")
	// GCPauseTotal is the cumulative stop-the-world GC pause time.
	GCPauseTotal = Default.NewGauge("t3_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time.")
	// GCCycles is the number of completed GC cycles.
	GCCycles = Default.NewGauge("t3_gc_cycles_total",
		"Completed GC cycles.")
	// GoMaxProcs is the scheduler's processor limit.
	GoMaxProcs = Default.NewGauge("t3_gomaxprocs",
		"GOMAXPROCS at export time.")
	// BuildInfo is the conventional info-style gauge: constant 1, with the
	// toolchain and platform carried as labels.
	BuildInfo = Default.NewLabeledGauge("t3_build_info",
		"Build information; constant 1.",
		Label{Name: "go_version", Value: runtime.Version()},
		Label{Name: "goos", Value: runtime.GOOS},
		Label{Name: "goarch", Value: runtime.GOARCH},
		Label{Name: "maxprocs", Value: strconv.Itoa(runtime.GOMAXPROCS(0))})
)

func init() {
	BuildInfo.Set(1)
	Default.OnExport(collectRuntime)
}

// collectRuntime refreshes the runtime gauges; it runs once per export.
func collectRuntime() {
	Goroutines.Set(float64(runtime.NumGoroutine()))
	GoMaxProcs.Set(float64(runtime.GOMAXPROCS(0)))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	HeapAllocBytes.Set(float64(ms.HeapAlloc))
	GCPauseTotal.Set(float64(ms.PauseTotalNs) / 1e9)
	GCCycles.Set(float64(ms.NumGC))
}
