package obs

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenRegistry builds a registry holding every metric kind the exposition
// writer handles: counters (with and without HELP), a plain gauge, a labeled
// gauge whose help and label values need escaping, histograms in every unit,
// and a histogram that never observed anything.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.NewCounter("golden_requests_total", "Requests served.").Add(42)
	r.NewCounter("golden_untouched_total", "")
	r.NewGauge("golden_queue_depth", "Items queued; negative when draining.").Set(-3.5)
	r.NewLabeledGauge("golden_build_info",
		"Build metadata with a \\ backslash and a\nnewline in its help.",
		Label{Name: "version", Value: "v1.2.3\"dev\\build\n"},
		Label{Name: "goos", Value: "linux"},
	).Set(1)
	lat := r.NewHistogram("golden_latency_seconds", "Request latency.", UnitNanoseconds)
	for _, d := range []time.Duration{100, 1500, 1500, 3000, 1 << 20} {
		lat.Observe(d)
	}
	q := r.NewHistogram("golden_qerror", "Prediction q-error ratios.", UnitMilli)
	q.ObserveFloat(1.25)
	q.ObserveFloat(8)
	r.NewHistogram("golden_idle_seconds", "Never observed.", UnitNanoseconds)
	return r
}

// TestPrometheusGolden locks the text exposition byte-for-byte. Regenerate
// with: go test ./internal/obs -run PrometheusGolden -update
func TestPrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition diverged from %s (re-run with -update if intended)\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestPrometheusFormatLint runs the structural linter over the golden
// registry's exposition.
func TestPrometheusFormatLint(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, e := range lintPrometheus(sb.String()) {
		t.Error(e)
	}
}

// TestDefaultRegistryExpositionLints lints the live process registry —
// every metric any package registered at init, with export hooks (runtime
// stats, build info) applied — so a malformed production metric name or
// label fails here, not in a scrape.
func TestDefaultRegistryExpositionLints(t *testing.T) {
	var sb strings.Builder
	if err := Default.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "t3_build_info") {
		t.Error("default exposition missing t3_build_info")
	}
	for _, e := range lintPrometheus(sb.String()) {
		t.Error(e)
	}
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelNameRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// linter accumulates violations found in one exposition.
type linter struct {
	errs []string
}

func (l *linter) errorf(format string, args ...any) {
	l.errs = append(l.errs, fmt.Sprintf(format, args...))
}

// histLint accumulates per-family histogram state while linting.
type histLint struct {
	prevLe   float64
	prevCum  uint64
	infSeen  bool
	infVal   uint64
	count    uint64
	countSet bool
}

// lintPrometheus enforces the text exposition format (0.0.4) rules the
// writer must uphold: metric/label name syntax, HELP immediately followed
// by its TYPE, samples only after their family's TYPE, escaped HELP text
// and label values, `le` strictly increasing with `+Inf` present and last,
// cumulative bucket monotonicity, and `_count` == the `+Inf` bucket. It
// returns one message per violation.
func lintPrometheus(out string) []string {
	l := &linter{}
	if out == "" || !strings.HasSuffix(out, "\n") {
		l.errorf("exposition must be newline-terminated, got %d bytes", len(out))
		return l.errs
	}
	typeOf := make(map[string]string)
	hists := make(map[string]*histLint)
	var histNames []string
	pendingHelp := ""
	for ln, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		ln++
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.SplitN(line[len("# HELP "):], " ", 2)
			name := rest[0]
			if !metricNameRE.MatchString(name) {
				l.errorf("line %d: bad metric name in HELP: %q", ln, name)
			}
			if len(rest) == 2 {
				l.lintEscapes(ln, rest[1], false)
			}
			if pendingHelp != "" {
				l.errorf("line %d: HELP %s while HELP %s still awaits its TYPE", ln, name, pendingHelp)
			}
			pendingHelp = name
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line[len("# TYPE "):])
			if len(f) != 2 {
				l.errorf("line %d: malformed TYPE: %q", ln, line)
				continue
			}
			name, typ := f[0], f[1]
			if !metricNameRE.MatchString(name) {
				l.errorf("line %d: bad metric name in TYPE: %q", ln, name)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				l.errorf("line %d: unknown type %q", ln, typ)
			}
			if pendingHelp != "" && pendingHelp != name {
				l.errorf("line %d: HELP %s not immediately followed by its TYPE (got TYPE %s)", ln, pendingHelp, name)
			}
			pendingHelp = ""
			if _, dup := typeOf[name]; dup {
				l.errorf("line %d: duplicate TYPE for %s", ln, name)
			}
			typeOf[name] = typ
			if typ == "histogram" {
				hists[name] = &histLint{prevLe: math.Inf(-1)}
				histNames = append(histNames, name)
			}
		case strings.HasPrefix(line, "#"):
			l.errorf("line %d: unknown comment form: %q", ln, line)
		default:
			if pendingHelp != "" {
				l.errorf("line %d: sample before TYPE for pending HELP %s", ln, pendingHelp)
				pendingHelp = ""
			}
			l.lintSample(ln, line, typeOf, hists)
		}
	}
	if pendingHelp != "" {
		l.errorf("trailing HELP %s with no TYPE", pendingHelp)
	}
	for _, name := range histNames {
		h := hists[name]
		if !h.infSeen {
			l.errorf("histogram %s: no +Inf bucket", name)
		}
		if !h.countSet {
			l.errorf("histogram %s: no _count sample", name)
		} else if h.infSeen && h.infVal != h.count {
			l.errorf("histogram %s: +Inf bucket %d != _count %d", name, h.infVal, h.count)
		}
	}
	return l.errs
}

// lintSample checks one sample line against its family's declared type.
func (l *linter) lintSample(ln int, line string, typeOf map[string]string, hists map[string]*histLint) {
	name, labels, value, ok := splitSample(line)
	if !ok {
		l.errorf("line %d: malformed sample: %q", ln, line)
		return
	}
	if !metricNameRE.MatchString(name) {
		l.errorf("line %d: bad sample name %q", ln, name)
		return
	}
	family, series := name, ""
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && typeOf[base] == "histogram" {
			family, series = base, suf
			break
		}
	}
	typ, declared := typeOf[family]
	if !declared {
		l.errorf("line %d: sample %s has no preceding TYPE", ln, name)
		return
	}
	lv := l.lintLabels(ln, labels)
	v, err := strconv.ParseFloat(value, 64)
	if err != nil {
		l.errorf("line %d: unparseable value %q: %v", ln, value, err)
		return
	}
	switch {
	case typ == "counter":
		if _, err := strconv.ParseUint(value, 10, 64); err != nil {
			l.errorf("line %d: counter %s value %q not a non-negative integer", ln, name, value)
		}
	case typ == "histogram" && series == "_bucket":
		h := hists[family]
		le, present := lv["le"]
		if !present {
			l.errorf("line %d: %s bucket without le label", ln, family)
			return
		}
		cum, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			l.errorf("line %d: bucket count %q not an integer", ln, value)
			return
		}
		if h.infSeen {
			l.errorf("line %d: %s bucket after +Inf", ln, family)
		}
		var bound float64
		if le == "+Inf" {
			bound = math.Inf(1)
			h.infSeen = true
			h.infVal = cum
		} else if bound, err = strconv.ParseFloat(le, 64); err != nil {
			l.errorf("line %d: unparseable le %q", ln, le)
			return
		}
		if bound <= h.prevLe {
			l.errorf("line %d: %s le %q not strictly increasing (prev %g)", ln, family, le, h.prevLe)
		}
		if cum < h.prevCum {
			l.errorf("line %d: %s cumulative count regressed %d -> %d", ln, family, h.prevCum, cum)
		}
		h.prevLe, h.prevCum = bound, cum
	case typ == "histogram" && series == "_count":
		h := hists[family]
		if h.countSet {
			l.errorf("line %d: duplicate _count for %s", ln, family)
		}
		h.count, h.countSet = uint64(v), true
	case typ == "histogram" && series == "_sum":
		// Any finite float; ParseFloat above already vetted it.
	case typ == "histogram":
		l.errorf("line %d: bare sample %s for histogram family", ln, name)
	}
}

// splitSample splits `name{labels} value` (labels optional) into parts.
func splitSample(line string) (name, labels, value string, ok bool) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", "", false
		}
		name, labels, rest = line[:i], line[i+1:j], line[j+1:]
	} else if i := strings.IndexByte(line, ' '); i >= 0 {
		name, rest = line[:i], line[i:]
	} else {
		return "", "", "", false
	}
	value = strings.TrimSpace(rest)
	if name == "" || value == "" || strings.ContainsAny(value, " \t") {
		return "", "", "", false
	}
	return name, labels, value, true
}

// lintLabels parses a label body, checking name syntax, quoting, and value
// escaping; it returns the decoded label map.
func (l *linter) lintLabels(ln int, body string) map[string]string {
	out := make(map[string]string)
	for i := 0; i < len(body); {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			l.errorf("line %d: label pair without '=': %q", ln, body[i:])
			return out
		}
		name := body[i : i+eq]
		if !labelNameRE.MatchString(name) {
			l.errorf("line %d: bad label name %q", ln, name)
		}
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			l.errorf("line %d: label %s value not quoted", ln, name)
			return out
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(body) {
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					l.errorf("line %d: label %s: trailing backslash", ln, name)
					return out
				}
				esc := body[i+1]
				switch esc {
				case '\\', '"':
					val.WriteByte(esc)
				case 'n':
					val.WriteByte('\n')
				default:
					l.errorf("line %d: label %s: invalid escape \\%c", ln, name, esc)
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			l.errorf("line %d: label %s value unterminated", ln, name)
			return out
		}
		out[name] = val.String()
		if i < len(body) {
			if body[i] != ',' {
				l.errorf("line %d: expected ',' between labels, got %q", ln, body[i:])
				return out
			}
			i++
		}
	}
	return out
}

// lintEscapes checks that HELP text (and, with quoted=true, label values)
// contains no raw newline and only legal escape sequences.
func (l *linter) lintEscapes(ln int, s string, quoted bool) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\n':
			l.errorf("line %d: raw newline in text", ln)
		case '\\':
			if i+1 >= len(s) {
				l.errorf("line %d: trailing backslash", ln)
				return
			}
			next := s[i+1]
			if next != '\\' && next != 'n' && !(quoted && next == '"') {
				l.errorf("line %d: invalid escape \\%c", ln, next)
			}
			i++
		case '"':
			if quoted {
				l.errorf("line %d: unescaped quote", ln)
			}
		}
	}
}

// TestLintCatchesViolations feeds the linter hand-broken expositions to
// prove each rule actually fires (a linter that accepts everything would
// vacuously pass the tests above).
func TestLintCatchesViolations(t *testing.T) {
	bad := []struct {
		name string
		in   string
	}{
		{"help without type", "# HELP x_total Helpful.\nx_total 1\n"},
		{"sample before type", "x_total 1\n"},
		{"bad metric name", "# TYPE 9bad counter\n9bad 1\n"},
		{"negative counter", "# TYPE x_total counter\nx_total -1\n"},
		{"le out of order", "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n"},
		{"bucket regression", "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n"},
		{"missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"count mismatch", "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 5\n"},
		{"unescaped label quote", "# TYPE g gauge\ng{v=\"a\"b\"} 1\n"},
		{"invalid help escape", "# HELP x_total bad \\q escape\n# TYPE x_total counter\nx_total 1\n"},
		{"bucket after inf", "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_bucket{le=\"9\"} 1\nh_sum 1\nh_count 1\n"},
		{"missing count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if errs := lintPrometheus(tc.in); len(errs) == 0 {
				t.Errorf("linter accepted broken exposition:\n%s", tc.in)
			}
		})
	}
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if errs := lintPrometheus(sb.String()); len(errs) != 0 {
		t.Errorf("linter rejected well-formed exposition: %v", errs)
	}
}
