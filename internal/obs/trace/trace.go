// Package trace is the per-query flight recorder and drift sensor layer on
// top of internal/obs: it answers "where did THIS query's microseconds go",
// "is accuracy drifting NOW", and "which plans do we mispredict worst" —
// the three questions process-lifetime aggregates cannot.
//
// Three cooperating pieces:
//
//   - Flight recorder (this file + ring.go): pooled fixed-capacity Trace
//     values record begin/end span pairs with numeric stage ids — no
//     strings, no maps, no allocation on the hot path — along the serving
//     path (wire decode → cache lookup → coalesce wait → decompose →
//     featurize → tree eval) and the exec path (pipelines → morsel
//     partitions → ordered merge, lifted from exec.PipelineTiming).
//     Completed traces are published into a lock-free ring of the most
//     recent queries; sampling reuses obs.Sampler so the always-on cost of
//     an untraced query is one atomic add.
//   - Windowed drift (window.go, drift.go): a ring of epoch snapshots of
//     the online q-error histogram yields sliding percentiles by snapshot
//     subtraction (obs.HistSnapshot.Sub), so recent drift is visible even
//     when the lifetime histogram is dominated by old mass. A Detector
//     applies threshold + hysteresis and exposes t3_drift_alarm plus a
//     registered-callback hook for the future retrain controller.
//   - Misprediction exemplars (exemplar.go): the top-K worst predictions by
//     q-error, each captured as a replayable internal/wire request frame.
//
// Everything is stdlib-only and safe for concurrent use; the recording
// side never locks and never allocates in steady state.
package trace

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"t3/internal/obs"
	"t3/internal/wire"
)

// Stage identifies what one span of a trace measured. Spans carry stage
// ids, not strings: names are resolved only at export time.
type Stage uint8

// Span stages, in rough serving-path order.
const (
	// StageWireDecode is binary frame payload → plan arena decode.
	StageWireDecode Stage = iota
	// StageCacheLookup is plan fingerprinting plus the prediction-cache
	// probe.
	StageCacheLookup
	// StageCoalesce is the time a request spent inside the coalescer:
	// waiting for its batch window plus the shared batched dispatch.
	StageCoalesce
	// StageDecompose is plan → pipeline decomposition.
	StageDecompose
	// StageFeaturize is pipeline → feature-vector encoding.
	StageFeaturize
	// StageTreeEval is packed-ensemble evaluation plus the per-pipeline sum
	// (Arg carries the pipeline count).
	StageTreeEval
	// StagePipeline is one executed pipeline (Arg packs the pipeline index,
	// morsel count, and parallelism — see PipelineArg).
	StagePipeline
	// StageMerge is the driver-side ordered merge of one parallel
	// pipeline's partition partials (Arg is the pipeline index).
	StageMerge
	// NumStages is the number of defined stages.
	NumStages
)

var stageNames = [NumStages]string{
	"wire_decode", "cache_lookup", "coalesce", "decompose", "featurize",
	"tree_eval", "pipeline", "merge",
}

// String returns the export name of the stage.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Kind identifies the entry point that recorded a trace.
type Kind uint8

// Trace kinds.
const (
	// KindPredict is Model.PredictPlanScratch called directly (including
	// from batch prediction and coalesced dispatches).
	KindPredict Kind = iota
	// KindServeBin is the binary serving path (/predict.bin or raw TCP).
	KindServeBin
	// KindRun is a predict-then-execute round (PredictAndRun, /run).
	KindRun
	// NumKinds is the number of defined kinds.
	NumKinds
)

var kindNames = [NumKinds]string{"predict", "serve_bin", "run"}

// String returns the export name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Trace flag bits.
const (
	// FlagCacheHit marks a request answered from the prediction cache.
	FlagCacheHit = 1 << iota
	// FlagCoalesced marks a request that went through the coalescer.
	FlagCoalesced
	// FlagError marks a request that failed (decode or execution error).
	FlagError
)

// FlagNames renders set flag bits as names, for debug endpoints.
func FlagNames(flags uint8) []string {
	var names []string
	if flags&FlagCacheHit != 0 {
		names = append(names, "cache_hit")
	}
	if flags&FlagCoalesced != 0 {
		names = append(names, "coalesced")
	}
	if flags&FlagError != 0 {
		names = append(names, "error")
	}
	return names
}

// MaxSpans is the fixed span capacity of a trace; spans past the capacity
// are dropped (queries deep enough to overflow still keep their earliest —
// outermost — spans).
const MaxSpans = 24

// Span is one begin/end pair inside a trace. Offsets are relative to the
// trace start, so spans nest visibly without absolute timestamps.
type Span struct {
	// Stage identifies what was measured.
	Stage Stage
	// Arg is stage-specific payload (pipeline index, batch size, bytes).
	Arg uint32
	// StartNs is the span start offset from the trace start.
	StartNs int64
	// DurNs is the span duration.
	DurNs int64
}

// PipelineArg packs a StagePipeline span argument: pipeline index in the
// high 16 bits, morsel count in the middle 8, parallelism in the low 8
// (all saturating).
func PipelineArg(index, morsels, parallelism int) uint32 {
	sat := func(v, max int) uint32 {
		if v < 0 {
			return 0
		}
		if v > max {
			return uint32(max)
		}
		return uint32(v)
	}
	return sat(index, 0xffff)<<16 | sat(morsels, 0xff)<<8 | sat(parallelism, 0xff)
}

// UnpackPipelineArg reverses PipelineArg.
func UnpackPipelineArg(arg uint32) (index, morsels, parallelism int) {
	return int(arg >> 16), int(arg >> 8 & 0xff), int(arg & 0xff)
}

// Trace is one query's flight record: identity, outcome, and up to
// MaxSpans timed spans. It contains no pointers, so a published copy can
// never retain memory; the unexported start time is recorder-side state
// that is not published.
type Trace struct {
	// ID is a process-unique publish sequence number (1-based).
	ID uint64
	// Kind is the entry point that recorded the trace.
	Kind Kind
	// Mode is the plan.CardMode the prediction used.
	Mode uint8
	// Flags holds Flag* bits.
	Flags uint8
	// NSpans is the number of valid entries in Spans.
	NSpans uint8
	// StartUnixNs is the trace start in Unix nanoseconds.
	StartUnixNs int64
	// TotalNs is the end-to-end duration, set at publish.
	TotalNs int64
	// Fingerprint identifies the plan (see KeyFingerprint); 0 if unknown.
	Fingerprint uint64
	// PredictedNs is the predicted execution time; 0 if none.
	PredictedNs int64
	// ActualNs is the measured execution time; 0 if never executed.
	ActualNs int64
	// QErrorMilli is the q-error vs ActualNs in 1/1000ths; 0 if unknown.
	QErrorMilli uint64
	// Spans are the recorded spans, in recording order.
	Spans [MaxSpans]Span

	start time.Time
}

// Start returns the trace's start time — the zero offset its spans are
// relative to.
func (t *Trace) Start() time.Time { return t.start }

// Record appends a span that began at start and ends now. Safe to call on
// a nil trace (no-op), so call sites gate only their clock reads.
func (t *Trace) Record(stage Stage, start time.Time, arg uint32) {
	if t == nil {
		return
	}
	t.Add(stage, start.Sub(t.start).Nanoseconds(), time.Since(start).Nanoseconds(), arg)
}

// Add appends a span from explicit offsets — for timings measured
// elsewhere (exec.PipelineTiming). Nil-safe like Record.
func (t *Trace) Add(stage Stage, startNs, durNs int64, arg uint32) {
	if t == nil || int(t.NSpans) >= MaxSpans {
		return
	}
	t.Spans[t.NSpans] = Span{Stage: stage, Arg: arg, StartNs: startNs, DurNs: durNs}
	t.NSpans++
}

// KeyFingerprint folds a wire.Key into the single-word plan fingerprint
// traces and exemplars carry. The rotate keeps the structural and
// cardinality halves from cancelling when they collide.
func KeyFingerprint(k wire.Key) uint64 {
	return k.Struct ^ bits.RotateLeft64(k.Cards, 31)
}

// Defaults of the package-level recorder.
const (
	// DefaultRingSize is how many recent traces the default recorder
	// retains (~64 KiB of ring at 680 B per trace record).
	DefaultRingSize = 256
	// DefaultSampleEvery is the default sampling rate: one traced query in
	// every 16.
	DefaultSampleEvery = 16
)

// Recorder hands out pooled traces, samples admission, and publishes
// completed traces into its ring. Safe for concurrent use.
type Recorder struct {
	sampler *obs.Sampler
	ring    *Ring
	pool    sync.Pool
	ids     atomic.Uint64
}

// NewRecorder builds a recorder retaining ringSize traces and admitting
// one in every sampleEvery Begin calls (rounded up to a power of two;
// <= 1 admits every call).
func NewRecorder(ringSize, sampleEvery int) *Recorder {
	return &Recorder{sampler: obs.NewSampler(sampleEvery), ring: NewRing(ringSize)}
}

// Default is the process-wide recorder: the predict and serving paths
// record into it, and cmd/t3serve's /debug/queries reads it.
var Default = NewRecorder(DefaultRingSize, DefaultSampleEvery)

// Published counts traces published into the default recorder's ring.
var Published = obs.Default.NewCounter("t3_trace_published_total",
	"Flight-recorder traces published.")

// Begin starts a trace if this call is sampled, else returns nil. The
// unsampled cost is one atomic add; the sampled path reuses pooled traces
// and does not allocate in steady state.
func (r *Recorder) Begin(kind Kind, mode uint8) *Trace {
	if !r.sampler.Sample() {
		return nil
	}
	return r.begin(kind, mode)
}

// ForceBegin starts a trace unconditionally — for paths where every event
// matters (predict-then-execute rounds are engine-execution-bound, so
// tracing them all is free by comparison).
func (r *Recorder) ForceBegin(kind Kind, mode uint8) *Trace {
	return r.begin(kind, mode)
}

func (r *Recorder) begin(kind Kind, mode uint8) *Trace {
	t, ok := r.pool.Get().(*Trace)
	if !ok {
		t = new(Trace)
	}
	*t = Trace{Kind: kind, Mode: mode, start: time.Now()}
	t.StartUnixNs = t.start.UnixNano()
	return t
}

// Publish finalizes the trace (TotalNs, ID), copies it into the ring, and
// recycles it. The trace must not be used afterwards. Nil-safe.
func (r *Recorder) Publish(t *Trace) {
	if t == nil {
		return
	}
	t.TotalNs = time.Since(t.start).Nanoseconds()
	t.ID = r.ids.Add(1)
	r.ring.publish(t)
	if r == Default {
		Published.Inc()
	}
	r.pool.Put(t)
}

// Discard recycles a trace without publishing it. Nil-safe.
func (r *Recorder) Discard(t *Trace) {
	if t != nil {
		r.pool.Put(t)
	}
}

// Snapshot appends the ring's current traces to dst, newest first, and
// returns the extended slice. See Ring.Snapshot for consistency semantics.
func (r *Recorder) Snapshot(dst []Trace) []Trace { return r.ring.Snapshot(dst) }
