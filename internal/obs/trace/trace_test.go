package trace

import (
	"sync"
	"testing"
	"time"
)

func TestStageAndKindNames(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); s < NumStages; s++ {
		n := s.String()
		if n == "" || n == "unknown" {
			t.Fatalf("stage %d has no name", s)
		}
		if seen[n] {
			t.Fatalf("duplicate stage name %q", n)
		}
		seen[n] = true
	}
	if NumStages.String() != "unknown" {
		t.Fatalf("out-of-range stage should be unknown")
	}
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestPipelineArgRoundtrip(t *testing.T) {
	cases := []struct{ idx, morsels, par int }{
		{0, 0, 0}, {1, 1, 1}, {3, 16, 4}, {12, 255, 8},
		{0xffff, 0xff, 0xff},   // at saturation
		{1 << 20, 1000, 4000},  // past saturation
		{-1, -5, -9},           // negative clamps to zero
	}
	for _, c := range cases {
		idx, m, p := UnpackPipelineArg(PipelineArg(c.idx, c.morsels, c.par))
		want := func(v, max int) int {
			if v < 0 {
				return 0
			}
			if v > max {
				return max
			}
			return v
		}
		if idx != want(c.idx, 0xffff) || m != want(c.morsels, 0xff) || p != want(c.par, 0xff) {
			t.Fatalf("PipelineArg(%v) -> (%d,%d,%d)", c, idx, m, p)
		}
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Record(StageWireDecode, time.Now(), 0) // must not panic
	tr.Add(StagePipeline, 1, 2, 3)
	r := NewRecorder(4, 16)
	r.Publish(nil)
	r.Discard(nil)
}

func TestSpanOverflowKeepsEarliest(t *testing.T) {
	r := NewRecorder(4, 1)
	tr := r.ForceBegin(KindPredict, 0)
	for i := 0; i < MaxSpans+10; i++ {
		tr.Add(StagePipeline, int64(i), 1, uint32(i))
	}
	if tr.NSpans != MaxSpans {
		t.Fatalf("NSpans = %d, want %d", tr.NSpans, MaxSpans)
	}
	if tr.Spans[0].Arg != 0 || tr.Spans[MaxSpans-1].Arg != MaxSpans-1 {
		t.Fatalf("overflow dropped the wrong spans")
	}
	r.Discard(tr)
}

func TestRingRoundtrip(t *testing.T) {
	r := NewRecorder(8, 1)
	tr := r.ForceBegin(KindServeBin, 2)
	tr.Flags = FlagCacheHit | FlagCoalesced
	tr.Fingerprint = 0xdeadbeefcafe
	tr.PredictedNs = 12345
	tr.ActualNs = 23456
	tr.QErrorMilli = 1900
	start := tr.StartUnixNs
	tr.Add(StageWireDecode, 10, 20, 0)
	tr.Add(StageCacheLookup, 35, 5, 0)
	tr.Add(StagePipeline, 50, 1000, PipelineArg(0, 16, 4))
	r.Publish(tr)

	got := r.Snapshot(nil)
	if len(got) != 1 {
		t.Fatalf("snapshot has %d traces, want 1", len(got))
	}
	g := got[0]
	if g.ID != 1 || g.Kind != KindServeBin || g.Mode != 2 ||
		g.Flags != FlagCacheHit|FlagCoalesced || g.NSpans != 3 {
		t.Fatalf("header mangled: %+v", g)
	}
	if g.StartUnixNs != start || g.TotalNs < 0 {
		t.Fatalf("timing mangled: start %d -> %d, total %d", start, g.StartUnixNs, g.TotalNs)
	}
	if g.Fingerprint != 0xdeadbeefcafe || g.PredictedNs != 12345 ||
		g.ActualNs != 23456 || g.QErrorMilli != 1900 {
		t.Fatalf("outcome mangled: %+v", g)
	}
	wantSpans := []Span{
		{StageWireDecode, 0, 10, 20},
		{StageCacheLookup, 0, 35, 5},
		{StagePipeline, PipelineArg(0, 16, 4), 50, 1000},
	}
	for i, w := range wantSpans {
		if g.Spans[i] != w {
			t.Fatalf("span %d = %+v, want %+v", i, g.Spans[i], w)
		}
	}
}

func TestRingWraparoundKeepsNewest(t *testing.T) {
	const size = 8
	r := NewRecorder(size, 1)
	for i := 0; i < 3*size; i++ {
		tr := r.ForceBegin(KindPredict, 0)
		tr.Fingerprint = uint64(i + 1)
		r.Publish(tr)
	}
	got := r.Snapshot(nil)
	if len(got) != size {
		t.Fatalf("snapshot has %d traces, want %d", len(got), size)
	}
	// Newest first: fingerprints 24, 23, ... 17; IDs strictly descending.
	for i, g := range got {
		if want := uint64(3*size - i); g.Fingerprint != want {
			t.Fatalf("trace %d fingerprint = %d, want %d", i, g.Fingerprint, want)
		}
		if i > 0 && got[i-1].ID <= g.ID {
			t.Fatalf("IDs not descending: %d then %d", got[i-1].ID, g.ID)
		}
	}
}

func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(4, 16)
	admitted := 0
	for i := 0; i < 1600; i++ {
		if tr := r.Begin(KindPredict, 0); tr != nil {
			admitted++
			r.Discard(tr)
		}
	}
	if admitted != 100 {
		t.Fatalf("1-in-16 sampler admitted %d of 1600", admitted)
	}
}

func TestSnapshotReuseBuffer(t *testing.T) {
	r := NewRecorder(4, 1)
	for i := 0; i < 2; i++ {
		r.Publish(r.ForceBegin(KindRun, 0))
	}
	buf := make([]Trace, 0, 8)
	got := r.Snapshot(buf[:0])
	if len(got) != 2 || cap(got) != 8 {
		t.Fatalf("snapshot did not reuse buffer: len %d cap %d", len(got), cap(got))
	}
}

// TestConcurrentPublishSnapshot hammers the ring from publisher and reader
// goroutines; under -race this is the data-race certification of the
// atomic-word seqlock, and in any mode it checks snapshots never observe a
// torn trace (fingerprint and spans written from the same value).
func TestConcurrentPublishSnapshot(t *testing.T) {
	r := NewRecorder(16, 1)
	const writers = 4
	iters := 5000
	if testing.Short() {
		iters = 500
	}
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < iters; i++ {
				tr := r.ForceBegin(Kind(w%int(NumKinds)), uint8(w))
				v := uint64(w)<<32 | uint64(i)
				tr.Fingerprint = v
				tr.PredictedNs = int64(v)
				tr.Add(StageTreeEval, int64(v), int64(v), uint32(i))
				r.Publish(tr)
			}
		}(w)
	}
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		var buf []Trace
		for {
			select {
			case <-stop:
				return
			default:
			}
			buf = r.Snapshot(buf[:0])
			for _, g := range buf {
				if g.PredictedNs != int64(g.Fingerprint) {
					t.Errorf("torn trace: fingerprint %x predicted %x", g.Fingerprint, g.PredictedNs)
					return
				}
				if g.NSpans != 1 || g.Spans[0].StartNs != int64(g.Fingerprint) {
					t.Errorf("torn spans: %+v", g)
					return
				}
			}
		}
	}()

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
}

// TestRecordPublishIsAllocationFree is the tentpole guarantee: a traced
// query costs zero heap allocations once the pool is warm.
func TestRecordPublishIsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	r := NewRecorder(32, 16)
	// Warm the pool.
	for i := 0; i < 64; i++ {
		r.Publish(r.ForceBegin(KindPredict, 0))
	}
	start := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		tr := r.Begin(KindServeBin, 0) // nil 15 of 16 times
		tr.Record(StageWireDecode, start, 0)
		tr.Record(StageCacheLookup, start, 0)
		if tr != nil {
			tr.Fingerprint = 42
			tr.Flags = FlagCacheHit
		}
		r.Publish(tr)
	})
	if allocs != 0 {
		t.Fatalf("traced request path allocates %.2f allocs/op, want 0", allocs)
	}
}
