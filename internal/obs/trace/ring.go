package trace

import "sync/atomic"

// The flight-recorder ring: the most recent N published traces, readable
// at any time without stopping writers.
//
// Each slot is a fixed array of atomic words guarded by a sequence counter
// (even = stable, odd = write in progress). Publishing claims a slot by a
// global cursor, CASes its sequence odd, stores the trace word by word,
// and releases the sequence even; a snapshot reads the sequence, copies the
// words, and re-reads the sequence, retrying on instability. Every shared
// access is an atomic operation on a fixed-size array — no locks, no
// allocation, no retained pointers — and a reader can never block a writer
// (at worst it discards a torn slot and moves on).
//
// Two writers can race for the same slot only when they publish ring-size
// claims apart while one is still mid-store; the CAS makes the late writer
// drop its trace rather than interleave words.

// traceWords is the published size of one trace in 8-byte words: 8 header
// words plus 3 per span.
const traceWords = 8 + 3*MaxSpans

// slot is one ring entry.
type slot struct {
	seq atomic.Uint64
	w   [traceWords]atomic.Uint64
}

// Ring is a fixed-capacity ring of published traces. Safe for concurrent
// publish and snapshot.
type Ring struct {
	slots []slot
	cur   atomic.Uint64 // total slot claims ever
}

// NewRing returns a ring retaining the most recent n traces (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{slots: make([]slot, n)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Published returns the total number of slot claims (publishes attempted).
func (r *Ring) Published() uint64 { return r.cur.Load() }

// publish copies t into the next slot.
func (r *Ring) publish(t *Trace) {
	i := r.cur.Add(1) - 1
	s := &r.slots[i%uint64(len(r.slots))]
	seq := s.seq.Load()
	if seq&1 != 0 || !s.seq.CompareAndSwap(seq, seq+1) {
		// Another writer lapped the ring into this slot mid-store; dropping
		// one trace beats interleaving two.
		return
	}
	storeTrace(&s.w, t)
	s.seq.Store(seq + 2)
}

// storeTrace serializes t into a slot's word array. Only the header and
// the NSpans live spans are stored; stale tail words from a previous
// occupant are ignored by loadTrace.
func storeTrace(w *[traceWords]atomic.Uint64, t *Trace) {
	w[0].Store(t.ID)
	w[1].Store(uint64(t.Kind) | uint64(t.Mode)<<8 | uint64(t.Flags)<<16 | uint64(t.NSpans)<<24)
	w[2].Store(uint64(t.StartUnixNs))
	w[3].Store(uint64(t.TotalNs))
	w[4].Store(t.Fingerprint)
	w[5].Store(uint64(t.PredictedNs))
	w[6].Store(uint64(t.ActualNs))
	w[7].Store(t.QErrorMilli)
	for i := 0; i < int(t.NSpans) && i < MaxSpans; i++ {
		sp := &t.Spans[i]
		base := 8 + 3*i
		w[base].Store(uint64(sp.Stage) | uint64(sp.Arg)<<32)
		w[base+1].Store(uint64(sp.StartNs))
		w[base+2].Store(uint64(sp.DurNs))
	}
}

// loadTrace deserializes a slot's words into t.
func loadTrace(w *[traceWords]atomic.Uint64, t *Trace) {
	t.ID = w[0].Load()
	meta := w[1].Load()
	t.Kind = Kind(meta)
	t.Mode = uint8(meta >> 8)
	t.Flags = uint8(meta >> 16)
	t.NSpans = uint8(meta >> 24)
	if t.NSpans > MaxSpans {
		t.NSpans = MaxSpans // torn read; the seq re-check will reject it
	}
	t.StartUnixNs = int64(w[2].Load())
	t.TotalNs = int64(w[3].Load())
	t.Fingerprint = w[4].Load()
	t.PredictedNs = int64(w[5].Load())
	t.ActualNs = int64(w[6].Load())
	t.QErrorMilli = w[7].Load()
	for i := 0; i < int(t.NSpans); i++ {
		base := 8 + 3*i
		sa := w[base].Load()
		t.Spans[i] = Span{
			Stage:   Stage(sa),
			Arg:     uint32(sa >> 32),
			StartNs: int64(w[base+1].Load()),
			DurNs:   int64(w[base+2].Load()),
		}
	}
}

// Snapshot appends the ring's stable traces to dst, newest first, and
// returns the extended slice. Slots being written concurrently are retried
// a few times and then skipped — a snapshot is a point-in-time sample, not
// a barrier.
func (r *Ring) Snapshot(dst []Trace) []Trace {
	cur := r.cur.Load()
	n := uint64(len(r.slots))
	count := cur
	if count > n {
		count = n
	}
	for k := uint64(0); k < count; k++ {
		s := &r.slots[(cur-1-k)%n]
		var t Trace
		for attempt := 0; attempt < 4; attempt++ {
			seq := s.seq.Load()
			if seq == 0 { // never written (publish dropped on collision)
				break
			}
			if seq&1 != 0 {
				continue // mid-write; retry
			}
			loadTrace(&s.w, &t)
			if s.seq.Load() == seq {
				dst = append(dst, t)
				break
			}
		}
	}
	return dst
}
